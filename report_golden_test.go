package phantom

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestReportSectionGolden pins one seed-pinned GenerateReport section
// against a committed golden file. The covert-channel section exercises
// sweeps, the accuracy/rate formatting, and the paper-reference columns;
// with a fixed seed its text is fully deterministic, so any diff is a
// real change to either the simulation or the report formatting.
// Refresh intentionally with:
//
//	go test -run TestReportSectionGolden -update .
func TestReportSectionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("renders a report section")
	}
	var buf bytes.Buffer
	opts := ReportOptions{Seed: 7, Runs: 2, Bits: 128}
	if err := GenerateReportSection(&buf, "Table 2 — covert channels", opts); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_covert_seed7.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report section diverges from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestReportSectionTitles keeps GenerateReportSection's title lookup in
// sync with the generated document.
func TestReportSectionTitles(t *testing.T) {
	titles := ReportSectionTitles()
	if len(titles) != 7 {
		t.Fatalf("got %d sections: %v", len(titles), titles)
	}
	if err := GenerateReportSection(&bytes.Buffer{}, "no such section", ReportOptions{}); err == nil {
		t.Fatal("unknown section title accepted")
	}
}
