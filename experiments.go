package phantom

import (
	"context"
	"fmt"
	"strings"

	"phantom/internal/core"
	"phantom/internal/stats"
	"phantom/internal/sweep"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// optionsContext resolves the optional Context field every experiment
// options struct carries: nil means context.Background(), exactly like
// the pre-context API. The serving layer (internal/service) sets it so
// request deadlines and client disconnects cancel the sweep jobs a
// request is paying for; the CLI sets it so an interrupt cancels
// mid-sweep instead of killing the process with the run log unflushed.
func optionsContext(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// sweepOpts builds the worker-pool options for a named sweep, attaching
// the process telemetry observer when one is active. Telemetry is
// purely observational (see internal/telemetry): the sweep's results —
// and therefore every table and figure — are byte-identical with the
// observer attached, absent, or sampling.
func sweepOpts(name string, n, jobs int) sweep.Options {
	o := sweep.Options{Jobs: jobs}
	if s := telemetry.Sweep(name, n); s != nil {
		o.Observer = s
	}
	return o
}

// StageReach mirrors the paper's per-cell Table 1 annotation: which
// pipeline stages the mispredicted control flow observably entered.
type StageReach struct {
	IF, ID, EX bool
}

func (r StageReach) String() string {
	switch {
	case r.EX:
		return "IF+ID+EX"
	case r.ID:
		return "IF+ID"
	case r.IF:
		return "IF"
	}
	return "-"
}

// Table1Cell is one training×victim combination.
type Table1Cell struct {
	Training, Victim string
	Excluded         bool // symmetric cells the paper does not evaluate
	Note             string
	Reach            StageReach
}

// Table1 is the full matrix for one microarchitecture.
type Table1 struct {
	Arch  Microarch
	Model string
	Kinds []string
	Cells [][]Table1Cell
}

// Table1Options tunes the experiment.
type Table1Options struct {
	// Context, when non-nil, bounds the run: cancellation or a deadline
	// aborts between cells. Nil means context.Background().
	Context context.Context
	Seed    int64
	Trials  int     // per-cell trials; 0 = 6
	Noise   float64 // 0 = noiseless (lab conditions, as in Section 5)
	// DisablePredecode runs the cells on the byte-at-a-time reference
	// fetch path (see SystemConfig.DisablePredecode).
	DisablePredecode bool
}

// RunTable1 reproduces Table 1 for one microarchitecture: all asymmetric
// training/victim branch-type combinations, measured through the
// IF (I-cache timing), ID (µop-cache counters) and EX (D-cache timing)
// observation channels.
func RunTable1(arch Microarch, opts Table1Options) (*Table1, error) {
	p, err := arch.profile()
	if err != nil {
		return nil, err
	}
	res, err := core.RunMatrix(p, core.MatrixConfig{
		Ctx:  optionsContext(opts.Context),
		Seed: opts.Seed, Trials: opts.Trials, Noise: opts.Noise,
		DisablePredecode: opts.DisablePredecode,
	})
	if err != nil {
		return nil, err
	}
	out := &Table1{Arch: arch, Model: arch.ModelName()}
	for k := core.BranchKind(0); k < core.NumKinds; k++ {
		out.Kinds = append(out.Kinds, k.String())
	}
	out.Cells = make([][]Table1Cell, core.NumKinds)
	for tr := range out.Cells {
		out.Cells[tr] = make([]Table1Cell, core.NumKinds)
		for vi := range out.Cells[tr] {
			c := res.Cells[tr][vi]
			out.Cells[tr][vi] = Table1Cell{
				Training: c.Training.String(),
				Victim:   c.Victim.String(),
				Excluded: c.Status == core.CellSymmetric,
				Note:     c.Note,
				Reach:    StageReach(c.Reach),
			}
		}
	}
	return out, nil
}

// String renders the matrix like the paper's Table 1.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — %s (%s)\n", t.Model, t.Arch)
	fmt.Fprintf(&b, "%-12s", "trn\\victim")
	for _, k := range t.Kinds {
		fmt.Fprintf(&b, "%-12s", k)
	}
	b.WriteString("\n")
	for tr, row := range t.Cells {
		fmt.Fprintf(&b, "%-12s", t.Kinds[tr])
		for _, c := range row {
			s := c.Reach.String()
			if c.Excluded {
				s = "(sym)"
			}
			fmt.Fprintf(&b, "%-12s", s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig6Point is one x-position of Figure 6.
type Fig6Point struct {
	Offset uint64
	Hits   int
	Misses int
}

// Fig6Series is the Figure 6 sweep for one microarchitecture.
type Fig6Series struct {
	Arch   Microarch
	Points []Fig6Point
	// SeriesOffset is the page offset whose µop-cache set the jmp-series
	// primes (0xac0 in the paper's figure).
	SeriesOffset uint64
}

// RunFig6Sweep reproduces Figure 6 on several microarchitectures at
// once, fanning the per-arch sweeps over a worker pool of the given
// size (0 = GOMAXPROCS). The series come back in archs order, identical
// to running RunFig6 serially.
func RunFig6Sweep(archs []Microarch, seed int64, jobs int) ([]*Fig6Series, error) {
	return RunFig6SweepCtx(nil, archs, seed, jobs)
}

// RunFig6SweepCtx is RunFig6Sweep bounded by a context: cancellation or
// an expired deadline aborts the remaining per-arch jobs. A nil ctx
// means context.Background().
func RunFig6SweepCtx(ctx context.Context, archs []Microarch, seed int64, jobs int) ([]*Fig6Series, error) {
	return sweep.Run(optionsContext(ctx), len(archs), sweepOpts("fig6", len(archs), jobs),
		func(_ context.Context, i int) (*Fig6Series, error) {
			return RunFig6(archs[i], seed)
		})
}

// RunFig6 reproduces Figure 6 (detecting speculative decode) for one
// microarchitecture; the paper plots Zen 2 and Zen 4.
func RunFig6(arch Microarch, seed int64) (*Fig6Series, error) {
	p, err := arch.profile()
	if err != nil {
		return nil, err
	}
	pts, err := core.RunFig6(p, core.Fig6Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	s := &Fig6Series{Arch: arch, SeriesOffset: 0xac0}
	for _, pt := range pts {
		s.Points = append(s.Points, Fig6Point{Offset: pt.Offset, Hits: pt.Hits, Misses: pt.Misses})
	}
	return s, nil
}

// String renders an ASCII version of Figure 6 (misses per page offset).
func (s *Fig6Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — %s: µop-cache misses after victim run, by page offset of C\n", s.Arch.ModelName())
	for _, p := range s.Points {
		bar := strings.Repeat("#", p.Misses)
		marker := ""
		if p.Offset == s.SeriesOffset {
			marker = "  <- jmp-series set"
		}
		if p.Misses > 0 || p.Offset%0x100 == 0 {
			fmt.Fprintf(&b, "  %#06x  %-10s misses=%d hits=%d%s\n", p.Offset, bar, p.Misses, p.Hits, marker)
		}
	}
	return b.String()
}

// Fig7 is the cross-privilege BTB function recovery of Section 6.2.
type Fig7 struct {
	Arch Microarch
	// BruteForceFound reports whether flipping <= 6 bits produced any
	// collision (true on Zen 1/2, false on Zen 3/4 — why the paper moved
	// to a solver).
	BruteForceFound  bool
	BruteForceMask   uint64
	BruteForceTested int
	// Samples/Batches quantify the random-collision sampling.
	Samples, Batches int
	// Functions are the recovered XOR functions involving bit 47,
	// rendered like Figure 7.
	Functions []string
	// TagOverlaps are the recovered weight-2 relations (b12⊕b16, b13⊕b17).
	TagOverlaps []string
	// ExampleMask is an observed cross-privilege collision pattern.
	ExampleMask uint64
}

// Fig7Options tunes the recovery.
type Fig7Options struct {
	// Context, when non-nil, bounds the recovery; nil means
	// context.Background().
	Context         context.Context
	Seed            int64
	Samples         int // independent collisions to gather; 0 = 22 (full rank)
	MaxBatches      int
	BruteForceFlips int // 0 = 4
	BruteBudget     int // candidate limit for the brute-force stage; 0 = 20000
	Jobs            int // worker pool for RunFig7Sweep; 0 = GOMAXPROCS
}

// RunFig7Sweep runs the Figure 7 recovery on several microarchitectures
// in parallel (opts.Jobs workers), returning results in archs order.
func RunFig7Sweep(archs []Microarch, opts Fig7Options) ([]*Fig7, error) {
	return sweep.Run(optionsContext(opts.Context), len(archs), sweepOpts("fig7", len(archs), opts.Jobs),
		func(ctx context.Context, i int) (*Fig7, error) {
			o := opts
			o.Context = ctx // the sweep-scoped context, so a failure elsewhere cancels this job's stages too
			return RunFig7(archs[i], o)
		})
}

// RunFig7 reproduces the Section 6.2 methodology on one microarchitecture:
// brute force first, then batched random-collision sampling plus GF(2)
// recovery of the index functions (the paper's Z3 step, solved exactly).
func RunFig7(arch Microarch, opts Fig7Options) (*Fig7, error) {
	p, err := arch.profile()
	if err != nil {
		return nil, err
	}
	if opts.BruteForceFlips == 0 {
		opts.BruteForceFlips = 4
	}
	if opts.BruteBudget == 0 {
		opts.BruteBudget = 20000
	}
	if opts.Samples == 0 {
		opts.Samples = 22
	}
	bf, err := core.BruteForceCollisions(p, opts.Seed, opts.BruteForceFlips, opts.BruteBudget)
	if err != nil {
		return nil, err
	}
	// The two stages are independently long; honor a cancelled request
	// between them rather than paying for the sampling stage too.
	if err := optionsContext(opts.Context).Err(); err != nil {
		return nil, err
	}
	rec, err := core.RecoverBTBFunctions(p, opts.Seed, opts.Samples, opts.MaxBatches)
	if err != nil {
		return nil, err
	}
	out := &Fig7{
		Arch:             arch,
		BruteForceFound:  bf.Found,
		BruteForceMask:   bf.Mask,
		BruteForceTested: bf.Tested,
		Samples:          rec.Samples,
		Batches:          rec.Batches,
		ExampleMask:      rec.ExampleMask,
	}
	for _, f := range rec.B47Functions {
		out.Functions = append(out.Functions, f.String())
	}
	for _, f := range rec.TagOverlaps {
		out.TagOverlaps = append(out.TagOverlaps, f.String())
	}
	return out, nil
}

// String renders the recovery like Figure 7.
func (f *Fig7) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — BTB function recovery on %s\n", f.Arch.ModelName())
	if f.BruteForceFound {
		fmt.Fprintf(&b, "  brute force (<=%d-bit flips): pattern %#x after %d candidates\n",
			4, f.BruteForceMask, f.BruteForceTested)
	} else {
		fmt.Fprintf(&b, "  brute force: no collision in %d candidates (as the paper found on Zen 3)\n",
			f.BruteForceTested)
	}
	fmt.Fprintf(&b, "  sampling: %d collisions in %d victim runs\n", f.Samples, f.Batches)
	for i, fn := range f.Functions {
		fmt.Fprintf(&b, "  f%-2d = %s\n", i, fn)
	}
	for _, fn := range f.TagOverlaps {
		fmt.Fprintf(&b, "  overlap: %s\n", fn)
	}
	if f.ExampleMask != 0 {
		fmt.Fprintf(&b, "  example collision: K ^ %#x\n", f.ExampleMask)
	}
	return b.String()
}

// Table2Row is one covert-channel measurement.
type Table2Row struct {
	Arch        Microarch
	Model       string
	AccuracyPct float64 // median over runs
	BitsPerSec  float64 // median over runs
	Runs        int
}

// Table2Options tunes the covert-channel experiment.
type Table2Options struct {
	// Context, when non-nil, bounds the sweep: cancellation or a
	// deadline aborts the remaining (arch, run) jobs. Nil means
	// context.Background().
	Context context.Context
	Seed    int64
	Bits    int // per run; 0 = 4096 (the paper's message size)
	Runs    int // 0 = 10 (the paper reports the median of 10)
	Jobs    int // parallel (arch, run) workers; 0 = GOMAXPROCS, 1 = sequential
	// DisablePredecode runs the channels on the byte-at-a-time reference
	// fetch path (see SystemConfig.DisablePredecode).
	DisablePredecode bool
}

// RunTable2Fetch reproduces Table 2 (top): the P1 fetch covert channel on
// the given microarchitectures.
func RunTable2Fetch(archs []Microarch, opts Table2Options) ([]Table2Row, error) {
	return runTable2(archs, opts, core.RunCovertFetch)
}

// RunTable2Execute reproduces Table 2 (bottom): the P2 execute covert
// channel (only AMD Zen 1/2 carry a signal).
func RunTable2Execute(archs []Microarch, opts Table2Options) ([]Table2Row, error) {
	return runTable2(archs, opts, core.RunCovertExecute)
}

func runTable2(archs []Microarch, opts Table2Options,
	run func(p *uarch.Profile, cfg core.CovertConfig) (*core.CovertResult, error)) ([]Table2Row, error) {
	if opts.Runs == 0 {
		opts.Runs = 10
	}
	// Fan the (arch, run) grid over the worker pool. Each job boots an
	// independent channel with an arithmetically derived seed, so results
	// depend only on the job index and the parallel table is identical to
	// the sequential one.
	type sample struct{ acc, rate float64 }
	samples, err := sweep.Run(optionsContext(opts.Context), len(archs)*opts.Runs, sweepOpts("table2", len(archs)*opts.Runs, opts.Jobs),
		func(_ context.Context, i int) (sample, error) {
			arch, r := archs[i/opts.Runs], i%opts.Runs
			p, err := arch.profile()
			if err != nil {
				return sample{}, err
			}
			res, err := run(p, core.CovertConfig{
				Seed: opts.Seed + int64(r)*101, Bits: opts.Bits,
				DisablePredecode: opts.DisablePredecode,
			})
			if err != nil {
				return sample{}, err
			}
			return sample{acc: res.Accuracy.Percent(), rate: res.BitsPerSecond}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for ai, arch := range archs {
		var accs, rates []float64
		for r := 0; r < opts.Runs; r++ {
			s := samples[ai*opts.Runs+r]
			accs = append(accs, s.acc)
			rates = append(rates, s.rate)
		}
		rows = append(rows, Table2Row{
			Arch:        arch,
			Model:       arch.ModelName(),
			AccuracyPct: stats.Median(accs),
			BitsPerSec:  stats.Median(rates),
			Runs:        opts.Runs,
		})
	}
	return rows, nil
}

// FormatTable2 renders covert-channel rows like Table 2.
func FormatTable2(title string, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (median of %d runs)\n", title, rowsRuns(rows))
	fmt.Fprintf(&b, "  %-8s %-24s %-10s %s\n", "µarch", "Model", "Accuracy", "Rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %-24s %-10.2f %.0f bits/s\n", r.Arch, r.Model, r.AccuracyPct, r.BitsPerSec)
	}
	return b.String()
}

func rowsRuns(rows []Table2Row) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Runs
}

// DerandRow is one KASLR-derandomization result row (Tables 3, 4, 5).
type DerandRow struct {
	Arch          Microarch
	Model         string
	AccuracyPct   float64
	MedianSeconds float64 // simulated seconds
	Runs          int
	// Memory annotates the Table 5 rows (installed physical memory).
	Memory string
}

// DerandOptions tunes the multi-run derandomization experiments.
type DerandOptions struct {
	// Context, when non-nil, bounds the sweep: cancellation or a
	// deadline aborts the remaining (config, reboot) jobs. Nil means
	// context.Background().
	Context context.Context
	Seed    int64
	Runs    int // reboots; 0 = 20 (paper: 100 for Table 3/5, 10 for Table 4)
	Jobs    int // parallel (arch, reboot) workers; 0 = GOMAXPROCS, 1 = sequential
	// DisablePredecode boots every system on the byte-at-a-time reference
	// fetch path (see SystemConfig.DisablePredecode).
	DisablePredecode bool
}

// derandRun is one reboot's outcome inside a Table 3-5 sweep.
type derandRun struct {
	correct bool
	seconds float64
}

// sweepDerand fans a (config, reboot) grid over the worker pool — n
// configs × runs reboots — and returns the outcomes grouped by config,
// reboots in run order. do must derive all randomness from its job
// coordinates so the grouping is independent of the pool size.
func sweepDerand(ctx context.Context, name string, n, runs, jobs int, do func(cfgIdx, r int) (derandRun, error)) ([][]derandRun, error) {
	flat, err := sweep.Run(optionsContext(ctx), n*runs, sweepOpts(name, n*runs, jobs),
		func(_ context.Context, i int) (derandRun, error) {
			return do(i/runs, i%runs)
		})
	if err != nil {
		return nil, err
	}
	out := make([][]derandRun, n)
	for ci := range out {
		out[ci] = flat[ci*runs : (ci+1)*runs]
	}
	return out, nil
}

// foldDerand reduces one config's reboot outcomes to a table row.
func foldDerand(arch Microarch, outcomes []derandRun) DerandRow {
	var acc stats.Accuracy
	times := make([]float64, 0, len(outcomes))
	for _, o := range outcomes {
		acc.Add(o.correct)
		times = append(times, o.seconds)
	}
	return DerandRow{
		Arch: arch, Model: arch.ModelName(),
		AccuracyPct:   acc.Percent(),
		MedianSeconds: stats.Median(times),
		Runs:          len(outcomes),
	}
}

// RunTable3 reproduces Table 3: kernel-image KASLR derandomization with
// P1, rebooting (re-randomizing) before each run.
func RunTable3(archs []Microarch, opts DerandOptions) ([]DerandRow, error) {
	if opts.Runs == 0 {
		opts.Runs = 20
	}
	grouped, err := sweepDerand(opts.Context, "table3", len(archs), opts.Runs, opts.Jobs,
		func(ai, r int) (derandRun, error) {
			sys, err := NewSystem(archs[ai], SystemConfig{Seed: opts.Seed + int64(r)*31, DisablePredecode: opts.DisablePredecode})
			if err != nil {
				return derandRun{}, err
			}
			res, err := sys.BreakImageKASLR()
			if err != nil {
				return derandRun{}, err
			}
			return derandRun{correct: res.Correct, seconds: res.Seconds}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []DerandRow
	for ai, arch := range archs {
		rows = append(rows, foldDerand(arch, grouped[ai]))
	}
	return rows, nil
}

// RunTable4 reproduces Table 4: physmap KASLR derandomization with P2 on
// AMD Zen 1/2. Each run chains from a fresh image-KASLR break.
func RunTable4(archs []Microarch, opts DerandOptions) ([]DerandRow, error) {
	if opts.Runs == 0 {
		opts.Runs = 10
	}
	grouped, err := sweepDerand(opts.Context, "table4", len(archs), opts.Runs, opts.Jobs,
		func(ai, r int) (derandRun, error) {
			sys, err := NewSystem(archs[ai], SystemConfig{Seed: opts.Seed + int64(r)*37, DisablePredecode: opts.DisablePredecode})
			if err != nil {
				return derandRun{}, err
			}
			img, err := sys.BreakImageKASLR()
			if err != nil {
				return derandRun{}, err
			}
			res, err := sys.BreakPhysmapKASLR(img.Guess)
			if err != nil {
				return derandRun{}, err
			}
			return derandRun{correct: res.Correct, seconds: res.Seconds}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []DerandRow
	for ai, arch := range archs {
		rows = append(rows, foldDerand(arch, grouped[ai]))
	}
	return rows, nil
}

// RunTable5 reproduces Table 5: finding the physical address of an
// attacker page, on the paper's memory configurations (8 GB Zen 1, 64 GB
// Zen 2).
func RunTable5(opts DerandOptions) ([]DerandRow, error) {
	if opts.Runs == 0 {
		opts.Runs = 20
	}
	configs := []struct {
		arch Microarch
		mem  uint64
	}{
		{Zen1, 8 << 30},
		{Zen2, 64 << 30},
	}
	grouped, err := sweepDerand(opts.Context, "table5", len(configs), opts.Runs, opts.Jobs,
		func(ci, r int) (derandRun, error) {
			c := configs[ci]
			sys, err := NewSystem(c.arch, SystemConfig{Seed: opts.Seed + int64(r)*41, PhysBytes: c.mem, DisablePredecode: opts.DisablePredecode})
			if err != nil {
				return derandRun{}, err
			}
			img, err := sys.BreakImageKASLR()
			if err != nil {
				return derandRun{}, err
			}
			pm, err := sys.BreakPhysmapKASLR(img.Guess)
			if err != nil {
				return derandRun{}, err
			}
			if pm.Guess == 0 {
				// The physmap stage found no signal this boot; the chain
				// cannot continue, which counts as a failed run.
				return derandRun{correct: false, seconds: pm.Seconds}, nil
			}
			res, err := sys.FindPhysAddr(img.Guess, pm.Guess)
			if err != nil {
				return derandRun{}, err
			}
			return derandRun{correct: res.Correct, seconds: res.Seconds}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []DerandRow
	for ci, c := range configs {
		row := foldDerand(c.arch, grouped[ci])
		row.Memory = fmt.Sprintf("%d GB", c.mem>>30)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDerand renders derandomization rows like Tables 3-5.
func FormatDerand(title string, rows []DerandRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-8s %-24s %-8s %-10s %s\n", "µarch", "Model", "Memory", "Accuracy", "Median time (sim)")
	for _, r := range rows {
		mem := r.Memory
		if mem == "" {
			mem = "-"
		}
		fmt.Fprintf(&b, "  %-8s %-24s %-8s %-10.0f %.4f s\n", r.Arch, r.Model, mem, r.AccuracyPct, r.MedianSeconds)
	}
	return b.String()
}

// MDSReport is the Section 7.4 experiment outcome.
type MDSReport struct {
	Arch           Microarch
	Runs           int
	SignalRuns     int // runs with any signal (the paper saw 8 of 10)
	AccuracyPct    float64
	MedianBytesSec float64
}

// MDSOptions tunes the Section 7.4 experiment.
type MDSOptions struct {
	// Context, when non-nil, bounds the sweep: cancellation or a
	// deadline aborts the remaining reboot jobs. Nil means
	// context.Background().
	Context context.Context
	Seed    int64
	Runs    int // 0 = 10 (the paper's count)
	Bytes   int // 0 = 4096 (the paper leaks 4096 bytes)
	Jobs    int // parallel reboot workers; 0 = GOMAXPROCS, 1 = sequential
	// DisablePredecode boots every system on the byte-at-a-time reference
	// fetch path (see SystemConfig.DisablePredecode).
	DisablePredecode bool
}

// RunMDSExperiment reproduces Section 7.4: leaking the planted kernel
// secret through the Listing 4 MDS gadget, across repeated reboots. A
// reboot whose exploit chain fails outright (the paper saw signal in
// only 8 of 10 runs) counts as a no-signal run rather than aborting the
// sweep, so any seed yields a report.
func RunMDSExperiment(arch Microarch, opts MDSOptions) (*MDSReport, error) {
	if opts.Runs == 0 {
		opts.Runs = 10
	}
	if opts.Bytes == 0 {
		opts.Bytes = 4096
	}
	rep := &MDSReport{Arch: arch, Runs: opts.Runs}
	type leakRun struct {
		acc, rate float64
	}
	outcomes, err := sweep.Run(optionsContext(opts.Context), opts.Runs, sweepOpts("mds", opts.Runs, opts.Jobs),
		func(_ context.Context, r int) (leakRun, error) {
			sys, err := NewSystem(arch, SystemConfig{Seed: opts.Seed + int64(r)*43, DisablePredecode: opts.DisablePredecode})
			if err != nil {
				return leakRun{}, err
			}
			secretVA, _ := sys.SecretAddr()
			res, err := sys.LeakKernelMemory(secretVA, opts.Bytes)
			if err != nil {
				// The chain failed on this boot (no physmap signal, reload
				// buffer not recovered, ...): a zero-signal run.
				return leakRun{}, nil
			}
			return leakRun{acc: res.AccuracyPct, rate: res.BytesPerSecond}, nil
		})
	if err != nil {
		return nil, err
	}
	var accs, rates []float64
	for _, o := range outcomes {
		if o.acc > 0 {
			rep.SignalRuns++
			accs = append(accs, o.acc)
			rates = append(rates, o.rate)
		}
	}
	rep.AccuracyPct = stats.Median(accs)
	rep.MedianBytesSec = stats.Median(rates)
	return rep, nil
}

func (r *MDSReport) String() string {
	return fmt.Sprintf(
		"Section 7.4 — MDS-gadget kernel leak on %s: signal in %d/%d runs, median accuracy %.2f%%, median %.0f B/s (sim)",
		r.Arch.ModelName(), r.SignalRuns, r.Runs, r.AccuracyPct, r.MedianBytesSec)
}

// MitigationSummary mirrors the Section 6.3 / 8 evaluation.
type MitigationSummary struct {
	Arch              Microarch
	SuppressSupported bool
	BaselineReach     StageReach
	SuppressReach     StageReach
	BranchVictimReach StageReach
	OverheadPct       float64

	AutoIBRSSupported bool
	AutoIBRSLeavesIF  bool
	AutoIBRSBlocksID  bool

	IBPBBlocksPhantom bool
	IBPBOverheadPct   float64

	// The paper's hypothetical Section 8.1 in-depth fix, implemented here
	// so its coverage and cost can be measured.
	WaitForDecodeBlocksAll   bool
	WaitForDecodeOverheadPct float64
}

// RunMitigations reproduces the Section 6.3 experiments (O4, O5, the
// SuppressBPOnNonBr overhead) and the Section 8 IBPB analysis.
func RunMitigations(arch Microarch, seed int64) (*MitigationSummary, error) {
	p, err := arch.profile()
	if err != nil {
		return nil, err
	}
	rep, err := core.EvaluateMitigations(p, seed)
	if err != nil {
		return nil, err
	}
	return &MitigationSummary{
		Arch:                     arch,
		SuppressSupported:        rep.SuppressSupported,
		BaselineReach:            StageReach(rep.BaselineReach),
		SuppressReach:            StageReach(rep.SuppressReach),
		BranchVictimReach:        StageReach(rep.BranchVictimReachWithMSR),
		OverheadPct:              rep.OverheadPct,
		AutoIBRSSupported:        rep.AutoIBRSSupported,
		AutoIBRSLeavesIF:         rep.AutoIBRSCrossPrivIF,
		AutoIBRSBlocksID:         !rep.AutoIBRSCrossPrivID,
		IBPBBlocksPhantom:        rep.IBPBBlocksPhantom,
		IBPBOverheadPct:          rep.IBPBOverheadPct,
		WaitForDecodeBlocksAll:   !rep.WaitForDecodeReach.IF && !rep.WaitForDecodeReach.ID && !rep.WaitForDecodeReach.EX,
		WaitForDecodeOverheadPct: rep.WaitForDecodeOverheadPct,
	}, nil
}

func (m *MitigationSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mitigations — %s\n", m.Arch.ModelName())
	fmt.Fprintf(&b, "  SuppressBPOnNonBr supported: %v\n", m.SuppressSupported)
	fmt.Fprintf(&b, "    non-branch victim: %v -> %v with MSR set (O4)\n", m.BaselineReach, m.SuppressReach)
	if m.SuppressSupported {
		fmt.Fprintf(&b, "    branch victim with MSR set: %v\n", m.BranchVictimReach)
		fmt.Fprintf(&b, "    benchmark overhead: %.2f%%\n", m.OverheadPct)
	}
	if m.AutoIBRSSupported {
		fmt.Fprintf(&b, "  AutoIBRS: IF persists=%v (O5), ID blocked=%v\n", m.AutoIBRSLeavesIF, m.AutoIBRSBlocksID)
	}
	fmt.Fprintf(&b, "  IBPB on kernel entry blocks Phantom: %v (syscall cost +%.0f%%)\n",
		m.IBPBBlocksPhantom, m.IBPBOverheadPct)
	fmt.Fprintf(&b, "  hypothetical wait-for-decode frontend (§8.1): blocks all stages=%v, overhead %.2f%%\n",
		m.WaitForDecodeBlocksAll, m.WaitForDecodeOverheadPct)
	return b.String()
}
