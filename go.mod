module phantom

go 1.22
