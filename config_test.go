package phantom

import "testing"

// TestNewSystemNoiseMatrix pins the SystemConfig noise semantics:
// Deterministic disables all injected noise even when a NoiseLevel is
// configured, an unset NoiseLevel defaults to the calibrated 1, and an
// explicit NoiseLevel passes through otherwise.
func TestNewSystemNoiseMatrix(t *testing.T) {
	cases := []struct {
		name          string
		deterministic bool
		noiseLevel    float64
		want          float64
	}{
		{"defaults", false, 0, 1},
		{"explicit noise", false, 2.5, 2.5},
		{"deterministic", true, 0, 0},
		{"deterministic overrides noise", true, 2.5, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, err := NewSystem(Zen2, SystemConfig{
				Seed:          1,
				Deterministic: c.deterministic,
				NoiseLevel:    c.noiseLevel,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := sys.NoiseLevel(); got != c.want {
				t.Errorf("Deterministic=%v NoiseLevel=%v: effective noise %v, want %v",
					c.deterministic, c.noiseLevel, got, c.want)
			}
		})
	}
}

// TestDeterministicRunsIdentical asserts the property the flag is named
// for: with Deterministic set, two same-seed systems produce identical
// attack outcomes even under a (dropped) noise configuration.
func TestDeterministicRunsIdentical(t *testing.T) {
	run := func(noise float64) (uint64, float64) {
		sys, err := NewSystem(Zen2, SystemConfig{Seed: 77, Deterministic: true, NoiseLevel: noise})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.BreakImageKASLR()
		if err != nil {
			t.Fatal(err)
		}
		return res.Guess, res.Seconds
	}
	g1, s1 := run(0)
	g2, s2 := run(3)
	if g1 != g2 || s1 != s2 {
		t.Fatalf("deterministic runs diverged under configured noise: %#x/%f vs %#x/%f", g1, s1, g2, s2)
	}
}
