package phantom

import (
	"bytes"
	"reflect"
	"testing"
)

// The sweep engine's contract: per-run seeds are derived arithmetically
// from the job coordinates, so a parallel sweep must render the very
// bytes the sequential one does, and the same seed must render the same
// bytes twice. These tests pin that for every multi-run experiment.

func TestTable2SweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		rows, err := RunTable2Fetch(AMDMicroarchs(), Table2Options{Seed: 60, Bits: 128, Runs: 4, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable2("Table 2 (top) — fetch covert channel (P1)", rows)
	}
	seq := render(1)
	if par := render(8); par != seq {
		t.Errorf("parallel Table 2 differs from sequential:\n--- jobs=1\n%s--- jobs=8\n%s", seq, par)
	}
	if again := render(1); again != seq {
		t.Errorf("same-seed Table 2 runs differ:\n%s\nvs\n%s", seq, again)
	}
}

func TestTable2ExecuteSweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		rows, err := RunTable2Execute([]Microarch{Zen1, Zen2}, Table2Options{Seed: 61, Bits: 128, Runs: 3, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable2("Table 2 (bottom) — execute covert channel (P2)", rows)
	}
	if seq, par := render(1), render(8); par != seq {
		t.Errorf("parallel execute channel differs from sequential:\n%s\nvs\n%s", seq, par)
	}
}

func TestTable3SweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		rows, err := RunTable3([]Microarch{Zen2, Zen3, Zen4}, DerandOptions{Seed: 62, Runs: 4, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return FormatDerand("Table 3", rows)
	}
	seq := render(1)
	if par := render(8); par != seq {
		t.Errorf("parallel Table 3 differs from sequential:\n%s\nvs\n%s", seq, par)
	}
	if again := render(8); again != seq {
		t.Error("repeated parallel Table 3 runs differ")
	}
}

func TestTable4SweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		rows, err := RunTable4([]Microarch{Zen1, Zen2}, DerandOptions{Seed: 63, Runs: 3, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return FormatDerand("Table 4", rows)
	}
	if seq, par := render(1), render(8); par != seq {
		t.Errorf("parallel Table 4 differs from sequential:\n%s\nvs\n%s", seq, par)
	}
}

func TestTable5SweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		rows, err := RunTable5(DerandOptions{Seed: 64, Runs: 2, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return FormatDerand("Table 5", rows)
	}
	if seq, par := render(1), render(8); par != seq {
		t.Errorf("parallel Table 5 differs from sequential:\n%s\nvs\n%s", seq, par)
	}
}

func TestMDSSweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		rep, err := RunMDSExperiment(Zen2, MDSOptions{Seed: 65, Runs: 3, Bytes: 256, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if seq, par := render(1), render(8); par != seq {
		t.Errorf("parallel MDS report differs from sequential:\n%s\nvs\n%s", seq, par)
	}
}

func TestFig6SweepMatchesSerial(t *testing.T) {
	archs := []Microarch{Zen2, Zen4}
	swept, err := RunFig6Sweep(archs, 66, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(archs) {
		t.Fatalf("%d series for %d archs", len(swept), len(archs))
	}
	for i, arch := range archs {
		serial, err := RunFig6(arch, 66)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(swept[i], serial) {
			t.Errorf("%s: swept series differs from serial run", arch)
		}
	}
}

// The predecode cache (internal/pipeline/predecode.go) is a pure fetch
// memoisation: it must never change what any experiment renders. These
// tests pin byte-identical output between the cached fast path and the
// byte-at-a-time reference path for each experiment family.

func TestTable1PredecodeParity(t *testing.T) {
	render := func(disable bool) string {
		tab, err := RunTable1(Zen2, Table1Options{Seed: 70, Trials: 3, DisablePredecode: disable})
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	if on, off := render(false), render(true); on != off {
		t.Errorf("Table 1 changes with the predecode cache:\n--- cache on\n%s--- cache off\n%s", on, off)
	}
}

func TestTable2PredecodeParity(t *testing.T) {
	render := func(disable bool) string {
		rows, err := RunTable2Fetch([]Microarch{Zen2}, Table2Options{Seed: 71, Bits: 128, Runs: 2, Jobs: 2, DisablePredecode: disable})
		if err != nil {
			t.Fatal(err)
		}
		return FormatTable2("Table 2 (top) — fetch covert channel (P1)", rows)
	}
	if on, off := render(false), render(true); on != off {
		t.Errorf("Table 2 changes with the predecode cache:\n--- cache on\n%s--- cache off\n%s", on, off)
	}
}

func TestTable3PredecodeParity(t *testing.T) {
	render := func(disable bool) string {
		rows, err := RunTable3([]Microarch{Zen3}, DerandOptions{Seed: 72, Runs: 3, Jobs: 2, DisablePredecode: disable})
		if err != nil {
			t.Fatal(err)
		}
		return FormatDerand("Table 3", rows)
	}
	if on, off := render(false), render(true); on != off {
		t.Errorf("Table 3 changes with the predecode cache:\n--- cache on\n%s--- cache off\n%s", on, off)
	}
}

func TestMDSPredecodeParity(t *testing.T) {
	render := func(disable bool) string {
		rep, err := RunMDSExperiment(Zen2, MDSOptions{Seed: 73, Runs: 2, Bytes: 256, Jobs: 2, DisablePredecode: disable})
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	if on, off := render(false), render(true); on != off {
		t.Errorf("MDS report changes with the predecode cache:\n--- cache on\n%s--- cache off\n%s", on, off)
	}
}

func TestReportSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the report twice")
	}
	render := func(jobs int) []byte {
		var buf bytes.Buffer
		err := GenerateReport(&buf, ReportOptions{
			Seed: 67, Runs: 2, Bits: 128, Jobs: jobs,
			Archs:           []Microarch{Zen2, Zen4},
			MitigationArchs: []Microarch{Zen2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := render(1), render(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("parallel report differs from sequential (%d vs %d bytes)", len(seq), len(par))
	}
}
