package phantom

import (
	"bytes"
	"fmt"
	"testing"

	"phantom/internal/telemetry"
)

// The telemetry hub's contract, the same shape as the predecode cache's
// (TestTable1PredecodeParity and friends): it observes the harness and
// charges nothing to the model. Every experiment must render the very
// bytes with telemetry off, on, or sampled — including on a multi-worker
// sweep, which is what `go test -race` exercises here. A diff means the
// telemetry path perturbed a modeled structure, a seed, or an iteration
// order.

// parityCase renders one experiment with an 8-worker sweep where the
// experiment supports one.
type parityCase struct {
	name   string
	render func(t *testing.T) string
}

func telemetryParityCases() []parityCase {
	return []parityCase{
		{"table1", func(t *testing.T) string {
			tab, err := RunTable1(Zen2, Table1Options{Seed: 80, Trials: 3})
			if err != nil {
				t.Fatal(err)
			}
			return tab.String()
		}},
		{"table2_fetch", func(t *testing.T) string {
			rows, err := RunTable2Fetch([]Microarch{Zen2}, Table2Options{Seed: 81, Bits: 128, Runs: 2, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			return FormatTable2("Table 2 (top) — fetch covert channel (P1)", rows)
		}},
		{"table3", func(t *testing.T) string {
			rows, err := RunTable3([]Microarch{Zen3}, DerandOptions{Seed: 82, Runs: 3, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			return FormatDerand("Table 3", rows)
		}},
		{"table4", func(t *testing.T) string {
			rows, err := RunTable4([]Microarch{Zen1}, DerandOptions{Seed: 83, Runs: 2, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			return FormatDerand("Table 4", rows)
		}},
		{"table5", func(t *testing.T) string {
			rows, err := RunTable5(DerandOptions{Seed: 84, Runs: 2, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			return FormatDerand("Table 5", rows)
		}},
		{"fig6", func(t *testing.T) string {
			series, err := RunFig6Sweep([]Microarch{Zen2}, 85, 8)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprint(series)
		}},
		{"fig7", func(t *testing.T) string {
			fns, err := RunFig7Sweep([]Microarch{Zen3}, Fig7Options{Seed: 86, Samples: 5, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprint(fns)
		}},
		{"mds", func(t *testing.T) string {
			rep, err := RunMDSExperiment(Zen2, MDSOptions{Seed: 87, Runs: 2, Bytes: 256, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			return rep.String()
		}},
	}
}

// withTelemetry renders under an active hub and returns the output plus
// the run log the hub produced, tearing the hub down before returning.
func withTelemetry(t *testing.T, sampleEvery int, render func(t *testing.T) string) (string, []byte) {
	t.Helper()
	var runLog, progress bytes.Buffer
	telemetry.Enable(telemetry.Config{
		RunLog:      &runLog,
		Progress:    &progress,
		SampleEvery: sampleEvery,
		Label:       t.Name(),
	})
	out := render(t)
	if err := telemetry.Disable(); err != nil {
		t.Fatalf("telemetry.Disable: %v", err)
	}
	return out, runLog.Bytes()
}

func TestTelemetryParity(t *testing.T) {
	for _, c := range telemetryParityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if telemetry.Active() != nil {
				t.Fatal("hub already active at test start")
			}
			baseline := c.render(t)

			on, runLog := withTelemetry(t, 1, c.render)
			if on != baseline {
				t.Errorf("output changes with telemetry on:\n--- off\n%s--- on\n%s", baseline, on)
			}
			// The invariant is only meaningful if telemetry actually
			// observed the run: the hub must have produced records.
			if len(runLog) == 0 {
				t.Error("telemetry-on run produced an empty run log")
			}

			sampled, _ := withTelemetry(t, 7, c.render)
			if sampled != baseline {
				t.Errorf("output changes with sampled telemetry:\n--- off\n%s--- sampled\n%s", baseline, sampled)
			}
		})
	}
}

// TestReportTelemetryParity pins the full report document — every table,
// figure and sweep in one pass — with and without an active hub.
func TestReportTelemetryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the report twice")
	}
	render := func(t *testing.T) string {
		var buf bytes.Buffer
		err := GenerateReport(&buf, ReportOptions{
			Seed: 88, Runs: 2, Bits: 128, Jobs: 8,
			Archs:           []Microarch{Zen2},
			MitigationArchs: []Microarch{Zen2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	baseline := render(t)
	on, runLog := withTelemetry(t, 1, render)
	if on != baseline {
		t.Error("report changes with telemetry on")
	}
	if len(runLog) == 0 {
		t.Error("telemetry-on report produced an empty run log")
	}
}

// TestTelemetryDisabledIsFree pins the off-path contract: with no active
// hub, experiment code sees nil handles everywhere and the run log and
// progress sinks stay untouched.
func TestTelemetryDisabledIsFree(t *testing.T) {
	if telemetry.Active() != nil {
		t.Fatal("hub unexpectedly active")
	}
	if s := telemetry.Sweep("off", 3); s != nil {
		t.Errorf("Sweep returned %v with no active hub", s)
	}
	if stats, _ := telemetry.MachineStats(); stats != nil {
		t.Errorf("MachineStats returned %v with no active hub", stats)
	}
	// All of these must be no-ops on nil receivers rather than panics.
	var sc *telemetry.SweepScope
	sc.SweepStart(1, 1)
	sc.JobStart(0, 0)
	sc.JobDone(0, 0, 0, nil)
	sc.SweepEnd()
}
