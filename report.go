package phantom

import (
	"context"
	"fmt"
	"io"

	"phantom/internal/core"
	"phantom/internal/sweep"
)

// ReportOptions controls GenerateReport's scale.
type ReportOptions struct {
	// Context, when non-nil, bounds the generation: cancellation or a
	// deadline aborts between sections and cancels the section sweeps.
	// Nil means context.Background().
	Context context.Context
	Seed    int64
	// Runs per multi-run experiment (Tables 3-5, the MDS leak); 0 = 10.
	Runs int
	// Bits per covert-channel run; 0 = 1024 (the paper's 4096 via flag).
	Bits int
	// Jobs sizes the worker pool every section's sweep runs on; 0 =
	// GOMAXPROCS, 1 = the sequential path. The report text is identical
	// for every pool size.
	Jobs int
	// Archs to cover in the Table 1 section; nil = all eight.
	Archs []Microarch
	// MitigationArchs to evaluate in the mitigation section; nil = all
	// AMD parts.
	MitigationArchs []Microarch
}

// withDefaults fills the zero-value fields with the documented defaults.
func (o ReportOptions) withDefaults() ReportOptions {
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Bits == 0 {
		o.Bits = 1024
	}
	if o.Archs == nil {
		o.Archs = AllMicroarchs()
	}
	if o.MitigationArchs == nil {
		o.MitigationArchs = AMDMicroarchs()
	}
	return o
}

// paperRef holds the published value a measured row is compared against.
type paperRef struct {
	label string
	paper string
}

// reportSection is one independently renderable unit of the report. Each
// section computes its per-arch results on the worker pool, then writes
// them in arch order, so the document is byte-identical to a fully
// sequential generation.
type reportSection struct {
	Title string
	write func(w io.Writer, opts ReportOptions) error
}

// reportSections lists the report body in document order.
func reportSections() []reportSection {
	return []reportSection{
		{"Table 1 — training×victim matrix", writeTable1Section},
		{"Figure 6 — speculative decode", writeFig6Section},
		{"Table 2 — covert channels", writeTable2Section},
		{"Tables 3-5 — derandomization", writeDerandSections},
		{"Section 7.4 — MDS-gadget kernel leak (Zen 2)", writeMDSSection},
		{"Conventional Spectre-V2 baseline", writeSpectreV2Section},
		{"Mitigations (Sections 6.3, 8)", writeMitigationSection},
	}
}

// ReportSectionTitles lists the section headings GenerateReport emits, in
// order, for callers (and tests) that render sections individually.
func ReportSectionTitles() []string {
	var out []string
	for _, s := range reportSections() {
		out = append(out, s.Title)
	}
	return out
}

// GenerateReportSection renders the single section with the given title
// (as listed by ReportSectionTitles), heading included, without the
// document preamble. Sections are self-contained, so a pinned-seed golden
// of one section stays stable while the rest of the report evolves.
func GenerateReportSection(w io.Writer, title string, opts ReportOptions) error {
	opts = opts.withDefaults()
	for _, s := range reportSections() {
		if s.Title != title {
			continue
		}
		fmt.Fprintf(w, "## %s\n\n", s.Title)
		return s.write(w, opts)
	}
	return fmt.Errorf("unknown report section %q", title)
}

// GenerateReport runs the evaluation and writes a self-contained Markdown
// document comparing measured values with the paper's published ones —
// the EXPERIMENTS.md content, regenerated live. Expect a few minutes at
// default scale.
func GenerateReport(w io.Writer, opts ReportOptions) error {
	opts = opts.withDefaults()

	fmt.Fprintf(w, "# Phantom reproduction report\n\n")
	fmt.Fprintf(w, "Seed %d, %d runs per derandomization experiment, %d bits per covert run.\n",
		opts.Seed, opts.Runs, opts.Bits)
	fmt.Fprintf(w, "All times and rates are simulated (nominal 3 GHz); see EXPERIMENTS.md for the\n")
	fmt.Fprintf(w, "scale discussion. Paper columns quote MICRO '23 Tables 1-5 and Sections 6-8.\n\n")

	for _, s := range reportSections() {
		if err := optionsContext(opts.Context).Err(); err != nil {
			return err
		}
		fmt.Fprintf(w, "## %s\n\n", s.Title)
		if err := s.write(w, opts); err != nil {
			return fmt.Errorf("section %q: %w", s.Title, err)
		}
	}
	return nil
}

func writeTable1Section(w io.Writer, opts ReportOptions) error {
	tables, err := sweep.Run(optionsContext(opts.Context), len(opts.Archs), sweepOpts("report_table1", len(opts.Archs), opts.Jobs),
		func(ctx context.Context, i int) (*Table1, error) {
			return RunTable1(opts.Archs[i], Table1Options{Context: ctx, Seed: opts.Seed, Trials: 4})
		})
	if err != nil {
		return err
	}
	for _, tb := range tables {
		fmt.Fprintf(w, "```\n%s```\n\n", tb)
	}
	fmt.Fprintf(w, "Paper: EX on Zen 1/2 only (O3); IF+ID elsewhere (O1, O2); jmp*-victim\n")
	fmt.Fprintf(w, "anomalies on Intel; SLS on AMD (footnote c).\n\n")
	return nil
}

func writeFig6Section(w io.Writer, opts ReportOptions) error {
	fig6Archs := []Microarch{Zen2, Zen4}
	series, err := RunFig6SweepCtx(opts.Context, fig6Archs, opts.Seed, opts.Jobs)
	if err != nil {
		return err
	}
	for fi, arch := range fig6Archs {
		s := series[fi]
		spike, clean := 0, 0
		for _, pt := range s.Points {
			if pt.Offset>>6 == s.SeriesOffset>>6 {
				spike += pt.Misses
			} else {
				clean += pt.Misses
			}
		}
		fmt.Fprintf(w, "- %s: %d misses at the matching offset (%#x), %d elsewhere (paper: single spike)\n",
			arch.ModelName(), spike, s.SeriesOffset, clean)
	}
	fmt.Fprintf(w, "\n")
	return nil
}

func writeTable2Section(w io.Writer, opts ReportOptions) error {
	t2opts := Table2Options{Context: opts.Context, Seed: opts.Seed, Bits: opts.Bits, Runs: min(opts.Runs, 10), Jobs: opts.Jobs}
	fetchRows, err := RunTable2Fetch(AMDMicroarchs(), t2opts)
	if err != nil {
		return err
	}
	fetchPaper := []paperRef{
		{"zen1", "96.30% / 204 b/s"}, {"zen2", "93.04% / 215 b/s"},
		{"zen3", "100% / 256 b/s"}, {"zen4", "90.67% / 341 b/s"},
	}
	writeCovertSection(w, "Fetch (P1)", fetchRows, fetchPaper)
	execRows, err := RunTable2Execute([]Microarch{Zen1, Zen2}, t2opts)
	if err != nil {
		return err
	}
	execPaper := []paperRef{
		{"zen1", "100% / 256 b/s"}, {"zen2", "99.28% / 292 b/s"},
	}
	writeCovertSection(w, "Execute (P2)", execRows, execPaper)
	return nil
}

func writeDerandSections(w io.Writer, opts ReportOptions) error {
	t3, err := RunTable3([]Microarch{Zen2, Zen3, Zen4}, DerandOptions{Context: opts.Context, Seed: opts.Seed, Runs: opts.Runs, Jobs: opts.Jobs})
	if err != nil {
		return err
	}
	writeDerandSection(w, "Kernel image KASLR (Table 3)", t3, []paperRef{
		{"zen2", "97% / 4.09 s"}, {"zen3", "100% / 1.38 s"}, {"zen4", "95% / 1.23 s"},
	})
	t4, err := RunTable4([]Microarch{Zen1, Zen2}, DerandOptions{Context: opts.Context, Seed: opts.Seed, Runs: min(opts.Runs, 10), Jobs: opts.Jobs})
	if err != nil {
		return err
	}
	writeDerandSection(w, "Physmap KASLR (Table 4)", t4, []paperRef{
		{"zen1", "100% / 101 s"}, {"zen2", "90% / 106.5 s"},
	})
	t5, err := RunTable5(DerandOptions{Context: opts.Context, Seed: opts.Seed, Runs: opts.Runs, Jobs: opts.Jobs})
	if err != nil {
		return err
	}
	writeDerandSection(w, "Physical address (Table 5)", t5, []paperRef{
		{"zen1", "99% / 1 s"}, {"zen2", "100% / 16 s"},
	})
	return nil
}

func writeMDSSection(w io.Writer, opts ReportOptions) error {
	mds, err := RunMDSExperiment(Zen2, MDSOptions{Context: opts.Context, Seed: opts.Seed, Runs: min(opts.Runs, 10), Bytes: 1024, Jobs: opts.Jobs})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "- measured: signal in %d/%d runs, median accuracy %.2f%%, %.0f B/s (sim)\n",
		mds.SignalRuns, mds.Runs, mds.AccuracyPct, mds.MedianBytesSec)
	fmt.Fprintf(w, "- paper: signal in 8/10 runs, 100%% accuracy, 84 B/s\n\n")
	return nil
}

func writeSpectreV2Section(w io.Writer, opts ReportOptions) error {
	v2Archs := []Microarch{Zen2, Zen4, Intel13}
	v2s, err := sweep.Run(optionsContext(opts.Context), len(v2Archs), sweepOpts("report_spectrev2", len(v2Archs), opts.Jobs),
		func(_ context.Context, i int) (*core.SpectreV2Result, error) {
			p, err := v2Archs[i].profile()
			if err != nil {
				return nil, err
			}
			return core.RunSpectreV2(p, opts.Seed, 32)
		})
	if err != nil {
		return err
	}
	for _, v2 := range v2s {
		fmt.Fprintf(w, "- %s\n", v2)
	}
	fmt.Fprintf(w, "\nThe backend-resolved window works everywhere — the contrast that makes\n")
	fmt.Fprintf(w, "Phantom's short frontend-resteered windows the interesting case.\n\n")
	return nil
}

func writeMitigationSection(w io.Writer, opts ReportOptions) error {
	mits, err := sweep.Run(optionsContext(opts.Context), len(opts.MitigationArchs), sweepOpts("report_mitigations", len(opts.MitigationArchs), opts.Jobs),
		func(_ context.Context, i int) (*MitigationSummary, error) {
			return RunMitigations(opts.MitigationArchs[i], opts.Seed)
		})
	if err != nil {
		return err
	}
	for _, m := range mits {
		fmt.Fprintf(w, "```\n%s```\n\n", m)
	}
	fmt.Fprintf(w, "Paper: O4 (SuppressBPOnNonBr leaves IF/ID), O5 (AutoIBRS leaves IF),\n")
	fmt.Fprintf(w, "0.69%% UnixBench overhead for SuppressBPOnNonBr on Zen 2.\n")
	return nil
}

func writeCovertSection(w io.Writer, title string, rows []Table2Row, refs []paperRef) {
	fmt.Fprintf(w, "### %s\n\n", title)
	fmt.Fprintf(w, "| µarch | measured accuracy | measured rate (sim) | paper |\n|---|---|---|---|\n")
	for i, r := range rows {
		paper := "—"
		if i < len(refs) {
			paper = refs[i].paper
		}
		fmt.Fprintf(w, "| %s | %.2f%% | %.0f b/s | %s |\n", r.Arch, r.AccuracyPct, r.BitsPerSec, paper)
	}
	fmt.Fprintf(w, "\n")
}

func writeDerandSection(w io.Writer, title string, rows []DerandRow, refs []paperRef) {
	fmt.Fprintf(w, "### %s\n\n", title)
	fmt.Fprintf(w, "| µarch | measured accuracy | measured median (sim) | paper |\n|---|---|---|---|\n")
	for i, r := range rows {
		paper := "—"
		if i < len(refs) {
			paper = refs[i].paper
		}
		fmt.Fprintf(w, "| %s | %.0f%% | %.4f s | %s |\n", r.Arch, r.AccuracyPct, r.MedianSeconds, paper)
	}
	fmt.Fprintf(w, "\n")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
