package phantom

// The benchmark harness regenerates every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact:
//
//	BenchmarkTable1_*       — the training×victim misprediction matrix
//	BenchmarkFig6_*         — the speculative-decode page-offset sweep
//	BenchmarkFig7_*         — BTB collision discovery and function recovery
//	BenchmarkTable2_*       — fetch / execute covert channels
//	BenchmarkTable3_*       — kernel image KASLR derandomization
//	BenchmarkTable4_*       — physmap KASLR derandomization
//	BenchmarkTable5_*       — physical-address derandomization
//	BenchmarkSec74_MDSLeak  — the MDS-gadget kernel memory leak
//	BenchmarkSec63_*        — the mitigation experiments
//
// Each benchmark reports the paper-relevant quality metric alongside the
// wall time: accuracy (accuracy_pct), simulated attack time (sim_ms), and
// channel rate (sim_bits_per_s / sim_bytes_per_s). Run with:
//
//	go test -bench=. -benchmem
import (
	"io"
	"runtime"
	"testing"

	"phantom/internal/telemetry"
)

func benchTable1(b *testing.B, arch Microarch) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := RunTable1(arch, Table1Options{Seed: int64(i), Trials: 3})
		if err != nil {
			b.Fatal(err)
		}
		_ = tb
	}
}

func BenchmarkTable1_Zen1(b *testing.B)    { benchTable1(b, Zen1) }
func BenchmarkTable1_Zen2(b *testing.B)    { benchTable1(b, Zen2) }
func BenchmarkTable1_Zen3(b *testing.B)    { benchTable1(b, Zen3) }
func BenchmarkTable1_Zen4(b *testing.B)    { benchTable1(b, Zen4) }
func BenchmarkTable1_Intel9(b *testing.B)  { benchTable1(b, Intel9) }
func BenchmarkTable1_Intel13(b *testing.B) { benchTable1(b, Intel13) }

func benchFig6(b *testing.B, arch Microarch) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := RunFig6(arch, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		signal := 0
		for _, p := range s.Points {
			signal += p.Misses
		}
		if signal == 0 {
			b.Fatal("no Fig6 signal")
		}
	}
}

func BenchmarkFig6_Zen2(b *testing.B) { benchFig6(b, Zen2) }
func BenchmarkFig6_Zen4(b *testing.B) { benchFig6(b, Zen4) }

func BenchmarkFig7_BruteForceZen2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := RunFig7(Zen2, Fig7Options{Seed: int64(i), Samples: 4, MaxBatches: 200, BruteBudget: 20000})
		if err != nil {
			b.Fatal(err)
		}
		if !f.BruteForceFound {
			b.Fatal("brute force failed")
		}
	}
}

func BenchmarkFig7_RecoveryZen3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := RunFig7(Zen3, Fig7Options{Seed: int64(i) + 9, BruteBudget: 500})
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Functions) < 12 {
			b.Fatalf("recovered only %d functions", len(f.Functions))
		}
	}
}

func benchCovert(b *testing.B, arch Microarch,
	run func([]Microarch, Table2Options) ([]Table2Row, error)) {
	b.ReportAllocs()
	var acc, rate float64
	for i := 0; i < b.N; i++ {
		rows, err := run([]Microarch{arch}, Table2Options{Seed: int64(i), Bits: 1024, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		acc += rows[0].AccuracyPct
		rate += rows[0].BitsPerSec
	}
	b.ReportMetric(acc/float64(b.N), "accuracy_pct")
	b.ReportMetric(rate/float64(b.N), "sim_bits_per_s")
}

func BenchmarkTable2_FetchZen1(b *testing.B)   { benchCovert(b, Zen1, RunTable2Fetch) }
func BenchmarkTable2_FetchZen2(b *testing.B)   { benchCovert(b, Zen2, RunTable2Fetch) }
func BenchmarkTable2_FetchZen3(b *testing.B)   { benchCovert(b, Zen3, RunTable2Fetch) }
func BenchmarkTable2_FetchZen4(b *testing.B)   { benchCovert(b, Zen4, RunTable2Fetch) }
func BenchmarkTable2_ExecuteZen1(b *testing.B) { benchCovert(b, Zen1, RunTable2Execute) }
func BenchmarkTable2_ExecuteZen2(b *testing.B) { benchCovert(b, Zen2, RunTable2Execute) }

func benchTable3(b *testing.B, arch Microarch) {
	b.ReportAllocs()
	correct, simSecs := 0, 0.0
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(arch, SystemConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.BreakImageKASLR()
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct {
			correct++
		}
		simSecs += res.Seconds
	}
	b.ReportMetric(100*float64(correct)/float64(b.N), "accuracy_pct")
	b.ReportMetric(1000*simSecs/float64(b.N), "sim_ms")
}

func BenchmarkTable3_Zen2(b *testing.B) { benchTable3(b, Zen2) }
func BenchmarkTable3_Zen3(b *testing.B) { benchTable3(b, Zen3) }
func BenchmarkTable3_Zen4(b *testing.B) { benchTable3(b, Zen4) }

func benchTable4(b *testing.B, arch Microarch) {
	b.ReportAllocs()
	correct, simSecs := 0, 0.0
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(arch, SystemConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		img, err := sys.BreakImageKASLR()
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct {
			correct++
		}
		simSecs += res.Seconds
	}
	b.ReportMetric(100*float64(correct)/float64(b.N), "accuracy_pct")
	b.ReportMetric(1000*simSecs/float64(b.N), "sim_ms")
}

func BenchmarkTable4_Zen1(b *testing.B) { benchTable4(b, Zen1) }
func BenchmarkTable4_Zen2(b *testing.B) { benchTable4(b, Zen2) }

func benchTable5(b *testing.B, arch Microarch, mem uint64) {
	b.ReportAllocs()
	correct, simSecs := 0, 0.0
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(arch, SystemConfig{Seed: int64(i), PhysBytes: mem})
		if err != nil {
			b.Fatal(err)
		}
		img, err := sys.BreakImageKASLR()
		if err != nil {
			b.Fatal(err)
		}
		pm, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.FindPhysAddr(img.Guess, pm.Guess)
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct {
			correct++
		}
		simSecs += res.Seconds
	}
	b.ReportMetric(100*float64(correct)/float64(b.N), "accuracy_pct")
	b.ReportMetric(1000*simSecs/float64(b.N), "sim_ms")
}

func BenchmarkTable5_Zen1_8GB(b *testing.B)  { benchTable5(b, Zen1, 8<<30) }
func BenchmarkTable5_Zen2_64GB(b *testing.B) { benchTable5(b, Zen2, 64<<30) }

func BenchmarkSec74_MDSLeak(b *testing.B) {
	b.ReportAllocs()
	accSum, rateSum := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(Zen2, SystemConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		secretVA, _ := sys.SecretAddr()
		res, err := sys.LeakKernelMemory(secretVA, 512)
		if err != nil {
			b.Fatal(err)
		}
		accSum += res.AccuracyPct
		rateSum += res.BytesPerSecond
	}
	b.ReportMetric(accSum/float64(b.N), "accuracy_pct")
	b.ReportMetric(rateSum/float64(b.N), "sim_bytes_per_s")
}

func BenchmarkSec63_SuppressOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := RunMitigations(Zen2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if m.SuppressReach.EX {
			b.Fatal("O4 violated")
		}
		b.ReportMetric(m.OverheadPct, "overhead_pct")
	}
}

func BenchmarkSec63_AutoIBRS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := RunMitigations(Zen4, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !m.AutoIBRSLeavesIF || !m.AutoIBRSBlocksID {
			b.Fatal("O5 violated")
		}
	}
}

// Sweep-engine benchmarks: the same Table 3 sweep (3 µarchs × 8
// reboots) at one worker vs the full pool. The ratio is the harness's
// parallel speedup; the tables themselves are byte-identical either way
// (see TestTable3SweepDeterminism).

func benchTable3Sweep(b *testing.B, jobs int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := RunTable3([]Microarch{Zen2, Zen3, Zen4},
			DerandOptions{Seed: int64(i), Runs: 8, Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkSweepTable3_1Worker(b *testing.B) { benchTable3Sweep(b, 1) }
func BenchmarkSweepTable3_NWorkers(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	benchTable3Sweep(b, runtime.GOMAXPROCS(0))
}

// Telemetry overhead benchmarks: the same Table 1 workload with the hub
// disabled vs fully enabled (run log and progress into discard sinks).
// Machines batch counter deltas at Run boundaries, so the enabled cost
// must stay within noise of the nil-check-only disabled path — the
// BENCH_*_telemetry.json files in the repo pin the measured gap.

func benchTable1Telemetry(b *testing.B, enabled bool) {
	if enabled {
		telemetry.Enable(telemetry.Config{
			RunLog:   io.Discard,
			Progress: io.Discard,
			Label:    "bench",
		})
		defer telemetry.Disable() //nolint:errcheck // discard sink
	}
	benchTable1(b, Zen2)
}

func BenchmarkTable1Telemetry_Off(b *testing.B) { benchTable1Telemetry(b, false) }
func BenchmarkTable1Telemetry_On(b *testing.B)  { benchTable1Telemetry(b, true) }

// Substrate micro-benchmarks: the cost of the simulator primitives the
// experiments are built from.

func BenchmarkSubstrate_Boot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSystem(Zen2, SystemConfig{Seed: int64(i), Deterministic: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_Syscall(b *testing.B) {
	b.ReportAllocs()
	sys, err := NewSystem(Zen2, SystemConfig{Seed: 1, Deterministic: true})
	if err != nil {
		b.Fatal(err)
	}
	img, err := sys.BreakImageKASLR() // warms the syscall path
	if err != nil || !img.Correct {
		b.Fatalf("setup: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BreakImageKASLR(); err != nil {
			b.Fatal(err)
		}
	}
}
