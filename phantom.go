// Package phantom is a full-system reproduction of "Phantom: Exploiting
// Decoder-detectable Mispredictions" (Wikner, Trujillo, Razavi — MICRO
// 2023) on a cycle-level CPU simulator written in pure Go.
//
// The paper shows that recent AMD and Intel CPUs consult the branch
// predictor before the current instruction is decoded, so a Branch Target
// Buffer entry planted by a *training* instruction imposes its branch
// type and target on arbitrary *victim* bytes at an aliasing address.
// The decoder catches the mismatch and resteers the frontend, but by then
// the mispredicted target has been fetched (IF), usually decoded (ID),
// and on AMD Zen 1/2 even executed far enough to issue one memory load
// (EX). The paper builds observation channels for each stage, reverse
// engineers the cross-privilege BTB indexing of Zen 3/4, and turns the
// resulting primitives into KASLR breaks and an arbitrary kernel-memory
// leak.
//
// Real Phantom needs real silicon. This package substitutes a detailed
// microarchitectural simulator — decoupled fetch/decode pipeline, BTB
// with the published XOR index functions, RSB, PHT, µop cache, two-level
// cache hierarchy, virtual memory, and a Linux-like kernel with
// randomized image and physmap — and re-runs every experiment of the
// paper against it. Attacks observe the machine only the way a real
// attacker could: timing of their own fetches and loads, their own cache
// state, unprivileged performance counters, and syscall results.
//
// # Quick start
//
//	sys, err := phantom.NewSystem(phantom.Zen2, phantom.SystemConfig{Seed: 1})
//	if err != nil { ... }
//	res, err := sys.BreakImageKASLR()
//	fmt.Printf("kernel image at %#x (correct: %v, %.2fs simulated)\n",
//	        res.Guess, res.Correct, res.Seconds)
//
// The Run* functions reproduce the paper's tables and figures; see
// EXPERIMENTS.md for the measured-vs-published comparison.
package phantom

import (
	"fmt"

	"phantom/internal/core"
	"phantom/internal/kernel"
	"phantom/internal/uarch"
)

// Microarch names a simulated CPU model.
type Microarch string

// The eight microarchitectures the paper evaluates.
const (
	Zen1    Microarch = "zen1"
	Zen2    Microarch = "zen2"
	Zen3    Microarch = "zen3"
	Zen4    Microarch = "zen4"
	Intel9  Microarch = "intel9"
	Intel11 Microarch = "intel11"
	Intel12 Microarch = "intel12"
	Intel13 Microarch = "intel13"
)

// AllMicroarchs returns every supported model in the paper's order.
func AllMicroarchs() []Microarch {
	return []Microarch{Zen1, Zen2, Zen3, Zen4, Intel9, Intel11, Intel12, Intel13}
}

// AMDMicroarchs returns the AMD Zen models, the paper's exploitation
// targets.
func AMDMicroarchs() []Microarch {
	return []Microarch{Zen1, Zen2, Zen3, Zen4}
}

// ModelName returns the CPU model string the paper's tables use for this
// microarchitecture (e.g. "AMD Ryzen 5 1600X").
func (m Microarch) ModelName() string {
	switch m {
	case Zen1:
		return "AMD Ryzen 5 1600X"
	case Zen2:
		return "AMD EPYC 7252"
	case Zen3:
		return "AMD Ryzen 5 5600G"
	case Zen4:
		return "AMD Ryzen 7 7700X"
	case Intel9:
		return "Intel Core 9th gen"
	case Intel11:
		return "Intel Core 11th gen"
	case Intel12:
		return "Intel Core 12th gen (P)"
	case Intel13:
		return "Intel Core 13th gen (P)"
	}
	return string(m)
}

func (m Microarch) profile() (*uarch.Profile, error) {
	return uarch.ByName(string(m))
}

// SystemConfig controls booting a simulated system.
type SystemConfig struct {
	// Seed drives all randomness: KASLR placement, physical allocation,
	// noise. The same seed reproduces the same run exactly.
	Seed int64
	// PhysBytes is installed physical memory; 0 means 8 GiB.
	PhysBytes uint64
	// NoiseLevel scales microarchitectural noise; 0 keeps the paper-
	// calibrated default of 1. Use Deterministic to disable noise.
	NoiseLevel float64
	// Deterministic disables all injected noise (unit-test conditions).
	Deterministic bool
	// KPTI enables kernel page-table isolation costs.
	KPTI bool
	// DisablePredecode turns off the interpreter's predecode cache and
	// runs the byte-at-a-time reference fetch path. The cache is a pure
	// simulator optimization that charges no cycles, so every experiment
	// must produce byte-identical output with it on or off; this knob is
	// how the determinism tests prove that, and how to rule the cache out
	// when debugging a suspected simulation difference.
	DisablePredecode bool
}

// System is one booted machine-plus-kernel, the subject of the attacks.
type System struct {
	arch Microarch
	k    *kernel.Kernel
}

// NewSystem boots a simulated system. Each boot re-randomizes KASLR, so
// repeated boots model the paper's "each time rebooting the machine".
func NewSystem(arch Microarch, cfg SystemConfig) (*System, error) {
	p, err := arch.profile()
	if err != nil {
		return nil, err
	}
	// Deterministic wins over NoiseLevel: it promises unit-test conditions,
	// so any configured noise is dropped, not merely defaulted.
	noise := cfg.NoiseLevel
	if cfg.Deterministic {
		noise = 0
	} else if noise == 0 {
		noise = 1
	}
	k, err := kernel.Boot(p, kernel.Config{
		Seed:             cfg.Seed,
		PhysBytes:        cfg.PhysBytes,
		NoiseLevel:       noise,
		KPTI:             cfg.KPTI,
		DisablePredecode: cfg.DisablePredecode,
	})
	if err != nil {
		return nil, err
	}
	return &System{arch: arch, k: k}, nil
}

// Arch returns the system's microarchitecture.
func (s *System) Arch() Microarch { return s.arch }

// NoiseLevel reports the effective injected-noise scale this system
// booted with: 0 under Deterministic (whatever NoiseLevel was set to),
// the calibrated 1 when neither field is set, else the configured value.
func (s *System) NoiseLevel() float64 { return s.k.M.Noise.Level }

// KernelImageBase returns the ground-truth randomized image base. Attack
// code never reads it; it exists so callers can verify exploit output.
func (s *System) KernelImageBase() uint64 { return s.k.ImageBase }

// PhysmapBase returns the ground-truth randomized physmap base (for
// verification).
func (s *System) PhysmapBase() uint64 { return s.k.PhysmapBase }

// SecretAddr returns the kernel address of the 4096-byte secret planted
// for the leak experiments, with its ground-truth contents.
func (s *System) SecretAddr() (uint64, []byte) {
	sec := append([]byte(nil), s.k.Secret...)
	return s.k.SecretVA, sec
}

// Cycles returns the simulated cycle counter.
func (s *System) Cycles() uint64 { return s.k.M.Cycle }

// SimSeconds converts simulated cycles to seconds at the nominal 3 GHz.
func SimSeconds(cycles uint64) float64 { return core.CyclesToSeconds(cycles) }

// KASLRResult is the outcome of a derandomization attack.
type KASLRResult struct {
	Guess   uint64
	Correct bool
	Seconds float64 // simulated time
}

// BreakImageKASLR runs the Table 3 exploit on this system: derandomizing
// the kernel image base with the P1 transient-fetch primitive.
func (s *System) BreakImageKASLR() (*KASLRResult, error) {
	r, err := core.BreakImageKASLR(s.k, core.ImageKASLRConfig{})
	if err != nil {
		return nil, err
	}
	return &KASLRResult{Guess: r.Guess, Correct: r.Correct, Seconds: r.Seconds}, nil
}

// BreakPhysmapKASLR runs the Table 4 exploit (P2, AMD Zen 1/2 only),
// given the image base recovered by BreakImageKASLR.
func (s *System) BreakPhysmapKASLR(imageBase uint64) (*KASLRResult, error) {
	r, err := core.BreakPhysmapKASLR(s.k, core.PhysmapKASLRConfig{ImageBase: imageBase})
	if err != nil {
		return nil, err
	}
	return &KASLRResult{Guess: r.Guess, Correct: r.Correct, Seconds: r.Seconds}, nil
}

// FindPhysAddr runs the Table 5 experiment: recovering the physical
// address of an attacker-owned transparent huge page through physmap.
func (s *System) FindPhysAddr(imageBase, physmapBase uint64) (*KASLRResult, error) {
	r, _, err := core.FindPhysAddr(s.k, core.PhysAddrConfig{
		ImageBase:   imageBase,
		PhysmapBase: physmapBase,
	})
	if err != nil {
		return nil, err
	}
	return &KASLRResult{Guess: r.Guess, Correct: r.Correct, Seconds: r.Seconds}, nil
}

// LeakResult is the outcome of the Section 7.4 kernel-memory leak.
type LeakResult struct {
	Leaked         []byte
	AccuracyPct    float64
	BytesPerSecond float64
	Seconds        float64
}

// LeakKernelMemory runs the Section 7.4 MDS-gadget exploit end to end on
// this system: it first recovers the image base, physmap base and the
// reload buffer's physical address with the Section 7 chain, then leaks
// n bytes starting at kva.
func (s *System) LeakKernelMemory(kva uint64, n int) (*LeakResult, error) {
	img, err := core.BreakImageKASLR(s.k, core.ImageKASLRConfig{})
	if err != nil {
		return nil, err
	}
	pm, err := core.BreakPhysmapKASLR(s.k, core.PhysmapKASLRConfig{ImageBase: img.Guess})
	if err != nil {
		return nil, err
	}
	if img.Guess == 0 || pm.Guess == 0 {
		// The derandomization steps can come up empty on an unlucky
		// boot (the paper's own success rates are below 100%); report
		// that instead of letting FindPhysAddr reject the zero base.
		return nil, fmt.Errorf("phantom: KASLR derandomization found no candidate on this boot (image=%#x, physmap=%#x)", img.Guess, pm.Guess)
	}
	const hugeVA = uint64(0x7f5000000000)
	if _, err := s.k.AllocUserHuge(hugeVA); err != nil {
		return nil, err
	}
	pr, reloadPhys, err := core.FindPhysAddr(s.k, core.PhysAddrConfig{
		ImageBase:   img.Guess,
		PhysmapBase: pm.Guess,
		HugeVA:      hugeVA,
	})
	if err != nil {
		return nil, err
	}
	if !pr.Correct {
		return nil, fmt.Errorf("phantom: reload-buffer physical address not recovered")
	}
	r, err := core.LeakKernelMemory(s.k, kva, core.MDSLeakConfig{
		ImageBase:   img.Guess,
		PhysmapBase: pm.Guess,
		ReloadPhys:  reloadPhys,
		HugeVA:      hugeVA,
		Bytes:       n,
	})
	if err != nil {
		return nil, err
	}
	return &LeakResult{
		Leaked:         r.Leaked,
		AccuracyPct:    r.Accuracy.Percent(),
		BytesPerSecond: r.BytesPerSecond,
		Seconds:        r.Seconds,
	}, nil
}
