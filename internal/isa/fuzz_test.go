package isa

import "testing"

// FuzzDecode asserts the decoder's two safety contracts on arbitrary
// bytes: it never panics, and it always reports a length that makes
// forward progress without exceeding the x86 limit (1 <= Len <= 15).
// Both matter beyond ordinary robustness — the simulated wrong-path
// walker feeds the decoder whatever bytes speculative fetch lands on,
// and the predecode cache indexes arrays by offsets derived from Len.
func FuzzDecode(f *testing.F) {
	// Historical edge cases: a lone 0x66 prefix, a lone REX prefix, a
	// rel32 jump cut short, the 2-byte NOP, a REX-prefixed mov with a
	// truncated imm64, a lone two-byte-opcode escape, and empty input.
	f.Add([]byte{0x66})
	f.Add([]byte{0x48})
	f.Add([]byte{0xe9, 0x01})
	f.Add([]byte{0x66, 0x90})
	f.Add([]byte{0x48, 0xb8, 0x01, 0x02, 0x03})
	f.Add([]byte{0x0f})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		in := Decode(b)
		if in.Len < 1 || in.Len > 15 {
			t.Fatalf("Decode(%x) = %+v: Len %d outside [1, 15]", b, in, in.Len)
		}
		if in.Op != OpInvalid && in.Len > len(b) && len(b) > 0 {
			t.Fatalf("Decode(%x) = %+v: valid instruction longer than its input", b, in)
		}
	})
}
