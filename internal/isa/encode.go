package isa

import (
	"encoding/binary"
	"fmt"
)

// rex builds a REX prefix byte. w selects 64-bit operand size, r extends the
// ModRM reg field, b extends the ModRM rm (or opcode-embedded register)
// field.
func rex(w bool, reg, rm int) (byte, bool) {
	v := byte(0x40)
	need := false
	if w {
		v |= 0x08
		need = true
	}
	if reg >= 8 {
		v |= 0x04
		need = true
	}
	if rm >= 8 {
		v |= 0x01
		need = true
	}
	return v, need
}

// modrm assembles a ModRM byte from its three fields (register numbers are
// taken modulo 8; REX carries the high bits).
func modrm(mod, reg, rm int) byte {
	return byte(mod<<6 | (reg&7)<<3 | rm&7)
}

// appendImm32 appends a little-endian 32-bit immediate.
func appendImm32(b []byte, v int32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(v))
	return append(b, tmp[:]...)
}

// appendImm64 appends a little-endian 64-bit immediate.
func appendImm64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

// memOperand encodes a mod=10 (disp32) memory operand with the given base
// register, inserting the SIB byte that x86 requires when the base is
// RSP/R12.
func memOperand(b []byte, reg, base int, disp int32) []byte {
	if base&7 == RSP {
		b = append(b, modrm(2, reg, RSP), 0x24) // SIB: scale=1, no index, base=rsp/r12
	} else {
		b = append(b, modrm(2, reg, base))
	}
	return appendImm32(b, disp)
}

// EncNop returns an n-byte NOP, n in [1,5]. These are the canonical x86
// multi-byte NOP encodings; Listing 1 of the paper begins with the 5-byte
// form (0F 1F 44 00 00, "nop DWORD PTR [rax+rax*1+0x0]").
func EncNop(n int) []byte {
	switch n {
	case 1:
		return []byte{0x90}
	case 2:
		return []byte{0x66, 0x90}
	case 3:
		return []byte{0x0f, 0x1f, 0x00}
	case 4:
		return []byte{0x0f, 0x1f, 0x40, 0x00}
	case 5:
		return []byte{0x0f, 0x1f, 0x44, 0x00, 0x00}
	}
	panic(fmt.Sprintf("isa: unsupported nop length %d", n))
}

// EncNopSled returns n bytes of NOP instructions, preferring long forms.
func EncNopSled(n int) []byte {
	out := make([]byte, 0, n)
	for n > 0 {
		k := n
		if k > 5 {
			k = 5
		}
		out = append(out, EncNop(k)...)
		n -= k
	}
	return out
}

// EncJmp returns a direct jmp with the given rel32 displacement.
func EncJmp(rel int32) []byte { return appendImm32([]byte{0xe9}, rel) }

// EncJcc returns a conditional branch with the given condition and rel32.
func EncJcc(c Cond, rel int32) []byte {
	return appendImm32([]byte{0x0f, 0x80 | byte(c)}, rel)
}

// EncCall returns a direct call with the given rel32 displacement.
func EncCall(rel int32) []byte { return appendImm32([]byte{0xe8}, rel) }

// EncJmpInd returns a register-indirect jmp through reg.
func EncJmpInd(reg int) []byte {
	var b []byte
	if p, need := rex(false, 0, reg); need {
		b = append(b, p)
	}
	return append(b, 0xff, modrm(3, 4, reg))
}

// EncCallInd returns a register-indirect call through reg.
func EncCallInd(reg int) []byte {
	var b []byte
	if p, need := rex(false, 0, reg); need {
		b = append(b, p)
	}
	return append(b, 0xff, modrm(3, 2, reg))
}

// EncRet returns a near return.
func EncRet() []byte { return []byte{0xc3} }

// EncMovImm returns mov reg, imm64.
func EncMovImm(reg int, imm uint64) []byte {
	p, _ := rex(true, 0, reg)
	return appendImm64([]byte{p, 0xb8 + byte(reg&7)}, imm)
}

// EncMovReg returns mov dst, src (register to register, 64-bit).
func EncMovReg(dst, src int) []byte {
	p, _ := rex(true, src, dst)
	return []byte{p, 0x89, modrm(3, src, dst)}
}

// EncLoad returns mov dst, [base+disp32].
func EncLoad(dst, base int, disp int32) []byte {
	p, _ := rex(true, dst, base)
	return memOperand([]byte{p, 0x8b}, dst, base, disp)
}

// EncStore returns mov [base+disp32], src.
func EncStore(base int, disp int32, src int) []byte {
	p, _ := rex(true, src, base)
	return memOperand([]byte{p, 0x89}, src, base, disp)
}

// EncAluImm returns <op> reg, imm32 with op one of AluAdd/AluOr/AluAnd/
// AluSub/AluCmp (the 81 /digit group).
func EncAluImm(op AluOp, reg int, imm int32) []byte {
	p, _ := rex(true, 0, reg)
	return appendImm32([]byte{p, 0x81, modrm(3, int(op), reg)}, imm)
}

// EncShl returns shl reg, imm8.
func EncShl(reg int, n uint8) []byte {
	p, _ := rex(true, 0, reg)
	return []byte{p, 0xc1, modrm(3, 4, reg), n}
}

// EncShr returns shr reg, imm8.
func EncShr(reg int, n uint8) []byte {
	p, _ := rex(true, 0, reg)
	return []byte{p, 0xc1, modrm(3, 5, reg), n}
}

// EncXorReg returns xor dst, src (64-bit).
func EncXorReg(dst, src int) []byte {
	p, _ := rex(true, src, dst)
	return []byte{p, 0x31, modrm(3, src, dst)}
}

// EncSubReg returns sub dst, src (64-bit).
func EncSubReg(dst, src int) []byte {
	p, _ := rex(true, src, dst)
	return []byte{p, 0x29, modrm(3, src, dst)}
}

// EncCmpReg returns cmp a, b (64-bit; sets ZF/CF from a - b).
func EncCmpReg(a, b int) []byte {
	p, _ := rex(true, b, a)
	return []byte{p, 0x39, modrm(3, b, a)}
}

// EncAddReg returns add dst, src (64-bit).
func EncAddReg(dst, src int) []byte {
	p, _ := rex(true, src, dst)
	return []byte{p, 0x01, modrm(3, src, dst)}
}

// EncLfence returns an lfence (dispatch-serializing barrier; paper §2.4).
func EncLfence() []byte { return []byte{0x0f, 0xae, 0xe8} }

// EncMfence returns an mfence.
func EncMfence() []byte { return []byte{0x0f, 0xae, 0xf0} }

// EncClflush returns clflush [base+disp32]. (Real x86 uses 0F AE /7; we use
// the mod=10 form uniformly to avoid RIP-relative special cases.)
func EncClflush(base int, disp int32) []byte {
	var b []byte
	if p, need := rex(false, 0, base); need {
		b = append(b, p)
	}
	b = append(b, 0x0f, 0xae)
	return memOperand(b, 7, base, disp)
}

// EncRdtsc returns rdtsc. The simulator deposits the full 64-bit cycle
// counter in RAX.
func EncRdtsc() []byte { return []byte{0x0f, 0x31} }

// EncSyscall returns syscall.
func EncSyscall() []byte { return []byte{0x0f, 0x05} }

// EncHlt returns hlt, which ends a simulator run.
func EncHlt() []byte { return []byte{0xf4} }

// EncInt3 returns int3 (breakpoint trap).
func EncInt3() []byte { return []byte{0xcc} }

// EncPush returns push reg.
func EncPush(reg int) []byte {
	if reg >= 8 {
		return []byte{0x41, 0x50 + byte(reg&7)}
	}
	return []byte{0x50 + byte(reg)}
}

// EncPop returns pop reg.
func EncPop(reg int) []byte {
	if reg >= 8 {
		return []byte{0x41, 0x58 + byte(reg&7)}
	}
	return []byte{0x58 + byte(reg)}
}

// EncodeInst re-encodes a decoded instruction into its canonical byte
// form — the inverse of Decode for every instruction this package's
// encoders emit. Decode tolerates some redundant encodings (e.g. a
// REX prefix on a one-byte NOP) that the encoders never produce; when
// the canonical re-encoding would not reproduce in.Len bytes, or the
// instruction is OpInvalid, EncodeInst reports an error instead of
// silently changing the byte stream. The round-trip property
// encode→decode→re-encode == identity is pinned by TestEncodeDecodeRoundTrip
// and exercised over generated programs by internal/search.
func EncodeInst(in Inst) ([]byte, error) {
	var b []byte
	switch in.Op {
	case OpNop:
		if in.Len < 1 || in.Len > 5 {
			return nil, fmt.Errorf("isa: no canonical %d-byte nop", in.Len)
		}
		b = EncNop(in.Len)
	case OpJmp:
		b = EncJmp(in.Disp)
	case OpJcc:
		b = EncJcc(in.Cond, in.Disp)
	case OpCall:
		b = EncCall(in.Disp)
	case OpJmpInd:
		b = EncJmpInd(in.Reg)
	case OpCallInd:
		b = EncCallInd(in.Reg)
	case OpRet:
		b = EncRet()
	case OpMovImm:
		b = EncMovImm(in.Reg, uint64(in.Imm))
	case OpMovReg:
		b = EncMovReg(in.Reg, in.Reg2)
	case OpLoad:
		b = EncLoad(in.Reg, in.Reg2, in.Disp)
	case OpStore:
		b = EncStore(in.Reg2, in.Disp, in.Reg)
	case OpAluImm:
		b = EncAluImm(in.Alu, in.Reg, int32(in.Imm))
	case OpShiftImm:
		if in.Alu == 4 {
			b = EncShl(in.Reg, uint8(in.Imm))
		} else {
			b = EncShr(in.Reg, uint8(in.Imm))
		}
	case OpXorReg:
		b = EncXorReg(in.Reg, in.Reg2)
	case OpAddReg:
		b = EncAddReg(in.Reg, in.Reg2)
	case OpSubReg:
		b = EncSubReg(in.Reg, in.Reg2)
	case OpCmpReg:
		b = EncCmpReg(in.Reg, in.Reg2)
	case OpLfence:
		b = EncLfence()
	case OpMfence:
		b = EncMfence()
	case OpClflush:
		b = EncClflush(in.Reg2, in.Disp)
	case OpRdtsc:
		b = EncRdtsc()
	case OpSyscall:
		b = EncSyscall()
	case OpHlt:
		b = EncHlt()
	case OpInt3:
		b = EncInt3()
	case OpPush:
		b = EncPush(in.Reg)
	case OpPop:
		b = EncPop(in.Reg)
	default:
		return nil, fmt.Errorf("isa: cannot encode %v", in.Op)
	}
	// Len 0 means the caller built the Inst by hand and has no length
	// expectation; decoder-produced Insts always carry one.
	if in.Len != 0 && len(b) != in.Len {
		return nil, fmt.Errorf("isa: %v decoded from a non-canonical %d-byte encoding (canonical is %d)",
			in.Op, in.Len, len(b))
	}
	return b, nil
}
