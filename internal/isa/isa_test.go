package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// decodeOne decodes b and fails the test if it does not decode to op with
// the exact encoded length.
func decodeOne(t *testing.T, b []byte, op Op) Inst {
	t.Helper()
	in := Decode(b)
	if in.Op != op {
		t.Fatalf("Decode(% x) = %v, want op %v", b, in.Op, op)
	}
	if in.Len != len(b) {
		t.Fatalf("Decode(% x) len = %d, want %d", b, in.Len, len(b))
	}
	return in
}

func TestNopLengths(t *testing.T) {
	for n := 1; n <= 5; n++ {
		b := EncNop(n)
		if len(b) != n {
			t.Fatalf("EncNop(%d) produced %d bytes", n, len(b))
		}
		decodeOne(t, b, OpNop)
	}
}

func TestNopSledDecodesCompletely(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 7, 11, 64, 257} {
		sled := EncNopSled(n)
		if len(sled) != n {
			t.Fatalf("EncNopSled(%d) = %d bytes", n, len(sled))
		}
		off := 0
		for off < len(sled) {
			in := Decode(sled[off:])
			if in.Op != OpNop {
				t.Fatalf("sled(%d) offset %d decodes to %v", n, off, in.Op)
			}
			off += in.Len
		}
	}
}

func TestBranchEncodings(t *testing.T) {
	in := decodeOne(t, EncJmp(0x1234), OpJmp)
	if in.Disp != 0x1234 {
		t.Errorf("jmp disp = %#x", in.Disp)
	}
	in = decodeOne(t, EncJmp(-64), OpJmp)
	if in.Disp != -64 {
		t.Errorf("jmp disp = %d, want -64", in.Disp)
	}
	in = decodeOne(t, EncCall(100), OpCall)
	if in.Disp != 100 {
		t.Errorf("call disp = %d", in.Disp)
	}
	for _, c := range []Cond{CondB, CondAE, CondZ, CondNZ} {
		in = decodeOne(t, EncJcc(c, -5), OpJcc)
		if in.Cond != c || in.Disp != -5 {
			t.Errorf("jcc got cond=%v disp=%d", in.Cond, in.Disp)
		}
	}
	decodeOne(t, EncRet(), OpRet)
}

func TestIndirectBranchAllRegs(t *testing.T) {
	for r := 0; r < NumRegs; r++ {
		in := decodeOne(t, EncJmpInd(r), OpJmpInd)
		if in.Reg != r {
			t.Errorf("jmp* reg = %d, want %d", in.Reg, r)
		}
		in = decodeOne(t, EncCallInd(r), OpCallInd)
		if in.Reg != r {
			t.Errorf("call* reg = %d, want %d", in.Reg, r)
		}
	}
}

func TestMovImmAllRegs(t *testing.T) {
	for r := 0; r < NumRegs; r++ {
		in := decodeOne(t, EncMovImm(r, 0xdeadbeefcafe), OpMovImm)
		if in.Reg != r || uint64(in.Imm) != 0xdeadbeefcafe {
			t.Errorf("mov imm reg=%d imm=%#x", in.Reg, in.Imm)
		}
	}
}

func TestLoadStoreAllRegCombos(t *testing.T) {
	for dst := 0; dst < NumRegs; dst++ {
		for base := 0; base < NumRegs; base++ {
			in := decodeOne(t, EncLoad(dst, base, 0xbe0), OpLoad)
			if in.Reg != dst || in.Reg2 != base || in.Disp != 0xbe0 {
				t.Fatalf("load dst=%d base=%d: got %+v", dst, base, in)
			}
			in = decodeOne(t, EncStore(base, -8, dst), OpStore)
			if in.Reg != dst || in.Reg2 != base || in.Disp != -8 {
				t.Fatalf("store src=%d base=%d: got %+v", dst, base, in)
			}
		}
	}
}

func TestAluAndShift(t *testing.T) {
	for _, op := range []AluOp{AluAdd, AluOr, AluAnd, AluSub, AluCmp} {
		in := decodeOne(t, EncAluImm(op, R12, 0x4000), OpAluImm)
		if in.Alu != op || in.Reg != R12 || in.Imm != 0x4000 {
			t.Errorf("alu %v: got %+v", op, in)
		}
	}
	in := decodeOne(t, EncShl(RBX, 6), OpShiftImm)
	if in.Reg != RBX || in.Imm != 6 || in.Alu != 4 {
		t.Errorf("shl: %+v", in)
	}
	in = decodeOne(t, EncShr(R15, 13), OpShiftImm)
	if in.Reg != R15 || in.Imm != 13 || in.Alu != 5 {
		t.Errorf("shr: %+v", in)
	}
}

func TestRegRegOps(t *testing.T) {
	in := decodeOne(t, EncMovReg(RBP, RSP), OpMovReg)
	if in.Reg != RBP || in.Reg2 != RSP {
		t.Errorf("mov rbp,rsp: %+v", in)
	}
	in = decodeOne(t, EncXorReg(R9, R10), OpXorReg)
	if in.Reg != R9 || in.Reg2 != R10 {
		t.Errorf("xor r9,r10: %+v", in)
	}
	in = decodeOne(t, EncAddReg(RAX, R14), OpAddReg)
	if in.Reg != RAX || in.Reg2 != R14 {
		t.Errorf("add rax,r14: %+v", in)
	}
}

func TestSystemInstructions(t *testing.T) {
	decodeOne(t, EncLfence(), OpLfence)
	decodeOne(t, EncMfence(), OpMfence)
	decodeOne(t, EncRdtsc(), OpRdtsc)
	decodeOne(t, EncSyscall(), OpSyscall)
	decodeOne(t, EncHlt(), OpHlt)
	decodeOne(t, EncInt3(), OpInt3)
	in := decodeOne(t, EncClflush(RSI, 0x40), OpClflush)
	if in.Reg2 != RSI || in.Disp != 0x40 {
		t.Errorf("clflush: %+v", in)
	}
	// SIB-requiring bases.
	in = decodeOne(t, EncClflush(R12, 0), OpClflush)
	if in.Reg2 != R12 {
		t.Errorf("clflush r12 base: %+v", in)
	}
}

func TestPushPop(t *testing.T) {
	for r := 0; r < NumRegs; r++ {
		in := decodeOne(t, EncPush(r), OpPush)
		if in.Reg != r {
			t.Errorf("push %d: %+v", r, in)
		}
		in = decodeOne(t, EncPop(r), OpPop)
		if in.Reg != r {
			t.Errorf("pop %d: %+v", r, in)
		}
	}
}

func TestDecodeNeverZeroLength(t *testing.T) {
	// Property: any byte soup decodes with progress (Len >= 1). This is
	// what lets speculatively fetched garbage flow through the decoder.
	f := func(b []byte) bool {
		if len(b) == 0 {
			return true
		}
		in := Decode(b)
		return in.Len >= 1 && in.Len <= len(b) || in.Op == OpInvalid && in.Len == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	// Property: every encoder output decodes back to itself.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		r1 := rng.Intn(NumRegs)
		r2 := rng.Intn(NumRegs)
		disp := int32(rng.Uint32())
		imm := rng.Uint64()
		var b []byte
		var wantOp Op
		switch rng.Intn(10) {
		case 0:
			b, wantOp = EncJmp(disp), OpJmp
		case 1:
			b, wantOp = EncCall(disp), OpCall
		case 2:
			b, wantOp = EncJmpInd(r1), OpJmpInd
		case 3:
			b, wantOp = EncMovImm(r1, imm), OpMovImm
		case 4:
			b, wantOp = EncLoad(r1, r2, disp), OpLoad
		case 5:
			b, wantOp = EncStore(r2, disp, r1), OpStore
		case 6:
			b, wantOp = EncAluImm(AluCmp, r1, disp), OpAluImm
		case 7:
			b, wantOp = EncXorReg(r1, r2), OpXorReg
		case 8:
			b, wantOp = EncMovReg(r1, r2), OpMovReg
		case 9:
			b, wantOp = EncJcc(CondNZ, disp), OpJcc
		}
		in := Decode(b)
		if in.Op != wantOp || in.Len != len(b) {
			t.Fatalf("roundtrip %v: enc % x dec %+v", wantOp, b, in)
		}
	}
}

func TestInstTarget(t *testing.T) {
	b := EncJmp(0x100)
	in := Decode(b)
	if got := in.Target(0x1000); got != 0x1000+5+0x100 {
		t.Errorf("Target = %#x", got)
	}
	b = EncJcc(CondZ, -0x10)
	in = Decode(b)
	if got := in.Target(0x2000); got != 0x2000+6-0x10 {
		t.Errorf("jcc Target = %#x", got)
	}
}

func TestBranchClassification(t *testing.T) {
	cases := []struct {
		b       []byte
		class   BranchClass
		execDep bool
	}{
		{EncJmp(0), BrJmp, false},
		{EncJcc(CondZ, 0), BrJcc, true},
		{EncJmpInd(RAX), BrJmpInd, true},
		{EncCall(0), BrCall, false},
		{EncCallInd(RBX), BrCallInd, true},
		{EncRet(), BrRet, true},
		{EncNop(1), BrNone, false},
		{EncLoad(RAX, RBX, 0), BrNone, false},
	}
	for _, c := range cases {
		in := Decode(c.b)
		if in.Class() != c.class {
			t.Errorf("class(% x) = %v, want %v", c.b, in.Class(), c.class)
		}
		if in.IsExecuteDependent() != c.execDep {
			t.Errorf("execDep(% x) = %v, want %v", c.b, in.IsExecuteDependent(), c.execDep)
		}
	}
}

func TestAssemblerLabelsAndFixups(t *testing.T) {
	a := NewAssembler(0x400000)
	a.Label("start")
	a.Jmp("end") // forward reference
	a.Label("mid")
	a.NopSled(11)
	a.Jmp("start") // backward reference
	a.Label("end")
	a.Hlt()
	blob, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// First instruction: jmp to "end".
	in := Decode(blob)
	endAddr := a.MustAddr("end")
	if got := in.Target(0x400000); got != endAddr {
		t.Errorf("forward jmp target = %#x, want %#x", got, endAddr)
	}
	// Backward jmp sits after the 11-byte sled.
	midOff := a.MustAddr("mid") - 0x400000
	in2 := Decode(blob[midOff+11:])
	if got := in2.Target(a.MustAddr("mid") + 11); got != 0x400000 {
		t.Errorf("backward jmp target = %#x", got)
	}
}

func TestAssemblerOrgAlign(t *testing.T) {
	a := NewAssembler(0x1000)
	a.Nop(1)
	a.Org(0x1040)
	if a.PC() != 0x1040 {
		t.Fatalf("PC after Org = %#x", a.PC())
	}
	a.Align(0x100)
	if a.PC() != 0x1100 {
		t.Fatalf("PC after Align = %#x", a.PC())
	}
	blob := a.MustBytes()
	if blob[1] != 0xcc {
		t.Errorf("Org padding byte = %#x, want int3", blob[1])
	}
}

func TestAssemblerOrgBackwardFails(t *testing.T) {
	a := NewAssembler(0x1000)
	a.NopSled(16)
	a.Org(0x1004)
	if _, err := a.Bytes(); err == nil {
		t.Fatal("backward Org did not error")
	}
}

func TestAssemblerDuplicateLabelFails(t *testing.T) {
	a := NewAssembler(0)
	a.Label("x")
	a.Nop(1)
	a.Label("x")
	if _, err := a.Bytes(); err == nil {
		t.Fatal("duplicate label did not error")
	}
}

func TestAssemblerUnresolvedLabelFails(t *testing.T) {
	a := NewAssembler(0)
	a.Jmp("nowhere")
	if _, err := a.Bytes(); err == nil {
		t.Fatal("unresolved label did not error")
	}
}

func TestMovImmLabel(t *testing.T) {
	a := NewAssembler(0x7000)
	a.MovImmLabel(RDI, "tgt")
	a.Hlt()
	a.Label("tgt")
	a.Ret()
	blob := a.MustBytes()
	in := Decode(blob)
	if in.Op != OpMovImm || uint64(in.Imm) != a.MustAddr("tgt") {
		t.Fatalf("MovImmLabel: %+v want imm %#x", in, a.MustAddr("tgt"))
	}
}

func TestSymbols(t *testing.T) {
	a := NewAssembler(0x100)
	a.Label("b")
	a.Nop(4)
	a.Label("a")
	a.MustBytes()
	syms := a.Symbols()
	if len(syms) != 2 || syms[0].Name != "b" || syms[1].Name != "a" {
		t.Fatalf("Symbols = %+v", syms)
	}
}

func TestDisassembleListing1(t *testing.T) {
	// Listing 1 of the paper: nop DWORD PTR [rax+rax*1+0x0]; push rbp;
	// mov rbp, rsp.
	a := NewAssembler(0xffffffff810f6520)
	a.Nop(5)
	a.Push(RBP)
	a.MovReg(RBP, RSP)
	blob := a.MustBytes()
	lines := Disassemble(blob, a.Base())
	if len(lines) != 3 {
		t.Fatalf("Disassemble lines = %d: %v", len(lines), lines)
	}
}

func TestInstStringCoverage(t *testing.T) {
	// Every encodable instruction must disassemble to something readable.
	cases := [][]byte{
		EncNop(1), EncNop(5), EncJmp(4), EncJcc(CondB, -4), EncCall(0),
		EncJmpInd(R12), EncCallInd(RAX), EncRet(), EncMovImm(R8, 42),
		EncMovReg(RAX, RBX), EncLoad(RCX, RDX, 8), EncStore(RSI, -8, RDI),
		EncAluImm(AluAnd, R9, 0xff), EncShl(R10, 6), EncShr(R11, 2),
		EncXorReg(R13, R14), EncAddReg(R15, RAX), EncSubReg(RBX, RCX),
		EncCmpReg(RDX, RSI), EncLfence(), EncMfence(), EncClflush(RBP, 0x40),
		EncRdtsc(), EncSyscall(), EncHlt(), EncInt3(), EncPush(R8), EncPop(RSP),
	}
	for _, b := range cases {
		in := Decode(b)
		if in.Op == OpInvalid {
			t.Fatalf("% x did not decode", b)
		}
		if in.String() == "" || in.String() == "(bad)" {
			t.Fatalf("% x has no disassembly", b)
		}
	}
	if (Inst{Op: OpInvalid}).String() == "" {
		t.Fatal("invalid instruction has no name")
	}
}

func TestRegNameBounds(t *testing.T) {
	if RegName(-1) == "" || RegName(99) == "" || RegName(RAX) != "rax" || RegName(R15) != "r15" {
		t.Fatal("RegName broken")
	}
}

func TestStringerFallbacks(t *testing.T) {
	if Op(200).String() == "" || Cond(9).String() == "" || AluOp(3).String() == "" || BranchClass(9).String() == "" {
		t.Fatal("stringer fallbacks broken")
	}
}
