// Package isa defines the simulated instruction set: a faithful subset of
// x86-64 machine code with variable-length encoding, an assembler with
// label resolution, a decoder and a disassembler.
//
// The Phantom attacks are all about what the *decoder* discovers about
// instruction bytes that the branch predictor had already made assumptions
// about, so the ISA keeps x86's essential properties: variable instruction
// length (1-10 bytes), branch types that are distinguishable only after
// decode (direct jmp, indirect jmp, conditional jcc, call, ret, and plain
// non-branch bytes), explicit fences, cache-line flushes, and a cycle
// counter readable from unprivileged code (rdtsc).
//
// Encodings follow real x86-64 where the subset allows: REX prefixes,
// ModRM with mod=10 disp32 memory operands, SIB for RSP/R12 bases,
// E9/E8 rel32 branches, 0F 8x rel32 conditional branches, FF /4 indirect
// jumps, multi-byte NOPs (0F 1F /0), 0F AE fences, 0F 31 rdtsc and
// 0F 05 syscall.
package isa

import "fmt"

// General purpose registers, numbered as in x86-64.
const (
	RAX = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// RegName returns the conventional name of register r.
func RegName(r int) string {
	if r < 0 || r >= NumRegs {
		return fmt.Sprintf("r?%d", r)
	}
	return regNames[r]
}

// Op identifies the operation of a decoded instruction.
type Op uint8

// Operations understood by the decoder and the execution engine.
const (
	OpInvalid  Op = iota // undecodable byte(s)
	OpNop                // 90 / 0F 1F forms
	OpJmp                // E9 rel32
	OpJcc                // 0F 8x rel32
	OpJmpInd             // FF /4, register-indirect jump
	OpCall               // E8 rel32
	OpCallInd            // FF /2, register-indirect call
	OpRet                // C3
	OpMovImm             // REX.W B8+r imm64
	OpMovReg             // REX.W 89 /r, mod=11
	OpLoad               // REX.W 8B /r, mod=10 disp32
	OpStore              // REX.W 89 /r, mod=10 disp32
	OpAluImm             // REX.W 81 /digit imm32 (add/or/and/sub/cmp)
	OpShiftImm           // REX.W C1 /4 (shl) or /5 (shr) imm8
	OpXorReg             // REX.W 31 /r, mod=11
	OpAddReg             // REX.W 01 /r, mod=11
	OpLfence             // 0F AE E8
	OpMfence             // 0F AE F0
	OpClflush            // 0F AE /7, mod=10 disp32
	OpRdtsc              // 0F 31 (result in RAX in this simulator)
	OpSyscall            // 0F 05
	OpHlt                // F4 — terminates a simulator run
	OpInt3               // CC — trap
	OpPush               // 50+r
	OpPop                // 58+r
	OpSubReg             // REX.W 29 /r, mod=11
	OpCmpReg             // REX.W 39 /r, mod=11
)

var opNames = map[Op]string{
	OpInvalid: "(bad)", OpNop: "nop", OpJmp: "jmp", OpJcc: "jcc",
	OpJmpInd: "jmp*", OpCall: "call", OpCallInd: "call*", OpRet: "ret",
	OpMovImm: "mov", OpMovReg: "mov", OpLoad: "mov(load)", OpStore: "mov(store)",
	OpAluImm: "alu", OpShiftImm: "shift", OpXorReg: "xor", OpAddReg: "add",
	OpLfence: "lfence", OpMfence: "mfence", OpClflush: "clflush",
	OpRdtsc: "rdtsc", OpSyscall: "syscall", OpHlt: "hlt", OpInt3: "int3",
	OpPush: "push", OpPop: "pop", OpSubReg: "sub", OpCmpReg: "cmp",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a conditional-branch condition code (the x86 tttn field).
type Cond uint8

// Supported condition codes.
const (
	CondB  Cond = 0x2 // below (CF=1)
	CondAE Cond = 0x3 // above or equal (CF=0)
	CondZ  Cond = 0x4 // zero (ZF=1)
	CondNZ Cond = 0x5 // not zero (ZF=0)
)

var condNames = map[Cond]string{CondB: "b", CondAE: "ae", CondZ: "z", CondNZ: "nz"}

func (c Cond) String() string {
	if s, ok := condNames[c]; ok {
		return s
	}
	return fmt.Sprintf("cc%d", uint8(c))
}

// AluOp selects the operation of OpAluImm, mirroring the x86 /digit field of
// opcode 81.
type AluOp uint8

// ALU immediate operations.
const (
	AluAdd AluOp = 0 // /0
	AluOr  AluOp = 1 // /1
	AluAnd AluOp = 4 // /4
	AluSub AluOp = 5 // /5
	AluCmp AluOp = 7 // /7
)

var aluNames = map[AluOp]string{AluAdd: "add", AluOr: "or", AluAnd: "and", AluSub: "sub", AluCmp: "cmp"}

func (a AluOp) String() string {
	if s, ok := aluNames[a]; ok {
		return s
	}
	return fmt.Sprintf("alu%d", uint8(a))
}

// BranchClass categorizes an instruction for the branch predictor. This is
// the type that BTB entries record: Phantom exploits the fact that the
// *training* instruction's class, not the victim's, determines the
// prediction semantics (paper Section 5.2).
type BranchClass uint8

// Branch classes, including BrNone for non-branch instructions.
const (
	BrNone    BranchClass = iota
	BrJmp                 // direct unconditional
	BrJmpInd              // indirect unconditional
	BrJcc                 // direct conditional
	BrCall                // direct call
	BrCallInd             // indirect call
	BrRet                 // return
)

var brNames = [...]string{"non-branch", "jmp", "jmp*", "jcc", "call", "call*", "ret"}

func (b BranchClass) String() string {
	if int(b) < len(brNames) {
		return brNames[b]
	}
	return fmt.Sprintf("br(%d)", uint8(b))
}

// Inst is one decoded instruction.
type Inst struct {
	Op   Op
	Len  int   // encoded length in bytes
	Reg  int   // destination (or only) register
	Reg2 int   // source register / memory base register
	Imm  int64 // immediate operand
	Disp int32 // branch displacement or memory displacement
	Cond Cond  // for OpJcc
	Alu  AluOp // for OpAluImm
}

// Class returns the branch class of the instruction.
func (i Inst) Class() BranchClass {
	switch i.Op {
	case OpJmp:
		return BrJmp
	case OpJmpInd:
		return BrJmpInd
	case OpJcc:
		return BrJcc
	case OpCall:
		return BrCall
	case OpCallInd:
		return BrCallInd
	case OpRet:
		return BrRet
	default:
		return BrNone
	}
}

// IsBranch reports whether the instruction redirects control flow.
func (i Inst) IsBranch() bool { return i.Class() != BrNone }

// IsExecuteDependent reports whether the instruction's next PC can only be
// finalized at the execute stage (paper Section 2.2): conditional branches,
// indirect branches and returns. Direct jmp/call targets are final at decode.
func (i Inst) IsExecuteDependent() bool {
	switch i.Op {
	case OpJcc, OpJmpInd, OpCallInd, OpRet:
		return true
	}
	return false
}

// Target returns the architectural target of a direct branch located at
// pc. It panics for non-direct-branch instructions.
func (i Inst) Target(pc uint64) uint64 {
	switch i.Op {
	case OpJmp, OpJcc, OpCall:
		return pc + uint64(i.Len) + uint64(int64(i.Disp))
	}
	panic("isa: Target on non-direct branch " + i.Op.String())
}

// String disassembles the instruction (AT&T-free, Intel-ish syntax).
func (i Inst) String() string {
	switch i.Op {
	case OpNop:
		return fmt.Sprintf("nop%d", i.Len)
	case OpJmp:
		return fmt.Sprintf("jmp .%+d", i.Disp)
	case OpJcc:
		return fmt.Sprintf("j%s .%+d", i.Cond, i.Disp)
	case OpJmpInd:
		return fmt.Sprintf("jmp *%s", RegName(i.Reg))
	case OpCall:
		return fmt.Sprintf("call .%+d", i.Disp)
	case OpCallInd:
		return fmt.Sprintf("call *%s", RegName(i.Reg))
	case OpRet:
		return "ret"
	case OpMovImm:
		return fmt.Sprintf("mov %s, %#x", RegName(i.Reg), uint64(i.Imm))
	case OpMovReg:
		return fmt.Sprintf("mov %s, %s", RegName(i.Reg), RegName(i.Reg2))
	case OpLoad:
		return fmt.Sprintf("mov %s, [%s%+#x]", RegName(i.Reg), RegName(i.Reg2), i.Disp)
	case OpStore:
		return fmt.Sprintf("mov [%s%+#x], %s", RegName(i.Reg2), i.Disp, RegName(i.Reg))
	case OpAluImm:
		return fmt.Sprintf("%s %s, %#x", i.Alu, RegName(i.Reg), uint64(i.Imm))
	case OpShiftImm:
		if i.Alu == 4 {
			return fmt.Sprintf("shl %s, %d", RegName(i.Reg), i.Imm)
		}
		return fmt.Sprintf("shr %s, %d", RegName(i.Reg), i.Imm)
	case OpXorReg:
		return fmt.Sprintf("xor %s, %s", RegName(i.Reg), RegName(i.Reg2))
	case OpAddReg:
		return fmt.Sprintf("add %s, %s", RegName(i.Reg), RegName(i.Reg2))
	case OpClflush:
		return fmt.Sprintf("clflush [%s%+#x]", RegName(i.Reg2), i.Disp)
	case OpSubReg:
		return fmt.Sprintf("sub %s, %s", RegName(i.Reg), RegName(i.Reg2))
	case OpCmpReg:
		return fmt.Sprintf("cmp %s, %s", RegName(i.Reg), RegName(i.Reg2))
	case OpPush:
		return fmt.Sprintf("push %s", RegName(i.Reg))
	case OpPop:
		return fmt.Sprintf("pop %s", RegName(i.Reg))
	default:
		return i.Op.String()
	}
}
