package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

// randInst samples one instruction uniformly-ish over every encodable
// shape, the same operand space internal/search's program generator
// draws from.
func randInst(rng *rand.Rand) Inst {
	reg := func() int { return rng.Intn(NumRegs) }
	disp := func() int32 { return int32(rng.Int63n(1<<31) - 1<<30) }
	conds := []Cond{CondB, CondAE, CondZ, CondNZ}
	alus := []AluOp{AluAdd, AluOr, AluAnd, AluSub, AluCmp}
	switch rng.Intn(24) {
	case 0:
		return Inst{Op: OpNop, Len: 1 + rng.Intn(5)}
	case 1:
		return Inst{Op: OpJmp, Disp: disp()}
	case 2:
		return Inst{Op: OpJcc, Cond: conds[rng.Intn(len(conds))], Disp: disp()}
	case 3:
		return Inst{Op: OpCall, Disp: disp()}
	case 4:
		return Inst{Op: OpJmpInd, Reg: reg()}
	case 5:
		return Inst{Op: OpCallInd, Reg: reg()}
	case 6:
		return Inst{Op: OpRet}
	case 7:
		return Inst{Op: OpMovImm, Reg: reg(), Imm: int64(rng.Uint64())}
	case 8:
		return Inst{Op: OpMovReg, Reg: reg(), Reg2: reg()}
	case 9:
		return Inst{Op: OpLoad, Reg: reg(), Reg2: reg(), Disp: disp()}
	case 10:
		return Inst{Op: OpStore, Reg: reg(), Reg2: reg(), Disp: disp()}
	case 11:
		return Inst{Op: OpAluImm, Alu: alus[rng.Intn(len(alus))], Reg: reg(), Imm: int64(int32(rng.Uint32()))}
	case 12:
		return Inst{Op: OpShiftImm, Alu: AluOp(4 + rng.Intn(2)), Reg: reg(), Imm: int64(rng.Intn(64))}
	case 13:
		return Inst{Op: OpXorReg, Reg: reg(), Reg2: reg()}
	case 14:
		return Inst{Op: OpAddReg, Reg: reg(), Reg2: reg()}
	case 15:
		return Inst{Op: OpSubReg, Reg: reg(), Reg2: reg()}
	case 16:
		return Inst{Op: OpCmpReg, Reg: reg(), Reg2: reg()}
	case 17:
		return Inst{Op: OpLfence}
	case 18:
		return Inst{Op: OpMfence}
	case 19:
		return Inst{Op: OpClflush, Reg2: reg(), Disp: disp()}
	case 20:
		return Inst{Op: OpRdtsc}
	case 21:
		return Inst{Op: OpPush, Reg: reg()}
	case 22:
		return Inst{Op: OpPop, Reg: reg()}
	default:
		return Inst{Op: OpHlt}
	}
}

// fixLen fills in the Len a canonical encoding will have, since the
// sampler builds Insts semantically (Decode is what normally sets Len).
func fixLen(t *testing.T, in Inst) Inst {
	t.Helper()
	if in.Op == OpNop {
		return in // sampler chose the length
	}
	in.Len = 0
	b, err := EncodeInst(in)
	if err == nil {
		in.Len = len(b)
		return in
	}
	// EncodeInst rejects Len mismatches; retry with the length it said
	// was canonical by probing via a fresh encode of the zero-Len value.
	t.Fatalf("EncodeInst(%+v): %v", in, err)
	return in
}

// TestEncodeDecodeRoundTrip is the property test the search generator
// relies on: for programs built from this package's encoders,
// encode→decode→re-encode is byte-identical, instruction by instruction
// and as a whole blob.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		// Build a short program of random instructions.
		var insts []Inst
		var blob []byte
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			in := fixLen(t, randInst(rng))
			b, err := EncodeInst(in)
			if err != nil {
				t.Fatalf("trial %d: EncodeInst(%+v): %v", trial, in, err)
			}
			insts = append(insts, in)
			blob = append(blob, b...)
		}

		// Walk the blob with the decoder and re-encode each instruction.
		off := 0
		for i, want := range insts {
			got := Decode(blob[off:])
			if got != want {
				t.Fatalf("trial %d inst %d: decode mismatch\nbytes: % x\n got: %+v\nwant: %+v",
					trial, i, blob[off:off+want.Len], got, want)
			}
			re, err := EncodeInst(got)
			if err != nil {
				t.Fatalf("trial %d inst %d: re-encode %+v: %v", trial, i, got, err)
			}
			if !bytes.Equal(re, blob[off:off+want.Len]) {
				t.Fatalf("trial %d inst %d: re-encode not byte-identical\n got: % x\nwant: % x",
					trial, i, re, blob[off:off+want.Len])
			}
			off += want.Len
		}
		if off != len(blob) {
			t.Fatalf("trial %d: decoder consumed %d of %d bytes", trial, off, len(blob))
		}
	}
}

// TestDecodeTotalOnRandomBytes asserts decode totality: arbitrary byte
// strings, decoded at every offset, never panic and always make
// progress (1 <= Len <= 15). Failures report the offending bytes.
func TestDecodeTotalOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		for off := 0; off <= len(buf); off++ {
			in := Decode(buf[off:])
			if in.Len < 1 || in.Len > 15 {
				t.Fatalf("trial %d offset %d: Len %d out of [1,15]\nbytes: % x",
					trial, off, in.Len, buf[off:])
			}
		}
	}
}

// TestEncodeDecodeRoundTripTruncations asserts that every strict prefix
// of a canonical encoding decodes to something (usually OpInvalid)
// without panicking — the situation a speculative fetch at a page
// boundary creates.
func TestEncodeDecodeRoundTripTruncations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		in := fixLen(t, randInst(rng))
		b, err := EncodeInst(in)
		if err != nil {
			t.Fatalf("trial %d: EncodeInst(%+v): %v", trial, in, err)
		}
		for cut := 0; cut < len(b); cut++ {
			got := Decode(b[:cut])
			if got.Len < 1 {
				t.Fatalf("trial %d: truncated decode made no progress\nbytes: % x", trial, b[:cut])
			}
		}
	}
}

// TestEncodeInstRejects pins the error paths: undecodable input and
// non-canonical lengths must be reported, not guessed at.
func TestEncodeInstRejects(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid, Len: 1},
		{Op: OpNop, Len: 7},
		{Op: OpJmp, Len: 9, Disp: 4}, // canonical jmp rel32 is 5 bytes
	}
	for _, in := range cases {
		if b, err := EncodeInst(in); err == nil {
			t.Errorf("EncodeInst(%+v) = % x, want error", in, b)
		}
	}
}
