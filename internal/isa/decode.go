package isa

import "encoding/binary"

// Decode decodes a single instruction from the front of b. It always
// returns an Inst with Len >= 1; bytes that do not form a valid instruction
// decode to OpInvalid with Len 1, which lets the simulated decoder keep
// making progress through arbitrary (e.g. speculatively fetched) bytes —
// exactly the situation Phantom speculation creates.
func Decode(b []byte) Inst {
	if len(b) == 0 {
		return Inst{Op: OpInvalid, Len: 1}
	}

	// Optional prefixes.
	var rexB byte
	pfxLen := 0
	p := b

	// 66 90 is the 2-byte NOP; 66 is otherwise unused in this subset.
	if p[0] == 0x66 {
		if len(p) >= 2 && p[1] == 0x90 {
			return Inst{Op: OpNop, Len: 2}
		}
		return Inst{Op: OpInvalid, Len: 1}
	}
	if p[0]&0xf0 == 0x40 { // REX
		rexB = p[0]
		pfxLen = 1
		p = p[1:]
		if len(p) == 0 {
			return Inst{Op: OpInvalid, Len: 1}
		}
	}
	rexW := rexB&0x08 != 0
	extR := int(rexB&0x04) << 1 // +8 to ModRM.reg
	extB := int(rexB & 0x01)    // +8 to ModRM.rm / opcode reg

	fail := Inst{Op: OpInvalid, Len: 1}

	switch op := p[0]; {
	case op == 0x90:
		return Inst{Op: OpNop, Len: pfxLen + 1}
	case op == 0xe9: // jmp rel32
		if len(p) < 5 {
			return fail
		}
		return Inst{Op: OpJmp, Len: pfxLen + 5, Disp: int32(binary.LittleEndian.Uint32(p[1:]))}
	case op == 0xe8: // call rel32
		if len(p) < 5 {
			return fail
		}
		return Inst{Op: OpCall, Len: pfxLen + 5, Disp: int32(binary.LittleEndian.Uint32(p[1:]))}
	case op == 0xc3:
		return Inst{Op: OpRet, Len: pfxLen + 1}
	case op == 0xf4:
		return Inst{Op: OpHlt, Len: pfxLen + 1}
	case op == 0xcc:
		return Inst{Op: OpInt3, Len: pfxLen + 1}
	case op >= 0x50 && op <= 0x57:
		return Inst{Op: OpPush, Len: pfxLen + 1, Reg: int(op-0x50) + extB*8}
	case op >= 0x58 && op <= 0x5f:
		return Inst{Op: OpPop, Len: pfxLen + 1, Reg: int(op-0x58) + extB*8}
	case op >= 0xb8 && op <= 0xbf: // mov reg, imm64 (requires REX.W)
		if !rexW || len(p) < 9 {
			return fail
		}
		return Inst{
			Op: OpMovImm, Len: pfxLen + 9,
			Reg: int(op-0xb8) + extB*8,
			Imm: int64(binary.LittleEndian.Uint64(p[1:])),
		}
	case op == 0xff: // group 5: jmp*/call* through register
		if len(p) < 2 {
			return fail
		}
		m := p[1]
		if m>>6 != 3 {
			return fail
		}
		rm := int(m&7) + extB*8
		switch (m >> 3) & 7 {
		case 2:
			return Inst{Op: OpCallInd, Len: pfxLen + 2, Reg: rm}
		case 4:
			return Inst{Op: OpJmpInd, Len: pfxLen + 2, Reg: rm}
		}
		return fail
	case op == 0x89 || op == 0x8b: // mov r/m,r | mov r,r/m
		if !rexW || len(p) < 2 {
			return fail
		}
		m := p[1]
		reg := int((m>>3)&7) + extR
		mod := m >> 6
		rm := int(m&7) + extB*8
		switch mod {
		case 3: // register-register; only 0x89 direction is emitted
			if op != 0x89 {
				return fail
			}
			return Inst{Op: OpMovReg, Len: pfxLen + 2, Reg: rm, Reg2: reg}
		case 2: // [base+disp32], possibly with SIB for rsp/r12 base
			consumed := 2
			if m&7 == 4 { // SIB
				if len(p) < 3 || p[2] != 0x24 {
					return fail
				}
				consumed = 3
				rm = RSP + extB*8
			}
			if len(p) < consumed+4 {
				return fail
			}
			disp := int32(binary.LittleEndian.Uint32(p[consumed:]))
			if op == 0x8b {
				return Inst{Op: OpLoad, Len: pfxLen + consumed + 4, Reg: reg, Reg2: rm, Disp: disp}
			}
			return Inst{Op: OpStore, Len: pfxLen + consumed + 4, Reg: reg, Reg2: rm, Disp: disp}
		}
		return fail
	case op == 0x81: // alu r/m64, imm32
		if !rexW || len(p) < 6 {
			return fail
		}
		m := p[1]
		if m>>6 != 3 {
			return fail
		}
		digit := AluOp((m >> 3) & 7)
		switch digit {
		case AluAdd, AluOr, AluAnd, AluSub, AluCmp:
		default:
			return fail
		}
		return Inst{
			Op: OpAluImm, Len: pfxLen + 6, Alu: digit,
			Reg: int(m&7) + extB*8,
			Imm: int64(int32(binary.LittleEndian.Uint32(p[2:]))),
		}
	case op == 0xc1: // shl/shr r/m64, imm8
		if !rexW || len(p) < 3 {
			return fail
		}
		m := p[1]
		if m>>6 != 3 {
			return fail
		}
		digit := (m >> 3) & 7
		if digit != 4 && digit != 5 {
			return fail
		}
		return Inst{
			Op: OpShiftImm, Len: pfxLen + 3, Alu: AluOp(digit),
			Reg: int(m&7) + extB*8, Imm: int64(p[2]),
		}
	case op == 0x31 || op == 0x01 || op == 0x29 || op == 0x39: // xor/add/sub/cmp r/m64, r64 (mod=11 only)
		if !rexW || len(p) < 2 {
			return fail
		}
		m := p[1]
		if m>>6 != 3 {
			return fail
		}
		var o Op
		switch op {
		case 0x31:
			o = OpXorReg
		case 0x01:
			o = OpAddReg
		case 0x29:
			o = OpSubReg
		case 0x39:
			o = OpCmpReg
		}
		return Inst{Op: o, Len: pfxLen + 2, Reg: int(m&7) + extB*8, Reg2: int((m>>3)&7) + extR}
	case op == 0x0f:
		return decode0F(p, pfxLen, extR, extB)
	}
	return fail
}

// decode0F decodes two-byte (0F xx) opcodes. p starts at the 0F byte.
func decode0F(p []byte, pfxLen, extR, extB int) Inst {
	fail := Inst{Op: OpInvalid, Len: 1}
	if len(p) < 2 {
		return fail
	}
	switch op2 := p[1]; {
	case op2 == 0x31:
		return Inst{Op: OpRdtsc, Len: pfxLen + 2}
	case op2 == 0x05:
		return Inst{Op: OpSyscall, Len: pfxLen + 2}
	case op2 == 0x1f: // multi-byte NOP forms
		if len(p) < 3 {
			return fail
		}
		switch p[2] {
		case 0x00:
			return Inst{Op: OpNop, Len: pfxLen + 3}
		case 0x40:
			if len(p) < 4 {
				return fail
			}
			return Inst{Op: OpNop, Len: pfxLen + 4}
		case 0x44:
			if len(p) < 5 {
				return fail
			}
			return Inst{Op: OpNop, Len: pfxLen + 5}
		}
		return fail
	case op2 == 0xae: // fences / clflush
		if len(p) < 3 {
			return fail
		}
		switch p[2] {
		case 0xe8:
			return Inst{Op: OpLfence, Len: pfxLen + 3}
		case 0xf0:
			return Inst{Op: OpMfence, Len: pfxLen + 3}
		}
		m := p[2]
		if m>>6 == 2 && (m>>3)&7 == 7 { // clflush [base+disp32]
			consumed := 3
			rm := int(m&7) + extB*8
			if m&7 == 4 {
				if len(p) < 4 || p[3] != 0x24 {
					return fail
				}
				consumed = 4
				rm = RSP + extB*8
			}
			if len(p) < consumed+4 {
				return fail
			}
			return Inst{
				Op: OpClflush, Len: pfxLen + consumed + 4,
				Reg2: rm, Disp: int32(binary.LittleEndian.Uint32(p[consumed:])),
			}
		}
		return fail
	case op2 >= 0x80 && op2 <= 0x8f: // jcc rel32
		c := Cond(op2 & 0x0f)
		switch c {
		case CondB, CondAE, CondZ, CondNZ:
		default:
			return fail
		}
		if len(p) < 6 {
			return fail
		}
		return Inst{Op: OpJcc, Len: pfxLen + 6, Cond: c, Disp: int32(binary.LittleEndian.Uint32(p[2:]))}
	}
	return fail
}
