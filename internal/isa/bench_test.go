package isa

import "testing"

func BenchmarkDecode(b *testing.B) {
	blob := EncLoad(RAX, R12, 0xbe0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(blob)
	}
}

func BenchmarkDecodeNop(b *testing.B) {
	blob := EncNop(5)
	for i := 0; i < b.N; i++ {
		Decode(blob)
	}
}

func BenchmarkAssembleText(b *testing.B) {
	src := "loop: mov rax, [rsi+8]; add rax, 1; mov [rsi+8], rax; cmp rax, 100; jb loop; hlt"
	for i := 0; i < b.N; i++ {
		if _, _, err := Assemble(src, 0x400000); err != nil {
			b.Fatal(err)
		}
	}
}
