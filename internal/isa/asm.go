package isa

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Assembler builds a machine-code blob at a fixed virtual base address with
// two-pass label resolution. Experiments use it to lay out the training
// snippet A, victim snippet B, signal gadget C and the jmp-series exactly as
// Figures 4 and 5 of the paper describe, at byte-precise page offsets.
type Assembler struct {
	base   uint64
	buf    []byte
	labels map[string]uint64
	fixups []fixup
	err    error
}

// fixup records a rel32 field to patch once labels are known.
type fixup struct {
	off   int    // offset of the rel32 field within buf
	end   uint64 // VA of the end of the branch instruction
	label string
}

// NewAssembler returns an assembler whose first emitted byte lands at base.
// The label map allocates lazily (most experiment snippets bind none) and
// the buffer starts with room for a typical snippet, so assembling the
// short blobs the sweeps build in bulk costs two allocations.
func NewAssembler(base uint64) *Assembler {
	return &Assembler{base: base, buf: make([]byte, 0, 64)}
}

// Base returns the virtual address of the first byte.
func (a *Assembler) Base() uint64 { return a.base }

// PC returns the virtual address of the next byte to be emitted.
func (a *Assembler) PC() uint64 { return a.base + uint64(len(a.buf)) }

// Label binds name to the current PC.
func (a *Assembler) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("duplicate label %q", name))
		return
	}
	if a.labels == nil {
		a.labels = make(map[string]uint64)
	}
	a.labels[name] = a.PC()
}

// LabelAddr returns the address bound to name. Valid only after the label
// has been emitted (or after Bytes for forward labels).
func (a *Assembler) LabelAddr(name string) (uint64, bool) {
	v, ok := a.labels[name]
	return v, ok
}

// MustAddr returns the address of a bound label, panicking if missing.
func (a *Assembler) MustAddr(name string) uint64 {
	v, ok := a.labels[name]
	if !ok {
		panic(fmt.Sprintf("isa: unresolved label %q", name))
	}
	return v
}

// Org pads with int3 bytes up to the given virtual address, which must not
// be behind the current PC. Speculative fetches that run into the padding
// therefore decode as traps rather than as stale instructions.
func (a *Assembler) Org(addr uint64) {
	if addr < a.PC() {
		a.fail(fmt.Errorf("Org(%#x) behind PC %#x", addr, a.PC()))
		return
	}
	pad := make([]byte, addr-a.PC())
	for i := range pad {
		pad[i] = 0xcc
	}
	a.buf = append(a.buf, pad...)
}

// Align pads with int3 to the next multiple of n (a power of two).
func (a *Assembler) Align(n uint64) {
	if n == 0 || n&(n-1) != 0 {
		a.fail(fmt.Errorf("Align(%d): not a power of two", n))
		return
	}
	a.Org((a.PC() + n - 1) &^ (n - 1))
}

func (a *Assembler) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

func (a *Assembler) emit(b []byte) { a.buf = append(a.buf, b...) }

// Raw emits literal bytes.
func (a *Assembler) Raw(b ...byte) { a.emit(b) }

// Nop emits a single NOP of n bytes (1-5).
func (a *Assembler) Nop(n int) { a.emit(EncNop(n)) }

// NopSled emits n bytes worth of NOP instructions.
func (a *Assembler) NopSled(n int) { a.emit(EncNopSled(n)) }

// branchTo emits a rel32 branch (given its opcode bytes before the rel32
// field) to a label, deferring resolution.
func (a *Assembler) branchTo(enc []byte, label string) {
	// enc ends with a 4-byte placeholder displacement.
	off := len(a.buf) + len(enc) - 4
	a.emit(enc)
	a.fixups = append(a.fixups, fixup{off: off, end: a.PC(), label: label})
}

// Jmp emits a direct jmp to label.
func (a *Assembler) Jmp(label string) { a.branchTo(EncJmp(0), label) }

// JmpTo emits a direct jmp to an absolute address.
func (a *Assembler) JmpTo(addr uint64) {
	end := a.PC() + 5
	a.emit(EncJmp(int32(int64(addr) - int64(end))))
}

// Jcc emits a conditional branch to label.
func (a *Assembler) Jcc(c Cond, label string) { a.branchTo(EncJcc(c, 0), label) }

// JccTo emits a conditional branch to an absolute address.
func (a *Assembler) JccTo(c Cond, addr uint64) {
	end := a.PC() + 6
	a.emit(EncJcc(c, int32(int64(addr)-int64(end))))
}

// Call emits a direct call to label.
func (a *Assembler) Call(label string) { a.branchTo(EncCall(0), label) }

// CallTo emits a direct call to an absolute address.
func (a *Assembler) CallTo(addr uint64) {
	end := a.PC() + 5
	a.emit(EncCall(int32(int64(addr) - int64(end))))
}

// JmpReg emits an indirect jmp through reg.
func (a *Assembler) JmpReg(reg int) { a.emit(EncJmpInd(reg)) }

// CallReg emits an indirect call through reg.
func (a *Assembler) CallReg(reg int) { a.emit(EncCallInd(reg)) }

// Ret emits a near return.
func (a *Assembler) Ret() { a.emit(EncRet()) }

// MovImm emits mov reg, imm64.
func (a *Assembler) MovImm(reg int, imm uint64) { a.emit(EncMovImm(reg, imm)) }

// MovImmLabel emits mov reg, <address of label>, resolved at assembly time.
func (a *Assembler) MovImmLabel(reg int, label string) {
	off := len(a.buf) + len(EncMovImm(reg, 0)) - 8
	a.emit(EncMovImm(reg, 0))
	a.fixups = append(a.fixups, fixup{off: off, end: 0, label: label})
}

// MovReg emits mov dst, src.
func (a *Assembler) MovReg(dst, src int) { a.emit(EncMovReg(dst, src)) }

// Load emits mov dst, [base+disp].
func (a *Assembler) Load(dst, base int, disp int32) { a.emit(EncLoad(dst, base, disp)) }

// Store emits mov [base+disp], src.
func (a *Assembler) Store(base int, disp int32, src int) { a.emit(EncStore(base, disp, src)) }

// AluImm emits op reg, imm32.
func (a *Assembler) AluImm(op AluOp, reg int, imm int32) { a.emit(EncAluImm(op, reg, imm)) }

// Shl emits shl reg, n.
func (a *Assembler) Shl(reg int, n uint8) { a.emit(EncShl(reg, n)) }

// Shr emits shr reg, n.
func (a *Assembler) Shr(reg int, n uint8) { a.emit(EncShr(reg, n)) }

// Xor emits xor dst, src.
func (a *Assembler) Xor(dst, src int) { a.emit(EncXorReg(dst, src)) }

// AddReg emits add dst, src.
func (a *Assembler) AddReg(dst, src int) { a.emit(EncAddReg(dst, src)) }

// SubReg emits sub dst, src.
func (a *Assembler) SubReg(dst, src int) { a.emit(EncSubReg(dst, src)) }

// CmpReg emits cmp x, y (flags from x - y).
func (a *Assembler) CmpReg(x, y int) { a.emit(EncCmpReg(x, y)) }

// Lfence emits lfence.
func (a *Assembler) Lfence() { a.emit(EncLfence()) }

// Mfence emits mfence.
func (a *Assembler) Mfence() { a.emit(EncMfence()) }

// Clflush emits clflush [base+disp].
func (a *Assembler) Clflush(base int, disp int32) { a.emit(EncClflush(base, disp)) }

// Rdtsc emits rdtsc.
func (a *Assembler) Rdtsc() { a.emit(EncRdtsc()) }

// Syscall emits syscall.
func (a *Assembler) Syscall() { a.emit(EncSyscall()) }

// Hlt emits hlt.
func (a *Assembler) Hlt() { a.emit(EncHlt()) }

// Int3 emits int3.
func (a *Assembler) Int3() { a.emit(EncInt3()) }

// Push emits push reg.
func (a *Assembler) Push(reg int) { a.emit(EncPush(reg)) }

// Pop emits pop reg.
func (a *Assembler) Pop(reg int) { a.emit(EncPop(reg)) }

// Bytes resolves all fixups and returns the assembled blob. The blob's
// first byte corresponds to Base().
func (a *Assembler) Bytes() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: unresolved label %q", f.label)
		}
		if f.end == 0 {
			// 64-bit absolute fixup (MovImmLabel).
			binary.LittleEndian.PutUint64(a.buf[f.off:], target)
			continue
		}
		rel := int64(target) - int64(f.end)
		if rel < -1<<31 || rel >= 1<<31 {
			return nil, fmt.Errorf("isa: label %q out of rel32 range (%d)", f.label, rel)
		}
		binary.LittleEndian.PutUint32(a.buf[f.off:], uint32(int32(rel)))
	}
	return a.buf, nil
}

// MustBytes is Bytes, panicking on error. Experiments with hard-coded
// layouts use it.
func (a *Assembler) MustBytes() []byte {
	b, err := a.Bytes()
	if err != nil {
		panic(err)
	}
	return b
}

// Symbols returns all labels sorted by address, for building symbol tables
// of the simulated kernel image.
func (a *Assembler) Symbols() []Symbol {
	out := make([]Symbol, 0, len(a.labels))
	for n, addr := range a.labels {
		out = append(out, Symbol{Name: n, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Symbol is a named address in an assembled blob.
type Symbol struct {
	Name string
	Addr uint64
}

// Disassemble decodes the blob byte stream starting at va and returns one
// line per instruction, useful for debugging experiment layouts.
func Disassemble(blob []byte, va uint64) []string {
	var out []string
	off := 0
	for off < len(blob) {
		in := Decode(blob[off:])
		out = append(out, fmt.Sprintf("%#012x: %s", va+uint64(off), in))
		off += in.Len
	}
	return out
}
