package isa

import (
	"bytes"
	"testing"
)

func TestAssembleMatchesBuilder(t *testing.T) {
	src := `
start:
    mov rsp, 0x700800
    mov rax, 42          # a comment
    mov rbx, rax
    mov [rsi+8], rbx ; mov rcx, [rsi+8]
    add rax, 1
    cmp rax, 43
    jz done
    jmp start
done:
    xor rax, rax
    shl rbx, 6
    call fn
    hlt
fn:
    push rbp
    pop rbp
    ret
`
	blob, syms, err := Assemble(src, 0x400000)
	if err != nil {
		t.Fatal(err)
	}

	b := NewAssembler(0x400000)
	b.Label("start")
	b.MovImm(RSP, 0x700800)
	b.MovImm(RAX, 42)
	b.MovReg(RBX, RAX)
	b.Store(RSI, 8, RBX)
	b.Load(RCX, RSI, 8)
	b.AluImm(AluAdd, RAX, 1)
	b.AluImm(AluCmp, RAX, 43)
	b.Jcc(CondZ, "done")
	b.Jmp("start")
	b.Label("done")
	b.Xor(RAX, RAX)
	b.Shl(RBX, 6)
	b.Call("fn")
	b.Hlt()
	b.Label("fn")
	b.Push(RBP)
	b.Pop(RBP)
	b.Ret()
	want := b.MustBytes()

	if !bytes.Equal(blob, want) {
		t.Fatalf("parsed blob differs:\n got % x\nwant % x", blob, want)
	}
	if len(syms) != 3 {
		t.Fatalf("symbols = %v", syms)
	}
}

func TestAssembleDirectivesAndIndirect(t *testing.T) {
	src := `
    nop5
    .align 0x40
aligned:
    jmp *rdi
    call *r12
    .org 0x400100
far:
    clflush [rbx+0x40]
    lfence
    rdtsc
    syscall
    jb aligned
    jae far
    jnz far
    int3
`
	blob, syms, err := Assemble(src, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	var aligned, far uint64
	for _, s := range syms {
		switch s.Name {
		case "aligned":
			aligned = s.Addr
		case "far":
			far = s.Addr
		}
	}
	if aligned != 0x400040 {
		t.Fatalf("aligned at %#x", aligned)
	}
	if far != 0x400100 {
		t.Fatalf("far at %#x", far)
	}
	// The blob decodes cleanly end to end.
	off := 0
	for off < len(blob) {
		in := Decode(blob[off:])
		if in.Op == OpInvalid {
			t.Fatalf("undecodable byte at +%#x", off)
		}
		off += in.Len
	}
}

func TestAssembleMovLabel(t *testing.T) {
	src := `
    mov rdi, target
    jmp *rdi
target:
    hlt
`
	blob, syms, err := Assemble(src, 0x500000)
	if err != nil {
		t.Fatal(err)
	}
	in := Decode(blob)
	if in.Op != OpMovImm {
		t.Fatalf("first insn %v", in)
	}
	var target uint64
	for _, s := range syms {
		if s.Name == "target" {
			target = s.Addr
		}
	}
	if uint64(in.Imm) != target {
		t.Fatalf("mov label loaded %#x, want %#x", uint64(in.Imm), target)
	}
}

func TestAssembleNegativeDisplacement(t *testing.T) {
	blob, _, err := Assemble("mov rax, [rbp-8]", 0)
	if err != nil {
		t.Fatal(err)
	}
	in := Decode(blob)
	if in.Op != OpLoad || in.Disp != -8 {
		t.Fatalf("decoded %+v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate rax",
		"mov rax",
		"mov [rax+1], [rbx+2]",
		"jmp",
		"push 42",
		"shl rax, 99",
		"mov rax, [bogus+4]",
		"bad label here:",
		".org zzz",
		"xor rax, 5",
	}
	for _, src := range cases {
		if _, _, err := Assemble(src, 0); err == nil {
			t.Errorf("%q assembled without error", src)
		}
	}
}

func TestAssembleLineNumbersInErrors(t *testing.T) {
	_, _, err := Assemble("nop\nnop\nbogus op", 0)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("line 3")) {
		t.Fatalf("error %v does not cite line 3", err)
	}
}
