package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into machine code at the given base
// address. The syntax mirrors the disassembler's output: one statement per
// line (or ';'-separated), '#' or '//' comments, labels as "name:", and
// Intel-style operands:
//
//	start:
//	    mov rax, 0x40
//	    mov rbx, [rsi+8]
//	    mov [rsi+16], rbx
//	    cmp rax, 10
//	    jb start
//	    jmp *rdi
//	    call fn
//	    ret
//
// Directives: ".org <addr>" pads (with int3) to an absolute address and
// ".align <n>" to a power-of-two boundary. It returns the blob and the
// label symbol table.
func Assemble(src string, base uint64) ([]byte, []Symbol, error) {
	a := NewAssembler(base)
	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		for _, stmt := range strings.Split(rawLine, ";") {
			if err := parseStmt(a, stmt); err != nil {
				return nil, nil, fmt.Errorf("isa: line %d: %w", lineNo, err)
			}
		}
	}
	blob, err := a.Bytes()
	if err != nil {
		return nil, nil, err
	}
	return blob, a.Symbols(), nil
}

func parseStmt(a *Assembler, stmt string) error {
	// Strip comments.
	if i := strings.Index(stmt, "#"); i >= 0 {
		stmt = stmt[:i]
	}
	if i := strings.Index(stmt, "//"); i >= 0 {
		stmt = stmt[:i]
	}
	stmt = strings.TrimSpace(stmt)
	if stmt == "" {
		return nil
	}

	// Label, possibly followed by an instruction on the same statement
	// ("loop: add rax, 1").
	if i := strings.Index(stmt, ":"); i >= 0 {
		name := strings.TrimSpace(stmt[:i])
		if name == "" || strings.ContainsAny(name, " \t,[]*") {
			return fmt.Errorf("bad label %q", stmt)
		}
		a.Label(name)
		return parseStmt(a, stmt[i+1:])
	}

	op, rest, _ := strings.Cut(stmt, " ")
	op = strings.ToLower(strings.TrimSpace(op))
	args := splitArgs(rest)

	switch op {
	case "nop", "nop1":
		return expectArgs(op, args, 0, func() { a.Nop(1) })
	case "nop2", "nop3", "nop4", "nop5":
		n := int(op[3] - '0')
		return expectArgs(op, args, 0, func() { a.Nop(n) })
	case "ret":
		return expectArgs(op, args, 0, func() { a.Ret() })
	case "lfence":
		return expectArgs(op, args, 0, func() { a.Lfence() })
	case "mfence":
		return expectArgs(op, args, 0, func() { a.Mfence() })
	case "rdtsc":
		return expectArgs(op, args, 0, func() { a.Rdtsc() })
	case "syscall":
		return expectArgs(op, args, 0, func() { a.Syscall() })
	case "hlt":
		return expectArgs(op, args, 0, func() { a.Hlt() })
	case "int3":
		return expectArgs(op, args, 0, func() { a.Int3() })

	case "jmp", "call":
		if len(args) != 1 {
			return fmt.Errorf("%s wants one operand", op)
		}
		if reg, ok := strings.CutPrefix(args[0], "*"); ok {
			r, err := parseReg(reg)
			if err != nil {
				return err
			}
			if op == "jmp" {
				a.JmpReg(r)
			} else {
				a.CallReg(r)
			}
			return nil
		}
		if op == "jmp" {
			a.Jmp(args[0])
		} else {
			a.Call(args[0])
		}
		return nil

	case "jz", "jnz", "jb", "jae":
		if len(args) != 1 {
			return fmt.Errorf("%s wants a label", op)
		}
		cond := map[string]Cond{"jz": CondZ, "jnz": CondNZ, "jb": CondB, "jae": CondAE}[op]
		a.Jcc(cond, args[0])
		return nil

	case "push", "pop":
		if len(args) != 1 {
			return fmt.Errorf("%s wants a register", op)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if op == "push" {
			a.Push(r)
		} else {
			a.Pop(r)
		}
		return nil

	case "clflush":
		if len(args) != 1 {
			return fmt.Errorf("clflush wants a memory operand")
		}
		base, disp, err := parseMem(args[0])
		if err != nil {
			return err
		}
		a.Clflush(base, disp)
		return nil

	case "mov":
		return parseMov(a, args)

	case "add", "or", "and", "sub", "cmp":
		if len(args) != 2 {
			return fmt.Errorf("%s wants two operands", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if src, err2 := parseReg(args[1]); err2 == nil {
			switch op {
			case "add":
				a.AddReg(dst, src)
			case "sub":
				a.SubReg(dst, src)
			case "cmp":
				a.CmpReg(dst, src)
			default:
				return fmt.Errorf("%s reg, reg not supported", op)
			}
			return nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		aluOps := map[string]AluOp{"add": AluAdd, "or": AluOr, "and": AluAnd, "sub": AluSub, "cmp": AluCmp}
		a.AluImm(aluOps[op], dst, int32(imm))
		return nil

	case "xor":
		if len(args) != 2 {
			return fmt.Errorf("xor wants two registers")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.Xor(dst, src)
		return nil

	case "shl", "shr":
		if len(args) != 2 {
			return fmt.Errorf("%s wants a register and a count", op)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		n, err := parseImm(args[1])
		if err != nil || n < 0 || n > 63 {
			return fmt.Errorf("bad shift count %q", args[1])
		}
		if op == "shl" {
			a.Shl(r, uint8(n))
		} else {
			a.Shr(r, uint8(n))
		}
		return nil

	case ".org":
		if len(args) != 1 {
			return fmt.Errorf(".org wants an address")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		a.Org(uint64(v))
		return nil
	case ".align":
		if len(args) != 1 {
			return fmt.Errorf(".align wants a power of two")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		a.Align(uint64(v))
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

func parseMov(a *Assembler, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("mov wants two operands")
	}
	dstMem := strings.HasPrefix(args[0], "[")
	srcMem := strings.HasPrefix(args[1], "[")
	switch {
	case dstMem && !srcMem: // store
		base, disp, err := parseMem(args[0])
		if err != nil {
			return err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.Store(base, disp, src)
		return nil
	case !dstMem && srcMem: // load
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, disp, err := parseMem(args[1])
		if err != nil {
			return err
		}
		a.Load(dst, base, disp)
		return nil
	case !dstMem && !srcMem:
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if src, err2 := parseReg(args[1]); err2 == nil {
			a.MovReg(dst, src)
			return nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			// mov reg, label
			a.MovImmLabel(dst, args[1])
			return nil
		}
		a.MovImm(dst, uint64(imm))
		return nil
	}
	return fmt.Errorf("mov mem, mem not supported")
}

// splitArgs splits a comma-separated operand list, trimming whitespace.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	for i := 0; i < NumRegs; i++ {
		if s == regNames[i] {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex (e.g. 0xffffffff81000000).
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseMem parses "[reg]", "[reg+disp]" or "[reg-disp]".
func parseMem(s string) (base int, disp int32, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, dispPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, dispPart = inner[:i], inner[i+1:]
	}
	base, err = parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	if dispPart != "" {
		d, err := parseImm(dispPart)
		if err != nil {
			return 0, 0, err
		}
		disp = int32(sign * d)
	}
	return base, disp, nil
}

// expectArgs validates the operand count and runs emit.
func expectArgs(op string, args []string, n int, emit func()) error {
	if len(args) != n {
		return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
	}
	emit()
	return nil
}
