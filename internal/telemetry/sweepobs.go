package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SweepScope observes one sweep.Run on behalf of the active hub: it
// feeds the registry (job counts, latency histogram, queue-depth and
// busy-worker gauges), appends per-job records to the run log, and
// drives the live progress line. It implements sweep.Observer
// structurally; all methods are safe for concurrent workers and
// nil-receiver-safe, so a disabled hub costs callers nothing.
type SweepScope struct {
	hub   *Hub
	name  string
	total int

	start   time.Time
	workers int

	done atomic.Int64
	errs atomic.Int64
	seq  atomic.Int64 // completion order, drives sampling

	jobsDone   *Counter
	jobErrors  *Counter
	jobLatency *Histogram
	queued     *Gauge
	busy       *Gauge
}

// Sweep opens an observation scope for a named sweep of total jobs.
// It returns nil when telemetry is disabled; callers pass the result
// to sweep.Options.Observer only when non-nil (a typed-nil interface
// would still be safe — every method checks the receiver — but a nil
// interface lets the sweep engine skip the callbacks entirely).
func Sweep(name string, total int) *SweepScope {
	h := Active()
	if h == nil {
		return nil
	}
	return &SweepScope{
		hub:        h,
		name:       name,
		total:      total,
		jobsDone:   h.reg.Counter("sweep_jobs_done"),
		jobErrors:  h.reg.Counter("sweep_job_errors"),
		jobLatency: h.reg.Histogram("sweep_job_latency_ns"),
		queued:     h.reg.Gauge("sweep_jobs_queued"),
		busy:       h.reg.Gauge("sweep_workers_busy"),
	}
}

// SweepStart records the sweep opening: job count, pool size, gauges,
// the run-log marker and the initial progress line.
func (s *SweepScope) SweepStart(total, workers int) {
	if s == nil {
		return
	}
	s.total = total
	s.workers = workers
	s.start = time.Now()
	s.queued.Add(int64(total))
	s.hub.log.record(record{Type: "sweep_start", Sweep: s.name, Jobs: total, Workers: workers})
	s.hub.prog.update(s.progressLine(), true)
}

// JobStart marks a job leaving the queue for a worker.
func (s *SweepScope) JobStart(job, worker int) {
	if s == nil {
		return
	}
	s.queued.Add(-1)
	s.busy.Add(1)
}

// JobDone records one finished job: counters and gauges always, the
// latency histogram and per-job run-log record subject to the hub's
// SampleEvery thinning.
func (s *SweepScope) JobDone(job, worker int, d time.Duration, err error) {
	if s == nil {
		return
	}
	s.busy.Add(-1)
	s.done.Add(1)
	s.jobsDone.Inc(worker)
	if err != nil {
		s.errs.Add(1)
		s.jobErrors.Inc(worker)
	}
	if n := s.seq.Add(1); (n-1)%int64(s.hub.cfg.SampleEvery) == 0 {
		s.jobLatency.Observe(worker, uint64(d))
		r := record{
			Type: "job", Sweep: s.name, Job: job, Worker: worker,
			MS: float64(d) / float64(time.Millisecond),
		}
		if err != nil {
			r.Err = err.Error()
		}
		s.hub.log.record(r)
	}
	s.hub.prog.update(s.progressLine(), false)
}

// SweepEnd closes the scope: the run-log marker and a final, persistent
// progress line. The final rendering is not the last throttled live
// tick — it always shows the completed state (every job accounted for,
// 100% when none failed out) with the total elapsed time in place of
// the by-then-meaningless ETA.
func (s *SweepScope) SweepEnd() {
	if s == nil {
		return
	}
	s.hub.log.record(record{
		Type: "sweep_end", Sweep: s.name,
		Done: int(s.done.Load()), Errors: int(s.errs.Load()),
	})
	s.hub.prog.update(s.finalLine(), true)
	s.hub.prog.line()
}

// finalLine renders the completion state SweepEnd persists in the
// scrollback: the full job tally with a percentage, the pool size, the
// aggregate throughput, and how long the sweep took.
func (s *SweepScope) finalLine() string {
	done := s.done.Load()
	elapsed := time.Since(s.start)
	pct := int64(100)
	if s.total > 0 {
		pct = done * 100 / int64(s.total)
	}
	line := fmt.Sprintf("%s · job %d/%d · %d%% · %d workers", s.name, done, s.total, pct, s.workers)
	if done > 0 && elapsed > 0 {
		line += fmt.Sprintf(" · %s jobs/s", formatRate(float64(done)/elapsed.Seconds()))
	}
	line += fmt.Sprintf(" · done in %s", formatETA(elapsed))
	if errs := s.errs.Load(); errs > 0 {
		line += fmt.Sprintf(" · %d failed", errs)
	}
	return line
}

// progressLine renders the live status: name, completion, throughput
// and the ETA extrapolated from progress so far.
func (s *SweepScope) progressLine() string {
	done := s.done.Load()
	elapsed := time.Since(s.start)
	line := fmt.Sprintf("%s · job %d/%d · %d workers", s.name, done, s.total, s.workers)
	if done > 0 && elapsed > 0 {
		rate := float64(done) / elapsed.Seconds()
		eta := time.Duration(float64(s.total-int(done)) / rate * float64(time.Second))
		line += fmt.Sprintf(" · %s jobs/s · ETA %s", formatRate(rate), formatETA(eta))
	}
	if errs := s.errs.Load(); errs > 0 {
		line += fmt.Sprintf(" · %d failed", errs)
	}
	return line
}
