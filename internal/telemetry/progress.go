package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progressInterval throttles live redraws: at most one render per
// interval, plus an unconditional final render when a sweep ends.
const progressInterval = 100 * time.Millisecond

// progress renders a single live status line, carriage-return
// overwriting itself until finish appends the final newline. It writes
// only to the configured sink (the CLI passes stderr) and never to
// experiment output.
type progress struct {
	mu       sync.Mutex
	w        io.Writer
	last     time.Time
	rendered bool
}

func newProgress(w io.Writer) *progress {
	return &progress{w: w}
}

// update redraws the line if the throttle interval has passed; force
// bypasses the throttle (sweep start/end). Nil-safe.
func (p *progress) update(line string, force bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if !force && now.Sub(p.last) < progressInterval {
		return
	}
	p.last = now
	p.rendered = true
	// \r returns to column 0; \x1b[K clears the remnant of a longer
	// previous line.
	fmt.Fprintf(p.w, "\r%s\x1b[K", line)
}

// line ends the live line with a newline, leaving the last rendering
// in the scrollback. Nil-safe.
func (p *progress) line() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rendered {
		fmt.Fprintln(p.w)
		p.rendered = false
	}
}

// finish closes out any live line at session end.
func (p *progress) finish() { p.line() }

// formatETA renders a duration as MM:SS (or H:MM:SS past the hour) for
// the progress line.
func formatETA(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	s := int(d.Round(time.Second) / time.Second)
	if h := s / 3600; h > 0 {
		return fmt.Sprintf("%d:%02d:%02d", h, s/60%60, s%60)
	}
	return fmt.Sprintf("%02d:%02d", s/60, s%60)
}

// formatRate renders jobs/second compactly (1234 -> "1.2k").
func formatRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	case r >= 10:
		return fmt.Sprintf("%.0f", r)
	default:
		return fmt.Sprintf("%.1f", r)
	}
}
