package telemetry

import (
	"bufio"
	"encoding/json"
	"sync"
)

// record is one JSONL run-log line. A single struct covers every record
// type; the Type field says which of the optional fields are present.
// The schema is documented in DESIGN.md ("Telemetry" section) and
// pinned by TestRunLogSchema.
type record struct {
	// Type is "sweep_start", "job", "sweep_end" or "summary".
	Type string `json:"type"`

	// Sweep names the sweep the record belongs to (all types but
	// "summary").
	Sweep string `json:"sweep,omitempty"`

	// sweep_start fields.
	Jobs    int `json:"jobs,omitempty"`
	Workers int `json:"workers,omitempty"`

	// job fields: the job index, the worker that ran it, its harness
	// wall-clock latency, and the error text for failed jobs.
	Job    int     `json:"job,omitempty"`
	Worker int     `json:"worker,omitempty"`
	MS     float64 `json:"ms,omitempty"`
	Err    string  `json:"err,omitempty"`

	// sweep_end fields.
	Done   int `json:"done,omitempty"`
	Errors int `json:"errors,omitempty"`

	// summary fields: the run label, total harness wall time, and the
	// full metric snapshot.
	Label  string    `json:"label,omitempty"`
	WallMS float64   `json:"wall_ms,omitempty"`
	Snap   *Snapshot `json:"metrics,omitempty"`
}

// runLog serializes records as JSON Lines. Writes from concurrent sweep
// workers interleave whole lines, never bytes.
type runLog struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	err error
}

func newRunLog(w interface{ Write([]byte) (int, error) }) *runLog {
	buf := bufio.NewWriter(w)
	return &runLog{buf: buf, enc: json.NewEncoder(buf)}
}

// record appends one line; the first write error sticks and is reported
// by flush. Nil-safe.
func (l *runLog) record(r record) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.err = l.enc.Encode(r)
}

// flush drains the buffer and reports the first error seen.
func (l *runLog) flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.buf.Flush(); l.err == nil {
		l.err = err
	}
	return l.err
}
