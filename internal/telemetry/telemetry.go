// Package telemetry is the harness observability layer: a sharded,
// allocation-free metrics registry (counters, gauges, bounded latency
// histograms), a JSONL run log, a live sweep progress line, and an
// optional pprof/metrics debug server.
//
// The package exists to watch the *harness* — worker pools, job
// latencies, interpreter throughput — and is strictly distinct from the
// modeled pipeline.PerfCounters an attacker may sample. Its hard
// invariant mirrors the paper's Section 5.1 discipline (a counter may
// observe, never perturb): nothing in this package charges modeled
// cycles, touches a modeled structure, or consumes the simulation's
// RNG, so every experiment renders byte-identical output with telemetry
// enabled, disabled, or sampled. Test*TelemetryParity pins that.
//
// Usage: the process opts in with Enable (the phantom CLI does this for
// -metrics / -progress / -debug-addr) and instrumented code asks the
// active hub for pre-registered metric handles. When no hub is active
// every handle is nil and every record path is a nil-check — the
// disabled harness pays nothing.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the counter shard fan-out. Writers pick a shard (sweep
// workers use their worker index, machines get one at boot) so parallel
// sweeps do not serialize on one cache line. Must be a power of two.
const NumShards = 16

// shardPad pads each shard to its own cache line.
type shardPad struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, sharded event count. The nil
// Counter is valid and records nothing, so instrumentation sites need no
// enabled/disabled branch of their own.
type Counter struct {
	name   string
	shards [NumShards]shardPad
}

// Add adds n to the counter on the given shard.
func (c *Counter) Add(shard int, n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.shards[shard&(NumShards-1)].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc(shard int) {
	if c == nil {
		return
	}
	c.shards[shard&(NumShards-1)].v.Add(1)
}

// Value sums all shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous signed level (queue depth, busy workers).
// The nil Gauge is valid and records nothing.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the level by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histMaxBuckets bounds every histogram: 1ns..~1s in powers of four,
// plus an overflow bucket. Fixed bounds keep Observe allocation-free
// and the snapshot size constant however long a sweep runs.
const histMaxBuckets = 16

// histBucket returns the bucket index for a value: floor(log4(v)),
// clamped to the overflow bucket.
func histBucket(v uint64) int {
	b := 0
	for v > 0 && b < histMaxBuckets-1 {
		v >>= 2
		b++
	}
	return b
}

// histBound is the inclusive upper bound of bucket i (4^i-1: bucket 0
// holds only zero, bucket 1 holds 1..3, bucket 2 holds 4..15, ...),
// used only for rendering snapshots.
func histBound(i int) uint64 {
	if i >= histMaxBuckets-1 {
		return ^uint64(0)
	}
	return 1<<(2*uint(i)) - 1
}

// Histogram is a bounded, sharded latency histogram over power-of-four
// buckets. Values are whatever unit the caller observes (the sweep
// observer records nanoseconds). The nil Histogram is valid and records
// nothing.
type Histogram struct {
	name    string
	count   Counter
	sum     Counter
	buckets [histMaxBuckets]Counter
}

// Observe records one value on the given shard.
func (h *Histogram) Observe(shard int, v uint64) {
	if h == nil {
		return
	}
	h.count.Inc(shard)
	h.sum.Add(shard, v)
	h.buckets[histBucket(v)].Inc(shard)
}

// HistogramSnapshot is the JSON-friendly view of a Histogram. Buckets
// maps the inclusive upper bound to the count of observations at or
// under it (empty buckets are omitted; the overflow bound renders as
// "inf").
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Value(), Sum: h.sum.Value()}
	for i := range h.buckets {
		if n := h.buckets[i].Value(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[string]uint64)
			}
			s.Buckets[histBoundLabel(i)] = n
		}
	}
	return s
}

func histBoundLabel(i int) string {
	if i >= histMaxBuckets-1 {
		return "inf"
	}
	return itoa(histBound(i))
}

// itoa is strconv.FormatUint without the import weight, for bucket
// labels only.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Registry holds named metrics. Registration (the Counter/Gauge/
// Histogram lookups) takes a mutex and may allocate; the returned
// handles record lock-free and allocation-free. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns the nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, with deterministic
// (sorted) JSON encoding via ordinary map marshaling.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current values of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// CounterNames lists the registered counters in sorted order (for the
// text /metrics rendering and tests).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
