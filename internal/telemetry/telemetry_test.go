package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardedConcurrency(t *testing.T) {
	var c Counter
	const perShard = 1000
	var wg sync.WaitGroup
	for shard := 0; shard < NumShards*2; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				c.Inc(shard)
			}
		}(shard)
	}
	wg.Wait()
	if got, want := c.Value(), uint64(NumShards*2*perShard); got != want {
		t.Errorf("Value() = %d, want %d", got, want)
	}
	c.Add(5, 7)
	if got := c.Value(); got != NumShards*2*perShard+7 {
		t.Errorf("after Add: %d", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc(0)
	c.Add(3, 9)
	if c.Value() != 0 {
		t.Error("nil Counter has a value")
	}
	var g *Gauge
	g.Set(4)
	g.Add(-2)
	if g.Value() != 0 {
		t.Error("nil Gauge has a value")
	}
	var h *Histogram
	h.Observe(0, 100)
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil Registry returned non-nil handles")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil {
		t.Error("nil Registry snapshot not empty")
	}
	var l *runLog
	l.record(record{Type: "job"})
	if err := l.flush(); err != nil {
		t.Errorf("nil runLog flush: %v", err)
	}
	var p *progress
	p.update("x", true)
	p.finish()
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("Value() = %d, want 7", got)
	}
}

func TestHistBucketBounds(t *testing.T) {
	// Power-of-four buckets: bucket i covers (4^i-1, 4^(i+1)-1].
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {3, 1}, {4, 2}, {15, 2}, {16, 3},
		{1 << 20, 11}, {^uint64(0), histMaxBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 0; i < histMaxBuckets-1; i++ {
		if got := histBucket(histBound(i)); got != i {
			t.Errorf("histBound(%d)=%d lands in bucket %d", i, histBound(i), got)
		}
		if got := histBucket(histBound(i) + 1); got != i+1 {
			t.Errorf("histBound(%d)+1 lands in bucket %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(0, 3)
	h.Observe(1, 3)
	h.Observe(2, 100)
	s := h.snapshot()
	if s.Count != 3 || s.Sum != 106 {
		t.Errorf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.Buckets["3"] != 2 {
		t.Errorf("bucket 3 = %d, want 2", s.Buckets["3"])
	}
	if s.Buckets["255"] != 1 {
		t.Errorf("bucket 255 = %d, want 1 (buckets: %v)", s.Buckets["255"], s.Buckets)
	}
	h.Observe(0, ^uint64(0))
	if s := h.snapshot(); s.Buckets["inf"] != 1 {
		t.Errorf("overflow bucket = %d (buckets: %v)", s.Buckets["inf"], s.Buckets)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1, c2 := r.Counter("a"), r.Counter("a")
	if c1 != c2 {
		t.Error("same name returned distinct counters")
	}
	r.Counter("b").Inc(0)
	r.Gauge("depth").Set(5)
	r.Histogram("lat").Observe(0, 9)
	s := r.Snapshot()
	if s.Counters["b"] != 1 || s.Gauges["depth"] != 5 || s.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot: %+v", s)
	}
	if got := r.CounterNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("CounterNames() = %v", got)
	}
}

// decodeLines parses a JSONL buffer into records.
func decodeLines(t *testing.T, b []byte) []record {
	t.Helper()
	var recs []record
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestRunLogSchema drives a full hub session through the sweep observer
// and pins the run-log record sequence and fields documented in
// DESIGN.md.
func TestRunLogSchema(t *testing.T) {
	var buf bytes.Buffer
	Enable(Config{RunLog: &buf, Label: "unit"})
	s := Sweep("demo", 3)
	if s == nil {
		t.Fatal("Sweep returned nil with an active hub")
	}
	s.SweepStart(3, 2)
	for job := 0; job < 3; job++ {
		s.JobStart(job, job%2)
		var err error
		if job == 2 {
			err = errors.New("boom")
		}
		s.JobDone(job, job%2, 5*time.Millisecond, err)
	}
	s.SweepEnd()
	if err := Disable(); err != nil {
		t.Fatal(err)
	}

	recs := decodeLines(t, buf.Bytes())
	if len(recs) != 6 { // start + 3 jobs + end + summary
		t.Fatalf("got %d records: %+v", len(recs), recs)
	}
	if r := recs[0]; r.Type != "sweep_start" || r.Sweep != "demo" || r.Jobs != 3 || r.Workers != 2 {
		t.Errorf("sweep_start: %+v", r)
	}
	for i, r := range recs[1:4] {
		if r.Type != "job" || r.Sweep != "demo" || r.Job != i || r.MS <= 0 {
			t.Errorf("job record %d: %+v", i, r)
		}
	}
	if recs[3].Err != "boom" {
		t.Errorf("failed job record carries no error: %+v", recs[3])
	}
	if r := recs[4]; r.Type != "sweep_end" || r.Done != 3 || r.Errors != 1 {
		t.Errorf("sweep_end: %+v", r)
	}
	sum := recs[5]
	if sum.Type != "summary" || sum.Label != "unit" || sum.Snap == nil {
		t.Fatalf("summary: %+v", sum)
	}
	if got := sum.Snap.Counters["sweep_jobs_done"]; got != 3 {
		t.Errorf("summary sweep_jobs_done = %d", got)
	}
	if got := sum.Snap.Counters["sweep_job_errors"]; got != 1 {
		t.Errorf("summary sweep_job_errors = %d", got)
	}
	if got := sum.Snap.Histograms["sweep_job_latency_ns"].Count; got != 3 {
		t.Errorf("latency histogram count = %d", got)
	}
	if got := sum.Snap.Gauges["sweep_jobs_queued"]; got != 0 {
		t.Errorf("queued gauge did not drain: %d", got)
	}
}

// TestRunLogSampling pins the SampleEvery contract: counters see every
// job, but only every Nth job lands in the log and the histogram.
func TestRunLogSampling(t *testing.T) {
	var buf bytes.Buffer
	Enable(Config{RunLog: &buf, SampleEvery: 3})
	s := Sweep("sampled", 7)
	s.SweepStart(7, 1)
	for job := 0; job < 7; job++ {
		s.JobStart(job, 0)
		s.JobDone(job, 0, time.Millisecond, nil)
	}
	s.SweepEnd()
	if err := Disable(); err != nil {
		t.Fatal(err)
	}
	jobs := 0
	var sum *Snapshot
	for _, r := range decodeLines(t, buf.Bytes()) {
		switch r.Type {
		case "job":
			jobs++
		case "summary":
			sum = r.Snap
		}
	}
	if jobs != 3 { // completions 1, 4, 7
		t.Errorf("%d job records with SampleEvery=3, want 3", jobs)
	}
	if got := sum.Counters["sweep_jobs_done"]; got != 7 {
		t.Errorf("counters sampled: sweep_jobs_done = %d, want 7", got)
	}
	if got := sum.Histograms["sweep_job_latency_ns"].Count; got != 3 {
		t.Errorf("histogram count = %d, want 3", got)
	}
}

func TestProgressRendering(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf)
	p.update("first", true)
	p.update("throttled-away", false) // within the 100ms throttle
	p.update("second", true)
	p.finish()
	out := buf.String()
	if !strings.Contains(out, "\rfirst\x1b[K") || !strings.Contains(out, "\rsecond\x1b[K") {
		t.Errorf("renderings missing: %q", out)
	}
	if strings.Contains(out, "throttled-away") {
		t.Errorf("throttled update rendered: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("finish did not terminate the line: %q", out)
	}
	p.finish()
	if got := buf.String(); strings.HasSuffix(got, "\n\n") {
		t.Error("second finish wrote another newline")
	}
}

func TestProgressLineContent(t *testing.T) {
	Enable(Config{})
	defer Disable()
	s := Sweep("kaslr", 100)
	s.SweepStart(100, 4)
	s.start = time.Now().Add(-10 * time.Second) // 10s elapsed
	for i := 0; i < 41; i++ {
		s.done.Add(1)
	}
	line := s.progressLine()
	for _, want := range []string{"kaslr", "job 41/100", "4 workers", "jobs/s", "ETA"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	s.errs.Add(2)
	if line := s.progressLine(); !strings.Contains(line, "2 failed") {
		t.Errorf("progress line %q missing failure count", line)
	}
}

// TestProgressFinalLine pins the SweepEnd regression fix: the persistent
// line left in the scrollback must show the completed (100%) state with
// the total elapsed time, not whatever the last 100ms throttle tick
// happened to render.
func TestProgressFinalLine(t *testing.T) {
	var buf bytes.Buffer
	Enable(Config{Progress: &buf})
	s := Sweep("kaslr", 3)
	s.SweepStart(3, 2)
	s.start = time.Now().Add(-2 * time.Second)
	for i := 0; i < 3; i++ {
		s.done.Add(1)
	}
	s.SweepEnd()
	if err := Disable(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	final := out[strings.LastIndex(strings.TrimRight(out, "\n"), "\r")+1:]
	for _, want := range []string{"job 3/3", "100%", "done in"} {
		if !strings.Contains(final, want) {
			t.Errorf("final progress line %q missing %q", final, want)
		}
	}
	if strings.Contains(final, "ETA") {
		t.Errorf("final progress line %q still renders an ETA", final)
	}

	// A partially failed sweep must not claim 100%.
	s = &SweepScope{total: 4, workers: 2, start: time.Now()}
	s.done.Add(2)
	s.errs.Add(2)
	if line := s.finalLine(); !strings.Contains(line, "50%") || !strings.Contains(line, "2 failed") {
		t.Errorf("partial final line %q should report 50%% and 2 failed", line)
	}
}

func TestFormatETA(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{-time.Second, "00:00"},
		{42 * time.Second, "00:42"},
		{15 * time.Minute, "15:00"},
		{2*time.Hour + 3*time.Minute + 4*time.Second, "2:03:04"},
	}
	for _, c := range cases {
		if got := formatETA(c.d); got != c.want {
			t.Errorf("formatETA(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		r    float64
		want string
	}{
		{0.5, "0.5"}, {42, "42"}, {1234, "1.2k"}, {2.5e6, "2.5M"},
	}
	for _, c := range cases {
		if got := formatRate(c.r); got != c.want {
			t.Errorf("formatRate(%g) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestEnableDisableLifecycle(t *testing.T) {
	if Active() != nil {
		t.Fatal("hub active at test start")
	}
	h := Enable(Config{})
	if Active() != h {
		t.Error("Enable did not activate the hub")
	}
	CountExperiment("demo")
	if got := h.Registry().Counter("experiment_demo").Value(); got != 1 {
		t.Errorf("experiment counter = %d", got)
	}
	stats, shard0 := MachineStats()
	if stats == nil {
		t.Fatal("MachineStats nil with active hub")
	}
	_, shard1 := MachineStats()
	if shard0 == shard1 {
		t.Error("MachineStats does not round-robin shards")
	}
	if err := Disable(); err != nil {
		t.Fatal(err)
	}
	if Active() != nil {
		t.Error("Disable left the hub active")
	}
	if err := Disable(); err != nil {
		t.Errorf("second Disable: %v", err)
	}
}

func TestDebugServer(t *testing.T) {
	Enable(Config{})
	defer Disable()
	Active().Registry().Counter("pipeline_runs").Add(0, 42)
	Active().Registry().Histogram("sweep_job_latency_ns").Observe(0, 9)

	d, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if got := get("/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if snap.Counters["pipeline_runs"] != 42 {
		t.Errorf("/metrics counters: %v", snap.Counters)
	}
	text := get("/metrics?format=text")
	for _, want := range []string{"pipeline_runs 42", "sweep_job_latency_ns_count 1", "sweep_job_latency_ns_sum 9"} {
		if !strings.Contains(text, want) {
			t.Errorf("text metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index not served")
	}
}

// TestRunLogStickyError pins the error path: the first sink failure
// sticks and surfaces from flush (and thus from Disable).
func TestRunLogStickyError(t *testing.T) {
	l := newRunLog(failWriter{})
	// bufio only hits the sink once its buffer fills or on flush.
	l.record(record{Type: "job"})
	if err := l.flush(); err == nil {
		t.Error("flush swallowed the sink error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }
