package telemetry

import (
	"io"
	"sync/atomic"
	"time"
)

// Config tunes an Enable call. Every field is optional; a zero Config
// enables an in-memory registry only.
type Config struct {
	// RunLog, when non-nil, receives the JSONL run log: one record per
	// sweep job plus sweep_start/sweep_end markers and a final summary
	// written by Disable. See DESIGN.md for the schema.
	RunLog io.Writer
	// Progress, when non-nil, receives the live one-line sweep progress
	// rendering (the CLI passes stderr).
	Progress io.Writer
	// SampleEvery thins the per-job latency records: only every Nth
	// completed job is observed into the latency histogram and written
	// to the run log. 0 or 1 records every job. Counters and gauges are
	// cheap and are never sampled.
	SampleEvery int
	// Label names the run in the summary record (the CLI uses the
	// experiment name).
	Label string
}

// Hub is one enabled telemetry session: the registry plus the
// configured sinks. At most one hub is active per process.
type Hub struct {
	cfg      Config
	reg      *Registry
	log      *runLog
	prog     *progress
	start    time.Time
	shardSeq atomic.Uint32
	pipe     PipelineStats
}

// active is the process-wide hub; nil means telemetry is disabled.
var active atomic.Pointer[Hub]

// Enable starts a telemetry session and makes it the process-wide hub,
// replacing any previous one without flushing it (call Disable first
// for an orderly handover). It returns the new hub.
func Enable(cfg Config) *Hub {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	h := &Hub{cfg: cfg, reg: NewRegistry(), start: time.Now()}
	if cfg.RunLog != nil {
		h.log = newRunLog(cfg.RunLog)
	}
	if cfg.Progress != nil {
		h.prog = newProgress(cfg.Progress)
	}
	h.pipe = PipelineStats{
		Boots:               h.reg.Counter("pipeline_boots"),
		Runs:                h.reg.Counter("pipeline_runs"),
		Instructions:        h.reg.Counter("pipeline_instructions"),
		Cycles:              h.reg.Counter("pipeline_sim_cycles"),
		FrontendResteers:    h.reg.Counter("pipeline_frontend_resteers"),
		BackendResteers:     h.reg.Counter("pipeline_backend_resteers"),
		TransientFetchLines: h.reg.Counter("pipeline_transient_fetch_lines"),
		TransientDecodes:    h.reg.Counter("pipeline_transient_decodes"),
		PredecodeHits:       h.reg.Counter("pipeline_predecode_hits"),
		PredecodeMisses:     h.reg.Counter("pipeline_predecode_misses"),
		Faults:              h.reg.Counter("pipeline_faults"),
		TimedProbes:         h.reg.Counter("pipeline_timed_probes"),
	}
	active.Store(h)
	return h
}

// Disable ends the active session: it finishes the progress rendering,
// writes the summary record (total wall time plus a full metric
// snapshot) to the run log, flushes it, and deactivates the hub. A
// no-op when no hub is active.
func Disable() error {
	h := active.Swap(nil)
	if h == nil {
		return nil
	}
	h.prog.finish()
	if h.log == nil {
		return nil
	}
	h.log.record(record{
		Type:   "summary",
		Label:  h.cfg.Label,
		WallMS: float64(time.Since(h.start)) / float64(time.Millisecond),
		Snap:   ptr(h.reg.Snapshot()),
	})
	return h.log.flush()
}

func ptr[T any](v T) *T { return &v }

// Active returns the current hub, or nil when telemetry is disabled.
func Active() *Hub { return active.Load() }

// Registry exposes the hub's metric registry (for the debug server and
// tests). Nil-safe: a nil hub returns a nil registry whose lookups
// return no-op handles.
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// PipelineStats are the harness-side interpreter tallies, aggregated
// across every Machine booted while the hub is active. They mirror
// events the simulator already counts in its modeled PerfCounters /
// DebugCounters but live entirely outside the model: machines batch
// deltas into these sharded counters at Run boundaries, charging no
// modeled cycles and touching no modeled structure.
type PipelineStats struct {
	Boots, Runs          *Counter
	Instructions, Cycles *Counter

	FrontendResteers, BackendResteers     *Counter
	TransientFetchLines, TransientDecodes *Counter
	PredecodeHits, PredecodeMisses        *Counter

	Faults      *Counter
	TimedProbes *Counter
}

// MachineStats hands a booting Machine its tally handles plus a shard
// assignment (round-robin, so concurrent sweep machines spread across
// counter shards). When telemetry is disabled it returns nil handles —
// the Machine's record paths then reduce to one nil check.
func MachineStats() (*PipelineStats, int) {
	h := Active()
	if h == nil {
		return nil, 0
	}
	return &h.pipe, int(h.shardSeq.Add(1) - 1)
}

// CountExperiment bumps the per-driver invocation counter for name
// (e.g. "kaslr_image"). Experiment drivers in internal/core call this
// once per run; it is a no-op when telemetry is disabled.
func CountExperiment(name string) {
	h := Active()
	if h == nil {
		return
	}
	h.reg.Counter("experiment_" + name).Inc(0)
}
