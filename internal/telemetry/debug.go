package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// DebugServer serves Go pprof profiles and the live metric snapshot
// over HTTP for long-running sweeps (the phantom CLI's -debug-addr
// flag). Like everything in this package it only observes: handlers
// read registry snapshots and runtime profiles, never simulation state.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// MetricsHandler returns the handler behind the /metrics endpoint: the
// active hub's snapshot as JSON, or one "name value" line per metric
// with ?format=text. phantom-server mounts it on its own mux so served
// traffic and the -debug-addr server render metrics identically. The
// handler is safe with no active hub (it renders an empty snapshot).
func MetricsHandler() http.Handler { return http.HandlerFunc(serveMetrics) }

// StartDebug listens on addr (host:port; port 0 picks a free one) and
// serves:
//
//	/debug/pprof/...   the standard net/http/pprof handlers
//	/metrics           the active hub's snapshot as JSON
//	/metrics?format=text  one "name value" line per counter/gauge
//	/healthz           "ok"
func StartDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return d, nil
}

// Addr returns the bound listen address (useful with port 0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error {
	d.srv.SetKeepAlivesEnabled(false)
	return d.srv.Close()
}

func serveMetrics(w http.ResponseWriter, r *http.Request) {
	reg := Active().Registry()
	snap := reg.Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTextMetrics(w, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // best-effort debug endpoint
}

func writeTextMetrics(w http.ResponseWriter, snap Snapshot) {
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for name := range snap.Counters {
		names = append(names, name)
	}
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v, ok := snap.Counters[name]; ok {
			fmt.Fprintf(w, "%s %d\n", name, v)
		} else {
			fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[name])
		}
	}
	for _, name := range sortedHistNames(snap) {
		h := snap.Histograms[name]
		fmt.Fprintf(w, "%s_count %d\n%s_sum %d\n", name, h.Count, name, h.Sum)
	}
}

func sortedHistNames(snap Snapshot) []string {
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
