package search

import (
	"context"
	"testing"
)

// findOne runs a small search until it surfaces a finding of cat and
// returns the *unminimized* program that produced it.
func findOne(t *testing.T, arch string, cat Category) *Program {
	t.Helper()
	for it := 0; it < 2000; it++ {
		p := Generate(arch, deriveSeed(21, it))
		d, err := RunDiff(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range Classify(p, d) {
			if f.Category == cat {
				return p
			}
		}
	}
	t.Fatalf("no %s finding in 2000 programs", cat)
	return nil
}

// TestMinimizeLocallyMinimal verifies the minimizer's contract
// independently of its implementation: on the shrunk program, removing
// any single victim or gadget statement — or one training round — loses
// the finding.
func TestMinimizeLocallyMinimal(t *testing.T) {
	p := findOne(t, "zen2", CatDeepWindow)
	min, err := Minimize(p, CatDeepWindow)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := reproduces(min, CatDeepWindow); err != nil || !ok {
		t.Fatalf("minimized program does not reproduce (ok=%v err=%v)", ok, err)
	}
	if len(min.Victim) > len(p.Victim) || len(min.Gadget) > len(p.Gadget) {
		t.Fatalf("minimization grew the program: %d/%d -> %d/%d statements",
			len(p.Victim), len(p.Gadget), len(min.Victim), len(min.Gadget))
	}

	drop := func(l []string, i int) []string {
		out := append([]string(nil), l[:i]...)
		return append(out, l[i+1:]...)
	}
	for i := range min.Victim {
		c := min.clone()
		c.Victim = drop(c.Victim, i)
		if ok, _ := reproduces(c, CatDeepWindow); ok {
			t.Errorf("removing victim[%d] (%q) keeps the finding: not locally minimal", i, min.Victim[i])
		}
	}
	for i := range min.Gadget {
		c := min.clone()
		c.Gadget = drop(c.Gadget, i)
		if ok, _ := reproduces(c, CatDeepWindow); ok {
			t.Errorf("removing gadget[%d] (%q) keeps the finding: not locally minimal", i, min.Gadget[i])
		}
	}
	if min.Rounds > 1 {
		c := min.clone()
		c.Rounds--
		if ok, _ := reproduces(c, CatDeepWindow); ok {
			t.Errorf("dropping a training round (%d -> %d) keeps the finding: not locally minimal",
				min.Rounds, c.Rounds)
		}
	}
}

// TestMinimizeRejectsNonReproducing: handing the minimizer a program
// that never exhibited the category is a caller bug it must report, not
// quietly return the input.
func TestMinimizeRejectsNonReproducing(t *testing.T) {
	p := &Program{Arch: "zen2", Seed: 5, Train: TrainJmpInd, Rounds: 1,
		Victim: []string{"nop1"}, Gadget: []string{"nop1"}}
	if _, err := Minimize(p, CatArchDivergence); err == nil {
		t.Fatal("want error for a program that does not reproduce the category")
	}
}

// TestMinimizedKeyStable: the search loop dedups on post-minimization
// keys; minimizing an already-minimal program must be a no-op with the
// same key.
func TestMinimizedKeyStable(t *testing.T) {
	r, err := Run(context.Background(), Options{Arch: "zen2", Seed: 3, Budget: 320, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Findings) == 0 {
		t.Skip("no findings at this budget")
	}
	f := r.Findings[0]
	again, err := Minimize(f.Program, f.Category)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDiff(again)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range Classify(again, d) {
		if g.Category == f.Category {
			if g.Key() != f.Key() {
				t.Errorf("re-minimization changed the key: %s -> %s", f.Key(), g.Key())
			}
			return
		}
	}
	t.Fatalf("re-minimized program lost category %s", f.Category)
}
