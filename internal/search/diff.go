package search

import (
	"phantom/internal/isa"
	"phantom/internal/pipeline"
)

// Episode is one wrong-path speculation episode observed in the
// victim run, reconstructed from decoder-visible trace events. Every
// episode the pipeline runs is delimited by its terminating resteer
// event (EvResteerFrontend for decoder-detected — Phantom — episodes,
// EvResteerBackend for execute-resolved ones), so the collector just
// accumulates EvSpec* counts until the next resteer closes them.
type Episode struct {
	Frontend   bool `json:"frontend"` // closed by a decoder-issued resteer
	FetchLines int  `json:"fetchLines"`
	Decodes    int  `json:"decodes"`
	Uops       int  `json:"uops"`
	Loads      int  `json:"loads"` // wrong-path D-cache fills (EvSpecLoad)
}

// collector is a pipeline.Tracer that folds the event stream into
// episodes.
type collector struct {
	episodes []Episode
	cur      Episode
	open     bool
}

func (c *collector) Emit(ev pipeline.Event) {
	switch ev.Kind {
	case pipeline.EvSpecFetch:
		c.open = true
		c.cur.FetchLines++
	case pipeline.EvSpecDecode:
		c.open = true
		c.cur.Decodes++
	case pipeline.EvSpecUop:
		c.open = true
		c.cur.Uops++
	case pipeline.EvSpecLoad:
		c.open = true
		c.cur.Loads++
	case pipeline.EvResteerFrontend, pipeline.EvResteerBackend:
		// A resteer closes the episode it terminates — including a
		// zero-depth one (a prediction consumed but killed before any
		// wrong-path fetch, e.g. the Intel jmp*-victim anomaly).
		c.cur.Frontend = ev.Kind == pipeline.EvResteerFrontend
		c.episodes = append(c.episodes, c.cur)
		c.cur = Episode{}
		c.open = false
	}
}

// finish flushes a dangling episode (a speculation run not followed by
// a resteer would be a model bug; keep the evidence rather than drop it).
func (c *collector) finish() []Episode {
	if c.open {
		c.episodes = append(c.episodes, c.cur)
		c.cur = Episode{}
		c.open = false
	}
	return c.episodes
}

func (c *collector) reset() {
	c.episodes = nil
	c.cur = Episode{}
	c.open = false
}

// ArchState is the architectural result of a victim run: everything a
// correct speculation implementation must leave identical between the
// mispredict-on and mispredict-off legs, except through the explicit
// rdtsc timing channel.
type ArchState struct {
	Regs    [isa.NumRegs]uint64 `json:"regs"`
	ZF      bool                `json:"zf"`
	CF      bool                `json:"cf"`
	RIP     uint64              `json:"rip"`
	Reason  string              `json:"reason"`
	Steps   int                 `json:"steps"`
	MemHash uint64              `json:"memHash"` // data+stack page contents
}

// Leg is one side of the differential pair.
type Leg struct {
	Arch       ArchState `json:"arch"`
	Cycles     uint64    `json:"cycles"`     // victim-run cycles
	PredDigest uint64    `json:"predDigest"` // BTB/RSB/PHT/BHB state
	Episodes   []Episode `json:"episodes"`
}

// Diff is the full differential result for one program.
type Diff struct {
	On  Leg `json:"on"`
	Off Leg `json:"off"`

	ArchDiverged bool  `json:"archDiverged"`
	PredDiverged bool  `json:"predDiverged"`
	CycleDelta   int64 `json:"cycleDelta"` // on - off
}

// runLeg builds a fresh machine for p, trains, runs the victim once,
// and captures the leg. specOff selects the mispredict-off reference.
func runLeg(p *Program, specOff bool) (Leg, error) {
	l, err := buildLab(p)
	if err != nil {
		return Leg{}, err
	}
	l.m.DisableSpeculation = specOff

	col := &collector{}
	l.m.Tracer = col

	rounds := p.Rounds
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		if err := l.trainOnce(p); err != nil {
			return Leg{}, err
		}
	}

	// Victim-only observation: training-phase events are not part of
	// the signature.
	col.reset()
	cyclesBefore := l.m.Cycle
	res := l.runVictim()

	leg := Leg{
		Arch: ArchState{
			Regs: l.m.Regs, ZF: l.m.ZF, CF: l.m.CF,
			RIP: l.m.RIP, Reason: res.Reason.String(), Steps: res.Steps,
			MemHash: l.memDigest(),
		},
		Cycles:     l.m.Cycle - cyclesBefore,
		PredDigest: l.predDigest(),
		Episodes:   col.finish(),
	}
	l.m.Tracer = nil
	return leg, nil
}

// memDigest hashes the data and stack pages.
func (l *lab) memDigest() uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, pa := range l.dataPAs {
		for off := uint64(0); off < 4096; off += 8 {
			v := l.m.Phys.Read64(pa + off)
			for i := 0; i < 8; i++ {
				h ^= v & 0xff
				h *= 0x100000001b3
				v >>= 8
			}
		}
	}
	return h
}

// predDigest folds the four predictor structures into one fingerprint.
func (l *lab) predDigest() uint64 {
	h := l.m.BTB.StateDigest()
	h = h*0x100000001b3 ^ l.m.RSB.StateDigest()
	h = h*0x100000001b3 ^ l.m.PHT.StateDigest()
	h = h*0x100000001b3 ^ l.m.BHB.StateDigest()
	return h
}

// RunDiff executes p mispredict-on and mispredict-off and diffs the
// two legs.
func RunDiff(p *Program) (*Diff, error) {
	on, err := runLeg(p, false)
	if err != nil {
		return nil, err
	}
	off, err := runLeg(p, true)
	if err != nil {
		return nil, err
	}
	d := &Diff{On: on, Off: off}
	d.ArchDiverged = on.Arch != off.Arch
	d.PredDiverged = on.PredDigest != off.PredDigest
	d.CycleDelta = int64(on.Cycles) - int64(off.Cycles)
	return d, nil
}

// usesRdtsc reports whether any generated statement reads the cycle
// counter — the one sanctioned way timing reaches architectural state.
func (p *Program) usesRdtsc() bool {
	for _, s := range p.Victim {
		if s == "rdtsc" {
			return true
		}
	}
	for _, s := range p.Gadget {
		if s == "rdtsc" {
			return true
		}
	}
	return false
}
