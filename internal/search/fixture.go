package search

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A fixture is one minimized finding landed on disk: the program plus
// the exact measurements the model produced for it, so the regression
// suite can replay the program and pin the classified divergence
// byte-exactly. Fixtures live under testdata/search/ at the repo root,
// one JSON file per finding, named after the finding key.

// Expect pins everything a replay must reproduce. The fields mirror
// Finding minus the program itself, plus the per-leg cycle counts that
// the dedup key deliberately leaves out — a fixture pins them because a
// drift in either is a model change the nightly job must surface.
type Expect struct {
	Category  Category `json:"category"`
	Key       string   `json:"key"`
	Episodes  int      `json:"episodes"`
	MaxFetch  int      `json:"maxFetch"`
	MaxDecode int      `json:"maxDecode"`
	MaxUops   int      `json:"maxUops"`
	SpecLoads int      `json:"specLoads"`

	CyclesOn     uint64 `json:"cyclesOn"`
	CyclesOff    uint64 `json:"cyclesOff"`
	PredDiverged bool   `json:"predDiverged"`
	ArchDiverged bool   `json:"archDiverged"`
}

// Fixture is the on-disk unit: a program and what replaying it must
// yield.
type Fixture struct {
	Program *Program `json:"program"`
	Expect  Expect   `json:"expect"`
}

// NewFixture captures a finding (and the diff it came from) as a
// fixture.
func NewFixture(f *Finding, d *Diff) *Fixture {
	return &Fixture{
		Program: f.Program,
		Expect: Expect{
			Category:  f.Category,
			Key:       f.Key(),
			Episodes:  f.Episodes,
			MaxFetch:  f.MaxFetch,
			MaxDecode: f.MaxDecode,
			MaxUops:   f.MaxUops,
			SpecLoads: f.SpecLoads,

			CyclesOn:     d.On.Cycles,
			CyclesOff:    d.Off.Cycles,
			PredDiverged: d.PredDiverged,
			ArchDiverged: d.ArchDiverged,
		},
	}
}

// Replay re-runs the fixture's program through the differential
// executor and returns what it measures today, in Expect form, plus
// the raw diff for diagnostics.
func (fx *Fixture) Replay() (*Expect, *Diff, error) {
	d, err := RunDiff(fx.Program)
	if err != nil {
		return nil, nil, err
	}
	for _, f := range Classify(fx.Program, d) {
		if f.Category != fx.Expect.Category {
			continue
		}
		got := NewFixture(&f, d).Expect
		return &got, d, nil
	}
	return nil, d, fmt.Errorf("search: replay of %s produced no %s finding",
		fx.Expect.Key, fx.Expect.Category)
}

// FixtureName is the on-disk filename for a finding key:
// "zen2/deep-window/jmp*/e2-f1-d2-u2-l0" →
// "zen2-deep-window-jmp_star-e2-f1-d2-u2-l0.json".
func FixtureName(key string) string {
	r := strings.NewReplacer("/", "-", "*", "_star", " ", "_")
	return r.Replace(key) + ".json"
}

// WriteFixture lands fx under dir (created if missing), returning the
// path written.
func WriteFixture(dir string, fx *Fixture) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(fx, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	path := filepath.Join(dir, FixtureName(fx.Expect.Key))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadFixtures reads every *.json under dir, sorted by filename so the
// corpus iterates in a stable order. A missing directory is an empty
// corpus, not an error.
func LoadFixtures(dir string) (map[string]*Fixture, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]*Fixture, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var fx Fixture
		if err := json.Unmarshal(b, &fx); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if fx.Program == nil {
			return nil, fmt.Errorf("%s: fixture has no program", p)
		}
		out[filepath.Base(p)] = &fx
	}
	return out, nil
}
