package search

import (
	"fmt"
	"math/rand"

	"phantom/internal/isa"
)

// The generator draws valid programs with a controlled mix of branch,
// load, store, serialization, timer and ALU statements. Everything is
// textual isa.Assemble syntax so a fixture is readable in review; the
// property test in internal/isa pins that the encoded form round-trips
// through the decoder byte-identically.
//
// Register discipline: generated statements only write the scratch
// pool below, never the harness pointers (RSI/R8 data, RDI trainer
// target, RSP stack base) — except push/pop, which move RSP by design
// and stay inside the mapped stack page for any statement count the
// generator emits.

// scratchRegs is the register pool generated statements operate on.
var scratchRegs = []int{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RBP, isa.R9, isa.R10, isa.R11}

// Mix holds the statement-class weights of the generator. The zero Mix
// is invalid; DefaultMix is what the search loop uses.
type Mix struct {
	Alu, Load, Store, Branch, Serial, Timer, Flush, Stack, Nop int
}

// DefaultMix weights the classes so that most programs contain memory
// traffic (the observable channels) and a meaningful minority contain
// branches, fences and timer reads.
var DefaultMix = Mix{Alu: 25, Load: 20, Store: 10, Branch: 10, Serial: 8, Timer: 5, Flush: 5, Stack: 7, Nop: 10}

func (m Mix) total() int {
	return m.Alu + m.Load + m.Store + m.Branch + m.Serial + m.Timer + m.Flush + m.Stack + m.Nop
}

// randStmt draws one statement. Branches may only target the shared
// "end" label (forward, so generated programs cannot loop).
func randStmt(rng *rand.Rand, mix Mix) string {
	reg := func() string { return isa.RegName(scratchRegs[rng.Intn(len(scratchRegs))]) }
	ptr := func() string {
		if rng.Intn(2) == 0 {
			return "rsi"
		}
		return "r8"
	}
	disp := func() int { return 8 * rng.Intn(64) }

	k := rng.Intn(mix.total())
	switch {
	case k < mix.Alu:
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("mov %s, %d", reg(), rng.Intn(1<<16))
		case 1:
			return fmt.Sprintf("mov %s, %s", reg(), reg())
		case 2:
			return fmt.Sprintf("add %s, %s", reg(), reg())
		case 3:
			return fmt.Sprintf("xor %s, %s", reg(), reg())
		case 4:
			return fmt.Sprintf("cmp %s, %d", reg(), rng.Intn(256))
		default:
			return fmt.Sprintf("shl %s, %d", reg(), 1+rng.Intn(6))
		}
	case k < mix.Alu+mix.Load:
		return fmt.Sprintf("mov %s, [%s+%d]", reg(), ptr(), disp())
	case k < mix.Alu+mix.Load+mix.Store:
		return fmt.Sprintf("mov [%s+%d], %s", ptr(), disp(), reg())
	case k < mix.Alu+mix.Load+mix.Store+mix.Branch:
		return []string{"jmp end", "jz end", "jnz end", "jb end", "jae end"}[rng.Intn(5)]
	case k < mix.Alu+mix.Load+mix.Store+mix.Branch+mix.Serial:
		if rng.Intn(2) == 0 {
			return "lfence"
		}
		return "mfence"
	case k < mix.Alu+mix.Load+mix.Store+mix.Branch+mix.Serial+mix.Timer:
		return "rdtsc"
	case k < mix.Alu+mix.Load+mix.Store+mix.Branch+mix.Serial+mix.Timer+mix.Flush:
		return fmt.Sprintf("clflush [%s+%d]", ptr(), disp())
	case k < mix.Alu+mix.Load+mix.Store+mix.Branch+mix.Serial+mix.Timer+mix.Flush+mix.Stack:
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("push %s", reg())
		}
		return fmt.Sprintf("pop %s", reg())
	default:
		return fmt.Sprintf("nop%d", 1+rng.Intn(5))
	}
}

// Generate draws the program for (arch, seed). It is a pure function
// of its arguments: the same pair always yields the same program, which
// is what lets the sweep partition the iteration space freely.
func Generate(arch string, seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	p := &Program{
		Arch:   arch,
		Seed:   seed,
		Train:  trainKinds[rng.Intn(len(trainKinds))],
		Rounds: 1 + rng.Intn(3),
	}
	nv := 1 + rng.Intn(7)
	for i := 0; i < nv; i++ {
		p.Victim = append(p.Victim, randStmt(rng, DefaultMix))
	}
	// Gadget blocks lean toward a leading load: the disclosure-gadget
	// shape (P2/P3) whose wrong-path D-cache fill is the leak signal.
	ng := 1 + rng.Intn(5)
	for i := 0; i < ng; i++ {
		if i == 0 && rng.Intn(2) == 0 {
			p.Gadget = append(p.Gadget, "mov rax, [r8+0]")
			continue
		}
		p.Gadget = append(p.Gadget, randStmt(rng, DefaultMix))
	}
	return p
}

// deriveSeed spreads one base seed over the iteration space with a
// splitmix64 step, so program seeds are decorrelated however the sweep
// batches iterations.
func deriveSeed(base int64, iter int) int64 {
	z := uint64(base) + uint64(iter+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
