package search

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestSearchDeterministicAcrossJobs pins the sweep-partition invariant:
// the same (arch, seed, budget) yields byte-identical findings — render
// and JSON — whatever the worker-pool size.
func TestSearchDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) *Result {
		t.Helper()
		r, err := Run(context.Background(), Options{Arch: "zen2", Seed: 1, Budget: 640, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return r
	}
	r1, r8 := run(1), run(8)

	var b1, b8 bytes.Buffer
	if err := r1.Render(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r8.Render(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Errorf("render differs between -jobs=1 and -jobs=8:\n--- jobs=1\n%s--- jobs=8\n%s", b1.String(), b8.String())
	}

	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(r8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Errorf("JSON differs between -jobs=1 and -jobs=8")
	}
}

// TestSearchFindsKnownAnomaly seeds the acceptance check: the Zen 2
// Table 1 divergence — a decoder-detectable misprediction that still
// dispatches wrong-path µops (Observation O3) — must fall out of a
// small random search as a deep-window finding, minimized and
// re-measured.
func TestSearchFindsKnownAnomaly(t *testing.T) {
	r, err := Run(context.Background(), Options{Arch: "zen2", Seed: 1, Budget: 400, Jobs: 0})
	if err != nil {
		t.Fatal(err)
	}
	var deep *Finding
	for i := range r.Findings {
		if r.Findings[i].Category == CatDeepWindow {
			deep = &r.Findings[i]
			break
		}
	}
	if deep == nil {
		t.Fatalf("no %s finding in %d findings (the Zen 2 phantom window executes µops; the search must surface it)",
			CatDeepWindow, len(r.Findings))
	}
	if deep.MaxUops < 1 {
		t.Errorf("deep-window finding with MaxUops=%d, want >=1", deep.MaxUops)
	}
	// The minimized reproducer must still reproduce standalone.
	if ok, err := reproduces(deep.Program, CatDeepWindow); err != nil || !ok {
		t.Errorf("minimized deep-window program does not reproduce (ok=%v err=%v)", ok, err)
	}
}

func TestSearchBadArch(t *testing.T) {
	if _, err := Run(context.Background(), Options{Arch: "z80", Budget: 1}); err == nil {
		t.Fatal("want error for unknown arch")
	}
}

func TestSearchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Arch: "zen2", Seed: 1, Budget: 320}); err == nil {
		t.Fatal("want error from pre-cancelled context")
	}
}

func TestRenderEmpty(t *testing.T) {
	r := &Result{Arch: "zen2", Seed: 7, Budget: 10}
	var b bytes.Buffer
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no findings") {
		t.Errorf("empty render missing 'no findings':\n%s", b.String())
	}
}

func TestResultCategories(t *testing.T) {
	r := &Result{Findings: []Finding{
		{Category: CatLeakChannel}, {Category: CatDeepWindow}, {Category: CatLeakChannel},
	}}
	got := r.Categories()
	if len(got) != 2 || got[0] != CatDeepWindow || got[1] != CatLeakChannel {
		t.Errorf("Categories() = %v, want [deep-window leak-channel]", got)
	}
}

func TestCategoryInvariant(t *testing.T) {
	for _, c := range categoryOrder {
		want := c == CatUncoveredChannel || c == CatWindowExceeded || c == CatArchDivergence
		if c.Invariant() != want {
			t.Errorf("%s.Invariant() = %v, want %v", c, c.Invariant(), want)
		}
	}
}
