package search

import "fmt"

// Minimize shrinks an anomalous program to a locally-minimal
// reproducer of one category: a delta-debugging pass over the victim
// and gadget statement lists (chunked removal, halving chunk sizes down
// to single statements) plus training-round reduction, iterated to a
// fixpoint. "Locally minimal" means removing any single remaining
// statement — or any training round — loses the finding.
//
// The criterion is coarse on purpose: the shrunk program must still
// classify into the same category with the same trainer class, not
// reproduce the original depth signature bit-for-bit. A minimizer that
// pinned the full signature would refuse to remove statements that
// merely pad the episode, which is exactly the noise minimization
// exists to strip.
func Minimize(p *Program, cat Category) (*Program, error) {
	ok, err := reproduces(p, cat)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("search: %s finding does not reproduce on its own program", cat)
	}

	cur := p.clone()
	for changed := true; changed; {
		changed = false

		if v, shrunk, err := ddList(cur, cat, true); err != nil {
			return nil, err
		} else if shrunk {
			cur, changed = v, true
		}
		if v, shrunk, err := ddList(cur, cat, false); err != nil {
			return nil, err
		} else if shrunk {
			cur, changed = v, true
		}
		for cur.Rounds > 1 {
			c := cur.clone()
			c.Rounds--
			ok, err := reproduces(c, cat)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			cur, changed = c, true
		}
	}
	return cur, nil
}

// ddList runs one delta-debugging sweep over the victim (victim=true)
// or gadget statement list, returning the shrunk program and whether
// anything was removed.
func ddList(p *Program, cat Category, victim bool) (*Program, bool, error) {
	cur := p.clone()
	shrunk := false
	list := func(q *Program) []string {
		if victim {
			return q.Victim
		}
		return q.Gadget
	}
	setList := func(q *Program, s []string) {
		if victim {
			q.Victim = s
		} else {
			q.Gadget = s
		}
	}

	for chunk := (len(list(cur)) + 1) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start+chunk <= len(list(cur)); {
			l := list(cur)
			cand := make([]string, 0, len(l)-chunk)
			cand = append(cand, l[:start]...)
			cand = append(cand, l[start+chunk:]...)
			c := cur.clone()
			setList(c, cand)
			ok, err := reproduces(c, cat)
			if err != nil {
				return nil, false, err
			}
			if ok {
				cur = c
				shrunk, removedAny = true, true
				// Do not advance: the next chunk slid into place.
				continue
			}
			start += chunk
		}
		if !removedAny {
			chunk /= 2
		} else if chunk > len(list(cur)) {
			chunk = len(list(cur))
		}
		if chunk < 1 {
			break
		}
	}
	return cur, shrunk, nil
}

// reproduces reports whether p still classifies into cat. A program
// that no longer assembles (possible when removal strands a branch
// without its label — not with the current single-label grammar, but
// the minimizer must not depend on that) counts as not reproducing.
func reproduces(p *Program, cat Category) (bool, error) {
	d, err := RunDiff(p)
	if err != nil {
		return false, nil //nolint:nilerr // unassemblable candidate = not a reproducer
	}
	for _, f := range Classify(p, d) {
		if f.Category == cat {
			return true, nil
		}
	}
	return false, nil
}

// clone deep-copies a program.
func (p *Program) clone() *Program {
	c := *p
	c.Victim = append([]string(nil), p.Victim...)
	c.Gadget = append([]string(nil), p.Gadget...)
	return &c
}
