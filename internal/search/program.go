// Package search is the automated attack-variant search: a
// seed-deterministic differential fuzzer over the speculation model.
//
// The loop follows the generate/run/diff/minimize shape of the
// TA-BP-Model random_search tooling, adapted to the Phantom setting:
// each generated program trains the BTB from one branch class and then
// runs an aliased victim block, once on the normal machine
// (mispredict-on) and once with pipeline.Machine.DisableSpeculation set
// (mispredict-off). Everything the two legs disagree on — architectural
// state, decoder-visible trace events, predictor replacement state — is
// by construction an effect of transient execution, and the classifier
// buckets it into Canella-style categories (classify.go). Anomalous
// programs shrink to locally-minimal reproducers (minimize.go) that
// land as byte-exact regression fixtures under testdata/search/.
//
// Determinism contract: every function here is a pure function of the
// program (and for Run, of Options.Seed and Options.Budget). No wall
// clock, no global rand, no map-order dependence — the package is in
// phantom-vet's determinism scope, and TestSearchDeterministicAcrossJobs
// pins byte-identical findings at any -jobs count.
package search

import (
	"fmt"
	"strings"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
	"phantom/internal/uarch"
)

// Train kinds, named as in the Table 1 harness (core.BranchKind).
const (
	TrainJmpInd    = "jmp*"
	TrainJmp       = "jmp"
	TrainJcc       = "jcc"
	TrainCallInd   = "call*"
	TrainRet       = "ret"
	TrainNonBranch = "non-branch"
)

// trainKinds lists every kind the generator draws from, in a fixed
// order (program seeds index into it).
var trainKinds = []string{TrainJmpInd, TrainJmp, TrainJcc, TrainCallInd, TrainRet, TrainNonBranch}

// Program is one generated differential test case. It is the entire
// input of a run: JSON-serialized into fixtures, replayed byte-exactly
// by TestSearchCorpusParity. Victim and Gadget hold textual assembly
// statements (isa.Assemble syntax); the harness appends the shared
// "end" label, a halt, and a trap fence to each block, so generated
// branches may target "end" and nothing else.
type Program struct {
	Arch   string   `json:"arch"`
	Seed   int64    `json:"seed"`  // generator seed (provenance; not re-drawn on replay)
	Train  string   `json:"train"` // trainer branch class at the aliased source
	Rounds int      `json:"rounds"`
	Victim []string `json:"victim"`
	Gadget []string `json:"gadget"`
}

// Layout of the differential lab, mirroring the Table 1 comboLab: the
// trainer branch at T, the victim block at T ^ SamePrivAliasMask (so
// the BTB serves the trainer's prediction for the victim's fetch), and
// the gadget block at the trainer's architectural target.
const (
	labTrainBase = uint64(0x5200000000) + 0x6a0
	labGadgetOff = uint64(0x40000) + 0x3a0
	labData      = uint64(0x5300000000)
	labStack     = uint64(0x5300100000)
	dataBytes    = 2 * mem.PageSize
	stackBytes   = mem.PageSize

	trainLimit  = 300
	victimLimit = 600
)

// lab is one assembled instance of a Program on one machine.
type lab struct {
	m      *pipeline.Machine
	prof   *uarch.Profile
	nextPA uint64

	trainVA  uint64
	victimVA uint64
	gadgetVA uint64

	dataPAs []uint64 // page-aligned PAs backing data+stack, for digesting
}

// blockSource renders a generated block: its statements, then the
// shared branch-target label, a halt, and an int3 fence so a decoder
// walking past the end stops.
func blockSource(stmts []string) string {
	var b strings.Builder
	for _, s := range stmts {
		b.WriteString(s)
		b.WriteString("\n")
	}
	b.WriteString("end: hlt\nint3\n")
	return b.String()
}

// buildLab assembles and maps the program on a fresh machine.
func buildLab(p *Program) (*lab, error) {
	prof, err := uarch.ByName(p.Arch)
	if err != nil {
		return nil, err
	}
	m := pipeline.New(prof, 1<<30, p.Seed)
	m.Noise.Level = 0
	mask, ok := btb.SamePrivAliasMask(m.BTB.Scheme())
	if !ok {
		return nil, fmt.Errorf("search: no same-privilege alias mask for %s", p.Arch)
	}
	l := &lab{
		m: m, prof: prof, nextPA: 0x1000000,
		trainVA:  labTrainBase,
		victimVA: labTrainBase ^ mask,
		gadgetVA: (labTrainBase &^ 0xfff) + labGadgetOff,
	}

	// Trainer snippet: one branch of the chosen class, aimed at the
	// gadget block.
	ta := isa.NewAssembler(l.trainVA)
	switch p.Train {
	case TrainJmpInd:
		ta.JmpReg(isa.RDI)
	case TrainJmp:
		ta.JmpTo(l.gadgetVA)
	case TrainJcc:
		ta.JccTo(isa.CondZ, l.gadgetVA)
	case TrainCallInd:
		ta.CallReg(isa.RDI)
	case TrainRet:
		ta.Ret()
	case TrainNonBranch:
		ta.NopSled(16)
		ta.Hlt()
	default:
		return nil, fmt.Errorf("search: unknown train kind %q", p.Train)
	}
	ta.Int3()
	if err := l.mapAsm(ta); err != nil {
		return nil, err
	}

	// Victim and gadget blocks from the generated statements.
	if err := l.mapSource(blockSource(p.Victim), l.victimVA); err != nil {
		return nil, fmt.Errorf("search: victim block: %w", err)
	}
	if err := l.mapSource(blockSource(p.Gadget), l.gadgetVA); err != nil {
		return nil, fmt.Errorf("search: gadget block: %w", err)
	}

	if err := l.mapData(labData, dataBytes); err != nil {
		return nil, err
	}
	if err := l.mapData(labStack, stackBytes); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *lab) allocPA(n uint64) uint64 {
	pa := l.nextPA
	l.nextPA += (n + mem.PageSize - 1) &^ (mem.PageSize - 1)
	return pa
}

func (l *lab) mapBlob(va uint64, blob []byte, perm mem.Perm) error {
	base := va &^ (mem.PageSize - 1)
	end := (va + uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if err := l.m.UserAS.Map(base, l.allocPA(end-base), end-base, perm); err != nil {
		return err
	}
	return l.m.UserAS.WriteBytes(va, blob)
}

func (l *lab) mapAsm(a *isa.Assembler) error {
	blob, err := a.Bytes()
	if err != nil {
		return err
	}
	return l.mapBlob(a.Base(), blob, mem.PermRead|mem.PermExec|mem.PermUser)
}

func (l *lab) mapSource(src string, va uint64) error {
	blob, _, err := isa.Assemble(src, va)
	if err != nil {
		return err
	}
	return l.mapBlob(va, blob, mem.PermRead|mem.PermExec|mem.PermUser)
}

func (l *lab) mapData(va, size uint64) error {
	pa := l.allocPA(size)
	if err := l.m.UserAS.Map(va, pa, size, mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
		return err
	}
	for off := uint64(0); off < size; off += mem.PageSize {
		l.dataPAs = append(l.dataPAs, pa+off)
	}
	return nil
}

// initRegs establishes the fixed register file both legs and every run
// start from: data pointers in RSI/R8, the trainer's indirect target in
// RDI, a live stack, everything else zero.
func (l *lab) initRegs() {
	m := l.m
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	m.Regs[isa.RSI] = labData
	m.Regs[isa.R8] = labData + mem.PageSize
	m.Regs[isa.RDI] = l.gadgetVA
	m.Regs[isa.RSP] = labStack + stackBytes/2
	m.ZF, m.CF = false, false
}

// trainOnce performs one training pass: run the trainer so its branch
// retires and installs a BTB entry (the machine self-trains, as in the
// Table 1 harness). Non-branch training is the absence of a branch.
func (l *lab) trainOnce(p *Program) error {
	if p.Train == TrainNonBranch {
		return nil
	}
	m := l.m
	l.initRegs()
	switch p.Train {
	case TrainJcc:
		m.ZF = true
	case TrainRet:
		m.Regs[isa.RSP] -= 8
		if err := m.UserAS.Write64(m.Regs[isa.RSP], l.gadgetVA); err != nil {
			return err
		}
	}
	// Any stop reason is acceptable: the trainer branch retires on its
	// first step; what the generated gadget does afterwards (halt,
	// fault, trap) is part of the program under test.
	m.RunAt(l.trainVA, trainLimit)
	return nil
}

// runVictim executes the victim block once and returns its RunResult.
func (l *lab) runVictim() pipeline.RunResult {
	l.initRegs()
	return l.m.RunAt(l.victimVA, victimLimit)
}
