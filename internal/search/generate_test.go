package search

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestGeneratePure pins that Generate is a pure function of
// (arch, seed) — the property that lets the sweep partition the
// iteration space freely.
func TestGeneratePure(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate("zen2", seed)
		b := Generate("zen2", seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenerateBuilds: every generated program must assemble and map —
// the generator's grammar is a subset of what isa.Assemble accepts, and
// a program that fails buildLab would abort a whole search batch.
func TestGenerateBuilds(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate("zen2", deriveSeed(3, int(seed)))
		if _, err := buildLab(p); err != nil {
			t.Fatalf("seed %d: program does not build: %v\nvictim: %q\ngadget: %q",
				p.Seed, err, p.Victim, p.Gadget)
		}
	}
}

// TestGenerateRunsClean: RunDiff must succeed on arbitrary generated
// programs — train, run, diff, no step-limit surprises.
func TestGenerateRunsClean(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := Generate("zen4", deriveSeed(11, int(seed)))
		if _, err := RunDiff(p); err != nil {
			t.Fatalf("seed %d: %v", p.Seed, err)
		}
	}
}

// TestGenerateTrainKinds: over enough seeds the generator must draw
// every trainer class — a missing class would silently shrink the
// search space.
func TestGenerateTrainKinds(t *testing.T) {
	seen := make(map[string]bool)
	for seed := int64(0); seed < 300; seed++ {
		seen[Generate("zen2", seed).Train] = true
	}
	for _, k := range trainKinds {
		if !seen[k] {
			t.Errorf("trainer class %q never drawn in 300 seeds", k)
		}
	}
}

// TestDeriveSeedSpreads: derived seeds must be distinct across a large
// iteration range (a collision would run the same program twice and
// cost budget).
func TestDeriveSeedSpreads(t *testing.T) {
	seen := make(map[int64]int)
	for it := 0; it < 100000; it++ {
		s := deriveSeed(1, it)
		if prev, dup := seen[s]; dup {
			t.Fatalf("deriveSeed(1, %d) == deriveSeed(1, %d) == %d", it, prev, s)
		}
		seen[s] = it
	}
}

// TestMixTotal guards the weight table against a zero-total edit, which
// would make randStmt panic on Intn(0).
func TestMixTotal(t *testing.T) {
	if DefaultMix.total() <= 0 {
		t.Fatalf("DefaultMix.total() = %d", DefaultMix.total())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if s := randStmt(rng, DefaultMix); s == "" {
			t.Fatal("randStmt returned empty statement")
		}
	}
}
