package search

import (
	"context"
	"fmt"
	"io"
	"sort"

	"phantom/internal/sweep"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// Options tunes one search run.
type Options struct {
	Arch   string
	Seed   int64
	Budget int // programs to generate and diff
	// Jobs is the sweep worker-pool size (0 = GOMAXPROCS, 1 =
	// sequential). Findings are byte-identical at any value.
	Jobs int
}

// Result is what one search run produces.
type Result struct {
	Arch      string    `json:"arch"`
	Seed      int64     `json:"seed"`
	Budget    int       `json:"budget"`
	Anomalous int       `json:"anomalous"` // programs with >= 1 finding
	Findings  []Finding `json:"findings"`  // deduped, minimized, discovery order
}

// batchSize is how many iterations one sweep job runs. The job space
// is partitioned statically and program seeds derive from the absolute
// iteration index, so the batch size affects scheduling only.
const batchSize = 32

// jobResult is one batch's contribution, merged in job-index order.
type jobResult struct {
	anomalous int
	hits      []Finding // in iteration order, pre-dedup
}

// Run executes the search loop: Budget generated programs, each
// differentially executed and classified, fanned over the sweep worker
// pool; then (sequentially, in discovery order) the first program of
// every distinct signature is delta-debugged to a locally-minimal
// reproducer.
//
// Determinism: program i is a pure function of (Seed, i), batches are
// merged in index order, and dedup keeps the first occurrence, so the
// finding set — and the rendered report — is byte-identical at any
// Jobs value. TestSearchDeterministicAcrossJobs pins this.
func Run(ctx context.Context, opts Options) (*Result, error) {
	telemetry.CountExperiment("search")
	if opts.Budget <= 0 {
		opts.Budget = 1000
	}
	if opts.Arch == "" {
		opts.Arch = "zen2"
	}
	// Fail on a bad arch name before spawning workers, with the plain
	// uarch error instead of an iteration-wrapped one.
	if _, err := uarch.ByName(opts.Arch); err != nil {
		return nil, err
	}

	batches := (opts.Budget + batchSize - 1) / batchSize
	sopts := sweep.Options{Jobs: opts.Jobs}
	if s := telemetry.Sweep("search", batches); s != nil {
		sopts.Observer = s
	}
	results, err := sweep.Run(ctx, batches, sopts, func(ctx context.Context, job int) (jobResult, error) {
		var jr jobResult
		lo := job * batchSize
		hi := lo + batchSize
		if hi > opts.Budget {
			hi = opts.Budget
		}
		for it := lo; it < hi; it++ {
			if err := ctx.Err(); err != nil {
				return jr, err
			}
			p := Generate(opts.Arch, deriveSeed(opts.Seed, it))
			d, err := RunDiff(p)
			if err != nil {
				return jr, fmt.Errorf("iteration %d (seed %d): %w", it, p.Seed, err)
			}
			fs := Classify(p, d)
			if len(fs) > 0 {
				jr.anomalous++
				jr.hits = append(jr.hits, fs...)
			}
		}
		return jr, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Arch: opts.Arch, Seed: opts.Seed, Budget: opts.Budget}
	seen := make(map[string]bool)
	var kept []Finding
	for _, jr := range results {
		res.Anomalous += jr.anomalous
		for _, f := range jr.hits {
			if k := f.Key(); !seen[k] {
				seen[k] = true
				kept = append(kept, f)
			}
		}
	}

	// Minimization runs sequentially over the deduped set, in discovery
	// order — it is the expensive tail, but the set is small (bounded by
	// distinct signatures, not by Budget). Minimization strips padding,
	// so raw signatures that differed only in padding collapse; findings
	// are deduped a second time on the minimized signature (which is
	// also the fixture filename, so it must be unique).
	minSeen := make(map[string]bool)
	for _, f := range kept {
		min, err := Minimize(f.Program, f.Category)
		if err != nil {
			return nil, fmt.Errorf("minimize %s: %w", f.Key(), err)
		}
		// Re-measure the minimized program so the pinned numbers match
		// what the fixture will replay.
		d, err := RunDiff(min)
		if err != nil {
			return nil, err
		}
		var mf *Finding
		for _, g := range Classify(min, d) {
			if g.Category == f.Category {
				g := g
				mf = &g
				break
			}
		}
		if mf == nil {
			return nil, fmt.Errorf("minimize %s: minimized program lost the finding", f.Key())
		}
		if k := mf.Key(); !minSeen[k] {
			minSeen[k] = true
			res.Findings = append(res.Findings, *mf)
		}
	}
	return res, nil
}

// Render writes the human-readable findings table. The output contains
// nothing scheduling-dependent (no worker count, no wall time), so it
// is byte-identical at any Jobs value.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "search — differential fuzzing of the speculation model\n")
	fmt.Fprintf(w, "arch=%s seed=%d budget=%d: %d anomalous programs, %d distinct findings\n\n",
		r.Arch, r.Seed, r.Budget, r.Anomalous, len(r.Findings))
	if len(r.Findings) == 0 {
		fmt.Fprintf(w, "no findings\n")
		return nil
	}
	fmt.Fprintf(w, "%-18s %-10s %3s %8s %5s %7s %6s %6s  %s\n",
		"CATEGORY", "TRAIN", "EP", "IF/ID/EX", "LOADS", "CYCLEΔ", "VICTIM", "GADGET", "FLAGS")
	for i := range r.Findings {
		f := &r.Findings[i]
		flags := ""
		if f.Category.Invariant() {
			flags += "!invariant"
		}
		fmt.Fprintf(w, "%-18s %-10s %3d %d/%d/%-4d %5d %7d %6d %6d  %s\n",
			f.Category, f.Train, f.Episodes,
			f.MaxFetch, f.MaxDecode, f.MaxUops,
			f.SpecLoads, f.CycleDelta,
			len(f.Program.Victim), len(f.Program.Gadget), flags)
	}
	return nil
}

// Categories returns the sorted distinct categories in the result
// (reporting convenience).
func (r *Result) Categories() []Category {
	set := make(map[Category]bool)
	for i := range r.Findings {
		set[r.Findings[i].Category] = true
	}
	out := make([]Category, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
