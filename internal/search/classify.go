package search

import (
	"fmt"

	"phantom/internal/uarch"
)

// Category buckets a divergence, following the systematization of
// transient-execution attacks (Canella et al.): what stage the
// transient path reached, what channel it left state in, and whether
// the divergence is an expected attack surface or a model-invariant
// violation.
type Category string

// Categories, in classification order (the order findings are emitted
// for one program).
const (
	// CatDeepWindow: a decoder-detectable misprediction dispatched
	// wrong-path µops to execute — speculation deeper than the decode
	// stage that detects the confusion. This is the paper's headline
	// Table 1 divergence (Observation O3, Zen 1/Zen 2).
	CatDeepWindow Category = "deep-window"
	// CatLeakChannel: a Phantom window issued a wrong-path load,
	// leaving a D-cache footprint a disclosure gadget can read (the
	// P2/P3 primitive).
	CatLeakChannel Category = "leak-channel"
	// CatUncoveredChannel: a wrong-path load on a profile whose
	// Phantom window dispatches zero µops — a leak through a channel
	// the model says is closed. Always a model bug.
	CatUncoveredChannel Category = "uncovered-channel"
	// CatWindowExceeded: an episode deeper than the profile's declared
	// windows. Always a model bug.
	CatWindowExceeded Category = "window-exceeded"
	// CatPredictorState: predictor replacement state diverged between
	// the legs — wrong-path BTB lookups refreshed entry recency, so
	// speculation that never retired still steers future evictions.
	CatPredictorState Category = "predictor-state"
	// CatTimingChannel: architectural state diverged through rdtsc —
	// transient cache fills changed a latency the program measured.
	CatTimingChannel Category = "timing-channel"
	// CatArchDivergence: architectural state diverged with no rdtsc in
	// the program. Speculation must never retire; always a model bug.
	CatArchDivergence Category = "arch-divergence"
)

// categoryOrder fixes the emission order of Classify.
var categoryOrder = []Category{
	CatDeepWindow, CatLeakChannel, CatUncoveredChannel, CatWindowExceeded,
	CatPredictorState, CatTimingChannel, CatArchDivergence,
}

// Invariant reports whether the category is a model-invariant
// violation (a simulator bug) rather than an expected attack surface.
func (c Category) Invariant() bool {
	switch c {
	case CatUncoveredChannel, CatWindowExceeded, CatArchDivergence:
		return true
	}
	return false
}

// Finding is one classified divergence: the signature fields that make
// up its dedup key, the pinned measurements, and the (possibly
// minimized) program that reproduces it.
type Finding struct {
	Category Category `json:"category"`
	Arch     string   `json:"arch"`
	Train    string   `json:"train"`

	// Signature of the mispredict-on victim run.
	Episodes  int `json:"episodes"`  // total speculation episodes
	MaxFetch  int `json:"maxFetch"`  // deepest wrong-path fetch, in lines
	MaxDecode int `json:"maxDecode"` // deepest wrong-path decode, in insts
	MaxUops   int `json:"maxUops"`   // deepest wrong-path execute, in µops
	SpecLoads int `json:"specLoads"` // wrong-path D-cache fills

	CycleDelta   int64 `json:"cycleDelta"`
	PredDiverged bool  `json:"predDiverged"`
	ArchDiverged bool  `json:"archDiverged"`

	Program *Program `json:"program"`
}

// Key is the dedup signature: two programs that reach the same depth
// through the same trainer class on the same profile are the same
// variant. The key deliberately excludes cycle counts and program
// text, so minimization cannot change it.
func (f *Finding) Key() string {
	return fmt.Sprintf("%s/%s/%s/e%d-f%d-d%d-u%d-l%d",
		f.Arch, f.Category, f.Train,
		f.Episodes, f.MaxFetch, f.MaxDecode, f.MaxUops, f.SpecLoads)
}

// Classify buckets the divergences of one differential run. It returns
// zero or more findings in categoryOrder; an empty slice means the
// program exposed nothing beyond ordinary, in-model behavior.
func Classify(p *Program, d *Diff) []Finding {
	prof := profileWindows(p.Arch)

	base := Finding{
		Arch: p.Arch, Train: p.Train,
		Episodes:     len(d.On.Episodes),
		CycleDelta:   d.CycleDelta,
		PredDiverged: d.PredDiverged,
		ArchDiverged: d.ArchDiverged,
		Program:      p,
	}
	var frontLoads, frontUops int
	exceeded := false
	for _, ep := range d.On.Episodes {
		if ep.FetchLines > base.MaxFetch {
			base.MaxFetch = ep.FetchLines
		}
		if ep.Decodes > base.MaxDecode {
			base.MaxDecode = ep.Decodes
		}
		if ep.Uops > base.MaxUops {
			base.MaxUops = ep.Uops
		}
		base.SpecLoads += ep.Loads
		if ep.Frontend {
			frontLoads += ep.Loads
			if ep.Uops > frontUops {
				frontUops = ep.Uops
			}
			if ep.FetchLines > prof.phantom.FetchLines ||
				ep.Decodes > prof.phantom.DecodeInsts ||
				ep.Uops > prof.phantom.ExecUops {
				exceeded = true
			}
		} else {
			if ep.FetchLines > prof.spectre.FetchLines ||
				ep.Decodes > prof.spectre.DecodeInsts ||
				ep.Uops > prof.spectre.ExecUops {
				exceeded = true
			}
		}
	}

	has := map[Category]bool{
		CatDeepWindow:       frontUops > 0,
		CatLeakChannel:      frontLoads > 0,
		CatUncoveredChannel: frontLoads > 0 && prof.phantom.ExecUops == 0,
		CatWindowExceeded:   exceeded,
		CatPredictorState:   d.PredDiverged,
		CatTimingChannel:    d.ArchDiverged && p.usesRdtsc(),
		CatArchDivergence:   d.ArchDiverged && !p.usesRdtsc(),
	}

	var out []Finding
	for _, cat := range categoryOrder {
		if !has[cat] {
			continue
		}
		f := base
		f.Category = cat
		out = append(out, f)
	}
	return out
}

// windows carries the profile's declared episode bounds.
type windows struct {
	phantom, spectre struct{ FetchLines, DecodeInsts, ExecUops int }
}

// profileWindows resolves the declared windows for an arch name. An
// unknown arch (impossible past buildLab) yields zero windows, which
// classifies everything as exceeded — loud, not silent.
func profileWindows(arch string) windows {
	var w windows
	p, err := uarch.ByName(arch)
	if err != nil {
		return w
	}
	w.phantom.FetchLines = p.PhantomWindow.FetchLines
	w.phantom.DecodeInsts = p.PhantomWindow.DecodeInsts
	w.phantom.ExecUops = p.PhantomWindow.ExecUops
	w.spectre.FetchLines = p.SpectreWindow.FetchLines
	w.spectre.DecodeInsts = p.SpectreWindow.DecodeInsts
	w.spectre.ExecUops = p.SpectreWindow.ExecUops
	return w
}
