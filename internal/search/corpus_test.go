package search

import (
	"flag"
	"sort"
	"testing"
)

// updateCorpus re-pins every fixture under testdata/search/ from a
// fresh replay:
//
//	go test ./internal/search -run TestSearchCorpusParity -update
//
// Use it after an intentional model change; review the diff — every
// drift it bakes in is a behavior change the PR must explain.
var updateCorpus = flag.Bool("update", false, "rewrite testdata/search fixtures from a fresh replay")

// corpusDir is the committed fixture corpus at the repo root.
const corpusDir = "../../testdata/search"

// TestSearchCorpusParity replays every minimized finding the search has
// ever landed and pins the classified divergence byte-exactly: same
// category, same depth signature, same per-leg cycle counts. Any drift
// is a speculation-model change that must be explained (and, if
// intended, re-pinned with -update).
func TestSearchCorpusParity(t *testing.T) {
	fixtures, err := LoadFixtures(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatalf("no fixtures under %s — the corpus must ship with at least the seeded Table 1 finding", corpusDir)
	}

	names := make([]string, 0, len(fixtures))
	for name := range fixtures {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		fx := fixtures[name]
		t.Run(name, func(t *testing.T) {
			got, d, err := fx.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if *updateCorpus {
				fx.Expect = *got
				if _, err := WriteFixture(corpusDir, fx); err != nil {
					t.Fatal(err)
				}
				// A renamed key leaves the old file behind; flag it
				// rather than deleting data from under the developer.
				if FixtureName(got.Key) != name {
					t.Errorf("key changed %s -> %s: remove the stale fixture %s",
						fx.Expect.Key, got.Key, name)
				}
				return
			}
			if *got != fx.Expect {
				t.Errorf("replay drifted from pinned expectation\npinned: %+v\ngot:    %+v\n(diff on=%+v off=%+v; use -update after verifying the change is intended)",
					fx.Expect, *got, d.On.Arch, d.Off.Arch)
			}
			// Fixtures are minimized before landing; a fixture that
			// stops being minimal after a model change is stale evidence.
			if ok, err := reproduces(fx.Program, fx.Expect.Category); err != nil || !ok {
				t.Errorf("fixture no longer reproduces its category standalone (ok=%v err=%v)", ok, err)
			}
		})
	}
}

// TestSearchCorpusFilenames pins the name↔key correspondence so a
// hand-edited fixture cannot drift from its filename.
func TestSearchCorpusFilenames(t *testing.T) {
	fixtures, err := LoadFixtures(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for name, fx := range fixtures {
		if want := FixtureName(fx.Expect.Key); want != name {
			t.Errorf("%s: filename does not match key %q (want %s)", name, fx.Expect.Key, want)
		}
	}
}
