package search

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestFixtureName(t *testing.T) {
	got := FixtureName("zen2/deep-window/jmp*/e1-f1-d1-u1-l0")
	want := "zen2-deep-window-jmp_star-e1-f1-d1-u1-l0.json"
	if got != want {
		t.Errorf("FixtureName = %q, want %q", got, want)
	}
	if filepath.Base(got) != got {
		t.Errorf("FixtureName %q is not a bare filename", got)
	}
}

// TestFixtureWriteLoadReplay exercises the full fixture lifecycle: a
// fresh finding lands on disk, loads back structurally identical, and
// replays to exactly the Expect it pinned.
func TestFixtureWriteLoadReplay(t *testing.T) {
	p := findOne(t, "zen2", CatLeakChannel)
	min, err := Minimize(p, CatLeakChannel)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDiff(min)
	if err != nil {
		t.Fatal(err)
	}
	var f *Finding
	for _, g := range Classify(min, d) {
		if g.Category == CatLeakChannel {
			g := g
			f = &g
			break
		}
	}
	if f == nil {
		t.Fatal("minimized program lost the leak-channel finding")
	}

	dir := t.TempDir()
	fx := NewFixture(f, d)
	path, err := WriteFixture(dir, fx)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("fixture written to %s, want under %s", path, dir)
	}

	loaded, err := LoadFixtures(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded[filepath.Base(path)]
	if !ok {
		t.Fatalf("LoadFixtures missed %s (have %v)", filepath.Base(path), len(loaded))
	}
	if !reflect.DeepEqual(got, fx) {
		t.Errorf("fixture did not round-trip:\nwrote %+v\nread  %+v", fx, got)
	}

	replayed, _, err := got.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if *replayed != got.Expect {
		t.Errorf("replay drifted:\npinned %+v\ngot    %+v", got.Expect, *replayed)
	}
}

func TestLoadFixturesMissingDir(t *testing.T) {
	got, err := LoadFixtures(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("missing dir loaded %d fixtures", len(got))
	}
}
