package pipeline

import (
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// specKind labels the origin of a speculation episode.
type specKind uint8

const (
	// specPhantom is decoder-detectable bad speculation (frontend
	// resteer): the short window.
	specPhantom specKind = iota
	// specBackend is execute-resolved bad speculation (backend resteer):
	// the classic Spectre window.
	specBackend
)

// speculate runs the wrong path starting at target until the window is
// exhausted or the path dies (fault, undecodable bytes, serializing
// instruction). Wrong-path work leaves real microarchitectural state:
// I-cache fills for every line fetched, µop-cache fills for every line
// decoded, and D-cache fills for every load dispatched — while
// architectural state is untouched. Loads forward their values to later
// wrong-path µops, which is what lets a disclosure gadget turn a
// transiently loaded secret into a cache-set address (P3, Section 6.1).
func (m *Machine) speculate(target uint64, win uarch.Window, kind specKind) {
	if m.DisableSpeculation {
		return
	}
	regs := m.Regs // transient copy; never written back
	zf, cf := m.ZF, m.CF
	pc := target
	fetchLines, decodes, uops := 0, 0, 0
	lastLine := ^uint64(0)
	lastULine := ^uint64(0)
	// A nested decoder-detectable misprediction inside the window clamps
	// the remaining execute budget to the Phantom allowance.
	execBudget := win.ExecUops

	for {
		// --- transient fetch ---
		line := pc &^ (lineSize - 1)
		if line != lastLine {
			if fetchLines >= win.FetchLines {
				return
			}
			pa, f := m.translateFetch(pc)
			if f != nil {
				// Unmapped or NX: the fetch dies and nothing fills — the
				// asymmetry P1/P2 are built on.
				return
			}
			m.Hier.AccessFetch(pa)
			m.Debug.TransientFetchLines++
			m.emit(EvSpecFetch, line, 0)
			fetchLines++
			lastLine = line
		}

		// --- transient decode ---
		if decodes >= win.DecodeInsts {
			return
		}
		in, f := m.decodeAt(pc)
		if f != nil {
			return
		}
		if in.Op == isa.OpInvalid || in.Op == isa.OpInt3 || in.Op == isa.OpHlt {
			return
		}
		if uline := pc &^ (lineSize - 1); uline != lastULine {
			if hit, _, _ := m.Uop.Access(pc); hit {
				m.Perf.UopCacheHits++
			} else {
				m.Perf.UopCacheMisses++
			}
			lastULine = uline
		}
		decodes++
		m.Debug.TransientDecodes++
		m.emit(EvSpecDecode, pc, 0)

		canExec := uops < execBudget

		// --- transient execute (bounded; may be zero-width) ---
		if canExec {
			uops++
			m.Debug.TransientUops++
			m.emit(EvSpecUop, pc, 0)
			switch in.Op {
			case isa.OpLoad:
				va := regs[in.Reg2] + uint64(int64(in.Disp))
				pa, _, ok := m.AS().TranslateV(va, mem.AccessRead, !m.Kernel)
				if ok {
					m.Hier.AccessData(pa)
					m.Debug.TransientLoads++
					m.emit(EvSpecLoad, va, 0)
					regs[in.Reg] = m.Phys.Read64(pa)
				}
				// A faulting transient load yields no architectural fault;
				// the modeled AMD parts are not Meltdown-style leaky, so
				// no value forwards either.
			case isa.OpStore:
				// Stores sit in the store buffer and never drain on the
				// wrong path; no cache footprint in this model.
			case isa.OpMovImm:
				regs[in.Reg] = uint64(in.Imm)
			case isa.OpMovReg:
				regs[in.Reg] = regs[in.Reg2]
			case isa.OpXorReg:
				regs[in.Reg] ^= regs[in.Reg2]
				zf = regs[in.Reg] == 0
			case isa.OpAddReg:
				regs[in.Reg] += regs[in.Reg2]
				zf = regs[in.Reg] == 0
			case isa.OpSubReg:
				old := regs[in.Reg]
				regs[in.Reg] -= regs[in.Reg2]
				zf = regs[in.Reg] == 0
				cf = old < regs[in.Reg2]
			case isa.OpCmpReg:
				zf = regs[in.Reg] == regs[in.Reg2]
				cf = regs[in.Reg] < regs[in.Reg2]
			case isa.OpAluImm:
				regs[in.Reg], zf, cf = aluImm(in.Alu, regs[in.Reg], uint64(in.Imm), zf, cf)
			case isa.OpShiftImm:
				if in.Alu == 4 {
					regs[in.Reg] <<= uint(in.Imm)
				} else {
					regs[in.Reg] >>= uint(in.Imm)
				}
				zf = regs[in.Reg] == 0
			case isa.OpPush:
				// Store-buffer only.
			case isa.OpPop:
				va := regs[isa.RSP]
				if pa, _, ok := m.AS().TranslateV(va, mem.AccessRead, !m.Kernel); ok {
					m.Hier.AccessData(pa)
					m.Debug.TransientLoads++
					m.emit(EvSpecLoad, va, 0)
					regs[in.Reg] = m.Phys.Read64(pa)
				}
				regs[isa.RSP] += 8
			case isa.OpLfence, isa.OpMfence:
				// Serializing: the wrong path cannot proceed past it, and
				// by the time it drains the resteer has arrived.
				return
			case isa.OpSyscall, isa.OpRdtsc, isa.OpClflush:
				// Privileged/serializing-ish operations do not execute
				// transiently in this model.
				return
			}
		}

		// --- next wrong-path PC ---
		next, alive := m.specNextPC(pc, in, regs, zf, cf, canExec, &execBudget, uops)
		if !alive {
			return
		}
		pc = next
	}
}

// specNextPC steers the wrong path across branches. The wrong-path
// frontend behaves like the real one: it consults the BTB (nested
// predictions — how the MDS exploit of Section 7.4 chains a Phantom
// window inside a Spectre window), follows direct targets at decode, asks
// the PHT for directions, and the RSB for returns.
func (m *Machine) specNextPC(pc uint64, in isa.Inst, regs [isa.NumRegs]uint64, zf, cf bool, canExec bool, execBudget *int, uops int) (uint64, bool) {
	fallthrough_ := pc + uint64(in.Len)

	pred, predHit := m.BTB.LookupBHB(pc, m.Kernel, m.BHB.Value())
	if predHit && m.MSR.AutoIBRS && pred.TrainedKernel != m.Kernel {
		predHit = false
	}
	actual := in.Class()

	if predHit && pred.Class != actual {
		if m.MSR.WaitForDecode {
			// The Section 8.1 mitigation also kills nested type
			// confusions: the wrong-path frontend validates too.
			return fallthrough_, true
		}
		// Nested decoder-detectable misprediction: the frontend steers to
		// the predicted target; the decoder will catch it, so only the
		// Phantom allowance of further µops may execute.
		if m.MSR.SuppressBPOnNonBr && actual == isa.BrNone {
			*execBudget = uops
		} else if left := uops + m.Prof.PhantomWindow.ExecUops; left < *execBudget {
			*execBudget = left
		}
		target, ok := m.predictedTarget(pred, pc)
		if !ok {
			return 0, false
		}
		if pred.Class == isa.BrJcc && !m.PHT.Predict(pc, m.BHB.Value()) {
			return fallthrough_, true
		}
		return target, true
	}

	switch actual {
	case isa.BrNone:
		return fallthrough_, true
	case isa.BrJmp, isa.BrCall:
		return in.Target(pc), true
	case isa.BrJcc:
		// Direction: flags if this branch executed transiently, else the
		// direction predictor.
		var taken bool
		if canExec {
			taken = evalCondFlags(in.Cond, zf, cf)
		} else {
			taken = m.PHT.Predict(pc, m.BHB.Value())
		}
		if taken {
			return in.Target(pc), true
		}
		return fallthrough_, true
	case isa.BrJmpInd, isa.BrCallInd:
		if predHit {
			return pred.Target, true
		}
		if canExec {
			return regs[in.Reg], true
		}
		return 0, false // frontend stalls: no target available
	case isa.BrRet:
		if t, ok := m.RSB.Peek(); ok {
			return t, true
		}
		if m.Prof.StraightLineSpec {
			return fallthrough_, true
		}
		return 0, false
	}
	return 0, false
}

// aluImm applies an OpAluImm operation, returning the new value and flags.
func aluImm(op isa.AluOp, v, imm uint64, zf, cf bool) (uint64, bool, bool) {
	switch op {
	case isa.AluAdd:
		r := v + imm
		return r, r == 0, r < v
	case isa.AluOr:
		r := v | imm
		return r, r == 0, false
	case isa.AluAnd:
		r := v & imm
		return r, r == 0, false
	case isa.AluSub:
		r := v - imm
		return r, r == 0, v < imm
	case isa.AluCmp:
		r := v - imm
		return v, r == 0, v < imm
	}
	return v, zf, cf
}

// evalCondFlags evaluates a condition code against explicit flags.
func evalCondFlags(c isa.Cond, zf, cf bool) bool {
	switch c {
	case isa.CondZ:
		return zf
	case isa.CondNZ:
		return !zf
	case isa.CondB:
		return cf
	case isa.CondAE:
		return !cf
	}
	return false
}
