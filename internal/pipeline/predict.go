package pipeline

import (
	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// reconcilePrediction compares the BTB's pre-decode prediction with the
// instruction the decoder actually finds at va and, on disagreement, runs
// the wrong path for the appropriate window:
//
//   - class mismatch or direct-target mismatch → decoder-detectable →
//     PHANTOM: frontend-issued resteer after the short Phantom window;
//   - same-class execute-dependent mispredictions (wrong indirect target,
//     wrong jcc direction, wrong return target) → backend-issued resteer
//     after the long Spectre window.
func (m *Machine) reconcilePrediction(va uint64, in isa.Inst, pred btb.Prediction) {
	actual := in.Class()

	if pred.Class == actual {
		m.reconcileSameClass(va, in, pred)
		return
	}

	// PHANTOM: the trainer's class disagrees with the decoded victim.
	// The decoder discovers the mismatch; until then the predicted path
	// advances through the frontend.
	if m.MSR.WaitForDecode {
		// Hypothetical Section 8.1 mitigation: the prediction was never
		// consumed before the decoder validated the branch type, so the
		// type confusion produces no speculation at any stage.
		return
	}
	target, ok := m.predictedTarget(pred, va)
	if !ok {
		return // e.g. ret-class prediction with an empty RSB
	}
	if pred.Class == isa.BrJcc && !m.PHT.Predict(va, m.BHB.Value()) {
		// Trained as a conditional that the direction predictor currently
		// says is not taken: the frontend keeps fetching sequentially, so
		// the phantom target is never steered to.
		return
	}

	win := m.Prof.PhantomWindow
	// SuppressBPOnNonBr (Section 6.3): when the victim decodes as a
	// non-branch, the mitigation stops wrong-path dispatch to execute —
	// but not the fetch and decode that already happened (Observation O4).
	if m.MSR.SuppressBPOnNonBr && actual == isa.BrNone {
		win.ExecUops = 0
	}
	// Intel jmp*-victim anomaly (Section 6).
	if actual == isa.BrJmpInd || actual == isa.BrCallInd {
		switch m.Prof.IndirectVictim {
		case uarch.IndirectVictimNone:
			m.resteer(true)
			return
		case uarch.IndirectVictimFetchOnly:
			win.DecodeInsts = 0
			win.ExecUops = 0
		}
	}

	m.speculate(target, win, specPhantom)
	m.resteer(true)
}

// reconcileSameClass handles a prediction whose class matches the decoded
// instruction.
func (m *Machine) reconcileSameClass(va uint64, in isa.Inst, pred btb.Prediction) {
	switch in.Class() {
	case isa.BrJmp, isa.BrCall:
		// Direct target known at decode: a displacement mismatch (trained
		// by a jmp with a different displacement — still Phantom per
		// Section 5.2) is decoder-detectable.
		if in.Target(va) != pred.Target {
			if m.MSR.WaitForDecode {
				return // steering validated against the decoded target
			}
			m.speculate(pred.Target, m.Prof.PhantomWindow, specPhantom)
			m.resteer(true)
		}
	case isa.BrJcc:
		actualTarget := in.Target(va)
		if actualTarget != pred.Target {
			if m.MSR.WaitForDecode {
				return
			}
			if m.PHT.Predict(va, m.BHB.Value()) {
				m.speculate(pred.Target, m.Prof.PhantomWindow, specPhantom)
				m.resteer(true)
			}
			return
		}
		// Same target: only the direction can mispredict, and direction
		// resolves at execute (classic Spectre-PHT window).
		predTaken := m.PHT.Predict(va, m.BHB.Value())
		actualTaken := m.evalCond(in.Cond)
		if predTaken != actualTaken {
			wrong := va + uint64(in.Len)
			if predTaken {
				wrong = actualTarget
			}
			m.speculate(wrong, m.Prof.SpectreWindow, specBackend)
			m.resteer(false)
		}
	case isa.BrJmpInd, isa.BrCallInd:
		// Indirect target resolves at execute.
		if m.Regs[in.Reg] != pred.Target {
			m.speculate(pred.Target, m.Prof.SpectreWindow, specBackend)
			m.resteer(false)
		}
	case isa.BrRet:
		predTarget, ok := m.RSB.Peek()
		if !ok {
			return
		}
		actualTarget, err := m.AS().Read64(m.Regs[isa.RSP])
		if err != nil {
			return // architectural execution will take the fault
		}
		if predTarget != actualTarget {
			m.speculate(predTarget, m.Prof.SpectreWindow, specBackend)
			m.resteer(false)
		}
	}
}

// handleUnpredicted covers fetch addresses with no usable BTB prediction:
// the frontend assumes straight-line code until the decoder (direct
// branches) or the execute stage (everything else) says otherwise.
func (m *Machine) handleUnpredicted(va uint64, in isa.Inst) {
	switch in.Class() {
	case isa.BrNone:
		return
	case isa.BrJmp, isa.BrCall:
		// Target computed at decode; the decoupled fetcher has already
		// fetched the fall-through line (a harmless one-line transient
		// fetch) before the decode-time redirect.
		m.transientFetchLine(va + uint64(in.Len))
		m.Cycle += 2
	case isa.BrJcc:
		// The decoder sees the branch and consults the direction
		// predictor; a wrong direction resolves at execute.
		predTaken := m.PHT.Predict(va, m.BHB.Value())
		actualTaken := m.evalCond(in.Cond)
		if predTaken != actualTaken {
			wrong := va + uint64(in.Len)
			if predTaken {
				wrong = in.Target(va)
			}
			m.speculate(wrong, m.Prof.SpectreWindow, specBackend)
			m.resteer(false)
		}
	case isa.BrRet:
		if predTarget, ok := m.RSB.Peek(); ok {
			actualTarget, err := m.AS().Read64(m.Regs[isa.RSP])
			if err == nil && predTarget != actualTarget {
				m.speculate(predTarget, m.Prof.SpectreWindow, specBackend)
				m.resteer(false)
			}
			return
		}
		if m.Prof.StraightLineSpec {
			// No return prediction available: AMD parts speculate past
			// the return into the sequential bytes (Spectre-SLS, Table 1
			// footnote c). Resolution happens at execute.
			m.speculate(va+uint64(in.Len), m.Prof.SpectreWindow, specBackend)
			m.resteer(false)
		} else {
			m.Cycle += uint64(m.Prof.ExecResteerLatency)
		}
	case isa.BrJmpInd, isa.BrCallInd:
		// No predicted target: the frontend stalls until execute produces
		// one. (Retpolines rely on exactly this.)
		m.Cycle += uint64(m.Prof.ExecResteerLatency)
	}
}

// predictedTarget resolves where a prediction steers the frontend.
func (m *Machine) predictedTarget(pred btb.Prediction, va uint64) (uint64, bool) {
	if pred.Class == isa.BrRet {
		// Return predictions are served by the RSB: "the return target
		// will not be to C, but to the most recent call site"
		// (Section 5.2).
		return m.RSB.Peek()
	}
	return pred.Target, true
}

// resteer charges the pipeline-redirect penalty. frontend=true is a
// decoder-issued (Phantom) resteer; false is a backend (execute) one.
func (m *Machine) resteer(frontend bool) {
	if frontend {
		m.Cycle += uint64(m.Prof.DecodeResteerLatency)
		m.Debug.FrontendResteers++
		m.emit(EvResteerFrontend, m.RIP, 0)
	} else {
		m.Cycle += uint64(m.Prof.ExecResteerLatency)
		m.Debug.BackendResteers++
		m.emit(EvResteerBackend, m.RIP, 0)
	}
	m.Perf.MispredictsResteered++
	// The redirect refills the fetch pipeline.
	m.lastFetchLine = ^uint64(0)
	m.lastUopLine = ^uint64(0)
}

// transientFetchLine models a single wrong-path line fetch (fall-through
// prefetch by the decoupled fetcher).
func (m *Machine) transientFetchLine(va uint64) {
	if m.DisableSpeculation {
		return
	}
	if pa, _, ok := m.AS().TranslateV(va, mem.AccessFetch, !m.Kernel); ok {
		m.Hier.AccessFetch(pa)
		m.Debug.TransientFetchLines++
	}
}

// evalCond evaluates a condition code against current flags.
func (m *Machine) evalCond(c isa.Cond) bool {
	switch c {
	case isa.CondZ:
		return m.ZF
	case isa.CondNZ:
		return !m.ZF
	case isa.CondB:
		return m.CF
	case isa.CondAE:
		return !m.CF
	}
	return false
}
