package pipeline

import (
	"encoding/binary"
	"testing"

	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// Self-modifying-code regression tests for the predecode cache: once a
// line has been executed (and therefore predecoded), a store over its
// bytes must evict the stale decodes before the line is fetched again.

// targetBlob assembles `mov rax, imm; hlt` at base, padded with nops to
// 16 bytes so the two patching qword stores cover it exactly.
func targetBlob(t *testing.T, base, imm uint64) []byte {
	t.Helper()
	a := isa.NewAssembler(base)
	a.MovImm(isa.RAX, imm)
	a.Hlt()
	b := a.MustBytes()
	if len(b) > 16 {
		t.Fatalf("target blob is %d bytes", len(b))
	}
	for len(b) < 16 {
		b = append(b, 0x90)
	}
	return b
}

func TestSelfModifyingCodeViaStore(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	const targetVA = 0x500000

	// The target page is mapped RWX so its own process can patch it.
	v1 := targetBlob(t, targetVA, 1)
	installBlob(t, m, targetVA, v1, mem.PermRead|mem.PermWrite|mem.PermExec|mem.PermUser)

	// Execute version 1 a few times so its decodes are cached hot.
	for i := 0; i < 3; i++ {
		if res := m.RunAt(targetVA, 100); res.Reason != StopHalt {
			t.Fatalf("v1 run %d: %v", i, res)
		}
		if m.Regs[isa.RAX] != 1 {
			t.Fatalf("v1 rax = %d", m.Regs[isa.RAX])
		}
	}
	if m.Debug.PredecodeHits == 0 {
		t.Fatal("predecode cache never hit while re-running v1")
	}

	// The writer patches the target with version 2 using ordinary stores —
	// the same retiring OpStore path any simulated program uses.
	v2 := targetBlob(t, targetVA, 2)
	w := isa.NewAssembler(0x400000)
	w.MovImm(isa.RSI, targetVA)
	w.MovImm(isa.RAX, binary.LittleEndian.Uint64(v2[0:8]))
	w.Store(isa.RSI, 0, isa.RAX)
	w.MovImm(isa.RAX, binary.LittleEndian.Uint64(v2[8:16]))
	w.Store(isa.RSI, 8, isa.RAX)
	w.Hlt()
	installCode(t, m, w)
	if res := m.RunAt(0x400000, 100); res.Reason != StopHalt {
		t.Fatalf("writer: %v", res)
	}

	// Re-execute: the stale decode of v1 must not survive.
	if res := m.RunAt(targetVA, 100); res.Reason != StopHalt {
		t.Fatalf("v2 run: %v", res)
	}
	if m.Regs[isa.RAX] != 2 {
		t.Fatalf("after patch rax = %d, want 2 (stale predecode served)", m.Regs[isa.RAX])
	}
}

func TestSelfModifyingCodeViaHarnessWrite(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	const targetVA = 0x500000

	v1 := targetBlob(t, targetVA, 7)
	installBlob(t, m, targetVA, v1, mem.PermRead|mem.PermWrite|mem.PermExec|mem.PermUser)
	if res := m.RunAt(targetVA, 100); res.Reason != StopHalt || m.Regs[isa.RAX] != 7 {
		t.Fatalf("v1: %v rax=%d", res, m.Regs[isa.RAX])
	}

	// Harnesses rewrite training pages through AddrSpace.WriteBytes; that
	// path must invalidate cached decodes exactly like a simulated store.
	v2 := targetBlob(t, targetVA, 9)
	if err := m.UserAS.WriteBytes(targetVA, v2); err != nil {
		t.Fatal(err)
	}
	if res := m.RunAt(targetVA, 100); res.Reason != StopHalt {
		t.Fatalf("v2: %v", res)
	}
	if m.Regs[isa.RAX] != 9 {
		t.Fatalf("after rewrite rax = %d, want 9", m.Regs[isa.RAX])
	}
}
