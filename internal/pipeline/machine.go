// Package pipeline implements the simulated machine: a decoupled
// frontend/backend x86-like pipeline with branch prediction before
// instruction decode, per Figure 2 of the paper.
//
// # Execution model
//
// The machine interprets the architectural instruction stream one
// instruction at a time, charging cycles for fetch (I-TLB, I-cache
// hierarchy), decode (µop cache), execution (D-TLB, D-cache hierarchy)
// and branch resteers. At every instruction fetch the BTB is consulted
// *before* the bytes are decoded. When the prediction disagrees with what
// the decoder or the execute stage later establishes, the machine runs a
// bounded wrong-path "speculation episode" that leaves real footprints in
// the I-cache, µop cache and D-cache — the footprints Phantom measures —
// and then resteers.
//
// Two windows bound an episode (uarch.Profile): the Phantom window for
// decoder-detectable mispredictions (frontend-issued resteer) and the much
// longer Spectre window for execute-resolved ones (backend-issued
// resteer). On Zen 1/2 the Phantom window dispatches a handful of µops —
// enough for exactly the single memory load the paper's P2/P3 primitives
// need; on Zen 3/4 and Intel wrong-path µops of decoder-detectable
// mispredictions never dispatch.
package pipeline

import (
	"fmt"
	"math/rand"

	"phantom/internal/btb"
	"phantom/internal/cache"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// lineSize is the cache line size shared by all modeled caches.
const lineSize = 64

// Machine is one simulated logical CPU plus its memory system.
type Machine struct {
	Prof *uarch.Profile
	MSR  uarch.MSRState

	Phys *mem.PhysMem
	// UserAS is the address space active in user mode. KernelAS is the
	// one active in kernel mode; without KPTI both point to the same
	// AddrSpace.
	UserAS   *mem.AddrSpace
	KernelAS *mem.AddrSpace

	Hier *cache.Hierarchy
	Uop  *cache.Cache
	ITLB *mem.TLB
	DTLB *mem.TLB

	BTB *btb.BTB
	RSB *btb.RSB
	PHT *btb.PHT
	BHB *btb.BHB

	// Architectural state.
	Regs   [isa.NumRegs]uint64
	ZF, CF bool
	RIP    uint64
	Kernel bool

	// Cycle is the global clock, visible to simulated code via rdtsc.
	Cycle uint64

	Perf  PerfCounters
	Debug DebugCounters

	// SyscallEntry is the kernel entry point used when user code executes
	// syscall. Zero means syscall faults (no kernel installed).
	SyscallEntry uint64
	// KPTI selects kernel page-table isolation: user mode then runs on
	// UserAS with no kernel text mapped except the entry trampoline.
	KPTI bool

	// Noise injects stochastic cache perturbation, modeling the system
	// call thrash and sibling-thread interference of Section 7.3.
	Noise *NoiseSource

	// Tracer, when non-nil, receives pipeline events (see trace.go).
	Tracer Tracer

	// DisablePredecode routes instruction fetch+decode through the
	// original byte-at-a-time path instead of the predecode cache. The
	// cache is an interpreter optimization that charges no cycles, so
	// both modes must render byte-identical experiment output; parity
	// tests flip this knob to prove it (see predecode.go).
	DisablePredecode bool

	// DisableSpeculation suppresses every wrong-path effect: speculation
	// episodes, the decoupled fetcher's fall-through prefetch, and the
	// I-cache fill of a rejected prediction's target. Predictor training,
	// architectural execution, and resteer penalties are untouched, so a
	// run with the flag set is the "mispredict-off" reference leg of a
	// differential pair (internal/search): any divergence against a run
	// with the flag clear is, by construction, an effect of transient
	// execution.
	DisableSpeculation bool

	rng *rand.Rand

	// pre caches decoded instructions per physical code line; fmemo
	// memoizes the last instruction-page translation (predecode.go).
	pre   predecodeCache
	fmemo fetchMemo

	// tstat/tshard/tlast batch harness-side interpreter tallies into
	// the process telemetry hub at Run boundaries (telemetry.go). All
	// nil/zero when telemetry is disabled.
	tstat  *telemetry.PipelineStats
	tshard int
	tlast  telemetryBaseline

	// stopScratch backs the *RunResult returned by step/exec/fault so
	// the interpreter's stop path doesn't heap-allocate. Run copies the
	// value out before the next step can overwrite it. faultScratch
	// likewise backs the *mem.Fault those results carry: training
	// primitives fault by design on every probe, so the fault path is as
	// hot as the success path. Both are overwritten by the next step —
	// harnesses consume results before resuming the machine.
	stopScratch  RunResult
	faultScratch mem.Fault

	// syscallRet holds the user RIP+2 saved by syscall; kernel-mode
	// syscall acts as sysret back to it.
	syscallRet uint64

	// lastFetchLine/lastUopLine dedupe per-line charges within the
	// sequential stream; lastUopLineMissed remembers whether the current
	// line came from the decoder rather than the µop cache.
	lastFetchLine     uint64
	lastUopLine       uint64
	lastUopLineMissed bool
}

// New returns a machine with the given profile, physical memory size and
// RNG seed. The address spaces start empty; callers (the kernel package or
// tests) install mappings and code.
func New(p *uarch.Profile, physBytes uint64, seed int64) *Machine {
	rng := rand.New(rand.NewSource(seed))
	phys := mem.NewPhysMem(physBytes)
	as := mem.NewAddrSpace(phys)
	m := &Machine{
		Prof:     p,
		Phys:     phys,
		UserAS:   as,
		KernelAS: as,
		Hier: &cache.Hierarchy{
			L1I:        cache.New(p.L1I, rng),
			L1D:        cache.New(p.L1D, rng),
			L2:         cache.New(p.L2, rng),
			MemLatency: p.MemLatency,
		},
		Uop:  cache.New(p.UopCache, rng),
		ITLB: mem.NewTLB(64, 8),
		DTLB: mem.NewTLB(64, 8),
		BTB:  btb.New(p.NewScheme(), p.BTBWays),
		RSB:  btb.NewRSB(p.RSBDepth),
		PHT:  btb.NewPHT(p.PHTBits),
		BHB:  &btb.BHB{},
		rng:  rng,
	}
	m.Noise = NewNoiseSource(m, rng)
	m.lastFetchLine = ^uint64(0)
	m.lastUopLine = ^uint64(0)
	m.pre = newPredecodeCache()
	m.attachTelemetry()
	return m
}

// AS returns the active address space for the current privilege mode.
func (m *Machine) AS() *mem.AddrSpace {
	if m.Kernel {
		return m.KernelAS
	}
	return m.UserAS
}

// RNG exposes the machine's deterministic random source for harness use.
func (m *Machine) RNG() *rand.Rand { return m.rng }

// tlbLatency charges a page-walk penalty on TLB miss.
const tlbMissPenalty = 20

// xlate translates va through the active address space without heap-
// allocating on fault: the fault value lands in faultScratch and the
// returned pointer aliases it until the next faulting translation.
func (m *Machine) xlate(va uint64, kind mem.AccessKind) (uint64, *mem.Fault) {
	pa, fv, ok := m.AS().TranslateV(va, kind, !m.Kernel)
	if !ok {
		m.faultScratch = fv
		return 0, &m.faultScratch
	}
	return pa, nil
}

// fetchLatency translates va for execution and charges I-TLB + I-cache
// hierarchy timing for its line. It returns the physical address.
func (m *Machine) fetchLatency(va uint64) (uint64, *mem.Fault) {
	pa, f := m.xlate(va, mem.AccessFetch)
	if f != nil {
		return 0, f
	}
	if !m.ITLB.Lookup(va) {
		m.Cycle += tlbMissPenalty
	}
	m.Cycle += uint64(m.Hier.AccessFetch(pa))
	return pa, nil
}

// dataAccess translates va for a load/store and charges D-TLB + D-cache
// timing. kind is AccessRead or AccessWrite.
func (m *Machine) dataAccess(va uint64, kind mem.AccessKind) (uint64, *mem.Fault) {
	pa, f := m.xlate(va, kind)
	if f != nil {
		return 0, f
	}
	if !m.DTLB.Lookup(va) {
		m.Cycle += tlbMissPenalty
	}
	m.Cycle += uint64(m.Hier.AccessData(pa))
	return pa, nil
}

// fetchBytes reads up to n instruction bytes at va for the decoder, via
// the active translation, without charging timing (timing is charged
// line-granularly by the caller). This is the slow path, shared by the
// architectural and wrong-path walkers: decodeAt uses it whenever the
// decode window may cross a page boundary — the one case where truncating
// at an unmapped neighbor page matters — and for all fetches when the
// predecode cache is disabled.
func (m *Machine) fetchBytes(va uint64, n int) ([]byte, *mem.Fault) {
	buf := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		pa, f := m.xlate(va+uint64(i), mem.AccessFetch)
		if f != nil {
			if i == 0 {
				return nil, f
			}
			break // instruction may still decode from fewer bytes
		}
		buf = append(buf, m.Phys.Read8(pa))
	}
	return buf, nil
}

// --- Harness-side probing helpers -------------------------------------
//
// These give attack orchestration code (the Go side of an experiment) the
// same observation power an attacker process has: timing its own fetches
// and loads, and flushing its own lines. They go through the same TLB,
// cache and clock paths as simulated code, just without the interpreter
// overhead of running a probe loop instruction by instruction.

// TimedFetch performs a user-mode instruction fetch of va and returns its
// latency in cycles (the Prime+Probe / Evict+Time primitive on the
// I-cache). Unmapped or non-executable targets return ok=false.
func (m *Machine) TimedFetch(va uint64) (int, bool) {
	m.countTimedProbe()
	pa, f := m.AS().Translate(va, mem.AccessFetch, !m.Kernel)
	if f != nil {
		return 0, false
	}
	lat := 0
	if !m.ITLB.Lookup(va) {
		lat += tlbMissPenalty
	}
	lat += m.Hier.AccessFetch(pa)
	m.Cycle += uint64(lat)
	return lat, true
}

// TimedLoad performs a user-mode data load of va and returns its latency
// in cycles (Prime+Probe / Flush+Reload on the data side).
func (m *Machine) TimedLoad(va uint64) (int, bool) {
	m.countTimedProbe()
	pa, f := m.AS().Translate(va, mem.AccessRead, !m.Kernel)
	if f != nil {
		return 0, false
	}
	lat := 0
	if !m.DTLB.Lookup(va) {
		lat += tlbMissPenalty
	}
	lat += m.Hier.AccessData(pa)
	m.Cycle += uint64(lat)
	return lat, true
}

// FlushVA removes the line containing va from all cache levels (clflush
// from the harness). It requires a user-accessible mapping, like the real
// instruction.
func (m *Machine) FlushVA(va uint64) bool {
	pa, f := m.AS().Translate(va, mem.AccessRead, !m.Kernel)
	if f != nil {
		return false
	}
	m.Hier.FlushLine(pa)
	m.Cycle += 40
	return true
}

// WriteMSRSuppressBPOnNonBr sets the SuppressBPOnNonBr bit (MSR
// 0xC00110E3). It reports whether the part supports it (not on Zen 1,
// Section 8.1).
func (m *Machine) WriteMSRSuppressBPOnNonBr(on bool) bool {
	if !m.Prof.SupportsSuppressBPOnNonBr {
		return false
	}
	m.MSR.SuppressBPOnNonBr = on
	return true
}

// WriteMSRAutoIBRS enables or disables AutoIBRS; supported on Zen 4 only.
func (m *Machine) WriteMSRAutoIBRS(on bool) bool {
	if !m.Prof.SupportsAutoIBRS {
		return false
	}
	m.MSR.AutoIBRS = on
	return true
}

// IBPB flushes all branch predictor state (the strong interpretation of
// Section 8.2 in which IBPB removes all prediction types).
func (m *Machine) IBPB() {
	m.BTB.FlushAll()
	m.RSB.Clear()
	m.BHB.Clear()
}

// ResetPerf zeroes the attacker-visible counters.
func (m *Machine) ResetPerf() { m.Perf = PerfCounters{} }

func (m *Machine) String() string {
	return fmt.Sprintf("machine(%s, rip=%#x, kernel=%v, cycle=%d)",
		m.Prof, m.RIP, m.Kernel, m.Cycle)
}
