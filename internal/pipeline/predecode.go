package pipeline

// The predecode cache: a per-physical-line cache of decoded isa.Inst
// values. The interpreter re-executes the same few code lines millions of
// times while training predictors, and before this cache every simulated
// instruction — architectural and wrong-path — paid 16 per-byte address
// translations, a fresh 16-byte buffer and a full isa.Decode. Steady-state
// execution now does one page-translation memo probe plus one map lookup.
//
// Correctness rests on two invalidation mechanisms, neither of which can
// perturb modeled timings (no cycles are charged anywhere in this file):
//
//   - Byte staleness: frames holding predecoded bytes are registered with
//     mem.PhysMem (MarkCodeFrame). Every byte-changing physical write into
//     a registered frame — a simulated store retiring in exec.go, a harness
//     WriteBytes rewriting a training page, kernel data pokes — advances
//     that frame's code generation, and every cached line snapshots the
//     generation it was filled under. A stale snapshot empties the line on
//     next probe. Generations are per frame: rewriting one training page
//     does not evict decodes cached for unrelated code.
//   - Mapping staleness: entries are keyed by *physical* address and the
//     fetch path re-translates the instruction's page through a memo that
//     snapshots the AddrSpace mapping epoch, the address-space identity
//     and the privilege mode. mem.AddrSpace bumps its epoch on every
//     Map/MapHuge/Unmap/SetPerm/AddLinearRange, and KPTI switches swap
//     the AddrSpace pointer itself, so a VA that changes meaning can
//     never reach a stale line.
//
// The Machine.DisablePredecode escape hatch routes fetch+decode through
// the original byte-at-a-time path; sweep_determinism_test.go pins that
// both modes render byte-identical experiment output.

import (
	"phantom/internal/isa"
	"phantom/internal/mem"
)

// decodeWindow is how many bytes the decoder may examine per instruction.
// Instructions whose window would cross a page boundary take the slow
// cross-page path and are never cached, so one generation snapshot (the
// window's single frame) covers every byte a cached decode depended on.
const decodeWindow = 16

// lineShift is log2(lineSize).
const lineShift = 6

// predecodeLine caches the decodes that start inside one 64-byte physical
// line. gen is the frame's code generation the decodes were filled under.
type predecodeLine struct {
	gen     uint64
	decoded uint64 // bitmask over intra-line start offsets
	insts   [lineSize]isa.Inst
}

// predecodeCache maps physical line number (PA >> lineShift) to its
// decoded instructions. One cache serves both the architectural step path
// and the speculative wrong-path walker: wrong-path decode of the same
// bytes yields the same Inst, and the cache models the *simulator's* work,
// not a microarchitectural structure, so sharing is free and safe.
type predecodeCache struct {
	lines map[uint64]*predecodeLine
	// arena carves predecodeLine values from chunk allocations: KASLR
	// sweeps decode training code at a fresh physical line per probe
	// slot, and a per-line allocation showed up in experiment profiles.
	arena []predecodeLine
}

// predecodeArenaLines is how many lines one arena chunk backs.
const predecodeArenaLines = 4

func newPredecodeCache() predecodeCache {
	return predecodeCache{lines: make(map[uint64]*predecodeLine)}
}

func (c *predecodeCache) newLine() *predecodeLine {
	if len(c.arena) == 0 {
		c.arena = make([]predecodeLine, predecodeArenaLines)
	}
	pl := &c.arena[0]
	c.arena = c.arena[1:]
	return pl
}

// lookup returns the cached decode starting at pa, if still valid.
func (c *predecodeCache) lookup(pm *mem.PhysMem, pa uint64) (isa.Inst, bool) {
	pl := c.lines[pa>>lineShift]
	if pl == nil {
		return isa.Inst{}, false
	}
	if g := pm.CodeGen(pa); pl.gen != g {
		// A write changed bytes in this frame since the line was filled;
		// drop its decodes and refill lazily.
		pl.decoded = 0
		pl.gen = g
		return isa.Inst{}, false
	}
	off := pa & (lineSize - 1)
	if pl.decoded&(1<<off) == 0 {
		return isa.Inst{}, false
	}
	return pl.insts[off], true
}

// insert caches the decode starting at pa and registers its frame for
// write tracking.
func (c *predecodeCache) insert(pm *mem.PhysMem, pa uint64, in isa.Inst) {
	gen := pm.MarkCodeFrame(pa)
	key := pa >> lineShift
	pl := c.lines[key]
	if pl == nil {
		pl = c.newLine()
		pl.gen = gen
		c.lines[key] = pl
	} else if pl.gen != gen {
		pl.decoded = 0
		pl.gen = gen
	}
	off := pa & (lineSize - 1)
	pl.insts[off] = in
	pl.decoded |= 1 << off
}

// fetchMemo is a one-entry memo of the last successful instruction-page
// translation. All of its inputs are part of the key, so it is a pure
// cache over AddrSpace.Translate: the address-space pointer covers KPTI
// CR3 switches, the epoch covers Map/Unmap/SetPerm mutations, and the
// privilege flag covers user/kernel permission differences.
type fetchMemo struct {
	as    *mem.AddrSpace
	epoch uint64
	page  uint64 // VA of the page base
	base  uint64 // PA of the page base
	user  bool
	ok    bool
}

// translateFetch translates va for execution, memoizing the page
// translation. It is behavior-identical to AS().Translate(va, AccessFetch,
// !Kernel) — Translate is a pure function of the mapping state captured in
// the memo key — and charges nothing.
func (m *Machine) translateFetch(va uint64) (uint64, *mem.Fault) {
	as := m.AS()
	user := !m.Kernel
	if m.DisablePredecode {
		return m.xlate(va, mem.AccessFetch)
	}
	page := va &^ (mem.PageSize - 1)
	fm := &m.fmemo
	if fm.ok && fm.page == page && fm.as == as && fm.user == user && fm.epoch == as.Epoch() {
		return fm.base + (va - page), nil
	}
	pa, f := m.xlate(va, mem.AccessFetch)
	if f != nil {
		return 0, f
	}
	*fm = fetchMemo{as: as, epoch: as.Epoch(), page: page, base: pa - (va - page), user: user, ok: true}
	return pa, nil
}

// decodeAt returns the decoded instruction at va. Fast path: one memoized
// page translation, one predecode-cache probe, and on miss a decode
// straight out of the backing frame (mem.PhysMem.Window) with no copy and
// no allocation. Instructions whose 16-byte decode window straddles a page
// boundary — where the old path could legitimately truncate at an unmapped
// or non-executable neighbor page — always take the byte-at-a-time slow
// path, as does everything when DisablePredecode is set.
//
// decodeAt charges no cycles and touches no modeled structure; callers
// charge line-granular I-cache/µop timing exactly as they always did.
func (m *Machine) decodeAt(va uint64) (isa.Inst, *mem.Fault) {
	if m.DisablePredecode || va&(mem.PageSize-1) > mem.PageSize-decodeWindow {
		bytes, f := m.fetchBytes(va, decodeWindow)
		if f != nil {
			return isa.Inst{}, f
		}
		return isa.Decode(bytes), nil
	}
	pa, f := m.translateFetch(va)
	if f != nil {
		return isa.Inst{}, f
	}
	if in, ok := m.pre.lookup(m.Phys, pa); ok {
		m.Debug.PredecodeHits++
		return in, nil
	}
	// The whole window sits inside va's page (checked above), and page
	// frames are window-aligned, so Window cannot fail and every byte
	// shares the one translation — exactly what the slow path would have
	// produced byte by byte.
	win, _ := m.Phys.Window(pa, decodeWindow)
	in := isa.Decode(win)
	m.pre.insert(m.Phys, pa, in)
	m.Debug.PredecodeMisses++
	return in, nil
}
