package pipeline

import (
	"math/rand"
	"testing"

	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// Robustness: the machine must never panic and the clock must stay
// monotonic, no matter what bytes it executes — random soup, random valid
// programs, or random predictor state. Speculative fetch of garbage is
// Phantom's daily business, so the interpreter has to shrug at anything.

func TestRandomByteSoupNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf00d))
	for trial := 0; trial < 60; trial++ {
		profiles := uarch.All()
		m := New(profiles[trial%len(profiles)], 1<<30, int64(trial))
		m.Noise.Level = 0.5

		blob := make([]byte, 4096)
		rng.Read(blob)
		if err := m.UserAS.Map(0x400000, 0x10000, mem.PageSize,
			mem.PermRead|mem.PermWrite|mem.PermExec|mem.PermUser); err != nil {
			t.Fatal(err)
		}
		m.Phys.WriteBytes(0x10000, blob)

		for r := range m.Regs {
			m.Regs[r] = rng.Uint64()
		}
		m.Regs[isa.RSP] = 0x400800

		before := m.Cycle
		res := m.RunAt(0x400000+uint64(rng.Intn(4096-64)), 500)
		if m.Cycle < before {
			t.Fatalf("clock went backwards (trial %d)", trial)
		}
		_ = res // any stop reason is acceptable; not stopping is too (limit)
	}
}

func TestRandomValidProgramsExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbeef))
	for trial := 0; trial < 40; trial++ {
		m := New(uarch.Zen2(), 1<<30, int64(trial))
		m.Noise.Level = 0

		a := isa.NewAssembler(0x400000)
		a.MovImm(isa.RSP, 0x600000+0x800)
		a.MovImm(isa.RSI, 0x600000)
		n := 10 + rng.Intn(40)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0:
				a.AluImm(isa.AluAdd, rng.Intn(4), int32(rng.Uint32()&0xffff))
			case 1:
				a.Xor(rng.Intn(4), rng.Intn(4))
			case 2:
				a.Shl(rng.Intn(4), uint8(rng.Intn(8)))
			case 3:
				a.Load(rng.Intn(4), isa.RSI, int32(rng.Intn(64)*8))
			case 4:
				a.Store(isa.RSI, int32(rng.Intn(64)*8), rng.Intn(4))
			case 5:
				a.Nop(1 + rng.Intn(5))
			case 6:
				a.Push(rng.Intn(4))
				a.Pop(rng.Intn(4))
			case 7:
				a.CmpReg(rng.Intn(4), rng.Intn(4))
			case 8:
				a.Lfence()
			case 9:
				a.Rdtsc()
			}
		}
		a.Hlt()

		blob, err := a.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(0x400000)
		end := (base + uint64(len(blob)) + mem.PageSize) &^ (mem.PageSize - 1)
		if err := m.UserAS.Map(base, 0x20000, end-base, mem.PermRead|mem.PermExec|mem.PermUser); err != nil {
			t.Fatal(err)
		}
		if err := m.UserAS.WriteBytes(base, blob); err != nil {
			t.Fatal(err)
		}
		if err := m.UserAS.Map(0x600000, 0x80000, mem.PageSize,
			mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
			t.Fatal(err)
		}

		res := m.RunAt(base, 10000)
		if res.Reason != StopHalt {
			t.Fatalf("trial %d: random valid program did not halt: %v", trial, res)
		}
	}
}

func TestRandomPredictorPoisoningIsHarmless(t *testing.T) {
	// Plant garbage BTB entries everywhere, then run a correct program:
	// architectural results must be unaffected (speculation never leaks
	// into architecture).
	rng := rand.New(rand.NewSource(0xc0de))
	m := New(uarch.Zen1(), 1<<30, 3)
	m.Noise.Level = 0

	a := isa.NewAssembler(0x400000)
	a.MovImm(isa.RSP, 0x600000+0x800)
	a.MovImm(isa.RAX, 0)
	a.MovImm(isa.RCX, 20)
	a.Label("loop")
	a.AluImm(isa.AluAdd, isa.RAX, 7)
	a.Call("fn")
	a.AluImm(isa.AluSub, isa.RCX, 1)
	a.AluImm(isa.AluCmp, isa.RCX, 0)
	a.Jcc(isa.CondNZ, "loop")
	a.Hlt()
	a.Label("fn")
	a.AluImm(isa.AluAdd, isa.RAX, 1)
	a.Ret()
	blob := a.MustBytes()
	if err := m.UserAS.Map(0x400000, 0x30000, 2*mem.PageSize,
		mem.PermRead|mem.PermExec|mem.PermUser); err != nil {
		t.Fatal(err)
	}
	if err := m.UserAS.WriteBytes(0x400000, blob); err != nil {
		t.Fatal(err)
	}
	if err := m.UserAS.Map(0x600000, 0x40000, mem.PageSize,
		mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
		t.Fatal(err)
	}

	// Poison: random class/target entries across the program's pages.
	classes := []isa.BranchClass{isa.BrJmp, isa.BrJmpInd, isa.BrJcc, isa.BrCall, isa.BrRet}
	for i := 0; i < 2000; i++ {
		va := 0x400000 + uint64(rng.Intn(2*4096))
		m.BTB.Update(va, false, classes[rng.Intn(len(classes))], 0x400000+uint64(rng.Intn(4096)))
	}

	res := m.RunAt(0x400000, 50000)
	if res.Reason != StopHalt {
		t.Fatalf("poisoned run: %v", res)
	}
	if m.Regs[isa.RAX] != 20*8 {
		t.Fatalf("architectural result corrupted by predictor poison: rax=%d", m.Regs[isa.RAX])
	}
}
