package pipeline

import "fmt"

// EventKind classifies a pipeline trace event.
type EventKind uint8

// Trace event kinds. Events flagged Spec are wrong-path (transient)
// activity; everything else is architectural.
const (
	EvFetchLine       EventKind = iota // a new I-cache line entered the fetch stream (VA = line)
	EvPredHit                          // BTB produced a prediction at VA (Aux = predicted target)
	EvPredRejected                     // a mitigation refused the prediction (Aux = target)
	EvResteerFrontend                  // decoder-detected misprediction at VA (Phantom)
	EvResteerBackend                   // execute-detected misprediction at VA (Spectre)
	EvSpecFetch                        // wrong-path line fetch (VA = line)
	EvSpecDecode                       // wrong-path instruction decoded at VA
	EvSpecUop                          // wrong-path µop dispatched at VA
	EvSpecLoad                         // wrong-path load issued (VA = load address)
	EvBranch                           // architectural taken branch at VA (Aux = target)
	EvSyscall                          // privilege transition (Aux: 1 = enter, 0 = exit)
	EvFault                            // architectural fault at VA
)

var eventNames = [...]string{
	"fetch-line", "pred-hit", "pred-rejected",
	"resteer-frontend", "resteer-backend",
	"spec-fetch", "spec-decode", "spec-uop", "spec-load",
	"branch", "syscall", "fault",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	Cycle uint64
	Kind  EventKind
	VA    uint64
	Aux   uint64
}

func (e Event) String() string {
	switch e.Kind {
	case EvPredHit, EvPredRejected, EvBranch:
		return fmt.Sprintf("[%8d] %-16s %#012x -> %#012x", e.Cycle, e.Kind, e.VA, e.Aux)
	case EvSyscall:
		dir := "exit"
		if e.Aux == 1 {
			dir = "enter"
		}
		return fmt.Sprintf("[%8d] %-16s %s", e.Cycle, e.Kind, dir)
	default:
		return fmt.Sprintf("[%8d] %-16s %#012x", e.Cycle, e.Kind, e.VA)
	}
}

// Tracer receives pipeline events. Implementations must be cheap: Emit is
// called from the interpreter's hot path (only when a tracer is attached).
type Tracer interface {
	Emit(Event)
}

// RingTracer keeps the most recent events in a fixed ring.
type RingTracer struct {
	buf   []Event
	next  int
	count int
}

// NewRingTracer returns a tracer retaining the last n events.
func NewRingTracer(n int) *RingTracer {
	return &RingTracer{buf: make([]Event, n)}
}

// Emit records an event.
func (r *RingTracer) Emit(e Event) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Events returns the retained events in chronological order.
func (r *RingTracer) Events() []Event {
	out := make([]Event, 0, r.count)
	start := (r.next - r.count + len(r.buf)) % len(r.buf)
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Reset drops all retained events.
func (r *RingTracer) Reset() {
	r.next, r.count = 0, 0
}

// FilterEvents returns the subset of events matching any of the kinds.
func FilterEvents(events []Event, kinds ...EventKind) []Event {
	want := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// emit is the guarded fast path used by the machine.
func (m *Machine) emit(kind EventKind, va, aux uint64) {
	if m.Tracer != nil {
		m.Tracer.Emit(Event{Cycle: m.Cycle, Kind: kind, VA: va, Aux: aux})
	}
}
