package pipeline

import "fmt"

// PerfCounters are the events an unprivileged attacker can legitimately
// sample on the modeled parts, mirroring the hardware events the paper
// uses: µop-cache hit/miss (de_dis_uops_from_decoder.opcache_dispatched on
// Zen 2, op_cache_hit_miss.op_cache_hit on Zen 3/4, idq.dsb_cycles on
// Intel), retired instructions/cycles, and branch-misprediction counts.
// Attack code may read these; per the paper (Section 5.1), misprediction
// counts alone cannot reveal how far a wrong path advanced.
type PerfCounters struct {
	Instructions uint64
	Cycles       uint64

	UopCacheHits   uint64
	UopCacheMisses uint64

	BTBLookups uint64
	BTBHits    uint64

	// MispredictsResteered counts resteers of any origin, like the
	// generic "bad speculation" events. It does not distinguish stages.
	MispredictsResteered uint64
}

// Delta returns c - base field-wise.
func (c PerfCounters) Delta(base PerfCounters) PerfCounters {
	return PerfCounters{
		Instructions:         c.Instructions - base.Instructions,
		Cycles:               c.Cycles - base.Cycles,
		UopCacheHits:         c.UopCacheHits - base.UopCacheHits,
		UopCacheMisses:       c.UopCacheMisses - base.UopCacheMisses,
		BTBLookups:           c.BTBLookups - base.BTBLookups,
		BTBHits:              c.BTBHits - base.BTBHits,
		MispredictsResteered: c.MispredictsResteered - base.MispredictsResteered,
	}
}

func (c PerfCounters) String() string {
	return fmt.Sprintf("inst=%d cyc=%d opc_hit=%d opc_miss=%d btb=%d/%d resteer=%d",
		c.Instructions, c.Cycles, c.UopCacheHits, c.UopCacheMisses,
		c.BTBHits, c.BTBLookups, c.MispredictsResteered)
}

// DebugCounters are simulator ground truth that no real attacker could
// read. They exist for tests and for validating that the observation
// channels (which only look at caches and PerfCounters) reconstruct the
// truth. Experiment code must not consult them to produce results.
type DebugCounters struct {
	FrontendResteers uint64 // decoder-detected mispredictions (Phantom)
	BackendResteers  uint64 // execute-detected mispredictions (Spectre)

	TransientFetchLines uint64 // wrong-path I-cache line fills
	TransientDecodes    uint64 // wrong-path instructions decoded
	TransientUops       uint64 // wrong-path µops dispatched
	TransientLoads      uint64 // wrong-path loads issued to the D-cache

	// PrefetchOnRejectedPrediction counts I-cache fills performed for
	// predictions that a mitigation (AutoIBRS) refused to steer by — the
	// residual leak of Observation O5.
	PrefetchOnRejectedPrediction uint64

	Faults   uint64
	Syscalls uint64

	// PredecodeHits/Misses count probes of the interpreter's predecode
	// cache (predecode.go). Pure simulator bookkeeping: the cache charges
	// no cycles and models no hardware structure, so these never feed an
	// observation channel — they exist to assert the fast path actually
	// engages (and is invalidated) in tests and benchmarks.
	PredecodeHits   uint64
	PredecodeMisses uint64
}
