package pipeline

import "math/rand"

// NoiseSource injects the microarchitectural interference that makes the
// paper's attacks statistical rather than single-shot: system calls
// thrashing cache sets before the attacker can probe them, instruction
// prefetching polluting the I-cache, and (optionally) a sibling SMT
// thread's working set. Magnitudes are per-profile-tunable through the
// Level field; the §7.3 scoring machinery exists precisely to survive this
// noise, and tests exercise it at several levels.
type NoiseSource struct {
	m   *Machine
	rng *rand.Rand

	// Level scales event probabilities; 0 disables noise, 1 is the
	// default calibration.
	Level float64

	// SiblingStress models `stress -c N` on the SMT sibling: when > 0,
	// every Tick additionally evicts that many random L1I lines
	// (Section 6.4 uses sibling stress to *improve* the fetch channel by
	// slowing the victim; here it raises baseline probe latencies, which
	// has the same thresholding benefit).
	SiblingStress int
}

// NewNoiseSource returns a source at Level 1.
func NewNoiseSource(m *Machine, rng *rand.Rand) *NoiseSource {
	return &NoiseSource{m: m, rng: rng, Level: 1}
}

// SyscallThrash perturbs cache state the way a kernel entry/exit path
// does: a few I-cache and D-cache sets get touched by lines the attacker
// does not control.
func (n *NoiseSource) SyscallThrash() {
	if n.Level <= 0 {
		return
	}
	// Each syscall touches a handful of random lines; high physical
	// addresses avoid colliding with simulated program data by accident
	// (they model unrelated kernel working set).
	const noiseBase = 1 << 44
	touches := int(3 * n.Level)
	for i := 0; i < touches; i++ {
		pa := noiseBase + uint64(n.rng.Intn(1<<20))*lineSize
		if n.rng.Intn(2) == 0 {
			n.m.Hier.L1I.Access(pa)
		} else {
			n.m.Hier.L1D.Access(pa)
		}
		if n.rng.Float64() < 0.25*n.Level {
			n.m.Hier.L2.Access(pa)
		}
	}
}

// Tick runs ambient noise: occasional random evictions modeling other
// processes, the OS tick, and prefetchers.
func (n *NoiseSource) Tick() {
	if n.Level <= 0 {
		return
	}
	const noiseBase = 1 << 45
	if n.rng.Float64() < 0.05*n.Level {
		pa := noiseBase + uint64(n.rng.Intn(1<<18))*lineSize
		n.m.Hier.L2.Access(pa)
	}
	// Sibling stress: the SMT partner's instruction working set leaks
	// into the shared L1I at a rate proportional to its load — a few
	// lines per hundred victim instructions at `stress -c 10`.
	if n.SiblingStress > 0 && n.rng.Float64() < 0.003*float64(n.SiblingStress) {
		pa := noiseBase + uint64(n.rng.Intn(1<<18))*lineSize
		n.m.Hier.L1I.Access(pa)
	}
}
