package pipeline

import (
	"fmt"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// StopReason says why Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopHalt  StopReason = iota // hlt retired
	StopFault                   // page fault (RIP points at the faulting instruction)
	StopTrap                    // int3 or undecodable instruction
	StopLimit                   // instruction budget exhausted
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopFault:
		return "fault"
	case StopTrap:
		return "trap"
	case StopLimit:
		return "limit"
	}
	return "stop?"
}

// RunResult reports how a Run ended.
type RunResult struct {
	Reason StopReason
	Fault  *mem.Fault // set when Reason == StopFault
	Steps  int        // architectural instructions retired
}

func (r RunResult) String() string {
	if r.Fault != nil {
		return fmt.Sprintf("%v after %d steps (%v)", r.Reason, r.Steps, r.Fault)
	}
	return fmt.Sprintf("%v after %d steps", r.Reason, r.Steps)
}

// Run interprets architectural instructions starting at RIP until a halt,
// trap, fault, or the step limit. On fault, RIP still points at the
// faulting instruction so a harness "signal handler" can redirect and
// resume — the mechanism user-mode training code uses when it branches
// into the kernel and catches the page fault (Section 6.2).
func (m *Machine) Run(limit int) RunResult {
	for steps := 0; steps < limit; steps++ {
		if stop := m.step(); stop != nil {
			stop.Steps = steps + 1
			r := *stop
			m.flushTelemetry()
			return r
		}
		m.Noise.Tick()
	}
	m.flushTelemetry()
	return RunResult{Reason: StopLimit, Steps: limit}
}

// RunAt sets RIP and runs.
func (m *Machine) RunAt(entry uint64, limit int) RunResult {
	m.RIP = entry
	return m.Run(limit)
}

// step executes one architectural instruction; nil means continue.
func (m *Machine) step() *RunResult {
	va := m.RIP

	// 1. Branch prediction unit: consulted with the fetch address, before
	// the bytes at va are decoded (paper Section 1, "speculation before
	// instruction decode"). The training instruction's class decides the
	// prediction semantics.
	pred, predHit := m.BTB.LookupBHB(va, m.Kernel, m.BHB.Value())
	predUsable := predHit
	if predHit {
		m.emit(EvPredHit, va, pred.Target)
	}
	if predHit && m.MSR.AutoIBRS && pred.TrainedKernel != m.Kernel {
		// AutoIBRS refuses to steer by a cross-privilege prediction, but
		// the fetch of the predicted target has already been initiated —
		// Observation O5: "AMD AutoIBRS does not prevent IF of cross
		// privilege mode branch targets."
		m.emit(EvPredRejected, va, pred.Target)
		m.prefetchPredictedTarget(pred, va)
		predUsable = false
	}

	// 2. Instruction fetch, charged per cache line.
	if line := va &^ (lineSize - 1); line != m.lastFetchLine {
		if _, f := m.fetchLatency(va); f != nil {
			return m.fault(f)
		}
		m.lastFetchLine = line
		m.emit(EvFetchLine, line, 0)
	}
	in, f := m.decodeAt(va)
	if f != nil {
		return m.fault(f)
	}
	if in.Op == isa.OpInvalid {
		m.Debug.Faults++
		return m.stop(RunResult{Reason: StopTrap})
	}
	if end := (va + uint64(in.Len) - 1) &^ (lineSize - 1); end != m.lastFetchLine {
		if _, f := m.fetchLatency(va + uint64(in.Len) - 1); f != nil {
			return m.fault(f)
		}
		m.lastFetchLine = end
	}

	// 3. Decode / µop cache, per line.
	if uline := va &^ (lineSize - 1); uline != m.lastUopLine {
		if hit, _, _ := m.Uop.Access(va); hit {
			m.Perf.UopCacheHits++
			m.lastUopLineMissed = false
		} else {
			m.Perf.UopCacheMisses++
			m.lastUopLineMissed = true
		}
		m.lastUopLine = uline
	}
	m.Cycle++
	m.Perf.Instructions++
	m.Perf.BTBLookups++
	if predHit {
		m.Perf.BTBHits++
		if m.MSR.WaitForDecode {
			// The hypothetical Section 8.1 mitigation: every predicted
			// steer waits for the source's decode, costing a bubble even
			// on correct predictions.
			m.Cycle += uarch.WaitForDecodeBubble
		}
		if m.MSR.SuppressBPOnNonBr && m.lastUopLineMissed {
			// With the mitigation the frontend must wait for pre-decode
			// branch-presence marker bits before consuming a prediction.
			// The markers live alongside the decoded µops, so only lines
			// that miss the µop cache pay the wait — the source of the
			// sub-1% benchmark overhead measured in Section 6.3.
			m.Cycle += 2
		}
	}

	// 4. Reconcile prediction with the decoded instruction. Mispredictions
	// spawn a bounded wrong-path episode and charge a resteer.
	if predUsable {
		m.reconcilePrediction(va, in, pred)
	} else {
		m.handleUnpredicted(va, in)
	}

	// 5. Execute architecturally.
	m.Perf.Cycles = m.Cycle
	return m.exec(va, in)
}

func (m *Machine) fault(f *mem.Fault) *RunResult {
	m.Debug.Faults++
	m.emit(EvFault, f.VA, 0)
	return m.stop(RunResult{Reason: StopFault, Fault: f})
}

// stop parks r in the machine-owned scratch slot and returns its address,
// so the per-instruction stop path never heap-allocates. Run copies the
// value out immediately; callers must not hold the pointer across steps.
func (m *Machine) stop(r RunResult) *RunResult {
	m.stopScratch = r
	return &m.stopScratch
}

// prefetchPredictedTarget fills the I-cache line of a prediction whose use
// was rejected by a mitigation. Only present+executable targets fill, as
// with any instruction fetch.
func (m *Machine) prefetchPredictedTarget(pred btb.Prediction, va uint64) {
	if m.DisableSpeculation {
		return
	}
	target := pred.Target
	if pred.Class == isa.BrRet {
		t, ok := m.RSB.Peek()
		if !ok {
			return
		}
		target = t
	}
	if pa, _, ok := m.AS().TranslateV(target, mem.AccessFetch, !m.Kernel); ok {
		m.Hier.AccessFetch(pa)
		m.Debug.PrefetchOnRejectedPrediction++
	}
}
