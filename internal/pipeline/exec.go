package pipeline

import (
	"phantom/internal/isa"
	"phantom/internal/mem"
)

// Syscall transition costs in cycles (entry includes swapgs/stack switch;
// KPTI adds a CR3 write and TLB effect).
const (
	syscallEntryCost = 90
	syscallExitCost  = 70
	kptiExtraCost    = 40
)

// exec retires one architectural instruction, updating registers, memory,
// and — critically — the predictors: every executed branch trains the BTB
// with its *class* and target, which is the state Phantom attacks inject
// from user mode.
func (m *Machine) exec(va uint64, in isa.Inst) *RunResult {
	next := va + uint64(in.Len)

	switch in.Op {
	case isa.OpNop:
		// nothing
	case isa.OpMovImm:
		m.Regs[in.Reg] = uint64(in.Imm)
	case isa.OpMovReg:
		m.Regs[in.Reg] = m.Regs[in.Reg2]
	case isa.OpXorReg:
		m.Regs[in.Reg] ^= m.Regs[in.Reg2]
		m.ZF = m.Regs[in.Reg] == 0
		m.CF = false
	case isa.OpAddReg:
		old := m.Regs[in.Reg]
		m.Regs[in.Reg] += m.Regs[in.Reg2]
		m.ZF = m.Regs[in.Reg] == 0
		m.CF = m.Regs[in.Reg] < old
	case isa.OpSubReg:
		old := m.Regs[in.Reg]
		m.Regs[in.Reg] -= m.Regs[in.Reg2]
		m.ZF = m.Regs[in.Reg] == 0
		m.CF = old < m.Regs[in.Reg2]
	case isa.OpCmpReg:
		m.ZF = m.Regs[in.Reg] == m.Regs[in.Reg2]
		m.CF = m.Regs[in.Reg] < m.Regs[in.Reg2]
	case isa.OpAluImm:
		m.Regs[in.Reg], m.ZF, m.CF = aluImm(in.Alu, m.Regs[in.Reg], uint64(in.Imm), m.ZF, m.CF)
	case isa.OpShiftImm:
		if in.Alu == 4 {
			m.Regs[in.Reg] <<= uint(in.Imm)
		} else {
			m.Regs[in.Reg] >>= uint(in.Imm)
		}
		m.ZF = m.Regs[in.Reg] == 0
	case isa.OpLoad:
		addr := m.Regs[in.Reg2] + uint64(int64(in.Disp))
		pa, f := m.dataAccess(addr, mem.AccessRead)
		if f != nil {
			return m.fault(f)
		}
		m.Regs[in.Reg] = m.Phys.Read64(pa)
	case isa.OpStore:
		addr := m.Regs[in.Reg2] + uint64(int64(in.Disp))
		pa, f := m.dataAccess(addr, mem.AccessWrite)
		if f != nil {
			return m.fault(f)
		}
		// Phys.Write64 advances the code generation when pa lands in a
		// predecoded frame, so a store over executed bytes (self-modifying
		// code) evicts the stale decodes before they can be fetched again.
		m.Phys.Write64(pa, m.Regs[in.Reg])
	case isa.OpPush:
		m.Regs[isa.RSP] -= 8
		pa, f := m.dataAccess(m.Regs[isa.RSP], mem.AccessWrite)
		if f != nil {
			m.Regs[isa.RSP] += 8
			return m.fault(f)
		}
		m.Phys.Write64(pa, m.Regs[in.Reg])
	case isa.OpPop:
		pa, f := m.dataAccess(m.Regs[isa.RSP], mem.AccessRead)
		if f != nil {
			return m.fault(f)
		}
		m.Regs[in.Reg] = m.Phys.Read64(pa)
		m.Regs[isa.RSP] += 8
	case isa.OpRdtsc:
		m.Regs[isa.RAX] = m.Cycle
	case isa.OpClflush:
		addr := m.Regs[in.Reg2] + uint64(int64(in.Disp))
		pa, f := m.xlate(addr, mem.AccessRead)
		if f != nil {
			return m.fault(f)
		}
		m.Hier.FlushLine(pa)
		m.Cycle += 40
	case isa.OpLfence, isa.OpMfence:
		m.Cycle += 4
	case isa.OpHlt:
		return m.stop(RunResult{Reason: StopHalt})
	case isa.OpInt3:
		return m.stop(RunResult{Reason: StopTrap})

	case isa.OpJmp:
		next = m.takeBranch(va, isa.BrJmp, in.Target(va))
	case isa.OpJcc:
		taken := m.evalCond(in.Cond)
		m.PHT.Update(va, m.BHB.Value(), taken)
		if taken {
			next = m.takeBranch(va, isa.BrJcc, in.Target(va))
		}
	case isa.OpJmpInd:
		next = m.takeBranch(va, isa.BrJmpInd, m.Regs[in.Reg])
	case isa.OpCall:
		target := in.Target(va)
		if stop := m.pushRet(next); stop != nil {
			return stop
		}
		m.RSB.Push(next)
		next = m.takeBranch(va, isa.BrCall, target)
	case isa.OpCallInd:
		target := m.Regs[in.Reg]
		if stop := m.pushRet(next); stop != nil {
			return stop
		}
		m.RSB.Push(next)
		next = m.takeBranch(va, isa.BrCallInd, target)
	case isa.OpRet:
		pa, f := m.dataAccess(m.Regs[isa.RSP], mem.AccessRead)
		if f != nil {
			return m.fault(f)
		}
		target := m.Phys.Read64(pa)
		m.Regs[isa.RSP] += 8
		m.RSB.Pop()
		next = m.takeBranch(va, isa.BrRet, target)

	case isa.OpSyscall:
		if !m.Kernel {
			if m.SyscallEntry == 0 {
				return m.stop(RunResult{Reason: StopTrap})
			}
			m.Debug.Syscalls++
			m.emit(EvSyscall, va, 1)
			m.syscallRet = next
			m.Kernel = true
			m.Cycle += syscallEntryCost
			if m.KPTI {
				m.Cycle += kptiExtraCost
				m.ITLB.Flush()
				m.DTLB.Flush()
			}
			if m.MSR.IBPBOnKernelEntry {
				m.IBPB()
				m.Cycle += 1200 // IBPB's documented heavyweight cost
			}
			m.Noise.SyscallThrash()
			next = m.SyscallEntry
		} else {
			// In kernel mode the instruction acts as sysret.
			m.emit(EvSyscall, va, 0)
			m.Kernel = false
			m.Cycle += syscallExitCost
			if m.KPTI {
				m.Cycle += kptiExtraCost
				m.ITLB.Flush()
				m.DTLB.Flush()
			}
			m.Noise.SyscallThrash()
			next = m.syscallRet
		}
		m.lastFetchLine = ^uint64(0)
		m.lastUopLine = ^uint64(0)
	}

	m.RIP = next
	return nil
}

// takeBranch retires a taken branch: trains the BTB with the branch class
// (the property Phantom exploits — Section 5.2: "the training instruction
// always determines the prediction semantics of the victim instruction"),
// records the edge in the history, and redirects fetch.
func (m *Machine) takeBranch(va uint64, class isa.BranchClass, target uint64) uint64 {
	m.emit(EvBranch, va, target)
	m.BTB.UpdateBHB(va, m.Kernel, class, target, m.BHB.Value())
	m.BHB.Record(va, target)
	m.lastFetchLine = ^uint64(0)
	m.lastUopLine = ^uint64(0)
	return target
}

// pushRet pushes a call's return address onto the architectural stack.
func (m *Machine) pushRet(ret uint64) *RunResult {
	m.Regs[isa.RSP] -= 8
	pa, f := m.dataAccess(m.Regs[isa.RSP], mem.AccessWrite)
	if f != nil {
		m.Regs[isa.RSP] += 8
		return m.fault(f)
	}
	m.Phys.Write64(pa, ret)
	return nil
}
