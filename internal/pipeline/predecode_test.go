package pipeline

import (
	"testing"

	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// loopProgram assembles a small countdown loop at base: rcx iterations,
// rax accumulates 1 per iteration.
func loopProgram(base uint64, iters int64) *isa.Assembler {
	a := isa.NewAssembler(base)
	a.MovImm(isa.RCX, uint64(iters))
	a.MovImm(isa.RAX, 0)
	a.Label("loop")
	a.AluImm(isa.AluAdd, isa.RAX, 1)
	a.AluImm(isa.AluSub, isa.RCX, 1)
	a.Jcc(isa.CondNZ, "loop")
	a.Hlt()
	return a
}

func TestPredecodeCacheHitsOnLoop(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	installCode(t, m, loopProgram(0x400000, 50))
	if res := m.RunAt(0x400000, 10000); res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RAX] != 50 {
		t.Fatalf("rax = %d", m.Regs[isa.RAX])
	}
	if m.Debug.PredecodeMisses == 0 {
		t.Fatal("no predecode misses: cache never filled")
	}
	if m.Debug.PredecodeHits <= m.Debug.PredecodeMisses {
		t.Fatalf("hits=%d misses=%d: a 50-iteration loop should hit far more than it fills",
			m.Debug.PredecodeHits, m.Debug.PredecodeMisses)
	}
}

func TestDisablePredecodeBypassesCache(t *testing.T) {
	run := func(disable bool) (uint64, DebugCounters) {
		m := newTestMachine(t, uarch.Zen2())
		m.DisablePredecode = disable
		installCode(t, m, loopProgram(0x400000, 50))
		if res := m.RunAt(0x400000, 10000); res.Reason != StopHalt {
			t.Fatalf("run(disable=%v): %v", disable, res)
		}
		return m.Regs[isa.RAX], m.Debug
	}
	raxOn, _ := run(false)
	raxOff, dbg := run(true)
	if raxOn != raxOff {
		t.Fatalf("architectural result differs: %d vs %d", raxOn, raxOff)
	}
	if dbg.PredecodeHits != 0 || dbg.PredecodeMisses != 0 {
		t.Fatalf("DisablePredecode still touched the cache: hits=%d misses=%d",
			dbg.PredecodeHits, dbg.PredecodeMisses)
	}
}

// TestPredecodeInvalidationOnRemap exercises the mapping-staleness defense:
// entries are keyed by physical address and the fetch memo snapshots the
// AddrSpace epoch, so remapping a VA to a different frame with different
// code must never serve the old frame's decodes.
func TestPredecodeInvalidationOnRemap(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	const va = 0x400000

	a1 := isa.NewAssembler(va)
	a1.MovImm(isa.RAX, 11)
	a1.Hlt()
	installCode(t, m, a1)
	if res := m.RunAt(va, 100); res.Reason != StopHalt || m.Regs[isa.RAX] != 11 {
		t.Fatalf("v1: %v rax=%d", res, m.Regs[isa.RAX])
	}

	// Remap the same VA to a fresh frame holding different code.
	m.UserAS.Unmap(va, mem.PageSize)
	a2 := isa.NewAssembler(va)
	a2.MovImm(isa.RAX, 22)
	a2.Hlt()
	installCode(t, m, a2)
	if res := m.RunAt(va, 100); res.Reason != StopHalt {
		t.Fatalf("v2: %v", res)
	}
	if m.Regs[isa.RAX] != 22 {
		t.Fatalf("after remap rax = %d, want 22 (stale fetch translation)", m.Regs[isa.RAX])
	}
}

// TestPredecodeAddressSpaceSwitch models a CR3 switch (the KPTI pattern):
// two address spaces map the same VA to different physical frames. The
// fetch memo keys on the AddrSpace identity, so swapping spaces between
// runs must re-translate.
func TestPredecodeAddressSpaceSwitch(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	const va = 0x400000

	a1 := isa.NewAssembler(va)
	a1.MovImm(isa.RAX, 33)
	a1.Hlt()
	installCode(t, m, a1)
	asA := m.UserAS

	asB := mem.NewAddrSpace(m.Phys)
	pa := allocPA(mem.PageSize)
	if err := asB.Map(va, pa, mem.PageSize, mem.PermRead|mem.PermExec|mem.PermUser); err != nil {
		t.Fatal(err)
	}
	a2 := isa.NewAssembler(va)
	a2.MovImm(isa.RAX, 44)
	a2.Hlt()
	if err := asB.WriteBytes(va, a2.MustBytes()); err != nil {
		t.Fatal(err)
	}

	if res := m.RunAt(va, 100); res.Reason != StopHalt || m.Regs[isa.RAX] != 33 {
		t.Fatalf("space A: %v rax=%d", res, m.Regs[isa.RAX])
	}
	m.UserAS = asB
	if res := m.RunAt(va, 100); res.Reason != StopHalt {
		t.Fatalf("space B: %v", res)
	}
	if m.Regs[isa.RAX] != 44 {
		t.Fatalf("after space switch rax = %d, want 44 (memo ignored AS identity)", m.Regs[isa.RAX])
	}
	m.UserAS = asA
	if res := m.RunAt(va, 100); res.Reason != StopHalt || m.Regs[isa.RAX] != 33 {
		t.Fatalf("back to space A: %v rax=%d", res, m.Regs[isa.RAX])
	}
}

// TestPredecodeCrossPageInstruction pins the slow-path fallback: an
// instruction whose 16-byte decode window straddles a page boundary is
// never cached and must still execute correctly.
func TestPredecodeCrossPageInstruction(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	const base = 0x400000
	a := isa.NewAssembler(base)
	// Pad so the 10-byte mov starts 4 bytes before the page boundary.
	a.NopSled(int(mem.PageSize - 4))
	a.MovImm(isa.RAX, 0x1234)
	a.Hlt()
	installCode(t, m, a)
	if res := m.RunAt(base, int(mem.PageSize)+100); res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RAX] != 0x1234 {
		t.Fatalf("rax = %#x", m.Regs[isa.RAX])
	}
}
