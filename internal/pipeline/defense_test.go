package pipeline

import (
	"testing"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// Tests for the software defenses Section 2.4 discusses: retpolines and
// RSB stuffing. They demonstrate why those defenses stop classic Spectre
// but cannot stop Phantom — Phantom triggers at instructions that are not
// (known to be) branches at all, so there is no branch source to rewrite.

// buildRetpoline emits the classic retpoline thunk for an indirect jump
// through reg:
//
//	  call set_up_target
//	capture:
//	  lfence
//	  jmp capture
//	set_up_target:
//	  mov [rsp], reg
//	  ret
func buildRetpoline(a *isa.Assembler, reg int, id string) {
	a.Call("rp_setup_" + id)
	a.Label("rp_capture_" + id)
	a.Lfence()
	a.Jmp("rp_capture_" + id)
	a.Label("rp_setup_" + id)
	a.Store(isa.RSP, 0, reg)
	a.Ret()
}

func TestRetpolineSafeWithoutAliasedTraining(t *testing.T) {
	// A retpoline replaces the indirect branch with a ret whose RSB
	// prediction points into the lfence capture loop; absent any attacker
	// BTB training, no wrong path reaches an attacker target.
	runRetpoline(t, false)
}

func TestRetpolineBypassedByBranchTypeConfusion(t *testing.T) {
	// ...but on Zen 1/2 an attacker who aliases the retpoline's ret with a
	// jmp*-class BTB entry hijacks it through the short decoder-detectable
	// window — the Retbleed [73] finding (Table 1 cell b) that led AMD to
	// `untrain ret`, and part of why the paper argues patching branch
	// sources cannot be complete (Section 8.2).
	runRetpoline(t, true)
}

func runRetpoline(t *testing.T, poison bool) {
	m := newTestMachine(t, uarch.Zen2())

	code := isa.NewAssembler(0x400000)
	code.MovImm(isa.RSP, 0x700000+0x800)
	buildRetpoline(code, isa.RSI, "x")
	// Architectural continuation (the indirect target) is set below.
	installCode(t, m, code)
	installData(t, m, 0x700000, mem.PageSize)

	// Victim target V: benign. Attacker target C: a load gadget.
	vTgt := uint64(0x480000)
	vt := isa.NewAssembler(vTgt)
	vt.Hlt()
	installCode(t, m, vt)
	cAddr := uint64(0x7f0000) + 0x3c0
	ca := isa.NewAssembler(cAddr)
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Hlt()
	installCode(t, m, ca)
	probeVA := uint64(0x600000)
	installData(t, m, probeVA, mem.PageSize)

	if poison {
		// Plant a jmp*-class prediction at the ret's address, as an
		// attacker with BTB aliasing would.
		retAddr := code.MustAddr("rp_setup_x") + uint64(len(isa.EncStore(isa.RSP, 0, isa.RSI)))
		m.BTB.Update(retAddr, false, isa.BrJmpInd, cAddr)
	}

	probePA := paOf(t, m, probeVA)
	m.Hier.FlushLine(probePA)
	m.Regs[isa.RSI] = vTgt
	m.Regs[isa.R8] = probeVA
	if res := m.RunAt(0x400000, 200); res.Reason != StopHalt {
		t.Fatalf("retpoline run: %v", res)
	}
	// The phantom window at the ret (class confusion jmp* vs ret) steers
	// to C transiently — but on a *retpoline* the interesting part is the
	// architectural result: control reached the real target.
	if m.RIP != vTgt {
		t.Fatalf("retpoline did not reach the architectural target: rip=%#x", m.RIP)
	}
	leaked := m.Hier.L1D.Present(probePA) || m.Hier.L2.Present(probePA)
	if poison && !leaked {
		t.Fatal("type-confused retpoline ret did not leak on Zen 2 (Retbleed cell)")
	}
	if !poison && leaked {
		t.Fatal("untrained retpoline leaked: capture loop failed")
	}
}

func TestRetpolineDoesNotStopPhantom(t *testing.T) {
	// The Section 8 point: rewriting branch sources cannot help when the
	// victim "branch source" is a plain nop. A retpoline-hardened program
	// still has nops, and an aliased prediction at one of them speculates
	// as usual.
	f := buildPhantomFixture(t, uarch.Zen2())
	f.train(t, 3)
	f.flushSignals()
	f.runVictim(t)
	fetch, decode, exec := f.signals()
	if !fetch || !decode || !exec {
		t.Fatalf("phantom blocked without any branch source to protect: IF=%v ID=%v EX=%v",
			fetch, decode, exec)
	}
}

func TestRSBStuffingRedirectsRetPrediction(t *testing.T) {
	// RSB stuffing overwrites return predictions with a dummy target
	// (Section 2.4). A ret-class phantom prediction then steers to the
	// dummy instead of an attacker-controlled call site.
	m := newTestMachine(t, uarch.Zen2())
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())

	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0x3c0
	dummy := uint64(0x7f2000) + 0x840

	// Train a ret-class entry at the aliased slot.
	ta := isa.NewAssembler(aAddr)
	ta.Ret()
	installCode(t, m, ta)
	vb := isa.NewAssembler(bAddr)
	vb.NopSled(16)
	vb.Hlt()
	installCode(t, m, vb)
	ca := isa.NewAssembler(cAddr)
	ca.NopSled(8)
	ca.Hlt()
	installCode(t, m, ca)
	da := isa.NewAssembler(dummy)
	da.NopSled(8)
	da.Hlt()
	installCode(t, m, da)
	installData(t, m, 0x700000, mem.PageSize)

	// Training: architectural ret to C.
	for i := 0; i < 2; i++ {
		m.Regs[isa.RSP] = 0x700000 + 0x800 - 8
		if err := m.UserAS.Write64(m.Regs[isa.RSP], cAddr); err != nil {
			t.Fatal(err)
		}
		if res := m.RunAt(aAddr, 50); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}

	// Stuff the RSB with the dummy target, then run the victim.
	m.RSB.Fill(dummy)
	cPA := paOf(t, m, cAddr)
	dPA := paOf(t, m, dummy)
	m.Hier.FlushLine(cPA)
	m.Hier.FlushLine(dPA)
	if res := m.RunAt(bAddr, 50); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	if m.Hier.L1I.Present(cPA) {
		t.Fatal("ret-class phantom ignored the stuffed RSB")
	}
	if !m.Hier.L1I.Present(dPA) {
		t.Fatal("stuffed dummy target was not fetched — prediction vanished instead of redirecting")
	}
}

func TestHistoryTaggedSchemeRequiresMatchingHistory(t *testing.T) {
	// With a history-tagged BTB (Section 2.1 behaviour, BHI-style [8]),
	// a phantom injection only fires when the victim reaches the branch
	// with the same folded history the trainer had. The evaluated parts
	// are modeled without history tags (the paper's exploits need none);
	// this documents what the knob changes.
	p := uarch.Zen2()
	base := p.NewScheme
	p.NewScheme = func() *btb.Scheme {
		s := base()
		s.BHBTagBits = 8
		return s
	}

	f := buildPhantomFixture(t, p)
	f.train(t, 3)
	f.flushSignals()

	// The victim run starts from RunAt with whatever history is in the
	// BHB. Training ended with the jmp* edge recorded, so the victim's
	// history differs from the trainer's pre-branch history — the aliased
	// entry should not be selected.
	f.m.BHB.Record(0x1234, 0x5678) // scramble further
	f.runVictim(t)
	fetch, decode, exec := f.signals()
	if fetch || decode || exec {
		t.Fatalf("history-tagged scheme matched across different histories: IF=%v ID=%v EX=%v",
			fetch, decode, exec)
	}

	// With the history restored to the trainer's fingerprint, it fires.
	// (Train once: each training pass runs under a different rolling
	// history and would allocate a separate entry.)
	f.m.IBPB()
	f.m.BHB.Clear()
	f.train(t, 1)
	f.flushSignals()
	f.m.BHB.Clear() // trainer executed its branch with a clear history
	f.runVictim(t)
	fetch, decode, exec = f.signals()
	if !fetch || !decode || !exec {
		t.Fatalf("history-tagged scheme missed with matching history: IF=%v ID=%v EX=%v",
			fetch, decode, exec)
	}
}
