package pipeline

import (
	"testing"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// These tests exercise the speculation-episode engine directly: barriers,
// nesting, budgets, store suppression, and value forwarding.

func TestLfenceStopsWrongPath(t *testing.T) {
	// A serializing instruction in the wrong path must stop the episode
	// before a later load executes (the lfence mitigation of Section 2.4).
	m := newTestMachine(t, uarch.Zen2())
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())
	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0x3c0
	probeVA := uint64(0x600000)

	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	installCode(t, m, ta)
	vb := isa.NewAssembler(bAddr)
	vb.NopSled(16)
	vb.Hlt()
	installCode(t, m, vb)
	// C: lfence *before* the load.
	ca := isa.NewAssembler(cAddr)
	ca.Lfence()
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Hlt()
	installCode(t, m, ca)
	installData(t, m, probeVA, mem.PageSize)

	for i := 0; i < 3; i++ {
		m.Regs[isa.RDI] = cAddr
		m.Regs[isa.R8] = probeVA
		if res := m.RunAt(aAddr, 100); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	probePA := paOf(t, m, probeVA)
	m.Hier.FlushLine(probePA)
	m.Regs[isa.R8] = probeVA
	if res := m.RunAt(bAddr, 100); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	if m.Hier.L1D.Present(probePA) || m.Hier.L2.Present(probePA) {
		t.Fatal("load behind lfence executed transiently")
	}
	// Fetch still happened (lfence does not undo IF).
	cPA := paOf(t, m, cAddr)
	if !m.Hier.L1I.Present(cPA) {
		t.Fatal("no transient fetch of the lfence gadget")
	}
}

func TestWrongPathStoresAreSuppressed(t *testing.T) {
	// Wrong-path stores sit in the store buffer and never become
	// architecturally or microarchitecturally visible in this model.
	m := newTestMachine(t, uarch.Zen1())
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())
	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0x3c0
	dataVA := uint64(0x600000)

	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	installCode(t, m, ta)
	vb := isa.NewAssembler(bAddr)
	vb.NopSled(16)
	vb.Hlt()
	installCode(t, m, vb)
	// C: a store.
	ca := isa.NewAssembler(cAddr)
	ca.Store(isa.R8, 0, isa.R9)
	ca.Hlt()
	installCode(t, m, ca)
	installData(t, m, dataVA, mem.PageSize)

	if err := m.UserAS.Write64(dataVA, 0x1111); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Regs[isa.RDI] = cAddr
		m.Regs[isa.R8] = dataVA
		m.Regs[isa.R9] = 0x2222
		if res := m.RunAt(aAddr, 100); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	// Training executed the store architecturally; reset the value.
	if err := m.UserAS.Write64(dataVA, 0x1111); err != nil {
		t.Fatal(err)
	}
	m.Regs[isa.R9] = 0x3333
	if res := m.RunAt(bAddr, 100); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	v, err := m.UserAS.Read64(dataVA)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111 {
		t.Fatalf("wrong-path store committed: %#x", v)
	}
}

func TestTransientLoadValueForwards(t *testing.T) {
	// A wrong-path load's value must feed later wrong-path address
	// computation — the dependency chain P3 and the MDS exploit rely on.
	m := newTestMachine(t, uarch.Zen1())
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())
	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0x3c0
	ptrVA := uint64(0x600000)    // holds a pointer value
	reloadVA := uint64(0x610000) // reload buffer

	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	installCode(t, m, ta)
	vb := isa.NewAssembler(bAddr)
	vb.NopSled(16)
	vb.Hlt()
	installCode(t, m, vb)
	// C: load a value and dereference-derived address: rax = [r8];
	// rbx = [rax].
	ca := isa.NewAssembler(cAddr)
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Load(isa.RBX, isa.RAX, 0)
	ca.Hlt()
	installCode(t, m, ca)
	installData(t, m, ptrVA, mem.PageSize)
	installData(t, m, reloadVA, mem.PageSize)

	// The pointer chain: [ptrVA] = reloadVA + 0x240.
	if err := m.UserAS.Write64(ptrVA, reloadVA+0x240); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		m.Regs[isa.RDI] = cAddr
		m.Regs[isa.R8] = ptrVA
		if res := m.RunAt(aAddr, 100); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	secretPA := paOf(t, m, reloadVA+0x240)
	m.Hier.FlushLine(secretPA)
	m.Regs[isa.R8] = ptrVA
	if res := m.RunAt(bAddr, 100); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	if !m.Hier.L1D.Present(secretPA) && !m.Hier.L2.Present(secretPA) {
		t.Fatal("dependent transient load did not execute (no value forwarding)")
	}
}

func TestPhantomWindowBoundsLoads(t *testing.T) {
	// A Zen 2 Phantom window dispatches 6 µops: a gadget with many loads
	// must only complete the ones within the budget.
	m := newTestMachine(t, uarch.Zen2())
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())
	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0x3c0
	probeVA := uint64(0x600000)

	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	installCode(t, m, ta)
	vb := isa.NewAssembler(bAddr)
	vb.NopSled(16)
	vb.Hlt()
	installCode(t, m, vb)
	// C: 10 loads from distinct lines.
	ca := isa.NewAssembler(cAddr)
	for i := 0; i < 10; i++ {
		ca.Load(isa.RAX, isa.R8, int32(i*64))
	}
	ca.Hlt()
	installCode(t, m, ca)
	installData(t, m, probeVA, mem.PageSize)

	for i := 0; i < 3; i++ {
		m.Regs[isa.RDI] = cAddr
		m.Regs[isa.R8] = probeVA
		if res := m.RunAt(aAddr, 200); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	for i := 0; i < 10; i++ {
		m.Hier.FlushLine(paOf(t, m, probeVA+uint64(i*64)))
	}
	m.Regs[isa.R8] = probeVA
	if res := m.RunAt(bAddr, 200); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	loaded := 0
	for i := 0; i < 10; i++ {
		if m.Hier.L1D.Present(paOf(t, m, probeVA+uint64(i*64))) {
			loaded++
		}
	}
	want := uarch.Zen2().PhantomWindow.ExecUops
	if loaded != want {
		t.Fatalf("wrong path completed %d loads, want %d (window budget)", loaded, want)
	}
}

func TestKPTICostsButDoesNotBlock(t *testing.T) {
	// Phantom works with KPTI enabled (unlike the prefetch attacks of
	// [40]); KPTI only adds transition cost and TLB flushes.
	mkMachine := func(kpti bool) *Machine {
		m := newTestMachine(t, uarch.Zen2())
		m.KPTI = kpti
		kEntry := uint64(0xffffffff81000000)
		ka := isa.NewAssembler(kEntry)
		ka.NopSled(8)
		ka.Syscall()
		installBlob(t, m, kEntry, ka.MustBytes(), mem.PermRead|mem.PermExec)
		m.SyscallEntry = kEntry
		ua := isa.NewAssembler(0x400000)
		ua.Syscall()
		ua.Hlt()
		installCode(t, m, ua)
		return m
	}
	mOff := mkMachine(false)
	resOff := mOff.RunAt(0x400000, 100)
	mOn := mkMachine(true)
	start := mOn.Cycle
	resOn := mOn.RunAt(0x400000, 100)
	if resOff.Reason != StopHalt || resOn.Reason != StopHalt {
		t.Fatalf("syscalls failed: %v / %v", resOff, resOn)
	}
	if mOn.Cycle-start <= mOff.Cycle {
		t.Fatal("KPTI did not cost anything")
	}
	if !mOn.ITLB.Lookup(0x400000) == false { // first lookup after flush misses
		t.Log("TLB state after KPTI exercised")
	}
}

func TestNestedPhantomInsideSpectreWindow(t *testing.T) {
	// The Section 7.4 nesting in isolation: a mispredicted jcc opens a
	// backend window; inside it a direct call carries an aliased jmp*
	// prediction that redirects the wrong path to a disclosure gadget.
	m := newTestMachine(t, uarch.Zen2())
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())

	code := isa.NewAssembler(0x400000)
	code.MovImm(isa.RSP, 0x700000+0x800)
	code.AluImm(isa.AluCmp, isa.RCX, 10) // CF = rcx < 10
	code.Jcc(isa.CondB, "body")
	code.Hlt()
	code.Label("body")
	code.Load(isa.R9, isa.R10, 0) // wrong-path data load
	code.Label("callsite")
	code.Call("parse")
	code.Hlt()
	code.Label("parse")
	code.Ret()
	installCode(t, m, code)
	installData(t, m, 0x700000, mem.PageSize)

	callSite := code.MustAddr("callsite")
	// Disclosure gadget: uses the r9 value loaded in the outer window.
	gAddr := uint64(0x7f0000) + 0x440
	ga := isa.NewAssembler(gAddr)
	ga.AluImm(isa.AluAnd, isa.R9, 0xff)
	ga.Shl(isa.R9, 6)
	ga.AddReg(isa.R9, isa.R14)
	ga.Load(isa.R8, isa.R9, 0)
	ga.Hlt()
	installCode(t, m, ga)

	dataVA := uint64(0x600000)
	reloadVA := uint64(0x610000)
	installData(t, m, dataVA, mem.PageSize)
	installData(t, m, reloadVA, mem.PageSize)
	if err := m.UserAS.Write64(dataVA, 0x37); err != nil { // the "secret"
		t.Fatal(err)
	}

	// Train the conditional taken.
	for i := 0; i < 4; i++ {
		m.Regs[isa.RCX] = 1
		m.Regs[isa.R10] = dataVA
		m.Regs[isa.R14] = reloadVA
		if res := m.RunAt(0x400000, 100); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	// Plant the inner phantom prediction via an aliased user branch.
	trainer := isa.NewAssembler(callSite ^ maskVal)
	trainer.JmpReg(isa.RDI)
	installCode(t, m, trainer)
	m.Regs[isa.RDI] = gAddr
	if res := m.RunAt(callSite^maskVal, 50); res.Reason != StopHalt &&
		res.Reason != StopLimit && res.Reason != StopTrap {
		t.Fatalf("inner training: %v", res)
	}

	// Fire: condition false, branch predicted taken, wrong path loads the
	// secret and the nested phantom leaks it into the reload buffer.
	secretLine := paOf(t, m, reloadVA+0x37<<6)
	m.Hier.FlushLine(secretLine)
	m.Regs[isa.RCX] = 50
	m.Regs[isa.R10] = dataVA
	m.Regs[isa.R14] = reloadVA
	if res := m.RunAt(0x400000, 100); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	if !m.Hier.L1D.Present(secretLine) && !m.Hier.L2.Present(secretLine) {
		t.Fatal("nested phantom did not leak the secret-indexed line")
	}
	if m.Debug.BackendResteers == 0 {
		t.Fatal("no backend window opened")
	}
}

func TestPerfCountersDelta(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	a := isa.NewAssembler(0x400000)
	a.NopSled(32)
	a.Hlt()
	installCode(t, m, a)
	before := m.Perf
	m.RunAt(0x400000, 100)
	d := m.Perf.Delta(before)
	if d.Instructions == 0 || d.Cycles == 0 {
		t.Fatalf("delta: %v", d)
	}
	if d.String() == "" {
		t.Fatal("counter stringer broken")
	}
}

func TestIntelVictimJmpIndQuirks(t *testing.T) {
	// IndirectVictimNone vs FetchOnly, measured at the pipeline level.
	for _, tc := range []struct {
		prof      *uarch.Profile
		wantFetch bool
	}{
		{uarch.Intel9(), false},
		{uarch.Intel12(), true},
	} {
		m := newTestMachine(t, tc.prof)
		maskVal, ok := btb.SamePrivAliasMask(m.BTB.Scheme())
		if !ok {
			t.Fatal("no mask")
		}
		aAddr := uint64(0x400000) + 0x6a0
		bAddr := aAddr ^ maskVal
		cAddr := uint64(0x7f0000) + 0x3c0

		// Direct-jmp training on a jmp* victim: an asymmetric (phantom)
		// pair, where the Intel quirk applies. The observation site is
		// C' = B + (C - A), since direct targets are served PC-relative.
		ta := isa.NewAssembler(aAddr)
		ta.JmpTo(cAddr)
		installCode(t, m, ta)
		vb := isa.NewAssembler(bAddr)
		vb.JmpReg(isa.RSI) // victim is an indirect branch
		installCode(t, m, vb)
		ca := isa.NewAssembler(cAddr)
		ca.NopSled(8)
		ca.Hlt()
		installCode(t, m, ca)
		cPrime := bAddr + (cAddr - aAddr)
		cp := isa.NewAssembler(cPrime)
		cp.NopSled(8)
		cp.Hlt()
		installCode(t, m, cp)
		vt := isa.NewAssembler(bAddr + 0x10000)
		vt.Hlt()
		installCode(t, m, vt)

		for i := 0; i < 3; i++ {
			if res := m.RunAt(aAddr, 100); res.Reason != StopHalt {
				t.Fatalf("training: %v", res)
			}
		}
		cPA := paOf(t, m, cPrime)
		cAddr = cPrime
		m.Hier.FlushLine(cPA)
		m.Uop.Flush(cAddr)
		m.Regs[isa.RSI] = bAddr + 0x10000
		if res := m.RunAt(bAddr, 100); res.Reason != StopHalt {
			t.Fatalf("victim: %v", res)
		}
		gotFetch := m.Hier.L1I.Present(cPA)
		if gotFetch != tc.wantFetch {
			t.Errorf("%s: fetch=%v want %v", tc.prof, gotFetch, tc.wantFetch)
		}
		if m.Uop.Present(cAddr) {
			t.Errorf("%s: jmp*-victim speculation decoded", tc.prof)
		}
	}
}
