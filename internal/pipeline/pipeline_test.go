package pipeline

import (
	"testing"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

// testPA hands out physical backing for test mappings.
var testPA = struct{ next uint64 }{next: 0x1000000}

func allocPA(n uint64) uint64 {
	pa := testPA.next
	testPA.next += (n + mem.PageSize - 1) &^ (mem.PageSize - 1)
	return pa
}

func newTestMachine(t *testing.T, p *uarch.Profile) *Machine {
	t.Helper()
	m := New(p, 1<<30, 1)
	m.Noise.Level = 0 // deterministic for unit tests
	return m
}

// installCode maps user r-x pages covering the assembler's output and
// writes the bytes.
func installCode(t *testing.T, m *Machine, a *isa.Assembler) {
	t.Helper()
	installBlob(t, m, a.Base(), a.MustBytes(), mem.PermRead|mem.PermExec|mem.PermUser)
}

func installBlob(t *testing.T, m *Machine, va uint64, blob []byte, perm mem.Perm) {
	t.Helper()
	base := va &^ (mem.PageSize - 1)
	end := (va + uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if err := m.UserAS.Map(base, allocPA(end-base), end-base, perm); err != nil {
		t.Fatal(err)
	}
	if err := m.UserAS.WriteBytes(va, blob); err != nil {
		t.Fatal(err)
	}
}

// installData maps a user rw page at va.
func installData(t *testing.T, m *Machine, va, size uint64) {
	t.Helper()
	base := va &^ (mem.PageSize - 1)
	end := (va + size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if err := m.UserAS.Map(base, allocPA(end-base), end-base, mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
		t.Fatal(err)
	}
}

func paOf(t *testing.T, m *Machine, va uint64) uint64 {
	t.Helper()
	pa, f := m.UserAS.Translate(va, mem.AccessRead, false)
	if f != nil {
		t.Fatalf("translate %#x: %v", va, f)
	}
	return pa
}

func TestArithmeticAndHalt(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	a := isa.NewAssembler(0x400000)
	a.MovImm(isa.RAX, 40)
	a.AluImm(isa.AluAdd, isa.RAX, 2)
	a.MovImm(isa.RBX, 10)
	a.AddReg(isa.RAX, isa.RBX)
	a.Shl(isa.RAX, 1)
	a.Hlt()
	installCode(t, m, a)
	res := m.RunAt(0x400000, 100)
	if res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RAX] != (40+2+10)<<1 {
		t.Fatalf("rax = %d", m.Regs[isa.RAX])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	a := isa.NewAssembler(0x400000)
	a.MovImm(isa.RSI, 0x600000)
	a.MovImm(isa.RAX, 0xdeadbeef)
	a.Store(isa.RSI, 0x10, isa.RAX)
	a.Load(isa.RBX, isa.RSI, 0x10)
	a.Hlt()
	installCode(t, m, a)
	installData(t, m, 0x600000, mem.PageSize)
	res := m.RunAt(0x400000, 100)
	if res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RBX] != 0xdeadbeef {
		t.Fatalf("rbx = %#x", m.Regs[isa.RBX])
	}
}

func TestCallRetAndStack(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	a := isa.NewAssembler(0x400000)
	a.MovImm(isa.RSP, 0x700000+0x800)
	a.Call("fn")
	a.MovImm(isa.RBX, 7) // executes after return
	a.Hlt()
	a.Label("fn")
	a.MovImm(isa.RAX, 5)
	a.Ret()
	installCode(t, m, a)
	installData(t, m, 0x700000, mem.PageSize)
	res := m.RunAt(0x400000, 100)
	if res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RAX] != 5 || m.Regs[isa.RBX] != 7 {
		t.Fatalf("rax=%d rbx=%d", m.Regs[isa.RAX], m.Regs[isa.RBX])
	}
}

func TestConditionalBranch(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	a := isa.NewAssembler(0x400000)
	// Loop: rcx counts 5 down to 0, rax accumulates.
	a.MovImm(isa.RCX, 5)
	a.MovImm(isa.RAX, 0)
	a.Label("loop")
	a.AluImm(isa.AluAdd, isa.RAX, 3)
	a.AluImm(isa.AluSub, isa.RCX, 1)
	a.AluImm(isa.AluCmp, isa.RCX, 0)
	a.Jcc(isa.CondNZ, "loop")
	a.Hlt()
	installCode(t, m, a)
	res := m.RunAt(0x400000, 1000)
	if res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RAX] != 15 {
		t.Fatalf("rax = %d", m.Regs[isa.RAX])
	}
}

func TestRdtscMonotonic(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	a := isa.NewAssembler(0x400000)
	a.Rdtsc()
	a.MovReg(isa.R8, isa.RAX)
	a.MovImm(isa.RSI, 0x600000)
	a.Load(isa.RBX, isa.RSI, 0) // something that takes time
	a.Rdtsc()
	a.Hlt()
	installCode(t, m, a)
	installData(t, m, 0x600000, mem.PageSize)
	m.RunAt(0x400000, 100)
	if m.Regs[isa.RAX] <= m.Regs[isa.R8] {
		t.Fatalf("rdtsc not monotonic: %d then %d", m.Regs[isa.R8], m.Regs[isa.RAX])
	}
}

func TestUserFaultsOnKernelAccess(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	kva := uint64(0xffffffff81000000)
	if err := m.UserAS.Map(kva, allocPA(mem.PageSize), mem.PageSize, mem.PermRead|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	a := isa.NewAssembler(0x400000)
	a.MovImm(isa.RDI, kva)
	a.JmpReg(isa.RDI)
	installCode(t, m, a)
	res := m.RunAt(0x400000, 100)
	if res.Reason != StopFault || res.Fault == nil || res.Fault.VA != kva {
		t.Fatalf("run: %v", res)
	}
	// The BTB learned the branch before the fault — the training trick of
	// Section 6.2.
	if _, ok := m.BTB.Lookup(0x400000+10, false); !ok {
		t.Fatal("faulting branch did not train the BTB")
	}
}

// phantomFixture lays out the Figure 4 experiment: training source A with
// a jmp* to C, victim B (aliased with A) holding nops, and a signal
// gadget C that loads from a probe buffer.
type phantomFixture struct {
	m                *Machine
	aAddr, bAddr     uint64
	cAddr            uint64
	probeVA          uint64
	cPA, probePA     uint64
	victimHalt       uint64
	trainEntry       uint64
	victimEntryLabel string
}

func buildPhantomFixture(t *testing.T, p *uarch.Profile) *phantomFixture {
	t.Helper()
	m := newTestMachine(t, p)
	maskVal, ok := btb.SamePrivAliasMask(m.BTB.Scheme())
	if !ok {
		t.Fatal("no same-priv alias mask")
	}

	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0xac0
	probeVA := uint64(0x600000)

	// Training snippet: jmp* rdi at aAddr (rdi = C).
	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	installCode(t, m, ta)

	// Victim snippet: nops then hlt at the aliased address.
	va := isa.NewAssembler(bAddr)
	va.NopSled(16)
	va.Hlt()
	installCode(t, m, va)

	// Signal gadget C: one load from the probe buffer, then halt.
	ca := isa.NewAssembler(cAddr)
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Hlt()
	installCode(t, m, ca)

	installData(t, m, probeVA, mem.PageSize)

	f := &phantomFixture{
		m: m, aAddr: aAddr, bAddr: bAddr, cAddr: cAddr, probeVA: probeVA,
		cPA:     paOf(t, m, cAddr),
		probePA: paOf(t, m, probeVA),
	}
	return f
}

// train architecturally executes the jmp* at A a few times.
func (f *phantomFixture) train(t *testing.T, times int) {
	t.Helper()
	for i := 0; i < times; i++ {
		f.m.Regs[isa.RDI] = f.cAddr
		f.m.Regs[isa.R8] = f.probeVA
		res := f.m.RunAt(f.aAddr, 100)
		if res.Reason != StopHalt {
			t.Fatalf("training run: %v", res)
		}
	}
}

// flushSignals clears the observation state.
func (f *phantomFixture) flushSignals() {
	f.m.Hier.FlushLine(f.cPA)
	f.m.Hier.FlushLine(f.probePA)
	f.m.Uop.Flush(f.cAddr)
}

// runVictim executes the victim snippet with R8 pointing at the probe.
func (f *phantomFixture) runVictim(t *testing.T) {
	t.Helper()
	f.m.Regs[isa.R8] = f.probeVA
	res := f.m.RunAt(f.bAddr, 100)
	if res.Reason != StopHalt {
		t.Fatalf("victim run: %v", res)
	}
}

func (f *phantomFixture) signals() (fetch, decode, exec bool) {
	return f.m.Hier.L1I.Present(f.cPA) || f.m.Hier.L2.Present(f.cPA),
		f.m.Uop.Present(f.cAddr),
		f.m.Hier.L1D.Present(f.probePA) || f.m.Hier.L2.Present(f.probePA)
}

func TestPhantomReachPerMicroarchitecture(t *testing.T) {
	cases := []struct {
		prof                *uarch.Profile
		fetch, decode, exec bool
	}{
		{uarch.Zen1(), true, true, true},
		{uarch.Zen2(), true, true, true},
		{uarch.Zen3(), true, true, false},
		{uarch.Zen4(), true, true, false},
		{uarch.Intel9(), true, true, false},
		{uarch.Intel13(), true, true, false},
	}
	for _, c := range cases {
		t.Run(c.prof.Name, func(t *testing.T) {
			f := buildPhantomFixture(t, c.prof)
			f.train(t, 3)
			f.flushSignals()
			f.runVictim(t)
			fetch, decode, exec := f.signals()
			if fetch != c.fetch || decode != c.decode || exec != c.exec {
				t.Fatalf("signals IF=%v ID=%v EX=%v, want %v/%v/%v",
					fetch, decode, exec, c.fetch, c.decode, c.exec)
			}
			if f.m.Debug.FrontendResteers == 0 {
				t.Fatal("no frontend resteer recorded")
			}
		})
	}
}

func TestPhantomDoesNotCorruptArchitecturalState(t *testing.T) {
	f := buildPhantomFixture(t, uarch.Zen2())
	f.train(t, 3)
	f.flushSignals()
	f.m.Regs[isa.RAX] = 0x1111
	f.runVictim(t)
	// The wrong-path load wrote the *transient* RAX only.
	if f.m.Regs[isa.RAX] != 0x1111 {
		t.Fatalf("architectural RAX corrupted by speculation: %#x", f.m.Regs[isa.RAX])
	}
}

func TestPhantomNoSignalWithoutTraining(t *testing.T) {
	f := buildPhantomFixture(t, uarch.Zen2())
	f.flushSignals()
	f.runVictim(t)
	fetch, decode, exec := f.signals()
	if fetch || decode || exec {
		t.Fatalf("signals without training: IF=%v ID=%v EX=%v", fetch, decode, exec)
	}
}

func TestPhantomNoSignalWithoutAliasing(t *testing.T) {
	f := buildPhantomFixture(t, uarch.Zen2())
	f.train(t, 3)
	f.flushSignals()
	// Run a non-aliased victim: same code shape at an unrelated address.
	other := uint64(0x440000) + 0x120
	va := isa.NewAssembler(other)
	va.NopSled(16)
	va.Hlt()
	installCode(t, f.m, va)
	f.m.Regs[isa.R8] = f.probeVA
	res := f.m.RunAt(other, 100)
	if res.Reason != StopHalt {
		t.Fatalf("victim run: %v", res)
	}
	fetch, decode, exec := f.signals()
	if fetch || decode || exec {
		t.Fatalf("non-aliased victim produced signals: IF=%v ID=%v EX=%v", fetch, decode, exec)
	}
}

func TestSuppressBPOnNonBrStopsExecOnly(t *testing.T) {
	// Observation O4: the MSR stops transient execution at non-branch
	// victims but not transient fetch or decode.
	f := buildPhantomFixture(t, uarch.Zen2())
	if !f.m.WriteMSRSuppressBPOnNonBr(true) {
		t.Fatal("Zen2 must support SuppressBPOnNonBr")
	}
	f.train(t, 3)
	f.flushSignals()
	f.runVictim(t)
	fetch, decode, exec := f.signals()
	if !fetch || !decode {
		t.Fatalf("IF/ID suppressed: IF=%v ID=%v", fetch, decode)
	}
	if exec {
		t.Fatal("transient execution survived SuppressBPOnNonBr")
	}
}

func TestSuppressBPOnNonBrUnsupportedOnZen1(t *testing.T) {
	m := newTestMachine(t, uarch.Zen1())
	if m.WriteMSRSuppressBPOnNonBr(true) {
		t.Fatal("Zen1 should not support SuppressBPOnNonBr (Section 8.1)")
	}
}

func TestSuppressBPOnNonBrLeavesBranchVictimsExposed(t *testing.T) {
	// P2/P3 still work on branch-instruction victims with the MSR set
	// (Section 6.3): confuse a direct jmp victim with a jmp* prediction.
	p := uarch.Zen2()
	m := newTestMachine(t, p)
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())

	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	cAddr := uint64(0x7f0000) + 0xac0
	probeVA := uint64(0x600000)

	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	installCode(t, m, ta)

	// Victim is a *branch* (direct jmp to its own hlt).
	va := isa.NewAssembler(bAddr)
	va.Jmp("out")
	va.Label("out")
	va.Hlt()
	installCode(t, m, va)

	ca := isa.NewAssembler(cAddr)
	ca.Load(isa.RAX, isa.R8, 0)
	ca.Hlt()
	installCode(t, m, ca)
	installData(t, m, probeVA, mem.PageSize)

	m.WriteMSRSuppressBPOnNonBr(true)

	for i := 0; i < 3; i++ {
		m.Regs[isa.RDI] = cAddr
		m.Regs[isa.R8] = probeVA
		if res := m.RunAt(aAddr, 100); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	probePA := paOf(t, m, probeVA)
	m.Hier.FlushLine(probePA)
	m.Regs[isa.R8] = probeVA
	if res := m.RunAt(bAddr, 100); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	if !m.Hier.L1D.Present(probePA) && !m.Hier.L2.Present(probePA) {
		t.Fatal("branch victim did not transiently execute with MSR set")
	}
}

func TestDirectJmpTrainingShiftsTarget(t *testing.T) {
	// Figure 5A: training with a direct jmp makes the victim speculate to
	// C' = B + (C - A), not to C.
	p := uarch.Zen2()
	m := newTestMachine(t, p)
	maskVal, _ := btb.SamePrivAliasMask(m.BTB.Scheme())

	aAddr := uint64(0x400000) + 0x6a0
	bAddr := aAddr ^ maskVal
	delta := uint64(0x20000)
	cAddr := aAddr + delta
	cPrime := bAddr + delta

	ta := isa.NewAssembler(aAddr)
	ta.JmpTo(cAddr)
	installCode(t, m, ta)

	ca := isa.NewAssembler(cAddr)
	ca.Hlt()
	installCode(t, m, ca)

	// C' exists and is executable (mapped), as the experiment requires.
	cp := isa.NewAssembler(cPrime)
	cp.NopSled(8)
	cp.Hlt()
	installCode(t, m, cp)

	va := isa.NewAssembler(bAddr)
	va.NopSled(16)
	va.Hlt()
	installCode(t, m, va)

	for i := 0; i < 3; i++ {
		if res := m.RunAt(aAddr, 100); res.Reason != StopHalt {
			t.Fatalf("training: %v", res)
		}
	}
	cPA := paOf(t, m, cAddr)
	cpPA := paOf(t, m, cPrime)
	m.Hier.FlushLine(cPA)
	m.Hier.FlushLine(cpPA)
	if res := m.RunAt(bAddr, 100); res.Reason != StopHalt {
		t.Fatalf("victim: %v", res)
	}
	if m.Hier.L1I.Present(cPA) {
		t.Fatal("victim speculated to C (absolute), not PC-relative")
	}
	if !m.Hier.L1I.Present(cpPA) {
		t.Fatal("no transient fetch at C' = B + (C - A)")
	}
}

func TestNXTargetLeavesNoFetchSignal(t *testing.T) {
	// The P1/P2 asymmetry: a speculative fetch of a mapped but
	// non-executable target dies without filling the I-cache.
	f := buildPhantomFixture(t, uarch.Zen2())
	f.train(t, 3)
	// Remap C as non-executable.
	if !f.m.UserAS.SetPerm(f.cAddr, mem.PermRead|mem.PermUser) {
		t.Fatal("SetPerm failed")
	}
	f.flushSignals()
	f.runVictim(t)
	fetch, _, _ := f.signals()
	if fetch {
		t.Fatal("NX target filled the I-cache")
	}
}

func TestSyscallRoundTrip(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	// Kernel handler: set RBX, return via sysret (kernel-mode syscall).
	kEntry := uint64(0xffffffff81000000)
	ka := isa.NewAssembler(kEntry)
	ka.MovImm(isa.RBX, 0x99)
	ka.Syscall() // sysret
	installBlob(t, m, kEntry, ka.MustBytes(), mem.PermRead|mem.PermExec)
	m.SyscallEntry = kEntry

	ua := isa.NewAssembler(0x400000)
	ua.Syscall()
	ua.MovImm(isa.RCX, 1) // proves user execution resumed
	ua.Hlt()
	installCode(t, m, ua)

	res := m.RunAt(0x400000, 100)
	if res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if m.Regs[isa.RBX] != 0x99 || m.Regs[isa.RCX] != 1 {
		t.Fatalf("rbx=%#x rcx=%#x", m.Regs[isa.RBX], m.Regs[isa.RCX])
	}
	if m.Kernel {
		t.Fatal("still in kernel mode after sysret")
	}
	if m.Debug.Syscalls != 1 {
		t.Fatalf("syscalls = %d", m.Debug.Syscalls)
	}
}

func TestAutoIBRSLeavesIFOnly(t *testing.T) {
	// Observation O5: with AutoIBRS, a user-trained prediction at a
	// kernel victim still triggers the instruction fetch of the target,
	// but no decode and no steering.
	p := uarch.Zen4()
	m := newTestMachine(t, p)
	if !m.WriteMSRAutoIBRS(true) {
		t.Fatal("Zen4 must support AutoIBRS")
	}

	// Kernel victim: nops + sysret at kEntry.
	kEntry := uint64(0xffffffff81000000) + 0x6a0
	ka := isa.NewAssembler(kEntry)
	ka.NopSled(16)
	ka.Syscall() // sysret
	installBlob(t, m, kEntry, ka.MustBytes(), mem.PermRead|mem.PermExec)
	m.SyscallEntry = kEntry

	// Kernel target T: mapped executable kernel code.
	tAddr := uint64(0xffffffff81200000) + 0xac0
	tb := isa.NewAssembler(tAddr)
	tb.NopSled(8)
	tb.Ret()
	installBlob(t, m, tAddr, tb.MustBytes(), mem.PermRead|mem.PermExec)

	// User training source aliased with the kernel victim.
	maskVal, ok := btb.CrossPrivAliasMask(m.BTB.Scheme())
	if !ok {
		t.Fatal("no cross-priv mask on Zen4 scheme")
	}
	uAddr := kEntry ^ maskVal
	ua := isa.NewAssembler(uAddr)
	ua.JmpReg(isa.RDI)
	installCode(t, m, ua)

	// Train: user jmp* to the kernel target faults; catch and repeat.
	for i := 0; i < 3; i++ {
		m.Regs[isa.RDI] = tAddr
		res := m.RunAt(uAddr, 10)
		if res.Reason != StopFault {
			t.Fatalf("training expected fault, got %v", res)
		}
	}

	tPA, f := m.KernelAS.Translate(tAddr, mem.AccessRead, false)
	if f != nil {
		t.Fatal(f)
	}
	m.Hier.FlushLine(tPA)
	m.Uop.Flush(tAddr)

	// Victim: user program issues the syscall; the kernel victim executes.
	sa := isa.NewAssembler(0x480000)
	sa.Syscall()
	sa.Hlt()
	installCode(t, m, sa)
	if res := m.RunAt(0x480000, 200); res.Reason != StopHalt {
		t.Fatalf("victim run: %v", res)
	}

	if !m.Hier.L1I.Present(tPA) && !m.Hier.L2.Present(tPA) {
		t.Fatal("AutoIBRS blocked the IF prefetch; O5 not reproduced")
	}
	if m.Uop.Present(tAddr) {
		t.Fatal("AutoIBRS allowed decode of the rejected prediction")
	}
	if m.Debug.PrefetchOnRejectedPrediction == 0 {
		t.Fatal("no rejected-prediction prefetch recorded")
	}

	// Control: with AutoIBRS off, the prediction is used (full phantom).
	m.MSR.AutoIBRS = false
	m.Hier.FlushLine(tPA)
	m.Uop.Flush(tAddr)
	if res := m.RunAt(0x480000, 200); res.Reason != StopHalt {
		t.Fatalf("control run: %v", res)
	}
	if !m.Uop.Present(tAddr) {
		t.Fatal("without AutoIBRS the kernel victim should decode the target")
	}
}

func TestStraightLineSpeculationOnRet(t *testing.T) {
	// Table 1 footnote c: training non-branch at a ret victim (i.e. no
	// prediction, empty RSB) makes AMD parts speculate past the return.
	m := newTestMachine(t, uarch.Zen2())
	probeVA := uint64(0x600000)
	installData(t, m, probeVA, mem.PageSize)

	a := isa.NewAssembler(0x400000)
	a.MovImm(isa.RSP, 0x700000+0x800)
	a.MovImm(isa.R9, 0x400800) // manual return target
	a.Push(isa.R9)
	a.Ret()
	// Straight-line bytes after the ret: a load of the probe buffer.
	a.Load(isa.RAX, isa.R8, 0)
	a.Hlt()
	a.Org(0x400800)
	a.Hlt()
	installCode(t, m, a)
	installData(t, m, 0x700000, mem.PageSize)

	probePA := paOf(t, m, probeVA)
	m.Hier.FlushLine(probePA)
	m.Regs[isa.R8] = probeVA
	res := m.RunAt(0x400000, 100)
	if res.Reason != StopHalt {
		t.Fatalf("run: %v", res)
	}
	if !m.Hier.L1D.Present(probePA) && !m.Hier.L2.Present(probePA) {
		t.Fatal("no straight-line speculation signal on Zen2")
	}

	// Intel profile: no SLS.
	m2 := newTestMachine(t, uarch.Intel13())
	installCode(t, m2, a)
	installData(t, m2, 0x700000, mem.PageSize)
	installData(t, m2, probeVA, mem.PageSize)
	probePA2 := paOf(t, m2, probeVA)
	m2.Hier.FlushLine(probePA2)
	m2.Regs[isa.R8] = probeVA
	if res := m2.RunAt(0x400000, 100); res.Reason != StopHalt {
		t.Fatalf("intel run: %v", res)
	}
	if m2.Hier.L1D.Present(probePA2) || m2.Hier.L2.Present(probePA2) {
		t.Fatal("Intel profile shows straight-line speculation")
	}
}

func TestSpectreConditionalWindow(t *testing.T) {
	// Classic Spectre-PHT: train a jcc taken, then flip the condition;
	// the wrong path (taken side) must leave a D-cache footprint on every
	// profile (backend windows are long everywhere).
	for _, p := range []*uarch.Profile{uarch.Zen2(), uarch.Zen4(), uarch.Intel13()} {
		t.Run(p.Name, func(t *testing.T) {
			m := newTestMachine(t, p)
			probeVA := uint64(0x600000)
			installData(t, m, probeVA, mem.PageSize)

			a := isa.NewAssembler(0x400000)
			a.AluImm(isa.AluCmp, isa.RCX, 10) // CF = rcx < 10
			a.Jcc(isa.CondB, "body")
			a.Hlt()
			a.Label("body")
			a.Load(isa.RAX, isa.R8, 0)
			a.Hlt()
			installCode(t, m, a)

			probePA := paOf(t, m, probeVA)
			m.Regs[isa.R8] = probeVA

			// Train taken.
			for i := 0; i < 4; i++ {
				m.Regs[isa.RCX] = 1
				if res := m.RunAt(0x400000, 100); res.Reason != StopHalt {
					t.Fatalf("training: %v", res)
				}
			}
			m.Hier.FlushLine(probePA)
			// Victim: condition now false; branch predicted taken.
			m.Regs[isa.RCX] = 50
			if res := m.RunAt(0x400000, 100); res.Reason != StopHalt {
				t.Fatalf("victim: %v", res)
			}
			if !m.Hier.L1D.Present(probePA) && !m.Hier.L2.Present(probePA) {
				t.Fatal("no Spectre-PHT wrong-path load")
			}
			if m.Debug.BackendResteers == 0 {
				t.Fatal("no backend resteer recorded")
			}
		})
	}
}

func TestIBPBBlocksPhantom(t *testing.T) {
	f := buildPhantomFixture(t, uarch.Zen2())
	f.train(t, 3)
	f.m.IBPB()
	f.flushSignals()
	f.runVictim(t)
	fetch, decode, exec := f.signals()
	if fetch || decode || exec {
		t.Fatalf("IBPB did not flush predictions: IF=%v ID=%v EX=%v", fetch, decode, exec)
	}
}

func TestTimedProbesDistinguishHitMiss(t *testing.T) {
	m := newTestMachine(t, uarch.Zen2())
	installData(t, m, 0x600000, mem.PageSize)
	cold, ok := m.TimedLoad(0x600000)
	if !ok {
		t.Fatal("TimedLoad failed")
	}
	warm, _ := m.TimedLoad(0x600000)
	if cold <= warm {
		t.Fatalf("cold=%d warm=%d", cold, warm)
	}
	m.FlushVA(0x600000)
	reflushed, _ := m.TimedLoad(0x600000)
	if reflushed <= warm {
		t.Fatalf("flush did not slow reload: %d vs warm %d", reflushed, warm)
	}
}
