package pipeline

import (
	"testing"

	"phantom/internal/uarch"
)

func TestTracerCapturesPhantomEpisode(t *testing.T) {
	f := buildPhantomFixture(t, uarch.Zen2())
	tr := NewRingTracer(256)
	f.m.Tracer = tr

	f.train(t, 2)
	tr.Reset()
	f.flushSignals()
	f.runVictim(t)

	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// The victim run must show: a prediction hit at B, wrong-path fetch/
	// decode/load at C and the probe, then a frontend resteer.
	var sawPred, sawSpecFetch, sawSpecLoad, sawResteer bool
	var predCycle, resteerCycle uint64
	for _, e := range events {
		switch e.Kind {
		case EvPredHit:
			if e.VA == f.bAddr {
				sawPred = true
				predCycle = e.Cycle
			}
		case EvSpecFetch:
			if e.VA == f.cAddr&^63 {
				sawSpecFetch = true
			}
		case EvSpecLoad:
			if e.VA == f.probeVA {
				sawSpecLoad = true
			}
		case EvResteerFrontend:
			sawResteer = true
			resteerCycle = e.Cycle
		}
	}
	if !sawPred || !sawSpecFetch || !sawSpecLoad || !sawResteer {
		t.Fatalf("missing events: pred=%v fetch=%v load=%v resteer=%v\n%v",
			sawPred, sawSpecFetch, sawSpecLoad, sawResteer, events)
	}
	if resteerCycle < predCycle {
		t.Fatal("resteer recorded before the prediction that caused it")
	}
	// Chronological ordering across the whole trace.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestRingTracerWrapAround(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d", len(events))
	}
	for i, e := range events {
		if e.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle %d, want %d", i, e.Cycle, 6+i)
		}
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestFilterEvents(t *testing.T) {
	events := []Event{
		{Kind: EvPredHit}, {Kind: EvSpecLoad}, {Kind: EvBranch}, {Kind: EvSpecLoad},
	}
	got := FilterEvents(events, EvSpecLoad)
	if len(got) != 2 {
		t.Fatalf("filtered %d", len(got))
	}
	if len(FilterEvents(events)) != 0 {
		t.Fatal("empty filter matched")
	}
}

func TestEventStringers(t *testing.T) {
	for k := EventKind(0); k <= EvFault; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
		e := Event{Cycle: 1, Kind: k, VA: 0x1000, Aux: 1}
		if e.String() == "" {
			t.Fatalf("event %v has no string", k)
		}
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Without a tracer the machine must behave identically (emit is a
	// no-op); compare cycle counts with and without a tracer attached.
	run := func(attach bool) uint64 {
		f := buildPhantomFixture(t, uarch.Zen2())
		if attach {
			f.m.Tracer = NewRingTracer(1024)
		}
		f.train(t, 2)
		f.flushSignals()
		f.runVictim(t)
		return f.m.Cycle
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("tracer changed timing: %d vs %d", a, b)
	}
}
