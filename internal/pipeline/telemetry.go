package pipeline

import "phantom/internal/telemetry"

// Harness telemetry for the interpreter. The Machine already maintains
// the modeled PerfCounters (attacker-visible) and DebugCounters
// (simulator ground truth); telemetry wants the same event stream
// aggregated across every machine in a sweep, without adding atomic
// operations to the per-instruction hot path. So each machine batches:
// it remembers the counter values it last reported (telemetryBaseline)
// and flushes the deltas into the hub's sharded counters at Run
// boundaries — a handful of uncontended atomic adds per Run call,
// amortized over the hundreds-to-millions of instructions a Run
// interprets. Reading the counters perturbs nothing: no modeled cycles
// are charged and no modeled structure is touched, preserving the
// telemetry parity invariant.

// telemetryBaseline snapshots the counter values already flushed.
type telemetryBaseline struct {
	instructions uint64
	cycles       uint64
	debug        DebugCounters
}

// flushTelemetry reports the counter deltas since the previous flush to
// the active hub. A no-op (one nil check) when telemetry is disabled.
func (m *Machine) flushTelemetry() {
	t := m.tstat
	if t == nil {
		return
	}
	sh := m.tshard
	t.Runs.Inc(sh)
	t.Instructions.Add(sh, m.Perf.Instructions-m.tlast.instructions)
	t.Cycles.Add(sh, m.Cycle-m.tlast.cycles)
	d, last := &m.Debug, &m.tlast.debug
	t.FrontendResteers.Add(sh, d.FrontendResteers-last.FrontendResteers)
	t.BackendResteers.Add(sh, d.BackendResteers-last.BackendResteers)
	t.TransientFetchLines.Add(sh, d.TransientFetchLines-last.TransientFetchLines)
	t.TransientDecodes.Add(sh, d.TransientDecodes-last.TransientDecodes)
	t.PredecodeHits.Add(sh, d.PredecodeHits-last.PredecodeHits)
	t.PredecodeMisses.Add(sh, d.PredecodeMisses-last.PredecodeMisses)
	t.Faults.Add(sh, d.Faults-last.Faults)
	m.tlast = telemetryBaseline{
		instructions: m.Perf.Instructions,
		cycles:       m.Cycle,
		debug:        m.Debug,
	}
}

// attachTelemetry hooks a freshly built machine to the active hub (nil
// handles when disabled) and counts the boot.
func (m *Machine) attachTelemetry() {
	m.tstat, m.tshard = telemetry.MachineStats()
	if m.tstat != nil {
		m.tstat.Boots.Inc(m.tshard)
	}
}

// countTimedProbe tallies one harness-side timed probe (TimedFetch /
// TimedLoad). Probes sit outside the interpreter loop, so a direct
// sharded add is cheap enough here.
func (m *Machine) countTimedProbe() {
	if m.tstat != nil {
		m.tstat.TimedProbes.Inc(m.tshard)
	}
}
