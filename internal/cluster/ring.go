// Package cluster shards the phantom-server keyspace across a static
// set of peers: a consistent-hash ring decides which node owns each
// content-addressed request, and a single-hop HTTP proxy forwards
// requests to their owner.
//
// The design leans on the same property as the rest of the serving
// tier: results are deterministic and content-addressed, so ownership
// only has to be *consistent*, never coordinated. There is no
// membership protocol and no replication — the peer list is a flag,
// every node computes the same ring from it, and a dead peer degrades
// to local computation (the receiving node simulates the answer
// itself) rather than to a client-visible error. The worst case of
// any disagreement or failure is duplicated simulation work, which is
// exactly the single-node status quo.
//
// Ownership is a pure function of (peer IDs, virtual-node count, key):
// the ring hashes peer *IDs*, not addresses, so a fleet keeps its
// ownership map when nodes move hosts or ports, and two processes
// given the same -peers flag always agree. The package reads no wall
// clock — peer health is failure-count based, not timeout based — and
// iterates no map in an order-sensitive path, so it sits in
// phantom-vet's determinism scope.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Peer is one phantom-server node: a stable identity (what the ring
// hashes) and where to reach it.
type Peer struct {
	ID   string
	Addr string // host:port
}

// ParsePeers parses a -peers flag: comma-separated id=host:port
// entries. IDs must be unique; they are the ring's hash inputs, so
// renaming a node remaps its share of the keyspace.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, Addr: addr})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// DefaultVNodes is the per-peer virtual-node count. 128 points per
// peer keeps the ownership split within a few percent of fair and a
// one-peer change remapping close to the ideal 1/N.
const DefaultVNodes = 128

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is a consistent-hash ring over a static peer set. Construct
// with NewRing; the zero value is unusable.
type Ring struct {
	peers  []Peer // sorted by ID
	points []ringPoint
}

// NewRing builds the ring: vnodes points per peer (0 = DefaultVNodes),
// peers sorted by ID first so the ring is identical no matter how the
// caller ordered the list.
func NewRing(peers []Peer, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]Peer(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID == sorted[i-1].ID {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", sorted[i].ID)
		}
	}
	r := &Ring{
		peers:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for pi, p := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s\x00vnode\x00%d", p.ID, v)),
				peer: pi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode hashes is astronomically
		// unlikely, but the tie-break keeps ownership deterministic
		// even then.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hash64 maps a string onto the ring: the first 8 bytes of its
// SHA-256, big-endian. SHA-256 keeps the point distribution uniform
// and is the same stdlib primitive the request keys already use.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the peer owning key: the first virtual node clockwise
// of the key's hash.
func (r *Ring) Owner(key string) Peer {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].peer]
}

// Peers returns the peer set in ID order (a copy).
func (r *Ring) Peers() []Peer {
	return append([]Peer(nil), r.peers...)
}
