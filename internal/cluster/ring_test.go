package cluster

import (
	"fmt"
	"testing"
)

// corpus is a fixed key set shaped like real request keys (hex
// SHA-256 digests are uniform; any deterministic strings do for
// measuring remapping, since the ring hashes them itself).
func corpus(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("request-key-%06d", i)
	}
	return keys
}

func peersN(n int) []Peer {
	out := make([]Peer, n)
	for i := range out {
		out[i] = Peer{ID: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return out
}

func ownersOf(t *testing.T, r *Ring, keys []string) []string {
	t.Helper()
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = r.Owner(k).ID
	}
	return out
}

// TestRingStabilityOnAdd pins the consistent-hashing contract: adding
// one peer to an N-ring remaps only about 1/(N+1) of the keyspace.
// A naive hash-mod-N router remaps ~N/(N+1); the midpoint between the
// two bounds is far from both, so the tolerances below cannot pass on
// a broken ring.
func TestRingStabilityOnAdd(t *testing.T) {
	keys := corpus(4096)
	for _, n := range []int{2, 3, 4, 7} {
		before, err := NewRing(peersN(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(peersN(n+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		a, b := ownersOf(t, before, keys), ownersOf(t, after, keys)
		moved := 0
		for i := range keys {
			if a[i] != b[i] {
				moved++
				// Consistent hashing only ever moves keys TO the new
				// peer on an add; a key hopping between old peers
				// means the ring is unstable.
				if b[i] != fmt.Sprintf("n%d", n+1) {
					t.Fatalf("n=%d: key %s moved %s -> %s, not to the new peer", n, keys[i], a[i], b[i])
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1 / float64(n+1)
		if frac < ideal*0.6 || frac > ideal*1.6 {
			t.Errorf("adding peer to %d-ring remapped %.1f%% of keys, want ~%.1f%%",
				n, 100*frac, 100*ideal)
		}
	}
}

// TestRingStabilityOnRemove is the same contract for the failure/
// decommission direction: removing one peer remaps only that peer's
// ~1/N share, and every remapped key belonged to the removed peer.
func TestRingStabilityOnRemove(t *testing.T) {
	keys := corpus(4096)
	const n = 4
	full, err := NewRing(peersN(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing(peersN(n-1), 0) // drops n4
	if err != nil {
		t.Fatal(err)
	}
	a, b := ownersOf(t, full, keys), ownersOf(t, smaller, keys)
	moved := 0
	for i := range keys {
		if a[i] != b[i] {
			moved++
			if a[i] != "n4" {
				t.Fatalf("key %s moved %s -> %s though its owner was not removed", keys[i], a[i], b[i])
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / n
	if frac < ideal*0.6 || frac > ideal*1.6 {
		t.Errorf("removing 1 of %d peers remapped %.1f%% of keys, want ~%.1f%%", n, 100*frac, 100*ideal)
	}
}

// TestRingDeterministicAcrossConstruction: ownership must not depend
// on peer-list order, vnode insertion order, or anything process-local
// — two nodes given the same -peers flag must agree on every key.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	keys := corpus(1024)
	peers := peersN(5)
	reversed := make([]Peer, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	rotated := append(append([]Peer(nil), peers[2:]...), peers[:2]...)
	base, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ownersOf(t, base, keys)
	for name, order := range map[string][]Peer{"reversed": reversed, "rotated": rotated} {
		r, err := NewRing(order, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := ownersOf(t, r, keys)
		for i := range keys {
			if got[i] != want[i] {
				t.Fatalf("%s peer order changed owner of %s: %s != %s", name, keys[i], got[i], want[i])
			}
		}
	}
}

// TestRingBalance: with DefaultVNodes the per-peer share stays within
// a factor of the fair split, so no node silently does most of the
// simulating.
func TestRingBalance(t *testing.T) {
	keys := corpus(8192)
	r, err := NewRing(peersN(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k).ID]++
	}
	fair := len(keys) / 3
	for _, p := range r.Peers() {
		c := counts[p.ID]
		if c < fair/2 || c > fair*2 {
			t.Errorf("peer %s owns %d of %d keys (fair share %d)", p.ID, c, len(keys), fair)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=127.0.0.1:8437, n2=127.0.0.1:8438,n3=10.0.0.3:80")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[1] != (Peer{ID: "n2", Addr: "127.0.0.1:8438"}) {
		t.Fatalf("ParsePeers = %+v", peers)
	}
	for _, bad := range []string{"", "n1", "n1=", "=addr", "n1=a,n1=b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) succeeded, want error", bad)
		}
	}
}

func TestNewRingRejectsBadPeerSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer set accepted")
	}
	dup := []Peer{{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"}}
	if _, err := NewRing(dup, 0); err == nil {
		t.Error("duplicate peer IDs accepted")
	}
}
