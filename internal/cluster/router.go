package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// ForwardedHeader is the single-hop loop guard: a forwarded request
// carries the sender's node ID in this header, and a node that
// receives it always answers locally — even if its ring disagrees
// about ownership (e.g. mid-rollout with differing peer flags), a
// request can only ever take one extra hop, never cycle.
const ForwardedHeader = "X-Phantom-Forwarded"

// experimentsPath is the endpoint Forward posts to on the owner.
const experimentsPath = "/v1/experiments"

// Config tunes a Router. The zero value of every optional field means
// its documented default.
type Config struct {
	// Self is this node's peer ID; it must appear in Peers.
	Self string
	// Peers is the full static node set, this node included.
	Peers []Peer
	// VNodes is the per-peer virtual-node count; 0 = DefaultVNodes.
	VNodes int
	// Client issues the proxy requests; nil = a plain http.Client.
	// Deadlines come from the request context, not the client.
	Client *http.Client
	// FailureThreshold is how many consecutive Forward failures mark a
	// peer down; 0 = 3.
	FailureThreshold int
	// RetryEvery is the half-open probe cadence for a down peer: every
	// RetryEvery-th request that would have been forwarded to it is
	// allowed through as a probe (success resets the peer to healthy);
	// the rest compute locally without paying a connection timeout.
	// 0 = 8. The cadence is request-count based, not clock based, so
	// recovery behavior is deterministic and testable.
	RetryEvery int
}

// peerState is the health bookkeeping for one peer.
type peerState struct {
	failures int // consecutive Forward failures
	skips    int // forwards skipped while down, drives half-open probes
}

// PeerHealth is one row of Router.Health, in peer-ID order.
type PeerHealth struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Self     bool   `json:"self,omitempty"`
	Healthy  bool   `json:"healthy"`
	Failures int    `json:"failures,omitempty"`
}

// Router owns the cluster view of one node: the ring, this node's
// identity, and passive peer-health tracking. Construct with
// NewRouter. All methods are safe for concurrent use.
type Router struct {
	ring       *Ring
	self       Peer
	client     *http.Client
	threshold  int
	retryEvery int

	mu     sync.Mutex
	states []peerState // parallel to ring.peers
	byID   map[string]int
}

// NewRouter validates cfg and builds the ring.
func NewRouter(cfg Config) (*Router, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 8
	}
	r := &Router{
		ring:       ring,
		client:     cfg.Client,
		threshold:  cfg.FailureThreshold,
		retryEvery: cfg.RetryEvery,
		states:     make([]peerState, len(ring.peers)),
		byID:       make(map[string]int, len(ring.peers)),
	}
	for i, p := range ring.peers {
		r.byID[p.ID] = i
		if p.ID == cfg.Self {
			r.self = p
		}
	}
	if r.self.ID == "" {
		return nil, fmt.Errorf("cluster: self id %q not in peer list", cfg.Self)
	}
	return r, nil
}

// Self returns this node's peer entry.
func (r *Router) Self() Peer { return r.self }

// Solo reports a single-node "cluster": ownership is trivially local,
// so callers can skip the routing path entirely.
func (r *Router) Solo() bool { return len(r.ring.peers) == 1 }

// Owner returns the peer owning key and whether that is this node.
func (r *Router) Owner(key string) (Peer, bool) {
	p := r.ring.Owner(key)
	return p, p.ID == r.self.ID
}

// ShouldTry reports whether a forward to p is worth attempting now.
// Healthy peers always are. A down peer (FailureThreshold consecutive
// failures) is skipped, except that every RetryEvery-th skip is let
// through as a half-open probe so a recovered peer rejoins without any
// operator action. Callers that get false should compute locally.
func (r *Router) ShouldTry(p Peer) bool {
	i, ok := r.byID[p.ID]
	if !ok {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &r.states[i]
	if st.failures < r.threshold {
		return true
	}
	st.skips++
	return st.skips%r.retryEvery == 0
}

// Forward proxies one already-normalized request body to p and returns
// the response body (a service Result in JSON). Network errors and 5xx
// responses count against p's health; 429/503 do not — a busy or
// draining peer is alive, and marking it down would turn routine
// backpressure into false failure detection. Any error means the
// caller should fall back to computing locally.
func (r *Router) Forward(ctx context.Context, p Peer, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+p.Addr+experimentsPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, r.self.ID)
	resp, err := r.client.Do(req)
	if err != nil {
		r.reportDown(p)
		return nil, fmt.Errorf("cluster: forward to %s: %w", p.ID, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		r.reportDown(p)
		return nil, fmt.Errorf("cluster: forward to %s: %w", p.ID, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		r.reportUp(p)
		return out, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Backpressure, not death: the peer answered.
		r.reportUp(p)
		return nil, fmt.Errorf("cluster: peer %s shed the request (%d)", p.ID, resp.StatusCode)
	default:
		r.reportDown(p)
		return nil, fmt.Errorf("cluster: forward to %s: status %d: %s", p.ID, resp.StatusCode, firstLine(out))
	}
}

// reportDown records one failed forward.
func (r *Router) reportDown(p Peer) {
	if i, ok := r.byID[p.ID]; ok {
		r.mu.Lock()
		r.states[i].failures++
		r.mu.Unlock()
	}
}

// reportUp resets p to healthy.
func (r *Router) reportUp(p Peer) {
	if i, ok := r.byID[p.ID]; ok {
		r.mu.Lock()
		r.states[i] = peerState{}
		r.mu.Unlock()
	}
}

// Health snapshots per-peer health in peer-ID order (the /readyz
// payload).
func (r *Router) Health() []PeerHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PeerHealth, len(r.ring.peers))
	for i, p := range r.ring.peers {
		out[i] = PeerHealth{
			ID:       p.ID,
			Addr:     p.Addr,
			Self:     p.ID == r.self.ID,
			Healthy:  r.states[i].failures < r.threshold,
			Failures: r.states[i].failures,
		}
	}
	return out
}

// firstLine clips an error body for inclusion in an error string.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
