package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// newTestRouter builds a two-node router where the remote peer is the
// given handler (or a dead address when handler is nil).
func newTestRouter(t *testing.T, handler http.Handler) (*Router, Peer) {
	t.Helper()
	addr := "127.0.0.1:1" // reserved port: connections fail fast
	if handler != nil {
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		addr = u.Host
	}
	peers := []Peer{{ID: "self", Addr: "127.0.0.1:0"}, {ID: "remote", Addr: addr}}
	r, err := NewRouter(Config{Self: "self", Peers: peers, FailureThreshold: 2, RetryEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	return r, peers[1]
}

// healthOf returns the Health row for one peer ID.
func healthOf(t *testing.T, r *Router, id string) PeerHealth {
	t.Helper()
	for _, h := range r.Health() {
		if h.ID == id {
			return h
		}
	}
	t.Fatalf("no health row for %s", id)
	return PeerHealth{}
}

func TestForwardCarriesLoopGuard(t *testing.T) {
	var gotHeader, gotBody string
	r, remote := newTestRouter(t, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		gotHeader = req.Header.Get(ForwardedHeader)
		b, _ := io.ReadAll(req.Body)
		gotBody = string(b)
		if req.URL.Path != experimentsPath {
			t.Errorf("forward hit %s, want %s", req.URL.Path, experimentsPath)
		}
		w.Write([]byte(`{"id":"abc","output":"ok"}`))
	}))
	out, err := r.Forward(context.Background(), remote, []byte(`{"experiment":"table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if gotHeader != "self" {
		t.Errorf("loop-guard header = %q, want the sender's node id", gotHeader)
	}
	if gotBody != `{"experiment":"table1"}` {
		t.Errorf("forwarded body = %q", gotBody)
	}
	if !strings.Contains(string(out), `"output":"ok"`) {
		t.Errorf("Forward returned %q", out)
	}
}

func TestForwardFailureMarksPeerDownThenProbes(t *testing.T) {
	r, remote := newTestRouter(t, nil) // dead address
	ctx := context.Background()
	// Below the threshold the peer is still worth trying.
	if !r.ShouldTry(remote) {
		t.Fatal("fresh peer reported not worth trying")
	}
	for i := 0; i < 2; i++ { // FailureThreshold = 2
		if _, err := r.Forward(ctx, remote, []byte("{}")); err == nil {
			t.Fatal("forward to dead peer succeeded")
		}
	}
	if h := healthOf(t, r, "remote"); h.Healthy {
		t.Fatalf("health after failures = %+v", h)
	}
	if h := healthOf(t, r, "self"); !h.Healthy || !h.Self {
		t.Fatalf("self health row = %+v", h)
	}
	// Down peer: skipped except every RetryEvery-th (=4th) attempt.
	var tried []bool
	for i := 0; i < 8; i++ {
		tried = append(tried, r.ShouldTry(remote))
	}
	want := []bool{false, false, false, true, false, false, false, true}
	for i := range want {
		if tried[i] != want[i] {
			t.Fatalf("half-open cadence = %v, want %v", tried, want)
		}
	}
}

func TestForwardSuccessResetsHealth(t *testing.T) {
	var fail bool
	r, remote := newTestRouter(t, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if fail {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}"))
	}))
	ctx := context.Background()
	fail = true
	for i := 0; i < 2; i++ {
		r.Forward(ctx, remote, nil) //nolint:errcheck // failures are the point
	}
	if healthOf(t, r, "remote").Healthy {
		t.Fatal("peer healthy after threshold failures")
	}
	fail = false
	if _, err := r.Forward(ctx, remote, nil); err != nil {
		t.Fatal(err)
	}
	if h := healthOf(t, r, "remote"); !h.Healthy || h.Failures != 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
}

// TestBackpressureIsNotFailure: 429/503 answers prove the peer is
// alive; they must not push it toward down.
func TestBackpressureIsNotFailure(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		r, remote := newTestRouter(t, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.WriteHeader(status)
		}))
		ctx := context.Background()
		for i := 0; i < 5; i++ {
			if _, err := r.Forward(ctx, remote, nil); err == nil {
				t.Fatalf("status %d forward reported success", status)
			}
		}
		if h := healthOf(t, r, "remote"); !h.Healthy || h.Failures != 0 {
			t.Fatalf("status %d counted as failure: %+v", status, h)
		}
		if !r.ShouldTry(remote) {
			t.Fatalf("status %d made peer unworthy of trying", status)
		}
	}
}

func TestRouterOwnerAndSolo(t *testing.T) {
	peers := peersN(3)
	r, err := NewRouter(Config{Self: "n2", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if r.Solo() {
		t.Error("3-node router reported solo")
	}
	if r.Self().ID != "n2" {
		t.Errorf("Self = %+v", r.Self())
	}
	sawLocal, sawRemote := false, false
	for _, k := range corpus(64) {
		p, local := r.Owner(k)
		if local != (p.ID == "n2") {
			t.Fatalf("Owner(%s) local flag disagrees with peer %s", k, p.ID)
		}
		sawLocal = sawLocal || local
		sawRemote = sawRemote || !local
	}
	if !sawLocal || !sawRemote {
		t.Error("64-key corpus did not split between local and remote owners")
	}

	solo, err := NewRouter(Config{Self: "only", Peers: []Peer{{ID: "only", Addr: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !solo.Solo() {
		t.Error("single-peer router not solo")
	}
	if _, err := NewRouter(Config{Self: "ghost", Peers: peers}); err == nil {
		t.Error("self outside peer list accepted")
	}
}
