package core

import (
	"fmt"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/kernel"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
)

// Attack is the user-mode attacker context against a booted kernel: it
// owns the cross-privilege aliasing mask (reverse engineered in
// Section 6.2 — derived here from the same linear algebra, see
// btb.CrossPrivAliasMask), the user pages holding training branches, and
// the fault-catching training loop.
type Attack struct {
	K *kernel.Kernel

	// CrossMask aliases a kernel branch source to a user address:
	// userVA = kernelVA ^ CrossMask.
	CrossMask uint64

	trainPages map[uint64]bool // user pages already mapped for training
	stubVA     uint64
}

// NewAttack prepares an attacker context. It fails on profiles whose BTB
// scheme admits no cross-privilege aliasing (the Intel parts), matching
// the paper's finding that exploitation there is blocked by
// privilege-dependent BTB addressing.
func NewAttack(k *kernel.Kernel) (*Attack, error) {
	maskVal, ok := btb.CrossPrivAliasMask(k.M.BTB.Scheme())
	if !ok {
		return nil, fmt.Errorf("core: no cross-privilege BTB aliasing on %s", k.M.Prof)
	}
	return &Attack{K: k, CrossMask: maskVal, trainPages: make(map[uint64]bool)}, nil
}

// TrainSourceFor returns the user-space address whose BTB slot aliases the
// given kernel branch source.
func (a *Attack) TrainSourceFor(kernelVA uint64) uint64 {
	return kernelVA ^ a.CrossMask
}

// InjectPrediction plants a user-trained jmp* prediction that a kernel
// victim instruction at kernelVictim will consume: it writes a `jmp* rdi`
// at the aliasing user address, executes it with RDI=target, and catches
// the page fault that the (kernel-address) target fetch raises — the
// Section 6.2 training technique of Wikner and Razavi [73].
func (a *Attack) InjectPrediction(kernelVictim, target uint64) error {
	m := a.K.M
	u := a.TrainSourceFor(kernelVictim)
	if err := a.ensureTrainPage(u); err != nil {
		return err
	}
	if err := m.UserAS.WriteBytes(u, isa.EncJmpInd(isa.RDI)); err != nil {
		return err
	}
	m.Regs[isa.RDI] = target
	res := m.RunAt(u, 8)
	// The branch itself retires (training the BTB); the fetch of the
	// kernel target faults, which the attacker's signal handler absorbs.
	if res.Reason != pipeline.StopFault {
		return fmt.Errorf("core: training run did not fault as expected: %v", res)
	}
	return nil
}

// ensureTrainPage maps (once) the user page that contains u.
func (a *Attack) ensureTrainPage(u uint64) error {
	page := u &^ (mem.PageSize - 1)
	if a.trainPages[page] {
		return nil
	}
	blob := make([]byte, mem.PageSize)
	for i := range blob {
		blob[i] = 0xcc
	}
	if err := a.K.MapUserCode(page, blob); err != nil {
		return err
	}
	a.trainPages[page] = true
	return nil
}

// Syscall issues a system call (the victim invocation step of every
// exploit).
func (a *Attack) Syscall(nr uint64, args ...uint64) error {
	_, err := a.K.Syscall(nr, args...)
	return err
}

// NominalGHz converts simulated cycles to seconds for reporting: the
// modeled parts run at ~3 GHz.
const NominalGHz = 3.0

// CyclesToSeconds converts a cycle count to wall-clock seconds at the
// nominal clock.
func CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (NominalGHz * 1e9)
}
