package core

import (
	"fmt"

	"phantom/internal/isa"
	"phantom/internal/stats"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// This file implements the conventional-Spectre baseline the paper
// contrasts Phantom against: classic Spectre-V2 [34] (Table 1 cell a),
// where training and victim are both indirect branches and the
// misprediction resolves at *execute*, leaving a window "wide enough to
// queue up several secret-dependent memory loads". Phantom's whole point
// is that its windows are much shorter (frontend-resteered) yet still
// exploitable; having the baseline in the same harness lets tests and
// benchmarks compare the two regimes directly.

// SpectreV2Result reports a baseline Spectre-V2 leak run.
type SpectreV2Result struct {
	Profile  string
	Bytes    int
	Accuracy stats.Accuracy
	// WindowLoads is the number of dependent loads the wrong path
	// executed per attempt (two for the classic gadget: secret fetch +
	// reload-buffer encode), measured from ground truth for reporting.
	WindowLoads uint64
}

func (r *SpectreV2Result) String() string {
	return fmt.Sprintf("Spectre-V2 baseline on %s: %d bytes at %s (%d wrong-path loads/attempt)",
		r.Profile, r.Bytes, &r.Accuracy, r.WindowLoads)
}

// RunSpectreV2 runs a classic user-space Spectre-V2 attack on the given
// profile: a victim with an indirect call whose architectural target is a
// benign function; the attacker trains the BTB (same class, different
// target) toward a conventional two-load disclosure gadget, then recovers
// a secret byte per attempt with Flush+Reload. It works on every modeled
// part — including Zen 3/4 and Intel, whose Phantom windows cannot
// execute — because same-class indirect mispredictions resolve at the
// backend.
func RunSpectreV2(p *uarch.Profile, seed int64, nbytes int) (*SpectreV2Result, error) {
	telemetry.CountExperiment("spectre_v2")
	env := newUserEnv(p, seed)
	m := env.m
	if nbytes <= 0 {
		nbytes = 16
	}

	const (
		victimEntry = uint64(0x5400000000)
		benignFn    = uint64(0x5400010000)
		gadgetAddr  = uint64(0x5400020000)
		secretVA    = uint64(0x5500000000)
		reloadVA    = uint64(0x5500100000)
		stackVA     = uint64(0x5500200000)
	)

	// Victim: an indirect call through RDI to a benign function, like a
	// C++ virtual dispatch. The secret pointer sits in R9 — register
	// state the attacker cannot read architecturally.
	va := isa.NewAssembler(victimEntry)
	va.MovImm(isa.RSP, stackVA+0x800)
	va.Label("vcall")
	va.CallReg(isa.RDI)
	va.Hlt()
	if err := env.mapAsm(va); err != nil {
		return nil, err
	}

	bf := isa.NewAssembler(benignFn)
	bf.Ret()
	if err := env.mapAsm(bf); err != nil {
		return nil, err
	}

	// Conventional disclosure gadget: TWO dependent loads — fetch the
	// secret byte, then encode it in the reload buffer. This is exactly
	// what an MDS gadget (Listing 4) lacks.
	ga := isa.NewAssembler(gadgetAddr)
	ga.Load(isa.RAX, isa.R9, 0)          // secret value
	ga.AluImm(isa.AluAnd, isa.RAX, 0xff) // one byte
	ga.Shl(isa.RAX, 6)                   // cache-line aligned (bits [13:6])
	ga.AddReg(isa.RAX, isa.R10)          // + reload buffer
	ga.Load(isa.RBX, isa.RAX, 0)         // secret-dependent load
	ga.Hlt()
	if err := env.mapAsm(ga); err != nil {
		return nil, err
	}

	if err := env.mapData(secretVA, 4096); err != nil {
		return nil, err
	}
	if err := env.mapData(reloadVA, 256*64); err != nil {
		return nil, err
	}
	if err := env.mapData(stackVA, 8192); err != nil {
		return nil, err
	}

	// Plant the secret.
	secret := make([]byte, nbytes)
	rng := m.RNG()
	rng.Read(secret)
	for i, b := range secret {
		pa, err := env.pa(secretVA + uint64(i))
		if err != nil {
			return nil, err
		}
		m.Phys.Write8(pa, b)
	}

	_ = va.MustAddr("vcall") // the indirect call site; training targets it implicitly

	res := &SpectreV2Result{Profile: p.String(), Bytes: nbytes}
	loadsBefore := m.Debug.TransientLoads

	for i := 0; i < nbytes; i++ {
		// Train: run the victim with RDI = gadget a few times, so the BTB
		// learns the indirect call's target as the gadget.
		for t := 0; t < 3; t++ {
			m.Regs[isa.RDI] = gadgetAddr
			m.Regs[isa.R9] = secretVA // harmless during training
			m.Regs[isa.R10] = reloadVA
			if err := env.run(victimEntry, 100); err != nil {
				return nil, err
			}
		}
		// Flush the reload buffer.
		for v := 0; v < 256; v++ {
			m.FlushVA(reloadVA + uint64(v)*64)
		}
		// Victim run: architectural target is benign, but the trained
		// prediction sends the wrong path into the gadget with the
		// secret pointer in R9.
		m.Regs[isa.RDI] = benignFn
		m.Regs[isa.R9] = secretVA + uint64(i)
		m.Regs[isa.R10] = reloadVA
		if err := env.run(victimEntry, 100); err != nil {
			return nil, err
		}
		// Reload.
		bestV, bestLat := -1, 1<<30
		for v := 0; v < 256; v++ {
			lat, ok := m.TimedLoad(reloadVA + uint64(v)*64)
			if ok && lat < bestLat {
				bestV, bestLat = v, lat
			}
		}
		got := byte(0)
		if bestV >= 0 && bestLat < fetchLatencyThreshold(p) {
			got = byte(bestV)
		}
		res.Accuracy.Add(got == secret[i])

		// Untrain so the next iteration's training starts clean.
		m.IBPB()
	}
	attempts := uint64(nbytes)
	res.WindowLoads = (m.Debug.TransientLoads - loadsBefore) / attempts
	return res, nil
}
