package core

import (
	"fmt"
	"sort"
	"strings"

	"phantom/internal/kernel"
	"phantom/internal/stats"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// MitigationReport collects the Section 6.3 / Section 8 evaluation for one
// microarchitecture.
type MitigationReport struct {
	Profile string

	// SuppressBPOnNonBr evaluation (Observation O4).
	SuppressSupported bool
	BaselineReach     Reach // jmp*-trained non-branch victim, MSR clear
	SuppressReach     Reach // same with the MSR set: EX must vanish, IF/ID stay
	// BranchVictimReachWithMSR shows P2/P3's escape hatch: with the MSR
	// set, victims that *are* branches still reach execute on Zen 1/2
	// ("given that branches are common in software, the impact of this
	// mitigation is negligible").
	BranchVictimReachWithMSR Reach
	// OverheadPct is the workload-suite geometric-mean slowdown with the
	// bit set (paper: 0.69% single-core UnixBench on Zen 2).
	OverheadPct float64

	// AutoIBRS evaluation (Observation O5).
	AutoIBRSSupported bool
	// AutoIBRSCrossPrivIF reports whether a user-injected prediction still
	// causes a kernel-mode instruction fetch with AutoIBRS on.
	AutoIBRSCrossPrivIF bool
	// AutoIBRSCrossPrivID reports whether it reaches decode (it must not).
	AutoIBRSCrossPrivID bool

	// IBPB evaluation (Section 8.2): with a full-predictor-flush IBPB on
	// kernel entry, no primitive survives.
	IBPBBlocksPhantom bool
	// IBPBOverheadPct is the syscall-workload slowdown with IBPB on entry.
	IBPBOverheadPct float64

	// WaitForDecode evaluation: the paper's hypothetical in-depth fix
	// ("stop predictions until the decoding of the branch source has
	// finished", Section 8.1), which no shipping part implements. The
	// simulator does, so its coverage and cost are measurable.
	WaitForDecodeReach       Reach   // non-branch victim with the bit set: nothing
	WaitForDecodeOverheadPct float64 // workload-suite cost
}

// EvaluateMitigations runs the mitigation experiments on one profile.
func EvaluateMitigations(p *uarch.Profile, seed int64) (*MitigationReport, error) {
	telemetry.CountExperiment("mitigations")
	rep := &MitigationReport{
		Profile:           p.String(),
		SuppressSupported: p.SupportsSuppressBPOnNonBr,
		AutoIBRSSupported: p.SupportsAutoIBRS,
	}

	// --- SuppressBPOnNonBr: observation channels --------------------------
	var err error
	rep.BaselineReach, err = RunComboMSR(p, seed, KindJmpInd, KindNonBranch, 4, 0, uarch.MSRState{})
	if err != nil {
		return nil, err
	}
	if p.SupportsSuppressBPOnNonBr {
		msr := uarch.MSRState{SuppressBPOnNonBr: true}
		rep.SuppressReach, err = RunComboMSR(p, seed, KindJmpInd, KindNonBranch, 4, 0, msr)
		if err != nil {
			return nil, err
		}
		rep.BranchVictimReachWithMSR, err = RunComboMSR(p, seed, KindJmpInd, KindJmp, 4, 0, msr)
		if err != nil {
			return nil, err
		}
		rep.OverheadPct, err = SuppressOverhead(p, seed)
		if err != nil {
			return nil, err
		}
	}

	// --- AutoIBRS: cross-privilege IF persists ----------------------------
	if p.SupportsAutoIBRS {
		ifSig, idSig, err := crossPrivReach(p, seed, true)
		if err != nil {
			return nil, err
		}
		rep.AutoIBRSCrossPrivIF = ifSig
		rep.AutoIBRSCrossPrivID = idSig
	}

	// --- IBPB on kernel entry blocks everything ---------------------------
	blocked, overhead, err := ibpbEvaluation(p, seed)
	if err != nil {
		return nil, err
	}
	rep.IBPBBlocksPhantom = blocked
	rep.IBPBOverheadPct = overhead

	// --- The hypothetical wait-for-decode frontend (Section 8.1) ----------
	rep.WaitForDecodeReach, err = RunComboMSR(p, seed, KindJmpInd, KindNonBranch, 4, 0,
		uarch.MSRState{WaitForDecode: true})
	if err != nil {
		return nil, err
	}
	rep.WaitForDecodeOverheadPct, err = waitForDecodeOverhead(p, seed)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// waitForDecodeOverhead measures the workload-suite cost of the
// hypothetical Section 8.1 frontend that validates every prediction
// against the decoded branch source before steering.
func waitForDecodeOverhead(p *uarch.Profile, seed int64) (float64, error) {
	measure := func(on bool) (map[string]float64, error) {
		k, err := kernel.Boot(p, kernel.Config{Seed: seed, NoiseLevel: 0})
		if err != nil {
			return nil, err
		}
		k.M.MSR.WaitForDecode = on
		ws, err := k.InstallWorkloads()
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		for _, w := range ws {
			var runs []float64
			for r := 0; r < 5; r++ {
				c, err := k.RunWorkload(w)
				if err != nil {
					return nil, err
				}
				runs = append(runs, float64(c))
			}
			out[w.Name] = stats.Median(runs)
		}
		return out, nil
	}
	off, err := measure(false)
	if err != nil {
		return 0, err
	}
	on, err := measure(true)
	if err != nil {
		return 0, err
	}
	return overheadPct(off, on), nil
}

// overheadPct reduces per-workload timings to the geometric-mean
// slowdown percentage. Workloads are reduced in sorted name order:
// float multiplication rounds differently under reassociation, so map
// iteration order would let the same measurements print different
// digits run to run.
func overheadPct(off, on map[string]float64) float64 {
	names := make([]string, 0, len(off))
	for name := range off {
		names = append(names, name)
	}
	sort.Strings(names)
	var ratios []float64
	for _, name := range names {
		if base := off[name]; base > 0 {
			ratios = append(ratios, on[name]/base)
		}
	}
	return (stats.GeoMean(ratios) - 1) * 100
}

// SuppressOverhead measures the SuppressBPOnNonBr performance cost: each
// workload runs 5 times per MSR state (median), and the geometric mean of
// the slowdowns is reported as a percentage — the UnixBench methodology of
// Section 6.3.
func SuppressOverhead(p *uarch.Profile, seed int64) (float64, error) {
	measure := func(msrOn bool) (map[string]float64, error) {
		k, err := kernel.Boot(p, kernel.Config{Seed: seed, NoiseLevel: 0})
		if err != nil {
			return nil, err
		}
		if msrOn && !k.M.WriteMSRSuppressBPOnNonBr(true) {
			return nil, fmt.Errorf("core: MSR write failed on %s", p)
		}
		ws, err := k.InstallWorkloads()
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64)
		for _, w := range ws {
			var runs []float64
			for r := 0; r < 5; r++ {
				c, err := k.RunWorkload(w)
				if err != nil {
					return nil, err
				}
				runs = append(runs, float64(c))
			}
			out[w.Name] = stats.Median(runs)
		}
		return out, nil
	}
	off, err := measure(false)
	if err != nil {
		return 0, err
	}
	on, err := measure(true)
	if err != nil {
		return 0, err
	}
	return overheadPct(off, on), nil
}

// crossPrivReach injects a user prediction at the kernel getpid nop site
// and measures IF (I-cache Prime+Probe) and ID (op-cache miss counting
// around the victim syscall) of a kernel-text target.
func crossPrivReach(p *uarch.Profile, seed int64, autoIBRS bool) (ifSig, idSig bool, err error) {
	k, err := kernel.Boot(p, kernel.Config{Seed: seed, NoiseLevel: 0})
	if err != nil {
		return false, false, err
	}
	k.M.MSR.AutoIBRS = autoIBRS
	a, err := NewAttack(k)
	if err != nil {
		return false, false, err
	}
	victim := k.ImageBase + kernel.GetpidSiteOff
	const set = 29
	target := k.ImageBase + 0x5000 + uint64(set)<<6

	pp, err := NewIPrimeProbe(k, 0x7fb000000000, set)
	if err != nil {
		return false, false, err
	}

	// Baseline probe time and op-cache misses without injection.
	pp.Prime()
	if err := a.Syscall(kernel.SysGetpid); err != nil {
		return false, false, err
	}
	base := pp.Probe()
	preMiss := k.M.Perf.UopCacheMisses
	if err := a.Syscall(kernel.SysGetpid); err != nil {
		return false, false, err
	}
	baseMiss := k.M.Perf.UopCacheMisses - preMiss

	// Measurement with injection.
	pp.Prime()
	if err := a.InjectPrediction(victim, target); err != nil {
		return false, false, err
	}
	preMiss = k.M.Perf.UopCacheMisses
	if err := a.Syscall(kernel.SysGetpid); err != nil {
		return false, false, err
	}
	injMiss := k.M.Perf.UopCacheMisses - preMiss
	probe := pp.Probe()

	ifSig = probe > base+p.L2.HitLatency/2
	idSig = injMiss > baseMiss
	return ifSig, idSig, nil
}

// ibpbEvaluation turns on IBPB-on-kernel-entry and confirms that the P1
// probe no longer sees a signal, plus its syscall-path overhead.
func ibpbEvaluation(p *uarch.Profile, seed int64) (blocked bool, overheadPct float64, err error) {
	run := func(ibpb bool) (sig bool, syscallCycles float64, err error) {
		k, err := kernel.Boot(p, kernel.Config{Seed: seed, NoiseLevel: 0})
		if err != nil {
			return false, 0, err
		}
		k.M.MSR.IBPBOnKernelEntry = ibpb
		a, err := NewAttack(k)
		if err != nil {
			// Intel profiles cannot even build the attack; treat as
			// blocked with unmeasured overhead.
			return false, 0, nil
		}
		victim := k.ImageBase + kernel.GetpidSiteOff
		const set = 29
		target := k.ImageBase + 0x5000 + uint64(set)<<6
		pp, ppErr := NewIPrimeProbe(k, 0x7fb000000000, set)
		if ppErr != nil {
			return false, 0, ppErr
		}
		pp.Prime()
		if err := a.Syscall(kernel.SysGetpid); err != nil {
			return false, 0, err
		}
		base := pp.Probe()

		pp.Prime()
		if err := a.InjectPrediction(victim, target); err != nil {
			return false, 0, err
		}
		start := k.M.Cycle
		if err := a.Syscall(kernel.SysGetpid); err != nil {
			return false, 0, err
		}
		syscallCycles = float64(k.M.Cycle - start)
		return pp.Probe() > base+p.L2.HitLatency/2, syscallCycles, nil
	}
	sigOff, cycOff, err := run(false)
	if err != nil {
		return false, 0, err
	}
	sigOn, cycOn, err := run(true)
	if err != nil {
		return false, 0, err
	}
	if cycOff > 0 {
		overheadPct = (cycOn/cycOff - 1) * 100
	}
	return sigOff && !sigOn, overheadPct, nil
}

// String renders the report.
func (r *MitigationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mitigation evaluation — %s\n", r.Profile)
	fmt.Fprintf(&b, "  SuppressBPOnNonBr supported: %v\n", r.SuppressSupported)
	fmt.Fprintf(&b, "    non-branch victim reach, MSR clear: %v\n", r.BaselineReach)
	if r.SuppressSupported {
		fmt.Fprintf(&b, "    non-branch victim reach, MSR set:   %v  (O4: IF/ID persist)\n", r.SuppressReach)
		fmt.Fprintf(&b, "    branch victim reach, MSR set:       %v\n", r.BranchVictimReachWithMSR)
		fmt.Fprintf(&b, "    workload-suite overhead:            %.2f%%\n", r.OverheadPct)
	}
	fmt.Fprintf(&b, "  AutoIBRS supported: %v\n", r.AutoIBRSSupported)
	if r.AutoIBRSSupported {
		fmt.Fprintf(&b, "    cross-priv IF with AutoIBRS: %v  (O5: not prevented)\n", r.AutoIBRSCrossPrivIF)
		fmt.Fprintf(&b, "    cross-priv ID with AutoIBRS: %v\n", r.AutoIBRSCrossPrivID)
	}
	fmt.Fprintf(&b, "  IBPB-on-entry blocks Phantom: %v (syscall overhead %.0f%%)\n",
		r.IBPBBlocksPhantom, r.IBPBOverheadPct)
	fmt.Fprintf(&b, "  hypothetical wait-for-decode frontend (§8.1): reach %v, overhead %.2f%%\n",
		r.WaitForDecodeReach, r.WaitForDecodeOverheadPct)
	return b.String()
}
