package core

import (
	"testing"

	"phantom/internal/kernel"
	"phantom/internal/uarch"
)

func TestP1DistinguishesMappedFromUnmapped(t *testing.T) {
	k := bootZen2(t, 21, 1) // calibrated noise: primitives must still work
	p, err := NewPrimitives(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Symbol("covert_branch_site")
	const set = 33
	pp, err := NewIPrimeProbe(k, 0x7f1000000000, set)
	if err != nil {
		t.Fatal(err)
	}
	invoke := func() error { return p.A.Syscall(kernel.SysCovertBranch, 0, 0) }

	mapped := k.ImageBase + 0x3000 + uint64(set)<<6
	unmapped := kernel.KernelRegionBase - 0x40000000 + uint64(set)<<6

	hits, misses := 0, 0
	for i := 0; i < 8; i++ {
		got, err := p.P1DetectExecutable(victim, mapped, pp, invoke)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			hits++
		}
		got, err = p.P1DetectExecutable(victim, unmapped, pp, invoke)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			misses++
		}
	}
	if hits < 6 {
		t.Errorf("P1 detected the mapped target only %d/8 times", hits)
	}
	if misses > 2 {
		t.Errorf("P1 false-positived on the unmapped target %d/8 times", misses)
	}
}

func TestP1DetectsNXAsUnmapped(t *testing.T) {
	// The P1/P2 distinction: physmap is mapped but NX, so P1 sees nothing.
	k := bootZen2(t, 22, 0)
	p, err := NewPrimitives(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Symbol("covert_branch_site")
	nxTarget := k.PhysmapVA(0x40000000) | (33 << 6)
	pp, err := NewIPrimeProbe(k, 0x7f1000000000, 33)
	if err != nil {
		t.Fatal(err)
	}
	invoke := func() error { return p.A.Syscall(kernel.SysCovertBranch, 0, 0) }
	got, err := p.P1DetectExecutable(victim, nxTarget, pp, invoke)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("P1 signalled on a mapped but non-executable target")
	}
}

func TestP2DistinguishesMappedFromUnmapped(t *testing.T) {
	k := bootZen2(t, 23, 1)
	p, err := NewPrimitives(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Symbol("covert_branch_site")
	gadget := k.Symbol("covert_exec_gadget") // loads [r13]; r13 <- rsi

	probePA := uint64(0x40000000) | 0x840
	hugeVA := uint64(0x7f2000000000)
	if _, err := k.AllocUserHuge(hugeVA); err != nil {
		t.Fatal(err)
	}
	pp := NewDPrimeProbe(k.M, hugeVA, probePA)
	invoke := func(addr uint64) error {
		return p.A.Syscall(kernel.SysCovertBranch, 0, addr)
	}

	mapped := k.PhysmapVA(probePA)
	unmapped := kernel.PhysmapRegionBase - 0x2000 + 0x840

	hits, misses := 0, 0
	for i := 0; i < 8; i++ {
		got, err := p.P2DetectMapped(victim, gadget, pp, invoke, mapped)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			hits++
		}
		got, err = p.P2DetectMapped(victim, gadget, pp, invoke, unmapped)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			misses++
		}
	}
	if hits < 6 {
		t.Errorf("P2 detected mapped memory only %d/8 times", hits)
	}
	if misses > 2 {
		t.Errorf("P2 false-positived %d/8 times", misses)
	}
}

func TestP2DeadWithoutExecuteWindow(t *testing.T) {
	k, err := kernel.Boot(uarch.Zen3(), kernel.Config{Seed: 24, NoiseLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimitives(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Symbol("covert_branch_site")
	gadget := k.Symbol("covert_exec_gadget")
	probePA := uint64(0x40000000) | 0x840
	hugeVA := uint64(0x7f2000000000)
	if _, err := k.AllocUserHuge(hugeVA); err != nil {
		t.Fatal(err)
	}
	pp := NewDPrimeProbe(k.M, hugeVA, probePA)
	invoke := func(addr uint64) error {
		return p.A.Syscall(kernel.SysCovertBranch, 0, addr)
	}
	got, err := p.P2DetectMapped(victim, gadget, pp, invoke, k.PhysmapVA(probePA))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("P2 signalled on Zen3, which has no Phantom execute window")
	}
}

func TestP3LeaksRegisterByte(t *testing.T) {
	// Leak the low byte of the register the MDS module copies RSI into,
	// via the P3 disclosure gadget. (The full MDS exploit composes this
	// with a Spectre window; here the register value is architectural.)
	k := bootZen2(t, 25, 0)
	p, err := NewPrimitives(k)
	if err != nil {
		t.Fatal(err)
	}

	hugeVA := uint64(0x7f3000000000)
	pa, err := k.AllocUserHuge(hugeVA)
	if err != nil {
		t.Fatal(err)
	}
	reloadKVA := k.PhysmapVA(pa)

	// Victim: the covert module's direct branch, with R13 <- RSI. The
	// "register to leak" here is R9, which the MDS disclosure gadget
	// reads; use the MDS module instead: it loads R9 = array[idx]
	// architecturally for in-bounds idx.
	victim := k.Symbol("mds_call_site")
	gadget := k.Symbol("mds_disclosure")
	secretIdx := uint64(0x37) // array[0x37] = 0x37 (boot pattern), next bytes 0x38..
	invoke := func() error {
		return p.A.Syscall(kernel.SysMDSRead, secretIdx, reloadKVA)
	}

	got, ok, err := p.P3LeakByte(victim, gadget, hugeVA, invoke)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("P3 saw no signal")
	}
	// array[idx] is loaded as a 64-bit little-endian word; its low byte
	// is the array byte at idx.
	want, err := k.M.KernelAS.Read8(k.ArrayBase() + secretIdx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("P3 leaked %#x, want %#x", got, want)
	}
}
