package core

import (
	"context"
	"fmt"
	"strings"

	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// CellStatus distinguishes evaluated matrix cells from the ones the paper
// excludes or annotates.
type CellStatus uint8

// Cell statuses.
const (
	CellEvaluated CellStatus = iota
	// CellSymmetric marks training/victim pairs of identical type where no
	// type confusion exists: (jmp*, jmp*) is classic Spectre-V2 [34],
	// (ret, ret) ordinary return prediction, (non-branch, non-branch) no
	// misprediction at all. Direct jmp/jcc pairs stay evaluated because
	// the paper treats "same type, different displacement" as asymmetric.
	CellSymmetric
)

// MatrixCell is one entry of the Table 1 reproduction.
type MatrixCell struct {
	Training, Victim BranchKind
	Status           CellStatus
	Reach            Reach
	Note             string
}

// MatrixResult is a full 5×5 sweep for one microarchitecture.
type MatrixResult struct {
	Profile *uarch.Profile
	Cells   [NumKinds][NumKinds]MatrixCell
}

// MatrixConfig tunes the Table 1 experiment.
type MatrixConfig struct {
	// Ctx, when non-nil, is checked between cells so a cancelled or
	// expired request aborts the matrix without finishing all 25 cells.
	Ctx    context.Context
	Seed   int64
	Trials int     // per-cell trials (positive and negative each)
	Noise  float64 // machine noise level; 0 = deterministic
	// DisablePredecode runs the cells on the byte-at-a-time reference
	// fetch path (parity testing; results must not change).
	DisablePredecode bool
}

// symmetricCell reports cells excluded from Phantom evaluation.
func symmetricCell(train, victim BranchKind) (bool, string) {
	if train != victim {
		return false, ""
	}
	switch train {
	case KindJmpInd:
		return true, "Spectre-V2 [34]"
	case KindRet:
		return true, "return prediction"
	case KindNonBranch:
		return true, "no misprediction"
	}
	return false, "" // jmp/jcc with different displacement: evaluated
}

// RunMatrix reproduces Table 1 for one profile: every training/victim
// combination, measured through the IF/ID/EX observation channels.
func RunMatrix(p *uarch.Profile, cfg MatrixConfig) (*MatrixResult, error) {
	telemetry.CountExperiment("matrix")
	res := &MatrixResult{Profile: p}
	for tr := BranchKind(0); tr < NumKinds; tr++ {
		for vi := BranchKind(0); vi < NumKinds; vi++ {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			cell := MatrixCell{Training: tr, Victim: vi}
			if sym, note := symmetricCell(tr, vi); sym {
				cell.Status = CellSymmetric
				cell.Note = note
			} else {
				reach, err := runCombo(p, cfg.Seed+int64(tr)*31+int64(vi), tr, vi, cfg.Trials, cfg.Noise, uarch.MSRState{}, cfg.DisablePredecode)
				if err != nil {
					return nil, fmt.Errorf("cell (%v, %v): %w", tr, vi, err)
				}
				cell.Reach = reach
				switch {
				case tr == KindJmpInd && vi == KindRet:
					cell.Note = "Retbleed [73]"
				case tr == KindNonBranch && vi == KindRet:
					cell.Note = "Spectre-SLS [70, 6]"
				}
			}
			res.Cells[tr][vi] = cell
		}
	}
	return res, nil
}

// Observations derives the paper's headline observations O1-O3 from a set
// of matrix results, the same way Section 6 reads Table 1.
type Observations struct {
	// O1: speculative branch targets are fetched before the branch source
	// is decoded, on every profile.
	O1AllFetch bool
	// O2: the fetches enter the pipeline (decode), on every profile (the
	// jmp*-victim Intel anomaly excepted, as in the paper).
	O2AllDecode bool
	// O3: decoder-detectable speculation reaches execute — and the
	// profiles on which it does.
	O3ExecuteProfiles []string
}

// DeriveObservations summarizes matrix results across profiles.
func DeriveObservations(results []*MatrixResult) Observations {
	obs := Observations{O1AllFetch: true, O2AllDecode: true}
	for _, r := range results {
		anyFetch, anyDecode, anyExec := false, false, false
		for tr := BranchKind(0); tr < NumKinds; tr++ {
			for vi := BranchKind(0); vi < NumKinds; vi++ {
				c := r.Cells[tr][vi]
				if c.Status != CellEvaluated || tr == KindNonBranch {
					continue
				}
				anyFetch = anyFetch || c.Reach.IF
				anyDecode = anyDecode || c.Reach.ID
				anyExec = anyExec || c.Reach.EX
			}
		}
		obs.O1AllFetch = obs.O1AllFetch && anyFetch
		obs.O2AllDecode = obs.O2AllDecode && anyDecode
		if anyExec {
			obs.O3ExecuteProfiles = append(obs.O3ExecuteProfiles, r.Profile.Name)
		}
	}
	return obs
}

// String renders the matrix in the layout of Table 1.
func (r *MatrixResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — %s: stage reached per training (rows) x victim (cols)\n", r.Profile)
	fmt.Fprintf(&b, "%-12s", "")
	for vi := BranchKind(0); vi < NumKinds; vi++ {
		fmt.Fprintf(&b, "%-12s", vi)
	}
	b.WriteString("\n")
	for tr := BranchKind(0); tr < NumKinds; tr++ {
		fmt.Fprintf(&b, "%-12s", tr)
		for vi := BranchKind(0); vi < NumKinds; vi++ {
			c := r.Cells[tr][vi]
			cell := c.Reach.String()
			if c.Status == CellSymmetric {
				cell = "(sym)"
			}
			fmt.Fprintf(&b, "%-12s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
