// Package core implements the paper's contribution: the Phantom
// observation channels (Section 5.1), the training×victim misprediction
// matrix (Section 5.2 / Table 1), the µop-cache page-offset experiment
// (Figure 6), cross-privilege BTB collision discovery and function
// recovery (Section 6.2 / Figure 7), the attacker primitives P1/P2/P3
// (Section 6.1), the covert channels (Section 6.4 / Table 2), the KASLR
// and physical-address exploits (Section 7 / Tables 3-5), the MDS-gadget
// kernel leak (Section 7.4) and the mitigation evaluation (Sections 6.3
// and 8).
//
// Everything here plays by attacker rules: experiments observe the
// machine only through timing (rdtsc-equivalent cycle measurements of
// their own fetches and loads), their own cache state, performance
// counters that real unprivileged processes can sample, and architectural
// results of system calls. Simulator ground truth (kernel.Kernel's layout
// fields, pipeline.DebugCounters) is used strictly to *verify* what the
// attacks claim, never to produce it.
package core

import (
	"fmt"

	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
	"phantom/internal/uarch"
)

// userEnv is a minimal user-space-only machine for the observation-channel
// experiments (Sections 5 and 6 need no kernel: "user space BTB aliasing
// is sufficient for the purposes of building our observational channels").
type userEnv struct {
	m      *pipeline.Machine
	nextPA uint64
}

func newUserEnv(p *uarch.Profile, seed int64) *userEnv {
	m := pipeline.New(p, 1<<30, seed)
	return &userEnv{m: m, nextPA: 0x1000000}
}

func (e *userEnv) allocPA(n uint64) uint64 {
	pa := e.nextPA
	e.nextPA += (n + mem.PageSize - 1) &^ (mem.PageSize - 1)
	return pa
}

// mapCode maps user r-x pages covering blob at va and writes it.
func (e *userEnv) mapCode(va uint64, blob []byte) error {
	return e.mapBlob(va, blob, mem.PermRead|mem.PermExec|mem.PermUser)
}

func (e *userEnv) mapBlob(va uint64, blob []byte, perm mem.Perm) error {
	base := va &^ (mem.PageSize - 1)
	end := (va + uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if err := e.m.UserAS.Map(base, e.allocPA(end-base), end-base, perm); err != nil {
		return err
	}
	return e.m.UserAS.WriteBytes(va, blob)
}

// mapData maps user rw pages covering [va, va+size).
func (e *userEnv) mapData(va, size uint64) error {
	base := va &^ (mem.PageSize - 1)
	end := (va + size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	return e.m.UserAS.Map(base, e.allocPA(end-base), end-base,
		mem.PermRead|mem.PermWrite|mem.PermUser)
}

// mapAsm assembles and maps executable code.
func (e *userEnv) mapAsm(a *isa.Assembler) error {
	blob, err := a.Bytes()
	if err != nil {
		return err
	}
	return e.mapCode(a.Base(), blob)
}

// pa resolves the physical address behind a user VA (the harness plays
// the role of /proc/self/pagemap here, which real attackers replace with
// the Table 5 technique this package also implements).
func (e *userEnv) pa(va uint64) (uint64, error) {
	pa, f := e.m.UserAS.Translate(va, mem.AccessRead, false)
	if f != nil {
		return 0, f
	}
	return pa, nil
}

// fetchLatencyThreshold distinguishes "came from L1/L2" from "came from
// DRAM" in a timed probe: halfway into the memory latency.
func fetchLatencyThreshold(p *uarch.Profile) int {
	return p.MemLatency / 2
}

// run executes at entry and fails on anything but a clean halt.
func (e *userEnv) run(entry uint64, limit int) error {
	res := e.m.RunAt(entry, limit)
	if res.Reason != pipeline.StopHalt {
		return fmt.Errorf("core: run at %#x: %v", entry, res)
	}
	return nil
}
