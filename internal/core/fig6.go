package core

import (
	"fmt"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// Fig6Point is one x-position of Figure 6: the µop-cache hit/miss counts
// observed when re-executing the priming jmp-series after a victim run,
// with the speculation target C placed at the given page offset.
type Fig6Point struct {
	Offset uint64 // page offset of C (0x000 .. 0xfc0)
	Hits   int    // op-cache hits while re-running the jmp-series
	Misses int    // op-cache misses — spikes when C's offset matches the series set
}

// Fig6Config tunes the experiment.
type Fig6Config struct {
	Seed int64
	// SeriesOffset is the page offset of the priming jmp-series (the
	// paper's example uses 0xac0; only a C at the matching offset evicts
	// series lines).
	SeriesOffset uint64
	// Step is the offset increment (paper plots 0x40-granular points up
	// to 0xfc0; the figure labels every 0x100).
	Step uint64
	// DisablePredecode runs the sweep on the byte-at-a-time reference
	// fetch path (parity testing; results must not change).
	DisablePredecode bool
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.SeriesOffset == 0 {
		c.SeriesOffset = 0xac0
	}
	if c.Step == 0 {
		c.Step = 0x40
	}
	return c
}

// seriesLen is the number of jmp-series branches; it fills every way of
// one µop-cache set (the paper's series uses 7 branches plus the resident
// victim line; priming all 8 ways makes the single-fill eviction signal
// deterministic in this simulator's LRU model).
const seriesLen = 8

// RunFig6 reproduces Figure 6: detecting speculative decode via the
// µop cache. A non-branch victim is confused with a jmp* prediction to C;
// C's page offset sweeps across the page, and only when it matches the
// jmp-series' µop-cache set do re-runs of the series show misses.
func RunFig6(p *uarch.Profile, cfg Fig6Config) ([]Fig6Point, error) {
	telemetry.CountExperiment("fig6")
	cfg = cfg.withDefaults()
	var points []Fig6Point
	for off := uint64(0); off < 0x1000; off += cfg.Step {
		pt, err := fig6Point(p, cfg, off)
		if err != nil {
			return nil, fmt.Errorf("offset %#x: %w", off, err)
		}
		points = append(points, pt)
	}
	return points, nil
}

func fig6Point(p *uarch.Profile, cfg Fig6Config, off uint64) (Fig6Point, error) {
	env := newUserEnv(p, cfg.Seed)
	m := env.m
	m.DisablePredecode = cfg.DisablePredecode
	maskVal, ok := btb.SamePrivAliasMask(m.BTB.Scheme())
	if !ok {
		return Fig6Point{}, fmt.Errorf("core: no alias mask for %s", p)
	}

	aAddr := labABase
	bAddr := aAddr ^ maskVal
	cAddr := (aAddr &^ 0xfff) + 0x80000 + off
	seriesBase := uint64(0x5200000000)

	// Training source A: jmp* rdi.
	ta := isa.NewAssembler(aAddr)
	ta.JmpReg(isa.RDI)
	if err := env.mapAsm(ta); err != nil {
		return Fig6Point{}, err
	}
	// Victim B: nops (trained non-branch victim... here the confusion is
	// reversed relative to Table 1 naming: B decodes as non-branch while
	// the aliased prediction says jmp*).
	vb := isa.NewAssembler(bAddr)
	vb.NopSled(16)
	vb.Hlt()
	if err := env.mapAsm(vb); err != nil {
		return Fig6Point{}, err
	}
	// Target C: a few nops and a halt (only its decode matters).
	ca := isa.NewAssembler(cAddr)
	ca.NopSled(8)
	ca.Hlt()
	if err := env.mapAsm(ca); err != nil {
		return Fig6Point{}, err
	}

	// The jmp-series: seriesLen direct forward branches separated by
	// 4096 bytes, all at page offset cfg.SeriesOffset, hence all in one
	// µop-cache set (Figure 5B step 1).
	sa := isa.NewAssembler(seriesBase + cfg.SeriesOffset)
	for i := 0; i < seriesLen; i++ {
		next := seriesBase + uint64(i+1)*4096 + cfg.SeriesOffset
		if i == seriesLen-1 {
			sa.Hlt()
		} else {
			sa.JmpTo(next)
			sa.Org(next)
		}
	}
	if err := env.mapAsm(sa); err != nil {
		return Fig6Point{}, err
	}
	seriesEntry := seriesBase + cfg.SeriesOffset

	// Train the BTB entry.
	for i := 0; i < 2; i++ {
		m.Regs[isa.RDI] = cAddr
		if err := env.run(aAddr, 100); err != nil {
			return Fig6Point{}, err
		}
	}
	// Evict C's µop line left over from the architectural training runs,
	// then prime the series set (Figure 5B steps 1 and 3).
	m.Uop.FlushAll()
	if err := env.run(seriesEntry, 100); err != nil {
		return Fig6Point{}, err
	}

	// Victim: phantom speculation decodes C, evicting a series way iff
	// the sets collide.
	if err := env.run(bAddr, 100); err != nil {
		return Fig6Point{}, err
	}

	// Re-run the series, sampling the op-cache hit/miss counters around
	// it (the per-µarch events named in Section 5.1).
	before := m.Perf
	if err := env.run(seriesEntry, 100); err != nil {
		return Fig6Point{}, err
	}
	d := m.Perf.Delta(before)
	return Fig6Point{Offset: off, Hits: int(d.UopCacheHits), Misses: int(d.UopCacheMisses)}, nil
}
