package core

import (
	"fmt"

	"phantom/internal/btb"
	"phantom/internal/isa"
	"phantom/internal/uarch"
)

// BranchKind enumerates the five instruction kinds of the Table 1
// training/victim matrix.
type BranchKind uint8

// The five kinds, in the paper's column order.
const (
	KindJmpInd    BranchKind = iota // jmp*
	KindJmp                         // direct jmp
	KindJcc                         // conditional
	KindRet                         // return
	KindNonBranch                   // nop sled
	NumKinds
)

var kindNames = [NumKinds]string{"jmp*", "jmp", "jcc", "ret", "non-branch"}

func (k BranchKind) String() string { return kindNames[k] }

// Reach records which pipeline stages a mispredicted control flow was
// *observed* to enter, via the three channels of Figure 3: I-cache timing
// (IF), µop-cache performance counters (ID), D-cache timing (EX).
type Reach struct {
	IF, ID, EX bool
}

func (r Reach) String() string {
	switch {
	case r.EX:
		return "IF+ID+EX"
	case r.ID:
		return "IF+ID"
	case r.IF:
		return "IF"
	default:
		return "-"
	}
}

// Any reports whether any stage was observed.
func (r Reach) Any() bool { return r.IF || r.ID || r.EX }

// comboLab holds the Figure 4 experiment layout for one training/victim
// pair: training source A, aliased victim B, signal gadget C (and its
// PC-relative shadow C′ for direct-branch training), probe buffers, and
// the return-site marker used when training with ret.
type comboLab struct {
	env  *userEnv
	prof *uarch.Profile

	aAddr  uint64 // T_A: training instruction
	bAddr  uint64 // T_B = T_A ^ aliasMask: victim instruction
	nAddr  uint64 // T_N: non-aliasing training source (negative control)
	cAddr  uint64 // C: absolute signal gadget
	cPrime uint64 // C′ = B + (C - A)
	vTgt   uint64 // architectural victim branch target (hlt)
	hTgt   uint64 // architectural return target for ret victims
	mRet   uint64 // RSB top during the victim run (ret-training site)
	stub   uint64 // victim entry stub establishing the RSB state

	probe1 uint64 // D-side signal of the C/C′/M gadgets
	probe2 uint64 // D-side signal of straight-line (sequential) paths
	stack  uint64

	probe1PA, probe2PA     uint64
	cPA, cPrimePA, mRetPA  uint64
	trainKind, victimKind  BranchKind
	victimEntry            uint64
	victimTakenConditional bool
}

// Layout constants for the user-space experiments.
const (
	labABase   = uint64(0x5000000000) + 0x6a0
	labCOffset = uint64(0x40000) + 0x3a0 // C sits at page offset 0x3a0
	labProbe1  = uint64(0x5100000000)
	labProbe2  = uint64(0x5100100000)
	labStack   = uint64(0x5100200000)
)

// buildComboLab lays out one cell of the matrix.
func buildComboLab(p *uarch.Profile, seed int64, train, victim BranchKind) (*comboLab, error) {
	env := newUserEnv(p, seed)
	maskVal, ok := btb.SamePrivAliasMask(env.m.BTB.Scheme())
	if !ok {
		return nil, fmt.Errorf("core: no same-privilege alias mask for %s", p)
	}

	lab := &comboLab{
		env: env, prof: p,
		aAddr:      labABase,
		bAddr:      labABase ^ maskVal,
		nAddr:      labABase ^ 0x100000, // flips an index bit on every scheme
		probe1:     labProbe1,
		probe2:     labProbe2,
		stack:      labStack,
		trainKind:  train,
		victimKind: victim,
	}
	lab.cAddr = (lab.aAddr &^ 0xfff) + labCOffset
	lab.cPrime = lab.bAddr + (lab.cAddr - lab.aAddr)
	lab.vTgt = lab.bAddr + 0x10000
	lab.hTgt = lab.bAddr + 0x11000

	if env.m.BTB.Scheme().Collides(lab.nAddr, false, lab.bAddr, false) {
		return nil, fmt.Errorf("core: negative-control address aliases the victim")
	}

	// Training snippet A.
	ta := isa.NewAssembler(lab.aAddr)
	switch train {
	case KindJmpInd:
		ta.JmpReg(isa.RDI)
	case KindJmp:
		ta.JmpTo(lab.cAddr)
	case KindJcc:
		ta.JccTo(isa.CondZ, lab.cAddr)
	case KindRet:
		ta.Ret()
	case KindNonBranch:
		ta.NopSled(16)
		ta.Hlt()
	}
	ta.Int3()
	if err := env.mapAsm(ta); err != nil {
		return nil, err
	}
	// Negative-control training source: same shape at a non-aliasing
	// address.
	na := isa.NewAssembler(lab.nAddr)
	switch train {
	case KindJmpInd:
		na.JmpReg(isa.RDI)
	case KindJmp:
		na.JmpTo(lab.cAddr)
	case KindJcc:
		na.JccTo(isa.CondZ, lab.cAddr)
	case KindRet:
		na.Ret()
	case KindNonBranch:
		na.NopSled(16)
		na.Hlt()
	}
	na.Int3()
	if err := env.mapAsm(na); err != nil {
		return nil, err
	}

	// Victim snippet B.
	vb := isa.NewAssembler(lab.bAddr)
	switch victim {
	case KindJmpInd:
		vb.JmpReg(isa.RSI)
	case KindJmp:
		vb.JmpTo(lab.vTgt)
	case KindJcc:
		vb.JccTo(isa.CondZ, lab.vTgt)
		// Sequential path after the conditional: the straight-line signal
		// load (observable only if the fall-through runs transiently).
		vb.Load(isa.RBX, isa.R10, 0)
		vb.Hlt()
	case KindRet:
		vb.Ret()
		// Straight-line bytes after the return (Spectre-SLS signal).
		vb.Load(isa.RBX, isa.R10, 0)
		vb.Hlt()
	case KindNonBranch:
		vb.NopSled(16)
		vb.Hlt()
	}
	vb.Int3()
	if err := env.mapAsm(vb); err != nil {
		return nil, err
	}

	// Signal gadget C and its PC-relative shadow C′: one load + halt.
	gadget := func(base uint64) *isa.Assembler {
		g := isa.NewAssembler(base)
		g.Load(isa.RAX, isa.R8, 0)
		g.Hlt()
		return g
	}
	if err := env.mapAsm(gadget(lab.cAddr)); err != nil {
		return nil, err
	}
	if lab.cPrime != lab.cAddr {
		if err := env.mapAsm(gadget(lab.cPrime)); err != nil {
			return nil, err
		}
	}

	// Architectural victim targets.
	vt := isa.NewAssembler(lab.vTgt)
	vt.Hlt()
	if err := env.mapAsm(vt); err != nil {
		return nil, err
	}
	ht := isa.NewAssembler(lab.hTgt)
	ht.Hlt()
	if err := env.mapAsm(ht); err != nil {
		return nil, err
	}

	// Victim entry stub: for ret-training cells the frontend steers to
	// the RSB top, so the victim runs behind a call whose return site M
	// is the observation point ("the return target will not be to C, but
	// to the most recent call site"). M is aligned to its own cache line.
	stubBase := lab.bAddr + 0x20000
	sa := isa.NewAssembler(stubBase)
	sa.Org((sa.PC()+5+63)&^63 - 5) // place call so its return site is line-aligned
	sa.Label("stub_entry")
	sa.Call("f")
	sa.Label("mret")
	sa.Load(isa.RAX, isa.R8, 0)
	sa.Hlt()
	sa.Align(64)
	sa.Label("f")
	sa.JmpTo(lab.bAddr)
	if err := env.mapAsm(sa); err != nil {
		return nil, err
	}
	lab.stub = sa.MustAddr("stub_entry")
	lab.mRet = sa.MustAddr("mret")

	if err := env.mapData(lab.probe1, 4096); err != nil {
		return nil, err
	}
	if err := env.mapData(lab.probe2, 4096); err != nil {
		return nil, err
	}
	if err := env.mapData(lab.stack, 8192); err != nil {
		return nil, err
	}

	var err error
	if lab.probe1PA, err = env.pa(lab.probe1); err != nil {
		return nil, err
	}
	if lab.probe2PA, err = env.pa(lab.probe2); err != nil {
		return nil, err
	}
	if lab.cPA, err = env.pa(lab.cAddr); err != nil {
		return nil, err
	}
	if lab.cPrimePA, err = env.pa(lab.cPrime); err != nil {
		return nil, err
	}
	if lab.mRetPA, err = env.pa(lab.mRet); err != nil {
		return nil, err
	}

	// The straight-line-speculation cells need the victim conditional to
	// be architecturally taken (so the fall-through is the wrong path).
	lab.victimTakenConditional = train == KindNonBranch && victim == KindJcc
	lab.victimEntry = lab.bAddr
	if train == KindRet {
		lab.victimEntry = lab.stub
	}
	return lab, nil
}

// signalSite returns the observation address for this cell: C for
// absolute-target training, C′ for PC-relative training, M (the RSB top)
// for ret training.
func (lab *comboLab) signalSite() (va, pa uint64, ok bool) {
	switch lab.trainKind {
	case KindJmpInd:
		return lab.cAddr, lab.cPA, true
	case KindJmp, KindJcc:
		return lab.cPrime, lab.cPrimePA, true
	case KindRet:
		return lab.mRet, lab.mRetPA, true
	}
	return 0, 0, false // non-branch training: no predicted target
}

// train performs one training pass (aliased when positive, the
// negative-control source otherwise).
func (lab *comboLab) train(positive bool) error {
	m := lab.env.m
	src := lab.aAddr
	if !positive {
		src = lab.nAddr
	}
	switch lab.trainKind {
	case KindNonBranch:
		return nil // "training" is the absence of a branch
	case KindJmpInd:
		m.Regs[isa.RDI] = lab.cAddr
	case KindJcc:
		m.ZF = true
	case KindRet:
		m.Regs[isa.RSP] = lab.stack + 4096
		m.Regs[isa.RSP] -= 8
		if err := m.UserAS.Write64(m.Regs[isa.RSP], lab.cAddr); err != nil {
			return err
		}
	}
	m.Regs[isa.R8] = lab.probe1
	return lab.env.run(src, 200)
}

// prime flushes the observation state: the signal site from I-cache and
// µop cache, the probe buffers from the D-side.
func (lab *comboLab) prime() {
	m := lab.env.m
	if _, pa, ok := lab.signalSite(); ok {
		m.Hier.FlushLine(pa)
	}
	if va, _, ok := lab.signalSite(); ok {
		m.Uop.Flush(va)
	}
	m.Hier.FlushLine(lab.probe1PA)
	m.Hier.FlushLine(lab.probe2PA)
}

// runVictim executes the victim once.
func (lab *comboLab) runVictim() error {
	m := lab.env.m
	m.Regs[isa.R8] = lab.probe1
	m.Regs[isa.R10] = lab.probe2
	m.Regs[isa.RSI] = lab.vTgt
	m.ZF = lab.victimTakenConditional
	if lab.victimKind == KindRet {
		m.Regs[isa.RSP] = lab.stack + 4096
		m.Regs[isa.RSP] -= 8
		if err := m.UserAS.Write64(m.Regs[isa.RSP], lab.hTgt); err != nil {
			return err
		}
	}
	return lab.env.run(lab.victimEntry, 400)
}

// observe probes the three channels after a victim run.
func (lab *comboLab) observe() Reach {
	m := lab.env.m
	threshold := fetchLatencyThreshold(lab.prof)
	var r Reach

	site, _, hasSite := lab.signalSite()

	// IF: time an instruction fetch of the signal site (Figure 5A). For
	// ret training the site is the call's own return point, whose line
	// the frontend legitimately prefetches, so IF is inferred from ID.
	if hasSite && lab.trainKind != KindRet {
		if lat, ok := m.TimedFetch(site); ok && lat < threshold {
			r.IF = true
		}
	}

	// EX: time a load of the transiently-loaded probe line.
	if lat, ok := m.TimedLoad(lab.probe1); ok && lat < threshold {
		r.EX = true
	}
	// Straight-line cells (non-branch training) signal through the second
	// probe buffer. Other cells must not look at it: an unpredicted
	// return in the negative-control run straight-line-speculates too,
	// which would cancel the real probe1 signal in the subtraction.
	if lab.trainKind == KindNonBranch &&
		(lab.victimKind == KindRet || lab.victimTakenConditional) {
		if lat, ok := m.TimedLoad(lab.probe2); ok && lat < threshold {
			r.EX = true
		}
	}

	// ID: execute the signal site and watch the µop-cache hit counter
	// (the performance-counter channel of Figure 5B; Section 5.1 names
	// the per-µarch hardware events).
	if hasSite {
		before := m.Perf.UopCacheHits
		m.Regs[isa.R8] = lab.probe1
		_ = lab.env.run(site, 50)
		if m.Perf.UopCacheHits > before {
			r.ID = true
		}
		if lab.trainKind == KindRet && r.ID {
			r.IF = true
		}
	}
	return r
}

// resetTrial restores a clean microarchitectural slate between trials.
func (lab *comboLab) resetTrial() {
	m := lab.env.m
	m.IBPB()
	m.Hier.FlushAll()
	m.Uop.FlushAll()
}

// runTrial performs one full train→prime→victim→probe pass.
func (lab *comboLab) runTrial(positive bool) (Reach, error) {
	lab.resetTrial()
	for i := 0; i < 2; i++ {
		if err := lab.train(positive); err != nil {
			return Reach{}, err
		}
	}
	lab.prime()
	if err := lab.runVictim(); err != nil {
		return Reach{}, err
	}
	return lab.observe(), nil
}

// RunCombo measures how far the mispredicted control flow of one
// training/victim pair advances on profile p, using repeated trials with
// complementary negative testing ("only when we measure significantly
// more µop-cache misses compared to the negative test do we conclude that
// the mispredicted target advanced to ID" — Section 5.1; applied to all
// three channels here).
func RunCombo(p *uarch.Profile, seed int64, train, victim BranchKind, trials int, noise float64) (Reach, error) {
	return runCombo(p, seed, train, victim, trials, noise, uarch.MSRState{}, false)
}

// RunComboMSR is RunCombo under an explicit mitigation-MSR configuration,
// used by the Section 6.3 experiments.
func RunComboMSR(p *uarch.Profile, seed int64, train, victim BranchKind, trials int, noise float64, msr uarch.MSRState) (Reach, error) {
	return runCombo(p, seed, train, victim, trials, noise, msr, false)
}

func runCombo(p *uarch.Profile, seed int64, train, victim BranchKind, trials int, noise float64, msr uarch.MSRState, disablePredecode bool) (Reach, error) {
	if trials <= 0 {
		trials = 6
	}
	lab, err := buildComboLab(p, seed, train, victim)
	if err != nil {
		return Reach{}, err
	}
	lab.env.m.MSR = msr
	lab.env.m.Noise.Level = noise
	lab.env.m.DisablePredecode = disablePredecode

	// Training with non-branch means "no prediction exists"; there is no
	// aliasing to control for, so the negative test is skipped and the
	// raw majority decides.
	control := train != KindNonBranch

	var pos, neg [3]int
	for t := 0; t < trials; t++ {
		rp, err := lab.runTrial(true)
		if err != nil {
			return Reach{}, err
		}
		for i, b := range []bool{rp.IF, rp.ID, rp.EX} {
			if b {
				pos[i]++
			}
		}
		if !control {
			continue
		}
		rn, err := lab.runTrial(false)
		if err != nil {
			return Reach{}, err
		}
		for i, b := range []bool{rn.IF, rn.ID, rn.EX} {
			if b {
				neg[i]++
			}
		}
	}
	sig := func(i int) bool { return pos[i]-neg[i] > trials/2 }
	return Reach{IF: sig(0), ID: sig(1), EX: sig(2)}, nil
}
