package core

import (
	"fmt"

	"phantom/internal/kernel"
	"phantom/internal/stats"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// CovertResult reports one covert-channel run in Table 2's terms.
type CovertResult struct {
	Profile  string
	Bits     int
	Accuracy stats.Accuracy
	Cycles   uint64
	// BitsPerSecond uses the nominal 3 GHz clock. Simulated syscalls are
	// orders of magnitude cheaper than real ones, so absolute rates run
	// high; the Accuracy column and the relative behaviour across
	// microarchitectures are the reproduction targets.
	BitsPerSecond float64
}

func (r *CovertResult) String() string {
	return fmt.Sprintf("%-22s %6d bits  accuracy %s  %8.0f bits/s",
		r.Profile, r.Bits, &r.Accuracy, r.BitsPerSecond)
}

// CovertConfig tunes a covert-channel run.
type CovertConfig struct {
	Seed  int64
	Bits  int     // message length (Table 2 uses 4096)
	Noise float64 // defaults to 1 (calibrated)
	// CalibrationRounds sets how many known-bit rounds pick the probe
	// threshold.
	CalibrationRounds int
	// SiblingStress models `stress -c N` on the SMT sibling thread, which
	// the paper runs during the fetch channel ("we furthermore stress the
	// sibling thread", Section 6.4). In this single-core model it only
	// adds I-cache interference; the paper's accuracy *gain* came from
	// slowing the victim thread, which has no analogue here.
	SiblingStress int
	// DisablePredecode runs the channel on the byte-at-a-time reference
	// fetch path (parity testing; results must not change).
	DisablePredecode bool
}

func (c CovertConfig) withDefaults() CovertConfig {
	if c.Bits == 0 {
		c.Bits = 4096
	}
	if c.Noise == 0 {
		c.Noise = 1
	}
	if c.CalibrationRounds == 0 {
		c.CalibrationRounds = 12
	}
	return c
}

// covertChannel carries the shared mechanics of the fetch and execute
// variants of Section 6.4.
type covertChannel struct {
	a       *Attack
	victim  uint64 // kernel branch the prediction hijacks
	target1 uint64 // injected target encoding bit 1
	target0 uint64 // injected target encoding bit 0
	arg     func(bit byte) uint64
	prime   func()
	probe   func() int
}

// transmit runs the per-bit loop: prime, inject, invoke, probe.
func (c *covertChannel) transmit(cfg CovertConfig) (*CovertResult, error) {
	m := c.a.K.M
	rng := m.RNG()

	sendBit := func(b byte) (int, error) {
		c.prime()
		target := c.target0
		if b == 1 {
			target = c.target1
		}
		if err := c.a.InjectPrediction(c.victim, target); err != nil {
			return 0, err
		}
		if err := c.a.Syscall(kernel.SysCovertBranch, 0, c.arg(b)); err != nil {
			return 0, err
		}
		return c.probe(), nil
	}

	// Calibration: send known bits, split the distributions.
	var ones, zeros []float64
	for i := 0; i < cfg.CalibrationRounds; i++ {
		t1, err := sendBit(1)
		if err != nil {
			return nil, err
		}
		t0, err := sendBit(0)
		if err != nil {
			return nil, err
		}
		ones = append(ones, float64(t1))
		zeros = append(zeros, float64(t0))
	}
	threshold := (stats.Median(ones) + stats.Median(zeros)) / 2

	msg := make([]byte, cfg.Bits)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}

	res := &CovertResult{Profile: m.Prof.String(), Bits: cfg.Bits}
	start := m.Cycle
	for _, b := range msg {
		t, err := sendBit(b)
		if err != nil {
			return nil, err
		}
		got := byte(0)
		if float64(t) > threshold {
			got = 1 // slower probe: the primed set lost a way -> target mapped
		}
		res.Accuracy.Add(got == b)
	}
	res.Cycles = m.Cycle - start
	res.BitsPerSecond = float64(cfg.Bits) / CyclesToSeconds(res.Cycles)
	return res, nil
}

// covertISet is the L1I set the fetch channel signals through, chosen away
// from the sets the syscall path itself thrashes (the kernel entry, covert
// module and trampoline all live at low page offsets).
const covertISet = 33

// RunCovertFetch reproduces Table 2 (top): the P1 fetch channel. T1 is a
// mapped executable kernel address, T0 an unmapped one; for each bit the
// attacker primes an instruction-cache set, injects a prediction to T_b at
// a direct branch of the covert kernel module, invokes it, and probes.
func RunCovertFetch(p *uarch.Profile, cfg CovertConfig) (*CovertResult, error) {
	telemetry.CountExperiment("covert_fetch")
	cfg = cfg.withDefaults()
	k, err := kernel.Boot(p, kernel.Config{Seed: cfg.Seed, NoiseLevel: cfg.Noise, DisablePredecode: cfg.DisablePredecode})
	if err != nil {
		return nil, err
	}
	k.M.Noise.SiblingStress = cfg.SiblingStress
	a, err := NewAttack(k)
	if err != nil {
		return nil, err
	}

	setOff := uint64(covertISet << 6)
	t1 := k.ImageBase + 0x3000 + setOff                 // inside mapped kernel text
	t0 := kernel.KernelRegionBase - 0x40000000 + setOff // kernel VA, unmapped

	pp, err := NewIPrimeProbe(k, 0x7f1000000000, covertISet)
	if err != nil {
		return nil, err
	}

	ch := &covertChannel{
		a:       a,
		victim:  k.Symbol("covert_branch_site"),
		target1: t1,
		target0: t0,
		arg:     func(byte) uint64 { return 0 },
		prime:   pp.Prime,
		probe:   pp.Probe,
	}
	return ch.transmit(cfg)
}

// RunCovertExecute reproduces Table 2 (bottom): the P2 execute channel.
// The injected target is always the kernel's load gadget; the transmitted
// bit selects whether the register it dereferences points at mapped
// (physmap) or unmapped kernel memory. Works only where Phantom
// speculation reaches execute — AMD Zen 1 and Zen 2.
func RunCovertExecute(p *uarch.Profile, cfg CovertConfig) (*CovertResult, error) {
	telemetry.CountExperiment("covert_execute")
	cfg = cfg.withDefaults()
	k, err := kernel.Boot(p, kernel.Config{Seed: cfg.Seed, NoiseLevel: cfg.Noise, DisablePredecode: cfg.DisablePredecode})
	if err != nil {
		return nil, err
	}
	a, err := NewAttack(k)
	if err != nil {
		return nil, err
	}

	// The monitored physical line: far from anything the workload touches.
	probePA := uint64(0x40000000) | 0x840
	t1 := k.PhysmapVA(probePA)                      // mapped (physmap), non-executable
	t0 := kernel.PhysmapRegionBase - 0x2000 + 0x840 // unmapped kernel VA

	hugeVA := uint64(0x7f2000000000)
	if _, err := k.AllocUserHuge(hugeVA); err != nil {
		return nil, err
	}
	pp := NewDPrimeProbe(k.M, hugeVA, probePA)

	ch := &covertChannel{
		a:       a,
		victim:  k.Symbol("covert_branch_site"),
		target1: k.Symbol("covert_exec_gadget"),
		target0: k.Symbol("covert_exec_gadget"),
		arg: func(b byte) uint64 {
			if b == 1 {
				return t1
			}
			return t0
		},
		prime: pp.Prime,
		probe: pp.Probe,
	}
	return ch.transmit(cfg)
}
