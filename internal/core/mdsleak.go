package core

import (
	"fmt"

	"phantom/internal/kernel"
	"phantom/internal/stats"
	"phantom/internal/telemetry"
)

// MDSLeakConfig tunes the Section 7.4 exploit.
type MDSLeakConfig struct {
	// ImageBase and PhysmapBase are the stage-1/2 results (RunFullChain
	// recovers them; tests may pass ground truth to isolate this stage).
	ImageBase   uint64
	PhysmapBase uint64
	// ReloadPhys is the physical address of the attacker's huge page
	// (the stage-3 result). HugeVA is its user mapping.
	ReloadPhys uint64
	HugeVA     uint64
	// Bytes is how much kernel memory to leak (the paper leaks 4096
	// bytes of randomized data).
	Bytes int
	// Threshold for the Flush+Reload decision; 0 picks half the memory
	// latency.
	Threshold int
}

// MDSLeakResult reports a kernel-memory leak run.
type MDSLeakResult struct {
	Leaked   []byte
	Accuracy stats.Accuracy
	Cycles   uint64
	Seconds  float64
	// BytesPerSecond at the nominal clock; the paper's 84 B/s includes
	// real-hardware retry overhead, so absolute values differ (see
	// EXPERIMENTS.md), but the channel structure is identical.
	BytesPerSecond float64
}

// LeakKernelMemory reproduces Section 7.4: leaking arbitrary kernel
// memory through an MDS gadget (Listing 4) nested with P3. The gadget
// performs only a *single* attacker-indexed load under a mispredicted
// bounds check — useless to classic Spectre — and Phantom supplies the
// second, secret-dependent load by hijacking the gadget's call
// instruction toward a disclosure gadget that indexes the attacker's
// reload buffer.
//
// startVA is the kernel virtual address to read from; the leak proceeds
// byte by byte for cfg.Bytes. Ground truth for the accuracy tally comes
// from reading the same range through the simulator's kernel view.
func LeakKernelMemory(k *kernel.Kernel, startVA uint64, cfg MDSLeakConfig) (*MDSLeakResult, error) {
	telemetry.CountExperiment("mds_leak")
	return leakKernelMemory(k, startVA, cfg, true)
}

// LeakKernelMemoryBaseline runs the same attack WITHOUT the nested
// Phantom injection: classic Spectre against the Listing 4 gadget. The
// wrong path still performs the attacker-indexed load, but the call goes
// to the real parse_data and no secret-dependent load follows, so the
// reload buffer stays cold — the paper's argument for why MDS gadgets
// were considered unexploitable on AMD before Phantom.
func LeakKernelMemoryBaseline(k *kernel.Kernel, startVA uint64, cfg MDSLeakConfig) (*MDSLeakResult, error) {
	return leakKernelMemory(k, startVA, cfg, false)
}

func leakKernelMemory(k *kernel.Kernel, startVA uint64, cfg MDSLeakConfig, injectPhantom bool) (*MDSLeakResult, error) {
	m := k.M
	a, err := NewAttack(k)
	if err != nil {
		return nil, err
	}
	if cfg.ImageBase == 0 || cfg.PhysmapBase == 0 || cfg.HugeVA == 0 {
		return nil, fmt.Errorf("core: MDS leak needs image base, physmap base and a reload buffer")
	}
	if cfg.Bytes == 0 {
		cfg.Bytes = 4096
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = fetchLatencyThreshold(m.Prof)
	}

	// Attacker-known addresses, all derived from the recovered image base
	// (kernel symbol offsets are public knowledge).
	victim := cfg.ImageBase + k.SymbolOffset("mds_call_site")
	disclosure := cfg.ImageBase + kernel.MDSDisclosureOff
	arrayBase := cfg.ImageBase + kernel.ArrayOff
	reloadKVA := cfg.PhysmapBase + cfg.ReloadPhys

	res := &MDSLeakResult{}
	start := m.Cycle

	leakByte := func(kva uint64) (byte, bool, error) {
		// 1. Re-train the bounds check toward "in bounds" (the out-of-
		// bounds leak attempt itself pushes the direction predictor the
		// other way).
		for i := 0; i < 2; i++ {
			if err := a.Syscall(kernel.SysMDSRead, 5, reloadKVA); err != nil {
				return 0, false, err
			}
		}
		// 2. Inject the Phantom prediction at the call site (the
		// architectural calls of step 1 re-trained the BTB with the true
		// target, so this must come after). The classic-Spectre baseline
		// skips this step.
		if injectPhantom {
			if err := a.InjectPrediction(victim, disclosure); err != nil {
				return 0, false, err
			}
		}
		// 3. Flush the reload buffer (256 cache-line-strided entries,
		// matching the gadget's bits-[13:6] encoding).
		for v := 0; v < 256; v++ {
			m.FlushVA(cfg.HugeVA + uint64(v)*64)
		}
		// 4. Fire: out-of-bounds index reaching the target byte.
		idx := kva - arrayBase
		if err := a.Syscall(kernel.SysMDSRead, idx, reloadKVA); err != nil {
			return 0, false, err
		}
		// 5. Reload scan.
		bestV, bestLat := -1, 1<<30
		for v := 0; v < 256; v++ {
			lat, ok := m.TimedLoad(cfg.HugeVA + uint64(v)*64)
			if !ok {
				continue
			}
			if lat < bestLat {
				bestV, bestLat = v, lat
			}
		}
		if bestV < 0 || bestLat >= cfg.Threshold {
			return 0, false, nil // no signal this round
		}
		return byte(bestV), true, nil
	}

	res.Leaked = make([]byte, cfg.Bytes)
	for i := 0; i < cfg.Bytes; i++ {
		kva := startVA + uint64(i)
		var got byte
		hit := false
		for attempt := 0; attempt < 3 && !hit; attempt++ {
			var err error
			got, hit, err = leakByte(kva)
			if err != nil {
				return nil, err
			}
		}
		res.Leaked[i] = got

		truth, err := k.M.KernelAS.Read8(kva)
		if err != nil {
			return nil, fmt.Errorf("core: reading ground truth: %w", err)
		}
		res.Accuracy.Add(hit && got == truth)
	}

	res.Cycles = m.Cycle - start
	res.Seconds = CyclesToSeconds(res.Cycles)
	res.BytesPerSecond = float64(cfg.Bytes) / res.Seconds
	return res, nil
}
