package core

import "phantom/internal/stats"

// ScoreBounded implements the Section 7.3 scoring function: the bounded
// relative timing difference between the primed-set probe times and their
// baselines, accumulated over the monitored sets:
//
//	score_guess = Σ_S min(max(T_S − B_S, −bound), bound)
//
// Clamping keeps one outlier set (system-call thrash, replacement noise,
// prefetching) from dominating the vote.
func ScoreBounded(probeTimes, baselines []float64, bound float64) float64 {
	n := len(probeTimes)
	if len(baselines) < n {
		n = len(baselines)
	}
	var score float64
	for i := 0; i < n; i++ {
		score += stats.Clamp(probeTimes[i]-baselines[i], -bound, bound)
	}
	return score
}
