package core

import (
	"fmt"

	"phantom/internal/kernel"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
)

// IPrimeProbe implements Prime+Probe [50] on one L1 instruction cache set.
// The L1I is physically indexed by PA[11:6], which equals the page offset
// bits for any page size, so an unprivileged attacker primes set S simply
// by fetching Ways own code lines at page offset S<<6.
type IPrimeProbe struct {
	m     *pipeline.Machine
	addrs []uint64
}

// NewIPrimeProbe builds a prime set for I-cache set `set`, mapping Ways
// pages of attacker code at base.
func NewIPrimeProbe(k *kernel.Kernel, base uint64, set int) (*IPrimeProbe, error) {
	m := k.M
	ways := m.Prof.L1I.Ways
	if set < 0 || set >= m.Prof.L1I.Sets {
		return nil, fmt.Errorf("core: I-cache set %d out of range", set)
	}
	pp := &IPrimeProbe{m: m}
	blob := make([]byte, uint64(ways)*mem.PageSize)
	for i := range blob {
		blob[i] = 0x90 // nops; only fetchability matters
	}
	if err := k.MapUserCode(base, blob); err != nil {
		return nil, err
	}
	for i := 0; i < ways; i++ {
		pp.addrs = append(pp.addrs, base+uint64(i)*mem.PageSize+uint64(set)*64)
	}
	return pp, nil
}

// Prime fills the set with the attacker's lines. Lines are flushed first
// so each prime re-establishes the line at *every* level: probing hits L1
// and would otherwise leave the L2 copies' replacement state to rot until
// ambient traffic silently evicted them, turning later single L1 evictions
// into full-miss false signals on long scans.
func (pp *IPrimeProbe) Prime() {
	for _, a := range pp.addrs {
		pp.m.FlushVA(a)
	}
	for round := 0; round < 2; round++ {
		for _, a := range pp.addrs {
			pp.m.TimedFetch(a)
		}
	}
}

// Probe re-fetches the primed lines and returns the total latency; a
// victim fetch into the set evicts one line and raises the total. The
// traversal runs in reverse prime order, the textbook defense against
// self-eviction cascades: a refill then evicts the victim's (oldest)
// line rather than the next primed line the probe is about to touch.
func (pp *IPrimeProbe) Probe() int {
	total := 0
	for i := len(pp.addrs) - 1; i >= 0; i-- {
		lat, _ := pp.m.TimedFetch(pp.addrs[i])
		total += lat
	}
	return total
}

// DPrimeProbe implements Prime+Probe on one L2 (and, inclusively, L1D)
// data-cache set, using a 2 MiB transparent huge page for physical
// contiguity ("For Prime+Probe on L2, we use 2 MiB physically contiguous
// transparent huge pages", Section 7.2). The L2 is indexed by PA[15:6];
// within a huge page PA[20:0] equals the VA offset, so the attacker
// chooses the full index.
type DPrimeProbe struct {
	m     *pipeline.Machine
	addrs []uint64
}

// NewDPrimeProbe builds a prime set for the L2 set that physical address
// pa maps to. hugeVA must be a mapped user huge page.
func NewDPrimeProbe(m *pipeline.Machine, hugeVA uint64, pa uint64) *DPrimeProbe {
	pp := &DPrimeProbe{m: m}
	l2 := m.Prof.L2
	setBits := uint64(l2.Sets*64 - 1) // PA mask of line+set bits
	target := pa & setBits &^ 63
	stride := uint64(l2.Sets * 64)
	for i := 0; i < l2.Ways; i++ {
		pp.addrs = append(pp.addrs, hugeVA+target+uint64(i)*stride)
	}
	return pp
}

// Prime fills the set, flushing first so the lines are re-established at
// every cache level (see IPrimeProbe.Prime).
func (pp *DPrimeProbe) Prime() {
	for _, a := range pp.addrs {
		pp.m.FlushVA(a)
	}
	for round := 0; round < 2; round++ {
		for _, a := range pp.addrs {
			pp.m.TimedLoad(a)
		}
	}
}

// Probe reloads the primed lines and returns the total latency, in
// reverse prime order (see IPrimeProbe.Probe).
func (pp *DPrimeProbe) Probe() int {
	total := 0
	for i := len(pp.addrs) - 1; i >= 0; i-- {
		lat, _ := pp.m.TimedLoad(pp.addrs[i])
		total += lat
	}
	return total
}

// FlushReload implements Flush+Reload [76] on an attacker-accessible line.
type FlushReload struct {
	m  *pipeline.Machine
	va uint64
}

// NewFlushReload monitors the line at va.
func NewFlushReload(m *pipeline.Machine, va uint64) *FlushReload {
	return &FlushReload{m: m, va: va}
}

// Flush evicts the line from the whole hierarchy.
func (fr *FlushReload) Flush() { fr.m.FlushVA(fr.va) }

// Reload returns the access latency; below threshold means someone (the
// victim, through shared memory such as physmap) touched the line.
func (fr *FlushReload) Reload() int {
	lat, _ := fr.m.TimedLoad(fr.va)
	return lat
}
