package core

import (
	"fmt"

	"phantom/internal/kernel"
	"phantom/internal/stats"
)

// This file implements the paper's three attacker primitives (Section 6.1)
// as reusable building blocks. Each follows the same three steps the paper
// numbers: ① prime the observation state, ② inject a prediction and invoke
// the victim, ③ probe.
//
// P1 — detect mapped executable memory: the phantom fetch of target T
// fills the I-cache only when T is present and executable.
//
// P2 — detect mapped non-executable memory (AMD Zen 1/2): the phantom
// window executes a kernel load gadget whose address register the
// attacker controls; the D-cache fill reveals whether the address is
// mapped.
//
// P3 — leak a register value (AMD Zen 1/2): the gadget arranges a byte of
// the register into bits [13:6] of an offset into an attacker-observable
// buffer and loads it; Prime+Probe or Flush+Reload recovers the byte.

// Primitives bundles an attacker context with calibrated probes.
type Primitives struct {
	A *Attack

	// calibration rounds for probe thresholds
	rounds int
}

// NewPrimitives builds the primitive toolkit for a booted kernel.
func NewPrimitives(k *kernel.Kernel) (*Primitives, error) {
	a, err := NewAttack(k)
	if err != nil {
		return nil, err
	}
	return &Primitives{A: a, rounds: 8}, nil
}

// VictimCall abstracts "execute the victim": typically a system call whose
// handler runs over the hijacked branch source.
type VictimCall func() error

// P1DetectExecutable reports whether kernel virtual address target is
// mapped and executable, by injecting a jmp* prediction at victimVA (a
// branch-source address on the victim's execution path), invoking the
// victim, and Prime+Probing the I-cache set the target maps to.
//
// pp must monitor the L1I set of target's page offset (the caller builds
// it once and reuses it across calls; see NewIPrimeProbe).
func (p *Primitives) P1DetectExecutable(victimVA, target uint64, pp *IPrimeProbe, invoke VictimCall) (bool, error) {
	threshold, err := p.calibrateProbe(pp.Prime, pp.Probe, invoke)
	if err != nil {
		return false, err
	}
	pp.Prime()
	if err := p.A.InjectPrediction(victimVA, target); err != nil {
		return false, err
	}
	if err := invoke(); err != nil {
		return false, err
	}
	return float64(pp.Probe()) > threshold, nil
}

// P2DetectMapped reports whether kernel virtual address addr is mapped
// (readable at any permission), by injecting a prediction to a kernel
// load gadget (e.g. Listing 3) at victimVA and passing addr through the
// victim's register path. pp must monitor the D-cache set the gadget's
// load lands in when addr is the guess; invoke receives the address to
// plant in the victim's register. Requires a Phantom execute window
// (AMD Zen 1/2).
func (p *Primitives) P2DetectMapped(victimVA, gadget uint64, pp *DPrimeProbe, invoke func(addr uint64) error, addr uint64) (bool, error) {
	threshold, err := p.calibrateProbe(pp.Prime, pp.Probe, func() error { return invoke(0) })
	if err != nil {
		return false, err
	}
	pp.Prime()
	if err := p.A.InjectPrediction(victimVA, gadget); err != nil {
		return false, err
	}
	if err := invoke(addr); err != nil {
		return false, err
	}
	return float64(pp.Probe()) > threshold, nil
}

// P3LeakByte recovers one byte of a victim register: the attacker injects
// a prediction to a disclosure gadget that shifts the register's low byte
// into bits [13:6] of an offset into the shared reload buffer and loads
// it. reloadVA is the attacker's view of that buffer (256 cache lines);
// invoke triggers the victim with the secret in the target register.
// Requires a Phantom execute window (AMD Zen 1/2).
func (p *Primitives) P3LeakByte(victimVA, gadget uint64, reloadVA uint64, invoke VictimCall) (byte, bool, error) {
	m := p.A.K.M
	for v := 0; v < 256; v++ {
		m.FlushVA(reloadVA + uint64(v)*64)
	}
	if err := p.A.InjectPrediction(victimVA, gadget); err != nil {
		return 0, false, err
	}
	if err := invoke(); err != nil {
		return 0, false, err
	}
	bestV, bestLat := -1, 1<<30
	for v := 0; v < 256; v++ {
		lat, ok := m.TimedLoad(reloadVA + uint64(v)*64)
		if ok && lat < bestLat {
			bestV, bestLat = v, lat
		}
	}
	if bestV < 0 || bestLat >= fetchLatencyThreshold(m.Prof) {
		return 0, false, nil
	}
	return byte(bestV), true, nil
}

// calibrateProbe measures the quiet probe distribution (prime → victim →
// probe without any injection) and returns a detection threshold above
// its median by half the hit/miss contrast.
func (p *Primitives) calibrateProbe(prime func(), probe func() int, invoke VictimCall) (float64, error) {
	var quiet []float64
	for i := 0; i < p.rounds; i++ {
		prime()
		if err := invoke(); err != nil {
			return 0, err
		}
		quiet = append(quiet, float64(probe()))
	}
	contrast := float64(p.A.K.M.Prof.L2.HitLatency) / 2
	return stats.Median(quiet) + contrast, nil
}

// String describes the toolkit.
func (p *Primitives) String() string {
	return fmt.Sprintf("primitives(cross-mask %#x)", p.A.CrossMask)
}
