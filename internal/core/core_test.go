package core

import (
	"testing"

	"phantom/internal/kernel"
	"phantom/internal/mem"
	"phantom/internal/uarch"
)

func bootZen2(t *testing.T, seed int64, noise float64) *kernel.Kernel {
	t.Helper()
	k, err := kernel.Boot(uarch.Zen2(), kernel.Config{Seed: seed, NoiseLevel: noise})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAttackTrainSourceAliases(t *testing.T) {
	k := bootZen2(t, 1, 0)
	a, err := NewAttack(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Symbol("covert_branch_site")
	u := a.TrainSourceFor(victim)
	if u>>47 != 0 {
		t.Fatalf("training source %#x is not a user address", u)
	}
	if !k.M.BTB.Scheme().Collides(u, false, victim, true) {
		t.Fatal("training source does not alias the kernel victim")
	}
}

func TestInjectPredictionPlantsEntry(t *testing.T) {
	k := bootZen2(t, 2, 0)
	a, err := NewAttack(k)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Symbol("covert_branch_site")
	target := k.ImageBase + 0x3000
	if err := a.InjectPrediction(victim, target); err != nil {
		t.Fatal(err)
	}
	pred, ok := k.M.BTB.Lookup(victim, true)
	if !ok {
		t.Fatal("no prediction at the kernel victim after injection")
	}
	if pred.Target != target {
		t.Fatalf("predicted target %#x, want %#x", pred.Target, target)
	}
	if pred.TrainedKernel {
		t.Fatal("entry claims kernel-mode training")
	}
}

func TestAttackFailsOnIntel(t *testing.T) {
	k, err := kernel.Boot(uarch.Intel13(), kernel.Config{Seed: 3, NoiseLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttack(k); err == nil {
		t.Fatal("attack context built on a privilege-tagged BTB")
	}
}

func TestIPrimeProbeDetectsEviction(t *testing.T) {
	k := bootZen2(t, 4, 0)
	const set = 21
	pp, err := NewIPrimeProbe(k, 0x7f1000000000, set)
	if err != nil {
		t.Fatal(err)
	}
	pp.Prime()
	quiet := pp.Probe()

	// Plant a foreign line in the monitored set by fetching unrelated
	// user code at the same page offset.
	blob := make([]byte, mem.PageSize)
	for i := range blob {
		blob[i] = 0x90
	}
	if err := k.MapUserCode(0x7f1100000000, blob); err != nil {
		t.Fatal(err)
	}
	pp.Prime()
	k.M.TimedFetch(0x7f1100000000 + uint64(set)<<6)
	loud := pp.Probe()

	if loud <= quiet {
		t.Fatalf("probe did not detect eviction: quiet=%d loud=%d", quiet, loud)
	}
}

func TestDPrimeProbeDetectsVictimLoad(t *testing.T) {
	k := bootZen2(t, 5, 0)
	hugeVA := uint64(0x7f2000000000)
	if _, err := k.AllocUserHuge(hugeVA); err != nil {
		t.Fatal(err)
	}
	targetPA := uint64(0x40000000) | 0xbe0
	pp := NewDPrimeProbe(k.M, hugeVA, targetPA)
	pp.Prime()
	quiet := pp.Probe()

	// Kernel-side load of the monitored line (simulating the transient
	// access).
	k.M.Hier.AccessData(targetPA)

	pp.Prime()
	k.M.Hier.AccessData(targetPA)
	loud := pp.Probe()
	if loud <= quiet {
		t.Fatalf("D-probe did not detect the load: quiet=%d loud=%d", quiet, loud)
	}
}

func TestFlushReload(t *testing.T) {
	k := bootZen2(t, 6, 0)
	if err := k.MapUserData(0x7f3000000000, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	fr := NewFlushReload(k.M, 0x7f3000000000+0x80)
	fr.Flush()
	cold := fr.Reload()
	warm := fr.Reload()
	if cold <= warm {
		t.Fatalf("cold=%d warm=%d", cold, warm)
	}
}

func TestScoreBounded(t *testing.T) {
	probes := []float64{100, 40, 33, 32}
	base := []float64{32, 32, 32, 32}
	// Clamped at 10: 10 + 8 + 1 + 0.
	if got := ScoreBounded(probes, base, 10); got != 19 {
		t.Fatalf("score = %v", got)
	}
	// Negative differences clamp too.
	if got := ScoreBounded([]float64{0}, []float64{100}, 10); got != -10 {
		t.Fatalf("negative clamp = %v", got)
	}
	// Length mismatch uses the shorter.
	if got := ScoreBounded([]float64{42, 42}, []float64{32}, 10); got != 10 {
		t.Fatalf("length mismatch = %v", got)
	}
}

func TestMatrixZen2MatchesPaper(t *testing.T) {
	res, err := RunMatrix(uarch.Zen2(), MatrixConfig{Seed: 7, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Spot checks on the cells the paper annotates.
	if c := res.Cells[KindJmpInd][KindJmpInd]; c.Status != CellSymmetric {
		t.Error("(jmp*, jmp*) should be the Spectre-V2 symmetric cell")
	}
	if c := res.Cells[KindJmpInd][KindRet]; c.Note == "" || !c.Reach.EX {
		t.Errorf("(jmp*, ret) = %+v, want Retbleed note and EX", c)
	}
	if c := res.Cells[KindNonBranch][KindRet]; !c.Reach.EX {
		t.Errorf("SLS cell = %+v, want EX", c)
	}
	if c := res.Cells[KindNonBranch][KindJmpInd]; c.Reach.Any() {
		t.Errorf("(non-branch, jmp*) = %+v, want no signal (frontend stalls)", c)
	}
}

func TestDeriveObservations(t *testing.T) {
	var results []*MatrixResult
	for _, p := range []*uarch.Profile{uarch.Zen1(), uarch.Zen3(), uarch.Intel13()} {
		r, err := RunMatrix(p, MatrixConfig{Seed: 8, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	obs := DeriveObservations(results)
	if !obs.O1AllFetch {
		t.Error("O1 (fetch everywhere) not derived")
	}
	if !obs.O2AllDecode {
		t.Error("O2 (decode everywhere) not derived")
	}
	if len(obs.O3ExecuteProfiles) != 1 || obs.O3ExecuteProfiles[0] != "Zen 1" {
		t.Errorf("O3 profiles = %v, want [Zen 1]", obs.O3ExecuteProfiles)
	}
}

func TestFig6SeriesOffsetConfigurable(t *testing.T) {
	pts, err := RunFig6(uarch.Zen2(), Fig6Config{Seed: 9, SeriesOffset: 0x540, Step: 0x40})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := p.Offset>>6 == 0x540>>6
		if want && p.Misses == 0 {
			t.Errorf("no signal at configured offset %#x", p.Offset)
		}
		if !want && p.Misses != 0 {
			t.Errorf("spurious signal at %#x", p.Offset)
		}
	}
}

func TestCovertFetchZeroNoiseIsPerfect(t *testing.T) {
	res, err := RunCovertFetch(uarch.Zen3(), CovertConfig{Seed: 10, Bits: 128, Noise: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Noise < 0 disables the noise source entirely; the channel should be
	// error-free.
	if res.Accuracy.Percent() != 100 {
		t.Fatalf("noiseless fetch channel accuracy %s", &res.Accuracy)
	}
}

func TestImageKASLRTimingScalesWithSets(t *testing.T) {
	k1 := bootZen2(t, 11, 0)
	r1, err := BreakImageKASLR(k1, ImageKASLRConfig{Sets: 2})
	if err != nil {
		t.Fatal(err)
	}
	k2 := bootZen2(t, 11, 0)
	r2, err := BreakImageKASLR(k2, ImageKASLRConfig{Sets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Correct || !r2.Correct {
		t.Fatal("KASLR break failed")
	}
	if r2.Cycles <= r1.Cycles {
		t.Fatalf("8-set scan (%d cyc) not slower than 2-set scan (%d cyc)", r2.Cycles, r1.Cycles)
	}
}

func TestPhysmapScanAscendingFindsBaseNotInterior(t *testing.T) {
	// Several slots above the true base also land inside the mapped
	// range; the ascending scan must report the base itself.
	k := bootZen2(t, 12, 0)
	res, err := BreakPhysmapKASLR(k, PhysmapKASLRConfig{ImageBase: k.ImageBase})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("physmap scan: %v", res)
	}
}

func TestLeakArbitraryKernelAddress(t *testing.T) {
	// Leak kernel *text* rather than the planted secret, proving the
	// primitive reads arbitrary addresses.
	k := bootZen2(t, 13, 0)
	hugeVA := uint64(0x7f6000000000)
	pa, err := k.AllocUserHuge(hugeVA)
	if err != nil {
		t.Fatal(err)
	}
	target := k.Symbol("getpid_site")
	res, err := LeakKernelMemory(k, target, MDSLeakConfig{
		ImageBase: k.ImageBase, PhysmapBase: k.PhysmapBase,
		ReloadPhys: pa, HugeVA: hugeVA, Bytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Percent() != 100 {
		t.Fatalf("text leak accuracy %s", &res.Accuracy)
	}
	// First byte of the 5-byte nop encoding.
	if res.Leaked[0] != 0x0f {
		t.Fatalf("leaked[0] = %#x, want 0x0f (nop5 opcode)", res.Leaked[0])
	}
}

func TestBruteForceRespectsBudget(t *testing.T) {
	res, err := BruteForceCollisions(uarch.Zen3(), 14, 6, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested > 500 {
		t.Fatalf("budget exceeded: %d", res.Tested)
	}
	if res.Found {
		t.Fatal("Zen3 brute force cannot succeed")
	}
}

func TestRecoveryUnderdeterminedReturnsNoFunctions(t *testing.T) {
	res, err := RecoverBTBFunctions(uarch.Zen3(), 15, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != 0 {
		t.Fatalf("underdetermined recovery returned %d functions", len(res.Functions))
	}
}

func TestSuppressOverheadBand(t *testing.T) {
	pct, err := SuppressOverhead(uarch.Zen2(), 16)
	if err != nil {
		t.Fatal(err)
	}
	// The paper measures 0.69% (single core); the model should land in
	// the same sub-2% band and must not be zero or negative.
	if pct <= 0 || pct > 2 {
		t.Fatalf("SuppressBPOnNonBr overhead %.3f%%, want (0, 2]", pct)
	}
}

func TestRunFullChainZen1(t *testing.T) {
	res, err := RunFullChain(uarch.Zen1(), FullChainConfig{Seed: 31, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Image.Correct {
		t.Fatalf("image stage: %v", res.Image)
	}
	if !res.Physmap.Correct {
		t.Fatalf("physmap stage: %v", res.Physmap)
	}
	if !res.PhysAddr.Correct {
		t.Fatalf("physaddr stage: %v", res.PhysAddr)
	}
	// Each stage consumed the previous stage's output; their simulated
	// times are all nonzero and the chain is strictly ordered.
	if res.Image.Seconds <= 0 || res.Physmap.Seconds <= 0 || res.PhysAddr.Seconds <= 0 {
		t.Fatal("missing stage timings")
	}
}

func TestKASLRResultString(t *testing.T) {
	r := &KASLRResult{Guess: 0x1000, Truth: 0x1000, Correct: true, Seconds: 0.5}
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
	r.Correct = false
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
}

func TestMatrixResultString(t *testing.T) {
	res, err := RunMatrix(uarch.Zen1(), MatrixConfig{Seed: 32, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"Table 1", "jmp*", "(sym)", "non-branch"} {
		if !contains(out, want) {
			t.Errorf("matrix output missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCovertFetchSurvivesSiblingStress(t *testing.T) {
	// Section 6.4 runs `stress -c 10` on the sibling thread during the
	// fetch channel. The calibrated threshold must keep the channel
	// usable under that extra I-cache interference.
	res, err := RunCovertFetch(uarch.Zen2(), CovertConfig{
		Seed: 33, Bits: 256, SiblingStress: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Percent() < 80 {
		t.Fatalf("fetch channel under sibling stress: %s", &res.Accuracy)
	}
}

func TestSpectreV2BaselineWorksEverywhere(t *testing.T) {
	// The conventional attack succeeds even where Phantom's execute
	// window is zero — backend-resolved windows are long on every part.
	for _, p := range []*uarch.Profile{uarch.Zen2(), uarch.Zen4(), uarch.Intel13()} {
		res, err := RunSpectreV2(p, 34, 16)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Accuracy.Percent() < 95 {
			t.Errorf("%s: Spectre-V2 baseline accuracy %s", p, &res.Accuracy)
		}
		if res.WindowLoads < 2 {
			t.Errorf("%s: wrong path executed %d loads, want >= 2 (two-load gadget)",
				p, res.WindowLoads)
		}
	}
}
