package core

import (
	"fmt"
	"math/rand"
	"sort"

	"phantom/internal/gf2"
	"phantom/internal/isa"
	"phantom/internal/kernel"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// collideLab is the Section 6.2 setup: a kernel address K "using a kernel
// module which contains nops followed by a return instruction", whose page
// the attacker makes user-accessible by editing its PTE so the victim
// instruction at K can be driven directly, plus a pool of probe gadgets
// C_i whose I-cache lines identify which of a batch of candidate training
// sources collided with K.
type collideLab struct {
	k     *kernel.Kernel
	kAddr uint64 // the kernel-address victim instruction

	probeVAs []uint64 // C_i: distinct user lines, one per batch slot
	probePAs []uint64
	stackVA  uint64
	retVA    uint64 // where K's ret architecturally lands

	// sharedTrainPA backs every candidate training page: all candidates
	// share K's low 12 bits, so one physical frame holding the jmp* at
	// that offset serves them all.
	sharedTrainPA uint64
}

// collideBatch is how many candidate addresses one victim run tests: each
// candidate trains a jmp* to its own probe gadget, so a single phantom
// fetch after the victim identifies the colliding candidate.
const collideBatch = 256

// newCollideLab boots a system and prepares the probe pool.
func newCollideLab(p *uarch.Profile, seed int64) (*collideLab, error) {
	k, err := kernel.Boot(p, kernel.Config{Seed: seed, NoiseLevel: 0})
	if err != nil {
		return nil, err
	}
	lab := &collideLab{k: k}

	// K: the kmodule probe site (nops + ret). Make its page
	// user-accessible, as the paper does by changing the PTE attributes.
	lab.kAddr = k.Symbol("kmodule_probe")
	if !k.M.KernelAS.SetPerm(lab.kAddr&^(mem.PageSize-1), mem.PermRead|mem.PermExec|mem.PermUser) {
		return nil, fmt.Errorf("core: cannot open K's PTE")
	}

	// Probe pool: collideBatch executable lines, 64 bytes apart within
	// dedicated pages (4 per L1I set: within capacity). Each entry is a
	// few nops followed by int3 padding so a phantom fetch of entry j
	// dies inside its own line instead of running on into entry j+1 and
	// recording a false collision.
	poolBase := uint64(0x7f7000000000)
	blob := make([]byte, collideBatch*64)
	for i := range blob {
		if i%64 < 8 {
			blob[i] = 0x90
		} else {
			blob[i] = 0xcc
		}
	}
	if err := k.MapUserCode(poolBase, blob); err != nil {
		return nil, err
	}
	for i := 0; i < collideBatch; i++ {
		va := poolBase + uint64(i)*64
		lab.probeVAs = append(lab.probeVAs, va)
		pa, f := k.M.UserAS.Translate(va, mem.AccessRead, false)
		if f != nil {
			return nil, f
		}
		lab.probePAs = append(lab.probePAs, pa)
	}

	// Victim return plumbing.
	lab.stackVA = 0x7f7100000000
	if err := k.MapUserData(lab.stackVA, 8192); err != nil {
		return nil, err
	}
	// The architectural return site must not share K's page offset: the
	// candidates' low 12 bits are pinned to K's, and a candidate aliasing
	// the return site (instead of K) would record a false collision.
	lab.retVA = 0x7f7200000000 + ((lab.kAddr + 0x9c0) & 0xfff)
	ra := isa.NewAssembler(lab.retVA)
	ra.Hlt()
	rb, err := ra.Bytes()
	if err != nil {
		return nil, err
	}
	if err := k.MapUserCode(lab.retVA, rb); err != nil {
		return nil, err
	}

	// Shared training frame: int3 everywhere except the jmp* rdi at K's
	// page offset.
	lab.sharedTrainPA = k.Alloc.AllocSeq(mem.PageSize)
	frame := make([]byte, mem.PageSize)
	for i := range frame {
		frame[i] = 0xcc
	}
	copy(frame[lab.kAddr&0xfff:], isa.EncJmpInd(isa.RDI))
	k.M.Phys.WriteBytes(lab.sharedTrainPA, frame)
	return lab, nil
}

// runVictim executes the instruction at K (user mode, thanks to the PTE
// edit) and returns normally.
func (lab *collideLab) runVictim() error {
	m := lab.k.M
	m.Regs[isa.RSP] = lab.stackVA + 4096
	m.Regs[isa.RSP] -= 8
	if err := m.UserAS.Write64(m.Regs[isa.RSP], lab.retVA); err != nil {
		return err
	}
	res := m.RunAt(lab.kAddr, 100)
	if res.Reason != pipeline.StopHalt {
		return fmt.Errorf("core: victim run at K: %v", res)
	}
	return nil
}

// trainCandidate maps (if needed) the page of candidate source u onto the
// shared training frame and executes the jmp* there toward the probe
// target. Candidates all carry K's low 12 bits, so the shared frame's
// branch lines up at every u.
func (lab *collideLab) trainCandidate(u, target uint64, mapped map[uint64]bool) error {
	m := lab.k.M
	page := u &^ (mem.PageSize - 1)
	if !mapped[page] {
		if err := m.UserAS.Map(page, lab.sharedTrainPA, mem.PageSize,
			mem.PermRead|mem.PermExec|mem.PermUser); err != nil {
			return err
		}
		mapped[page] = true
	}
	m.Regs[isa.RDI] = target
	res := m.RunAt(u, 8)
	_ = res // lands on the probe gadget's nops; any stop is fine
	return nil
}

// CollisionTest reports whether user-space source u shares a BTB slot
// with K, measured through the microarchitectural channel (train at u,
// run the victim at K, probe the training target's I-cache line).
func (lab *collideLab) collisionTest(u uint64, mapped map[uint64]bool) (bool, error) {
	m := lab.k.M
	m.IBPB()
	if err := lab.trainCandidate(u, lab.probeVAs[0], mapped); err != nil {
		return false, err
	}
	m.Hier.FlushLine(lab.probePAs[0])
	if err := lab.runVictim(); err != nil {
		return false, err
	}
	lat, ok := m.TimedFetch(lab.probeVAs[0])
	return ok && lat < fetchLatencyThreshold(m.Prof), nil
}

// BruteForceResult reports the Section 6.2 brute-force stage.
type BruteForceResult struct {
	Found    bool
	Mask     uint64 // flip pattern (including canonical high bits), if found
	Tested   int
	MaxFlips int
}

// BruteForceCollisions searches for a user/kernel aliasing pattern by
// flipping up to maxFlips bits (always including bit 47, which any
// kernel→user pattern must flip) of K, testing each via the channel. On
// the Zen 1/2 scheme a 4-bit pattern exists and is found; on Zen 3/4 all
// functions span 12 bits and the search comes up empty, which is exactly
// the paper's experience ("this approach does not yield any results ...
// when flipping up to 6 bits").
func BruteForceCollisions(p *uarch.Profile, seed int64, maxFlips int, budget int) (*BruteForceResult, error) {
	telemetry.CountExperiment("btb_bruteforce")
	lab, err := newCollideLab(p, seed)
	if err != nil {
		return nil, err
	}
	res := &BruteForceResult{MaxFlips: maxFlips}
	mapped := make(map[uint64]bool)

	// Enumerate flip sets of bits 12..46 of increasing size, plus the
	// mandatory b47 and canonicalizing high bits.
	var bits []int
	for b := 12; b <= 46; b++ {
		bits = append(bits, b)
	}
	var try func(start int, mask uint64, left int) (bool, error)
	try = func(start int, mask uint64, left int) (bool, error) {
		if res.Tested >= budget {
			return false, nil
		}
		if left == 0 {
			res.Tested++
			full := mask | 1<<47 | 0xffff000000000000
			hit, err := lab.collisionTest(lab.kAddr^full, mapped)
			if err != nil {
				return false, err
			}
			if hit {
				res.Found = true
				res.Mask = full
				return true, nil
			}
			return false, nil
		}
		for i := start; i < len(bits); i++ {
			done, err := try(i+1, mask|1<<uint(bits[i]), left-1)
			if done || err != nil {
				return done, err
			}
		}
		return false, nil
	}
	for flips := 0; flips <= maxFlips-1; flips++ { // -1: b47 is implicit
		done, err := try(0, 0, flips)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return res, nil
}

// RecoveryResult reports the SMT-solver-replacement stage: collision
// sampling plus GF(2) function recovery.
type RecoveryResult struct {
	Profile   string
	Samples   int       // collisions observed
	Batches   int       // victim runs
	Functions []gf2.Vec // all recovered forms with weight <= MaxWeight
	// B47Functions are the forms involving bit 47 — the set Figure 7
	// publishes for Zen 3.
	B47Functions []gf2.Vec
	// TagOverlaps are the weight-2 forms, the paper's "b12 pairs with
	// b16, b13 with b17" observation.
	TagOverlaps []gf2.Vec
	// ExampleMask is a reconstructed cross-privilege collision pattern
	// (cf. the published 0xffffbff800000000).
	ExampleMask uint64
}

// RecoverBTBFunctions reproduces the Section 6.2 / Figure 7 methodology:
// sample random user addresses (low 12 bits pinned to K's, as the paper
// does to shrink the search space) in batches — each batch member trains
// toward its own probe line, so one victim run identifies any colliding
// member — then solve for the linear forms all collisions satisfy. The Z3
// SMT step of the paper reduces to GF(2) nullspace computation plus
// low-weight enumeration under the same "at most n coefficients"
// constraint (n = 4 in the paper).
func RecoverBTBFunctions(p *uarch.Profile, seed int64, wantSamples, maxBatches int) (*RecoveryResult, error) {
	telemetry.CountExperiment("btb_recovery")
	lab, err := newCollideLab(p, seed)
	if err != nil {
		return nil, err
	}
	m := lab.k.M
	rng := rand.New(rand.NewSource(seed ^ 0xc0111de))
	res := &RecoveryResult{Profile: p.String()}
	if wantSamples == 0 {
		wantSamples = 24
	}
	if maxBatches == 0 {
		maxBatches = 4000
	}

	low12 := lab.kAddr & 0xfff
	diffs := gf2.NewMatrix(48)
	var sampleDiffs []gf2.Vec

	// Stop early once the difference space saturates: when hundreds of
	// batches stop producing new independent collisions, every further
	// sample is linearly dependent on what we have.
	const drySaturation = 800
	dry := 0

	for res.Samples < wantSamples && res.Batches < maxBatches && dry < drySaturation {
		res.Batches++
		dry++
		m.IBPB()
		mapped := make(map[uint64]bool)

		// Generate and train a batch of candidates.
		cands := make([]uint64, collideBatch)
		for i := range cands {
			u := (rng.Uint64() & 0x00007ffffffff000) | low12
			cands[i] = u
			if err := lab.trainCandidate(u, lab.probeVAs[i], mapped); err != nil {
				return nil, err
			}
		}
		for _, pa := range lab.probePAs {
			m.Hier.FlushLine(pa)
		}
		if err := lab.runVictim(); err != nil {
			return nil, err
		}
		for i, va := range lab.probeVAs {
			lat, ok := m.TimedFetch(va)
			if !ok || lat >= fetchLatencyThreshold(m.Prof) {
				continue
			}
			// Candidate i collided with K.
			d := gf2.Vec((cands[i] ^ lab.kAddr) & (1<<48 - 1))
			if d == 0 || diffs.InSpan(d) {
				continue // not new information
			}
			diffs.AddRow(d)
			sampleDiffs = append(sampleDiffs, d)
			res.Samples++
			dry = 0
		}
		// Unmap the batch's training pages to keep the address space
		// lean — in sorted order, so page-table and TLB state evolves
		// identically for a given seed regardless of map iteration.
		pages := make([]uint64, 0, len(mapped))
		for page := range mapped {
			pages = append(pages, page)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, page := range pages {
			m.UserAS.Unmap(page, mem.PageSize)
		}
	}

	// The admissible functions are the forms orthogonal to every observed
	// difference, restricted to bits 12..47 (low bits were pinned, so
	// nothing is known — or needed — about them).
	constraints := diffs.Clone()
	for b := 0; b < 12; b++ {
		constraints.AddRow(gf2.Vec(1) << uint(b))
	}
	basis := constraints.Nullspace()
	if len(basis) > 24 {
		// Too few independent collisions: the admissible space is still
		// huge and enumeration would mostly produce artifacts. Report the
		// samples gathered; the caller can ask for more.
		return res, nil
	}
	res.Functions = gf2.LowWeightForms(basis, 4)
	for _, f := range res.Functions {
		if f&(1<<47) != 0 {
			res.B47Functions = append(res.B47Functions, f)
		}
		if f.Weight() == 2 {
			res.TagOverlaps = append(res.TagOverlaps, f)
		}
	}
	// Reconstruct an example collision mask from the observed samples.
	if len(sampleDiffs) > 0 {
		for _, d := range sampleDiffs {
			if d&(1<<47) != 0 {
				res.ExampleMask = uint64(d) | 0xffff000000000000
				break
			}
		}
	}
	return res, nil
}

// String renders the recovery in the style of Figure 7.
func (r *RecoveryResult) String() string {
	s := fmt.Sprintf("BTB function recovery on %s: %d collisions in %d batches\n",
		r.Profile, r.Samples, r.Batches)
	s += "Functions involving b47 (cf. Figure 7):\n"
	for i, f := range r.B47Functions {
		s += fmt.Sprintf("  f%-2d = %s\n", i, f)
	}
	if len(r.TagOverlaps) > 0 {
		s += "Overlapping tag functions (cf. the b12/b16, b13/b17 finding):\n"
		for _, f := range r.TagOverlaps {
			s += fmt.Sprintf("  %s\n", f)
		}
	}
	if r.ExampleMask != 0 {
		s += fmt.Sprintf("Example collision pattern: K ^ %#x\n", r.ExampleMask)
	}
	return s
}
