package core

import (
	"fmt"

	"phantom/internal/kernel"
	"phantom/internal/mem"
	"phantom/internal/telemetry"
	"phantom/internal/uarch"
)

// KASLRResult reports one derandomization run (Tables 3, 4 and 5 all use
// this shape: did the attack find the right answer, and how long did the
// simulated machine take).
type KASLRResult struct {
	Guess   uint64 // recovered base address (or physical address)
	Truth   uint64 // ground truth, for verification only
	Correct bool
	Cycles  uint64
	Seconds float64 // simulated wall clock at the nominal 3 GHz
}

func (r *KASLRResult) String() string {
	status := "WRONG"
	if r.Correct {
		status = "ok"
	}
	return fmt.Sprintf("guess=%#x truth=%#x %s (%.4fs simulated)", r.Guess, r.Truth, status, r.Seconds)
}

// ImageKASLRConfig tunes the Table 3 exploit.
type ImageKASLRConfig struct {
	// Sets is how many distinct I-cache sets contribute to the Section
	// 7.3 score (the paper accumulates all 64; 4 suffices at this
	// simulator's noise level and is the default).
	Sets int
	// Bound clamps each set's timing difference (paper uses 10).
	Bound float64
	// Amplify injects a second prediction at another branch on the
	// getpid() execution path, pointed at an additional target in the
	// monitored set — the Section 7.3 signal amplifier ("to amplify the
	// difference, we trigger another speculative branch along the
	// execution path of the system call to an additional target mapped
	// to S"). Two wrong-path fetches then evict two primed ways instead
	// of one.
	Amplify bool
}

func (c ImageKASLRConfig) withDefaults() ImageKASLRConfig {
	if c.Sets == 0 {
		c.Sets = 4
	}
	if c.Bound == 0 {
		c.Bound = 10
	}
	return c
}

// BreakImageKASLR reproduces the Table 3 exploit: derandomizing the
// kernel image base with P1. For each of the 488 candidate locations the
// attacker injects a jmp* prediction at the candidate's getpid()
// nop site (Listing 1, image offset 0xf6520) pointing into the candidate
// image, issues getpid(), and Prime+Probes the chosen I-cache set; only
// the true location both consumes the prediction (BTB collision with the
// really-executing nop) and has a mapped, executable target.
func BreakImageKASLR(k *kernel.Kernel, cfg ImageKASLRConfig) (*KASLRResult, error) {
	telemetry.CountExperiment("kaslr_image")
	cfg = cfg.withDefaults()
	m := k.M
	a, err := NewAttack(k)
	if err != nil {
		return nil, err
	}

	// Probe sets: spread across the index space, away from the
	// low-offset sets the syscall path thrashes.
	sets := make([]int, cfg.Sets)
	for i := range sets {
		sets[i] = 20 + i*(40/cfg.Sets)
	}
	pps := make([]*IPrimeProbe, len(sets))
	for i, s := range sets {
		pp, err := NewIPrimeProbe(k, 0x7f3000000000+uint64(i)*0x100000, s)
		if err != nil {
			return nil, err
		}
		pps[i] = pp
	}

	start := m.Cycle

	// Baselines per set: prime, run the victim syscall with no usable
	// injection, probe (Section 7.3: "we also measure the time when it
	// maps to some unrelated set").
	baselines := make([]float64, len(sets))
	for i, pp := range pps {
		const reps = 3
		total := 0
		for r := 0; r < reps; r++ {
			pp.Prime()
			if err := a.Syscall(kernel.SysGetpid); err != nil {
				return nil, err
			}
			total += pp.Probe()
		}
		baselines[i] = float64(total) / reps
	}

	// Offset of the second injection point on the getpid path (public
	// binary knowledge, like the gadget offsets).
	exitJmpOff := k.SymbolOffset("getpid_exit_jmp")

	bestSlot, bestScore := -1, 0.0
	probeTimes := make([]float64, len(sets))
	for slot := 0; slot < kernel.KernelSlots; slot++ {
		candidate := kernel.SlotBase(slot)
		victim := candidate + kernel.GetpidSiteOff
		for i, pp := range pps {
			// Target inside the candidate image that maps to set i.
			target := candidate + 0x2000 + uint64(sets[i])<<6
			pp.Prime()
			if err := a.InjectPrediction(victim, target); err != nil {
				return nil, err
			}
			if cfg.Amplify {
				// Second speculative branch on the same syscall path, to a
				// second target line in the same set.
				target2 := candidate + 0x8000 + uint64(sets[i])<<6
				if err := a.InjectPrediction(candidate+exitJmpOff, target2); err != nil {
					return nil, err
				}
			}
			if err := a.Syscall(kernel.SysGetpid); err != nil {
				return nil, err
			}
			probeTimes[i] = float64(pp.Probe())
		}
		score := ScoreBounded(probeTimes, baselines, cfg.Bound)
		if bestSlot < 0 || score > bestScore {
			bestSlot, bestScore = slot, score
		}
	}

	res := &KASLRResult{
		Guess:   kernel.SlotBase(bestSlot),
		Truth:   k.ImageBase,
		Correct: kernel.SlotBase(bestSlot) == k.ImageBase,
		Cycles:  m.Cycle - start,
	}
	res.Seconds = CyclesToSeconds(res.Cycles)
	return res, nil
}

// PhysmapKASLRConfig tunes the Table 4 exploit.
type PhysmapKASLRConfig struct {
	// ImageBase is the kernel image location, discovered by
	// BreakImageKASLR in the full chain.
	ImageBase uint64
	// Threshold is the probe-slowdown (cycles over baseline) treated as a
	// signal; 0 picks a default between the L1D-eviction-only noise
	// signature (~one L2 hit) and the true transient-load signature (an
	// L1D+L2 eviction, costing a memory access on probe).
	Threshold float64
	// Confirmations is how many of 4 re-tests must agree before a signal
	// is accepted (0 = the default 3). Negative disables confirmation
	// entirely — the ablation benchmarks use this to quantify what the
	// majority re-test buys.
	Confirmations int
}

// BreakPhysmapKASLR reproduces the Table 4 exploit: derandomizing the
// physmap base with P2 on AMD Zen 1/2. The attacker confuses the call in
// __fdget_pos() (Listing 2) with a jmp* prediction to the Listing 3
// disclosure gadget (mov r12, [r12+0xbe0]); R12 arrives from the readv()
// RSI argument, so each candidate physmap base yields one transient load
// whose hit in a primed L2 set marks mapped memory. Candidates are
// scanned in ascending order and the first signal is the base.
func BreakPhysmapKASLR(k *kernel.Kernel, cfg PhysmapKASLRConfig) (*KASLRResult, error) {
	telemetry.CountExperiment("kaslr_physmap")
	m := k.M
	a, err := NewAttack(k)
	if err != nil {
		return nil, err
	}
	if cfg.ImageBase == 0 {
		return nil, fmt.Errorf("core: physmap exploit needs the kernel image base")
	}
	if cfg.Threshold == 0 {
		// The true signal evicts a primed line from both L1D and L2, so
		// the probe pays a DRAM access; ambient noise usually evicts from
		// L1D only (an L2 hit on probe). Split the difference.
		cfg.Threshold = float64(m.Prof.L2.HitLatency) + float64(m.Prof.MemLatency)/2
	}

	victim := cfg.ImageBase + k.SymbolOffset("fdget_call_site")
	gadget := cfg.ImageBase + kernel.DisclosureGadgetOff

	// The transient load hits physical address (base correct ⇒)
	// 0 + 0xbe0; prime that L2 set through a huge page.
	hugeVA := uint64(0x7f4000000000)
	if _, err := k.AllocUserHuge(hugeVA); err != nil {
		return nil, err
	}
	pp := NewDPrimeProbe(m, hugeVA, 0xbe0)

	start := m.Cycle

	// Baseline: no injection.
	const reps = 3
	baseTotal := 0
	for r := 0; r < reps; r++ {
		pp.Prime()
		if err := a.Syscall(kernel.SysReadv, 0, 0); err != nil {
			return nil, err
		}
		baseTotal += pp.Probe()
	}
	baseline := float64(baseTotal) / reps

	testSlot := func(candidate uint64) (bool, error) {
		pp.Prime()
		if err := a.InjectPrediction(victim, gadget); err != nil {
			return false, err
		}
		if err := a.Syscall(kernel.SysReadv, 0, candidate); err != nil {
			return false, err
		}
		return float64(pp.Probe())-baseline > cfg.Threshold, nil
	}

	needVotes := cfg.Confirmations
	if needVotes == 0 {
		needVotes = 3
	}

	found := uint64(0)
scan:
	for slot := 0; slot < kernel.PhysmapSlots; slot++ {
		candidate := kernel.PhysmapSlotBase(slot)
		hit, err := testSlot(candidate)
		if err != nil {
			return nil, err
		}
		if !hit {
			continue
		}
		if needVotes < 0 {
			found = candidate
			break scan
		}
		// A single probe false-positives on system-call cache thrash every
		// few hundred slots; confirm with a majority re-test before
		// accepting (the Section 7.3 noise handling, specialized to a
		// yes/no scan).
		votes := 0
		for r := 0; r < 4; r++ {
			h, err := testSlot(candidate)
			if err != nil {
				return nil, err
			}
			if h {
				votes++
			}
		}
		if votes >= needVotes {
			found = candidate
			break scan
		}
	}

	res := &KASLRResult{
		Guess:   found,
		Truth:   k.PhysmapBase,
		Correct: found == k.PhysmapBase,
		Cycles:  m.Cycle - start,
	}
	res.Seconds = CyclesToSeconds(res.Cycles)
	return res, nil
}

// PhysAddrConfig tunes the Table 5 experiment.
type PhysAddrConfig struct {
	ImageBase   uint64 // from BreakImageKASLR
	PhysmapBase uint64 // from BreakPhysmapKASLR
	// HugeVA is where the attacker's 2 MiB page A is mapped; 0 picks a
	// default and allocates it.
	HugeVA uint64
	// Threshold for the Flush+Reload hit decision; 0 picks half the
	// memory latency.
	Threshold int
}

// FindPhysAddr reproduces Table 5: determining the physical address of
// the attacker's own page A by guessing P_g, triggering the Listing 3
// load at physmap+P_g through the readv() path, and Flush+Reloading A
// ("We can verify if P_g is correct using Flush+Reload on address A").
// It returns the discovered physical address of the huge page.
func FindPhysAddr(k *kernel.Kernel, cfg PhysAddrConfig) (*KASLRResult, uint64, error) {
	telemetry.CountExperiment("physaddr")
	m := k.M
	a, err := NewAttack(k)
	if err != nil {
		return nil, 0, err
	}
	if cfg.ImageBase == 0 || cfg.PhysmapBase == 0 {
		return nil, 0, fmt.Errorf("core: physical-address exploit needs image and physmap bases")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = fetchLatencyThreshold(m.Prof)
	}
	hugeVA := cfg.HugeVA
	if hugeVA == 0 {
		hugeVA = 0x7f5000000000
		if _, err := k.AllocUserHuge(hugeVA); err != nil {
			return nil, 0, err
		}
	}

	victim := cfg.ImageBase + k.SymbolOffset("fdget_call_site")
	gadget := cfg.ImageBase + kernel.DisclosureGadgetOff
	// The gadget loads [R12 + 0xbe0]; monitor that offset within A.
	fr := NewFlushReload(m, hugeVA+0xbe0)

	start := m.Cycle
	found := uint64(0)
	for pg := uint64(0); pg < m.Phys.Size(); pg += mem.HugePageSize {
		fr.Flush()
		if err := a.InjectPrediction(victim, gadget); err != nil {
			return nil, 0, err
		}
		if err := a.Syscall(kernel.SysReadv, 0, cfg.PhysmapBase+pg); err != nil {
			return nil, 0, err
		}
		if fr.Reload() < cfg.Threshold {
			found = pg
			break
		}
	}

	truth, f := m.UserAS.Translate(hugeVA, mem.AccessRead, false)
	if f != nil {
		return nil, 0, fmt.Errorf("core: huge page translation: %v", f)
	}
	res := &KASLRResult{
		Guess:   found,
		Truth:   truth,
		Correct: found == truth,
		Cycles:  m.Cycle - start,
	}
	res.Seconds = CyclesToSeconds(res.Cycles)
	return res, found, nil
}

// FullChainConfig configures RunFullChain.
type FullChainConfig struct {
	Seed  int64
	Noise float64
}

// FullChainResult aggregates the Section 7 exploit chain on one boot.
type FullChainResult struct {
	Image    *KASLRResult
	Physmap  *KASLRResult
	PhysAddr *KASLRResult
}

// RunFullChain boots a system and runs the complete Section 7 chain —
// image KASLR (P1), then physmap KASLR (P2), then the physical address of
// an attacker page — feeding each stage's *recovered* value (not ground
// truth) into the next, exactly as a real exploit must.
func RunFullChain(p *uarch.Profile, cfg FullChainConfig) (*FullChainResult, error) {
	k, err := kernel.Boot(p, kernel.Config{Seed: cfg.Seed, NoiseLevel: cfg.Noise})
	if err != nil {
		return nil, err
	}
	out := &FullChainResult{}
	if out.Image, err = BreakImageKASLR(k, ImageKASLRConfig{}); err != nil {
		return nil, err
	}
	if out.Physmap, err = BreakPhysmapKASLR(k, PhysmapKASLRConfig{ImageBase: out.Image.Guess}); err != nil {
		return nil, err
	}
	out.PhysAddr, _, err = FindPhysAddr(k, PhysAddrConfig{
		ImageBase:   out.Image.Guess,
		PhysmapBase: out.Physmap.Guess,
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// bootFor is a convenience used by experiment drivers.
func bootFor(p *uarch.Profile, seed int64, noise float64, physBytes uint64) (*kernel.Kernel, error) {
	return kernel.Boot(p, kernel.Config{Seed: seed, NoiseLevel: noise, PhysBytes: physBytes})
}
