package analysis

import (
	"strings"
	"testing"
)

// TestLoadTypeChecksModulePackage loads a real module package through
// the go list + source-importer pipeline and sanity-checks the result
// carries syntax, types, and resolved uses.
func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load([]string{"phantom/internal/gf2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "phantom/internal/gf2" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	if len(p.Files) == 0 {
		t.Error("no files loaded")
	}
	if p.Types == nil || p.Types.Name() != "gf2" {
		t.Errorf("types package = %v", p.Types)
	}
	if len(p.Info.Uses) == 0 {
		t.Error("no uses resolved; analyzers would be blind")
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded; invariants only cover shipped code", name)
		}
	}
}

// TestLoadRunsSuiteOnIntraModuleImports loads a package that imports
// other module packages (sweep imports telemetry), exercising the
// source importer's module resolution.
func TestLoadRunsSuiteOnIntraModuleImports(t *testing.T) {
	pkgs, err := Load([]string{"phantom/internal/sweep"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(Suite(), pkgs)
	for _, d := range diags {
		t.Errorf("clean package produced: %s", d)
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load([]string{"phantom/internal/definitely-not-here"}); err == nil {
		t.Fatal("expected an error for an unknown package")
	}
}
