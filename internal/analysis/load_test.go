package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadTypeChecksModulePackage loads a real module package through
// the go list + source-importer pipeline and sanity-checks the result
// carries syntax, types, and resolved uses.
func TestLoadTypeChecksModulePackage(t *testing.T) {
	pkgs, err := Load([]string{"phantom/internal/gf2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "phantom/internal/gf2" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	if len(p.Files) == 0 {
		t.Error("no files loaded")
	}
	if p.Types == nil || p.Types.Name() != "gf2" {
		t.Errorf("types package = %v", p.Types)
	}
	if len(p.Info.Uses) == 0 {
		t.Error("no uses resolved; analyzers would be blind")
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded; invariants only cover shipped code", name)
		}
	}
}

// TestLoadRunsSuiteOnIntraModuleImports loads a package that imports
// other module packages (sweep imports telemetry), exercising the
// source importer's module resolution.
func TestLoadRunsSuiteOnIntraModuleImports(t *testing.T) {
	pkgs, err := Load([]string{"phantom/internal/sweep"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(Suite(), pkgs)
	for _, d := range diags {
		t.Errorf("clean package produced: %s", d)
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load([]string{"phantom/internal/definitely-not-here"}); err == nil {
		t.Fatal("expected an error for an unknown package")
	}
}

// writeLoadErrorModule lays out a module whose packages each trip one
// loader error path: a syntax error, an unresolvable import, and a
// directory with no Go files at all.
func writeLoadErrorModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module loaderr.test\n\ngo 1.21\n")
	write("syntax/syntax.go", "package syntax\n\nfunc broken( {}\n")
	write("badimport/badimport.go", "package badimport\n\nimport \"no/such/module/anywhere\"\n\nvar _ = anywhere.X\n")
	write("empty/README.txt", "no Go files here\n")
	return root
}

// TestLoadUnparsableFile pins that a syntax error surfaces as a Load
// error naming the package, not a panic or a silently skipped file.
func TestLoadUnparsableFile(t *testing.T) {
	inDir(t, writeLoadErrorModule(t))
	_, err := Load([]string{"./syntax"})
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if !strings.Contains(err.Error(), "syntax") {
		t.Errorf("error does not name the package: %v", err)
	}
}

// TestLoadMissingImport pins the type-check error path: an import the
// source importer cannot resolve fails the load with a type-checking
// error rather than producing a half-typed package the analyzers
// would mis-judge.
func TestLoadMissingImport(t *testing.T) {
	inDir(t, writeLoadErrorModule(t))
	_, err := Load([]string{"./badimport"})
	if err == nil {
		t.Fatal("expected a type-check error")
	}
	if !strings.Contains(err.Error(), "badimport") {
		t.Errorf("error does not name the package: %v", err)
	}
}

// TestLoadEmptyPackage pins the no-Go-files path: `go list` rejects
// the directory, and the pattern error propagates.
func TestLoadEmptyPackage(t *testing.T) {
	inDir(t, writeLoadErrorModule(t))
	_, err := Load([]string{"./empty"})
	if err == nil {
		t.Fatal("expected an error for a directory without Go files")
	}
}

// TestParseDirRejectsMultiplePackages pins the fixture-harness loader
// error path: a testdata directory holding two package clauses is a
// broken fixture, not a choice.
func TestParseDirRejectsMultiplePackages(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"a.go": "package a\n",
		"b.go": "package b\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := parseDir(token.NewFileSet(), dir); err == nil {
		t.Fatal("expected an error for two packages in one fixture dir")
	}
}
