package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader
// needs. Imports feeds the driver's dependency ordering and content
// chain hashes; it costs nothing extra to list.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
}

// Load expands the given `go list` patterns (./..., package paths, or
// directories) and returns each matched package parsed and
// type-checked from source. Test files are excluded: the invariants
// phantom-vet enforces are about what ships in the simulator, and
// tests legitimately use time.Now, os.Stdout capture, etc.
//
// Type information is resolved with the standard library's "source"
// importer, so the loader needs no compiled export data and no
// third-party machinery — only the go toolchain for pattern
// expansion. Cgo is disabled for the build context: the net/os
// packages type-check via their pure-Go fallbacks, which is all the
// analyzers need.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	// One file set and one importer across all packages: the source
	// importer caches each stdlib package it type-checks, which is
	// what keeps a ./... run to seconds rather than minutes.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to `go list -json` for pattern expansion — the one
// part of package loading not worth reimplementing, since build
// constraints, module resolution, and pattern syntax all live in the
// go command.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles,Imports", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		if len(msg) == 0 {
			msg = []byte(err.Error())
		}
		return nil, fmt.Errorf("go list %v: %s", patterns, msg)
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	files, err := parseFiles(fset, pkgPath, dir, goFiles)
	if err != nil {
		return nil, err
	}
	return typeCheck(fset, imp, pkgPath, files)
}

// parseFiles parses one package's files. A token.FileSet is safe for
// concurrent use, so the driver runs this phase in parallel across
// packages.
func parseFiles(fset *token.FileSet, pkgPath, dir string, goFiles []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck resolves types for already-parsed files. The shared source
// importer mutates its internal cache, so callers that type-check from
// multiple goroutines must serialize calls (the driver holds a mutex
// here; Load is serial).
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type checking: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// parseDir parses every non-test .go file of the single package in
// dir, for the fixture harness (which bypasses `go list` because
// testdata is invisible to ./... patterns on purpose).
func parseDir(fset *token.FileSet, dir string) (name string, files []*ast.File, err error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !isTestFile(fi.Name())
	}, parser.ParseComments)
	if err != nil {
		return "", nil, err
	}
	if len(pkgs) != 1 {
		return "", nil, fmt.Errorf("%s: want exactly one package, got %d", dir, len(pkgs))
	}
	var astPkg *ast.Package
	for n, p := range pkgs {
		name, astPkg = n, p // single entry, checked above
	}
	fileNames := make([]string, 0, len(astPkg.Files))
	for fn := range astPkg.Files {
		fileNames = append(fileNames, fn)
	}
	sort.Strings(fileNames)
	for _, fn := range fileNames {
		files = append(files, astPkg.Files[fn])
	}
	return name, files, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
