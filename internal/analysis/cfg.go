package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds intraprocedural control-flow graphs over function
// bodies. The original suite was purely syntactic — every rule was a
// pattern on one AST node — which is exactly as strong as it sounds:
// "Lock without Unlock" or "append discharged by a later sort" are
// properties of *paths*, not of nodes. The CFG gives analyzers the
// path structure (basic blocks, branch/loop edges, a single synthetic
// exit, the function's defer list) and dataflow.go gives them a
// forward worklist solver over it.
//
// The builder covers the statement forms the module actually uses:
// if/else, for (all three clauses), range, switch/type switch/select
// with fallthrough, labeled break/continue, goto, return, and defer.
// Panics are treated as plain calls (the repo's invariant checkers
// reason about orderly paths; a panic aborts the process and cannot
// leak a lock anyone will ever contend on). Function literals are
// deliberately *not* inlined: each gets its own CFG on demand, because
// a closure's body runs at an unknowable time relative to its
// enclosing function.

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters first. Exit is the single
	// synthetic exit: every return edge and the fall-off-the-end edge
	// lead here, so "at function exit" is one dataflow point.
	Entry *Block
	Exit  *Block

	// Blocks lists every block in creation order (Entry first). Some
	// may be unreachable (code after a return keeps its block so
	// positions stay reportable).
	Blocks []*Block

	// Defers collects every defer statement in the function, in
	// lexical order. Deferred calls run at Exit; analyzers that model
	// cleanup (lockcheck's deferred Unlock) consult this list rather
	// than the blocks, because a defer fires on every path that
	// reaches it regardless of how the function later exits.
	Defers []*ast.DeferStmt

	// after maps each loop statement (*ast.ForStmt / *ast.RangeStmt)
	// to the block control resumes at once the loop exits normally —
	// the "statements after the loop" entry point maporder's
	// sort-discharge walks.
	after map[ast.Stmt]*Block
}

// A Block is a maximal straight-line run of statements: control enters
// at the first node and leaves at the end via Succs. Nodes holds
// statements and, for branch heads, the condition or range expression
// (an ast.Expr), in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// After returns the block control reaches when the given for/range
// statement exits normally (or via an unlabeled break), or nil if s is
// not a loop in this CFG.
func (c *CFG) After(s ast.Stmt) *Block { return c.after[s] }

// BlockOf returns the block whose Nodes contain n, or nil. Positions
// are compared by identity, so n must be the exact node handed to the
// builder (statements and branch-head expressions).
func (c *CFG) BlockOf(n ast.Node) *Block {
	for _, b := range c.Blocks {
		for _, m := range b.Nodes {
			if m == n {
				return b
			}
		}
	}
	return nil
}

// BuildCFG constructs the CFG for a function declaration or literal.
// A nil or empty body yields a two-block graph (entry -> exit).
func BuildCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	b := &cfgBuilder{
		cfg:    &CFG{after: make(map[ast.Stmt]*Block)},
		labels: make(map[string]*labelInfo),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmts(body.List)
	}
	b.edge(b.cur, b.cfg.Exit)
	b.resolveGotos()
	return b.cfg
}

// loopFrame is one entry of the enclosing-loop/switch stack: where an
// unlabeled break and continue go from inside it.
type loopFrame struct {
	breakTo    *Block
	continueTo *Block // nil inside switch/select frames
	label      string // non-empty if the loop/switch is labeled
}

// labelInfo tracks a label's goto target block (created on first
// mention, forward references included).
type labelInfo struct {
	block *Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel carries a label name into the next loop/switch
	// statement so `L: for {...}` registers L as that loop's label.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock ends the current block and begins at next.
func (b *cfgBuilder) startBlock(next *Block) { b.cur = next }

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		// The label is a goto target and, if it labels a loop or
		// switch, the name unlabeled-break frames resolve against.
		li := b.labelTarget(s.Label.Name)
		b.edge(b.cur, li.block)
		b.startBlock(li.block)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		head := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(head, then)
		b.startBlock(then)
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els)
			b.startBlock(els)
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		b.cfg.after[s] = after
		b.frames = append(b.frames, loopFrame{breakTo: after, continueTo: post, label: label})
		b.startBlock(body)
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.startBlock(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s.X)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.edge(head, body)
		b.edge(head, after) // zero iterations
		b.cfg.after[s] = after
		b.frames = append(b.frames, loopFrame{breakTo: after, continueTo: head, label: label})
		b.startBlock(body)
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.startBlock(after)

	case *ast.SwitchStmt:
		b.switchLike(label, []ast.Node{nodeOrNil(s.Init), exprOrNil(s.Tag)}, s.Body)
	case *ast.TypeSwitchStmt:
		// The assign (x := y.(type)) runs before any case; it lives in
		// the head block so analyzers see it on every path.
		b.switchLike(label, []ast.Node{nodeOrNil(s.Init), nodeOrNil(s.Assign)}, s.Body)
	case *ast.SelectStmt:
		b.switchLike(label, nil, s.Body)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.startBlock(b.newBlock()) // anything after is unreachable

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.frameFor(s.Label); t != nil {
				b.edge(b.cur, t.breakTo)
			}
			b.startBlock(b.newBlock())
		case token.CONTINUE:
			if t := b.frameFor(s.Label); t != nil && t.continueTo != nil {
				b.edge(b.cur, t.continueTo)
			}
			b.startBlock(b.newBlock())
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.startBlock(b.newBlock())
		case token.FALLTHROUGH:
			// switchLike wires the fallthrough edge to the next case
			// body; nothing to do here.
		}

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	default:
		// Expression statements, assignments, declarations, go, send,
		// inc/dec, empty: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func nodeOrNil(s ast.Stmt) ast.Node {
	if s == nil {
		return nil
	}
	return s
}

func exprOrNil(e ast.Expr) ast.Node {
	if e == nil {
		return nil
	}
	return e
}

// switchLike builds the shared switch / type switch / select shape:
// a head that branches to each clause body (plus after, when no
// default clause makes the switch exhaustive), with fallthrough edges
// between adjacent case bodies.
func (b *cfgBuilder) switchLike(label string, headNodes []ast.Node, body *ast.BlockStmt) {
	for _, n := range headNodes {
		if n != nil {
			b.cur.Nodes = append(b.cur.Nodes, n)
		}
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{breakTo: after, label: label})

	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	hasDefault := false
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			blk := b.newBlock()
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseStmts = append(clauseStmts, cl.Body)
		case *ast.CommClause:
			blk := b.newBlock()
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blk.Nodes = append(blk.Nodes, cl.Comm)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseStmts = append(clauseStmts, cl.Body)
		}
	}
	for i, blk := range clauseBlocks {
		b.edge(head, blk)
		b.startBlock(blk)
		b.stmts(clauseStmts[i])
		if ft := endsInFallthrough(clauseStmts[i]); ft && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		// Without a default clause a switch can fall through to after
		// directly. (A select without default blocks instead, but the
		// skip edge is harmless there — it only weakens must-facts.)
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.startBlock(after)
}

func endsInFallthrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	br, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// frameFor resolves a break/continue target: the innermost frame for
// an unlabeled branch, the frame carrying the label otherwise.
func (b *cfgBuilder) frameFor(label *ast.Ident) *loopFrame {
	if len(b.frames) == 0 {
		return nil
	}
	if label == nil {
		return &b.frames[len(b.frames)-1]
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].label == label.Name {
			return &b.frames[i]
		}
	}
	return nil
}

func (b *cfgBuilder) labelTarget(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil {
			b.edge(g.from, li.block)
		}
	}
}
