// Package analysis is phantom-vet: a small static-analysis suite that
// enforces the simulator's determinism, parity, and no-perturbation
// invariants at compile time instead of discovering violations in the
// runtime parity tests.
//
// The repo's core value is that every experiment is bit-deterministic
// for a given seed — that is what lets the predecode, telemetry, and
// serving subsystems pin byte-identical parity. Those invariants die by
// a thousand cuts: a stray time.Now in a hot loop, an unseeded
// math/rand call, a map range feeding rendered output. Each analyzer in
// this package encodes one such invariant as a syntactic/type-level
// rule so `make check` rejects the cut before a parity test has to
// bisect it.
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, an
// analysistest-style fixture harness) on top of the standard library's
// go/ast and go/types only, because the build environment vendors no
// third-party modules. If the tree ever grows an x/tools dependency,
// each Analyzer here translates mechanically: Run already has the
// (pass) -> diagnostics signature.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant check. It is the stdlib-only
// analogue of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// phantomvet:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant the
	// analyzer enforces and why the repo needs it.
	Doc string

	// Applies reports whether the analyzer's invariant covers the
	// given package path and file. The driver consults it for real
	// packages; the fixture harness ignores it so testdata can
	// exercise the raw rule. A nil Applies means "everywhere".
	Applies func(pkgPath, filename string) bool

	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// A Pass carries one package's syntax and type information through an
// Analyzer.Run invocation, plus the flow engine's shared state: lazy
// per-function CFGs, the cross-package fact store, and the hot set the
// driver derived from the whole-repo call graph.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts exposes the exported facts of already-analyzed packages
	// (dependencies, under the driver's ordering). Nil in isolated
	// fixture runs.
	Facts *FactStore

	// OwnFacts is where this package's analyzers export facts for
	// their importers. Nil in isolated fixture runs.
	OwnFacts *PackageFacts

	// Hot holds the FullNames of this package's functions that the
	// whole-repo call graph marks reachable from the hot roots. Nil
	// when no global graph exists (fixtures, single-package runs);
	// hotalloc then falls back to intra-package reachability from
	// annotated roots.
	Hot map[string]bool

	pkg   *Package
	diags []Diagnostic
}

// CFG returns the (lazily built) control-flow graph of fn, which must
// be an *ast.FuncDecl or *ast.FuncLit. The cache lives on the Package,
// so the suite builds each function's graph at most once per package
// no matter how many analyzers consult it.
func (p *Pass) CFG(fn ast.Node) *CFG {
	if p.pkg == nil {
		return BuildCFG(fn)
	}
	if p.pkg.cfgs == nil {
		p.pkg.cfgs = make(map[ast.Node]*CFG)
	}
	c := p.pkg.cfgs[fn]
	if c == nil {
		c = BuildCFG(fn)
		p.pkg.cfgs[fn] = c
	}
	return c
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the file:line:col form the other
// phantom binaries (and go vet) use.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	cfgs map[ast.Node]*CFG // shared lazy CFG cache (Pass.CFG)
}

// ignoreDirective matches a suppression comment. The analyzer name (or
// "all") must follow the directive; anything after it is the
// human-facing justification, which is mandatory in spirit — a bare
// ignore with no reason tells a reviewer nothing.
//
// The name list is comma-separated with no spaces; everything after
// the first space is the reason.
//
//	x := pick(m) //phantomvet:ignore maporder keys are re-sorted by caller
//
// Like the toolchain's //go: directives, a suppression is written with
// no space between // and phantomvet: and must begin the comment. A
// doc comment that merely *mentions* a directive mid-sentence (or an
// indented example like the one above, whose comment text starts with
// the code) is prose, not a suppression — anchoring here is what keeps
// unusedignore from flagging documentation.
var ignoreDirective = regexp.MustCompile(`^//phantomvet:ignore\s+([a-z,]+)`)

// A directive is one parsed phantomvet:ignore comment: the names it
// suppresses, its position, and — per name — whether it ever actually
// suppressed a diagnostic this run. A directive whose named analyzer
// ran but never fired on its lines has outlived its reason, and the
// unusedignore pseudo-analyzer reports it.
type directive struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

// A directiveSet indexes a package's directives by the lines they
// cover (a directive suppresses its own line and the line immediately
// below, so it can sit above the flagged statement).
type directiveSet struct {
	byLine map[int][]*directive // same-file lines; fixtures and packages never collide across files on line+name in practice, but matching also checks the file
	all    []*directive
}

func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byLine: make(map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := &directive{
					pos:  fset.Position(c.Pos()),
					used: make(map[string]bool),
				}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' }) {
					d.names = append(d.names, name)
				}
				ds.all = append(ds.all, d)
				ds.byLine[d.pos.Line] = append(ds.byLine[d.pos.Line], d)
				ds.byLine[d.pos.Line+1] = append(ds.byLine[d.pos.Line+1], d)
			}
		}
	}
	return ds
}

// suppresses reports whether some directive covers a diagnostic by
// analyzer name (or "all") on its line, marking the directive used.
func (ds *directiveSet) suppresses(d Diagnostic) bool {
	hit := false
	for _, dir := range ds.byLine[d.Pos.Line] {
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		for _, name := range dir.names {
			if name == d.Analyzer || name == "all" {
				dir.used[name] = true
				hit = true
			}
		}
	}
	return hit
}

// unusedDiags reports directives with names that never suppressed
// anything, restricted to names whose analyzers were actually part of
// this run (a -run subset cannot prove a suppression dead). Unknown
// names are always reported: they suppress nothing today and would
// silently rot.
func (ds *directiveSet) unusedDiags(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range ds.all {
		for _, name := range dir.names {
			if dir.used[name] {
				continue
			}
			var msg string
			switch {
			case name == "all":
				msg = "phantomvet:ignore all suppresses nothing here; delete the directive"
			case ByName(name) == nil:
				msg = fmt.Sprintf("phantomvet:ignore names unknown analyzer %q; delete or fix the directive", name)
			case !ran[name]:
				continue // that analyzer did not run; can't judge
			default:
				msg = fmt.Sprintf("phantomvet:ignore %s suppresses nothing here; the finding it silenced is gone, delete the directive", name)
			}
			out = append(out, Diagnostic{Analyzer: UnusedIgnore.Name, Pos: dir.pos, Message: msg})
		}
	}
	return out
}

// runOne applies a single analyzer to a package and returns its
// diagnostics with phantomvet:ignore suppressions already removed
// (marking the directives used) and positions sorted. When scoped is
// true, diagnostics in files outside a.Applies are dropped
// (package-level applicability is the caller's concern; file-level is
// handled here because only the diagnostic knows its file).
func runOne(a *Analyzer, pkg *Package, scoped bool, ds *directiveSet, facts *FactStore, own *PackageFacts, hot map[string]bool) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Facts:    facts,
		OwnFacts: own,
		Hot:      hot,
		pkg:      pkg,
	}
	a.Run(pass)
	if ds == nil {
		ds = parseDirectives(pkg.Fset, pkg.Files)
	}
	var out []Diagnostic
	for _, d := range pass.diags {
		if ds.suppresses(d) {
			continue
		}
		if scoped && a.Applies != nil && !a.Applies(pkg.PkgPath, d.Pos.Filename) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run applies every analyzer in the suite to every package with full
// cross-package fact propagation and hot-set derivation, and returns
// the combined findings sorted by position. It is the serial reference
// pipeline: summaries first (so the whole-repo call graph and hot set
// exist before any checking analyzer runs), then per-package analysis
// in dependency order (so facts only ever flow along the import DAG).
// The parallel, cached driver (driver.go) produces identical output.
func Run(suite []*Analyzer, pkgs []*Package) []Diagnostic {
	ordered := topoSort(pkgs)
	facts := NewFactStore()
	summaries := make(map[string]*PackageFacts, len(ordered))
	for _, pkg := range ordered {
		summaries[pkg.PkgPath] = summarizePackage(pkg)
	}
	hot := BuildCallGraph(summaries).Reachable(HotRoots)
	var out []Diagnostic
	for _, pkg := range ordered {
		diags, _ := AnalyzePackage(suite, pkg, facts, summaries[pkg.PkgPath], hotIn(hot, summaries[pkg.PkgPath]), nil)
		out = append(out, diags...)
	}
	sortDiagnostics(out)
	return out
}

// hotIn restricts the global hot set to the functions a package
// declares (the keys of its call summary).
func hotIn(hot map[string]bool, summary *PackageFacts) map[string]bool {
	out := make(map[string]bool)
	for name := range summary.Funcs {
		if hot[name] {
			out[name] = true
		}
	}
	return out
}

// AnalyzePackage runs the suite over one loaded package: checking
// analyzers (with dep facts and the package's hot set), suppression
// filtering, and — when the suite includes unusedignore — the dead-
// suppression check over everything that ran. The package's exported
// facts land in facts (seeded with summary) for its importers, and in
// the returned PackageFacts for the driver's cache. timing, when
// non-nil, receives per-analyzer wall time.
func AnalyzePackage(suite []*Analyzer, pkg *Package, facts *FactStore, summary *PackageFacts, hot map[string]bool, timing func(analyzer string, d time.Duration)) ([]Diagnostic, *PackageFacts) {
	if summary == nil {
		summary = summarizePackage(pkg)
	}
	own := summary // durable facts accrete onto the call summary
	ds := parseDirectives(pkg.Fset, pkg.Files)
	ran := make(map[string]bool)
	var out []Diagnostic
	unusedCheck := false
	for _, a := range suite {
		if a == UnusedIgnore {
			unusedCheck = true
			continue
		}
		ran[a.Name] = true
		if a.Applies != nil && !packageInScope(a, pkg) {
			continue
		}
		start := time.Now()
		out = append(out, runOne(a, pkg, true, ds, facts, own, hot)...)
		if timing != nil {
			timing(a.Name, time.Since(start))
		}
	}
	if unusedCheck {
		out = append(out, ds.unusedDiags(ran)...)
	}
	if facts != nil {
		facts.Set(pkg.PkgPath, own)
	}
	sortDiagnostics(out)
	return out, own
}

// topoSort orders packages so that every package follows the packages
// it imports (restricted to the given set). Ties and unrelated
// packages keep a deterministic path order.
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	sort.Strings(paths)
	var out []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p := byPath[path]
		if p == nil || state[path] != 0 {
			return
		}
		state[path] = 1
		if p.Types != nil {
			imps := make([]string, 0, len(p.Types.Imports()))
			for _, imp := range p.Types.Imports() {
				imps = append(imps, imp.Path())
			}
			sort.Strings(imps)
			for _, imp := range imps {
				visit(imp)
			}
		}
		state[path] = 2
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// packageInScope reports whether any file of pkg is covered by a's
// Applies predicate, so Run can skip whole packages cheaply.
func packageInScope(a *Analyzer, pkg *Package) bool {
	for _, f := range pkg.Files {
		if a.Applies(pkg.PkgPath, pkg.Fset.Position(f.Pos()).Filename) {
			return true
		}
	}
	return false
}
