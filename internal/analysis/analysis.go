// Package analysis is phantom-vet: a small static-analysis suite that
// enforces the simulator's determinism, parity, and no-perturbation
// invariants at compile time instead of discovering violations in the
// runtime parity tests.
//
// The repo's core value is that every experiment is bit-deterministic
// for a given seed — that is what lets the predecode, telemetry, and
// serving subsystems pin byte-identical parity. Those invariants die by
// a thousand cuts: a stray time.Now in a hot loop, an unseeded
// math/rand call, a map range feeding rendered output. Each analyzer in
// this package encodes one such invariant as a syntactic/type-level
// rule so `make check` rejects the cut before a parity test has to
// bisect it.
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, an
// analysistest-style fixture harness) on top of the standard library's
// go/ast and go/types only, because the build environment vendors no
// third-party modules. If the tree ever grows an x/tools dependency,
// each Analyzer here translates mechanically: Run already has the
// (pass) -> diagnostics signature.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is the stdlib-only
// analogue of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// phantomvet:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant the
	// analyzer enforces and why the repo needs it.
	Doc string

	// Applies reports whether the analyzer's invariant covers the
	// given package path and file. The driver consults it for real
	// packages; the fixture harness ignores it so testdata can
	// exercise the raw rule. A nil Applies means "everywhere".
	Applies func(pkgPath, filename string) bool

	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// A Pass carries one package's syntax and type information through an
// Analyzer.Run invocation.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the file:line:col form the other
// phantom binaries (and go vet) use.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// ignoreDirective matches a suppression comment. The analyzer name (or
// "all") must follow the directive; anything after it is the
// human-facing justification, which is mandatory in spirit — a bare
// ignore with no reason tells a reviewer nothing.
//
// The name list is comma-separated with no spaces; everything after
// the first space is the reason.
//
//	x := pick(m) //phantomvet:ignore maporder keys are re-sorted by caller
var ignoreDirective = regexp.MustCompile(`(?://|/\*)\s*phantomvet:ignore\s+([a-z,]+)`)

// ignoredLines maps file line numbers to the set of analyzer names
// suppressed on that line (a directive suppresses its own line and the
// line immediately below, so it can sit above the flagged statement).
func ignoredLines(fset *token.FileSet, files []*ast.File) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	add := func(line int, name string) {
		if out[line] == nil {
			out[line] = make(map[string]bool)
		}
		out[line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' }) {
					add(line, name)
					add(line+1, name)
				}
			}
		}
	}
	return out
}

// runOne applies a single analyzer to a package and returns its
// diagnostics with phantomvet:ignore suppressions already removed and
// positions sorted. When scoped is true, diagnostics in files outside
// a.Applies are dropped (package-level applicability is the caller's
// concern; file-level is handled here because only the diagnostic
// knows its file).
func runOne(a *Analyzer, pkg *Package, scoped bool) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	ignored := ignoredLines(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range pass.diags {
		if s := ignored[d.Pos.Line]; s != nil && (s[a.Name] || s["all"]) {
			continue
		}
		if scoped && a.Applies != nil && !a.Applies(pkg.PkgPath, d.Pos.Filename) {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run applies every analyzer in the suite to every package, honouring
// each analyzer's Applies scope, and returns the combined findings
// sorted by position.
func Run(suite []*Analyzer, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range suite {
			if a.Applies != nil && !packageInScope(a, pkg) {
				continue
			}
			out = append(out, runOne(a, pkg, true)...)
		}
	}
	sortDiagnostics(out)
	return out
}

// packageInScope reports whether any file of pkg is covered by a's
// Applies predicate, so Run can skip whole packages cheaply.
func packageInScope(a *Analyzer, pkg *Package) bool {
	for _, f := range pkg.Files {
		if a.Applies(pkg.PkgPath, pkg.Fset.Position(f.Pos()).Filename) {
			return true
		}
	}
	return false
}
