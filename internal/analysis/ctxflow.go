package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow forbids minting a fresh root context where a caller-provided
// one is in scope.
//
// The serving subsystem threads one context per request end-to-end:
// client disconnects and deadlines must cancel the sweep workers and
// the experiment drivers they feed, or a dead request keeps burning a
// scheduler slot. context.Background()/TODO() inside that call chain
// silently forks the cancellation tree — everything below the fork
// ignores the caller. The analyzer flags exactly that: a Background/
// TODO call lexically inside a function (or closure) that already has
// a context.Context parameter in scope. Deliberate detaches (the
// request coalescer's flight context, whose lifetime is the set of
// waiters rather than any single caller) carry a phantomvet:ignore
// with the justification.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/context.TODO() where a caller-provided context is in scope — " +
		"cancellation must flow end-to-end, not fork",
	Applies: ctxFlowScope,
	Run:     runCtxFlow,
}

// ctxFlowScope: the packages on the request path below the CLIs. The
// binaries in cmd/ own their root contexts legitimately.
func ctxFlowScope(pkgPath, filename string) bool {
	return pkgPath == "phantom/internal/service" || pkgPath == "phantom/internal/sweep"
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		checkCtxNode(pass, file, false)
	}
}

// checkCtxNode walks n. inScope records whether some enclosing
// function has a context.Context parameter; closures inherit it, since
// the captured context is still reachable where the closure's body
// runs.
func checkCtxNode(pass *Pass, n ast.Node, inScope bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				checkCtxNode(pass, n.Body, inScope || hasCtxParam(pass, n.Type))
			}
			return false
		case *ast.FuncLit:
			checkCtxNode(pass, n.Body, inScope || hasCtxParam(pass, n.Type))
			return false
		case *ast.SelectorExpr:
			if !inScope {
				return true
			}
			_, pkgPath := selectorPackage(pass, n)
			if pkgPath == "context" && (n.Sel.Name == "Background" || n.Sel.Name == "TODO") {
				pass.Reportf(n.Pos(), "context.%s forks the cancellation tree while a caller-provided context is in scope; thread the caller's context (or phantomvet:ignore with the detach rationale)", n.Sel.Name)
			}
		}
		return true
	})
}

// hasCtxParam reports whether ft declares a parameter of type
// context.Context.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
