package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose body performs an
// iteration-order-sensitive effect without the keys being sorted.
//
// Go randomizes map iteration order per run, so any map range that
// appends to a slice later rendered, writes to an io.Writer or hash,
// accumulates floating-point sums, or returns/breaks on an arbitrary
// element produces output that differs between two runs with the same
// seed — exactly the class of bug the golden/parity tests exist to
// catch, except those only catch it when the map happens to reshuffle
// under the test runner. The analyzer proves the absence of the
// pattern instead.
//
// Order-insensitive bodies are allowed: writes keyed into another map,
// deletes, integer counters (associative and commutative), and the
// canonical collect-then-sort idiom where the loop only appends keys
// to a slice that is passed to sort.* / slices.Sort* before any other
// use.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map ranges whose body has iteration-order-sensitive effects (output, hashes, " +
		"slice appends never sorted, float sums, early exit) — sort the keys first",
	Applies: mapOrderScope,
	Run:     runMapOrder,
}

// mapOrderScope: everything in the module. Rendered output reaches
// stdout through many layers (report, service, telemetry run logs,
// the CLIs), and the simulation packages must not have order-dependent
// state transitions either; examples are included because their output
// is pasted into docs.
func mapOrderScope(pkgPath, filename string) bool { return true }

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, body := funcParts(n)
			if body == nil {
				return true
			}
			checkMapRanges(pass, fn, body)
			return true
		})
	}
}

// funcParts extracts the body from a function declaration or literal,
// so map ranges can be checked against the statements that follow them
// in the same function (for the collect-then-sort idiom).
func funcParts(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn, fn.Body
	case *ast.FuncLit:
		return fn, fn.Body
	}
	return nil, nil
}

// checkMapRanges recursively walks the statement blocks of a function
// body looking for map ranges. For each one found, the statements that
// lexically follow it in its enclosing block are passed along — the
// window in which an appended slice may still be sorted.
func checkMapRanges(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	var walkBlock func(stmts []ast.Stmt)
	var walkStmt func(s ast.Stmt, rest []ast.Stmt)
	walkStmt = func(s ast.Stmt, rest []ast.Stmt) {
		switch s := s.(type) {
		case *ast.RangeStmt:
			if isMapType(pass, s.X) {
				checkMapRangeBody(pass, fn, s, rest)
			}
			walkBlock(s.Body.List)
		case *ast.BlockStmt:
			walkBlock(s.List)
		case *ast.IfStmt:
			walkBlock(s.Body.List)
			if s.Else != nil {
				walkStmt(s.Else, nil)
			}
		case *ast.ForStmt:
			walkBlock(s.Body.List)
		case *ast.SwitchStmt:
			walkBlock(s.Body.List)
		case *ast.TypeSwitchStmt:
			walkBlock(s.Body.List)
		case *ast.SelectStmt:
			walkBlock(s.Body.List)
		case *ast.CaseClause:
			walkBlock(s.Body)
		case *ast.CommClause:
			walkBlock(s.Body)
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, rest)
		}
		// Function literals under s (assigned, deferred, passed as
		// arguments) are found by runMapOrder's own traversal and
		// checked as functions in their own right.
	}
	walkBlock = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			walkStmt(s, stmts[i+1:])
		}
	}
	walkBlock(body.List)
}

func isMapType(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody applies the order-sensitivity rules to one map
// range. rest is the statement tail of the block containing the range,
// used to discharge appends via a later sort. breakable tracks whether
// an unlabeled break at the current nesting level would exit the map
// range itself (true) or an inner loop/switch (false).
func checkMapRangeBody(pass *Pass, fn ast.Node, rs *ast.RangeStmt, rest []ast.Stmt) {
	var walk func(stmts []ast.Stmt, breakable bool)
	walkStmt := func(s ast.Stmt, breakable bool) {
		switch s := s.(type) {
		case *ast.RangeStmt:
			if isMapType(pass, s.X) {
				return // nested map range gets its own diagnostic pass
			}
			walk(s.Body.List, false)
		case *ast.ForStmt:
			walk(s.Body.List, false)
		case *ast.SwitchStmt:
			walkSwitchBody(pass, s.Body, &walk)
		case *ast.TypeSwitchStmt:
			walkSwitchBody(pass, s.Body, &walk)
		case *ast.SelectStmt:
			walkSwitchBody(pass, s.Body, &walk)
		case *ast.BlockStmt:
			walk(s.List, breakable)
		case *ast.IfStmt:
			walk(s.Body.List, breakable)
			if s.Else != nil {
				walk([]ast.Stmt{s.Else}, breakable)
			}
		case *ast.LabeledStmt:
			walk([]ast.Stmt{s.Stmt}, breakable)
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && s.Label == nil && breakable {
				pass.Reportf(s.Pos(), "break out of a map range selects an arbitrary element; iterate sorted keys")
			}
		case *ast.ReturnStmt:
			if len(s.Results) > 0 && !constantReturn(pass, s) {
				pass.Reportf(s.Pos(), "return inside a map range selects an arbitrary element; iterate sorted keys")
			}
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside a map range publishes elements in random order; iterate sorted keys")
		case *ast.GoStmt:
			pass.Reportf(s.Pos(), "goroutine launched inside a map range starts work in random order; iterate sorted keys")
		case *ast.ExprStmt:
			checkMapRangeCall(pass, s.X)
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fn, s, rs, rest)
		}
	}
	walk = func(stmts []ast.Stmt, breakable bool) {
		for _, s := range stmts {
			walkStmt(s, breakable)
		}
	}
	walk(rs.Body.List, true)
}

// walkSwitchBody visits the case bodies of a switch/select inside a
// map range. An unlabeled break there exits the switch, not the range.
func walkSwitchBody(pass *Pass, body *ast.BlockStmt, walk *func([]ast.Stmt, bool)) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			(*walk)(c.Body, false)
		case *ast.CommClause:
			(*walk)(c.Body, false)
		}
	}
}

// checkMapRangeCall handles a bare call statement inside a map range.
// A call evaluated purely for its side effects runs those side effects
// in map order, which is only safe if the callee is commutative — a
// property the analyzer cannot see, so the call is flagged and
// intentionally-commutative sites carry a phantomvet:ignore with the
// argument why.
func checkMapRangeCall(pass *Pass, call ast.Expr) {
	c, ok := call.(*ast.CallExpr)
	if !ok {
		return
	}
	if name, ok := builtinName(pass, c); ok {
		switch name {
		case "delete":
			return // removing keys is order-insensitive
		case "print", "println":
			pass.Reportf(c.Pos(), "%s inside a map range emits output in random order; iterate sorted keys", name)
			return
		}
	}
	pass.Reportf(c.Pos(), "call evaluated for effect inside a map range runs in random order; iterate sorted keys (or phantomvet:ignore with the commutativity argument)")
}

// checkMapRangeAssign handles assignments inside a map range body.
func checkMapRangeAssign(pass *Pass, fn ast.Node, s *ast.AssignStmt, rs *ast.RangeStmt, rest []ast.Stmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// x[k] = v, locals, and field sets are order-insensitive (the
		// final state does not depend on visit order as long as keys
		// are distinct, which map ranges guarantee). The exception is
		// an append chain: out = append(out, ...) builds a slice in
		// map order.
		for i, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				if name, ok := builtinName(pass, call); ok && name == "append" && i < len(s.Lhs) {
					if !sortedLater(pass, s.Lhs[i], rest) && !sortedOnAllPaths(pass, fn, rs, s.Lhs[i]) {
						pass.Reportf(call.Pos(), "append inside a map range builds a slice in random order; sort it before use (or collect keys and sort)")
					}
				}
			}
		}
	default:
		// Compound assignment: s += v and friends. Integer and bitwise
		// accumulation is associative+commutative and therefore safe;
		// string concatenation depends on order, float addition on
		// rounding order.
		lhsType := pass.Info.Types[s.Lhs[0]].Type
		if lhsType == nil {
			return
		}
		b, ok := lhsType.Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case b.Info()&types.IsString != 0:
			pass.Reportf(s.Pos(), "string concatenation inside a map range depends on iteration order; iterate sorted keys")
		case b.Info()&(types.IsFloat|types.IsComplex) != 0:
			pass.Reportf(s.Pos(), "floating-point accumulation inside a map range depends on iteration order (rounding); iterate sorted keys")
		}
	}
}

// constantReturn reports whether every result of s is a compile-time
// constant or nil. Such a return cannot select an arbitrary element:
// the value carried out is the same whichever iteration triggered it.
// This is the existential-predicate idiom —
//
//	for k := range a {
//		if !b[k] {
//			return false
//		}
//	}
//
// — where "does any key fail?" is order-independent by construction.
// If the body also had an order-sensitive effect before the early
// return, that effect is flagged by its own rule; discharging the
// return itself costs nothing.
func constantReturn(pass *Pass, s *ast.ReturnStmt) bool {
	for _, r := range s.Results {
		tv, ok := pass.Info.Types[r]
		if !ok || (tv.Value == nil && !tv.IsNil()) {
			return false
		}
	}
	return true
}

// sortedLater reports whether target (the LHS of an append inside a
// map range) is passed to a sort function in the statements following
// the range before anything else uses it. Only the canonical direct
// forms are recognized: sort.X(target, ...) and slices.X(target, ...).
func sortedLater(pass *Pass, target ast.Expr, rest []ast.Stmt) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	for _, s := range rest {
		// Only an unconditional top-level sort statement discharges
		// here. A sort buried inside an if/loop in a following
		// statement runs on some paths only — that case falls through
		// to sortedOnAllPaths, which judges each path separately.
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && isSortCall(pass, call, obj) {
				return true
			}
		}
		// Any other use of the slice before a sort (a return, a write,
		// a call argument) consumes it in map order. Further appends —
		// x = append(x, ...) from another collection loop — are
		// neutral: they extend the unordered prefix that the eventual
		// sort fixes up.
		if usesObjectOrderSensitively(pass, s, obj) {
			return false
		}
	}
	return false
}

// usesObjectOrderSensitively reports whether any identifier under n
// resolves to obj outside the neutral self-append form
// `obj = append(obj, ...)`.
func usesObjectOrderSensitively(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && isSelfAppend(pass, as, obj) {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSelfAppend matches `obj = append(obj, args...)` where no arg uses
// obj again.
func isSelfAppend(pass *Pass, as *ast.AssignStmt, obj types.Object) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || (pass.Info.Uses[lhs] != obj && pass.Info.Defs[lhs] != obj) {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if name, isBuiltin := builtinName(pass, call); !isBuiltin || name != "append" {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.Info.Uses[first] != obj {
		return false
	}
	for _, arg := range call.Args[1:] {
		if usesObjectOrderSensitively(pass, arg, obj) {
			return false
		}
	}
	return true
}

// sortedOnAllPaths is the flow-aware fallback for sortedLater: when
// the sort does not lexically follow the range in the same block —
// the range sits inside an if-arm or inner block and the sort lives
// in the enclosing one — the lexical window is empty and the old
// analyzer flagged the append anyway. Here the CFG answers the real
// question: starting from the block the range exits into, does every
// path reach a sort.X(target)/slices.X(target) call before any other
// (order-sensitive) use of target? Reaching function exit without a
// use also discharges — a slice nobody reads leaks no ordering.
func sortedOnAllPaths(pass *Pass, fn ast.Node, rs *ast.RangeStmt, target ast.Expr) bool {
	id, ok := target.(*ast.Ident)
	if !ok || fn == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	cfg := pass.CFG(fn)
	start := cfg.After(rs)
	if start == nil {
		return false
	}
	seen := make(map[*Block]bool)
	var ok2 func(b *Block) bool
	ok2 = func(b *Block) bool {
		if seen[b] {
			// Already under consideration or proven: a cycle back here
			// without an intervening use cannot introduce one.
			return true
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if nodeSortsObject(pass, n, obj) {
				return true // this path is discharged from here on
			}
			if usesObjectOrderSensitively(pass, n, obj) {
				return false
			}
		}
		for _, s := range b.Succs {
			if !ok2(s) {
				return false
			}
		}
		return true
	}
	return ok2(start)
}

// nodeSortsObject reports whether n contains a sort.X(obj, ...) or
// slices.X(obj, ...) call.
func nodeSortsObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && isSortCall(pass, call, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortCall reports whether call is sort.X(obj, ...) or
// slices.X(obj, ...).
func isSortCall(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	if len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, pkgPath := selectorPackage(pass, sel)
	if pkgPath != "sort" && pkgPath != "slices" {
		return false
	}
	argID, ok := call.Args[0].(*ast.Ident)
	return ok && pass.Info.Uses[argID] == obj
}

// builtinName returns the name of the builtin being called, if the
// call's function is a universe-scope builtin like append or delete.
func builtinName(pass *Pass, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}
