package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// The driver tests run against a throwaway two-package module rather
// than the phantom tree itself: type-checking the real repo from
// source takes seconds per run, and the cache semantics (cold fill,
// warm hit, chain invalidation, hot-set demotion, set-boundary
// soundness) are package-count-independent.

// writeDriverModule lays out a module with one maporder violation per
// package (maporder applies everywhere, so its findings survive the
// driver's scope filtering on a non-phantom module path). Package b
// imports a, giving the chain hash an edge to invalidate through.
func writeDriverModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vetdriver.test\n\ngo 1.21\n")
	write("a/a.go", `package a

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`)
	write("b/b.go", `package b

import "vetdriver.test/a"

func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return a.Keys(m)[0]
}
`)
	return root
}

// inDir chdirs into dir for the duration of the test. Driver tests
// share the process working directory, so none of them may run in
// parallel.
func inDir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func driverRun(t *testing.T, cacheDir string) ([]Diagnostic, *DriverStats) {
	t.Helper()
	diags, stats, err := RunDriver(Suite(), []string{"./..."}, DriverOptions{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

func TestDriverColdThenWarm(t *testing.T) {
	inDir(t, writeDriverModule(t))
	cacheDir := filepath.Join(t.TempDir(), "vetcache")

	cold, coldStats := driverRun(t, cacheDir)
	if coldStats.CacheHits != 0 || coldStats.CacheMisses != 2 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/2", coldStats.CacheHits, coldStats.CacheMisses)
	}
	if len(cold) != 2 {
		t.Fatalf("cold run: %d diagnostics, want 2 (one maporder finding per package): %v", len(cold), cold)
	}

	warm, warmStats := driverRun(t, cacheDir)
	if warmStats.CacheHits != 2 || warmStats.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 2/0", warmStats.CacheHits, warmStats.CacheMisses)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm diagnostics differ from cold:\ncold: %v\nwarm: %v", cold, warm)
	}
	for _, ps := range warmStats.PerPackage {
		if !ps.CacheHit {
			t.Errorf("warm run: package %s was not a cache hit", ps.Path)
		}
		if ps.Load != 0 || ps.Analyze != 0 {
			t.Errorf("warm run: package %s spent load=%v analyze=%v; hits must skip both", ps.Path, ps.Load, ps.Analyze)
		}
	}
}

// TestDriverChainInvalidation pins that editing a package re-analyzes
// it AND its importers: b's chain hash embeds a's, so a change to a
// invalidates both even though b's own files are untouched (b's
// diagnostics can depend on a's facts).
func TestDriverChainInvalidation(t *testing.T) {
	root := writeDriverModule(t)
	inDir(t, root)
	cacheDir := filepath.Join(t.TempDir(), "vetcache")
	driverRun(t, cacheDir)

	src := filepath.Join(root, "a", "a.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, append(data, []byte("\nfunc Extra() int { return 1 }\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats := driverRun(t, cacheDir)
	if stats.CacheHits != 0 || stats.CacheMisses != 2 {
		t.Fatalf("after editing a: hits=%d misses=%d, want 0/2 (a changed, b imports a)", stats.CacheHits, stats.CacheMisses)
	}

	// A further untouched run is fully warm again.
	_, stats = driverRun(t, cacheDir)
	if stats.CacheHits != 2 {
		t.Fatalf("re-warm run: hits=%d, want 2", stats.CacheHits)
	}
}

// TestDriverHotHashDemotion pins the second cache key: an entry whose
// chain still matches but whose recorded hot slice does not is
// demoted to a miss and re-analyzed, not served stale.
func TestDriverHotHashDemotion(t *testing.T) {
	inDir(t, writeDriverModule(t))
	cacheDir := filepath.Join(t.TempDir(), "vetcache")
	cold, _ := driverRun(t, cacheDir)

	entryPath := cacheEntryPath(cacheDir, "vetdriver.test/a")
	data, err := os.ReadFile(entryPath)
	if err != nil {
		t.Fatal(err)
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		t.Fatal(err)
	}
	entry.HotHash = "stale-hot-hash"
	doctored, err := json.Marshal(&entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryPath, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, stats := driverRun(t, cacheDir)
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("after hot-hash drift on a: hits=%d misses=%d, want 1/1", stats.CacheHits, stats.CacheMisses)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("demoted re-analysis changed output:\ncold: %v\ngot:  %v", cold, warm)
	}
}

// TestDriverSetBoundaryUncacheable pins the soundness rule for
// partial patterns: a package importing an in-module package outside
// the listed set is never cached, because the driver cannot hash the
// dependency's sources.
func TestDriverSetBoundaryUncacheable(t *testing.T) {
	inDir(t, writeDriverModule(t))
	cacheDir := filepath.Join(t.TempDir(), "vetcache")

	run := func() *DriverStats {
		t.Helper()
		_, stats, err := RunDriver(Suite(), []string{"./b"}, DriverOptions{CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	run()
	stats := run()
	if stats.CacheHits != 0 || stats.CacheMisses != 1 {
		t.Fatalf("partial-set rerun: hits=%d misses=%d, want 0/1 (b's import cone leaves the set)", stats.CacheHits, stats.CacheMisses)
	}
	if _, err := os.Stat(cacheEntryPath(cacheDir, "vetdriver.test/b")); !os.IsNotExist(err) {
		t.Fatalf("uncacheable package b has a cache entry on disk (stat err: %v)", err)
	}
}

// TestDriverCorruptEntryIsMiss pins that a torn or garbage cache file
// degrades to a miss instead of failing the run.
func TestDriverCorruptEntryIsMiss(t *testing.T) {
	inDir(t, writeDriverModule(t))
	cacheDir := filepath.Join(t.TempDir(), "vetcache")
	cold, _ := driverRun(t, cacheDir)

	entryPath := cacheEntryPath(cacheDir, "vetdriver.test/a")
	if err := os.WriteFile(entryPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	warm, stats := driverRun(t, cacheDir)
	if stats.CacheMisses != 1 {
		t.Fatalf("corrupt entry: misses=%d, want 1", stats.CacheMisses)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("corrupt-entry recovery changed output:\ncold: %v\ngot:  %v", cold, warm)
	}
}

// TestDriverMatchesRun pins the documented contract: the parallel
// driver's output is byte-identical to the serial reference pipeline.
func TestDriverMatchesRun(t *testing.T) {
	inDir(t, writeDriverModule(t))

	fromDriver, _, err := RunDriver(Suite(), []string{"./..."}, DriverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	fromRun := Run(Suite(), pkgs)
	if !reflect.DeepEqual(fromDriver, fromRun) {
		t.Fatalf("driver and serial pipeline disagree:\ndriver: %v\nserial: %v", fromDriver, fromRun)
	}
	for _, d := range fromRun {
		if !strings.Contains(d.Message, "random order") && !strings.Contains(d.Message, "arbitrary element") {
			t.Errorf("unexpected diagnostic class: %v", d)
		}
	}
}
