package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestSuiteNamesAndLookup(t *testing.T) {
	want := []string{"determinism", "maporder", "noperturb", "ctxflow", "faultalloc",
		"lockcheck", "errflow", "goleak", "hotalloc", "unusedignore"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.Applies == nil {
			t.Errorf("%s: nil Applies scope", a.Name)
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of an unknown analyzer returned non-nil")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "machine.go", Line: 7, Column: 3},
		Message:  "time.Now reads the wall clock",
	}
	want := "machine.go:7:3: time.Now reads the wall clock (determinism)"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreDirectives(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //phantomvet:ignore maporder keys re-sorted by the caller
	//phantomvet:ignore determinism,ctxflow seeded upstream
	_ = 2
	//phantomvet:ignore all generated code
	_ = 3
	// a comment merely mentioning phantomvet suppresses nothing
}
`)
	ds := parseDirectives(fset, files)
	cases := []struct {
		line int
		name string
		want bool
	}{
		{4, "maporder", true},
		{4, "determinism", false}, // directives name their analyzer
		{5, "determinism", true},
		{6, "determinism", true}, // directive covers the next line too
		{6, "ctxflow", true},
		{6, "maporder", false},
		{8, "maporder", true},  // "all" covers any analyzer
		{9, "maporder", false}, // prose is not a directive
	}
	for _, c := range cases {
		d := Diagnostic{Analyzer: c.name, Pos: token.Position{Filename: "p.go", Line: c.line}}
		if got := ds.suppresses(d); got != c.want {
			t.Errorf("line %d name %q: suppressed=%v, want %v", c.line, c.name, got, c.want)
		}
	}
}

// TestUnusedDirectives pins the dead-suppression report: a directive
// whose analyzer ran and fired is silent, one whose analyzer ran clean
// is reported, one naming an unknown analyzer is always reported, and
// one whose analyzer was not part of the run is left alone.
func TestUnusedDirectives(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //phantomvet:ignore maporder fired below
	_ = 2 //phantomvet:ignore determinism ran clean
	_ = 3 //phantomvet:ignore nosuchvet typo
	_ = 4 //phantomvet:ignore ctxflow not in this run
}
`)
	ds := parseDirectives(fset, files)
	// Simulate the run: maporder fired on line 4, determinism ran but
	// found nothing, ctxflow did not run at all.
	if !ds.suppresses(Diagnostic{Analyzer: "maporder", Pos: token.Position{Filename: "p.go", Line: 4}}) {
		t.Fatalf("maporder directive did not suppress")
	}
	diags := ds.unusedDiags(map[string]bool{"maporder": true, "determinism": true})
	var lines []int
	for _, d := range diags {
		if d.Analyzer != UnusedIgnore.Name {
			t.Errorf("unused diag attributed to %q, want %q", d.Analyzer, UnusedIgnore.Name)
		}
		lines = append(lines, d.Pos.Line)
	}
	want := []int{5, 6} // dead determinism ignore + unknown name; 4 used, 7 not judged
	if fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Errorf("unused directive lines = %v, want %v", lines, want)
	}
}

// TestSuppressionFiltersDiagnostics runs a real analyzer over source
// with a directive and checks the finding is dropped end to end.
func TestSuppressionFiltersDiagnostics(t *testing.T) {
	diags, _, err := AnalyzeDir(MapOrder, fixture("maporder", "ok"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("suppressed fixture still produced: %s", d)
	}
}

func TestScopes(t *testing.T) {
	cases := []struct {
		a        *Analyzer
		pkgPath  string
		filename string
		want     bool
	}{
		{Determinism, "phantom/internal/pipeline", "machine.go", true},
		{Determinism, "phantom/internal/stats", "stats.go", true},
		{Determinism, "phantom/internal/search", "generate.go", true},
		{Determinism, "phantom", "experiments.go", true},
		{Determinism, "phantom", "report.go", false},
		{Determinism, "phantom/internal/telemetry", "hub.go", false},
		{Determinism, "phantom/internal/sweep", "sweep.go", false},
		{Determinism, "phantom/cmd/phantom", "main.go", false},

		{MapOrder, "phantom", "report.go", true},
		{MapOrder, "phantom/internal/telemetry", "debug.go", true},
		{MapOrder, "phantom/cmd/phantom", "main.go", true},

		{NoPerturb, "phantom/internal/pipeline", "machine.go", true},
		{NoPerturb, "phantom/internal/service", "exec.go", true},
		{NoPerturb, "phantom", "experiments.go", true},
		{NoPerturb, "phantom", "report.go", false},
		{NoPerturb, "phantom/internal/telemetry", "progress.go", false},
		{NoPerturb, "phantom/internal/telemetry", "hub.go", true},
		{NoPerturb, "phantom/cmd/phantom-vet", "main.go", false},
		{NoPerturb, "phantom/examples/quickstart", "main.go", false},
		{NoPerturb, "phantom/internal/tools/servesmoke", "main.go", false},

		{CtxFlow, "phantom/internal/service", "coalesce.go", true},
		{CtxFlow, "phantom/internal/sweep", "sweep.go", true},
		{CtxFlow, "phantom/cmd/phantom-server", "main.go", false},
		{CtxFlow, "phantom", "experiments.go", false},

		{FaultAlloc, "phantom/internal/mem", "mem.go", true},
		{FaultAlloc, "phantom/internal/pipeline", "predecode.go", true},
		{FaultAlloc, "phantom/internal/service", "server.go", false},
	}
	for _, c := range cases {
		if got := c.a.Applies(c.pkgPath, c.filename); got != c.want {
			t.Errorf("%s.Applies(%q, %q) = %v, want %v", c.a.Name, c.pkgPath, c.filename, got, c.want)
		}
	}
}

func TestSplitWantPatterns(t *testing.T) {
	res, err := splitWantPatterns(`"wall clock" "seeded"`)
	if err != nil || len(res) != 2 {
		t.Fatalf("got %v, %v; want two patterns", res, err)
	}
	if !res[0].MatchString("time.Now reads the wall clock") {
		t.Error("first pattern does not match")
	}
	for _, bad := range []string{"", "unquoted", `"unterminated`, `"("`} {
		if _, err := splitWantPatterns(bad); err == nil {
			t.Errorf("splitWantPatterns(%q): expected error", bad)
		}
	}
}

// failRecorder captures harness failures so the harness itself can be
// tested against deliberately mismatched fixtures.
type failRecorder struct {
	errors []string
	fatal  string
}

func (r *failRecorder) Helper() {}
func (r *failRecorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *failRecorder) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
	panic(r)
}

func runFixtureRecovering(a *Analyzer, dir string) (rec *failRecorder) {
	rec = &failRecorder{}
	defer func() {
		if p := recover(); p != nil && p != any(rec) {
			panic(p)
		}
	}()
	RunFixture(rec, a, dir)
	return rec
}

func TestHarnessReportsMismatches(t *testing.T) {
	// Running the wrong analyzer over an annotated fixture must fail
	// both ways: its want comments go unmatched, and (for a fixture
	// that also violates the wrong analyzer's rule) diagnostics arrive
	// unexpected.
	rec := runFixtureRecovering(CtxFlow, fixture("determinism", "bad"))
	if len(rec.errors) == 0 {
		t.Fatal("harness accepted a fixture whose want comments matched nothing")
	}
	for _, e := range rec.errors {
		if !strings.Contains(e, "expected a diagnostic") {
			t.Errorf("unexpected error kind: %s", e)
		}
	}

	rec = runFixtureRecovering(NoPerturb, fixture("maporder", "bad"))
	var unexpected bool
	for _, e := range rec.errors {
		if strings.Contains(e, "unexpected diagnostic") {
			unexpected = true
		}
	}
	if !unexpected {
		t.Error("harness did not report the wrong analyzer's extra diagnostics")
	}
}

func TestHarnessRejectsBrokenFixture(t *testing.T) {
	rec := runFixtureRecovering(Determinism, fixture("does", "not", "exist"))
	if rec.fatal == "" {
		t.Fatal("harness accepted a missing fixture directory")
	}
}
