package analysis

// UnusedIgnore reports phantomvet:ignore directives that no longer
// suppress anything.
//
// A suppression is a standing claim: "this line violates <analyzer>
// and we accept that, because <reason>". When the code under it is
// later fixed or deleted, the directive outlives its claim — and a
// stale ignore is worse than none, because the next reader assumes the
// violation is still there, and the next violation on that line is
// silently absorbed. The engine tracks, for every directive and every
// analyzer name it lists, whether a diagnostic was actually suppressed
// during the run; names that stayed idle (for analyzers that ran) are
// reported here, as is any name that matches no analyzer in the suite
// at all (a typo'd ignore suppresses nothing and never will).
//
// This is a pseudo-analyzer: the Run hook is empty because the check
// is a property of a whole suite run, not of the syntax tree — the
// engine (AnalyzePackage) computes the findings from the directive
// usage it recorded and attributes them to this analyzer's name. It
// lives in the suite so `-list` shows it, `-run unusedignore` selects
// it, and phantomvet:ignore can — in the limit — suppress it.
var UnusedIgnore = &Analyzer{
	Name: "unusedignore",
	Doc: "report phantomvet:ignore directives that suppressed nothing: the named analyzer ran clean on the line " +
		"(stale suppression) or does not exist (typo); delete or fix the directive",
	Applies: func(pkgPath, filename string) bool { return true },
	Run:     func(pass *Pass) {},
}
