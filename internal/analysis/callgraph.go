package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// callgraph.go extracts per-package static call summaries and
// assembles them into the whole-repo call graph. The summary is a
// fact (facts.go): each package exports the out-edges of its
// functions, and the driver — which sees every package's summary,
// cached or fresh — computes reachability over the union. That split
// is what lets a warm run rebuild the global graph without
// type-checking a single unchanged package.
//
// Resolution is static and conservative: direct calls and method
// calls whose callee the type-checker resolved to a concrete
// *types.Func. Calls through interfaces, function-typed values, and
// method values are not resolved — a function only reachable through
// those is treated as cold, which is the right default for hotalloc
// (the simulator's per-step path is direct calls throughout; an
// indirect call on it would itself be a finding someday, not today).

// summarizePackage computes pkg's call-summary facts: one entry per
// declared function or method, closure bodies attributed to the
// function whose body lexically contains them (a closure runs with
// its creator's budget until it escapes, and the hot path creates
// none).
func summarizePackage(pkg *Package) *PackageFacts {
	pf := newPackageFacts()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			callees := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(pkg.Info, call); callee != nil {
					callees[callee.FullName()] = true
				}
				return true
			})
			names := make([]string, 0, len(callees))
			for name := range callees {
				names = append(names, name)
			}
			sort.Strings(names)
			pf.fact(obj.FullName()).Callees = names
		}
	}
	return pf
}

// staticCallee resolves a call expression to the concrete function it
// invokes, or nil for indirect calls, builtins, and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// A method selected off an interface value has no body to
		// walk into; only concrete receivers resolve statically.
		if types.IsInterface(sig.Recv().Type()) {
			return nil
		}
	}
	return fn
}

// A CallGraph is the union of every package's call-summary facts:
// adjacency over function FullNames.
type CallGraph struct {
	Edges map[string][]string
}

// BuildCallGraph merges the Callees facts of the given packages into
// one graph. Packages are keyed by path only for determinism of the
// merge; edge targets may name functions in packages outside the set
// (stdlib), which simply have no out-edges.
func BuildCallGraph(facts map[string]*PackageFacts) *CallGraph {
	g := &CallGraph{Edges: make(map[string][]string)}
	paths := make([]string, 0, len(facts))
	for path := range facts {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pf := facts[path]
		if pf == nil {
			continue
		}
		for _, name := range pf.names() {
			if f := pf.Funcs[name]; len(f.Callees) > 0 {
				g.Edges[name] = append(g.Edges[name], f.Callees...)
			}
		}
	}
	return g
}

// Reachable returns every function reachable from the given roots
// (inclusive) along static call edges.
func (g *CallGraph) Reachable(roots []string) map[string]bool {
	seen := make(map[string]bool)
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		stack = append(stack, g.Edges[fn]...)
	}
	return seen
}
