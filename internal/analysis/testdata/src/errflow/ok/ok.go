package ok

import (
	"fmt"
	"os"
)

func write(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close() // explicit, auditable drop on the error path
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func deferredChecked(f *os.File) (err error) {
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = f.WriteString("x")
	return err
}

// A non-durability error may be dropped; that is another linter's
// fight, not errflow's.
func parse(s string) error {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return err
}

func dropsNonDurable(s string) {
	parse(s)
}

// Calls with no error result are never durability ops.
func name(f *os.File) string {
	return f.Name()
}
