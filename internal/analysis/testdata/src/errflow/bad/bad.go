package bad

import (
	"bufio"
	"os"
)

func write(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close() // want "Close discards its error"
		return err
	}
	f.Sync()  // want "Sync discards its error, which reports whether the write reached disk"
	f.Close() // want "Close discards its error"
	return nil
}

func deferred(f *os.File) {
	defer f.Close() // want "defer Close discards its error"
}

func spawned(f *os.File) {
	go f.Sync() // want "go Sync discards its error"
}

func commit(tmp, final string) {
	os.Rename(tmp, final) // want "Rename discards its error, which is the commit point"
}

func flush(w *bufio.Writer) {
	w.Flush() // want "Flush discards its error"
}

// syncAll wraps a durability primitive and surfaces its error, so it
// is itself a durability op: callers may not drop its error either.
func syncAll(f *os.File) error {
	return f.Sync()
}

// syncBoth is durable transitively, through syncAll.
func syncBoth(a, b *os.File) error {
	if err := syncAll(a); err != nil {
		return err
	}
	return syncAll(b)
}

func callHelpers(f *os.File) {
	syncAll(f)     // want "syncAll discards its error, which calls os.File.Sync"
	syncBoth(f, f) // want "syncBoth discards its error, which calls bad.syncAll"
}
