// Package bad heap-allocates Fault values the way the flattened fast
// path must never do again.
package bad

// Fault mirrors the simulator's page-fault record.
type Fault struct {
	VA   uint64
	Kind int
}

func translate(va uint64, present bool) (uint64, *Fault) {
	if !present {
		return 0, &Fault{VA: va, Kind: 1} // want "allocates on the hot path"
	}
	f := new(Fault) // want "allocates on the hot path"
	f.VA = va
	return va, f
}

func probe(va uint64) *Fault {
	f := Fault{VA: va}
	return &f // escaping a named value is fine for the analyzer; only literal allocs are shape-checked
}

func escapeLiteral(va uint64) *Fault {
	return &Fault{VA: va} // want "allocates on the hot path"
}
