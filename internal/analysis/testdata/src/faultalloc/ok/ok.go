// Package ok uses Faults the flattened way: values in, values out, a
// scratch value for the probe loop, and pointer allocation of types
// that are not on the fault path.
package ok

// Fault mirrors the simulator's page-fault record.
type Fault struct {
	VA   uint64
	Kind int
}

// result is not a Fault; allocating it is none of this analyzer's
// business.
type result struct{ n int }

func translateV(va uint64, present bool) (uint64, Fault, bool) {
	if !present {
		return 0, Fault{VA: va, Kind: 1}, false
	}
	return va, Fault{}, true
}

func probeAll(vas []uint64) *result {
	var scratch Fault
	r := &result{}
	for _, va := range vas {
		var ok bool
		_, scratch, ok = translateV(va, va%2 == 0)
		if !ok {
			r.n += scratch.Kind
		}
	}
	return r
}
