// Package ok renders the sanctioned way: through io.Writer parameters
// the caller owns, or into strings the caller places.
package ok

import (
	"fmt"
	"io"
)

func render(w io.Writer, x int) {
	fmt.Fprintf(w, "x = %d\n", x)
	fmt.Fprintln(w, "done")
}

func describe(x int) string {
	return fmt.Sprintf("x = %d", x)
}
