// Package bad collects every way a simulation package can write to
// the process's standard streams and perturb byte-pinned output.
package bad

import (
	"fmt"
	"log"
	"os"
)

func debugPrints(x int) {
	fmt.Println("x =", x)     // want "byte-pinned output"
	fmt.Printf("x = %d\n", x) // want "byte-pinned output"
	fmt.Print(x)              // want "byte-pinned output"
	println("quick debug", x) // want "byte-pinned output"
}

func streamRefs() {
	fmt.Fprintln(os.Stdout, "hi") // want "accept an io.Writer"
	w := os.Stderr                // want "accept an io.Writer"
	_ = w
}

func logging(err error) {
	log.Printf("oops: %v", err) // want "process-global logger"
	log.Println("done")         // want "process-global logger"
}
