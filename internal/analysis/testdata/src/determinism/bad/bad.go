// Package bad seeds every way ambient entropy leaks into a
// simulation: wall-clock reads and the process-global rand source.
package bad

import (
	"math/rand"
	"time"
)

func wallClock() float64 {
	start := time.Now()                      // want "wall clock"
	defer func() { _ = time.Since(start) }() // want "wall clock"
	if time.Until(start) > 0 {               // want "wall clock"
		return 1
	}
	return 0
}

func globalRand() int {
	n := rand.Intn(100)                // want "process-global source"
	f := rand.Float64()                // want "process-global source"
	rand.Shuffle(n, func(i, j int) {}) // want "process-global source"
	rand.Seed(42)                      // want "process-global source"
	pick := rand.Int63                 // want "process-global source"
	_ = f
	_ = pick
	return n
}
