// Package ok shows the sanctioned forms: all randomness flows from a
// seeded *rand.Rand, and durations are simulated, not measured.
package ok

import (
	"math/rand"
	"time"
)

// Simulated time is computed from cycle counts, never measured.
const cycleTime = time.Nanosecond

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

func threaded(rng *rand.Rand) float64 {
	z := rand.NewZipf(rng, 1.1, 1, 1<<20)
	return float64(z.Uint64()) * cycleTime.Seconds()
}
