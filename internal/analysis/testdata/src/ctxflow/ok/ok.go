// Package ok threads contexts the sanctioned way: roots are minted
// only where no caller context exists, and deliberate detaches carry
// the justification in a suppression.
package ok

import "context"

// newRoot has no context parameter: it IS the root of a tree (a main
// loop, a test, a background daemon), so Background is correct.
func newRoot() context.Context {
	return context.Background()
}

func threaded(ctx context.Context, run func(context.Context) error) error {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return run(child)
}

func detached(ctx context.Context, run func(context.Context) error) error {
	// The evaluation outlives any single caller by design; its
	// lifetime is managed by the flight's own cancel.
	execCtx := context.Background() //phantomvet:ignore ctxflow flight outlives individual waiters
	return run(execCtx)
}
