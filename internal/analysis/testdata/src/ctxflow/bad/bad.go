// Package bad forks the cancellation tree: fresh root contexts minted
// where a caller-provided context is already in scope.
package bad

import "context"

func handler(ctx context.Context, run func(context.Context) error) error {
	return run(context.Background()) // want "forks the cancellation tree"
}

func worker(ctx context.Context, jobs []func(context.Context)) {
	for _, job := range jobs {
		go func(j func(context.Context)) {
			// The closure has no ctx parameter of its own, but the
			// caller's ctx is still in scope — the fork is just as
			// silent.
			j(context.TODO()) // want "forks the cancellation tree"
		}(job)
	}
}

func deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) // want "forks the cancellation tree"
}
