package ok

type probe struct{ va, tag uint64 }

type machine struct {
	arena []probe
	table map[uint64]int
}

// NewMachine is a cold constructor: it runs once, so building the
// arena and table here is exactly where allocation belongs.
func NewMachine(n int) *machine {
	return &machine{
		arena: make([]probe, 0, n),
		table: make(map[uint64]int, n),
	}
}

//phantomvet:hotroot fixture stand-in for the pipeline step path
func (m *machine) step(va uint64) probe {
	// Value composites are not heap shapes: a probe passed and returned
	// by value stays on the stack.
	p := probe{va: va}
	// The pre-size-then-fill idiom: append into a slice 3-arg-made in
	// this function never grows the backing array.
	batch := make([]probe, 0, 4)
	batch = append(batch, p)
	m.helper(batch)
	return p
}

// helper is hot via the call graph, and clean: it reuses the arena by
// reslicing and writing in place.
func (m *machine) helper(batch []probe) {
	m.arena = m.arena[:0]
	for i := range batch {
		if len(m.arena) < cap(m.arena) {
			m.arena = m.arena[:len(m.arena)+1]
			m.arena[len(m.arena)-1] = batch[i]
		}
	}
}

// coldPath allocates, which is fine: nothing reaches it from the
// annotated root.
func (m *machine) coldPath() *probe {
	return &probe{tag: 7}
}
