package bad

type probe struct{ va, tag uint64 }

var sink any

//phantomvet:hotroot fixture stand-in for the pipeline step path
func step(n int) int {
	p := &probe{va: 1} // want "&composite literal allocates in a hot function"
	sink = p
	q := new(probe) // want "allocates in a hot function"
	sink = q
	m := map[uint64]int{} // want "map literal allocates in a hot function"
	sink = m
	s := []int{1, 2, 3} // want "slice literal allocates in a hot function"
	sink = s
	var grown []probe
	grown = append(grown, probe{va: 2}) // want "append may grow its backing array in a hot function"
	sink = grown
	return helper(n)
}

// helper is hot transitively: the call graph reaches it from step.
func helper(n int) int {
	h := &probe{tag: uint64(n)} // want "&composite literal allocates in a hot function"
	sink = h
	return n
}

// cold is unreachable from any hot root; it may allocate freely.
func cold() *probe {
	return &probe{va: 9}
}
