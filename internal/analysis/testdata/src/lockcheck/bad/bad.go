package bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds a lock-bearing struct by value; copying it copies the
// mutex too.
type wrapper struct {
	c counter
}

func byValue(c counter) int { // want "parameter carries sync.Mutex by value"
	return c.n
}

func (c counter) get() int { // want "receiver carries sync.Mutex by value"
	return c.n
}

func nested(w wrapper) int { // want "parameter carries sync.Mutex by value"
	return w.c.n
}

func copyAssign(c *counter) {
	d := *c // want "assignment copies a value carrying sync.Mutex"
	_ = d
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want "range copies elements carrying sync.Mutex"
		total += c.n
	}
	return total
}

func leakOnBranch(c *counter, fail bool) int {
	c.mu.Lock() // want "locked here but not released on every path to return"
	if fail {
		return -1
	}
	c.mu.Unlock()
	return c.n
}

func leakAlways(c *counter) int {
	c.mu.Lock() // want "locked here but not released on every path to return"
	return c.n
}

func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want "while every path here already holds it"
	c.mu.Unlock()
	c.mu.Unlock()
}

type group struct {
	wg sync.WaitGroup
}

func waitGroupByValue(g group) { // want "parameter carries sync.WaitGroup by value"
	g.wg.Wait()
}
