package ok

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Both paths release before returning: no leak even without defer.
func (c *counter) branchy(fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// A deferred closure releasing the lock counts as a release on every
// exit path.
func (c *counter) deferredClosure() {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
}

type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func (c *cache) read(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}

// Read lock released, then the write lock taken: distinct lock modes
// on the same receiver are not a double-lock.
func (c *cache) upgrade(k string) {
	c.mu.RLock()
	_, seen := c.m[k]
	c.mu.RUnlock()
	if seen {
		return
	}
	c.mu.Lock()
	c.m[k] = 1
	c.mu.Unlock()
}

// Pointers to lock-bearing values are the sanctioned shape everywhere:
// parameters, ranges, assignments.
func pointers(cs []*counter) int {
	total := 0
	for _, c := range cs {
		c.incr()
		total += c.get()
	}
	return total
}

// Fresh values initialize rather than copy an existing lock.
func fresh() *counter {
	c := counter{}
	return &c
}

// Re-lock after an unconditional unlock is sequential use, not a
// double-lock.
func (c *counter) twice() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}
