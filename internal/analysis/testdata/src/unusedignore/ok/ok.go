package ok

import "fmt"

// Every directive in this package suppresses a live finding, so the
// dead-suppression check stays silent.

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) //phantomvet:ignore maporder output order is asserted nowhere; this sink is a debug aid
	}
}

// A sentence that merely mentions phantomvet:ignore maporder in prose
// — like this one, or an indented example in a doc comment — is not a
// directive and must not be reported as unused:
//
//	x := pick(m) //phantomvet:ignore maporder keys re-sorted by caller
func doc() {}
