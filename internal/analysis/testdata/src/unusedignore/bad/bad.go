package bad

import "fmt"

// The maporder suppression below is earning its keep (the Println
// really does run in map order); the three after it are the decay
// modes unusedignore exists to catch.

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) //phantomvet:ignore maporder fixture pins a used suppression staying silent
	}
	_ = 1 //phantomvet:ignore determinism stale: the clock read this silenced is long gone // want "determinism suppresses nothing here"
	_ = 2 //phantomvet:ignore nosuchvet typo'd analyzer names can never suppress // want "unknown analyzer"
	_ = 3 //phantomvet:ignore all blanket directive with nothing left under it // want "all suppresses nothing"
}
