// Package bad collects the iteration-order-sensitive map-range shapes
// the analyzer must reject: unsorted appends, output in the loop body,
// order-dependent accumulation, and arbitrary-element selection.
package bad

import (
	"fmt"
	"sort"
)

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "builds a slice in random order"
	}
	return keys
}

func printsInOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "runs in random order"
	}
}

func accumulates(m map[string]float64) (string, float64) {
	var s string
	var sum float64
	for k, v := range m {
		s += k   // want "string concatenation"
		sum += v // want "floating-point accumulation"
	}
	return s, sum
}

func pickAny(m map[string]int) string {
	for k := range m {
		return k // want "arbitrary element"
	}
	return ""
}

// A computed (non-constant) early return still selects an arbitrary
// element: the constant-return discharge must not reach it.
func firstPositive(m map[string]int) int {
	for _, v := range m {
		if v > 0 {
			return v // want "arbitrary element"
		}
	}
	return 0
}

// A sort on only one path does not discharge the append: the flow-
// aware check requires it on every path to a use.
func sortedOnOnePath(m map[string]int, skip bool, render func([]string)) {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "builds a slice in random order"
	}
	if !skip {
		sort.Strings(keys)
	}
	render(keys)
}

func breaksOut(m map[string]int) {
	n := 0
	for range m {
		n++
		if n > 3 {
			break // want "arbitrary element"
		}
	}
}

func publishes(m map[string]int, ch chan string, sink func(string)) {
	for k := range m {
		ch <- k // want "random order"
	}
	for k := range m {
		go sink(k) // want "random order"
	}
	for k := range m {
		sink(k) // want "runs in random order"
	}
}

func appendUsedBeforeSort(m map[string]int, render func([]string)) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "builds a slice in random order"
	}
	render(keys) // consumed in map order: the later sort is too late
	sortStrings(keys)
	return keys
}

func sortStrings([]string) {}
