// Package ok collects the order-insensitive map-range shapes the
// analyzer must accept: collect-then-sort, map-to-map copies, integer
// accumulation, deletes, and breaks that exit inner loops only.
package ok

import (
	"sort"
)

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[uint64]int) []uint64 {
	var pages []uint64
	for p := range m {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// mergeThenSort appends keys from two maps into one slice before the
// single sort — the shape the telemetry /metrics renderer uses.
func mergeThenSort(counters map[string]uint64, gauges map[string]int64) []string {
	names := make([]string, 0, len(counters)+len(gauges))
	for name := range counters {
		names = append(names, name)
	}
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func copyAndCount(m map[string]int) (map[string]int, int) {
	out := make(map[string]int, len(m))
	n := 0
	for k, v := range m {
		out[k] = v
		n += v
		n++
	}
	return out, n
}

func prune(m map[string]bool) {
	for k, keep := range m {
		if !keep {
			delete(m, k)
		}
	}
}

func innerBreakAndSwitch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break // exits the inner slice loop, not the map range
			}
			total += v
		}
		switch total {
		case 0:
			break // exits the switch, not the map range
		default:
			total |= 1
		}
	}
	return total
}

func suppressedPick(m map[string]int) string {
	for k := range m {
		//phantomvet:ignore maporder the caller tolerates any element (cache eviction victim)
		return k
	}
	return ""
}

// containsAll pins the constant-return discharge: an early `return
// false` is an existential test ("does any key fail?"), and existence
// does not depend on iteration order. The pre-CFG analyzer flagged
// this as arbitrary-element selection.
func containsAll(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// disjoint pins the same discharge for multi-value constant returns
// (false and nil carry no element out of the loop).
func disjoint(a, b map[string]bool) (bool, error) {
	for k := range a {
		if b[k] {
			return false, nil
		}
	}
	return true, nil
}

// keysMaybeFiltered pins the flow-aware collect-then-sort discharge:
// the ranges sit inside if-arms, so no sort lexically follows them in
// their own block — but on every control-flow path the slice is sorted
// before any use. The pre-CFG analyzer, whose discharge window was the
// enclosing block's statement tail, flagged both appends.
func keysMaybeFiltered(m map[string]int, filter bool) []string {
	var keys []string
	if filter {
		for k := range m {
			if m[k] > 0 {
				keys = append(keys, k)
			}
		}
	} else {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
