package bad

import "sync"

var sink int

func fireAndForget() {
	go func() { // want "no join or cancel edge"
		sink++
	}()
}

func addInside(wg *sync.WaitGroup) {
	go func() { // want "Add is called inside the spawned goroutine"
		wg.Add(1)
		defer wg.Done()
		sink++
	}()
	wg.Wait()
}

func addOnOneBranch(wg *sync.WaitGroup, extra bool) {
	if extra {
		wg.Add(1)
	}
	go func() { // want "no wg.Add dominates the spawn"
		defer wg.Done()
		sink++
	}()
}

func addAfterSpawn(wg *sync.WaitGroup) {
	go func() { // want "no wg.Add dominates the spawn"
		defer wg.Done()
		sink++
	}()
	wg.Add(1)
}

type pool struct {
	wg sync.WaitGroup
}

func (p *pool) fieldReceiver() {
	go func() { // want "no p.wg.Add dominates the spawn"
		defer p.wg.Done()
		sink++
	}()
}
