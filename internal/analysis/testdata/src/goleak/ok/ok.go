package ok

import (
	"context"
	"sync"
)

func joined(n int) []int {
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = i * i
		}(i)
	}
	wg.Wait()
	return results
}

// A send ties the goroutine's lifetime to the receiver.
func channelJoined() chan int {
	c := make(chan int)
	go func() {
		c <- 1
	}()
	return c
}

// Closing a done channel is a join edge.
func closesDone(done chan struct{}) {
	go func() {
		defer close(done)
	}()
}

// A context-scoped body is cancellable: the spawner can end it.
func ctxScoped(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// The channel passed at the spawn is the join edge even when the body
// only writes through the parameter.
func passedChan() {
	done := make(chan struct{})
	go func(d chan struct{}) {
		close(d)
	}(done)
	<-done
}

// Add before a conditional spawn still dominates it.
func addBeforeBranch(wg *sync.WaitGroup, extra bool) {
	wg.Add(1)
	if extra {
		go func() {
			defer wg.Done()
		}()
		return
	}
	wg.Done()
}

// Spawning a named function is out of scope: its join machinery is its
// own business.
func runsNamed(f func()) {
	go namedWorker(f)
}

func namedWorker(f func()) { f() }

// Ranging over a channel is a join edge.
func drains(c chan int) {
	go func() {
		for range c {
		}
	}()
}
