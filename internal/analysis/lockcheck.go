package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockCheck enforces lock discipline in the concurrent tier: no mutex
// copied by value, no Lock left unpaired on any path to return, no
// re-Lock of a mutex a path already holds.
//
// The distributed tier (store, cluster, service, sweep, telemetry) is
// the one part of the repo where the race detector is the only runtime
// gate, and the race detector only sees schedules the test runner
// happens to produce. The three rules here are the lock bugs that
// survive `-race`: a copied mutex guards nothing (each copy is a fresh
// unlocked lock), a Lock missing its Unlock on one early-return path
// deadlocks the next caller on a schedule tests never run, and a
// double-Lock on the same receiver self-deadlocks only when the first
// hold is still live. Unlock pairing and double-Lock are path
// properties, so this analyzer runs a may/must lockset dataflow over
// the CFG rather than matching syntax.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "enforce lock discipline in the concurrent tier: no sync.Mutex/RWMutex/WaitGroup copied by value, " +
		"no Lock without an Unlock (or defer Unlock) on every path to return, no Lock while the same lock is already held",
	Applies: lockCheckScope,
	Run:     runLockCheck,
}

// lockCheckScope: the packages that hold locks — the serving and
// distributed tier plus the telemetry hub. The simulation packages are
// single-goroutine by design and own no locks.
func lockCheckScope(pkgPath, filename string) bool {
	switch pkgPath {
	case "phantom/internal/store", "phantom/internal/cluster", "phantom/internal/service",
		"phantom/internal/sweep", "phantom/internal/telemetry":
		return true
	}
	return false
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Files {
		checkLockCopies(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockPaths(pass, n)
				}
			case *ast.FuncLit:
				checkLockPaths(pass, n)
			}
			return true
		})
	}
}

// --- rule 1: locks copied by value -----------------------------------

// lockTypeName returns the sync type name t contains by value ("Mutex",
// "RWMutex", "WaitGroup", "Once", "Cond"), or "".
func lockTypeName(t types.Type) string {
	return lockTypeNameRec(t, make(map[*types.Named]bool))
}

func lockTypeNameRec(t types.Type, seen map[*types.Named]bool) string {
	if named, ok := t.(*types.Named); ok {
		if seen[named] {
			return ""
		}
		seen[named] = true
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return obj.Name()
			}
		}
		return lockTypeNameRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockTypeNameRec(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockTypeNameRec(t.Elem(), seen)
	}
	return ""
}

// checkLockCopies flags the value-copy shapes: lock-bearing parameters,
// receivers and results, assignments copying an existing lock-bearing
// value, and range clauses copying lock-bearing elements.
func checkLockCopies(pass *Pass, file *ast.File) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if name := lockTypeName(tv.Type); name != "" {
				pass.Reportf(field.Pos(), "%s carries sync.%s by value; each copy is a fresh unlocked lock — use a pointer", what, name)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// Discarding into the blank identifier copies nothing
				// anyone can lock; only real destinations matter.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				checkLockCopyExpr(pass, rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				checkLockCopyExpr(pass, v)
			}
		case *ast.RangeStmt:
			// The value variable is usually a fresh definition, so its
			// type lives in Defs, not Types — TypeOf checks both.
			if n.Value != nil {
				if t := pass.Info.TypeOf(n.Value); t != nil {
					if name := lockTypeName(t); name != "" {
						pass.Reportf(n.Value.Pos(), "range copies elements carrying sync.%s by value; iterate by index or store pointers", name)
					}
				}
			}
		}
		return true
	})
}

// checkLockCopyExpr flags rhs when it copies an *existing* lock-bearing
// value: a variable read, field selection, pointer dereference, or
// element load. Fresh values (composite literals, zero values, calls
// returning by design) initialize rather than copy.
func checkLockCopyExpr(pass *Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := pass.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return
	}
	if name := lockTypeName(tv.Type); name != "" {
		pass.Reportf(rhs.Pos(), "assignment copies a value carrying sync.%s; the copy is a fresh unlocked lock — use a pointer", name)
	}
}

// --- rules 2+3: lockset dataflow over the CFG ------------------------

// lockOp is one Lock/Unlock-family call found in a block.
type lockOp struct {
	key     string // "w:" or "r:" prefix + canonical receiver expression
	acquire bool
	pos     token.Pos
}

// lockState maps held-lock keys to where they were acquired and
// whether every path to this point holds them.
type lockState map[string]lockHold

type lockHold struct {
	pos  token.Pos
	must bool
}

func copyLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLockStates(a, b lockState) lockState {
	out := make(lockState, len(a))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			hold := lockHold{pos: va.pos, must: va.must && vb.must}
			if vb.pos < hold.pos {
				hold.pos = vb.pos
			}
			out[k] = hold
		} else {
			out[k] = lockHold{pos: va.pos, must: false}
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = lockHold{pos: vb.pos, must: false}
		}
	}
	return out
}

func equalLockStates(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// checkLockPaths runs the lockset analysis over one function's CFG and
// reports double-locks and locks held at exit without a deferred
// release.
func checkLockPaths(pass *Pass, fn ast.Node) {
	cfg := pass.CFG(fn)
	ops := make(map[*Block][]lockOp)
	any := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			collectLockOps(pass, n, &ops, b)
			if len(ops[b]) > 0 {
				any = true
			}
		}
	}
	if !any {
		return
	}

	reported := make(map[token.Pos]bool)
	transfer := func(b *Block, in lockState) lockState {
		out := copyLockState(in)
		for _, op := range ops[b] {
			if op.acquire {
				if held, ok := out[op.key]; ok && held.must && !reported[op.pos] {
					reported[op.pos] = true
					pass.Reportf(op.pos, "Lock of %s while every path here already holds it — the goroutine deadlocks on itself", op.key[2:])
				}
				out[op.key] = lockHold{pos: op.pos, must: true}
			} else {
				delete(out, op.key)
			}
		}
		return out
	}
	in := ForwardDataflow(cfg, FlowSpec[lockState]{
		Entry:    lockState{},
		Join:     joinLockStates,
		Equal:    equalLockStates,
		Transfer: transfer,
	})

	exitState, ok := in[cfg.Exit]
	if !ok {
		return // exit unreachable (infinite loop): nothing to pair
	}
	deferred := deferredUnlockKeys(pass, cfg)
	keys := make([]string, 0, len(exitState))
	for k := range exitState {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if deferred[k] {
			continue
		}
		hold := exitState[k]
		if reported[hold.pos] {
			continue
		}
		reported[hold.pos] = true
		pass.Reportf(hold.pos, "%s is locked here but not released on every path to return; add the missing Unlock or defer it", k[2:])
	}
}

// collectLockOps appends the Lock/Unlock calls syntactically inside n
// (not descending into function literals, which have their own CFGs)
// to ops[b], in traversal order.
func collectLockOps(pass *Pass, n ast.Node, ops *map[*Block][]lockOp, b *Block) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := lockOpOf(pass, call); ok {
			(*ops)[b] = append((*ops)[b], op)
		}
		return true
	})
}

// lockOpOf classifies a call as a lock acquire/release on a trackable
// receiver. TryLock variants are skipped (the caller branches on the
// result; the lockset is unknowable without path conditions).
func lockOpOf(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockOp{}, false
	}
	var kind string
	var acquire bool
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		kind, acquire = "w:", true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		kind, acquire = "w:", false
	case "(*sync.RWMutex).RLock":
		kind, acquire = "r:", true
	case "(*sync.RWMutex).RUnlock":
		kind, acquire = "r:", false
	default:
		return lockOp{}, false
	}
	recv, ok := canonicalRecv(sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: kind + recv, acquire: acquire, pos: call.Pos()}, true
}

// canonicalRecv renders a lock receiver as a stable key, accepting
// only identifier/selector chains — a lock reached through a call or
// index has no stable identity across statements.
func canonicalRecv(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := canonicalRecv(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// deferredUnlockKeys collects the lock keys released by the function's
// defers, either directly (defer mu.Unlock()) or inside a deferred
// closure.
func deferredUnlockKeys(pass *Pass, cfg *CFG) map[string]bool {
	out := make(map[string]bool)
	record := func(call *ast.CallExpr) {
		if op, ok := lockOpOf(pass, call); ok && !op.acquire {
			out[op.key] = true
		}
	}
	for _, d := range cfg.Defers {
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
			continue
		}
		record(d.Call)
	}
	return out
}
