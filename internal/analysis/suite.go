package analysis

// Suite returns the full phantom-vet analyzer suite in reporting
// order. Each analyzer carries its own Applies scope; Run consults
// them, so callers can hand the whole module to the suite and let the
// scopes sort out which invariant covers which package.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		MapOrder,
		NoPerturb,
		CtxFlow,
		FaultAlloc,
		LockCheck,
		ErrFlow,
		GoLeak,
		HotAlloc,
		UnusedIgnore,
	}
}

// ByName returns the named analyzer from the suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
