package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// driver.go is the parallel, cached front end to the suite. It
// produces output identical to the serial reference pipeline (Run):
// the same packages, the same dependency-ordered fact flow, the same
// sorted diagnostics. What it adds is scheduling and memoization:
//
//   - Packages are analyzed by a bounded worker pool as soon as their
//     in-set imports finish, so independent subtrees of the import DAG
//     overlap. Type-checking stays serialized behind loadMu (the
//     shared source importer mutates its cache), but parsing and the
//     analyzers themselves — the CFG builds, the dataflow passes —
//     run concurrently.
//
//   - Each package's result (diagnostics + exported facts) is keyed by
//     two content hashes and stored on disk. A warm run re-reads
//     sources only to hash them; an unchanged package is restored
//     without being parsed, type-checked, or analyzed, which is where
//     the warm/cold speedup in BENCH_*_vet.json comes from.
//
// The two hashes split the two ways a package's result can go stale:
//
//   - ChainHash covers everything the analyzers can see through the
//     type-checker: the package's own files, its in-set dependencies'
//     chain hashes (so an edit anywhere below invalidates the whole
//     import cone above it), the suite composition, and the toolchain
//     version. Facts only flow along the import DAG, so a matching
//     ChainHash means identical facts arrive from every dependency.
//
//   - HotHash covers the one input that flows AGAINST the import DAG:
//     the hot set. pipeline.Run reaching (or no longer reaching) a
//     store function changes hotalloc's verdict on store without any
//     store file changing. The driver therefore rebuilds the global
//     call graph every run — from cached call summaries, which is
//     cheap — and only honors a cache entry whose recorded hot slice
//     matches the fresh one.
//
// Soundness at the set boundary: a package whose import cone leaves
// the listed set but stays inside the module depends on sources the
// driver never hashed, so it (and its importers) are marked
// uncacheable rather than risk a stale hit. A full ./... run — the
// Makefile and CI entry point — has no such packages. Analyzer source
// changes are outside the hash too; the Makefile and CI key the cache
// directory on a hash of internal/analysis itself.
const cacheSchema = "phantom-vet-cache-v1"

// DriverOptions configures RunDriver.
type DriverOptions struct {
	// CacheDir, when non-empty, enables the on-disk result cache in
	// that directory (created if missing). Empty disables caching:
	// every package is loaded and analyzed.
	CacheDir string

	// Workers bounds the analysis pool. <= 0 selects GOMAXPROCS,
	// capped at 8 (type-checking is serialized anyway; past a point
	// more workers only contend).
	Workers int
}

// PackageStat records how the driver handled one package.
type PackageStat struct {
	Path     string
	CacheHit bool
	Load     time.Duration // parse + type-check (zero on hits)
	Analyze  time.Duration // all analyzers (zero on hits)
}

// AnalyzerStat is the aggregate wall time one analyzer spent across
// all analyzed packages.
type AnalyzerStat struct {
	Name string
	Wall time.Duration
}

// DriverStats is the -v report: cache effectiveness and where the
// time went.
type DriverStats struct {
	Packages    int
	CacheHits   int
	CacheMisses int
	Wall        time.Duration
	PerPackage  []PackageStat  // sorted by package path
	PerAnalyzer []AnalyzerStat // sorted by analyzer name
}

// cacheEntry is one package's persisted result.
type cacheEntry struct {
	Schema    string        `json:"schema"`
	ChainHash string        `json:"chain_hash"`
	HotHash   string        `json:"hot_hash"`
	Facts     *PackageFacts `json:"facts"`
	Diags     []Diagnostic  `json:"diags,omitempty"`
}

// driverNode is the per-package scheduling state.
type driverNode struct {
	lp          listedPackage
	deps        []string // in-set imports, sorted
	importers   []string // in-set reverse edges, sorted
	uncacheable bool     // import cone leaves the listed set within the module
	chain       string
	hotHash     string
	entry       *cacheEntry // chain-matched cache candidate
	summary     *PackageFacts
	pkg         *Package // loaded package (misses and demoted candidates)
	hit         bool
	diags       []Diagnostic
	err         error
	loadTime    time.Duration
	analyzeTime time.Duration
	perAnalyzer map[string]time.Duration
}

// RunDriver loads, analyzes, and (optionally) caches every package
// matched by the `go list` patterns, returning the combined sorted
// diagnostics and the run's statistics. With an empty CacheDir it is
// a parallel equivalent of Load followed by Run.
func RunDriver(suite []*Analyzer, patterns []string, opts DriverOptions) ([]Diagnostic, *DriverStats, error) {
	start := time.Now()
	listed, err := goList(patterns)
	if err != nil {
		return nil, nil, err
	}
	nodes := make(map[string]*driverNode)
	var paths []string
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		nodes[lp.ImportPath] = &driverNode{lp: lp, perAnalyzer: make(map[string]time.Duration)}
		paths = append(paths, lp.ImportPath)
	}
	sort.Strings(paths)
	linkGraph(nodes, paths)

	useCache := opts.CacheDir != ""
	if useCache {
		if err := prepareCache(nodes, paths, suite, opts.CacheDir); err != nil {
			return nil, nil, err
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}

	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var loadMu sync.Mutex // serializes type-checking (see typeCheck)

	// Phase 1: load every package with no chain-matched cache entry.
	// Parsing runs in parallel; type-checking serializes on loadMu.
	if err := loadMisses(nodes, paths, workers, fset, imp, &loadMu); err != nil {
		return nil, nil, err
	}

	// Phase 2: assemble the global call graph from summaries (cached
	// or fresh) and derive each package's hot slice; confirm or demote
	// the cache candidates against it.
	summaries := make(map[string]*PackageFacts, len(paths))
	for _, path := range paths {
		n := nodes[path]
		if n.summary == nil {
			n.summary = summarizePackage(n.pkg)
		}
		summaries[path] = n.summary
	}
	hot := BuildCallGraph(summaries).Reachable(HotRoots)
	for _, path := range paths {
		n := nodes[path]
		n.hotHash = hashStrings(sortedKeys(hotIn(hot, n.summary))...)
		n.hit = n.entry != nil && n.entry.HotHash == n.hotHash
	}

	// Phase 3: analyze misses (and restore hits) over the worker pool
	// in dependency order, so facts reach each package before it runs.
	facts := NewFactStore()
	if err := analyzePool(suite, nodes, paths, workers, fset, imp, &loadMu, facts, hot, opts); err != nil {
		return nil, nil, err
	}

	var out []Diagnostic
	stats := &DriverStats{Packages: len(paths), Wall: 0}
	analyzerTotals := make(map[string]time.Duration)
	for _, path := range paths {
		n := nodes[path]
		out = append(out, n.diags...)
		if n.hit {
			stats.CacheHits++
		} else {
			stats.CacheMisses++
		}
		stats.PerPackage = append(stats.PerPackage, PackageStat{
			Path: path, CacheHit: n.hit, Load: n.loadTime, Analyze: n.analyzeTime,
		})
		for _, name := range sortedKeysDuration(n.perAnalyzer) {
			analyzerTotals[name] += n.perAnalyzer[name]
		}
	}
	for _, name := range sortedKeysDuration(analyzerTotals) {
		stats.PerAnalyzer = append(stats.PerAnalyzer, AnalyzerStat{Name: name, Wall: analyzerTotals[name]})
	}
	sortDiagnostics(out)
	stats.Wall = time.Since(start)
	return out, stats, nil
}

// linkGraph fills each node's in-set dependency and importer edges.
func linkGraph(nodes map[string]*driverNode, paths []string) {
	for _, path := range paths {
		n := nodes[path]
		for _, imp := range n.lp.Imports {
			if _, ok := nodes[imp]; ok {
				n.deps = append(n.deps, imp)
			}
		}
		sort.Strings(n.deps)
		for _, dep := range n.deps {
			nodes[dep].importers = append(nodes[dep].importers, path)
		}
	}
	for _, path := range paths {
		sort.Strings(nodes[path].importers)
	}
}

// prepareCache computes chain hashes, marks uncacheable nodes, and
// loads chain-matched cache candidates (restoring their summaries).
func prepareCache(nodes map[string]*driverNode, paths []string, suite []*Analyzer, cacheDir string) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return fmt.Errorf("phantom-vet cache: %v", err)
	}
	mod, err := goListModule()
	if err != nil {
		return err
	}
	suiteNames := make([]string, 0, len(suite))
	for _, a := range suite {
		suiteNames = append(suiteNames, a.Name)
	}
	suiteKey := hashStrings(append([]string{cacheSchema, runtime.Version(), strings.Join(HotRoots, "\x00")}, suiteNames...)...)
	// Chain hashes in dependency order: every dep's chain exists
	// before its importers need it (import cycles cannot exist).
	done := make(map[string]bool)
	var visit func(path string) error
	visit = func(path string) error {
		n := nodes[path]
		if done[path] {
			return nil
		}
		done[path] = true
		for _, imp := range n.lp.Imports {
			inModule := imp == mod || strings.HasPrefix(imp, mod+"/")
			if _, inSet := nodes[imp]; inModule && !inSet {
				n.uncacheable = true // depends on sources the driver never hashed
			}
		}
		parts := []string{suiteKey}
		for _, name := range n.lp.GoFiles {
			data, err := os.ReadFile(filepath.Join(n.lp.Dir, name))
			if err != nil {
				return fmt.Errorf("phantom-vet cache: hashing %s: %v", path, err)
			}
			parts = append(parts, name, string(data))
		}
		for _, dep := range n.deps {
			if err := visit(dep); err != nil {
				return err
			}
			if nodes[dep].uncacheable {
				n.uncacheable = true
			}
			parts = append(parts, dep, nodes[dep].chain)
		}
		n.chain = hashStrings(parts...)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return err
		}
	}
	for _, path := range paths {
		n := nodes[path]
		if n.uncacheable {
			continue
		}
		entry := readCacheEntry(cacheDir, path)
		if entry != nil && entry.ChainHash == n.chain && entry.Facts != nil {
			n.entry = entry
			n.summary = entry.Facts
		}
	}
	return nil
}

// loadMisses parses and type-checks every node without a cache
// candidate, bounded by the worker count.
func loadMisses(nodes map[string]*driverNode, paths []string, workers int, fset *token.FileSet, imp types.Importer, loadMu *sync.Mutex) error {
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, path := range paths {
		n := nodes[path]
		if n.entry != nil {
			continue
		}
		wg.Add(1)
		go func(n *driverNode) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n.err = loadNode(n, fset, imp, loadMu)
		}(n)
	}
	wg.Wait()
	for _, path := range paths {
		if err := nodes[path].err; err != nil {
			return err
		}
	}
	return nil
}

// loadNode parses n's files (concurrently safe) and type-checks them
// under loadMu, recording the wall time.
func loadNode(n *driverNode, fset *token.FileSet, imp types.Importer, loadMu *sync.Mutex) error {
	start := time.Now()
	files, err := parseFiles(fset, n.lp.ImportPath, n.lp.Dir, n.lp.GoFiles)
	if err != nil {
		return err
	}
	loadMu.Lock()
	pkg, err := typeCheck(fset, imp, n.lp.ImportPath, files)
	loadMu.Unlock()
	if err != nil {
		return err
	}
	n.pkg = pkg
	n.loadTime = time.Since(start)
	return nil
}

// analyzePool runs the suite over every node in dependency order with
// bounded workers: a node is enqueued when its last in-set dependency
// finishes, so dep facts are always in the store first.
func analyzePool(suite []*Analyzer, nodes map[string]*driverNode, paths []string, workers int, fset *token.FileSet, imp types.Importer, loadMu *sync.Mutex, facts *FactStore, hot map[string]bool, opts DriverOptions) error {
	ready := make(chan *driverNode, len(paths))
	pending := make(map[string]int, len(paths))
	var pendingMu sync.Mutex
	remaining := len(paths)
	for _, path := range paths {
		pending[path] = len(nodes[path].deps)
	}
	for _, path := range paths {
		if pending[path] == 0 {
			ready <- nodes[path]
		}
	}
	if remaining == 0 {
		close(ready)
	}
	finish := func(n *driverNode) {
		pendingMu.Lock()
		for _, imp := range n.importers {
			pending[imp]--
			if pending[imp] == 0 {
				ready <- nodes[imp]
			}
		}
		remaining--
		last := remaining == 0
		pendingMu.Unlock()
		if last {
			close(ready)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range ready {
				if n.err == nil {
					n.err = analyzeNode(suite, n, fset, imp, loadMu, facts, hot, opts)
				}
				finish(n)
			}
		}()
	}
	wg.Wait()
	for _, path := range paths {
		if err := nodes[path].err; err != nil {
			return err
		}
	}
	return nil
}

// analyzeNode restores a confirmed cache hit or analyzes (loading
// first if the candidate was demoted by a hot-set change), then
// persists the fresh result when the cache is enabled.
func analyzeNode(suite []*Analyzer, n *driverNode, fset *token.FileSet, imp types.Importer, loadMu *sync.Mutex, facts *FactStore, hot map[string]bool, opts DriverOptions) error {
	if n.hit {
		facts.Set(n.lp.ImportPath, n.entry.Facts)
		n.diags = n.entry.Diags
		return nil
	}
	if n.pkg == nil {
		// Chain matched but the hot set moved: the cached diagnostics
		// are stale, so load and re-analyze.
		if err := loadNode(n, fset, imp, loadMu); err != nil {
			return err
		}
		n.summary = summarizePackage(n.pkg)
	}
	start := time.Now()
	diags, own := AnalyzePackage(suite, n.pkg, facts, n.summary, hotIn(hot, n.summary), func(analyzer string, d time.Duration) {
		n.perAnalyzer[analyzer] += d
	})
	n.analyzeTime = time.Since(start)
	n.diags = diags
	if opts.CacheDir != "" && !n.uncacheable {
		entry := &cacheEntry{
			Schema:    cacheSchema,
			ChainHash: n.chain,
			HotHash:   n.hotHash,
			Facts:     own,
			Diags:     diags,
		}
		if err := writeCacheEntry(opts.CacheDir, n.lp.ImportPath, entry); err != nil {
			return err
		}
	}
	return nil
}

// cacheEntryPath names a package's cache file: a readable base plus a
// hash of the full import path to avoid collisions.
func cacheEntryPath(dir, pkgPath string) string {
	sum := sha256.Sum256([]byte(pkgPath))
	return filepath.Join(dir, filepath.Base(pkgPath)+"-"+hex.EncodeToString(sum[:8])+".json")
}

// readCacheEntry loads a package's entry, or nil when absent, corrupt,
// or from a different schema — a cache read problem is a miss, never
// an error.
func readCacheEntry(dir, pkgPath string) *cacheEntry {
	data, err := os.ReadFile(cacheEntryPath(dir, pkgPath))
	if err != nil {
		return nil
	}
	var entry cacheEntry
	if json.Unmarshal(data, &entry) != nil || entry.Schema != cacheSchema {
		return nil
	}
	return &entry
}

// writeCacheEntry persists a package's entry atomically (write to a
// temp file, then rename) so a crashed run never leaves a torn entry
// for the next one to read.
func writeCacheEntry(dir, pkgPath string, entry *cacheEntry) error {
	data, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("phantom-vet cache: encoding %s: %v", pkgPath, err)
	}
	target := cacheEntryPath(dir, pkgPath)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("phantom-vet cache: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("phantom-vet cache: writing %s: %v", pkgPath, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("phantom-vet cache: writing %s: %v", pkgPath, err)
	}
	if err := os.Rename(tmp.Name(), target); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("phantom-vet cache: %v", err)
	}
	return nil
}

// goListModule reports the main module's path, which bounds the
// uncacheable-dependency check.
func goListModule() (string, error) {
	out, err := exec.Command("go", "list", "-m").Output()
	if err != nil {
		return "", fmt.Errorf("phantom-vet cache: go list -m: %v (caching requires module mode)", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// hashStrings digests its parts with length framing, so ("ab","c")
// and ("a","bc") cannot collide.
func hashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d\x00", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysDuration(m map[string]time.Duration) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
