package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncCFG parses `func f() { body }` and builds its CFG. The
// builder is purely syntactic, so undeclared identifiers in the body
// are fine — no type-checking happens here.
func parseFuncCFG(t *testing.T, body string) (*ast.FuncDecl, *CFG) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return fd, BuildCFG(fd)
}

// callBlock returns the block containing the call statement `name()`.
func callBlock(t *testing.T, cfg *CFG, name string) *Block {
	t.Helper()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				return b
			}
		}
	}
	t.Fatalf("no block contains a call to %s", name)
	return nil
}

// reachableBlocks walks Succs edges from Entry.
func reachableBlocks(cfg *CFG) map[*Block]bool {
	seen := make(map[*Block]bool)
	stack := []*Block{cfg.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

func hasSucc(b, target *Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

func TestCFGEmptyBody(t *testing.T) {
	_, cfg := parseFuncCFG(t, "")
	if len(cfg.Blocks) != 2 {
		t.Fatalf("empty body: %d blocks, want 2 (entry, exit)", len(cfg.Blocks))
	}
	if !hasSucc(cfg.Entry, cfg.Exit) {
		t.Error("empty body: entry does not reach exit")
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	if c {
		a()
	} else {
		b()
	}
	d()`)
	head := cfg.Entry
	if len(head.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(head.Succs))
	}
	join := callBlock(t, cfg, "d")
	if !hasSucc(callBlock(t, cfg, "a"), join) || !hasSucc(callBlock(t, cfg, "b"), join) {
		t.Error("then/else arms do not rejoin at the statement after the if")
	}
}

func TestCFGIfWithoutElseSkips(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	if c {
		a()
	}
	d()`)
	if !hasSucc(cfg.Entry, callBlock(t, cfg, "d")) {
		t.Error("if without else: head has no skip edge to the join block")
	}
}

func TestCFGForLoop(t *testing.T) {
	fd, cfg := parseFuncCFG(t, `
	for i := 0; cond; i++ {
		body()
	}
	rest()`)
	var loop *ast.ForStmt
	ast.Inspect(fd, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok {
			loop = f
		}
		return true
	})
	after := cfg.After(loop)
	if after == nil {
		t.Fatal("After(for) is nil")
	}
	if after != callBlock(t, cfg, "rest") {
		t.Error("After(for) is not the block holding the statement after the loop")
	}
	// The body must cycle back (through the post block) rather than
	// fall through to after directly.
	body := callBlock(t, cfg, "body")
	if hasSucc(body, after) {
		t.Error("loop body falls through to after without exiting via the head")
	}
}

func TestCFGRangeZeroIterationEdge(t *testing.T) {
	fd, cfg := parseFuncCFG(t, `
	for k := range m {
		body()
	}
	rest()`)
	var loop *ast.RangeStmt
	ast.Inspect(fd, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			loop = r
		}
		return true
	})
	after := cfg.After(loop)
	if after == nil {
		t.Fatal("After(range) is nil")
	}
	// The head must have a direct edge to after: a range over an empty
	// map runs zero iterations.
	headHasSkip := false
	for _, p := range after.Preds {
		if hasSucc(p, callBlock(t, cfg, "body")) {
			headHasSkip = true
		}
	}
	if !headHasSkip {
		t.Error("range head has no zero-iteration edge to after")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	d()`)
	if !hasSucc(callBlock(t, cfg, "a"), callBlock(t, cfg, "b")) {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	join := callBlock(t, cfg, "d")
	if !hasSucc(callBlock(t, cfg, "b"), join) || !hasSucc(callBlock(t, cfg, "c"), join) {
		t.Error("case bodies do not rejoin after the switch")
	}
	// With a default clause the switch is exhaustive: no head skip.
	if hasSucc(cfg.Entry, join) {
		t.Error("switch with default still has a head skip edge")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	select {
	case <-ch:
		a()
	default:
		b()
	}
	d()`)
	join := callBlock(t, cfg, "d")
	if !hasSucc(callBlock(t, cfg, "a"), join) || !hasSucc(callBlock(t, cfg, "b"), join) {
		t.Error("select clauses do not rejoin")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	fd, cfg := parseFuncCFG(t, `
L:
	for {
		for {
			break L
		}
	}
	done()`)
	var outer *ast.ForStmt
	ast.Inspect(fd, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && outer == nil {
			outer = f // first ForStmt encountered is the outer loop
		}
		return true
	})
	after := cfg.After(outer)
	if after == nil {
		t.Fatal("After(outer) is nil")
	}
	reach := reachableBlocks(cfg)
	if !reach[callBlock(t, cfg, "done")] {
		t.Error("break L does not make the code after the outer loop reachable")
	}
	_ = after
}

func TestCFGGotoAndUnreachable(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	goto L
	skipped()
L:
	target()`)
	reach := reachableBlocks(cfg)
	if !reach[callBlock(t, cfg, "target")] {
		t.Error("goto target unreachable")
	}
	if reach[callBlock(t, cfg, "skipped")] {
		t.Error("statement after goto is reachable; it must be dead")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	a()
	return
	dead()`)
	reach := reachableBlocks(cfg)
	if reach[callBlock(t, cfg, "dead")] {
		t.Error("code after return is reachable")
	}
	if !reach[cfg.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGDefersRecordedInOrder(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	defer first()
	if c {
		defer second()
	}`)
	if len(cfg.Defers) != 2 {
		t.Fatalf("%d defers recorded, want 2", len(cfg.Defers))
	}
	names := make([]string, 0, 2)
	for _, d := range cfg.Defers {
		names = append(names, d.Call.Fun.(*ast.Ident).Name)
	}
	if strings.Join(names, ",") != "first,second" {
		t.Errorf("defer order = %v, want [first second]", names)
	}
}

func TestCFGBlockOfMissesForeignNode(t *testing.T) {
	fd, cfg := parseFuncCFG(t, "a()")
	if cfg.BlockOf(fd) != nil {
		t.Error("BlockOf of a node never handed to the builder must be nil")
	}
}

// calledNames is the dataflow test harness: a must-analysis of "which
// functions have certainly been called", with set intersection as the
// join — the same lattice shape lockcheck and goleak use.
func calledNamesSpec() FlowSpec[map[string]bool] {
	clone := func(s map[string]bool) map[string]bool {
		out := make(map[string]bool, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	return FlowSpec[map[string]bool]{
		Entry: map[string]bool{},
		Join: func(a, b map[string]bool) map[string]bool {
			out := make(map[string]bool)
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			out := clone(in)
			for _, n := range b.Nodes {
				ast.Inspect(n, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
					return true
				})
			}
			return out
		},
	}
}

func TestForwardDataflowMustIntersection(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	a()
	if c {
		b()
	} else {
		b()
	}
	join()
	if c {
		onlyThen()
	}
	end()`)
	in := ForwardDataflow(cfg, calledNamesSpec())

	atJoin := in[callBlock(t, cfg, "join")]
	if !atJoin["a"] || !atJoin["b"] {
		t.Errorf("at join: must-set %v, want a and b (called on every path)", atJoin)
	}
	atEnd := in[callBlock(t, cfg, "end")]
	if atEnd["onlyThen"] {
		t.Error("onlyThen is in the must-set after a one-armed if; intersection join is broken")
	}
	if !atEnd["b"] {
		t.Error("b fell out of the must-set between join and end")
	}
}

func TestForwardDataflowLoopFixpoint(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	pre()
	for cond {
		inLoop()
	}
	post()`)
	in := ForwardDataflow(cfg, calledNamesSpec())
	atPost := in[callBlock(t, cfg, "post")]
	if !atPost["pre"] {
		t.Error("pre not in must-set after the loop")
	}
	if atPost["inLoop"] {
		t.Error("inLoop in must-set after the loop, but the loop may run zero times")
	}
}

func TestForwardDataflowSkipsUnreachable(t *testing.T) {
	_, cfg := parseFuncCFG(t, `
	return
	dead()`)
	in := ForwardDataflow(cfg, calledNamesSpec())
	if _, ok := in[callBlock(t, cfg, "dead")]; ok {
		t.Error("unreachable block has an in-state")
	}
}
