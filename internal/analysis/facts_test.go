package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCallGraphReachable(t *testing.T) {
	a := newPackageFacts()
	a.fact("m/a.Root").Callees = []string{"m/a.mid", "m/b.Leaf"}
	a.fact("m/a.mid").Callees = []string{"m/a.Root"} // cycle back
	a.fact("m/a.island").Callees = []string{"m/a.islandHelper"}
	b := newPackageFacts()
	b.fact("m/b.Leaf").Callees = nil

	g := BuildCallGraph(map[string]*PackageFacts{"m/a": a, "m/b": b})
	hot := g.Reachable([]string{"m/a.Root"})
	for _, want := range []string{"m/a.Root", "m/a.mid", "m/b.Leaf"} {
		if !hot[want] {
			t.Errorf("%s not reachable from Root", want)
		}
	}
	for _, cold := range []string{"m/a.island", "m/a.islandHelper"} {
		if hot[cold] {
			t.Errorf("%s reachable but nothing connects it to Root", cold)
		}
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	if s.Package("m/a") != nil {
		t.Fatal("empty store returned facts")
	}
	pf := newPackageFacts()
	pf.fact("m/a.F").Durable = "calls os.File.Sync"
	s.Set("m/a", pf)
	got := s.Package("m/a")
	if got == nil || got.Funcs["m/a.F"].Durable != "calls os.File.Sync" {
		t.Fatalf("round trip lost the durable fact: %+v", got)
	}
}

// writePhantomShadowModule lays out a throwaway module NAMED phantom,
// so its package paths land inside the real analyzers' Applies scopes
// — the only way to exercise cross-package fact flow end to end
// without type-checking the actual repo in a unit test. store exports
// a Durable fact (its Persist wraps f.Sync); cluster imports store and
// discards Persist's error, which only errflow-with-facts can see.
func writePhantomShadowModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module phantom\n\ngo 1.21\n")
	write("internal/store/store.go", `package store

import "os"

func Persist(f *os.File) error {
	return f.Sync()
}
`)
	write("internal/cluster/cluster.go", `package cluster

import (
	"os"

	"phantom/internal/store"
)

func Checkpoint(f *os.File) {
	store.Persist(f)
}
`)
	return root
}

func TestCrossPackageDurableFacts(t *testing.T) {
	inDir(t, writePhantomShadowModule(t))
	pkgs, err := Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(Suite(), pkgs)
	var found bool
	for _, d := range diags {
		if d.Analyzer == "errflow" && strings.Contains(d.Message, "Persist discards its error") {
			found = true
			if !strings.Contains(d.Pos.Filename, "cluster") {
				t.Errorf("durable-discard finding landed in %s, want the cluster package", d.Pos.Filename)
			}
		}
	}
	if !found {
		t.Fatalf("no errflow finding for the cross-package durable discard; got: %v", diags)
	}
}

// TestCachedFactsFlowToInvalidatedImporter is the reason cache entries
// persist facts at all: after a warm fill, only the importer (cluster)
// is edited. store must be restored from cache — unparsed, unchecked —
// and its Durable fact must still reach cluster's fresh analysis.
func TestCachedFactsFlowToInvalidatedImporter(t *testing.T) {
	root := writePhantomShadowModule(t)
	inDir(t, root)
	cacheDir := filepath.Join(t.TempDir(), "vetcache")

	run := func() ([]Diagnostic, *DriverStats) {
		t.Helper()
		diags, stats, err := RunDriver(Suite(), []string{"./..."}, DriverOptions{CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		return diags, stats
	}
	cold, _ := run()

	// Touch only the importer.
	src := filepath.Join(root, "internal", "cluster", "cluster.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, append(data, []byte("\nfunc unrelated() {}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, stats := run()
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("after editing cluster: hits=%d misses=%d, want 1/1 (store cached, cluster re-analyzed)", stats.CacheHits, stats.CacheMisses)
	}
	assertDurableFinding := func(diags []Diagnostic, label string) {
		t.Helper()
		for _, d := range diags {
			if d.Analyzer == "errflow" && strings.Contains(d.Message, "Persist discards its error") {
				return
			}
		}
		t.Fatalf("%s run lost the cross-package durable finding: %v", label, diags)
	}
	assertDurableFinding(cold, "cold")
	assertDurableFinding(warm, "warm")
}
