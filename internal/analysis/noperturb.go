package analysis

import (
	"go/ast"
	"strings"
)

// NoPerturb forbids writing to the process's standard streams from
// anywhere except the CLI front ends and the telemetry progress
// writer.
//
// Every experiment's stdout is byte-pinned: golden tests, the
// served-vs-CLI parity test, and the telemetry on/off parity tests all
// compare exact bytes. A stray fmt.Println deep in a simulation
// package — even a temporary debugging one — perturbs that output (or,
// on stderr, interleaves with the progress line) in a way the parity
// suite can only catch per-experiment. Simulation and harness packages
// therefore render exclusively through io.Writer parameters the caller
// owns; only cmd/, the examples, the dev tools, and the telemetry
// progress writer may touch os.Stdout/os.Stderr.
var NoPerturb = &Analyzer{
	Name: "noperturb",
	Doc: "forbid fmt.Print*/os.Stdout/os.Stderr/log output outside cmd/, examples/, " +
		"internal/tools/, report.go and the telemetry progress writer — render through caller-owned io.Writers",
	Applies: noPerturbScope,
	Run:     runNoPerturb,
}

func noPerturbScope(pkgPath, filename string) bool {
	if pkgPath == "phantom" && base(filename) == "report.go" {
		return false // the report builder's documented stdout examples
	}
	if pkgPath == "phantom/internal/telemetry" && base(filename) == "progress.go" {
		return false // the progress writer is the sanctioned stderr path
	}
	for _, prefix := range []string{"phantom/cmd/", "phantom/examples/", "phantom/internal/tools/"} {
		if strings.HasPrefix(pkgPath, prefix) {
			return false
		}
	}
	return true
}

func runNoPerturb(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := builtinName(pass, n); ok && (name == "print" || name == "println") {
					pass.Reportf(n.Pos(), "builtin %s writes to stderr and perturbs byte-pinned output; render through a caller-owned io.Writer", name)
				}
			case *ast.SelectorExpr:
				pkgName, pkgPath := selectorPackage(pass, n)
				if pkgName == nil {
					return true
				}
				switch pkgPath {
				case "fmt":
					switch n.Sel.Name {
					case "Print", "Printf", "Println":
						pass.Reportf(n.Pos(), "fmt.%s writes to os.Stdout and perturbs byte-pinned output; render through a caller-owned io.Writer", n.Sel.Name)
					}
				case "os":
					switch n.Sel.Name {
					case "Stdout", "Stderr":
						pass.Reportf(n.Pos(), "direct os.%s access outside the CLI layer perturbs byte-pinned output; accept an io.Writer instead", n.Sel.Name)
					}
				case "log":
					if strings.HasPrefix(n.Sel.Name, "Print") || strings.HasPrefix(n.Sel.Name, "Fatal") || strings.HasPrefix(n.Sel.Name, "Panic") {
						pass.Reportf(n.Pos(), "log.%s writes to the process-global logger (stderr); render through a caller-owned io.Writer", n.Sel.Name)
					}
				}
			}
			return true
		})
	}
}
