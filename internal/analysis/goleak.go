package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeak flags goroutines spawned without a join or cancel edge, and
// WaitGroup miscounts around the spawn.
//
// The sweep fan-out and the service coalescer spawn one goroutine per
// shard/flight; every one of them must be joinable (WaitGroup,
// channel) or cancellable (context), or a wedged node leaks a
// goroutine per request until the process dies — a failure mode load
// tests only reveal after hours. Three rules, all over `go func(...)`
// literals (a spawn of a named function is joined by whatever
// machinery that function was built around, which is out of local
// view and stays out of scope):
//
//  1. The goroutine body must contain a join/cancel edge: a
//     WaitGroup.Done, a channel operation (send, receive, close,
//     select), a context.CancelFunc call, or use of a context.Context
//     — anything that ties its lifetime to a peer. A body with none of
//     these is fire-and-forget and is flagged.
//  2. If the body calls wg.Done, a wg.Add must dominate the spawn: on
//     every CFG path from function entry to the go statement, an Add
//     on the same WaitGroup has already executed. Add placed after the
//     spawn (or on only one branch) races Wait.
//  3. wg.Add must not be called inside the spawned body itself — by
//     the time the goroutine runs, Wait may already have returned.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "flag `go func` goroutines with no join or cancel edge (WaitGroup/channel/context), " +
		"spawns whose wg.Done has no dominating wg.Add, and wg.Add inside the spawned body",
	Applies: goLeakScope,
	Run:     runGoLeak,
}

// goLeakScope matches lockCheckScope: the tier that spawns.
func goLeakScope(pkgPath, filename string) bool {
	return lockCheckScope(pkgPath, filename)
}

func runGoLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkSpawns(pass, n)
				}
			case *ast.FuncLit:
				checkSpawns(pass, n)
			}
			return true
		})
	}
}

// checkSpawns finds the `go func` statements directly inside fn's body
// (not inside nested literals — those are visited as their own fn) and
// applies the three rules.
func checkSpawns(pass *Pass, fn ast.Node) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			if _, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawns = append(spawns, g)
			}
			return false // the spawned literal belongs to rule checks, not re-walk
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	var cfg *CFG
	for _, g := range spawns {
		lit := g.Call.Fun.(*ast.FuncLit)
		if wg, ok := spawnAddsInsideBody(pass, lit); ok {
			pass.Reportf(g.Pos(), "%s.Add is called inside the spawned goroutine; Wait can return before the goroutine runs — Add before the go statement", wg)
			continue
		}
		doneWGs := doneTargets(pass, lit)
		if len(doneWGs) == 0 && !hasJoinEdge(pass, g, lit) {
			pass.Reportf(g.Pos(), "goroutine has no join or cancel edge (no WaitGroup.Done, channel operation, or context); a wedged body leaks it forever")
			continue
		}
		if len(doneWGs) > 0 {
			if cfg == nil {
				cfg = pass.CFG(fn)
			}
			checkAddDominatesSpawn(pass, cfg, g, doneWGs)
		}
	}
}

// spawnAddsInsideBody reports whether the spawned literal's own body
// (not further-nested literals) calls WaitGroup.Add.
func spawnAddsInsideBody(pass *Pass, lit *ast.FuncLit) (string, bool) {
	var wg string
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, op, ok := wgOp(pass, call); ok && op == "Add" {
				wg, found = recv, true
			}
		}
		return true
	})
	return wg, found
}

// doneTargets collects the canonical receivers of WaitGroup.Done calls
// in the spawned body (including deferred ones).
func doneTargets(pass *Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, op, ok := wgOp(pass, call); ok && op == "Done" && !seen[recv] {
				seen[recv] = true
				out = append(out, recv)
			}
		}
		return true
	})
	return out
}

// hasJoinEdge reports whether the spawned goroutine's lifetime is tied
// to a peer: a channel operation, select, context use, or CancelFunc
// call in its body, or a channel/context argument passed at the spawn.
func hasJoinEdge(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit) bool {
	for _, arg := range g.Call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && isJoinType(tv.Type) {
			return true
		}
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			joined = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				joined = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if name, ok := builtinName(pass, n); ok && name == "close" {
				joined = true
				return false
			}
			if tv, ok := pass.Info.Types[n.Fun]; ok && isCancelFunc(tv.Type) {
				joined = true
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && isJoinType(obj.Type()) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// isJoinType reports whether t ties a goroutine to a peer: a channel,
// a context.Context, or a context.CancelFunc.
func isJoinType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return obj.Name() == "Context" || obj.Name() == "CancelFunc"
		}
	}
	return isCancelFunc(t)
}

func isCancelFunc(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "CancelFunc"
}

// wgOp classifies call as a WaitGroup Add/Done/Wait on a canonical
// receiver.
func wgOp(pass *Pass, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	switch fn.FullName() {
	case "(*sync.WaitGroup).Add", "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
	default:
		return "", "", false
	}
	recv, ok = canonicalRecv(sel.X)
	if !ok {
		return "", "", false
	}
	return recv, fn.Name(), true
}

// checkAddDominatesSpawn verifies via a must-dataflow that on every CFG
// path reaching g's block, every WaitGroup the spawned body calls Done
// on has had Add called. States are must-sets of added receivers;
// within g's block the statements before g are replayed to position the
// check exactly at the spawn.
func checkAddDominatesSpawn(pass *Pass, cfg *CFG, g *ast.GoStmt, doneWGs []string) {
	spawnBlock := cfg.BlockOf(g)
	if spawnBlock == nil {
		return
	}
	adds := func(n ast.Node, set map[string]bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if recv, op, ok := wgOp(pass, call); ok && op == "Add" {
					set[recv] = true
				}
			}
			return true
		})
	}
	in := ForwardDataflow(cfg, FlowSpec[map[string]bool]{
		Entry: map[string]bool{},
		Join: func(a, b map[string]bool) map[string]bool {
			out := make(map[string]bool)
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			out := make(map[string]bool, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				adds(n, out)
			}
			return out
		},
	})
	state, ok := in[spawnBlock]
	if !ok {
		return // spawn unreachable
	}
	have := make(map[string]bool, len(state))
	for k := range state {
		have[k] = true
	}
	for _, n := range spawnBlock.Nodes {
		if n == ast.Node(g) {
			break
		}
		adds(n, have)
	}
	for _, wg := range doneWGs {
		if !have[wg] {
			pass.Reportf(g.Pos(), "goroutine calls %s.Done but no %s.Add dominates the spawn; Wait can return early or panic on a negative counter", wg, wg)
		}
	}
}
