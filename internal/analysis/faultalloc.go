package analysis

import (
	"go/ast"
	"go/types"
)

// FaultAlloc forbids heap-allocating Fault values on the simulator's
// hot paths.
//
// The zero-allocation fetch/translate fast path flattened every
// &Fault{} into value returns (TranslateV and scratch Fault values):
// a pointer-shaped Fault escapes to the heap on every missed probe,
// and the Prime+Probe experiments miss millions of times per run. The
// regression is invisible in unit tests — everything still passes,
// just slower and GC-noisier — so the analyzer pins the shape
// instead: no &Fault{...}, new(Fault), or address-of a Fault
// composite anywhere in the simulation core. Benchmarks with
// ReportAllocs guard the totals; this guards the idiom.
var FaultAlloc = &Analyzer{
	Name: "faultalloc",
	Doc: "forbid &Fault{}/new(Fault) on the hot translate/probe paths — " +
		"Faults are passed and returned by value so the fast path stays allocation-free",
	Applies: faultAllocScope,
	Run:     runFaultAlloc,
}

// faultAllocScope: the packages on (or feeding) the per-instruction
// fetch/translate/probe path.
func faultAllocScope(pkgPath, filename string) bool {
	switch pkgPath {
	case "phantom/internal/mem", "phantom/internal/pipeline", "phantom/internal/cache",
		"phantom/internal/uarch", "phantom/internal/core", "phantom/internal/kernel":
		return true
	}
	return false
}

func runFaultAlloc(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op.String() != "&" {
					return true
				}
				if cl, ok := n.X.(*ast.CompositeLit); ok && isFaultType(pass, cl) {
					pass.Reportf(n.Pos(), "&Fault{} allocates on the hot path; pass Fault by value (the fast path is pinned allocation-free)")
				}
			case *ast.CallExpr:
				name, ok := builtinName(pass, n)
				if !ok || name != "new" || len(n.Args) != 1 {
					return true
				}
				if tv, ok := pass.Info.Types[n.Args[0]]; ok && isNamedFault(tv.Type) {
					pass.Reportf(n.Pos(), "new(Fault) allocates on the hot path; use a value Fault (the fast path is pinned allocation-free)")
				}
			}
			return true
		})
	}
}

// isFaultType reports whether the composite literal builds a value of
// a named type called Fault. The check is by name rather than by a
// hard-wired package path so the fixture packages (and any future
// second fault-like type) exercise the same rule the simulator does.
func isFaultType(pass *Pass, cl *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[cl]
	if !ok {
		return false
	}
	return isNamedFault(tv.Type)
}

func isNamedFault(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Fault"
}
