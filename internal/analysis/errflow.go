package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow forbids silently discarding errors from durability
// operations in the persistence and cluster tier.
//
// The result store's crash-safety story is fsync-then-rename: a write
// is durable only once Sync and Close both succeed, and the only
// channel those primitives have for reporting a lost write IS the
// error result. A bare `f.Close()` statement — or `defer f.Sync()` —
// throws that report away: the store acks a result that may not be on
// disk, and the sweep coordinator will never re-dispatch the shard.
// The rule: an error from a durability primitive (Sync, Close, Rename,
// Flock, Flush, ...) or from any in-repo function marked durable must
// be bound, not dropped. The explicit blank assignment `_ = f.Close()`
// stays legal as the auditable opt-out — it is greppable and shows up
// in review, while a bare call statement reads like the error never
// existed.
//
// Durability is interprocedural: a helper that wraps Sync is as
// durable as Sync itself. ErrFlow therefore exports a Durable fact for
// every function in scope whose body calls a durability op and returns
// an error; callers in importing packages are checked against those
// facts (facts.go).
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "forbid discarding errors from durability operations (Sync/Close/Rename/Flock/Flush and in-repo functions marked durable) " +
		"in the persistence tier; use an explicit `_ =` when dropping the error is a considered decision",
	Applies: errFlowScope,
	Run:     runErrFlow,
}

// errFlowScope: the packages that own bytes-on-disk or bytes-on-wire
// durability — the result store, the cluster transport, and the sweep
// coordinator that acks shards.
func errFlowScope(pkgPath, filename string) bool {
	switch pkgPath {
	case "phantom/internal/store", "phantom/internal/cluster", "phantom/internal/sweep",
		"phantom/internal/service":
		return true
	}
	return false
}

// durablePrimitives maps FullNames of stdlib/syscall durability
// primitives to the reason they must not be discarded.
var durablePrimitives = map[string]string{
	"(*os.File).Sync":       "reports whether the write reached disk",
	"(*os.File).Close":      "reports deferred write-back errors",
	"(*os.File).Truncate":   "reports whether the truncate reached disk",
	"os.Rename":             "is the commit point of write-then-rename",
	"os.Remove":             "reports whether the unlink happened",
	"syscall.Flock":         "reports whether the lock is actually held",
	"syscall.Fsync":         "reports whether the write reached disk",
	"(*bufio.Writer).Flush": "reports whether buffered bytes were written",
}

func runErrFlow(pass *Pass) {
	exportDurableFacts(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, n.X, "")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "go ")
			}
			return true
		})
	}
}

// checkDiscardedCall reports e when it is a call whose discarded error
// result carries a durability outcome.
func checkDiscardedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calledFunc(pass, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	reason, durable := durableReason(pass, fn)
	if !durable {
		return
	}
	pass.Reportf(e.Pos(), "%s%s discards its error, which %s; bind it or make the drop explicit with `_ =`",
		how, fn.Name(), reason)
}

// calledFunc resolves the concrete function a call invokes, or nil.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// durableReason reports whether fn's error result carries a durability
// outcome, either because fn is a known primitive, because it is
// declared in this package and exported a Durable fact, or because an
// already-analyzed imported package exported one for it.
func durableReason(pass *Pass, fn *types.Func) (string, bool) {
	if reason, ok := durablePrimitives[fn.FullName()]; ok {
		return reason, true
	}
	if pass.OwnFacts != nil && fn.Pkg() == pass.Pkg {
		if f := pass.OwnFacts.Funcs[fn.FullName()]; f != nil && f.Durable != "" {
			return f.Durable, true
		}
	}
	if reason, ok := pass.ImportedDurable(fn); ok {
		return reason, true
	}
	return "", false
}

// exportDurableFacts walks the package's declared functions and marks
// as Durable every one that returns an error and calls a durability
// primitive (or an already-marked durable function) in its body.
// Iterating to a fixpoint handles helper-calls-helper chains within
// the package regardless of declaration order.
func exportDurableFacts(pass *Pass) {
	if pass.OwnFacts == nil {
		return
	}
	type candidate struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var candidates []candidate
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !returnsError(fn) {
				continue
			}
			candidates = append(candidates, candidate{fn, fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range candidates {
			if f := pass.OwnFacts.Funcs[c.fn.FullName()]; f != nil && f.Durable != "" {
				continue
			}
			ast.Inspect(c.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calledFunc(pass, call)
				if callee == nil || callee == c.fn {
					return true
				}
				if _, ok := durableReason(pass, callee); ok {
					reason := "calls " + displayName(callee)
					pass.ExportDurable(c.fn, reason)
					changed = true
					return false
				}
				return true
			})
		}
	}
}

// displayName renders fn for messages: Type.Method or pkg.Func without
// the import-path and pointer noise of FullName.
func displayName(fn *types.Func) string {
	full := fn.FullName()
	full = strings.Map(func(r rune) rune {
		switch r {
		case '(', ')', '*':
			return -1
		}
		return r
	}, full)
	if i := strings.LastIndex(full, "/"); i >= 0 {
		full = full[i+1:]
	}
	return full
}
