package analysis

import (
	"path/filepath"
	"testing"
)

// Each analyzer gets a flagging (bad) and a non-flagging (ok) fixture
// package. The bad fixtures annotate every expected diagnostic with a
// // want "regexp" comment; the ok fixtures must produce none.
func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestDeterminismFixtures(t *testing.T) {
	RunFixture(t, Determinism, fixture("determinism", "bad"))
	RunFixture(t, Determinism, fixture("determinism", "ok"))
}

func TestMapOrderFixtures(t *testing.T) {
	RunFixture(t, MapOrder, fixture("maporder", "bad"))
	RunFixture(t, MapOrder, fixture("maporder", "ok"))
}

func TestNoPerturbFixtures(t *testing.T) {
	RunFixture(t, NoPerturb, fixture("noperturb", "bad"))
	RunFixture(t, NoPerturb, fixture("noperturb", "ok"))
}

func TestCtxFlowFixtures(t *testing.T) {
	RunFixture(t, CtxFlow, fixture("ctxflow", "bad"))
	RunFixture(t, CtxFlow, fixture("ctxflow", "ok"))
}

func TestFaultAllocFixtures(t *testing.T) {
	RunFixture(t, FaultAlloc, fixture("faultalloc", "bad"))
	RunFixture(t, FaultAlloc, fixture("faultalloc", "ok"))
}

func TestLockCheckFixtures(t *testing.T) {
	RunFixture(t, LockCheck, fixture("lockcheck", "bad"))
	RunFixture(t, LockCheck, fixture("lockcheck", "ok"))
}

func TestErrFlowFixtures(t *testing.T) {
	RunFixture(t, ErrFlow, fixture("errflow", "bad"))
	RunFixture(t, ErrFlow, fixture("errflow", "ok"))
}

func TestGoLeakFixtures(t *testing.T) {
	RunFixture(t, GoLeak, fixture("goleak", "bad"))
	RunFixture(t, GoLeak, fixture("goleak", "ok"))
}

func TestHotAllocFixtures(t *testing.T) {
	RunFixture(t, HotAlloc, fixture("hotalloc", "bad"))
	RunFixture(t, HotAlloc, fixture("hotalloc", "ok"))
}

func TestUnusedIgnoreFixtures(t *testing.T) {
	RunFixture(t, UnusedIgnore, fixture("unusedignore", "bad"))
	RunFixture(t, UnusedIgnore, fixture("unusedignore", "ok"))
}

// TestCrossAnalyzerSilence pins that analyzers do not fire on each
// other's fixtures where the invariants do not overlap: the
// determinism fixtures never print, the noperturb fixtures never read
// clocks, and nothing outside the ctxflow fixtures minds contexts.
func TestCrossAnalyzerSilence(t *testing.T) {
	cases := []struct {
		a       *Analyzer
		fixture string
	}{
		{Determinism, fixture("noperturb", "bad")},
		{Determinism, fixture("ctxflow", "bad")},
		{Determinism, fixture("faultalloc", "bad")},
		{NoPerturb, fixture("determinism", "bad")},
		{NoPerturb, fixture("ctxflow", "bad")},
		{CtxFlow, fixture("determinism", "bad")},
		{CtxFlow, fixture("faultalloc", "bad")},
		{FaultAlloc, fixture("determinism", "bad")},
		{FaultAlloc, fixture("maporder", "bad")},
		{MapOrder, fixture("determinism", "bad")},
		{MapOrder, fixture("faultalloc", "bad")},
	}
	for _, c := range cases {
		diags, _, err := AnalyzeDir(c.a, c.fixture)
		if err != nil {
			t.Fatalf("%s on %s: %v", c.a.Name, c.fixture, err)
		}
		for _, d := range diags {
			t.Errorf("%s fired on %s: %s", c.a.Name, c.fixture, d)
		}
	}
}
