package analysis

// dataflow.go is the forward dataflow solver the CFG-based analyzers
// share. It is deliberately tiny: a worklist to fixpoint over a CFG,
// parameterized by the state type and its lattice operations. The
// states the suite needs (locksets, WaitGroup add-sets) are small maps
// over canonical expression strings, so a generic map-set join is
// provided alongside the solver.

// A FlowSpec defines one forward dataflow problem over states of type
// S. Entry is the state at the function entry; Join merges the states
// flowing into a block from its predecessors (union for may-
// properties, intersection for must-properties); Equal detects the
// fixpoint; Transfer pushes a state through one block's nodes and
// must not mutate its input.
type FlowSpec[S any] struct {
	Entry    S
	Join     func(a, b S) S
	Equal    func(a, b S) bool
	Transfer func(b *Block, in S) S
}

// ForwardDataflow solves the problem to fixpoint and returns the
// in-state of every reachable block. Unreachable blocks (code after a
// return) are absent from the result.
func ForwardDataflow[S any](cfg *CFG, spec FlowSpec[S]) map[*Block]S {
	in := make(map[*Block]S)
	seen := make(map[*Block]bool)
	in[cfg.Entry] = spec.Entry
	seen[cfg.Entry] = true

	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := spec.Transfer(b, in[b])
		for _, s := range b.Succs {
			next := out
			if seen[s] {
				next = spec.Join(in[s], out)
				if spec.Equal(next, in[s]) {
					continue
				}
			}
			in[s] = next
			seen[s] = true
			work = append(work, s)
		}
	}
	return in
}
