package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// HotRoots are the entry points of the simulator's per-instruction
// path. Everything the call graph can reach from these — across
// package boundaries — is "hot": it runs once per simulated fetch or
// step, millions of times per Prime+Probe experiment.
var HotRoots = []string{
	"(*phantom/internal/pipeline.Machine).Run",
	"(*phantom/internal/pipeline.Machine).RunAt",
	"(*phantom/internal/pipeline.Machine).TimedFetch",
	"(*phantom/internal/pipeline.Machine).TimedLoad",
	"(*phantom/internal/pipeline.Machine).FlushVA",
}

// HotAlloc is the interprocedural generalization of faultalloc: no
// heap allocation in any function the whole-repo call graph marks
// reachable from the hot roots.
//
// faultalloc pins one shape (&Fault{}) in a fixed package list; it
// misses the helper two calls away that builds a []Probe on every
// step. HotAlloc closes that gap with the call graph: the driver
// computes the set of functions reachable from HotRoots across the
// repo (callgraph.go facts) and this analyzer flags the allocating
// shapes inside them — address-of composite literal, new(T), map and
// slice composite literals, and growing append. Plain `make` is
// deliberately NOT flagged: the simulator's sanctioned amortization
// idiom is a make'd arena reused across steps (btb.set), and append
// into a 3-arg-make'd slice in the same function is recognized as that
// idiom too.
//
// Cold constructors stay free to allocate: NewX functions run once.
// What matters is reachability from the roots, not package membership.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap-allocating shapes (&T{}, new, map/slice literals, growing append) in functions " +
		"reachable from the pipeline hot roots; amortize with a reused make'd arena instead",
	Applies: hotAllocScope,
	Run:     runHotAlloc,
}

// hotAllocScope mirrors faultalloc's package list — the simulation
// core. The call graph narrows further to actually-hot functions;
// the scope only bounds which packages are worth summarizing.
func hotAllocScope(pkgPath, filename string) bool {
	return faultAllocScope(pkgPath, filename)
}

func runHotAlloc(pass *Pass) {
	hot := hotFuncs(pass)
	if len(hot) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !hot[fn.FullName()] {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

// hotFuncs returns the hot set for this package: the driver's global
// reachability (pass.Hot) unioned with intra-package reachability from
// local roots. Local roots are HotRoots declared here plus any
// function annotated `//phantomvet:hotroot` — the escape hatch fixture
// packages and future subsystems use to opt a function in without
// editing HotRoots.
func hotFuncs(pass *Pass) map[string]bool {
	roots := make(map[string]bool)
	for name := range pass.Hot {
		roots[name] = true
	}
	rootNames := make(map[string]bool, len(HotRoots))
	for _, r := range HotRoots {
		rootNames[r] = true
	}
	for _, file := range pass.Files {
		annotated := hotrootLines(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			full := fn.FullName()
			if rootNames[full] || annotated[pass.Fset.Position(fd.Pos()).Line] {
				roots[full] = true
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	// Close over intra-package (and any already-known) call edges so a
	// helper called from a hot function is hot even when the global
	// graph was not computed (fixture runs, single-package runs).
	summary := summarizePackage(pass.pkg)
	graph := BuildCallGraph(map[string]*PackageFacts{pass.Pkg.Path(): summary})
	rootList := make([]string, 0, len(roots))
	for name := range roots {
		rootList = append(rootList, name)
	}
	sort.Strings(rootList)
	return graph.Reachable(rootList)
}

// hotrootLines returns the set of lines f's phantomvet:hotroot
// directives apply to: the line after the directive comment (the
// func declaration it documents).
func hotrootLines(pass *Pass, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "phantomvet:hotroot") {
				out[pass.Fset.Position(c.Pos()).Line+1] = true
			}
		}
	}
	return out
}

// checkHotBody flags the allocating shapes in one hot function's body.
// Nested function literals are skipped: a closure allocates at
// creation (which would itself be flagged if written here as &...) and
// the hot path creates none.
func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	madeCap := threeArgMakeVars(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() != "&" {
				return true
			}
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&composite literal allocates in a hot function (reachable from the pipeline roots); use a value or a reused arena")
			}
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in a hot function; hoist it to a field or package-level table")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in a hot function; hoist it or reuse a make'd arena")
			}
		case *ast.CallExpr:
			name, ok := builtinName(pass, n)
			if !ok {
				return true
			}
			switch name {
			case "new":
				pass.Reportf(n.Pos(), "new(...) allocates in a hot function; use a value or a reused arena")
			case "append":
				if len(n.Args) == 0 {
					return true
				}
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && madeCap[pass.Info.ObjectOf(id)] {
					return true // appending into a slice pre-sized in this function
				}
				pass.Reportf(n.Pos(), "append may grow its backing array in a hot function; pre-size with a 3-arg make or reuse an arena")
			}
		}
		return true
	})
}

// threeArgMakeVars collects the slice variables assigned a 3-arg make
// in this body: appends into them up to capacity are allocation-free,
// which is the sanctioned pre-size-then-fill idiom.
func threeArgMakeVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			if name, ok := builtinName(pass, call); !ok || name != "make" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
