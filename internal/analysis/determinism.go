package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism forbids ambient entropy — wall-clock reads and the
// process-global math/rand source — inside the simulation packages.
//
// Every experiment result must be a pure function of (experiment,
// arch, seed, options): that is the invariant the parity tests pin
// byte-for-byte across predecode on/off, telemetry on/off, and
// served-vs-CLI rendering, and it is what makes a reported Table 1
// reproducible at all. time.Now and the global rand functions are the
// two ways nondeterminism historically sneaks in; both have
// deterministic replacements already threaded through the tree (the
// simulated cycle clock, and seeded *rand.Rand values derived from the
// run's seed).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since and the global math/rand source in simulation packages; " +
		"all randomness must flow from a seeded *rand.Rand and all time from the simulated clock",
	Applies: determinismScope,
	Run:     runDeterminism,
}

// determinismScope: the packages that compute experiment results, plus
// the distributed-tier packages (store, cluster) whose recovery and
// ownership decisions are designed to be clock- and randomness-free —
// consistent-hash ownership is a pure function of the peer IDs, and
// peer health is failure-count based rather than timeout based. The
// harness layers around them (sweep, telemetry, service, cmd) read the
// wall clock legitimately — for progress lines and latency metrics —
// and are kept honest by the no-perturbation parity tests instead.
func determinismScope(pkgPath, filename string) bool {
	switch pkgPath {
	case "phantom/internal/pipeline", "phantom/internal/btb", "phantom/internal/cache",
		"phantom/internal/mem", "phantom/internal/uarch", "phantom/internal/isa",
		"phantom/internal/kernel", "phantom/internal/core", "phantom/internal/stats",
		"phantom/internal/search", "phantom/internal/store", "phantom/internal/cluster":
		return true
	case "phantom":
		// The root package mixes experiment drivers (experiments.go,
		// in scope) with config/report plumbing. Only the drivers
		// compute results.
		return base(filename) == "experiments.go"
	}
	return false
}

// randConstructors are the math/rand package-level functions that do
// NOT touch the global source: they build or seed an explicit
// generator, which is exactly what the invariant demands.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 names, accepted so a future migration does not
	// have to touch this analyzer.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, pkgPath := selectorPackage(pass, sel)
			if pkgName == nil {
				return true
			}
			switch pkgPath {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation results must depend only on the seed (use the simulated cycle clock)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if randConstructors[sel.Sel.Name] {
					return true
				}
				if isPackageFunc(pass, sel) {
					pass.Reportf(sel.Pos(), "rand.%s uses the process-global source; derive a *rand.Rand from the run's seed instead", sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// selectorPackage resolves sel's receiver to an imported package, or
// nil if sel is a field/method selection on a value.
func selectorPackage(pass *Pass, sel *ast.SelectorExpr) (*types.PkgName, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil, ""
	}
	return pn, pn.Imported().Path()
}

// isPackageFunc reports whether sel names a function (not a type,
// const, or var) of the selected package.
func isPackageFunc(pass *Pass, sel *ast.SelectorExpr) bool {
	obj := pass.Info.Uses[sel.Sel]
	_, ok := obj.(*types.Func)
	return ok
}

// base returns the final element of a slash- or OS-separated path.
func base(p string) string {
	if i := strings.LastIndexAny(p, `/\`); i >= 0 {
		return p[i+1:]
	}
	return p
}
