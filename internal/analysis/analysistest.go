package analysis

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is the fixture harness: the stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest. A fixture is one
// package directory under testdata/src whose files annotate expected
// findings with trailing comments:
//
//	t := time.Now() // want "wall clock"
//
// Each `want` string is a regexp that must match the message of a
// diagnostic reported on that line; every diagnostic must be matched
// by exactly one expectation and vice versa. A fixture with no want
// comments is a negative case: the analyzer must stay silent on it.

// TestingT is the fragment of *testing.T the harness needs, split out
// so the harness itself is testable.
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// expectation is one `// want "re"` annotation.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunFixture loads the fixture package at dir (one package, no test
// files), runs a on it with phantomvet:ignore suppression applied,
// and compares the diagnostics against the fixture's want
// annotations.
func RunFixture(t TestingT, a *Analyzer, dir string) {
	t.Helper()
	diags, fset, err := AnalyzeDir(a, dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	expects, err := parseExpectations(fset, dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claimExpectation(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s", filepath.Base(dir), d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: %s:%d: expected a diagnostic matching %q, got none",
				filepath.Base(dir), filepath.Base(e.file), e.line, e.re)
		}
	}
}

// AnalyzeDir parses and type-checks the single package in dir and runs
// a over it, ignoring a.Applies (fixtures exercise the raw rule) but
// honouring phantomvet:ignore directives.
func AnalyzeDir(a *Analyzer, dir string) ([]Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	name, files, err := parseDir(fset, dir)
	if err != nil {
		return nil, nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type checking: %v", err)
	}
	pkg := &Package{PkgPath: name, Fset: fset, Files: files, Types: tpkg, Info: info}
	if a == UnusedIgnore {
		// The dead-suppression check is defined over a whole suite run:
		// a directive is unused only if the analyzer it names ran and
		// stayed silent. Its fixtures therefore run everything and
		// report only the unusedignore findings.
		all, _ := AnalyzePackage(Suite(), pkg, nil, nil, nil, nil)
		var out []Diagnostic
		for _, d := range all {
			if d.Analyzer == UnusedIgnore.Name {
				out = append(out, d)
			}
		}
		return out, fset, nil
	}
	return runOne(a, pkg, false, nil, nil, newPackageFacts(), nil), fset, nil
}

// parseExpectations re-reads the fixture's comments for want
// annotations. It reuses the already-parsed comment lists via a fresh
// parse of the directory, which keeps the harness independent of how
// AnalyzeDir ran.
func parseExpectations(fset *token.FileSet, dir string) ([]*expectation, error) {
	efset := token.NewFileSet()
	_, files, err := parseDir(efset, dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := efset.Position(c.Pos())
				res, err := splitWantPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// splitWantPatterns parses the payload of a want comment: one or more
// double-quoted regexps.
func splitWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("want payload must be double-quoted regexps, got %q", s)
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		re, err := regexp.Compile(s[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern: %v", err)
		}
		out = append(out, re)
		s = s[end+2:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment carries no patterns")
	}
	return out, nil
}

// claimExpectation marks the first unmatched expectation on d's line
// whose pattern matches d's message.
func claimExpectation(expects []*expectation, d Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.line != d.Pos.Line || filepath.Base(e.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}
