package analysis

import (
	"go/types"
	"sort"
	"sync"
)

// facts.go is the cross-package half of the flow engine: the stdlib
// analogue of golang.org/x/tools/go/analysis facts. An analyzer
// running on package P exports facts about P's functions; analyzers
// running on packages that import P consume them. Facts flow strictly
// along the import DAG (the driver analyzes packages in dependency
// order), are keyed by types.Func.FullName (stable across processes),
// and are plain JSON-serializable data so the driver's on-disk result
// cache can restore a package's exports without re-analyzing it.
//
// Two fact kinds exist today:
//
//   - Callees: the static call edges out of every function, extracted
//     for every package (callgraph.go). The driver assembles them into
//     the whole-repo call graph that marks the hot set for hotalloc.
//   - Durable: set by errflow on functions whose error result reports
//     a durability outcome (an fsync/flush/flock, or transitively a
//     call to one). A caller in an importing package that discards
//     such an error is discarding a lost-write report.

// A FuncFact is the exported summary of one function.
type FuncFact struct {
	// Callees holds the FullNames of functions this one statically
	// calls (closure bodies attributed to their enclosing function),
	// sorted and deduplicated.
	Callees []string `json:"callees,omitempty"`

	// Durable, when non-empty, is the human-readable reason this
	// function's error result must not be discarded on a durability
	// path ("calls (*os.File).Sync", ...).
	Durable string `json:"durable,omitempty"`
}

// PackageFacts is everything one package exports, keyed by
// types.Func.FullName.
type PackageFacts struct {
	Funcs map[string]*FuncFact `json:"funcs,omitempty"`
}

func newPackageFacts() *PackageFacts {
	return &PackageFacts{Funcs: make(map[string]*FuncFact)}
}

// fact returns (creating if needed) the fact record for the named
// function.
func (pf *PackageFacts) fact(fullName string) *FuncFact {
	if pf.Funcs == nil {
		pf.Funcs = make(map[string]*FuncFact)
	}
	f := pf.Funcs[fullName]
	if f == nil {
		f = &FuncFact{}
		pf.Funcs[fullName] = f
	}
	return f
}

// names returns the fact keys in sorted order, for deterministic
// iteration (the suite obeys its own maporder rule).
func (pf *PackageFacts) names() []string {
	out := make([]string, 0, len(pf.Funcs))
	for name := range pf.Funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// A FactStore holds the facts of every package analyzed (or restored
// from cache) so far in one run. The driver writes a package's facts
// exactly once, after its analysis completes and before any importer
// starts, so readers never observe a partially exported package.
type FactStore struct {
	mu   sync.Mutex
	pkgs map[string]*PackageFacts
}

func NewFactStore() *FactStore {
	return &FactStore{pkgs: make(map[string]*PackageFacts)}
}

// Set records pkgPath's exported facts.
func (s *FactStore) Set(pkgPath string, pf *PackageFacts) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkgs[pkgPath] = pf
}

// Package returns pkgPath's facts, or nil if the package has not been
// analyzed (not in the vetted set, or not yet reached — the driver's
// dependency ordering makes the latter impossible for true imports).
func (s *FactStore) Package(pkgPath string) *PackageFacts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pkgs[pkgPath]
}

// ExportDurable records fn as a durability op in the current package's
// exported facts. No-op when the pass has no fact sink (isolated
// fixture runs on the raw rule).
func (p *Pass) ExportDurable(fn *types.Func, reason string) {
	if p.OwnFacts == nil {
		return
	}
	p.OwnFacts.fact(fn.FullName()).Durable = reason
}

// ImportedDurable reports whether fn (declared in another package)
// carries a Durable fact exported when that package was analyzed.
func (p *Pass) ImportedDurable(fn *types.Func) (string, bool) {
	if p.Facts == nil || fn.Pkg() == nil {
		return "", false
	}
	pf := p.Facts.Package(fn.Pkg().Path())
	if pf == nil {
		return "", false
	}
	f := pf.Funcs[fn.FullName()]
	if f == nil || f.Durable == "" {
		return "", false
	}
	return f.Durable, true
}
