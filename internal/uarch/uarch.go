// Package uarch defines the microarchitecture profiles of the simulated
// CPUs: AMD Zen 1 through Zen 4 and Intel 9th/11th/12th/13th generation
// (P-cores), the eight parts the paper evaluates.
//
// A profile fixes pipeline geometry, cache geometry, latencies, the BTB
// indexing scheme, and — crucially for Phantom — how far a wrong-path
// control flow advances through the decoupled frontend before a resteer
// takes effect, plus which mitigation MSRs the part supports. The
// experiments never read these capabilities directly; they rediscover them
// through the same I-cache / µop-cache / D-cache observation channels the
// paper uses, and the per-experiment tests assert that what the channels
// *measure* matches what the paper reports.
package uarch

import (
	"fmt"

	"phantom/internal/btb"
	"phantom/internal/cache"
)

// Vendor distinguishes the two modeled CPU vendors.
type Vendor uint8

// Vendors.
const (
	AMD Vendor = iota
	Intel
)

func (v Vendor) String() string {
	if v == AMD {
		return "AMD"
	}
	return "Intel"
}

// IndirectVictimBehavior captures the Intel-specific anomaly the paper
// reports for victim jmp* instructions ("our results for some of our Intel
// parts do not indicate ID, and sometimes not even IF, in certain scenarios
// where the victim instruction is jmp*", Section 6).
type IndirectVictimBehavior uint8

// Behaviors for Phantom speculation at an indirect-branch victim.
const (
	IndirectVictimFull      IndirectVictimBehavior = iota // speculation proceeds as usual
	IndirectVictimFetchOnly                               // target is fetched but never enters decode
	IndirectVictimNone                                    // no observable speculation
)

// Window bounds how far a wrong-path control flow advances before a
// resteer takes effect, per pipeline stage.
type Window struct {
	// FetchLines is the number of 64-byte lines of wrong-path code the
	// fetch unit brings into the I-cache.
	FetchLines int
	// DecodeInsts is the number of wrong-path instructions that reach the
	// decoder (and hence the µop cache).
	DecodeInsts int
	// ExecUops is the number of wrong-path µops dispatched to the backend.
	// Memory loads among them leave D-cache footprints. Zero means the
	// wrong path is killed before dispatch.
	ExecUops int
}

// Profile is a full microarchitecture description.
type Profile struct {
	Name   string
	Vendor Vendor

	// Frontend geometry.
	FetchBlock  int // bytes fetched per cycle group (fetch-block size)
	DecodeWidth int

	// Cache configs.
	L1I, L1D, L2 cache.Config
	UopCache     cache.Config
	MemLatency   int

	// Predictors.
	NewScheme func() *btb.Scheme
	BTBWays   int
	RSBDepth  int
	PHTBits   int

	// Resteer penalties in cycles.
	DecodeResteerLatency int // frontend-issued resteer (Phantom window end)
	ExecResteerLatency   int // backend-issued resteer (Spectre window end)

	// PhantomWindow bounds decoder-detectable (frontend-resteered)
	// speculation; SpectreWindow bounds execute-resolved speculation.
	PhantomWindow Window
	SpectreWindow Window

	// IndirectVictim captures the per-part jmp*-victim anomaly.
	IndirectVictim IndirectVictimBehavior

	// StraightLineSpec enables speculation past unpredicted
	// execute-dependent branches (returns), the AMD behaviour reported as
	// Spectre-SLS (Table 1 footnote c).
	StraightLineSpec bool

	// Mitigation support.
	SupportsSuppressBPOnNonBr bool // MSR 0xC00110E3 bit (Zen 2+; not Zen 1, Section 8.1)
	SupportsAutoIBRS          bool // Zen 4
	SupportsEIBRS             bool // Intel 9th gen+

	// SuppressBPOnNonBrOverheadPct approximates the frontend cost of the
	// mitigation for the overhead experiment (paper: 0.69% single-core
	// UnixBench geomean on Zen 2).
	SuppressBPOnNonBrOverheadPct float64
}

// MSRState is the mutable mitigation configuration of one machine.
type MSRState struct {
	SuppressBPOnNonBr bool
	AutoIBRS          bool
	EIBRS             bool
	// IBPBOnKernelEntry issues an IBPB (full predictor flush in this
	// model) on every user-to-kernel transition — the heavyweight option
	// of Section 8.2.
	IBPBOnKernelEntry bool
	// WaitForDecode is the paper's hypothetical in-depth mitigation
	// (Section 8.1): "stop predictions until the decoding of the branch
	// source has finished, thereby preventing all branch type
	// confusions." No shipping part implements it; this simulator does,
	// so its cost and coverage can be measured. With the bit set,
	// decoder-detectable mispredictions produce no speculation at all
	// (the frontend validates the branch type before steering), at the
	// price of a steering bubble on every predicted branch.
	WaitForDecode bool
}

// WaitForDecodeBubble is the per-predicted-steer delay WaitForDecode
// imposes: the frontend cannot redirect until the source's decode
// completes.
const WaitForDecodeBubble = 3

func (p *Profile) String() string {
	return fmt.Sprintf("%s %s", p.Vendor, p.Name)
}

// common cache geometry shared by the modeled parts: 32 KiB 8-way L1s,
// 64-set 8-way µop cache ("we find that these caches always have 64 8-way
// sets, selected by the lower 12 bits of the instruction's virtual
// address", Section 5.1).
func caches(l2KiB, l1Lat, l2Lat int) (l1i, l1d, l2, uop cache.Config) {
	l1i = cache.Config{Name: "L1I", Sets: 64, Ways: 8, LineSize: 64, HitLatency: l1Lat, Repl: cache.LRU, Index: cache.PhysIndex}
	l1d = cache.Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, HitLatency: l1Lat, Repl: cache.LRU, Index: cache.PhysIndex}
	l2 = cache.Config{Name: "L2", Sets: l2KiB * 1024 / 64 / 8, Ways: 8, LineSize: 64, HitLatency: l2Lat, Repl: cache.LRU, Index: cache.PhysIndex}
	uop = cache.Config{Name: "uop", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 1, Repl: cache.LRU, Index: cache.VirtIndex}
	return
}

func zenBase(name string, scheme func() *btb.Scheme) *Profile {
	l1i, l1d, l2, uop := caches(512, 4, 14)
	return &Profile{
		Name:                 name,
		Vendor:               AMD,
		FetchBlock:           32,
		DecodeWidth:          4,
		L1I:                  l1i,
		L1D:                  l1d,
		L2:                   l2,
		UopCache:             uop,
		MemLatency:           160,
		NewScheme:            scheme,
		BTBWays:              2,
		RSBDepth:             32,
		PHTBits:              12,
		DecodeResteerLatency: 6,
		ExecResteerLatency:   18,
		SpectreWindow:        Window{FetchLines: 8, DecodeInsts: 64, ExecUops: 48},
		StraightLineSpec:     true,
	}
}

// Zen1 returns the AMD Zen (Ryzen 5 1600X in the paper) profile: full
// Phantom reach — transient fetch, decode, and a short execute window; no
// SuppressBPOnNonBr support.
func Zen1() *Profile {
	p := zenBase("Zen 1", func() *btb.Scheme { return btb.NewZen12Scheme("zen1") })
	p.PhantomWindow = Window{FetchLines: 2, DecodeInsts: 8, ExecUops: 8}
	return p
}

// Zen2 returns the AMD Zen 2 (EPYC 7252 in the paper) profile: full
// Phantom reach, SuppressBPOnNonBr supported (stops transient execution at
// non-branch victims but not IF/ID — Observation O4).
func Zen2() *Profile {
	p := zenBase("Zen 2", func() *btb.Scheme { return btb.NewZen12Scheme("zen2") })
	p.PhantomWindow = Window{FetchLines: 2, DecodeInsts: 8, ExecUops: 6}
	p.SupportsSuppressBPOnNonBr = true
	p.SuppressBPOnNonBrOverheadPct = 0.69
	return p
}

// Zen3 returns the AMD Zen 3 (Ryzen 5 5600G in the paper) profile:
// Phantom reaches fetch and decode only; cross-privilege BTB collisions
// require the Figure 7 XOR functions.
func Zen3() *Profile {
	p := zenBase("Zen 3", func() *btb.Scheme { return btb.NewZen34Scheme("zen3") })
	p.PhantomWindow = Window{FetchLines: 2, DecodeInsts: 8, ExecUops: 0}
	p.SupportsSuppressBPOnNonBr = true
	p.SuppressBPOnNonBrOverheadPct = 0.55
	return p
}

// Zen4 returns the AMD Zen 4 (Ryzen 7 7700X in the paper) profile: like
// Zen 3 plus AutoIBRS, which blocks cross-privilege prediction *use* but
// not the instruction-fetch prefetch of the predicted target
// (Observation O5).
func Zen4() *Profile {
	p := zenBase("Zen 4", func() *btb.Scheme { return btb.NewZen34Scheme("zen4") })
	p.PhantomWindow = Window{FetchLines: 2, DecodeInsts: 8, ExecUops: 0}
	p.SupportsSuppressBPOnNonBr = true
	p.SupportsAutoIBRS = true
	p.SuppressBPOnNonBrOverheadPct = 0.5
	return p
}

func intelBase(name string, ivb IndirectVictimBehavior) *Profile {
	l1i, l1d, l2, uop := caches(1024, 5, 16)
	return &Profile{
		Name:                 name,
		Vendor:               Intel,
		FetchBlock:           32,
		DecodeWidth:          5,
		L1I:                  l1i,
		L1D:                  l1d,
		L2:                   l2,
		UopCache:             uop,
		MemLatency:           170,
		NewScheme:            func() *btb.Scheme { return btb.NewIntelScheme(name) },
		BTBWays:              2,
		RSBDepth:             16,
		PHTBits:              12,
		DecodeResteerLatency: 6,
		ExecResteerLatency:   20,
		PhantomWindow:        Window{FetchLines: 2, DecodeInsts: 6, ExecUops: 0},
		SpectreWindow:        Window{FetchLines: 8, DecodeInsts: 64, ExecUops: 48},
		IndirectVictim:       ivb,
		SupportsEIBRS:        true,
	}
}

// Intel9 returns the Intel 9th generation profile (transient fetch and
// decode; no observable speculation at jmp* victims).
func Intel9() *Profile { return intelBase("Core 9th gen", IndirectVictimNone) }

// Intel11 returns the Intel 11th generation profile.
func Intel11() *Profile { return intelBase("Core 11th gen", IndirectVictimNone) }

// Intel12 returns the Intel 12th generation (P-core) profile: jmp* victims
// show transient fetch but not decode.
func Intel12() *Profile { return intelBase("Core 12th gen (P)", IndirectVictimFetchOnly) }

// Intel13 returns the Intel 13th generation (P-core) profile.
func Intel13() *Profile { return intelBase("Core 13th gen (P)", IndirectVictimFetchOnly) }

// All returns the eight evaluated profiles in the paper's presentation
// order.
func All() []*Profile {
	return []*Profile{
		Zen1(), Zen2(), Zen3(), Zen4(),
		Intel9(), Intel11(), Intel12(), Intel13(),
	}
}

// AMDZen returns the four AMD profiles, the parts the paper builds
// end-to-end exploits for.
func AMDZen() []*Profile {
	return []*Profile{Zen1(), Zen2(), Zen3(), Zen4()}
}

// ByName returns the profile with the given name (case-sensitive match on
// Profile.Name or the compact aliases zen1..zen4, intel9..intel13).
func ByName(name string) (*Profile, error) {
	aliases := map[string]func() *Profile{
		"zen1": Zen1, "zen2": Zen2, "zen3": Zen3, "zen4": Zen4,
		"intel9": Intel9, "intel11": Intel11, "intel12": Intel12, "intel13": Intel13,
	}
	if f, ok := aliases[name]; ok {
		return f(), nil
	}
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("uarch: unknown profile %q", name)
}
