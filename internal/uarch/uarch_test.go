package uarch

import "testing"

func TestAllProfilesWellFormed(t *testing.T) {
	for _, p := range All() {
		if p.Name == "" {
			t.Fatal("unnamed profile")
		}
		if p.NewScheme == nil || p.NewScheme() == nil {
			t.Fatalf("%s: no BTB scheme", p)
		}
		if p.FetchBlock <= 0 || p.DecodeWidth <= 0 || p.MemLatency <= 0 {
			t.Fatalf("%s: bad geometry", p)
		}
		// The paper's µop-cache finding: always 64 8-way sets, virtually
		// indexed by the low 12 address bits (Section 5.1).
		if p.UopCache.Sets != 64 || p.UopCache.Ways != 8 {
			t.Fatalf("%s: µop cache %dx%d, want 64x8", p, p.UopCache.Sets, p.UopCache.Ways)
		}
		// The Phantom window never exceeds the Spectre window.
		if p.PhantomWindow.ExecUops > p.SpectreWindow.ExecUops ||
			p.PhantomWindow.DecodeInsts > p.SpectreWindow.DecodeInsts {
			t.Fatalf("%s: Phantom window exceeds Spectre window", p)
		}
		if p.DecodeResteerLatency >= p.ExecResteerLatency {
			t.Fatalf("%s: frontend resteer not cheaper than backend", p)
		}
	}
}

func TestCapabilityMatrix(t *testing.T) {
	cases := []struct {
		p         *Profile
		execWin   bool // Phantom reaches execute
		suppress  bool
		autoIBRS  bool
		eIBRS     bool
		straight  bool
		vendorAMD bool
	}{
		{Zen1(), true, false, false, false, true, true},
		{Zen2(), true, true, false, false, true, true},
		{Zen3(), false, true, false, false, true, true},
		{Zen4(), false, true, true, false, true, true},
		{Intel9(), false, false, false, true, false, false},
		{Intel13(), false, false, false, true, false, false},
	}
	for _, c := range cases {
		if got := c.p.PhantomWindow.ExecUops > 0; got != c.execWin {
			t.Errorf("%s: exec window %v, want %v", c.p, got, c.execWin)
		}
		if c.p.SupportsSuppressBPOnNonBr != c.suppress {
			t.Errorf("%s: SuppressBPOnNonBr support %v", c.p, c.p.SupportsSuppressBPOnNonBr)
		}
		if c.p.SupportsAutoIBRS != c.autoIBRS {
			t.Errorf("%s: AutoIBRS support %v", c.p, c.p.SupportsAutoIBRS)
		}
		if c.p.SupportsEIBRS != c.eIBRS {
			t.Errorf("%s: eIBRS support %v", c.p, c.p.SupportsEIBRS)
		}
		if c.p.StraightLineSpec != c.straight {
			t.Errorf("%s: SLS %v", c.p, c.p.StraightLineSpec)
		}
		if (c.p.Vendor == AMD) != c.vendorAMD {
			t.Errorf("%s: vendor %v", c.p, c.p.Vendor)
		}
	}
}

func TestIntelPrivilegeTaggedBTB(t *testing.T) {
	for _, mk := range []func() *Profile{Intel9, Intel11, Intel12, Intel13} {
		p := mk()
		if !p.NewScheme().PrivilegeInTag {
			t.Errorf("%s: BTB not privilege-tagged", p)
		}
	}
	for _, mk := range []func() *Profile{Zen1, Zen2, Zen3, Zen4} {
		p := mk()
		if p.NewScheme().PrivilegeInTag {
			t.Errorf("%s: AMD BTB should not be privilege-tagged", p)
		}
	}
}

func TestIndirectVictimQuirks(t *testing.T) {
	if Intel9().IndirectVictim != IndirectVictimNone {
		t.Error("intel9 should show no jmp*-victim speculation")
	}
	if Intel12().IndirectVictim != IndirectVictimFetchOnly {
		t.Error("intel12 should fetch-only at jmp* victims")
	}
	if Zen2().IndirectVictim != IndirectVictimFull {
		t.Error("zen parts should have full jmp*-victim speculation")
	}
}

func TestByName(t *testing.T) {
	for _, alias := range []string{"zen1", "zen2", "zen3", "zen4", "intel9", "intel11", "intel12", "intel13"} {
		if _, err := ByName(alias); err != nil {
			t.Errorf("ByName(%q): %v", alias, err)
		}
	}
	if p, err := ByName("Zen 2"); err != nil || p.Name != "Zen 2" {
		t.Errorf("ByName by full name: %v, %v", p, err)
	}
	if _, err := ByName("386"); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestProfilesAreIndependent(t *testing.T) {
	a, b := Zen2(), Zen2()
	a.MemLatency = 1
	if b.MemLatency == 1 {
		t.Fatal("profile constructors share state")
	}
}
