// Package kernel builds the simulated operating system the exploits
// attack: a Linux-like kernel image placed at a KASLR-randomized base, a
// physmap (direct map of all physical memory, non-executable) at a
// randomized base, a syscall interface, and the code-gadget inventory the
// paper's exploits rely on — the getpid() nop site of Listing 1, the
// __fdget_pos() call site and disclosure gadget of Listings 2/3, an
// MDS-style gadget module per Listing 4, and a covert-channel module with
// hijackable direct branches (Section 6.4).
package kernel

import "fmt"

// Virtual layout constants (matching x86-64 Linux).
const (
	// KernelRegionBase is the start of the kernel text mapping region;
	// KASLR places the image at KernelRegionBase + slot*KernelSlotStride.
	KernelRegionBase = uint64(0xffffffff80000000)
	// KernelSlotStride is the KASLR alignment of the kernel image (2 MiB).
	KernelSlotStride = uint64(0x200000)
	// KernelSlots is the number of possible image locations; the paper
	// (citing TagBleed [38]) uses 488.
	KernelSlots = 488

	// PhysmapRegionBase is the start of the direct-map region.
	PhysmapRegionBase = uint64(0xffff888000000000)
	// PhysmapSlotStride is the randomization granularity of the direct
	// map base (1 GiB).
	PhysmapSlotStride = uint64(0x40000000)
	// PhysmapSlots is the number of possible physmap bases; the paper
	// (again citing [38]) uses 25600.
	PhysmapSlots = 25600
)

// Image geometry.
const (
	// ImageTextSize covers the assembled kernel text including the
	// paper's gadget offsets (the largest is __fdget_pos at 0x41db60).
	ImageTextSize = uint64(0x500000)
	// ImageDataSize is the r/w kernel data area mapped right after text.
	ImageDataSize = uint64(0x40000)
	// ImageSize is the whole mapped image footprint.
	ImageSize = ImageTextSize + ImageDataSize
)

// Gadget offsets within the kernel image, matching the paper where it
// names them.
const (
	// GetpidSiteOff is the Listing 1 site: the 5-byte nop at the top of
	// __task_pid_nr_ns(), "found at kernel image offset 0xf6520".
	GetpidSiteOff = uint64(0xf6520)
	// FdgetPosOff is the Listing 2 site, __fdget_pos(), "found at kernel
	// image offset 0x41db60".
	FdgetPosOff = uint64(0x41db60)
	// DisclosureGadgetOff is the Listing 3 physmap disclosure gadget
	// (mov r12, [r12+0xbe0]), "found at kernel image offset 0x41da52".
	DisclosureGadgetOff = uint64(0x41da52)
	// MDSModuleOff is where the Listing 4 read_data() module loads.
	MDSModuleOff = uint64(0x2a0000)
	// MDSDisclosureOff is the P3 disclosure gadget used by the MDS
	// exploit (shift the leaked byte into a reload-buffer offset and
	// load).
	MDSDisclosureOff = uint64(0x2a0800)
	// CovertModuleOff is the Section 6.4 covert-channel module with its
	// hijackable direct branch.
	CovertModuleOff = uint64(0x2b0000)
	// KModuleProbeOff is the Section 6.2 probe module (nops + ret) whose
	// address plays K in the BTB collision experiments.
	KModuleProbeOff = uint64(0x300000)
)

// Data-area offsets (from ImageBase + ImageTextSize).
const (
	dataPidOff       = uint64(0x0)    // the getpid return value
	dataArrayLenOff  = uint64(0x100)  // *array_length for Listing 4
	dataArrayOff     = uint64(0x1000) // array[] base for Listing 4
	dataKStackOff    = uint64(0x20000)
	dataKStackTopOff = uint64(0x24000) // 16 KiB kernel stack
	dataScratchOff   = uint64(0x30000)
)

// ArrayLen is the architectural bound of the Listing 4 array.
const ArrayLen = 256

// ArrayOff is the image-relative offset of the Listing 4 array — like the
// gadget offsets, public knowledge an attacker reads from the distribution
// kernel binary.
const ArrayOff = ImageTextSize + dataArrayOff

// Syscall numbers.
const (
	SysReadv  = 19 // triggers the Listing 2/3 path
	SysGetpid = 39 // triggers the Listing 1 path
	// Custom "kernel module" entry points, exposed as syscalls.
	SysMDSRead      = 500 // Listing 4: read_data(user_index, reload_kva)
	SysCovertBranch = 501 // Section 6.4 module: direct branches, arg in RSI
	SysNop          = 502 // minimal syscall for baselines
)

// SlotBase returns the image base of a KASLR slot.
func SlotBase(slot int) uint64 {
	return KernelRegionBase + uint64(slot)*KernelSlotStride
}

// PhysmapSlotBase returns the physmap base of a randomization slot.
func PhysmapSlotBase(slot int) uint64 {
	return PhysmapRegionBase + uint64(slot)*PhysmapSlotStride
}

// SlotOf inverts SlotBase; it returns an error for a base that is not a
// valid slot address.
func SlotOf(base uint64) (int, error) {
	if base < KernelRegionBase || (base-KernelRegionBase)%KernelSlotStride != 0 {
		return 0, fmt.Errorf("kernel: %#x is not a KASLR slot base", base)
	}
	slot := int((base - KernelRegionBase) / KernelSlotStride)
	if slot >= KernelSlots {
		return 0, fmt.Errorf("kernel: %#x beyond slot range", base)
	}
	return slot, nil
}
