package kernel

import (
	"fmt"

	"phantom/internal/isa"
	"phantom/internal/pipeline"
)

// Workload is one benchmark program of the UnixBench-style suite used to
// measure the SuppressBPOnNonBr overhead (Section 6.3: "We first measure
// the overhead of setting this bit using UnixBench ... and compute the
// geometric mean across all tests").
type Workload struct {
	Name  string
	Entry uint64
	// Limit bounds the run in interpreted instructions.
	Limit int
}

// Workload layout in user space.
const (
	workloadCodeBase = uint64(0x7f8000000000)
	workloadDataBase = uint64(0x7f9000000000)
	workloadStack    = uint64(0x7fa000000000)
)

// InstallWorkloads assembles and maps the benchmark programs. The mix
// mirrors UnixBench's profile: arithmetic-bound, memory-bound,
// branch-bound, function-call-bound and syscall-bound inner loops.
func (k *Kernel) InstallWorkloads() ([]Workload, error) {
	if err := k.MapUserData(workloadDataBase, 1<<16); err != nil {
		return nil, err
	}
	if err := k.MapUserData(workloadStack, 1<<14); err != nil {
		return nil, err
	}

	var workloads []Workload
	base := workloadCodeBase
	add := func(name string, limit int, build func(a *isa.Assembler)) error {
		a := isa.NewAssembler(base)
		build(a)
		blob, err := a.Bytes()
		if err != nil {
			return fmt.Errorf("kernel: workload %s: %w", name, err)
		}
		if err := k.MapUserCode(base, blob); err != nil {
			return err
		}
		workloads = append(workloads, Workload{Name: name, Entry: base, Limit: limit})
		base += (uint64(len(blob)) + 0xfff) &^ 0xfff
		base += 0x10000
		return nil
	}

	// Dhrystone-like: register arithmetic.
	if err := add("arith", 40000, func(a *isa.Assembler) {
		a.MovImm(isa.RCX, 2000)
		a.MovImm(isa.RAX, 1)
		a.Label("loop")
		a.AluImm(isa.AluAdd, isa.RAX, 12345)
		a.Xor(isa.RAX, isa.RCX)
		a.Shl(isa.RAX, 1)
		a.Shr(isa.RAX, 1)
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "loop")
		a.Hlt()
	}); err != nil {
		return nil, err
	}

	// File-copy-like: sequential loads and stores.
	if err := add("memcopy", 40000, func(a *isa.Assembler) {
		a.MovImm(isa.RSI, workloadDataBase)
		a.MovImm(isa.RDI, workloadDataBase+0x8000)
		a.MovImm(isa.RCX, 1500)
		a.Label("loop")
		a.Load(isa.RAX, isa.RSI, 0)
		a.Store(isa.RDI, 0, isa.RAX)
		a.AluImm(isa.AluAdd, isa.RSI, 8)
		a.AluImm(isa.AluAdd, isa.RDI, 8)
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "loop")
		a.Hlt()
	}); err != nil {
		return nil, err
	}

	// Shell-like: branch-dense alternation.
	if err := add("branchy", 60000, func(a *isa.Assembler) {
		a.MovImm(isa.RCX, 1200)
		a.Label("loop")
		a.MovReg(isa.RAX, isa.RCX)
		a.AluImm(isa.AluAnd, isa.RAX, 1)
		a.AluImm(isa.AluCmp, isa.RAX, 0)
		a.Jcc(isa.CondZ, "even")
		a.AluImm(isa.AluAdd, isa.RBX, 3)
		a.Jmp("join")
		a.Label("even")
		a.AluImm(isa.AluAdd, isa.RBX, 5)
		a.Label("join")
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "loop")
		a.Hlt()
	}); err != nil {
		return nil, err
	}

	// Function-call-bound (UnixBench "shell scripts" / recursion mix).
	if err := add("callret", 50000, func(a *isa.Assembler) {
		a.MovImm(isa.RSP, workloadStack+0x3000)
		a.MovImm(isa.RCX, 1000)
		a.Label("loop")
		a.Call("fn")
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "loop")
		a.Hlt()
		a.Label("fn")
		a.AluImm(isa.AluAdd, isa.RAX, 1)
		a.Ret()
	}); err != nil {
		return nil, err
	}

	// Syscall-bound (UnixBench syscall test).
	if err := add("syscall", 60000, func(a *isa.Assembler) {
		a.MovImm(isa.RCX, 150)
		a.Label("loop")
		a.MovImm(isa.RAX, SysNop)
		a.Syscall()
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "loop")
		a.Hlt()
	}); err != nil {
		return nil, err
	}

	// Large-footprint code (UnixBench binaries far exceed the 4K-µop
	// µop cache): 64 KiB of straight-line work stitched by taken
	// branches, swept three times. Lines continually miss the µop cache,
	// which is where SuppressBPOnNonBr's marker-wait costs show up.
	if err := add("bigcode", 300000, func(a *isa.Assembler) {
		a.MovImm(isa.RCX, 3)
		a.Label("outer")
		const groups = 256
		for g := 0; g < groups; g++ {
			a.Label(fmt.Sprintf("g%d", g))
			a.NopSled(245)
			if g < groups-1 {
				a.Jmp(fmt.Sprintf("g%d", g+1))
			}
		}
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "outer")
		a.Hlt()
	}); err != nil {
		return nil, err
	}

	// Pointer-chase: latency-bound loads.
	if err := add("ptrchase", 50000, func(a *isa.Assembler) {
		a.MovImm(isa.RSI, workloadDataBase+0x100)
		a.MovImm(isa.RCX, 800)
		a.Label("loop")
		a.Load(isa.RSI, isa.RSI, 0)
		a.AluImm(isa.AluOr, isa.RSI, 0) // keep dependency
		a.MovImm(isa.RSI, workloadDataBase+0x100)
		a.Load(isa.RAX, isa.RSI, 0x40)
		a.AluImm(isa.AluSub, isa.RCX, 1)
		a.AluImm(isa.AluCmp, isa.RCX, 0)
		a.Jcc(isa.CondNZ, "loop")
		a.Hlt()
	}); err != nil {
		return nil, err
	}
	return workloads, nil
}

// RunWorkload executes one workload to completion and returns the cycles
// it consumed.
func (k *Kernel) RunWorkload(w Workload) (uint64, error) {
	m := k.M
	start := m.Cycle
	res := m.RunAt(w.Entry, w.Limit)
	if res.Reason != pipeline.StopHalt {
		return 0, fmt.Errorf("kernel: workload %s: %v", w.Name, res)
	}
	return m.Cycle - start, nil
}
