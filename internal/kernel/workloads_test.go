package kernel

import (
	"testing"

	"phantom/internal/uarch"
)

func TestWorkloadsRunToCompletion(t *testing.T) {
	k, err := Boot(uarch.Zen2(), Config{Seed: 1, NoiseLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := k.InstallWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) < 6 {
		t.Fatalf("only %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		c, err := k.RunWorkload(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if c == 0 {
			t.Fatalf("%s: zero cycles", w.Name)
		}
	}
	for _, want := range []string{"arith", "memcopy", "branchy", "callret", "syscall", "bigcode"} {
		if !seen[want] {
			t.Errorf("workload %q missing", want)
		}
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	run := func() []uint64 {
		k, err := Boot(uarch.Zen2(), Config{Seed: 9, NoiseLevel: 0})
		if err != nil {
			t.Fatal(err)
		}
		ws, err := k.InstallWorkloads()
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for _, w := range ws {
			c, err := k.RunWorkload(w)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, c)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWorkloadWarmupSpeedsUp(t *testing.T) {
	k, err := Boot(uarch.Zen2(), Config{Seed: 2, NoiseLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := k.InstallWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Name != "memcopy" {
			continue
		}
		cold, err := k.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := k.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		if warm >= cold {
			t.Fatalf("caches did not warm: cold=%d warm=%d", cold, warm)
		}
	}
}
