package kernel

import (
	"fmt"
	"math/rand"

	"phantom/internal/isa"
	"phantom/internal/mem"
	"phantom/internal/pipeline"
	"phantom/internal/uarch"
)

// Config controls a simulated system boot.
type Config struct {
	// PhysBytes is the installed physical memory (default 8 GiB). The
	// paper's Table 5 machines have 8 GB (Zen 1) and 64 GB (Zen 2).
	PhysBytes uint64
	// Seed drives KASLR slot selection, noise, and allocation randomness.
	Seed int64
	// KPTI enables kernel page-table isolation costs (TLB flushes and a
	// CR3 switch on every transition). Phantom works with KPTI enabled —
	// unlike the prefetch attacks of [40]. It defaults off, matching the
	// paper's AMD targets (KPTI is a Meltdown mitigation and AMD parts
	// run without it).
	KPTI bool
	// NoiseLevel scales microarchitectural noise; 1 is calibrated
	// default, 0 makes runs deterministic (tests).
	NoiseLevel float64
	// DisablePredecode routes the machine's fetch+decode through the
	// byte-at-a-time reference path instead of the predecode cache. The
	// cache charges no cycles, so results must be identical either way;
	// the knob exists for parity tests and debugging.
	DisablePredecode bool
}

func (c Config) withDefaults() Config {
	if c.PhysBytes == 0 {
		c.PhysBytes = 8 << 30
	}
	return c
}

// Kernel is a booted simulated system: machine plus the kernel's
// randomized layout and ground-truth secrets, which experiment code uses
// only for verification (the attacks must rediscover them).
type Kernel struct {
	M *pipeline.Machine

	ImageBase   uint64
	ImageSlot   int
	PhysmapBase uint64
	PhysmapSlot int

	// Sym maps image symbols (entry, getpid_site, fdget_call_site,
	// disclosure_gadget, mds, mds_call_site, mds_disclosure, covert,
	// covert_branch_site, covert_exec_gadget, ...) to absolute VAs.
	Sym map[string]uint64

	// Secret is the 4096-byte random kernel secret the MDS exploit leaks
	// (ground truth for accuracy accounting); SecretVA is its kernel
	// address.
	Secret   []byte
	SecretVA uint64

	// Alloc hands out physical frames for user mappings.
	Alloc *mem.FrameAllocator

	cfg Config
	rng *rand.Rand
}

// Physical placement of the kernel image.
const imagePhysBase = uint64(0x2000000)

// Boot creates a machine with the given profile and installs the kernel:
// KASLR-randomized image, physmap direct map, syscall entry, and kernel
// data. Each Boot models one reboot — fresh randomization, cold caches and
// predictors.
func Boot(p *uarch.Profile, cfg Config) (*Kernel, error) {
	cfg = cfg.withDefaults()
	m := pipeline.New(p, cfg.PhysBytes, cfg.Seed)
	m.Noise.Level = cfg.NoiseLevel
	m.KPTI = cfg.KPTI
	m.DisablePredecode = cfg.DisablePredecode
	// The threat model (Section 3) assumes all state-of-the-art defenses:
	// parts supporting AutoIBRS / eIBRS boot with them enabled.
	m.MSR.AutoIBRS = p.SupportsAutoIBRS
	m.MSR.EIBRS = p.SupportsEIBRS
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))

	k := &Kernel{
		M:           m,
		ImageSlot:   rng.Intn(KernelSlots),
		PhysmapSlot: rng.Intn(PhysmapSlots),
		cfg:         cfg,
		rng:         rng,
	}
	k.ImageBase = SlotBase(k.ImageSlot)
	k.PhysmapBase = PhysmapSlotBase(k.PhysmapSlot)

	// Kernel text: supervisor, read+exec.
	asm := buildImage(k.ImageBase)
	blob, err := asm.Bytes()
	if err != nil {
		return nil, fmt.Errorf("kernel: assembling image: %w", err)
	}
	textLen := (uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if textLen > ImageTextSize {
		return nil, fmt.Errorf("kernel: image text %#x exceeds budget %#x", textLen, ImageTextSize)
	}
	if err := m.KernelAS.Map(k.ImageBase, imagePhysBase, ImageTextSize, mem.PermRead|mem.PermExec); err != nil {
		return nil, err
	}
	m.Phys.WriteBytes(imagePhysBase, blob)

	// Kernel data: supervisor, read+write, NX.
	dataVA := k.ImageBase + ImageTextSize
	dataPA := imagePhysBase + ImageTextSize
	if err := m.KernelAS.Map(dataVA, dataPA, ImageDataSize, mem.PermRead|mem.PermWrite); err != nil {
		return nil, err
	}

	// Physmap: the direct map of all physical memory — present, writable,
	// and non-executable, which is why breaking its KASLR needs P2's
	// transient load rather than P1's transient fetch (Section 7.2).
	if err := m.KernelAS.AddLinearRange(k.PhysmapBase, 0, cfg.PhysBytes, mem.PermRead|mem.PermWrite, true); err != nil {
		return nil, err
	}

	m.SyscallEntry = k.ImageBase // "entry" is at offset 0

	// Symbols.
	k.Sym = make(map[string]uint64)
	for _, s := range asm.Symbols() {
		k.Sym[s.Name] = s.Addr
	}

	// Kernel data init.
	m.Phys.Write64(dataPA+dataPidOff, 1234)
	m.Phys.Write64(dataPA+dataArrayLenOff, ArrayLen)
	for i := 0; i < ArrayLen; i++ {
		m.Phys.Write8(dataPA+dataArrayOff+uint64(i), byte(i))
	}

	// The secret the MDS exploit leaks: 4096 random bytes in kernel data.
	k.Secret = make([]byte, 4096)
	rng.Read(k.Secret)
	k.SecretVA = dataVA + dataScratchOff
	m.Phys.WriteBytes(dataPA+dataScratchOff, k.Secret)

	// Physical allocator for user memory, above the kernel image, with
	// some fragmentation reserved to randomize hugepage placement.
	k.Alloc = mem.NewFrameAllocator(m.Phys, imagePhysBase+ImageSize, rng)
	k.Alloc.Reserve(0, imagePhysBase+ImageSize)
	frag := rng.Intn(100) // paper §7.4: 0-99 hugepages of re-randomization
	for i := 0; i < frag; i++ {
		if _, err := k.Alloc.AllocRandomHuge(); err != nil {
			break
		}
	}

	return k, nil
}

// Symbol returns the absolute address of an image symbol, panicking on
// unknown names (programming error).
func (k *Kernel) Symbol(name string) uint64 {
	v, ok := k.Sym[name]
	if !ok {
		panic(fmt.Sprintf("kernel: unknown symbol %q", name))
	}
	return v
}

// SymbolOffset returns a symbol's offset from the image base.
func (k *Kernel) SymbolOffset(name string) uint64 {
	return k.Symbol(name) - k.ImageBase
}

// ArrayBase returns the kernel VA of the Listing 4 array, which the MDS
// exploit indexes out of bounds.
func (k *Kernel) ArrayBase() uint64 {
	return k.ImageBase + ImageTextSize + dataArrayOff
}

// MapUserCode maps user-executable pages at va and writes blob.
func (k *Kernel) MapUserCode(va uint64, blob []byte) error {
	return k.mapUser(va, blob, mem.PermRead|mem.PermExec|mem.PermUser)
}

// MapUserData maps user-writable pages covering [va, va+size).
func (k *Kernel) MapUserData(va, size uint64) error {
	base := va &^ (mem.PageSize - 1)
	end := (va + size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	pa := k.Alloc.AllocSeq(end - base)
	return k.M.UserAS.Map(base, pa, end-base, mem.PermRead|mem.PermWrite|mem.PermUser)
}

func (k *Kernel) mapUser(va uint64, blob []byte, perm mem.Perm) error {
	base := va &^ (mem.PageSize - 1)
	end := (va + uint64(len(blob)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	pa := k.Alloc.AllocSeq(end - base)
	if err := k.M.UserAS.Map(base, pa, end-base, perm); err != nil {
		return err
	}
	return k.M.UserAS.WriteBytes(va, blob)
}

// AllocUserHuge maps one 2 MiB transparent huge page at va, placed at a
// randomized physical address the attacker does not know, and returns that
// physical address as ground truth for verification (Table 5's experiment
// rediscovers it through physmap).
func (k *Kernel) AllocUserHuge(va uint64) (uint64, error) {
	if va%mem.HugePageSize != 0 {
		return 0, fmt.Errorf("kernel: AllocUserHuge at unaligned %#x", va)
	}
	pa, err := k.Alloc.AllocRandomHuge()
	if err != nil {
		return 0, err
	}
	if err := k.M.UserAS.MapHuge(va, pa, mem.HugePageSize, mem.PermRead|mem.PermWrite|mem.PermUser); err != nil {
		return 0, err
	}
	return pa, nil
}

// PhysmapVA returns the kernel direct-map address of a physical address.
func (k *Kernel) PhysmapVA(pa uint64) uint64 { return k.PhysmapBase + pa }

// Syscall runs a system call from user mode with the given arguments,
// starting and ending at a small user trampoline. It returns the RAX
// value after return.
func (k *Kernel) Syscall(nr uint64, args ...uint64) (uint64, error) {
	m := k.M
	if k.Sym["__user_syscall_stub"] == 0 {
		if err := k.installSyscallStub(); err != nil {
			return 0, err
		}
	}
	argRegs := []int{isa.RDI, isa.RSI, isa.RDX}
	if len(args) > len(argRegs) {
		return 0, fmt.Errorf("kernel: too many syscall args")
	}
	m.Regs[isa.RAX] = nr
	for i, a := range args {
		m.Regs[argRegs[i]] = a
	}
	res := m.RunAt(k.Sym["__user_syscall_stub"], 4000)
	if res.Reason != pipeline.StopHalt {
		return 0, fmt.Errorf("kernel: syscall %d did not complete: %v", nr, res)
	}
	return m.Regs[isa.RAX], nil
}

// userStubVA is where the syscall trampoline lives in user space.
const userStubVA = uint64(0x00007f0000000000)

func (k *Kernel) installSyscallStub() error {
	a := isa.NewAssembler(userStubVA)
	a.Syscall()
	a.Hlt()
	blob, err := a.Bytes()
	if err != nil {
		return err
	}
	if err := k.MapUserCode(userStubVA, blob); err != nil {
		return err
	}
	k.Sym["__user_syscall_stub"] = userStubVA
	return nil
}
