package kernel

import "phantom/internal/isa"

// buildImage assembles the kernel text at the given base. The returned
// assembler carries the symbol table; callers read labels like
// "getpid_site" and "fdget_call_site" from it.
//
// The image reproduces, at the paper's published offsets, the exact gadget
// shapes of Listings 1-4:
//
//	Listing 1 (offset 0xf6520):  nop DWORD PTR [rax+rax*1+0x0]
//	                             push rbp
//	                             mov rbp, rsp
//	Listing 2 (offset 0x41db60): nop DWORD PTR [rax+rax*1+0x0]
//	                             push rbp
//	                             mov esi, 0x4000
//	                             mov rbp, rsp
//	                             sub rsp, 0x8
//	                             call <helper>
//	Listing 3 (offset 0x41da52): mov r12, QWORD PTR [r12+0xbe0]
//	Listing 4 (module):          bounds check + single out-of-bounds load
//	                             + call parse_data
func buildImage(base uint64) *isa.Assembler {
	a := isa.NewAssembler(base)
	dataBase := base + ImageTextSize

	// --- Syscall entry / dispatcher -----------------------------------
	a.Label("entry")
	a.MovReg(isa.R15, isa.RSP) // save user stack
	a.MovImm(isa.RSP, dataBase+dataKStackTopOff)
	a.AluImm(isa.AluCmp, isa.RAX, SysReadv)
	a.Jcc(isa.CondZ, "readv")
	a.AluImm(isa.AluCmp, isa.RAX, SysGetpid)
	a.Jcc(isa.CondZ, "getpid_site")
	a.AluImm(isa.AluCmp, isa.RAX, SysMDSRead)
	a.Jcc(isa.CondZ, "mds")
	a.AluImm(isa.AluCmp, isa.RAX, SysCovertBranch)
	a.Jcc(isa.CondZ, "covert")
	// SysNop and unknown numbers fall straight through to the exit.
	a.Label("exit")
	a.MovReg(isa.RSP, isa.R15) // restore user stack
	a.Syscall()                // kernel-mode syscall = sysret

	// --- getpid: __task_pid_nr_ns() entry, Listing 1 ------------------
	a.Org(base + GetpidSiteOff)
	a.Label("getpid_site")
	a.Nop(5) // <- the victim instruction the paper injects at
	a.Push(isa.RBP)
	a.MovReg(isa.RBP, isa.RSP)
	a.MovImm(isa.R10, dataBase+dataPidOff)
	a.Load(isa.RAX, isa.R10, 0)
	a.Pop(isa.RBP)
	a.Label("getpid_exit_jmp") // second injection point for §7.3 amplification
	a.Jmp("exit")

	// --- readv: controls R12 from RSI, then calls __fdget_pos ---------
	a.Org(base + 0x180000)
	a.Label("readv")
	a.MovReg(isa.R12, isa.RSI) // paper: "we control the value of R12
	a.Call("fdget_pos")        //  using the second argument (RSI)"
	a.Jmp("exit")

	// --- Listing 4: the MDS-gadget kernel module ------------------------
	// read_data(user_index=RDI, reload_kva=RSI). The architectural bound
	// is ArrayLen; a mispredicted-taken bounds check performs a single
	// attacker-indexed load — an MDS gadget, not a classic Spectre gadget,
	// because no second (data-dependent) load follows architecturally.
	a.Org(base + MDSModuleOff)
	a.Label("mds")
	a.MovReg(isa.R14, isa.RSI) // reload buffer kernel VA
	a.MovImm(isa.R10, dataBase+dataArrayLenOff)
	a.Load(isa.RAX, isa.R10, 0) // rax = *array_length
	a.CmpReg(isa.RDI, isa.RAX)  // CF = user_index < length
	a.Jcc(isa.CondAE, "mds_out")
	a.MovImm(isa.R10, dataBase+dataArrayOff)
	a.AddReg(isa.R10, isa.RDI)
	a.Load(isa.R9, isa.R10, 0) // data = array[user_index]
	a.Label("mds_call_site")   // <- victim call (paper trains jmp* here)
	a.Call("parse_data")
	a.Label("mds_out")
	a.Jmp("exit")
	a.Label("parse_data")
	a.Ret()

	// --- P3 disclosure gadget for the MDS exploit ----------------------
	// Leaks the byte in R9: "G filters out a single byte from the
	// register and arranges it to reside in bits [13:6] (i.e., cache-line
	// aligned), which it uses as offset into a mapped area"
	// (Section 6.1, P3).
	a.Org(base + MDSDisclosureOff)
	a.Label("mds_disclosure")
	a.AluImm(isa.AluAnd, isa.R9, 0xff)
	a.Shl(isa.R9, 6)
	a.AddReg(isa.R9, isa.R14)
	a.Load(isa.R8, isa.R9, 0)
	a.Ret()

	// --- Section 6.4 covert-channel module -----------------------------
	// "A kernel module that performs a number of direct branches. We aim
	// to hijack one of these by injecting a prediction from user mode."
	// RSI is copied to R13 so the execute variant's gadget can load an
	// attacker-chosen address.
	a.Org(base + CovertModuleOff)
	a.Label("covert")
	a.MovReg(isa.R13, isa.RSI)
	a.NopSled(16)
	a.Label("covert_branch_site") // <- the hijacked direct branch
	a.Jmp("covert_next")
	a.Label("covert_next")
	a.NopSled(8)
	a.Jmp("exit")

	// Executable kernel gadget for the execute covert channel: "an
	// additional address T is mapped executable in kernel mode,
	// containing a memory load of the address in register R".
	a.Org(base + CovertModuleOff + 0x8000)
	a.Label("covert_exec_gadget")
	a.Load(isa.RAX, isa.R13, 0)
	a.Ret()

	// --- Probe module for BTB collision discovery -----------------------
	// Section 6.2: "allocating a kernel address K, using a kernel module
	// which contains nops followed by a return instruction."
	a.Org(base + KModuleProbeOff)
	a.Label("kmodule_probe")
	a.NopSled(16)
	a.Ret()

	// --- Listing 3: the physmap disclosure gadget ----------------------
	a.Org(base + DisclosureGadgetOff)
	a.Label("disclosure_gadget")
	a.Load(isa.R12, isa.R12, 0xbe0)
	a.Ret()

	// --- Listing 2: __fdget_pos() --------------------------------------
	a.Org(base + FdgetPosOff)
	a.Label("fdget_pos")
	a.Nop(5)
	a.Push(isa.RBP)
	a.MovImm(isa.RSI, 0x4000)
	a.MovReg(isa.RBP, isa.RSP)
	a.AluImm(isa.AluSub, isa.RSP, 8)
	a.Label("fdget_call_site") // <- the victim call the paper confuses
	a.Call("fdget_helper")
	a.AluImm(isa.AluAdd, isa.RSP, 8)
	a.Pop(isa.RBP)
	a.Ret()
	a.Label("fdget_helper")
	a.Ret()

	return a
}
