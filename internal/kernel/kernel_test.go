package kernel

import (
	"testing"

	"phantom/internal/mem"
	"phantom/internal/uarch"
)

func bootTest(t *testing.T, seed int64) *Kernel {
	t.Helper()
	k, err := Boot(uarch.Zen2(), Config{Seed: seed, NoiseLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootPlacesImageInSlot(t *testing.T) {
	k := bootTest(t, 1)
	if k.ImageBase != SlotBase(k.ImageSlot) {
		t.Fatalf("image base %#x not at slot %d", k.ImageBase, k.ImageSlot)
	}
	if k.ImageSlot < 0 || k.ImageSlot >= KernelSlots {
		t.Fatalf("slot %d out of range", k.ImageSlot)
	}
	// Rebooting with a different seed moves the kernel (with very high
	// probability across a few seeds).
	moved := false
	for s := int64(2); s < 6; s++ {
		if bootTest(t, s).ImageSlot != k.ImageSlot {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("KASLR produced identical slots for five seeds")
	}
}

func TestPublishedGadgetOffsets(t *testing.T) {
	k := bootTest(t, 1)
	if off := k.SymbolOffset("getpid_site"); off != GetpidSiteOff {
		t.Errorf("getpid_site at %#x, want %#x", off, GetpidSiteOff)
	}
	if off := k.SymbolOffset("fdget_pos"); off != FdgetPosOff {
		t.Errorf("fdget_pos at %#x, want %#x", off, FdgetPosOff)
	}
	if off := k.SymbolOffset("disclosure_gadget"); off != DisclosureGadgetOff {
		t.Errorf("disclosure_gadget at %#x, want %#x", off, DisclosureGadgetOff)
	}
}

func TestGetpidSyscall(t *testing.T) {
	k := bootTest(t, 1)
	pid, err := k.Syscall(SysGetpid)
	if err != nil {
		t.Fatal(err)
	}
	if pid != 1234 {
		t.Fatalf("getpid = %d", pid)
	}
	// Repeat to confirm sysret restored state correctly.
	pid, err = k.Syscall(SysGetpid)
	if err != nil || pid != 1234 {
		t.Fatalf("second getpid = %d, %v", pid, err)
	}
}

func TestReadvSyscallCompletes(t *testing.T) {
	k := bootTest(t, 2)
	// RSI flows into R12 and the call path; must complete regardless of
	// the (garbage) pointer since the disclosure load happens only
	// transiently.
	if _, err := k.Syscall(SysReadv, 0, 0xdead000); err != nil {
		t.Fatal(err)
	}
}

func TestMDSSyscallInBounds(t *testing.T) {
	k := bootTest(t, 3)
	if _, err := k.Syscall(SysMDSRead, 5, 0); err != nil {
		t.Fatal(err)
	}
	// Out-of-bounds index is architecturally rejected (no fault).
	if _, err := k.Syscall(SysMDSRead, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCovertSyscallCompletes(t *testing.T) {
	k := bootTest(t, 4)
	if _, err := k.Syscall(SysCovertBranch, 0, 0x1234000); err != nil {
		t.Fatal(err)
	}
}

func TestNopSyscall(t *testing.T) {
	k := bootTest(t, 5)
	if _, err := k.Syscall(SysNop); err != nil {
		t.Fatal(err)
	}
}

func TestPhysmapMapsAllPhysicalMemory(t *testing.T) {
	k := bootTest(t, 1)
	m := k.M
	// Any physical address below PhysBytes is readable through physmap in
	// kernel mode, non-executable, and inaccessible from user mode.
	pa := uint64(0x1234000)
	va := k.PhysmapVA(pa)
	got, f := m.KernelAS.Translate(va, mem.AccessRead, false)
	if f != nil || got != pa {
		t.Fatalf("physmap translate: %#x, %v", got, f)
	}
	if _, f := m.KernelAS.Translate(va, mem.AccessFetch, false); f == nil {
		t.Fatal("physmap is executable")
	}
	if _, f := m.KernelAS.Translate(va, mem.AccessRead, true); f == nil {
		t.Fatal("physmap accessible from user mode")
	}
	// Beyond installed memory: unmapped.
	if _, f := m.KernelAS.Translate(k.PhysmapVA(k.M.Phys.Size()), mem.AccessRead, false); f == nil {
		t.Fatal("physmap extends past physical memory")
	}
}

func TestKernelTextProtection(t *testing.T) {
	k := bootTest(t, 1)
	// Kernel text not user-accessible.
	if _, f := k.M.KernelAS.Translate(k.Symbol("getpid_site"), mem.AccessFetch, true); f == nil {
		t.Fatal("kernel text fetchable from user mode")
	}
	// But fetchable in kernel mode.
	if _, f := k.M.KernelAS.Translate(k.Symbol("getpid_site"), mem.AccessFetch, false); f != nil {
		t.Fatalf("kernel text not fetchable in kernel mode: %v", f)
	}
}

func TestSlotMath(t *testing.T) {
	for _, slot := range []int{0, 1, 487} {
		base := SlotBase(slot)
		got, err := SlotOf(base)
		if err != nil || got != slot {
			t.Fatalf("SlotOf(SlotBase(%d)) = %d, %v", slot, got, err)
		}
	}
	if _, err := SlotOf(KernelRegionBase + 17); err == nil {
		t.Fatal("unaligned base accepted")
	}
	if _, err := SlotOf(SlotBase(KernelSlots)); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestAllocUserHugeIsRandomized(t *testing.T) {
	pas := make(map[uint64]bool)
	for s := int64(0); s < 6; s++ {
		k := bootTest(t, s)
		pa, err := k.AllocUserHuge(0x200000000)
		if err != nil {
			t.Fatal(err)
		}
		if pa%mem.HugePageSize != 0 {
			t.Fatalf("unaligned huge pa %#x", pa)
		}
		pas[pa] = true
	}
	if len(pas) < 3 {
		t.Fatalf("huge page placement barely randomized: %d distinct over 6 boots", len(pas))
	}
}

func TestSecretReadableViaKernel(t *testing.T) {
	k := bootTest(t, 1)
	b, err := k.M.KernelAS.Read8(k.SecretVA)
	if err != nil {
		t.Fatal(err)
	}
	if b != k.Secret[0] {
		t.Fatalf("secret mismatch: %#x vs %#x", b, k.Secret[0])
	}
}

func TestUserCannotTouchSecret(t *testing.T) {
	k := bootTest(t, 1)
	if _, f := k.M.KernelAS.Translate(k.SecretVA, mem.AccessRead, true); f == nil {
		t.Fatal("user mode can read the kernel secret")
	}
}
