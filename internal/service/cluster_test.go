package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"phantom/internal/cluster"
	"phantom/internal/store"
)

// clusterNode is one in-process phantom-server node: the service
// engine, its HTTP front end on a real loopback listener, and the stub
// evaluation engine (nil when the node runs the real simulator).
type clusterNode struct {
	id   string
	addr string
	srv  *Server
	hs   *http.Server
	stub *stubExec
}

func (n *clusterNode) url() string { return "http://" + n.addr }

// newCluster boots n in-process nodes sharing one static peer list.
// Listeners are bound first so every node's ring is built from the
// full, final address set — the same order of operations as n separate
// phantom-server processes handed the same -peers flag. realExec nodes
// render with the actual simulator; otherwise each node gets its own
// stubExec so tests can see which node computed what.
func newCluster(t testing.TB, n int, realExec bool, mutate func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		listeners[i] = ln
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i+1), Addr: ln.Addr().String()}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		rtr, err := cluster.NewRouter(cluster.Config{
			Self:  peers[i].ID,
			Peers: peers,
			// One failure marks a peer down and probes are effectively
			// off, so dead-peer tests are deterministic.
			FailureThreshold: 1,
			RetryEvery:       1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Workers: 2, QueueDepth: 16, Router: rtr}
		if mutate != nil {
			mutate(i, &cfg)
		}
		node := &clusterNode{id: peers[i].ID, addr: peers[i].Addr, srv: NewServer(cfg)}
		if !realExec {
			node.stub = &stubExec{}
			node.srv.exec = node.stub.fn
		}
		node.hs = &http.Server{Handler: node.srv.Handler()}
		go node.hs.Serve(listeners[i]) //nolint:errcheck // closed on cleanup
		t.Cleanup(func() { node.hs.Close() })
		nodes[i] = node
	}
	return nodes
}

// seedOwnedBy scans seeds until the kaslr request for that seed hashes
// to the wanted owner. Ownership is a pure function of (peer IDs, key),
// so the result is stable across processes and runs.
func seedOwnedBy(t testing.TB, r *cluster.Router, want string, avoid map[int64]bool) int64 {
	t.Helper()
	for seed := int64(1); seed < 1<<16; seed++ {
		if avoid[seed] {
			continue
		}
		norm, err := Request{Experiment: "kaslr", Seed: seed}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if p, _ := r.Owner(norm.Key()); p.ID == want {
			avoid[seed] = true
			return seed
		}
	}
	t.Fatalf("no seed found whose key is owned by %s", want)
	return 0
}

// TestClusterProxyToOwner pins the shard-routing contract: a request
// POSTed to a non-owner is computed by its owner exactly once, the
// reply is marked Proxied, and repeats keep hitting the owner's cache
// — the receiving node's cache and simulator stay cold.
func TestClusterProxyToOwner(t *testing.T) {
	nodes := newCluster(t, 3, false, nil)
	seed := seedOwnedBy(t, nodes[0].srv.rtr, "n3", map[int64]bool{})
	body := fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seed)

	resp, data := postJSON(t, nodes[0].url(), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Proxied {
		t.Error("result from non-owner not marked proxied")
	}
	if res.Cached || res.Output == "" {
		t.Errorf("first proxied result: cached=%v output=%q", res.Cached, res.Output)
	}
	if got := nodes[2].stub.started.Load(); got != 1 {
		t.Errorf("owner n3 ran %d evaluations, want 1", got)
	}
	if got := nodes[0].stub.started.Load(); got != 0 {
		t.Errorf("non-owner n1 ran %d evaluations, want 0", got)
	}
	if got := nodes[0].srv.Stats().Proxied.Load(); got != 1 {
		t.Errorf("n1 Proxied = %d, want 1", got)
	}

	// Second POST of the same request to the same non-owner: still
	// proxied (proxied results are not cached locally — each node's
	// memory holds only its own shard), answered from the owner's cache.
	resp, data = postJSON(t, nodes[0].url(), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp.StatusCode)
	}
	var res2 Result
	if err := json.Unmarshal(data, &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.Proxied || !res2.Cached {
		t.Errorf("repeat: proxied=%v cached=%v, want both", res2.Proxied, res2.Cached)
	}
	if res2.Output != res.Output || res2.ID != res.ID {
		t.Error("repeat diverged from first answer")
	}
	if got := nodes[2].stub.started.Load(); got != 1 {
		t.Errorf("owner re-simulated: %d evaluations", got)
	}
	if got := nodes[0].srv.Stats().CacheHits.Load(); got != 0 {
		t.Errorf("non-owner cached a proxied result: %d hits", got)
	}
}

// TestClusterLoopGuard: a request carrying the forwarded header is
// answered locally even by a non-owner, so a proxy hop can never chain
// into a second hop or a cycle.
func TestClusterLoopGuard(t *testing.T) {
	nodes := newCluster(t, 3, false, nil)
	seed := seedOwnedBy(t, nodes[0].srv.rtr, "n3", map[int64]bool{})
	body := fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seed)

	req, err := http.NewRequest(http.MethodPost, nodes[0].url()+"/v1/experiments", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "n9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.Proxied {
		t.Error("forwarded request was proxied again")
	}
	if got := nodes[0].stub.started.Load(); got != 1 {
		t.Errorf("forwarded request ran %d local evaluations on the receiver, want 1", got)
	}
	if got := nodes[2].stub.started.Load(); got != 0 {
		t.Errorf("true owner n3 ran %d evaluations, want 0", got)
	}
}

// TestClusterFanout: a separable multi-arch request decomposes into
// per-arch sub-requests, each computed by the node owning its key, and
// each node runs exactly its share — asserted against independently
// computed ownership, not just totals.
func TestClusterFanout(t *testing.T) {
	nodes := newCluster(t, 3, false, nil)
	norm, err := Request{Experiment: "mitigations"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	// Expected per-node evaluation counts and assembled output, from
	// the ring alone.
	wantRuns := map[string]int64{}
	var wantOut bytes.Buffer
	for _, arch := range norm.Archs {
		sub := norm
		sub.Archs = []string{arch}
		owner, _ := nodes[0].srv.rtr.Owner(sub.Key())
		wantRuns[owner.ID]++
		fmt.Fprintf(&wantOut, "%s output archs=%v seed=%d\n", sub.Experiment, sub.Archs, sub.Seed)
	}

	resp, data := postJSON(t, nodes[0].url(), `{"experiment":"mitigations"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Fanout != len(norm.Archs) {
		t.Errorf("Fanout = %d, want %d", res.Fanout, len(norm.Archs))
	}
	if res.Output != wantOut.String() {
		t.Errorf("assembled output:\n%q\nwant per-arch concatenation:\n%q", res.Output, wantOut.String())
	}
	for i, node := range nodes {
		if got := node.stub.started.Load(); got != wantRuns[node.id] {
			t.Errorf("node %s ran %d evaluations, ring says %d", nodes[i].id, got, wantRuns[node.id])
		}
	}
	if got := nodes[0].srv.Stats().FanoutJobs.Load(); got != uint64(len(norm.Archs)) {
		t.Errorf("FanoutJobs = %d, want %d", got, len(norm.Archs))
	}
}

// TestClusterFanoutParity: with the real simulator, the assembled
// fan-out answer is byte-identical to rendering the whole request in
// one process — the property that makes distribution invisible to
// clients.
func TestClusterFanoutParity(t *testing.T) {
	nodes := newCluster(t, 3, true, nil)
	norm, err := Request{Experiment: "mitigations"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := Execute(context.Background(), &want, norm, 1); err != nil {
		t.Fatal(err)
	}

	resp, data := postJSON(t, nodes[0].url(), `{"experiment":"mitigations"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Output != want.String() {
		t.Errorf("fan-out output diverged from single-process render:\ngot  %q\nwant %q", res.Output, want.String())
	}
	if res.Fanout != len(norm.Archs) {
		t.Errorf("Fanout = %d, want %d", res.Fanout, len(norm.Archs))
	}
}

// TestClusterDeadPeerDegradesLocally: a request owned by a dead peer
// is computed locally and still answers 200 — degradation costs
// duplicate simulation, never a client error. After the failure marks
// the peer down, later requests skip the connection attempt entirely.
func TestClusterDeadPeerDegradesLocally(t *testing.T) {
	nodes := newCluster(t, 3, false, nil)
	// Kill n3 the way a crash would: stop accepting.
	nodes[2].hs.Close()

	avoid := map[int64]bool{}
	seed := seedOwnedBy(t, nodes[0].srv.rtr, "n3", avoid)
	resp, data := postJSON(t, nodes[0].url(), fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seed))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dead-owner request: status %d: %s", resp.StatusCode, data)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Proxied || res.Output == "" {
		t.Errorf("degraded result: proxied=%v output=%q", res.Proxied, res.Output)
	}
	st := nodes[0].srv.Stats()
	if st.ProxyFailures.Load() != 1 || st.DegradedLocal.Load() != 1 {
		t.Errorf("ProxyFailures=%d DegradedLocal=%d, want 1/1", st.ProxyFailures.Load(), st.DegradedLocal.Load())
	}
	if got := nodes[0].stub.started.Load(); got != 1 {
		t.Errorf("receiver ran %d evaluations, want 1", got)
	}

	// FailureThreshold=1: n3 is now down, so the next n3-owned request
	// computes locally without even dialing (no new ProxyFailures).
	seed2 := seedOwnedBy(t, nodes[0].srv.rtr, "n3", avoid)
	resp, _ = postJSON(t, nodes[0].url(), fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seed2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second dead-owner request: status %d", resp.StatusCode)
	}
	if st.ProxyFailures.Load() != 1 {
		t.Errorf("down peer was dialed again: ProxyFailures=%d", st.ProxyFailures.Load())
	}
	if st.DegradedLocal.Load() != 2 {
		t.Errorf("DegradedLocal=%d, want 2", st.DegradedLocal.Load())
	}
}

// TestClusterReadyzReportsPeers: /readyz carries the node identity and
// per-peer health so operators (and the smoke harness) can see the
// cluster view of each node.
func TestClusterReadyzReportsPeers(t *testing.T) {
	nodes := newCluster(t, 3, false, nil)
	resp, err := http.Get(nodes[1].url() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string               `json:"status"`
		Node   string               `json:"node"`
		Peers  []cluster.PeerHealth `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" || body.Node != "n2" {
		t.Errorf("readyz = %+v", body)
	}
	if len(body.Peers) != 3 {
		t.Fatalf("readyz listed %d peers, want 3", len(body.Peers))
	}
	for _, p := range body.Peers {
		if !p.Healthy {
			t.Errorf("fresh peer %s reported unhealthy", p.ID)
		}
		if p.Self != (p.ID == "n2") {
			t.Errorf("peer %s self flag = %v", p.ID, p.Self)
		}
	}
}

// TestStoreReadBeforeCompute is the restart-persistence contract at
// the service layer: results written through to the store survive a
// full server teardown, and a fresh server with a cold cache answers
// from the store without a simulation, byte-identically.
func TestStoreReadBeforeCompute(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stub1 := &stubExec{}
	s1 := newTestServer(Config{Workers: 2, Store: st1}, stub1)
	res1, aerr := s1.do(context.Background(), Request{Experiment: "kaslr", Seed: 42})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if got := s1.Stats().StoreFills.Load(); got != 1 {
		t.Errorf("StoreFills = %d, want 1", got)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": new store handle on the same dir, new server, cold
	// cache, a stub that fails the test if it ever runs.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stub2 := &stubExec{}
	s2 := newTestServer(Config{Workers: 2, Store: st2}, stub2)
	res2, aerr := s2.do(context.Background(), Request{Experiment: "kaslr", Seed: 42})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if stub2.started.Load() != 0 {
		t.Errorf("restarted server re-simulated a stored result")
	}
	if got := s2.Stats().StoreHits.Load(); got != 1 {
		t.Errorf("StoreHits = %d, want 1", got)
	}
	if !res2.Cached {
		t.Error("store-served result not marked cached")
	}
	if res2.Output != res1.Output || res2.ID != res1.ID {
		t.Errorf("store round-trip diverged: %q vs %q", res2.Output, res1.Output)
	}
	if s2.Stats().Simulations.Load() != 0 {
		t.Error("restarted server counted a simulation")
	}

	// The store hit promoted the result into the memory cache: a repeat
	// is a cache hit, not a second disk read.
	if _, aerr := s2.do(context.Background(), Request{Experiment: "kaslr", Seed: 42}); aerr != nil {
		t.Fatal(aerr)
	}
	if got := s2.Stats().CacheHits.Load(); got != 1 {
		t.Errorf("repeat after store hit: CacheHits = %d, want 1", got)
	}
	if got := s2.Stats().StoreHits.Load(); got != 1 {
		t.Errorf("repeat read the store again: StoreHits = %d", got)
	}
}

// TestStoreCorruptValueIsAMiss: a stored record that passes its CRC
// but does not decode as a Result (schema drift) falls back to
// recomputation instead of failing the request.
func TestStoreCorruptValueIsAMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	norm, err := Request{Experiment: "kaslr", Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(norm.Key(), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	stub := &stubExec{}
	s := newTestServer(Config{Workers: 2, Store: st}, stub)
	res, aerr := s.do(context.Background(), Request{Experiment: "kaslr", Seed: 7})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if res.Cached || stub.started.Load() != 1 {
		t.Errorf("undecodable store value: cached=%v evals=%d, want recompute", res.Cached, stub.started.Load())
	}
	if got := s.Stats().StoreHits.Load(); got != 0 {
		t.Errorf("StoreHits = %d, want 0", got)
	}
}

// TestAcquireInternalBypassesShedding: fan-out sub-jobs and forwarded
// requests block for a worker slot instead of being shed — an 8-arch
// fan-out on a Workers=1,QueueDepth=0 node must still finish.
func TestAcquireInternalBypassesShedding(t *testing.T) {
	sched := newScheduler(1, 0)
	// Fill the only slot + the zero-length queue via the edge path.
	rel, err := sched.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.acquire(context.Background()); err == nil {
		t.Fatal("second edge acquire admitted past a full queue")
	}
	// Internal admission queues instead of shedding.
	done := make(chan func(), 1)
	go func() {
		r, err := sched.acquireInternal(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	select {
	case <-done:
		t.Fatal("internal acquire succeeded while the slot was held")
	default:
	}
	rel()
	waitFor(t, "internal acquire after release", func() bool {
		select {
		case r := <-done:
			r()
			return true
		default:
			return false
		}
	})
	// Internal admission also ignores draining: in-flight cluster work
	// must finish during a drain, not error.
	sched.StartDrain()
	r, err := sched.acquireInternal(context.Background())
	if err != nil {
		t.Fatalf("internal acquire during drain: %v", err)
	}
	r()
}

// TestStoreOpenFailureSurfaces ensures a second Open of a locked dir
// keeps failing loudly at the service-config level rather than two
// servers silently sharing segments. (The store's own tests pin the
// flock; this pins that the service layer does not swallow it.)
func TestStoreOpenFailureSurfaces(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := store.Open(dir, store.Options{}); err == nil {
		t.Fatal("second Open of a locked store dir succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "lock")); err != nil {
		t.Errorf("lock file missing: %v", err)
	}
}
