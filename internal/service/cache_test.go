package service

import (
	"fmt"
	"strings"
	"testing"
)

func testResult(key string, size int) *Result {
	return &Result{ID: key, Output: strings.Repeat("x", size)}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget fits exactly two entries of this shape.
	entry := int64(len("k0") + 100 + cacheOverhead)
	c := NewCache(2 * entry)
	c.Put("k0", testResult("k0", 100))
	c.Put("k1", testResult("k1", 100))
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 evicted while under budget")
	}
	// k0 is now most recent; inserting k2 must evict k1, not k0.
	c.Put("k2", testResult("k2", 100))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived eviction despite being least recently used")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Error("recently-used k0 was evicted instead of k1")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Error("just-inserted k2 missing")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.UsedBytes > 2*entry {
		t.Errorf("used %d bytes exceeds budget %d", st.UsedBytes, 2*entry)
	}
}

func TestCacheByteBudgetHoldsUnderManyInserts(t *testing.T) {
	budget := int64(8 << 10)
	c := NewCache(budget)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		c.Put(k, testResult(k, 256))
	}
	st := c.Stats()
	if st.UsedBytes > budget {
		t.Errorf("cache holds %d bytes, budget %d", st.UsedBytes, budget)
	}
	if st.Entries == 0 {
		t.Error("cache empty after inserts under a positive budget")
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite inserting far past the budget")
	}
}

func TestCacheRejectsOversizedAndZeroBudget(t *testing.T) {
	c := NewCache(1 << 10)
	c.Put("big", testResult("big", 4<<10))
	if _, ok := c.Get("big"); ok {
		t.Error("entry larger than the whole budget was stored")
	}
	disabled := NewCache(-1)
	disabled.Put("k", testResult("k", 1))
	if _, ok := disabled.Get("k"); ok {
		t.Error("disabled (negative-budget) cache stored an entry")
	}
}

func TestCacheRePutRefreshesRecency(t *testing.T) {
	entry := int64(len("k0") + 10 + cacheOverhead)
	c := NewCache(2 * entry)
	c.Put("k0", testResult("k0", 10))
	c.Put("k1", testResult("k1", 10))
	c.Put("k0", testResult("k0", 10)) // refresh, no growth
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("re-put grew the cache: %+v", st)
	}
	c.Put("k2", testResult("k2", 10))
	if _, ok := c.Get("k0"); !ok {
		t.Error("re-put k0 evicted despite refreshed recency")
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived; eviction ignored re-put recency")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(1 << 20)
	c.Get("missing")
	c.Put("k", testResult("k", 8))
	c.Get("k")
	c.Get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}
