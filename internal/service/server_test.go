package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubExec is a controllable evaluation engine: deterministic output
// derived from the request, optional blocking until released, and
// cancellation accounting — everything the serving-layer tests need
// without paying for simulations.
type stubExec struct {
	block     chan struct{} // non-nil: exec waits for close or ctx
	started   atomic.Int64
	cancelled atomic.Int64
}

func (s *stubExec) fn(ctx context.Context, w io.Writer, req Request, jobs int) error {
	s.started.Add(1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			s.cancelled.Add(1)
			return ctx.Err()
		}
	}
	fmt.Fprintf(w, "%s output archs=%v seed=%d\n", req.Experiment, req.Archs, req.Seed)
	return nil
}

func newTestServer(cfg Config, stub *stubExec) *Server {
	s := NewServer(cfg)
	s.exec = stub.fn
	return s
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

// TestCoalescing pins the singleflight contract end to end: concurrent
// identical requests cost exactly one evaluation and all receive the
// same content-addressed result.
func TestCoalescing(t *testing.T) {
	stub := &stubExec{block: make(chan struct{})}
	s := newTestServer(Config{Workers: 2, QueueDepth: 16}, stub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	type reply struct {
		status int
		res    Result
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, data := postJSON(t, ts.URL, `{"experiment":"kaslr","seed":7}`)
			var res Result
			json.Unmarshal(data, &res) //nolint:errcheck // zero value fails the asserts
			replies <- reply{resp.StatusCode, res}
		}()
	}
	// Every request has passed the cache check (and therefore joined
	// the one flight) once all eight misses are counted; only then let
	// the single evaluation finish.
	waitFor(t, "8 cache misses", func() bool { return s.Stats().CacheMisses.Load() == n })
	close(stub.block)

	var ids, outputs []string
	for i := 0; i < n; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		ids = append(ids, r.res.ID)
		outputs = append(outputs, r.res.Output)
	}
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] || outputs[i] != outputs[0] {
			t.Fatalf("request %d diverged: id %s vs %s", i, ids[i], ids[0])
		}
	}
	if sims := s.Stats().Simulations.Load(); sims != 1 {
		t.Errorf("8 identical concurrent requests ran %d simulations, want 1", sims)
	}
	if co := s.Stats().Coalesced.Load(); co != n-1 {
		t.Errorf("coalesced = %d, want %d", co, n-1)
	}
}

// TestCacheHitPath checks the second identical request is served from
// the cache, byte-identical, without another evaluation.
func TestCacheHitPath(t *testing.T) {
	stub := &stubExec{}
	s := newTestServer(Config{Workers: 1}, stub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first := postJSON(t, ts.URL, `{"experiment":"mds"}`)
	resp, second := postJSON(t, ts.URL, `{"experiment":"mds","archs":["zen2"],"seed":1,"runs":10,"bytes":4096}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var a, b Result
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &b); err != nil {
		t.Fatal(err)
	}
	if !b.Cached {
		t.Error("explicitly-defaulted request missed the cache: canonicalization broken")
	}
	if a.Output != b.Output || a.ID != b.ID {
		t.Error("cached result differs from the original")
	}
	if sims := s.Stats().Simulations.Load(); sims != 1 {
		t.Errorf("simulations = %d, want 1", sims)
	}
}

// TestBackpressure429 checks overload sheds load with 429 + Retry-After
// instead of queueing.
func TestBackpressure429(t *testing.T) {
	stub := &stubExec{block: make(chan struct{})}
	s := newTestServer(Config{Workers: 1, QueueDepth: -1}, stub) // no queue: maxPending = 1
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL, `{"experiment":"kaslr"}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying request: status %d", resp.StatusCode)
		}
	}()
	waitFor(t, "first evaluation to start", func() bool { return stub.started.Load() == 1 })

	resp, data := postJSON(t, ts.URL, `{"experiment":"physmap"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.Stats().RejectedBusy.Load(); got != 1 {
		t.Errorf("RejectedBusy = %d, want 1", got)
	}
	close(stub.block)
	<-done
}

// TestGracefulDrain checks the SIGTERM path: in-flight work completes,
// new work is refused with 503, readiness flips.
func TestGracefulDrain(t *testing.T) {
	stub := &stubExec{block: make(chan struct{})}
	s := newTestServer(Config{Workers: 2, QueueDepth: 4}, stub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL, `{"experiment":"kaslr"}`)
		inflight <- resp.StatusCode
	}()
	waitFor(t, "evaluation to start", func() bool { return stub.started.Load() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "drain to begin", func() bool { return s.sched.Draining() })

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz during drain = %d, want 200 (process is alive)", resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL, `{"experiment":"physmap"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request during drain = %d, want 503", resp.StatusCode)
	}

	close(stub.block) // let the admitted evaluation finish
	if status := <-inflight; status != http.StatusOK {
		t.Errorf("in-flight request finished %d during drain, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain: %v", err)
	}
}

// TestClientDisconnectCancelsEvaluation checks the waiter-refcount
// rule: when the last client interested in a flight goes away, the
// evaluation's context is cancelled.
func TestClientDisconnectCancelsEvaluation(t *testing.T) {
	stub := &stubExec{block: make(chan struct{})} // never closed
	s := newTestServer(Config{Workers: 1}, stub)

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan *apiError, 1)
	go func() {
		_, aerr := s.do(ctx, Request{Experiment: "kaslr"})
		errs <- aerr
	}()
	waitFor(t, "evaluation to start", func() bool { return stub.started.Load() == 1 })
	cancel()
	aerr := <-errs
	if aerr == nil || aerr.status != 499 {
		t.Fatalf("disconnected client got %+v, want status 499", aerr)
	}
	waitFor(t, "evaluation cancellation", func() bool { return stub.cancelled.Load() == 1 })
	if sims := s.Stats().Simulations.Load(); sims != 1 {
		t.Errorf("simulations = %d", sims)
	}
	if _, ok := s.cache.Get(mustNormalize(t, Request{Experiment: "kaslr"}).Key()); ok {
		t.Error("cancelled evaluation was cached")
	}
}

// TestEvaluationTimeout checks the per-experiment deadline surfaces as
// 504.
func TestEvaluationTimeout(t *testing.T) {
	stub := &stubExec{block: make(chan struct{})} // never closed
	s := newTestServer(Config{Workers: 1, BaseTimeout: 10 * time.Millisecond}, stub)
	_, aerr := s.do(context.Background(), Request{Experiment: "fig6"})
	if aerr == nil || aerr.status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out evaluation got %+v, want 504", aerr)
	}
}

// TestBatchRequests checks array submission: per-item results in
// submission order, identical items answered by one evaluation,
// per-item errors inline.
func TestBatchRequests(t *testing.T) {
	stub := &stubExec{}
	s := newTestServer(Config{Workers: 2, QueueDepth: 8}, stub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL,
		`[{"experiment":"kaslr"},{"experiment":"kaslr","seed":1},{"experiment":"physmap"},{"experiment":"bogus"}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Results []struct {
			Result
			Error  string `json:"error"`
			Status int    `json:"status"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("batch response: %v (%s)", err, data)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	if out.Results[0].ID == "" || out.Results[0].ID != out.Results[1].ID {
		t.Errorf("identical batch items got different ids: %q vs %q", out.Results[0].ID, out.Results[1].ID)
	}
	if out.Results[2].ID == out.Results[0].ID {
		t.Error("distinct batch items share an id")
	}
	if out.Results[3].Status != http.StatusBadRequest || out.Results[3].Error == "" {
		t.Errorf("invalid batch item = %+v, want inline 400", out.Results[3])
	}
	if sims := s.Stats().Simulations.Load(); sims != 2 {
		t.Errorf("batch ran %d simulations, want 2 (identical items collapse)", sims)
	}
}

// TestResultsEndpoint checks content-addressed re-fetch.
func TestResultsEndpoint(t *testing.T) {
	stub := &stubExec{}
	s := newTestServer(Config{Workers: 1}, stub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, data := postJSON(t, ts.URL, `{"experiment":"fig6"}`)
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/results/" + res.ID)
	if err != nil {
		t.Fatal(err)
	}
	refetched, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d", resp.StatusCode)
	}
	var again Result
	if err := json.Unmarshal(refetched, &again); err != nil {
		t.Fatal(err)
	}
	if again.Output != res.Output || !again.Cached {
		t.Errorf("refetched result = %+v", again)
	}

	resp, err = http.Get(ts.URL + "/v1/results/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", resp.StatusCode)
	}
}

func TestArchesEndpoint(t *testing.T) {
	s := newTestServer(Config{Workers: 1}, &stubExec{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/arches")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Arches      []string            `json:"arches"`
		Aliases     map[string][]string `json:"aliases"`
		Experiments []string            `json:"experiments"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Arches) != 8 || len(out.Aliases["amd"]) != 4 || len(out.Experiments) != len(experiments) {
		t.Errorf("arches payload = %+v", out)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(Config{Workers: 1}, &stubExec{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"experiment":`},
		{"unknown field", `{"experiment":"kaslr","sed":3}`},
		{"unknown experiment", `{"experiment":"tablet1"}`},
		{"empty batch", `[]`},
		{"trailing garbage", `{"experiment":"kaslr"} extra`},
	}
	for _, c := range cases {
		resp, data := postJSON(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, data)
		}
	}
}

// TestCacheCoalesceRace hammers the cache + singleflight path from 32
// goroutines over a deliberately tiny cache budget (constant eviction
// churn) and a small key space (constant flight contention). Its
// assertions are weak on purpose — the test's real teeth are the race
// detector's (`make race`, CI).
func TestCacheCoalesceRace(t *testing.T) {
	s := NewServer(Config{Workers: 4, QueueDepth: 64, CacheBytes: 700})
	s.exec = func(ctx context.Context, w io.Writer, req Request, jobs int) error {
		fmt.Fprintf(w, "out %s seed=%d", req.Experiment, req.Seed)
		return nil
	}
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				seed := int64(1 + (g+i)%5)
				res, aerr := s.do(context.Background(), Request{Experiment: "kaslr", Seed: seed})
				if aerr != nil {
					t.Errorf("do(seed %d): %v", seed, aerr)
					return
				}
				want := fmt.Sprintf("out kaslr seed=%d", seed)
				if res.Output != want {
					t.Errorf("seed %d: output %q, want %q (cache/flight mixed up results)", seed, res.Output, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stats := s.Stats()
	if got := stats.Requests.Load(); got != goroutines*50 {
		t.Errorf("requests = %d, want %d", got, goroutines*50)
	}
}

// TestDecodeStrict covers the decoder edge the HTTP tests reach only
// via full requests.
func TestDecodeStrict(t *testing.T) {
	var req Request
	if err := decodeStrict([]byte(`{"experiment":"kaslr","seed":3}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.Experiment != "kaslr" || req.Seed != 3 {
		t.Errorf("decoded %+v", req)
	}
	if err := decodeStrict([]byte(`{"experiment":"kaslr"}{"experiment":"mds"}`), &req); err == nil {
		t.Error("trailing JSON value accepted")
	}
}

// TestExecuteUnknownExperiment covers Execute's guard directly (the
// server normalizes first, so HTTP can't reach it).
func TestExecuteUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Execute(context.Background(), &buf, Request{Experiment: "nope"}, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Execute(ctx, &buf, Request{Experiment: "table1"}, 1); err == nil {
		t.Error("cancelled context accepted")
	}
}
