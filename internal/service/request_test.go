package service

import (
	"strings"
	"testing"
	"time"
)

// mustNormalize is the test helper for requests that must be valid.
func mustNormalize(t *testing.T, r Request) Request {
	t.Helper()
	n, err := r.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", r, err)
	}
	return n
}

// TestKeyCanonicalization pins the content-address invariant: every
// spelling of the same question hashes identically, and different
// questions hash differently. This is what makes the cache and the
// singleflight group correct — a miss here is either a useless cache
// split or, worse, two different experiments sharing a result.
func TestKeyCanonicalization(t *testing.T) {
	base := mustNormalize(t, Request{Experiment: "kaslr"}).Key()
	same := []Request{
		// Explicit defaults vs zero values.
		{Experiment: "kaslr", Seed: 1, Runs: 20},
		{Experiment: "kaslr", Archs: []string{"zen2", "zen3", "zen4"}},
		// Slice ordering and duplicates are not semantic.
		{Experiment: "kaslr", Archs: []string{"zen4", "zen2", "zen3"}},
		{Experiment: "kaslr", Archs: []string{"zen3", "zen3", "zen2", "zen4", "zen2"}},
		// Fields the experiment does not consume cannot split the key.
		{Experiment: "kaslr", Trials: 9, Noise: 0.5, Bits: 64, Bytes: 128, Samples: 7},
	}
	for _, r := range same {
		if got := mustNormalize(t, r).Key(); got != base {
			t.Errorf("Key(%+v) = %s, want %s (canonically equal requests must hash identically)", r, got, base)
		}
	}
	different := []Request{
		{Experiment: "kaslr", Seed: 2},
		{Experiment: "kaslr", Runs: 21},
		{Experiment: "kaslr", Archs: []string{"zen2"}},
		{Experiment: "physmap"},
	}
	for _, r := range different {
		if got := mustNormalize(t, r).Key(); got == base {
			t.Errorf("Key(%+v) collides with the default kaslr request", r)
		}
	}
}

// TestKeyAliasExpansion checks "all"/"amd" hash like their expansions.
func TestKeyAliasExpansion(t *testing.T) {
	alias := mustNormalize(t, Request{Experiment: "table1", Archs: []string{"all"}})
	explicit := mustNormalize(t, Request{Experiment: "table1"})
	if alias.Key() != explicit.Key() {
		t.Errorf("archs [all] and the default set hash differently")
	}
	amd := mustNormalize(t, Request{Experiment: "covert", Archs: []string{"amd"}})
	if got := mustNormalize(t, Request{Experiment: "covert"}); got.Key() != amd.Key() {
		t.Errorf("archs [amd] and covert's default hash differently")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	n := mustNormalize(t, Request{Experiment: "fig7"})
	if n.Seed != 9 || n.Samples != 22 || len(n.Archs) != 1 || n.Archs[0] != "zen3" {
		t.Errorf("fig7 defaults = %+v", n)
	}
	if n.Runs != 0 || n.Trials != 0 || n.Bits != 0 || n.Bytes != 0 {
		t.Errorf("fig7 normalization left irrelevant fields set: %+v", n)
	}
	t1 := mustNormalize(t, Request{Experiment: "table1"})
	if t1.Trials != 6 || t1.Seed != 1 || len(t1.Archs) != 8 {
		t.Errorf("table1 defaults = %+v", t1)
	}
}

func TestNormalizeCanonicalArchOrder(t *testing.T) {
	n := mustNormalize(t, Request{Experiment: "table1", Archs: []string{"intel13", "zen1", "intel9", "zen4"}})
	want := []string{"zen1", "zen4", "intel9", "intel13"}
	if len(n.Archs) != len(want) {
		t.Fatalf("Archs = %v, want %v", n.Archs, want)
	}
	for i := range want {
		if n.Archs[i] != want[i] {
			t.Fatalf("Archs = %v, want %v (paper order)", n.Archs, want)
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"unknown experiment", Request{Experiment: "tablet1"}, "unknown experiment"},
		{"unknown arch", Request{Experiment: "table1", Archs: []string{"zen5"}}, "unknown microarchitecture"},
		{"archs on physaddr", Request{Experiment: "physaddr", Archs: []string{"zen2"}}, "takes no arch list"},
		{"archs on report", Request{Experiment: "report", Archs: []string{"zen2"}}, "takes no arch list"},
		{"negative runs", Request{Experiment: "kaslr", Runs: -1}, "negative runs"},
		{"negative trials", Request{Experiment: "table1", Trials: -2}, "negative trials"},
		{"negative noise", Request{Experiment: "table1", Noise: -0.5}, "negative noise"},
	}
	for _, c := range cases {
		_, err := c.req.Normalize()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Normalize(%+v) err = %v, want contains %q", c.name, c.req, err, c.want)
		}
	}
}

func TestExperimentsListsCatalog(t *testing.T) {
	names := Experiments()
	if len(names) != len(experiments) {
		t.Fatalf("Experiments() has %d names, catalog %d", len(names), len(experiments))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Experiments() not sorted: %v", names)
		}
	}
	for _, want := range []string{"table1", "report", "chain"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("Experiments() missing %q", want)
		}
	}
}

func TestTimeoutScalesWithWeight(t *testing.T) {
	light := Request{Experiment: "fig6"}.Timeout(time.Second)
	heavy := Request{Experiment: "report"}.Timeout(time.Second)
	if light != time.Second {
		t.Errorf("fig6 timeout = %v, want 1s", light)
	}
	if heavy != 10*time.Second {
		t.Errorf("report timeout = %v, want 10s", heavy)
	}
	if unknown := (Request{Experiment: "nope"}).Timeout(time.Second); unknown != time.Second {
		t.Errorf("unknown-experiment timeout = %v, want the base", unknown)
	}
}

func TestClipGuardsShortLeaks(t *testing.T) {
	short := []byte{1, 2, 3}
	if got := clip(short, 16); len(got) != 3 {
		t.Errorf("clip(short, 16) = %v", got)
	}
	if got := clip(make([]byte, 64), 16); len(got) != 16 {
		t.Errorf("clip(long, 16) returned %d bytes", len(got))
	}
	if got := clip(nil, 16); got != nil {
		t.Errorf("clip(nil, 16) = %v", got)
	}
}
