package service

import (
	"container/list"
	"sync"
)

// cacheOverhead approximates the per-entry bookkeeping cost (list
// element, map slot, Result struct) charged against the byte budget on
// top of the payload, so a flood of tiny results cannot grow the cache
// unboundedly while nominally under budget.
const cacheOverhead = 256

// Cache is the content-addressed result store: hex SHA-256 request key
// → rendered Result, with LRU eviction under a byte budget. Because the
// simulator is deterministic, an entry never goes stale — eviction
// exists only to bound memory, so recency is the right victim order.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions uint64
}

// cacheEntry is one resident result plus its charged size.
type cacheEntry struct {
	key  string
	res  *Result
	size int64
}

// NewCache returns a cache bounded to roughly budget bytes of result
// payload. A budget <= 0 disables storage entirely (every Get misses,
// every Put is dropped) rather than meaning "unbounded": an unbounded
// result store in a long-running server is the bug this type exists to
// prevent.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// Get returns the cached result for key and whether it was present,
// promoting the entry to most recently used on a hit. The returned
// Result is shared — callers must treat it as immutable and copy before
// tagging response-specific fields (Cached, Coalesced).
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting least-recently-used entries until
// the budget holds. A result larger than the whole budget is not stored
// (it would immediately evict everything for one entry no second
// request may ever want). Re-putting an existing key refreshes recency
// but keeps the resident entry: results are content-addressed, so both
// values are identical by construction.
func (c *Cache) Put(key string, res *Result) {
	size := int64(len(res.Output)+len(key)) + cacheOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		c.evictOldest()
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, size: size})
	c.used += size
}

// evictOldest drops the least-recently-used entry. Caller holds mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.size
	c.evictions++
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int
	UsedBytes int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.items),
		UsedBytes: c.used,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
