package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrDraining is returned by acquire once Drain has begun: the server
// finishes what it admitted but admits nothing new (HTTP 503).
var ErrDraining = errors.New("server is draining")

// BusyError is the backpressure signal: the scheduler's queue is full
// and the request was shed rather than queued unboundedly (HTTP 429).
// RetryAfter estimates when a slot is likely to free up, derived from
// the exponentially-weighted average simulation time and the current
// backlog.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy, retry after %s", e.RetryAfter.Round(time.Millisecond))
}

// scheduler bounds concurrent evaluations: at most workers run at once
// and at most queueDepth more may wait for a slot. Anything beyond that
// is rejected immediately with a BusyError — in a serving system the
// honest answer to overload is "try later", not a queue whose wait
// exceeds every client's patience.
type scheduler struct {
	workers    int
	maxPending int64
	slots      chan struct{}

	// pending counts admitted evaluations (running + queued); it is the
	// queue-depth signal for backpressure, /readyz, and the telemetry
	// gauge.
	pending  atomic.Int64
	draining atomic.Bool

	// ewmaNS is the smoothed evaluation latency in nanoseconds, the
	// basis of the Retry-After estimate. Seeded lazily by the first
	// completed evaluation.
	ewmaNS atomic.Int64
}

func newScheduler(workers, queueDepth int) *scheduler {
	return &scheduler{
		workers:    workers,
		maxPending: int64(workers + queueDepth),
		slots:      make(chan struct{}, workers),
	}
}

// acquire admits one evaluation, blocking until a worker slot frees or
// ctx ends. It fails fast with ErrDraining during shutdown and with a
// BusyError when the backlog is full. On success the caller owns a slot
// and must call the returned release exactly once, after the evaluation
// finishes.
func (s *scheduler) acquire(ctx context.Context) (release func(), err error) {
	return s.admit(ctx, false)
}

// acquireInternal admits cluster-internal work — fan-out sub-jobs and
// forwarded-request evaluations. It still occupies a worker slot, so
// CPU stays bounded, but it never sheds load (the client request was
// already admitted at the edge; rejecting its halves would turn
// admission into an error after the fact) and never refuses during a
// drain (the sub-job is part of the in-flight work the drain waits
// for).
func (s *scheduler) acquireInternal(ctx context.Context) (release func(), err error) {
	return s.admit(ctx, true)
}

func (s *scheduler) admit(ctx context.Context, internal bool) (release func(), err error) {
	if internal {
		s.pending.Add(1)
	} else {
		if s.draining.Load() {
			return nil, ErrDraining
		}
		if n := s.pending.Add(1); n > s.maxPending {
			s.pending.Add(-1)
			return nil, &BusyError{RetryAfter: s.retryAfter()}
		}
	}
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.pending.Add(-1)
		return nil, ctx.Err()
	}
	start := time.Now()
	released := atomic.Bool{}
	return func() {
		if released.Swap(true) {
			return
		}
		s.observe(time.Since(start))
		<-s.slots
		s.pending.Add(-1)
	}, nil
}

// observe folds one evaluation latency into the EWMA (α = 1/4, integer
// arithmetic: new = old + (sample-old)/4).
func (s *scheduler) observe(d time.Duration) {
	for {
		old := s.ewmaNS.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/4
		}
		if s.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter estimates how long until a rejected client plausibly gets
// a slot: the backlog ahead of it, spread over the workers, times the
// average evaluation latency — floored at one second so clients never
// busy-loop on a sub-second hint.
func (s *scheduler) retryAfter() time.Duration {
	avg := time.Duration(s.ewmaNS.Load())
	if avg <= 0 {
		return time.Second
	}
	waves := (s.pending.Load() + int64(s.workers) - 1) / int64(s.workers)
	est := avg * time.Duration(waves)
	if est < time.Second {
		return time.Second
	}
	return est
}

// Pending reports the admitted (running + queued) evaluation count.
func (s *scheduler) Pending() int64 { return s.pending.Load() }

// StartDrain stops admitting new evaluations. Idempotent.
func (s *scheduler) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *scheduler) Draining() bool { return s.draining.Load() }

// AwaitIdle blocks until every admitted evaluation has released its
// slot, or ctx ends. Call StartDrain first or new work keeps arriving.
func (s *scheduler) AwaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pending.Load() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
