package service

import (
	"context"
	"fmt"
	"io"

	"phantom"
)

// Execute runs one normalized request and writes the experiment's text
// rendering to w. This is the single rendering engine behind both front
// ends: cmd/phantom calls it for its (non-JSON) stdout and cmd/
// phantom-server for response bodies, which is what makes served
// results byte-identical to CLI output by construction (and pinned by
// TestServedOutputMatchesCLI).
//
// ctx bounds the evaluation — it is threaded into every experiment
// options struct, so cancellation or an expired deadline aborts the
// underlying sweep jobs. jobs sizes the worker pool of the sweep-backed
// experiments (0 = GOMAXPROCS); it never changes the output, only how
// fast it is produced.
func Execute(ctx context.Context, w io.Writer, req Request, jobs int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	archs := microarchs(req.Archs)
	switch req.Experiment {
	case "table1":
		for _, a := range archs {
			tb, err := phantom.RunTable1(a, phantom.Table1Options{
				Context: ctx, Seed: req.Seed, Trials: req.Trials, Noise: req.Noise,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(w, tb)
		}
	case "fig6":
		series, err := phantom.RunFig6SweepCtx(ctx, archs, req.Seed, jobs)
		if err != nil {
			return err
		}
		for _, s := range series {
			fmt.Fprintln(w, s)
		}
	case "fig7":
		recovered, err := phantom.RunFig7Sweep(archs, phantom.Fig7Options{
			Context: ctx, Seed: req.Seed, Samples: req.Samples, Jobs: jobs,
		})
		if err != nil {
			return err
		}
		for _, f := range recovered {
			fmt.Fprintln(w, f)
		}
	case "covert":
		opts := phantom.Table2Options{Context: ctx, Seed: req.Seed, Bits: req.Bits, Runs: req.Runs, Jobs: jobs}
		rows, err := phantom.RunTable2Fetch(archs, opts)
		if err != nil {
			return err
		}
		execRows, err := phantom.RunTable2Execute(archs, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(w, phantom.FormatTable2("Table 2 (top) — fetch covert channel (P1)", rows))
		fmt.Fprintln(w)
		fmt.Fprint(w, phantom.FormatTable2("Table 2 (bottom) — execute covert channel (P2)", execRows))
	case "kaslr":
		rows, err := phantom.RunTable3(archs, phantom.DerandOptions{Context: ctx, Seed: req.Seed, Runs: req.Runs, Jobs: jobs})
		if err != nil {
			return err
		}
		fmt.Fprint(w, phantom.FormatDerand(
			fmt.Sprintf("Table 3 — kernel image KASLR via P1 (%d runs)", req.Runs), rows))
	case "physmap":
		rows, err := phantom.RunTable4(archs, phantom.DerandOptions{Context: ctx, Seed: req.Seed, Runs: req.Runs, Jobs: jobs})
		if err != nil {
			return err
		}
		fmt.Fprint(w, phantom.FormatDerand(
			fmt.Sprintf("Table 4 — physmap KASLR via P2 (%d runs)", req.Runs), rows))
	case "physaddr":
		rows, err := phantom.RunTable5(phantom.DerandOptions{Context: ctx, Seed: req.Seed, Runs: req.Runs, Jobs: jobs})
		if err != nil {
			return err
		}
		fmt.Fprint(w, phantom.FormatDerand(
			fmt.Sprintf("Table 5 — physical address of a user page (%d runs)", req.Runs), rows))
	case "mds":
		for _, a := range archs {
			rep, err := phantom.RunMDSExperiment(a, phantom.MDSOptions{
				Context: ctx, Seed: req.Seed, Runs: req.Runs, Bytes: req.Bytes, Jobs: jobs,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(w, rep)
		}
	case "mitigations":
		for _, a := range archs {
			if err := ctx.Err(); err != nil {
				return err
			}
			m, err := phantom.RunMitigations(a, req.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, m)
		}
	case "sls":
		return execSLS(ctx, w, req, archs)
	case "chain":
		return execChain(ctx, w, req, archs)
	case "report":
		return phantom.GenerateReport(w, phantom.ReportOptions{
			Context: ctx, Seed: req.Seed, Runs: req.Runs, Bits: req.Bits, Jobs: jobs,
		})
	default:
		return fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	return nil
}

// execSLS renders the straight-line-speculation cell (Table 1,
// footnote c) exactly like `phantom sls`.
func execSLS(ctx context.Context, w io.Writer, req Request, archs []phantom.Microarch) error {
	fmt.Fprintln(w, "Straight-line speculation past an unpredicted return (Spectre-SLS,")
	fmt.Fprintln(w, "Table 1 footnote c): the sequential bytes after a ret execute")
	fmt.Fprintln(w, "transiently on AMD parts; Intel frontends stall instead.")
	fmt.Fprintln(w)
	for _, a := range archs {
		tb, err := phantom.RunTable1(a, phantom.Table1Options{Context: ctx, Seed: req.Seed, Trials: 4})
		if err != nil {
			return err
		}
		var reach phantom.StageReach
		for _, row := range tb.Cells {
			for _, c := range row {
				if c.Training == "non-branch" && c.Victim == "ret" {
					reach = c.Reach
				}
			}
		}
		fmt.Fprintf(w, "  %-26s %v\n", a.ModelName(), reach)
	}
	return nil
}

// execChain renders the full Section 7 exploit chain exactly like
// `phantom chain`.
func execChain(ctx context.Context, w io.Writer, req Request, archs []phantom.Microarch) error {
	for _, a := range archs {
		if err := ctx.Err(); err != nil {
			return err
		}
		sys, err := phantom.NewSystem(a, phantom.SystemConfig{Seed: req.Seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "=== Full exploit chain on %s (seed %d) ===\n", a.ModelName(), req.Seed)
		img, err := sys.BreakImageKASLR()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "1. kernel image:  %#x  correct=%v  (%.4fs sim)\n", img.Guess, img.Correct, img.Seconds)
		pm, err := sys.BreakPhysmapKASLR(img.Guess)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "2. physmap:       %#x  correct=%v  (%.4fs sim)\n", pm.Guess, pm.Correct, pm.Seconds)
		pa, err := sys.FindPhysAddr(img.Guess, pm.Guess)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "3. page phys:     %#x  correct=%v  (%.4fs sim)\n", pa.Guess, pa.Correct, pa.Seconds)
		secretVA, secret := sys.SecretAddr()
		leak, err := sys.LeakKernelMemory(secretVA, 64)
		if err != nil {
			// An exploit coming up empty on one boot is a chain result,
			// not a harness error — steps 1-3 likewise report
			// correct=false rather than aborting.
			fmt.Fprintf(w, "4. leak @ %#x: failed on this boot: %v\n", secretVA, err)
			continue
		}
		fmt.Fprintf(w, "4. leak @ %#x: accuracy %.2f%%, %.0f B/s sim\n", secretVA, leak.AccuracyPct, leak.BytesPerSecond)
		fmt.Fprintf(w, "   leaked: % x\n", clip(leak.Leaked, 16))
		fmt.Fprintf(w, "   truth:  % x\n", clip(secret, 16))
	}
	return nil
}

// clip returns at most the first n bytes of b, so a short leak result
// prints what it has instead of panicking.
func clip(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}
