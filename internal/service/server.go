package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phantom/internal/cluster"
	"phantom/internal/store"
	"phantom/internal/telemetry"
)

// Config tunes a Server. The zero value of every field means its
// documented default.
type Config struct {
	// Workers caps concurrently running evaluations; 0 = GOMAXPROCS.
	Workers int
	// QueueDepth caps evaluations waiting for a worker beyond the
	// running ones; past workers+queue the server sheds load with 429.
	// 0 = 2×Workers; negative = no queue (reject whenever all workers
	// are busy).
	QueueDepth int
	// Jobs sizes each evaluation's internal sweep pool. The server runs
	// up to Workers evaluations at once, so the default keeps the
	// product near GOMAXPROCS instead of oversubscribing: 0 =
	// max(1, GOMAXPROCS/Workers).
	Jobs int
	// CacheBytes is the result cache budget; 0 = 64 MiB. Negative
	// disables caching.
	CacheBytes int64
	// BaseTimeout is the per-evaluation deadline before the experiment
	// weight multiplier (Request.Timeout); 0 = 1 minute.
	BaseTimeout time.Duration
	// Store, when non-nil, is the durable result store: cache misses
	// read from it before simulating, and every locally computed result
	// is written through, so a restarted server answers warm questions
	// without re-simulation.
	Store *store.Store
	// Router, when non-nil and not Solo, shards the keyspace across
	// peers: non-owned requests proxy to their owner (one hop), and
	// separable multi-arch requests fan out per (arch) sub-request. A
	// dead peer degrades to local computation, never to a client error.
	Router *cluster.Router
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Workers
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0) / c.Workers
		if c.Jobs < 1 {
			c.Jobs = 1
		}
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BaseTimeout <= 0 {
		c.BaseTimeout = time.Minute
	}
	return c
}

// Result is one served evaluation: the experiment's rendered text plus
// the identity and provenance a client needs to reason about it. ID is
// the content address (the canonical request hash), usable with GET
// /v1/results/{id} for as long as the entry survives the cache budget.
type Result struct {
	ID         string   `json:"id"`
	Experiment string   `json:"experiment"`
	Archs      []string `json:"archs,omitempty"`
	Seed       int64    `json:"seed"`
	// Output is byte-identical to the phantom CLI's stdout for the same
	// normalized request.
	Output string `json:"output"`
	// Cached reports the answer came from the result cache; Coalesced
	// that this request joined another's in-flight evaluation. Both
	// false means this request paid for the simulation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// SimMS is the wall-clock evaluation cost when this result was
	// computed (not re-measured on cache hits).
	SimMS float64 `json:"sim_ms"`
	// Proxied reports the answer was computed by the owning peer and
	// forwarded here; Fanout, when nonzero, is the number of per-arch
	// sub-requests a separable request was decomposed into.
	Proxied bool `json:"proxied,omitempty"`
	Fanout  int  `json:"fanout,omitempty"`
}

// Stats counts server activity since start. All fields are atomic; read
// them with Load. Unlike telemetry (which the operator may not enable),
// Stats is always on — tests and benchmarks assert coalescing and cache
// behavior through it.
type Stats struct {
	Requests         atomic.Uint64
	CacheHits        atomic.Uint64
	CacheMisses      atomic.Uint64
	Coalesced        atomic.Uint64
	Simulations      atomic.Uint64
	RejectedBusy     atomic.Uint64
	RejectedDraining atomic.Uint64
	Errors           atomic.Uint64
	// Distributed-tier counters: zero on a storeless single node.
	StoreHits     atomic.Uint64 // cache misses answered from the durable store
	StoreFills    atomic.Uint64 // locally computed results written through
	Proxied       atomic.Uint64 // requests answered by their owning peer
	ProxyFailures atomic.Uint64 // forwards that failed (dead or erroring peer)
	DegradedLocal atomic.Uint64 // non-owned requests computed locally after a failed forward
	FanoutJobs    atomic.Uint64 // per-arch sub-requests spawned by separable fan-out
}

// Server is the experiment-serving engine behind cmd/phantom-server:
// cache lookup, coalescing, bounded scheduling, and rendering, exposed
// as an http.Handler. Construct with NewServer.
type Server struct {
	cfg     Config
	cache   *Cache
	flights *flightGroup
	sched   *scheduler
	stats   Stats
	store   *store.Store
	rtr     *cluster.Router

	// exec renders one normalized request; Execute in production, a
	// stub in tests that need slow or failing evaluations without
	// simulating.
	exec func(ctx context.Context, w io.Writer, req Request, jobs int) error
}

// NewServer returns a ready Server with cfg's zero fields defaulted.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheBytes),
		flights: newFlightGroup(),
		sched:   newScheduler(cfg.Workers, cfg.QueueDepth),
		store:   cfg.Store,
		rtr:     cfg.Router,
		exec:    Execute,
	}
}

// clustered reports whether the routing path is live: a router with
// more than one peer. Solo and router-less servers skip it entirely.
func (s *Server) clustered() bool { return s.rtr != nil && !s.rtr.Solo() }

// Stats exposes the live counters (pointer: fields are atomics).
func (s *Server) Stats() *Stats { return &s.stats }

// CacheStats exposes the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// QueueDepth reports admitted (running + queued) evaluations.
func (s *Server) QueueDepth() int64 { return s.sched.Pending() }

// Drain begins graceful shutdown: /readyz flips unready, new
// evaluations are refused with 503, and Drain blocks until every
// admitted evaluation finishes or ctx ends. Idempotent; safe to call
// before http.Server.Shutdown so in-flight responses complete.
func (s *Server) Drain(ctx context.Context) error {
	s.sched.StartDrain()
	return s.sched.AwaitIdle(ctx)
}

// apiError is a request failure with its HTTP rendering.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// do answers one request: normalize, cache, coalesce, schedule,
// evaluate. The returned Result is a private copy with the
// response-specific Cached/Coalesced flags set.
func (s *Server) do(ctx context.Context, req Request) (*Result, *apiError) {
	return s.doRouted(ctx, req, false)
}

// doRouted is do with the cluster view: forwarded requests (the loop
// guard header was present) always answer locally, so a request takes
// at most one proxy hop. The lookup order is memory cache, durable
// store, then — when clustered and not forwarded — fan-out or proxy,
// and finally local evaluation.
func (s *Server) doRouted(ctx context.Context, req Request, forwarded bool) (*Result, *apiError) {
	s.stats.Requests.Add(1)
	counter("serve_requests").Inc(0)
	norm, err := req.Normalize()
	if err != nil {
		return nil, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	key := norm.Key()
	if res, ok := s.lookup(key); ok {
		return res, nil
	}
	if s.clustered() && !forwarded {
		if experiments[norm.Experiment].separable && len(norm.Archs) > 1 {
			res, shared, err := s.flights.Do(ctx, key, s.assemble(norm, key))
			if shared {
				s.stats.Coalesced.Add(1)
				counter("serve_coalesced").Inc(0)
			}
			if err != nil {
				return nil, s.mapError(err)
			}
			out := *res
			out.Coalesced = shared
			return &out, nil
		}
		if owner, local := s.rtr.Owner(key); !local {
			if res, ok := s.proxy(ctx, norm, owner); ok {
				return res, nil
			}
			s.stats.DegradedLocal.Add(1)
			counter("serve_degraded_local").Inc(0)
		}
	}

	res, shared, err := s.flights.Do(ctx, key, s.evaluate(norm, key, forwarded))
	if shared {
		s.stats.Coalesced.Add(1)
		counter("serve_coalesced").Inc(0)
	}
	if err != nil {
		return nil, s.mapError(err)
	}
	out := *res
	out.Coalesced = shared
	return &out, nil
}

// lookup answers key from the in-memory cache, then the durable store.
// A store hit is promoted into the cache so repeats stay off disk. The
// returned copy has Cached set: from the client's point of view both
// tiers are "previously computed".
func (s *Server) lookup(key string) (*Result, bool) {
	if res, ok := s.cache.Get(key); ok {
		s.stats.CacheHits.Add(1)
		counter("serve_cache_hits").Inc(0)
		out := *res
		out.Cached = true
		return &out, true
	}
	s.stats.CacheMisses.Add(1)
	counter("serve_cache_misses").Inc(0)
	if s.store == nil {
		return nil, false
	}
	data, ok := s.store.Get(key)
	if !ok {
		return nil, false
	}
	res := new(Result)
	if err := json.Unmarshal(data, res); err != nil {
		// A record that passed its CRC but does not decode is from an
		// incompatible schema; treat it as a miss and recompute.
		counter("serve_store_errors").Inc(0)
		return nil, false
	}
	s.stats.StoreHits.Add(1)
	counter("serve_store_hits").Inc(0)
	s.cache.Put(key, res)
	out := *res
	out.Cached = true
	return &out, true
}

// proxy forwards a non-owned request to its owner and decodes the
// answer. false means the caller should compute locally instead —
// ShouldTry declined (peer known down), the forward failed, or the
// reply did not decode. Proxied results are deliberately NOT cached or
// stored here: each node's cache and store hold only the shard it
// owns, so memory is partitioned rather than mirrored.
func (s *Server) proxy(ctx context.Context, norm Request, owner cluster.Peer) (*Result, bool) {
	if !s.rtr.ShouldTry(owner) {
		return nil, false
	}
	body, err := json.Marshal(norm)
	if err != nil {
		return nil, false
	}
	// The owner runs under its own per-experiment deadline; double it
	// here so a healthy-but-queued peer is not misread as dead, while a
	// hung one cannot stall this request forever.
	fctx, cancel := context.WithTimeout(ctx, 2*norm.Timeout(s.cfg.BaseTimeout))
	defer cancel()
	data, err := s.rtr.Forward(fctx, owner, body)
	if err != nil {
		s.stats.ProxyFailures.Add(1)
		counter("serve_peer_failures").Inc(0)
		return nil, false
	}
	res := new(Result)
	if err := json.Unmarshal(data, res); err != nil {
		s.stats.ProxyFailures.Add(1)
		counter("serve_peer_failures").Inc(0)
		return nil, false
	}
	s.stats.Proxied.Add(1)
	counter("serve_proxied").Inc(0)
	res.Proxied = true
	return res, true
}

// assemble returns the flight function for a separable multi-arch
// request: decompose into single-arch sub-requests, resolve each
// against its owning peer concurrently, and concatenate the outputs in
// canonical arch order — byte-identical to evaluating the whole
// request on one node, because separable experiments render each arch
// independently. The assembled parent is not cached: its per-arch
// pieces are, on their owning nodes, which is where repeats hit.
func (s *Server) assemble(norm Request, key string) func(context.Context) (*Result, error) {
	return func(fctx context.Context) (*Result, error) {
		n := len(norm.Archs)
		s.stats.FanoutJobs.Add(uint64(n))
		counter("serve_fanout_jobs").Add(0, uint64(n))
		subs := make([]*Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, arch := range norm.Archs {
			wg.Add(1)
			go func(i int, arch string) {
				defer wg.Done()
				sub := norm
				sub.Archs = []string{arch}
				subs[i], errs[i] = s.resolve(fctx, sub)
			}(i, arch)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var out strings.Builder
		var simMS float64
		for _, sub := range subs {
			out.WriteString(sub.Output)
			simMS += sub.SimMS
		}
		return &Result{
			ID:         key,
			Experiment: norm.Experiment,
			Archs:      norm.Archs,
			Seed:       norm.Seed,
			Output:     out.String(),
			SimMS:      simMS,
			Fanout:     n,
		}, nil
	}
}

// resolve answers one single-arch fan-out sub-request: cache, store,
// owner proxy, then local compute. Local compute uses internal
// admission — the parent was admitted at the edge, so its pieces block
// for a worker slot instead of being shed.
func (s *Server) resolve(ctx context.Context, sub Request) (*Result, error) {
	key := sub.Key()
	if res, ok := s.lookup(key); ok {
		return res, nil
	}
	if owner, local := s.rtr.Owner(key); !local {
		if res, ok := s.proxy(ctx, sub, owner); ok {
			return res, nil
		}
		s.stats.DegradedLocal.Add(1)
		counter("serve_degraded_local").Inc(0)
	}
	res, _, err := s.flights.Do(ctx, key, s.evaluate(sub, key, true))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// storePut writes a locally computed result through to the durable
// store and refreshes the store gauges.
func (s *Server) storePut(key string, res *Result) {
	if s.store == nil {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	if err := s.store.Put(key, data); err != nil {
		counter("serve_store_errors").Inc(0)
		return
	}
	s.stats.StoreFills.Add(1)
	counter("serve_store_fills").Inc(0)
	st := s.store.Stats()
	gauge("store_records").Set(int64(st.Records))
	gauge("store_live_bytes").Set(st.LiveBytes)
	gauge("store_total_bytes").Set(st.TotalBytes)
}

// evaluate returns the flight function for one normalized request: take
// a scheduler slot, render under the per-experiment deadline, cache,
// and write through to the durable store. internal marks cluster-
// internal work (fan-out sub-jobs, forwarded requests), which blocks
// for a slot instead of being shed — admission already happened at the
// edge of the cluster.
func (s *Server) evaluate(req Request, key string, internal bool) func(context.Context) (*Result, error) {
	return func(fctx context.Context) (*Result, error) {
		acquire := s.sched.acquire
		if internal {
			acquire = s.sched.acquireInternal
		}
		release, err := acquire(fctx)
		if err != nil {
			return nil, err
		}
		gauge("serve_queue_depth").Set(s.sched.Pending())
		defer func() {
			release()
			gauge("serve_queue_depth").Set(s.sched.Pending())
		}()

		ctx, cancel := context.WithTimeout(fctx, req.Timeout(s.cfg.BaseTimeout))
		defer cancel()
		s.stats.Simulations.Add(1)
		counter("serve_simulations").Inc(0)
		start := time.Now()
		var buf bytes.Buffer
		if err := s.exec(ctx, &buf, req, s.cfg.Jobs); err != nil {
			// Deadline errors surface as the flight ctx's state so
			// mapError can distinguish timeout from client cancel.
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				err = ctx.Err()
			}
			return nil, err
		}
		histogram("serve_sim_ns").Observe(0, uint64(time.Since(start)))
		res := &Result{
			ID:         key,
			Experiment: req.Experiment,
			Archs:      req.Archs,
			Seed:       req.Seed,
			Output:     buf.String(),
			SimMS:      float64(time.Since(start)) / float64(time.Millisecond),
		}
		s.cache.Put(key, res)
		s.storePut(key, res)
		return res, nil
	}
}

// mapError turns an evaluation failure into its HTTP form.
func (s *Server) mapError(err error) *apiError {
	var busy *BusyError
	switch {
	case errors.As(err, &busy):
		s.stats.RejectedBusy.Add(1)
		counter("serve_rejected_busy").Inc(0)
		return &apiError{status: http.StatusTooManyRequests, msg: err.Error(), retryAfter: busy.RetryAfter}
	case errors.Is(err, ErrDraining):
		s.stats.RejectedDraining.Add(1)
		counter("serve_rejected_draining").Inc(0)
		return &apiError{status: http.StatusServiceUnavailable, msg: err.Error(), retryAfter: time.Second}
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.Errors.Add(1)
		counter("serve_errors").Inc(0)
		return &apiError{status: http.StatusGatewayTimeout, msg: "evaluation deadline exceeded"}
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the log, not the client.
		return &apiError{status: 499, msg: "request canceled"}
	default:
		s.stats.Errors.Add(1)
		counter("serve_errors").Inc(0)
		return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// Handler returns the HTTP API:
//
//	POST /v1/experiments     evaluate one request, or a JSON array of them
//	GET  /v1/results/{id}    re-fetch a cached result by content address
//	GET  /v1/arches          servable experiments, arches, and aliases
//	GET  /healthz            process liveness (always 200 while serving)
//	GET  /readyz             503 once draining, 200 otherwise
//	GET  /metrics            telemetry snapshot (JSON; ?format=text)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/arches", s.handleArches)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"status": "ready"}
		if s.rtr != nil {
			body["node"] = s.rtr.Self().ID
			body["peers"] = s.rtr.Health()
		}
		if s.sched.Draining() {
			body["status"] = "draining"
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.Handle("GET /metrics", telemetry.MetricsHandler())
	return mux
}

// maxBodyBytes bounds request bodies; experiment requests are tiny.
const maxBodyBytes = 1 << 20

// batchItem is one element of a batch response: the Result on success,
// or the error with its would-be HTTP status (and retry hint for 429).
type batchItem struct {
	*Result
	Error        string `json:"error,omitempty"`
	Status       int    `json:"status,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		histogram("serve_latency_ns").Observe(0, uint64(time.Since(start)))
	}()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "reading body: " + err.Error()})
		return
	}
	if s.sched.Draining() {
		// Reject before decoding: a draining server should not accept
		// new work it would only 503 one layer down.
		s.stats.Requests.Add(1)
		s.stats.RejectedDraining.Add(1)
		counter("serve_rejected_draining").Inc(0)
		writeError(w, &apiError{status: http.StatusServiceUnavailable, msg: ErrDraining.Error(), retryAfter: time.Second})
		return
	}
	// The loop guard: a request forwarded by a peer is answered locally
	// no matter what this node's ring says, so proxying is single-hop.
	forwarded := r.Header.Get(cluster.ForwardedHeader) != ""
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		s.handleBatch(w, r, trimmed, forwarded)
		return
	}
	var req Request
	if err := decodeStrict(trimmed, &req); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	res, aerr := s.doRouted(r.Context(), req, forwarded)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleBatch evaluates a JSON array of requests concurrently —
// identical items coalesce onto one simulation — and responds 200 with
// per-item results or errors in submission order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, body []byte, forwarded bool) {
	var reqs []Request
	if err := decodeStrict(body, &reqs); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	if len(reqs) == 0 {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "empty batch"})
		return
	}
	items := make([]batchItem, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, aerr := s.doRouted(r.Context(), req, forwarded)
			if aerr != nil {
				items[i] = batchItem{Error: aerr.msg, Status: aerr.status, RetryAfterMS: aerr.retryAfter.Milliseconds()}
				return
			}
			items[i] = batchItem{Result: res}
		}(i, req)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok := s.cache.Get(id)
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "unknown or evicted result id"})
		return
	}
	counter("serve_cache_hits").Inc(0)
	out := *res
	out.Cached = true
	writeJSON(w, http.StatusOK, &out)
}

func (s *Server) handleArches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"arches":      archAll,
		"aliases":     map[string][]string{"all": archAll, "amd": archAMD},
		"experiments": Experiments(),
	})
}

// decodeStrict unmarshals JSON rejecting unknown fields, so a typoed
// option fails loudly instead of silently meaning "default" (and
// silently splitting the cache key space).
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("decoding request: trailing data after JSON value")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		secs := int64(e.retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.status, map[string]any{"error": e.msg, "status": e.status})
}

// counter / gauge / histogram look up a metric on the process hub.
// Nil-safe by construction: with telemetry disabled they return the
// no-op handles, so the serving path needs no enabled/disabled branch.
func counter(name string) *telemetry.Counter {
	return telemetry.Active().Registry().Counter(name)
}

func gauge(name string) *telemetry.Gauge {
	return telemetry.Active().Registry().Gauge(name)
}

func histogram(name string) *telemetry.Histogram {
	return telemetry.Active().Registry().Histogram(name)
}
