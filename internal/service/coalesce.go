package service

import (
	"context"
	"sync"
)

// flight is one in-progress evaluation that any number of identical
// requests may be waiting on. refs counts the waiters (the leader is
// waiter zero); when the last one disconnects the execution context is
// cancelled, so a simulation nobody is waiting for stops burning a
// scheduler slot.
type flight struct {
	done   chan struct{}
	res    *Result
	err    error
	refs   int
	cancel context.CancelFunc
}

// flightGroup coalesces concurrent identical requests: the first caller
// for a key becomes the leader and runs fn once; every caller that
// arrives with the same key before fn returns waits on the same flight
// and receives the same result. Unlike x/sync singleflight, the
// function runs on a context owned by the *flight*, not the leader —
// the leader disconnecting must not kill an evaluation other waiters
// still want, and only the last waiter leaving cancels it.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// Do returns the result of fn for key, running it at most once across
// concurrent callers. shared reports whether this caller joined an
// existing flight (i.e. its answer cost zero additional simulations).
// If ctx ends before the flight completes, the caller gets ctx's error;
// the flight itself is cancelled only when no waiters remain.
//
// One benign race is accepted: a caller that joins in the instant after
// the last previous waiter cancelled the flight (but before fn
// returned) observes the cancelled flight's error instead of starting a
// fresh one. The window is a few instructions wide and the caller can
// simply retry.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (*Result, error)) (res *Result, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.refs++
		g.mu.Unlock()
		return g.wait(ctx, f, true)
	}
	// The flight context deliberately descends from Background, not
	// ctx: the evaluation outlives any individual waiter and dies only
	// via its own cancel (last waiter gone) or fn's internal deadline.
	//phantomvet:ignore ctxflow deliberate detach: the flight's lifetime is its waiter refcount, not any single caller
	execCtx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		res, err := fn(execCtx)
		g.mu.Lock()
		f.res, f.err = res, err
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, f, false)
}

// wait blocks until the flight resolves or the caller's ctx ends,
// maintaining the waiter refcount.
func (g *flightGroup) wait(ctx context.Context, f *flight, shared bool) (*Result, bool, error) {
	select {
	case <-f.done:
		return f.res, shared, f.err
	case <-ctx.Done():
	}
	g.mu.Lock()
	f.refs--
	abandoned := f.refs == 0
	g.mu.Unlock()
	if abandoned {
		f.cancel()
	}
	return nil, shared, ctx.Err()
}
