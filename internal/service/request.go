// Package service is the experiment-serving subsystem: a long-running
// HTTP JSON API (cmd/phantom-server) that answers the same questions as
// the one-shot phantom CLI — Tables 1-5, Figures 6-7, the Section 7
// chain, the full report — from one shared, always-warm evaluation
// engine.
//
// The simulator is fully deterministic for a given (experiment, arch,
// seed, options) tuple, which the service turns into throughput three
// ways:
//
//   - a content-addressed result cache: the canonical hash of a
//     normalized request is the result's identity, so any client asking
//     an already-answered question gets the bytes back without a
//     simulation (LRU + byte-budget eviction, see Cache);
//   - singleflight coalescing: N concurrent identical requests cost one
//     simulation, with the execution context kept alive until the last
//     interested waiter disconnects (see flightGroup);
//   - a bounded scheduler: at most Workers simulations run at once and
//     at most QueueDepth more may wait; beyond that the server sheds
//     load with 429 + Retry-After instead of queueing unboundedly (see
//     scheduler).
//
// Served output is byte-identical to the CLI's stdout for the same
// request — both front ends render through Execute — and the whole
// subsystem reports into the process telemetry hub (request counters,
// queue-depth gauge, cache hits/misses, latency histograms) under the
// same no-perturbation invariant as the rest of the harness.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"time"

	"phantom"
)

// Request names one experiment evaluation. The zero value of every
// optional field means "the experiment's documented default" — the same
// defaults the CLI flags carry — so semantically equal requests
// normalize, and therefore hash, identically.
type Request struct {
	// Experiment is the experiment name, exactly as the CLI spells it:
	// table1, fig6, fig7, covert, kaslr, physmap, physaddr, mds,
	// mitigations, sls, chain, report.
	Experiment string `json:"experiment"`
	// Archs lists microarchitectures by name, or the aliases "all" /
	// "amd". Empty means the experiment's default set. Order and
	// duplicates are not semantic: normalization dedupes and sorts into
	// the paper's canonical order, which is also the order served
	// output renders in.
	Archs []string `json:"archs,omitempty"`
	// Seed is the simulation seed; 0 means the experiment's default
	// (1, except fig7's 9 — the CLI defaults).
	Seed int64 `json:"seed,omitempty"`
	// Trials is Table 1's per-cell trial count (table1 only); 0 = 6.
	Trials int `json:"trials,omitempty"`
	// Noise is Table 1's noise level (table1 only); 0 = lab conditions.
	Noise float64 `json:"noise,omitempty"`
	// Bits is the covert-channel message size (covert, report); 0 =
	// 4096 for covert, 1024 for report.
	Bits int `json:"bits,omitempty"`
	// Runs is the reboot/run count for the multi-run experiments
	// (covert, kaslr, physmap, physaddr, mds, report); 0 = the
	// experiment default.
	Runs int `json:"runs,omitempty"`
	// Bytes is the MDS leak size (mds only); 0 = 4096.
	Bytes int `json:"bytes,omitempty"`
	// Samples is Figure 7's independent-collision count (fig7 only);
	// 0 = 22.
	Samples int `json:"samples,omitempty"`
}

// experimentDef drives normalization: which fields an experiment
// consumes, their defaults, and how heavy one evaluation is.
type experimentDef struct {
	// defaultArchs is the CLI's -arch default, already canonical. Nil
	// means the experiment takes no arch list (physaddr, report).
	defaultArchs []string
	defaultSeed  int64
	// usesX gates + defaults: a field an experiment does not consume is
	// forced to zero by Normalize so it cannot split the cache.
	trials, noise  bool
	defaultRuns    int // 0 = experiment takes no runs field
	defaultBits    int
	defaultBytes   int
	defaultSamples int
	// timeoutWeight scales the server's per-experiment deadline (see
	// Config.BaseTimeout): heavier experiments get proportionally more.
	timeoutWeight int
	// separable marks experiments whose Execute path renders each arch
	// independently with identical options, so a multi-arch request is
	// byte-identical to its per-arch sub-requests concatenated in
	// canonical order. The cluster tier fans these out across peers;
	// anything else routes as one unit.
	separable bool
}

// experiments is the catalog of servable experiments. Defaults mirror
// the CLI flag defaults exactly; the parity tests depend on that.
var experiments = map[string]experimentDef{
	"table1":      {defaultArchs: archAll, defaultSeed: 1, trials: true, noise: true, timeoutWeight: 2, separable: true},
	"fig6":        {defaultArchs: []string{"zen2", "zen4"}, defaultSeed: 1, timeoutWeight: 1},
	"fig7":        {defaultArchs: []string{"zen3"}, defaultSeed: 9, defaultSamples: 22, timeoutWeight: 4},
	"covert":      {defaultArchs: archAMD, defaultSeed: 1, defaultRuns: 10, defaultBits: 4096, timeoutWeight: 3},
	"kaslr":       {defaultArchs: []string{"zen2", "zen3", "zen4"}, defaultSeed: 1, defaultRuns: 20, timeoutWeight: 3},
	"physmap":     {defaultArchs: []string{"zen1", "zen2"}, defaultSeed: 1, defaultRuns: 10, timeoutWeight: 3},
	"physaddr":    {defaultSeed: 1, defaultRuns: 20, timeoutWeight: 4},
	"mds":         {defaultArchs: []string{"zen2"}, defaultSeed: 1, defaultRuns: 10, defaultBytes: 4096, timeoutWeight: 4, separable: true},
	"mitigations": {defaultArchs: archAMD, defaultSeed: 1, timeoutWeight: 2, separable: true},
	"sls":         {defaultArchs: archAll, defaultSeed: 1, timeoutWeight: 2},
	"chain":       {defaultArchs: []string{"zen2"}, defaultSeed: 1, timeoutWeight: 3, separable: true},
	"report":      {defaultSeed: 1, defaultRuns: 10, defaultBits: 1024, timeoutWeight: 10},
}

var (
	archAll = archNames(phantom.AllMicroarchs())
	archAMD = archNames(phantom.AMDMicroarchs())
	// archOrder is the paper's canonical arch order, the order Normalize
	// sorts into and served output renders in.
	archOrder = func() map[string]int {
		m := make(map[string]int, len(archAll))
		for i, a := range archAll {
			m[a] = i
		}
		return m
	}()
)

func archNames(archs []phantom.Microarch) []string {
	out := make([]string, len(archs))
	for i, a := range archs {
		out[i] = string(a)
	}
	return out
}

// Experiments lists the servable experiment names in sorted order (the
// /v1/arches handler and usage texts).
func Experiments() []string {
	out := make([]string, 0, len(experiments))
	for name := range experiments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Normalize validates req and returns its canonical form: aliases
// expanded, duplicates dropped, archs in paper order, every
// experiment-relevant zero field replaced by its documented default and
// every irrelevant field forced to zero. Two requests that would render
// the same output normalize to the same value, so Key — and the content
// address of the result — is well defined.
func (r Request) Normalize() (Request, error) {
	def, ok := experiments[r.Experiment]
	if !ok {
		return Request{}, fmt.Errorf("unknown experiment %q", r.Experiment)
	}
	n := Request{Experiment: r.Experiment}

	if def.defaultArchs == nil {
		if len(r.Archs) != 0 {
			return Request{}, fmt.Errorf("experiment %q takes no arch list", r.Experiment)
		}
	} else if len(r.Archs) == 0 {
		n.Archs = append([]string(nil), def.defaultArchs...)
	} else {
		archs, err := expandArchs(r.Archs)
		if err != nil {
			return Request{}, err
		}
		n.Archs = archs
	}

	n.Seed = r.Seed
	if n.Seed == 0 {
		n.Seed = def.defaultSeed
	}
	if def.trials {
		n.Trials = r.Trials
		if n.Trials == 0 {
			n.Trials = 6
		}
	}
	if def.noise {
		n.Noise = r.Noise
	}
	if def.defaultRuns > 0 {
		n.Runs = r.Runs
		if n.Runs == 0 {
			n.Runs = def.defaultRuns
		}
	}
	if def.defaultBits > 0 {
		n.Bits = r.Bits
		if n.Bits == 0 {
			n.Bits = def.defaultBits
		}
	}
	if def.defaultBytes > 0 {
		n.Bytes = r.Bytes
		if n.Bytes == 0 {
			n.Bytes = def.defaultBytes
		}
	}
	if def.defaultSamples > 0 {
		n.Samples = r.Samples
		if n.Samples == 0 {
			n.Samples = def.defaultSamples
		}
	}
	for _, f := range []struct {
		name string
		bad  bool
	}{
		{"trials", n.Trials < 0}, {"noise", n.Noise < 0}, {"bits", n.Bits < 0},
		{"runs", n.Runs < 0}, {"bytes", n.Bytes < 0}, {"samples", n.Samples < 0},
	} {
		if f.bad {
			return Request{}, fmt.Errorf("negative %s", f.name)
		}
	}
	return n, nil
}

// expandArchs resolves aliases, validates names, dedupes, and sorts
// into canonical order.
func expandArchs(specs []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(names ...string) {
		for _, a := range names {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	for _, s := range specs {
		switch s {
		case "all":
			add(archAll...)
		case "amd":
			add(archAMD...)
		default:
			if _, ok := archOrder[s]; !ok {
				return nil, fmt.Errorf("unknown microarchitecture %q", s)
			}
			add(s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return archOrder[out[i]] < archOrder[out[j]] })
	return out, nil
}

// microarchs converts a normalized arch list back to the typed form.
func microarchs(names []string) []phantom.Microarch {
	out := make([]phantom.Microarch, len(names))
	for i, a := range names {
		out[i] = phantom.Microarch(a)
	}
	return out
}

// Key is the content address of a normalized request: the hex SHA-256
// of its canonical encoding. Call it on Normalize's result only —
// hashing a raw request would let two spellings of the same question
// land in different cache slots.
func (r Request) Key() string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeU64 := func(v uint64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], v)
		h.Write(n[:])
	}
	writeStr(r.Experiment)
	writeU64(uint64(len(r.Archs)))
	for _, a := range r.Archs {
		writeStr(a)
	}
	writeU64(uint64(r.Seed))
	writeU64(uint64(r.Trials))
	writeU64(math.Float64bits(r.Noise))
	writeU64(uint64(r.Bits))
	writeU64(uint64(r.Runs))
	writeU64(uint64(r.Bytes))
	writeU64(uint64(r.Samples))
	return hex.EncodeToString(h.Sum(nil))
}

// Timeout returns the per-experiment execution deadline given the
// server's base timeout: heavier experiments (fig7's solver, the full
// report) get proportionally longer before the scheduler cancels them.
func (r Request) Timeout(base time.Duration) time.Duration {
	w := experiments[r.Experiment].timeoutWeight
	if w <= 0 {
		w = 1
	}
	return base * time.Duration(w)
}
