package service

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// benchPost issues one POST and drains the response; any non-200 fails
// the benchmark (a shed or error would make the timing meaningless).
func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// benchCluster boots a 2-node stub cluster and returns the entry node's
// URL plus one warm request body per ownership class: one key the entry
// node owns (answered from its own cache) and one its peer owns
// (answered via a proxy hop into the peer's cache). The pair isolates
// the cost of the hop itself — same serving path, same payload size,
// one extra loopback round trip.
func benchCluster(b *testing.B) (url, localBody, proxiedBody string) {
	nodes := newCluster(b, 2, false, nil)
	avoid := map[int64]bool{}
	localBody = fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seedOwnedBy(b, nodes[0].srv.rtr, "n1", avoid))
	proxiedBody = fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seedOwnedBy(b, nodes[0].srv.rtr, "n2", avoid))
	url = nodes[0].url()
	benchPost(b, url, localBody)
	benchPost(b, url, proxiedBody)
	return url, localBody, proxiedBody
}

// BenchmarkServeLocalWarm is the baseline: a warm request POSTed to
// its owner, answered from the in-memory cache with no cluster hop.
func BenchmarkServeLocalWarm(b *testing.B) {
	url, localBody, _ := benchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, url, localBody)
	}
}

// BenchmarkServeProxiedWarm is the same request shape POSTed to the
// non-owner: one consistent-hash lookup plus one loopback proxy hop to
// the owner's cache. The delta against BenchmarkServeLocalWarm is the
// price of shard routing.
func BenchmarkServeProxiedWarm(b *testing.B) {
	url, _, proxiedBody := benchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, url, proxiedBody)
	}
}
