package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestExecuteAllExperiments smoke-runs every servable experiment at
// tiny scale through the shared rendering engine and sanity-checks the
// text each one produces. Correctness of the numbers is pinned by the
// package tests and goldens; this test is about the serving surface —
// every catalog entry must actually execute and render.
func TestExecuteAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cases := []struct {
		req  Request
		want string // substring the rendering must contain
	}{
		{Request{Experiment: "table1", Archs: []string{"zen2"}, Trials: 2}, "Table 1"},
		{Request{Experiment: "fig6", Archs: []string{"zen2"}, Seed: 1}, "offset"},
		{Request{Experiment: "fig7", Archs: []string{"zen3"}, Seed: 9, Samples: 22}, "BTB"},
		{Request{Experiment: "covert", Archs: []string{"zen2"}, Bits: 16, Runs: 1}, "Table 2"},
		{Request{Experiment: "kaslr", Archs: []string{"zen2"}, Runs: 1}, "Table 3"},
		{Request{Experiment: "physmap", Archs: []string{"zen1"}, Runs: 1}, "Table 4"},
		{Request{Experiment: "physaddr", Runs: 1}, "Table 5"},
		{Request{Experiment: "mds", Archs: []string{"zen2"}, Runs: 1, Bytes: 64}, "MDS"},
		{Request{Experiment: "mitigations", Archs: []string{"zen1"}}, "mitigation"},
		{Request{Experiment: "sls", Archs: []string{"zen1"}}, "Straight-line speculation"},
		{Request{Experiment: "chain", Archs: []string{"zen2"}}, "Full exploit chain"},
		{Request{Experiment: "report", Runs: 1, Bits: 16}, "Phantom reproduction report"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := Execute(context.Background(), &buf, c.req, 0); err != nil {
			t.Errorf("%s: %v", c.req.Experiment, err)
			continue
		}
		if out := buf.String(); !strings.Contains(strings.ToLower(out), strings.ToLower(c.want)) {
			t.Errorf("%s: rendering does not mention %q:\n%s", c.req.Experiment, c.want, out)
		}
	}
}

// TestExecuteCancellationPropagates checks ctx reaches the experiment
// layer: a cancelled context aborts mid-experiment rather than running
// to completion.
func TestExecuteCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	// physaddr takes ~500ms at runs=1; a 5ms deadline must cut it off.
	err := Execute(ctx, &buf, Request{Experiment: "physaddr", Runs: 1}, 0)
	if err == nil {
		t.Fatal("Execute ran to completion under an expired deadline")
	}
	if ctx.Err() == nil {
		t.Fatal("test bug: deadline never fired")
	}
}
