package service

import (
	"context"
	"sync"
	"testing"
)

// benchRequest is a real (simulated) but small evaluation: Table 1 on
// one arch with reduced trials.
func benchRequest() Request {
	return Request{Experiment: "table1", Archs: []string{"zen2"}, Trials: 2}
}

// BenchmarkServeTable1_Cold measures the miss path: every iteration
// pays for a full simulation into a fresh cache.
func BenchmarkServeTable1_Cold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewServer(Config{Workers: 1, Jobs: 1})
		res, aerr := s.do(context.Background(), benchRequest())
		if aerr != nil {
			b.Fatal(aerr)
		}
		if res.Cached || res.Coalesced {
			b.Fatalf("cold request served warm: %+v", res)
		}
	}
}

// BenchmarkServeTable1_Warm measures the hit path: the content-
// addressed cache answers without simulating. The acceptance bar is
// warm ≥ 50× faster than cold; in practice it is orders of magnitude.
func BenchmarkServeTable1_Warm(b *testing.B) {
	s := NewServer(Config{Workers: 1, Jobs: 1})
	if _, aerr := s.do(context.Background(), benchRequest()); aerr != nil {
		b.Fatal(aerr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, aerr := s.do(context.Background(), benchRequest())
		if aerr != nil {
			b.Fatal(aerr)
		}
		if !res.Cached {
			b.Fatal("warm request missed the cache")
		}
	}
}

// BenchmarkServeTable1_Coalesced measures 8 concurrent identical
// requests against a fresh server: the flight group must collapse them
// to one simulation, so per-iteration cost stays near the cold cost
// instead of 8× it.
func BenchmarkServeTable1_Coalesced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewServer(Config{Workers: 2, QueueDepth: 16, Jobs: 1})
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, aerr := s.do(context.Background(), benchRequest()); aerr != nil {
					b.Error(aerr)
				}
			}()
		}
		wg.Wait()
		if sims := s.Stats().Simulations.Load(); sims != 1 {
			b.Fatalf("8 concurrent identical requests ran %d simulations, want 1", sims)
		}
	}
}
