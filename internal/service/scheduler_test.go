package service

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestSchedulerAcquireCtxCancel(t *testing.T) {
	s := newScheduler(1, 4)
	rel, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second acquire is admitted (queue has room) but blocks on the
	// single slot; its ctx cancelling must unwind the admission.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.acquire(ctx); err == nil {
		t.Fatal("acquire succeeded with a cancelled context and no free slot")
	}
	if got := s.Pending(); got != 1 {
		t.Errorf("pending after cancelled acquire = %d, want 1", got)
	}
	rel()
	rel() // release is idempotent
	if got := s.Pending(); got != 0 {
		t.Errorf("pending after release = %d, want 0", got)
	}
}

func TestSchedulerRetryAfterEstimate(t *testing.T) {
	s := newScheduler(2, 0)
	if got := s.retryAfter(); got != time.Second {
		t.Errorf("unseeded retryAfter = %v, want the 1s floor", got)
	}
	s.observe(10 * time.Second)
	s.pending.Store(4) // two waves of two workers
	if got := s.retryAfter(); got < 10*time.Second {
		t.Errorf("retryAfter = %v, want >= one 10s wave", got)
	}
	s.observe(time.Nanosecond) // EWMA decays but stays positive
	if got := s.retryAfter(); got < time.Second {
		t.Errorf("retryAfter = %v, want the 1s floor", got)
	}
}

func TestSchedulerAwaitIdleTimeout(t *testing.T) {
	s := newScheduler(1, 0)
	rel, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.AwaitIdle(ctx); err == nil {
		t.Error("AwaitIdle returned nil with work still pending")
	}
	rel()
	if err := s.AwaitIdle(context.Background()); err != nil {
		t.Errorf("AwaitIdle after release: %v", err)
	}
	if _, err := s.acquire(context.Background()); err != ErrDraining {
		t.Errorf("acquire while draining = %v, want ErrDraining", err)
	}
}

func TestServerAccessorsAndErrors(t *testing.T) {
	s := newTestServer(Config{Workers: 1}, &stubExec{})
	if got := s.QueueDepth(); got != 0 {
		t.Errorf("QueueDepth = %d", got)
	}
	if _, aerr := s.do(context.Background(), Request{Experiment: "fig6"}); aerr != nil {
		t.Fatal(aerr)
	}
	if st := s.CacheStats(); st.Entries != 1 || st.Misses != 1 {
		t.Errorf("CacheStats = %+v", st)
	}
	if _, aerr := s.do(context.Background(), Request{Experiment: "nope"}); aerr == nil || aerr.status != http.StatusBadRequest {
		t.Errorf("invalid request = %+v, want 400", aerr)
	} else if aerr.Error() == "" {
		t.Error("apiError.Error empty")
	}
	// Draining maps to 503 at the do() layer too (flights started just
	// before StartDrain land here rather than at the HTTP gate).
	s.sched.StartDrain()
	if _, aerr := s.do(context.Background(), Request{Experiment: "physmap"}); aerr == nil || aerr.status != http.StatusServiceUnavailable {
		t.Errorf("draining do() = %+v, want 503", aerr)
	}
}
