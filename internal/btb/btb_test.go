package btb

import (
	"math/rand"
	"testing"

	"phantom/internal/isa"
)

const kernelText = uint64(0xffffffff81000000)

func TestZen34PublishedMasksCollide(t *testing.T) {
	s := NewZen34Scheme("zen3")
	for _, mask := range []uint64{Zen34CollisionMaskA, Zen34CollisionMaskB} {
		k := kernelText + 0xf6520
		u := k ^ mask
		if !s.Collides(k, true, u, false) {
			t.Errorf("mask %#x does not collide on %s", mask, s.SchemeName)
		}
		if u>>47 != 0 {
			t.Errorf("mask %#x does not produce a canonical user address: %#x", mask, u)
		}
	}
}

func TestZen34SmallFlipsDoNotCollide(t *testing.T) {
	// The paper's brute force over <= 6 flipped bits failed on Zen 3
	// (Section 6.2). Verify no mask with <= 6 set bits in [12,47] collides.
	s := NewZen34Scheme("zen3")
	k := kernelText + 0x41db60
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200000; trial++ {
		mask := uint64(0)
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			mask |= 1 << uint(12+rng.Intn(36))
		}
		if mask&(1<<47) == 0 {
			continue // user address requires flipping b47
		}
		if s.Collides(k, true, k^mask, false) {
			t.Fatalf("small mask %#x collides; Zen3 scheme too weak", mask)
		}
	}
}

func TestZen12MaskCollides(t *testing.T) {
	s := NewZen12Scheme("zen2")
	k := kernelText + 0x1234
	u := k ^ Zen12CollisionMask ^ 0xffff000000000000
	if !s.Collides(k, true, u, false) {
		t.Fatal("Zen12CollisionMask does not collide")
	}
}

func TestIntelNoCrossPrivCollision(t *testing.T) {
	s := NewIntelScheme("intel")
	k := kernelText + 0x4000
	// Even an identical address does not collide across privilege.
	if s.Collides(k, true, k, false) {
		t.Fatal("Intel scheme reuses predictions across privilege")
	}
	if _, ok := CrossPrivAliasMask(s); ok {
		t.Fatal("CrossPrivAliasMask should not exist for Intel scheme")
	}
}

func TestCrossPrivAliasMaskDerivation(t *testing.T) {
	for _, mk := range []struct {
		name string
		s    *Scheme
	}{
		{"zen12", NewZen12Scheme("zen12")},
		{"zen34", NewZen34Scheme("zen34")},
	} {
		mask, ok := CrossPrivAliasMask(mk.s)
		if !ok {
			t.Fatalf("%s: no cross-priv mask found", mk.name)
		}
		if mask&(1<<47) == 0 {
			t.Fatalf("%s: mask %#x does not flip b47", mk.name, mask)
		}
		k := kernelText + 0xabc000
		if !mk.s.Collides(k, true, k^mask, false) {
			t.Fatalf("%s: derived mask %#x does not collide", mk.name, mask)
		}
		if (k^mask)>>47 != 0 {
			t.Fatalf("%s: derived mask %#x does not canonicalize", mk.name, mask)
		}
	}
}

func TestSamePrivAliasMask(t *testing.T) {
	for _, s := range []*Scheme{
		NewZen12Scheme("zen12"), NewZen34Scheme("zen34"), NewIntelScheme("intel"),
	} {
		mask, ok := SamePrivAliasMask(s)
		if !ok {
			t.Fatalf("%s: no same-priv mask", s.SchemeName)
		}
		if mask == 0 || mask&(1<<47) != 0 || mask&0xfff != 0 {
			t.Fatalf("%s: bad mask %#x", s.SchemeName, mask)
		}
		a := uint64(0x555500000000) | 0x6a0
		if !s.Collides(a, false, a^mask, false) {
			t.Fatalf("%s: same-priv mask %#x does not collide", s.SchemeName, mask)
		}
	}
}

func TestSchemeIndexIsLinear(t *testing.T) {
	// Property: Index(a) XOR Index(b) == Index(a XOR b) XOR Index(0) for
	// linear forms (Index(0) == 0 here).
	s := NewZen34Scheme("zen34")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := rng.Uint64() & (1<<48 - 1)
		b := rng.Uint64() & (1<<48 - 1)
		if s.Index(a)^s.Index(b) != s.Index(a^b) {
			t.Fatalf("index not linear at %#x, %#x", a, b)
		}
	}
}

func TestBTBTrainingClassDeterminesPrediction(t *testing.T) {
	// The central Phantom mechanism: an entry trained by a jmp* imposes
	// jmp* semantics at any aliasing lookup address.
	b := New(NewZen12Scheme("zen2"), 2)
	src := uint64(0x400000)
	target := uint64(0x500000)
	b.Update(src, false, isa.BrJmpInd, target)

	pred, ok := b.Lookup(src, false)
	if !ok {
		t.Fatal("no prediction after training")
	}
	if pred.Class != isa.BrJmpInd || pred.Target != target {
		t.Fatalf("pred = %+v", pred)
	}

	// Aliased address sees the same prediction.
	alias := src ^ Zen12CollisionMask
	pred, ok = b.Lookup(alias, false)
	if !ok {
		t.Fatal("aliased lookup missed")
	}
	if pred.Class != isa.BrJmpInd || pred.Target != target {
		t.Fatalf("aliased pred = %+v", pred)
	}

	// Non-aliased address sees nothing.
	if _, ok := b.Lookup(src^0x1000, false); ok {
		t.Fatal("non-aliased lookup hit")
	}
}

func TestBTBDirectTargetsArePCRelative(t *testing.T) {
	// Section 5.2: direct branch targets are served PC-relative, so an
	// aliased victim's predicted target is shifted by the same delta —
	// the reason Figure 5A probes C' = B + (C - A).
	b := New(NewZen12Scheme("zen2"), 2)
	src := uint64(0x400000)
	target := src + 0x2000
	b.Update(src, false, isa.BrJmp, target)

	alias := src ^ Zen12CollisionMask
	pred, ok := b.Lookup(alias, false)
	if !ok {
		t.Fatal("aliased lookup missed")
	}
	want := alias + 0x2000
	if pred.Target != want {
		t.Fatalf("aliased direct target = %#x, want %#x", pred.Target, want)
	}
}

func TestBTBRetClassHasNoTarget(t *testing.T) {
	b := New(NewZen12Scheme("zen2"), 2)
	b.Update(0x400000, false, isa.BrRet, 0x1234)
	pred, ok := b.Lookup(0x400000, false)
	if !ok || pred.Class != isa.BrRet {
		t.Fatalf("pred = %+v ok=%v", pred, ok)
	}
	if pred.Target != 0 {
		t.Fatalf("ret-class prediction carries a BTB target %#x", pred.Target)
	}
}

func TestBTBNonBranchNeverTrains(t *testing.T) {
	b := New(NewZen12Scheme("zen2"), 2)
	b.Update(0x400000, false, isa.BrNone, 0x500000)
	if _, ok := b.Lookup(0x400000, false); ok {
		t.Fatal("BrNone created a BTB entry")
	}
	if b.Occupancy() != 0 {
		t.Fatal("occupancy nonzero")
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	b := New(NewZen12Scheme("zen2"), 2)
	base := uint64(0x400000)
	// Three same-set addresses: base, base^mask and base^(other nullspace
	// element). Build the third by combining two independent aliasing
	// masks if available; otherwise synthesize via SamePrivAliasMask.
	m1, ok := SamePrivAliasMask(b.Scheme())
	if !ok {
		t.Skip("no same-priv alias mask")
	}
	a1, a2 := base, base^m1
	b.Update(a1, false, isa.BrJmpInd, 0x111000)
	b.Update(a2, false, isa.BrJmpInd, 0x222000)
	// Both fit in the 2 ways.
	if _, ok := b.Lookup(a1, false); !ok {
		t.Fatal("a1 evicted prematurely")
	}
	if _, ok := b.Lookup(a2, false); !ok {
		t.Fatal("a2 missing")
	}
	b.FlushAll()
	if b.Occupancy() != 0 {
		t.Fatal("FlushAll left entries")
	}
}

func TestRSBLIFOAndWrap(t *testing.T) {
	r := NewRSB(4)
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i) * 0x100)
	}
	// Capacity 4: entries 3..6 live; pops come newest-first.
	for want := 6; want >= 3; want-- {
		got, ok := r.Pop()
		if !ok || got != uint64(want)*0x100 {
			t.Fatalf("Pop = %#x ok=%v, want %#x", got, ok, want*0x100)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop from drained RSB succeeded")
	}
}

func TestRSBStuffing(t *testing.T) {
	r := NewRSB(8)
	r.Fill(0xdead0000)
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != 0xdead0000 {
			t.Fatalf("stuffed pop %d = %#x ok=%v", i, v, ok)
		}
	}
}

func TestPHTSaturatingTraining(t *testing.T) {
	p := NewPHT(10)
	pc, bhb := uint64(0x400123), uint64(0)
	if p.Predict(pc, bhb) {
		t.Fatal("fresh PHT predicts taken")
	}
	p.Update(pc, bhb, true)
	p.Update(pc, bhb, true)
	if !p.Predict(pc, bhb) {
		t.Fatal("PHT not taken after two taken updates")
	}
	// One not-taken should not flip a saturated counter.
	p.Update(pc, bhb, true)
	p.Update(pc, bhb, false)
	if !p.Predict(pc, bhb) {
		t.Fatal("saturated counter flipped by single not-taken")
	}
}

func TestBHBChangesWithHistory(t *testing.T) {
	var b1, b2 BHB
	b1.Record(0x400000, 0x401000)
	b2.Record(0x400000, 0x402000)
	if b1.Value() == b2.Value() {
		t.Fatal("different edges produced identical history")
	}
	b1.Clear()
	if b1.Value() != 0 {
		t.Fatal("Clear did not zero history")
	}
}

func TestBHBTaggedMultiTargetEntries(t *testing.T) {
	// Section 2.1: with history tags, one branch source serves multiple
	// targets, selected by the current BHB fingerprint.
	s := NewZen12Scheme("bhi")
	s.BHBTagBits = 8
	b := New(s, 4)
	src := uint64(0x400000)
	histA, histB := uint64(0x1111), uint64(0x2222)
	if s.FoldBHB(histA) == s.FoldBHB(histB) {
		t.Skip("histories fold to the same tag; pick others")
	}
	b.UpdateBHB(src, false, isa.BrJmpInd, 0xaaa000, histA)
	b.UpdateBHB(src, false, isa.BrJmpInd, 0xbbb000, histB)

	pa, ok := b.LookupBHB(src, false, histA)
	if !ok || pa.Target != 0xaaa000 {
		t.Fatalf("history A: %+v ok=%v", pa, ok)
	}
	pb, ok := b.LookupBHB(src, false, histB)
	if !ok || pb.Target != 0xbbb000 {
		t.Fatalf("history B: %+v ok=%v", pb, ok)
	}
	// An unseen history selects neither entry.
	if _, ok := b.LookupBHB(src, false, 0x9999); ok && s.FoldBHB(0x9999) != s.FoldBHB(histA) && s.FoldBHB(0x9999) != s.FoldBHB(histB) {
		t.Fatal("unseen history matched an entry")
	}
}

func TestDefaultSchemesIgnoreBHB(t *testing.T) {
	// The evaluated parts are modeled history-insensitive: the paper's
	// exploits train and fire under different histories.
	b := New(NewZen12Scheme("zen2"), 2)
	b.UpdateBHB(0x400000, false, isa.BrJmpInd, 0xccc000, 0xdeadbeef)
	if _, ok := b.LookupBHB(0x400000, false, 0x12345678); !ok {
		t.Fatal("history sensitivity leaked into a default scheme")
	}
}
