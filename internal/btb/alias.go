package btb

import "phantom/internal/gf2"

// constraintMatrix assembles the full set of linear forms two addresses
// must agree on to share a BTB slot under s, plus unit constraints pinning
// the low tag bits (which enter the tag verbatim and therefore can never
// be flipped in an aliasing mask).
func constraintMatrix(s *Scheme) *gf2.Matrix {
	m := gf2.NewMatrix(48)
	for _, f := range s.IndexForms {
		m.AddRow(f)
	}
	for _, f := range s.TagForms {
		m.AddRow(f)
	}
	for b := 0; b < s.LowTagBits; b++ {
		m.AddRow(gf2.Vec(1) << uint(b))
	}
	return m
}

// SamePrivAliasMask returns a nonzero XOR mask d such that va and va^d
// collide in the BTB within one privilege mode, with bit 47 clear so the
// aliased address stays on the same side of the canonical address split.
// ok is false when the scheme admits no such mask.
//
// Attackers use this to lay out the training snippet A and victim snippet
// B of the observation-channel experiments (Figure 4: h(A) = h(B)).
func SamePrivAliasMask(s *Scheme) (uint64, bool) {
	m := constraintMatrix(s)
	m.AddRow(gf2.Vec(1) << 47) // forbid flipping the privilege half
	for _, v := range m.Nullspace() {
		if v != 0 {
			return uint64(v), true
		}
	}
	return 0, false
}

// CrossPrivAliasMask returns an XOR mask d with bit 47 set (extended
// through bits 63:48 for canonical sign extension) such that a kernel
// address K and the user address K^d collide in the BTB. ok is false when
// no such mask exists — notably on the Intel scheme, whose tags include
// the privilege mode, matching the paper's finding that user-injected
// predictions are not reused in kernel mode on Intel parts (Section 6).
//
// On the Zen 3/4 scheme this returns a 12-bit-flip mask equivalent to the
// published 0xffffbff800000000 / 0xffff8003ff800000 patterns.
func CrossPrivAliasMask(s *Scheme) (uint64, bool) {
	if s.PrivilegeInTag {
		return 0, false
	}
	basis := constraintMatrix(s).Nullspace()
	// Any nullspace element with b47 set works; combining two b47
	// elements clears it, so scan the basis first, then pairs.
	for _, v := range basis {
		if v&(1<<47) != 0 {
			return uint64(v) | 0xffff000000000000, true
		}
	}
	return 0, false
}
