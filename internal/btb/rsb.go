package btb

// RSB is the Return Stack Buffer (also called Return Address Stack): a
// circular stack of the N most recent call sites used to predict return
// targets without waiting for the architectural stack load (paper
// Section 2.1). When a victim instruction is predicted as a return —
// because the BTB entry was trained by a ret — the frontend steers to the
// RSB top, which the paper notes sends speculation "to the most recent
// call site" rather than to C (Section 5.2, "Training using ret").
type RSB struct {
	entries []uint64
	top     int // index of the next push slot
	depth   int // number of live entries, capped at capacity
}

// NewRSB returns an RSB with the given capacity (16 or 32 on the modeled
// parts).
func NewRSB(capacity int) *RSB {
	return &RSB{entries: make([]uint64, capacity)}
}

// Capacity returns the RSB size.
func (r *RSB) Capacity() int { return len(r.entries) }

// Depth returns the number of live entries.
func (r *RSB) Depth() int { return r.depth }

// Push records a return address at a call.
func (r *RSB) Push(retAddr uint64) {
	r.entries[r.top] = retAddr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false when the RSB is empty
// (underflow; some real parts then fall back to the BTB, which is its own
// attack surface [73] — the simulator just reports no prediction).
func (r *RSB) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], true
}

// Peek returns the would-be prediction without consuming it.
func (r *RSB) Peek() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	idx := (r.top - 1 + len(r.entries)) % len(r.entries)
	return r.entries[idx], true
}

// Fill overwrites every entry with the given dummy target — RSB stuffing,
// one of the software defenses discussed in Section 2.4.
func (r *RSB) Fill(dummy uint64) {
	for i := range r.entries {
		r.entries[i] = dummy
	}
	r.depth = len(r.entries)
	r.top = 0
}

// Clear empties the RSB.
func (r *RSB) Clear() {
	r.depth = 0
	r.top = 0
}
