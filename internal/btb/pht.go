package btb

// PHT is a pattern history table of 2-bit saturating counters predicting
// conditional-branch direction, indexed by the branch PC hashed with the
// global branch history. The MDS-gadget exploit (Section 7.4) trains the
// kernel's bounds-check jcc to predict taken, which is plain conditional
// misprediction — this table provides it.
type PHT struct {
	counters []uint8
	mask     uint64
}

// NewPHT returns a PHT with 2^indexBits counters initialized to weakly
// not-taken (1).
func NewPHT(indexBits int) *PHT {
	n := 1 << uint(indexBits)
	p := &PHT{counters: make([]uint8, n), mask: uint64(n - 1)}
	for i := range p.counters {
		p.counters[i] = 1
	}
	return p
}

func (p *PHT) index(pc, bhb uint64) uint64 {
	// Indexed by the low PC bits only. Real parts fold global history in
	// as well; this model keeps direction prediction purely PC-local so
	// that branches sharing a page offset share a counter — the aliasing
	// that lets user-space jcc training set the direction seen at a
	// colliding victim (the BTB's XOR functions ignore the low 12 bits,
	// so colliding addresses always share the counter here).
	_ = bhb
	return pc & p.mask
}

// Predict returns the predicted direction for the branch at pc under the
// given history.
func (p *PHT) Predict(pc, bhb uint64) bool {
	return p.counters[p.index(pc, bhb)] >= 2
}

// Update trains the counter with the architectural outcome.
func (p *PHT) Update(pc, bhb uint64, taken bool) {
	i := p.index(pc, bhb)
	c := p.counters[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.counters[i] = c
}

// BHB is the branch history buffer: a folded shift register of recent
// control-flow edges used to index the PHT (and, on real parts, the BTB
// tag selection — see Section 2.1). The fold keeps 64 bits of rolling
// history.
type BHB struct {
	value uint64
}

// Value returns the current history fingerprint.
func (b *BHB) Value() uint64 { return b.value }

// Record folds one taken control-flow edge into the history.
func (b *BHB) Record(src, dst uint64) {
	footprint := (src >> 2) ^ (dst << 7) ^ (dst >> 19)
	b.value = (b.value<<5 | b.value>>59) ^ footprint
}

// Clear zeroes the history (context switch barrier).
func (b *BHB) Clear() { b.value = 0 }
