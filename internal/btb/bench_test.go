package btb

import (
	"testing"

	"phantom/internal/isa"
)

func BenchmarkLookupHit(b *testing.B) {
	bt := New(NewZen34Scheme("bench"), 2)
	bt.Update(0x400000, false, isa.BrJmpInd, 0x500000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Lookup(0x400000, false)
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	bt := New(NewZen34Scheme("bench"), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Lookup(uint64(i)<<12, false)
	}
}

func BenchmarkSchemeIndex(b *testing.B) {
	s := NewZen34Scheme("bench")
	for i := 0; i < b.N; i++ {
		s.Index(uint64(i) * 0x1357)
	}
}
