package btb

import "sort"

// This file gives every predictor structure a StateDigest: a 64-bit
// FNV-1a hash over its *prediction-relevant* contents. The differential
// search (internal/search) compares digests between a mispredict-on and
// a mispredict-off run of the same program to detect predictor-state
// divergence — wrong-path BTB lookups refresh entry recency (LookupBHB
// bumps lru on a hit), so speculation that never retires still moves
// replacement state, exactly the class of side effect the Canella
// taxonomy files under "microarchitectural state the transient path
// touched".
//
// Digests hash recency as *rank within a set* (0 = most recent), never
// raw tick values: two machines that performed a different number of
// lookups but would replace the same victims must digest identically.

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// StateDigest hashes every valid BTB entry with its set index, fields,
// and LRU rank. Iteration is sorted by set index so the map's range
// order never leaks into the digest.
func (b *BTB) StateDigest() uint64 {
	idxs := make([]uint32, 0, len(b.sets))
	for idx := range b.sets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	h := uint64(fnvOffset)
	for _, idx := range idxs {
		set := b.sets[idx]
		// Rank the ways of this set by recency (ties broken by way
		// number, which is deterministic because ticks are unique).
		order := make([]int, 0, len(set))
		for w := range set {
			if set[w].valid {
				order = append(order, w)
			}
		}
		if len(order) == 0 {
			continue
		}
		sort.Slice(order, func(i, j int) bool {
			return set[order[i]].lru > set[order[j]].lru
		})
		h = fnv1a(h, uint64(idx))
		for rank, w := range order {
			e := &set[w]
			h = fnv1a(h, uint64(rank))
			h = fnv1a(h, e.tag)
			h = fnv1a(h, e.bhbTag)
			h = fnv1a(h, uint64(e.class))
			h = fnv1a(h, uint64(e.delta))
			h = fnv1a(h, e.target)
			if e.kernel {
				h = fnv1a(h, 1)
			} else {
				h = fnv1a(h, 0)
			}
		}
	}
	return h
}

// StateDigest hashes the live RSB entries in pop order plus the depth.
func (r *RSB) StateDigest() uint64 {
	h := uint64(fnvOffset)
	h = fnv1a(h, uint64(r.depth))
	for i := 0; i < r.depth; i++ {
		idx := (r.top - 1 - i + len(r.entries)*2) % len(r.entries)
		h = fnv1a(h, r.entries[idx])
	}
	return h
}

// StateDigest hashes the full direction-counter array.
func (p *PHT) StateDigest() uint64 {
	h := uint64(fnvOffset)
	for _, c := range p.counters {
		h = fnv1a(h, uint64(c))
	}
	return h
}

// StateDigest hashes the folded global history.
func (b *BHB) StateDigest() uint64 {
	return fnv1a(fnvOffset, b.value)
}
