package btb

import (
	"testing"

	"phantom/internal/isa"
)

// TestBTBDigestRankNotTicks pins the digest's core contract: recency is
// hashed as rank within a set, never as raw tick values. Two BTBs whose
// sets would evict the same victims must digest identically even when
// one performed more lookups.
func TestBTBDigestRankNotTicks(t *testing.T) {
	mk := func(extraLookups int) *BTB {
		b := New(NewZen12Scheme("zen2"), 2)
		b.Update(0x400000, false, isa.BrJmpInd, 0x500000)
		b.Update(0x410000, false, isa.BrJmp, 0x414000)
		for i := 0; i < extraLookups; i++ {
			// Repeated hits on the same entry bump its tick but cannot
			// change any set's recency ranking.
			if _, ok := b.Lookup(0x400000, false); !ok {
				t.Fatal("trained entry missed")
			}
		}
		return b
	}
	few, many := mk(1), mk(25)
	if few.StateDigest() != many.StateDigest() {
		t.Fatal("digest depends on raw lookup ticks, not recency rank")
	}
}

// TestBTBDigestSeesRecencyReorder: a wrong-path lookup that refreshes
// the colder way of a full set reorders replacement and must change the
// digest — that reordering is exactly the predictor-state divergence
// the differential search detects.
func TestBTBDigestSeesRecencyReorder(t *testing.T) {
	// Two addresses in the same set with *different* tags, so they
	// occupy two ways (an aliasing-mask pair would share a tag and
	// collapse into one entry).
	s := NewZen12Scheme("zen2")
	base := uint64(0x400000)
	var other uint64
	for va := base + 0x1000; va < base+(1<<32); va += 0x1000 {
		if s.Index(va) == s.Index(base) && s.Tag(va, false) != s.Tag(base, false) {
			other = va
			break
		}
	}
	if other == 0 {
		t.Fatal("no same-set different-tag address found")
	}
	mk := func() *BTB {
		b := New(NewZen12Scheme("zen2"), 2)
		b.Update(base, false, isa.BrJmpInd, 0x111000)
		b.Update(other, false, isa.BrJmpInd, 0x222000)
		return b
	}
	plain := mk()
	touched := mk()
	// Refresh the older way: recency order flips within the set.
	if _, ok := touched.Lookup(base, false); !ok {
		t.Fatal("first-trained entry missed")
	}
	if plain.StateDigest() == touched.StateDigest() {
		t.Fatal("digest blind to a recency reorder within a set")
	}
}

func TestBTBDigestSeesContents(t *testing.T) {
	a := New(NewZen12Scheme("zen2"), 2)
	b := New(NewZen12Scheme("zen2"), 2)
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("empty BTBs digest differently")
	}
	a.Update(0x400000, false, isa.BrJmpInd, 0x500000)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest blind to an installed entry")
	}
	b.Update(0x400000, false, isa.BrJmpInd, 0x500040)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest blind to the entry target")
	}
	a.FlushAll()
	b.FlushAll()
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("flushed BTBs digest differently")
	}
}

func TestBTBDigestPrivilegeTagged(t *testing.T) {
	a := New(NewZen12Scheme("zen2"), 2)
	b := New(NewZen12Scheme("zen2"), 2)
	a.Update(0x400000, false, isa.BrJmpInd, 0x500000)
	b.Update(0x400000, true, isa.BrJmpInd, 0x500000)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest blind to the kernel bit")
	}
}

// TestRSBDigestPopOrder: the digest walks live entries in pop order, so
// it distinguishes stacks with the same multiset of values in different
// orders, ignores dead slots, and survives wraparound.
func TestRSBDigestPopOrder(t *testing.T) {
	a, b := NewRSB(4), NewRSB(4)
	a.Push(0x100)
	a.Push(0x200)
	b.Push(0x200)
	b.Push(0x100)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest blind to RSB order")
	}

	// Same live state reached with and without wraparound.
	c, d := NewRSB(4), NewRSB(4)
	for i := 1; i <= 6; i++ {
		c.Push(uint64(i) * 0x100) // wraps: live = 600,500,400,300
	}
	for i := 3; i <= 6; i++ {
		d.Push(uint64(i) * 0x100)
	}
	if c.StateDigest() != d.StateDigest() {
		t.Fatal("digest depends on dead slots or wrap position")
	}

	// Popping changes the digest (depth is part of the state).
	before := c.StateDigest()
	if _, ok := c.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if c.StateDigest() == before {
		t.Fatal("digest blind to a pop")
	}
}

func TestPHTDigest(t *testing.T) {
	a, b := NewPHT(10), NewPHT(10)
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("fresh PHTs digest differently")
	}
	a.Update(0x400000, 0, true)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest blind to a counter update")
	}
	b.Update(0x400000, 0, true)
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("identical update sequences digest differently")
	}
}

func TestBHBDigest(t *testing.T) {
	a, b := &BHB{}, &BHB{}
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("fresh BHBs digest differently")
	}
	a.Record(0x400000, 0x500000)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest blind to recorded history")
	}
	a.Clear()
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("cleared BHB digests differently from fresh")
	}
}
