package btb

import (
	"fmt"

	"phantom/internal/isa"
)

// Prediction is what the BTB hands the frontend for a fetch address:
// the branch class recorded at training time and the predicted target.
// For return-class predictions the target comes from the RSB instead and
// Target is zero here.
type Prediction struct {
	Class isa.BranchClass
	// Target is the predicted branch target. Direct-class entries store a
	// source-relative delta (paper Section 5.2: "the branch predictor
	// serves direct branch targets as PC-relative"), so for an aliased
	// victim the target is victimVA + (trainTarget - trainVA), which is
	// why Figure 5A probes C' = B + (C - A).
	Target uint64
	// TrainedKernel is the privilege mode of the context that created the
	// entry. AutoIBRS compares it with the current mode (Section 6.3).
	TrainedKernel bool
}

type entry struct {
	valid  bool
	tag    uint64
	bhbTag uint64 // folded history tag (schemes with BHBTagBits > 0)
	class  isa.BranchClass
	delta  int64  // direct classes: target - source
	target uint64 // indirect classes: absolute target
	kernel bool   // privilege at training time
	lru    uint64
}

// BTB is the branch target buffer: Sets() × ways entries addressed through
// a Scheme.
type BTB struct {
	scheme *Scheme
	ways   int
	// sets allocate lazily: the index space is large (function bits plus
	// low PC bits) and sparsely used. Set slices are carved from arena in
	// ways-sized runs so that populating thousands of sets (KASLR sweeps
	// touch a new index per probe slot) costs one allocation per chunk
	// instead of one per set.
	sets  map[uint32][]entry
	arena []entry
	tick  uint64

	// Lookups and Hits count queries for diagnostics.
	Lookups uint64
	Hits    uint64
}

// New returns an empty BTB with the given scheme and associativity.
func New(s *Scheme, ways int) *BTB {
	return &BTB{scheme: s, ways: ways, sets: make(map[uint32][]entry)}
}

// arenaChunkSets is how many sets one arena allocation backs.
const arenaChunkSets = 8

// set returns the (lazily created) entry group for an index.
func (b *BTB) set(idx uint32) []entry {
	s := b.sets[idx]
	if s == nil {
		if len(b.arena) < b.ways {
			b.arena = make([]entry, b.ways*arenaChunkSets)
		}
		s = b.arena[:b.ways:b.ways]
		b.arena = b.arena[b.ways:]
		b.sets[idx] = s
	}
	return s
}

// Scheme returns the indexing scheme.
func (b *BTB) Scheme() *Scheme { return b.scheme }

// Lookup queries the BTB for a branch-source address in the given privilege
// mode. A hit yields the prediction that the frontend will act on *before*
// the bytes at va are decoded. For history-tagged schemes use LookupBHB.
func (b *BTB) Lookup(va uint64, kernel bool) (Prediction, bool) {
	return b.LookupBHB(va, kernel, 0)
}

// LookupBHB is Lookup with an explicit branch-history fingerprint, which
// history-tagged schemes (Scheme.BHBTagBits > 0) fold into entry
// selection; other schemes ignore it.
func (b *BTB) LookupBHB(va uint64, kernel bool, bhb uint64) (Prediction, bool) {
	b.Lookups++
	set := b.set(b.scheme.Index(va))
	tag := b.scheme.Tag(va, kernel)
	bhbTag := b.scheme.FoldBHB(bhb)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag && e.bhbTag == bhbTag {
			b.Hits++
			b.tick++
			e.lru = b.tick
			p := Prediction{Class: e.class, TrainedKernel: e.kernel}
			switch e.class {
			case isa.BrJmp, isa.BrJcc, isa.BrCall:
				p.Target = va + uint64(e.delta)
			case isa.BrJmpInd, isa.BrCallInd:
				p.Target = e.target
			case isa.BrRet:
				// Target served by the RSB.
			}
			return p, true
		}
	}
	return Prediction{}, false
}

// Update installs or refreshes the entry for a branch executed at va in the
// given privilege mode. target is the architectural target the branch
// actually took this time. For history-tagged schemes use UpdateBHB.
func (b *BTB) Update(va uint64, kernel bool, class isa.BranchClass, target uint64) {
	b.UpdateBHB(va, kernel, class, target, 0)
}

// UpdateBHB is Update with an explicit branch-history fingerprint.
func (b *BTB) UpdateBHB(va uint64, kernel bool, class isa.BranchClass, target uint64, bhb uint64) {
	if class == isa.BrNone {
		return
	}
	set := b.set(b.scheme.Index(va))
	tag := b.scheme.Tag(va, kernel)
	bhbTag := b.scheme.FoldBHB(bhb)
	b.tick++
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag && e.bhbTag == bhbTag {
			victim = i
			break
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < set[victim].lru {
			victim = i
		}
	}
	e := &set[victim]
	*e = entry{
		valid:  true,
		tag:    tag,
		bhbTag: bhbTag,
		class:  class,
		kernel: kernel,
		lru:    b.tick,
	}
	switch class {
	case isa.BrJmp, isa.BrJcc, isa.BrCall:
		e.delta = int64(target) - int64(va)
	case isa.BrJmpInd, isa.BrCallInd:
		e.target = target
	}
}

// Evict removes the entry matching va/kernel if present (used by targeted
// "untraining" in tests).
func (b *BTB) Evict(va uint64, kernel bool) {
	set := b.set(b.scheme.Index(va))
	tag := b.scheme.Tag(va, kernel)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = entry{}
		}
	}
}

// FlushAll invalidates every entry — the semantics this simulator gives
// IBPB, which on the modeled parts flushes all prediction types
// (Section 8.2: "if IBPB flushes all types of predictions, it mitigates
// all our exploitation primitives").
func (b *BTB) FlushAll() {
	b.sets = make(map[uint32][]entry)
	b.arena = nil // old chunks alias flushed sets; start clean
}

// Occupancy returns the number of valid entries (diagnostics).
func (b *BTB) Occupancy() int {
	n := 0
	for _, set := range b.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

func (b *BTB) String() string {
	return fmt.Sprintf("BTB(%s, %d sets x %d ways, %d valid)",
		b.scheme.SchemeName, b.scheme.Sets(), b.ways, b.Occupancy())
}
