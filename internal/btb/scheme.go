// Package btb models the branch prediction structures of the simulated
// CPUs: the Branch Target Buffer with per-microarchitecture XOR-folded
// index and tag functions, the Return Stack Buffer, the Branch History
// Buffer, and a pattern history table for conditional direction prediction.
//
// The BTB is the heart of Phantom: entries record the *branch class of the
// training instruction* along with the target, and the frontend consumes
// predictions before decoding the instruction at the lookup address, so an
// aliased entry imposes the trainer's semantics on arbitrary victim bytes
// (paper Sections 2.1, 5.2). Cross-privilege aliasing is governed by the
// index/tag functions, which for Zen 3/4 are the XOR functions the paper
// reverse engineers in Section 6.2 / Figure 7.
package btb

import (
	"math/bits"

	"phantom/internal/gf2"
)

// Scheme computes the BTB set index and tag for a branch-source virtual
// address. kernel reports the privilege mode of the executing context.
type Scheme struct {
	// SchemeName identifies the scheme in diagnostics.
	SchemeName string
	// IndexForms are linear forms over VA bits; form i produces index bit i.
	IndexForms []gf2.Vec
	// TagForms are additional linear forms folded into the tag. Together
	// with the low VA bits they decide whether two same-index addresses
	// share an entry.
	TagForms []gf2.Vec
	// LowTagBits is how many low VA bits are included verbatim in the tag
	// (the paper's Zen 3 analysis pins the low 12 bits, which take part in
	// entry selection directly).
	LowTagBits int
	// PrivilegeInTag mixes the privilege mode into the tag, preventing any
	// cross-privilege reuse — the behaviour the paper observed on Intel
	// parts ("the Intel processors we tested do not re-use a user-injected
	// prediction in kernel mode", Section 6).
	PrivilegeInTag bool
	// BHBTagBits, when nonzero, folds that many bits of the global branch
	// history into the entry tag, letting one branch source serve
	// multiple targets selected by history — the Section 2.1 behaviour
	// ("BTB entries can serve multiple targets ... the BPU selects the
	// target by matching a tag of the current BHB with the tag from one
	// of the targets" [8]). The evaluated parts are modeled without it
	// (the paper's AMD exploits need no history matching); it exists for
	// BHI-style [8] experimentation.
	BHBTagBits int
}

// FoldBHB compresses a 64-bit history fingerprint into the scheme's BHB
// tag width. Zero when the scheme does not use history tags.
func (s *Scheme) FoldBHB(bhb uint64) uint64 {
	if s.BHBTagBits <= 0 {
		return 0
	}
	f := bhb ^ bhb>>17 ^ bhb>>31 ^ bhb>>47
	return f & (1<<uint(s.BHBTagBits) - 1)
}

// Index returns the BTB set index of va: the XOR-folded high-bit
// functions (the part the paper reverse engineers, which governs
// cross-address aliasing) concatenated with the branch's address bits
// [11:4], so that dense code spreads across sets as on real parts. The
// extra bits lie inside the low-12 window that every aliasing experiment
// pins (and that the tag also contains verbatim), so they never change
// whether two aliasing-candidate addresses collide.
func (s *Scheme) Index(va uint64) uint32 {
	var idx uint32
	for i, f := range s.IndexForms {
		idx |= uint32(parity(va&uint64(f))) << uint(i)
	}
	return idx | uint32((va>>4)&0xff)<<uint(len(s.IndexForms))
}

// Tag returns the BTB tag of va in the given privilege mode.
func (s *Scheme) Tag(va uint64, kernel bool) uint64 {
	tag := va & (1<<uint(s.LowTagBits) - 1)
	for i, f := range s.TagForms {
		tag |= uint64(parity(va&uint64(f))) << uint(s.LowTagBits+i)
	}
	if s.PrivilegeInTag && kernel {
		tag |= 1 << 63
	}
	return tag
}

// Sets returns the number of BTB sets the index addresses (function bits
// plus the eight low PC bits).
func (s *Scheme) Sets() int { return 1 << uint(len(s.IndexForms)+8) }

// Collides reports whether two (address, privilege) branch sources share a
// BTB entry slot under this scheme. This is the ground truth the reverse
// engineering experiments rediscover through the microarchitectural
// channel.
func (s *Scheme) Collides(va1 uint64, k1 bool, va2 uint64, k2 bool) bool {
	return s.Index(va1) == s.Index(va2) && s.Tag(va1, k1) == s.Tag(va2, k2)
}

func parity(x uint64) uint {
	return uint(bits.OnesCount64(x) & 1)
}

// form builds a gf2.Vec from bit positions.
func form(bitsList ...int) gf2.Vec {
	var v gf2.Vec
	for _, b := range bitsList {
		v |= 1 << uint(b)
	}
	return v
}

// Zen34Functions returns the twelve cross-privilege index functions of AMD
// Zen 3/4 exactly as published in Figure 7 of the paper:
//
//	f0 = b47⊕b35⊕b23         f1 = b47⊕b36⊕b24⊕b12
//	f2 = b47⊕b37⊕b25⊕b13     f3 = b47⊕b38⊕b26⊕b14
//	f4 = b47⊕b39⊕b26⊕b13     f5 = b47⊕b39⊕b27⊕b15
//	f6 = b47⊕b40⊕b28⊕b16     f7 = b47⊕b41⊕b29⊕b17
//	f8 = b47⊕b42⊕b30⊕b18     f9 = b47⊕b43⊕b31⊕b19
//	f10 = b47⊕b44⊕b32⊕b20    f11 = b47⊕b45⊕b33⊕b21
func Zen34Functions() []gf2.Vec {
	return []gf2.Vec{
		form(47, 35, 23),
		form(47, 36, 24, 12),
		form(47, 37, 25, 13),
		form(47, 38, 26, 14),
		form(47, 39, 26, 13),
		form(47, 39, 27, 15),
		form(47, 40, 28, 16),
		form(47, 41, 29, 17),
		form(47, 42, 30, 18),
		form(47, 43, 31, 19),
		form(47, 44, 32, 20),
		form(47, 45, 33, 21),
	}
}

// Zen34TagOverlap returns the partially-overlapping tag functions the paper
// infers on Zen 3/4: b12 pairs with b16 and b13 with b17 ("whenever b13 is
// toggled ... b17 is toggled as well"), which is why collisions must be
// created by flipping the *higher* bits of each function.
//
// A third function covers the bits absent from every published form (b22,
// b34, b46). The paper notes that some functions eluded discovery
// ("potentially because they do not involve bit 47" / "use address bits we
// did not consider"); something must cover these bits on real parts,
// because Table 3's Zen 3 exploit distinguishes kernel images two
// 2 MiB slots apart (addresses differing only in b22) with 100% accuracy.
// Both published collision masks leave b22/b34/b46 untouched, so the extra
// function is consistent with every published observation.
func Zen34TagOverlap() []gf2.Vec {
	return []gf2.Vec{
		form(12, 16),
		form(13, 17),
		form(22, 34, 46),
	}
}

// NewZen34Scheme returns the Zen 3 / Zen 4 BTB scheme. Both published
// collision masks hold:
//
//	K ⊕ 0xffffbff800000000  (flips b47 and b35..b45)
//	K ⊕ 0xffff8003ff800000  (flips b47 and b23..b33)
func NewZen34Scheme(name string) *Scheme {
	return &Scheme{
		SchemeName: name,
		IndexForms: Zen34Functions(),
		TagForms:   Zen34TagOverlap(),
		LowTagBits: 12,
	}
}

// NewZen12Scheme returns the Zen 1 / Zen 2 BTB scheme used by this
// simulator: a three-way XOR fold for the index,
//
//	idx_i = b(12+i) ⊕ b(24+i) ⊕ b(36+i)   i = 0..11
//
// and a two-way fold for the upper tag,
//
//	tag_j = b(12+j) ⊕ b(30+j)             j = 0..11.
//
// These are simulator stand-ins consistent with the Retbleed-era finding
// that user/kernel collisions on Zen 1/2 exist within a handful of bit
// flips: K ⊕ 0x800820020000 (flips b47, b35, b29, b17) collides, which a
// brute-force search over <=6 flipped bits finds quickly — unlike Zen 3/4,
// whose masks flip 12 bits and defeat that search (Section 6.2).
func NewZen12Scheme(name string) *Scheme {
	idx := make([]gf2.Vec, 12)
	tag := make([]gf2.Vec, 12)
	for i := 0; i < 12; i++ {
		idx[i] = form(12+i, 24+i, 36+i)
		tag[i] = form(12+i, 30+i)
	}
	return &Scheme{
		SchemeName: name,
		IndexForms: idx,
		TagForms:   tag,
		LowTagBits: 12,
	}
}

// Zen12CollisionMask is a user/kernel aliasing mask for the Zen 1/2 scheme
// (see NewZen12Scheme).
const Zen12CollisionMask = uint64(0x800820020000)

// Zen34CollisionMaskA and Zen34CollisionMaskB are the two collision masks
// the paper publishes for Zen 3 (and confirms on Zen 4).
const (
	Zen34CollisionMaskA = uint64(0xffffbff800000000)
	Zen34CollisionMaskB = uint64(0xffff8003ff800000)
)

// NewIntelScheme returns the scheme used for the simulated Intel parts: a
// two-way XOR fold with the privilege mode mixed into the tag, so
// user-mode training can never hit a kernel-mode lookup regardless of
// eIBRS — matching the paper's observation that exploitation on Intel is
// complicated by privilege-dependent BTB addressing.
func NewIntelScheme(name string) *Scheme {
	idx := make([]gf2.Vec, 12)
	for i := 0; i < 12; i++ {
		idx[i] = form(12+i, 25+i)
	}
	tag := make([]gf2.Vec, 8)
	for j := 0; j < 8; j++ {
		tag[j] = form(12+j, 21+j, 38+j)
	}
	return &Scheme{
		SchemeName:     name,
		IndexForms:     idx,
		TagForms:       tag,
		LowTagBits:     12,
		PrivilegeInTag: true,
	}
}
