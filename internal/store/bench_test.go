package store

import (
	"fmt"
	"testing"
)

// The store's unit economics: Put is one buffer build + pwrite, Get is
// one index lookup + pread + CRC. Both are archived by `make
// bench-cluster` so the persistence layer's overhead stays visible
// next to the serving numbers it protects.

// benchValue approximates a small rendered experiment result.
var benchValue = make([]byte, 4096)

func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.SetBytes(int64(len(benchValue)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("bench-key-%09d", i), benchValue); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 1024
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%09d", i)
		if err := s.Put(keys[i], benchValue); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(benchValue)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(keys[i%n]); !ok {
			b.Fatal("bench key missing")
		}
	}
}
