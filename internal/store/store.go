// Package store is the durable half of the serving tier: an
// append-only, segmented on-disk result store keyed by request hash.
//
// The simulator is deterministic and the service cache is
// content-addressed (the canonical SHA-256 of a normalized request), so
// a result computed once is correct forever. The in-memory LRU loses
// that work at every restart; this package keeps it. phantom-server
// writes through to the store on every locally computed result and
// reads from it before simulating on a cache miss, so a node restarted
// with a warm -store-dir answers previously computed requests without
// running the simulator at all.
//
// # On-disk format
//
// A store directory holds numbered segment files:
//
//	seg-00000001.log
//	seg-00000002.log        <- active (appended to)
//	lock                    <- flock'd while the store is open
//
// Each segment starts with a fixed 16-byte header:
//
//	offset  size  field
//	0       8     magic "PHSTORE\x01"
//	8       4     format version (little-endian uint32, currently 1)
//	12      4     reserved (zero)
//
// followed by length-framed records:
//
//	offset  size  field
//	0       4     CRC32 (IEEE) of the payload
//	4       4     payload length (little-endian uint32)
//	8       n     payload: keyLen uint16 | key | value
//
// Records are never updated in place — results are content-addressed,
// so a key's value can never change — and never deleted in place;
// space is reclaimed by compaction (below).
//
// # Recovery
//
// Open rebuilds the in-memory index by scanning every segment in id
// order. A record whose framing runs past end-of-file is a torn tail
// (the process died mid-append): the segment is truncated back to the
// last intact record and the write path continues from there. A record
// whose framing is intact but whose CRC does not match is skipped and
// counted (Stats.CorruptSkipped); its bytes are treated as dead. Both
// cases are recoveries, not errors — the store holds recomputable
// results, so losing a tail record costs one future simulation, never
// correctness.
//
// # Budget and compaction
//
// Options.Budget bounds total on-disk bytes. When an append pushes the
// store past the budget, the oldest live records are evicted (the
// index is insertion-ordered, so eviction is FIFO) until the live set
// fits comfortably, and the surviving records are rewritten in order
// into a single fresh segment which atomically replaces the old files
// (write to a temp file, fsync, rename, then unlink the old segments).
// A crash anywhere during compaction is safe: the temp file is ignored
// by Open, and the window where old and new segments coexist only
// yields duplicate records, which the scan dedupes.
//
// All methods are safe for concurrent use. The package reads no wall
// clock and iterates no map in any order-sensitive path, so it sits in
// phantom-vet's determinism scope alongside the simulation packages.
package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
)

const (
	headerSize = 16
	recHdrSize = 8 // CRC32 + payload length
	version    = 1
	// maxPayload is a sanity bound on the scanned payload length: a
	// frame claiming more than this is treated as torn, not allocated.
	maxPayload = 1 << 30
)

var magic = [8]byte{'P', 'H', 'S', 'T', 'O', 'R', 'E', 1}

// Options tunes a Store. The zero value of every field means its
// documented default.
type Options struct {
	// SegmentBytes is the rotation target for the active segment;
	// 0 = 8 MiB. Compaction may produce one larger segment — the
	// target bounds the append path, not the rewrite.
	SegmentBytes int64
	// Budget bounds total on-disk bytes across all segments;
	// <= 0 = unlimited. A single record larger than the budget is not
	// stored at all (Stats.Oversize) rather than evicting everything
	// for one entry.
	Budget int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	// Records and the byte gauges describe the current state.
	Records    int
	Segments   int
	LiveBytes  int64 // record bytes reachable through the index
	DeadBytes  int64 // record bytes awaiting compaction
	TotalBytes int64 // everything on disk, headers included

	// Cumulative counters since Open.
	Hits           uint64
	Misses         uint64
	Fills          uint64 // records appended
	DupFills       uint64 // Puts of an already-present key (no-ops)
	Evictions      uint64 // live records dropped by the budget
	Compactions    uint64
	Oversize       uint64 // Puts larger than the whole budget, dropped
	CorruptSkipped uint64 // CRC-mismatched records skipped at scan
	TornTruncated  uint64 // segments truncated at a torn tail
	ReadErrors     uint64 // Get-time read or CRC failures (served as misses)
}

// segment is one on-disk log file.
type segment struct {
	id   int
	path string
	f    *os.File
	size int64 // bytes written, i.e. the append offset
}

// entry locates one live record.
type entry struct {
	key  string
	seg  *segment
	off  int64 // payload offset (after the record header)
	plen uint32
	crc  uint32
}

// recordSize is the on-disk footprint of an entry.
func (e *entry) recordSize() int64 { return recHdrSize + int64(e.plen) }

// Store is the on-disk result store. Construct with Open.
type Store struct {
	dir  string
	opts Options
	lock *os.File

	mu    sync.RWMutex
	segs  []*segment
	index map[string]*list.Element
	order *list.List // front = oldest insertion; Values are *entry
	live  int64
	dead  int64
	total int64

	hits, misses, readErrors                          atomic.Uint64
	fills, dupFills, evictions, compactions, oversize uint64
	corruptSkipped, tornTruncated                     uint64
}

// Open opens (creating if needed) the store rooted at dir, rebuilding
// the index from the segments on disk. The directory is flock'd for
// the lifetime of the store; a second Open of the same directory fails
// rather than interleaving appends.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = lock.Close()
		return nil, fmt.Errorf("store: %s is in use by another process: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		lock:  lock,
		index: make(map[string]*list.Element),
		order: list.New(),
	}
	if err := s.load(); err != nil {
		_ = s.Close()
		return nil, err
	}
	return s, nil
}

// load scans the segment files in id order, recovering torn tails and
// skipping corrupt records, then ensures there is an active segment.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.log"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type idName struct {
		id   int
		name string
	}
	var files []idName
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err == nil && id > 0 {
			files = append(files, idName{id, name})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].id < files[j].id })
	for _, fn := range files {
		f, err := os.OpenFile(fn.name, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		seg := &segment{id: fn.id, path: fn.name, f: f}
		if err := s.scanSegment(seg); err != nil {
			_ = f.Close()
			return err
		}
		s.segs = append(s.segs, seg)
		s.total += seg.size
	}
	if len(s.segs) == 0 {
		if _, err := s.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment rebuilds index entries from one segment, truncating a
// torn tail and skipping (but framing past) corrupt records.
func (s *Store) scanSegment(seg *segment) error {
	fi, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	truncate := func(at int64) error {
		if err := seg.f.Truncate(at); err != nil {
			return fmt.Errorf("store: recovering %s: %w", seg.path, err)
		}
		s.tornTruncated++
		seg.size = at
		return nil
	}
	var hdr [headerSize]byte
	if size < headerSize {
		// Too short to even hold a header: re-stamp it empty.
		if err := writeHeader(seg.f); err != nil {
			return err
		}
		if size != 0 {
			s.tornTruncated++
		}
		seg.size = headerSize
		return nil
	}
	if _, err := seg.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if [8]byte(hdr[:8]) != magic || binary.LittleEndian.Uint32(hdr[8:12]) != version {
		// The header is written once at creation; a mismatch means the
		// file is not ours (or is garbage). Reclaim it.
		if err := seg.f.Truncate(0); err != nil {
			return fmt.Errorf("store: recovering %s: %w", seg.path, err)
		}
		if err := writeHeader(seg.f); err != nil {
			return err
		}
		s.tornTruncated++
		seg.size = headerSize
		return nil
	}

	off := int64(headerSize)
	var rh [recHdrSize]byte
	for off < size {
		if off+recHdrSize > size {
			return truncate(off)
		}
		if _, err := seg.f.ReadAt(rh[:], off); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		crc := binary.LittleEndian.Uint32(rh[0:4])
		plen := binary.LittleEndian.Uint32(rh[4:8])
		if plen < 2 || plen > maxPayload || off+recHdrSize+int64(plen) > size {
			return truncate(off)
		}
		payload := make([]byte, plen)
		if _, err := seg.f.ReadAt(payload, off+recHdrSize); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		next := off + recHdrSize + int64(plen)
		klen := int(binary.LittleEndian.Uint16(payload[0:2]))
		if crc32.ChecksumIEEE(payload) != crc || 2+klen > int(plen) {
			if next == size {
				// A corrupt final record is a torn write, not rot:
				// truncate so the append path reuses the space.
				return truncate(off)
			}
			s.corruptSkipped++
			s.dead += recHdrSize + int64(plen)
			off = next
			continue
		}
		key := string(payload[2 : 2+klen])
		e := &entry{key: key, seg: seg, off: off + recHdrSize, plen: plen, crc: crc}
		if old, ok := s.index[key]; ok {
			// A duplicate (put-after-crash or compaction overlap): the
			// newer copy wins; both are identical by content address.
			oldE := old.Value.(*entry)
			s.live -= oldE.recordSize()
			s.dead += oldE.recordSize()
			old.Value = e
			s.order.MoveToBack(old)
		} else {
			s.index[key] = s.order.PushBack(e)
		}
		s.live += e.recordSize()
		off = next
	}
	seg.size = size
	return nil
}

func writeHeader(f *os.File) error {
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// rotate opens a fresh active segment. Caller holds mu (or is Open).
func (s *Store) rotate() (*segment, error) {
	id := 1
	if n := len(s.segs); n > 0 {
		id = s.segs[n-1].id + 1
	}
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := writeHeader(f); err != nil {
		_ = f.Close()
		return nil, err
	}
	seg := &segment{id: id, path: path, f: f, size: headerSize}
	s.segs = append(s.segs, seg)
	s.total += headerSize
	return seg, nil
}

// Get returns the stored value for key. A read or CRC failure is
// served as a miss (and counted in Stats.ReadErrors): the caller can
// always recompute, so the store never turns disk rot into an error.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	el, ok := s.index[key]
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*entry)
	payload := make([]byte, e.plen)
	_, err := e.seg.f.ReadAt(payload, e.off)
	s.mu.RUnlock()
	if err != nil || crc32.ChecksumIEEE(payload) != e.crc {
		s.readErrors.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	klen := int(binary.LittleEndian.Uint16(payload[0:2]))
	s.hits.Add(1)
	return payload[2+klen:], true
}

// Has reports whether key is present without reading its value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Put appends one record. Re-putting a present key is a counted no-op:
// the store is content-addressed, so the value cannot differ.
func (s *Store) Put(key string, val []byte) error {
	if len(key) > 1<<16-1 {
		return fmt.Errorf("store: key longer than 65535 bytes")
	}
	plen := 2 + len(key) + len(val)
	if plen > maxPayload {
		return fmt.Errorf("store: record payload exceeds %d bytes", maxPayload)
	}
	recSize := int64(recHdrSize + plen)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		s.dupFills++
		return nil
	}
	if s.opts.Budget > 0 && recSize+headerSize > s.opts.Budget {
		s.oversize++
		return nil
	}
	active := s.segs[len(s.segs)-1]
	if active.size+recSize > s.opts.SegmentBytes && active.size > headerSize {
		var err error
		if active, err = s.rotate(); err != nil {
			return err
		}
	}
	buf := make([]byte, recSize)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(plen))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(len(key)))
	copy(buf[10:], key)
	copy(buf[10+len(key):], val)
	crc := crc32.ChecksumIEEE(buf[recHdrSize:])
	binary.LittleEndian.PutUint32(buf[0:4], crc)
	if _, err := active.f.WriteAt(buf, active.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	e := &entry{key: key, seg: active, off: active.size + recHdrSize, plen: uint32(plen), crc: crc}
	active.size += recSize
	s.total += recSize
	s.live += recSize
	s.index[key] = s.order.PushBack(e)
	s.fills++
	if s.opts.Budget > 0 && s.total > s.opts.Budget {
		return s.shrink()
	}
	return nil
}

// shrink brings the store back under budget: evict the oldest live
// records until the live set sits at three quarters of the budget
// (headroom so appends do not re-trigger immediately), then compact.
// Caller holds mu.
func (s *Store) shrink() error {
	target := s.opts.Budget * 3 / 4
	for s.live > target && s.order.Len() > 1 {
		el := s.order.Front()
		e := el.Value.(*entry)
		s.order.Remove(el)
		delete(s.index, e.key)
		s.live -= e.recordSize()
		s.dead += e.recordSize()
		s.evictions++
	}
	return s.compactLocked()
}

// Compact rewrites the live records into a single fresh segment and
// removes the old files, reclaiming dead bytes. The store compacts
// itself when it crosses the budget; this is for explicit callers
// (tests, a future admin endpoint).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	newID := s.segs[len(s.segs)-1].id + 1
	tmpPath := filepath.Join(s.dir, "compact.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cleanup := func(e error) error {
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
		return e
	}
	if err := writeHeader(tmp); err != nil {
		return cleanup(err)
	}
	// Rewrite live records in insertion order, so a post-compaction scan
	// rebuilds the same FIFO eviction order.
	off := int64(headerSize)
	type placed struct {
		el  *list.Element
		off int64
	}
	var placements []placed
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		buf := make([]byte, e.recordSize())
		if _, err := e.seg.f.ReadAt(buf[recHdrSize:], e.off); err != nil {
			return cleanup(fmt.Errorf("store: compact read: %w", err))
		}
		binary.LittleEndian.PutUint32(buf[0:4], e.crc)
		binary.LittleEndian.PutUint32(buf[4:8], e.plen)
		if _, err := tmp.WriteAt(buf, off); err != nil {
			return cleanup(fmt.Errorf("store: compact write: %w", err))
		}
		placements = append(placements, placed{el, off + recHdrSize})
		off += e.recordSize()
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: %w", err))
	}
	newPath := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", newID))
	if err := os.Rename(tmpPath, newPath); err != nil {
		return cleanup(fmt.Errorf("store: %w", err))
	}
	newSeg := &segment{id: newID, path: newPath, f: tmp, size: off}
	for _, p := range placements {
		e := p.el.Value.(*entry)
		e.seg = newSeg
		e.off = p.off
	}
	// The new segment is synced and renamed into place: compaction has
	// committed. A leftover old segment is not harmless, though — the
	// next Open would rescan it and resurrect dead records — so a failed
	// unlink must reach the caller even though the in-memory state is
	// already consistent.
	var rmErr error
	for _, seg := range s.segs {
		_ = seg.f.Close() // old segments were only read; their data is in newSeg
		if err := os.Remove(seg.path); err != nil && rmErr == nil {
			rmErr = fmt.Errorf("store: removing compacted segment: %w", err)
		}
	}
	s.segs = []*segment{newSeg}
	s.dead = 0
	s.total = off
	s.compactions++
	return rmErr
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:        len(s.index),
		Segments:       len(s.segs),
		LiveBytes:      s.live,
		DeadBytes:      s.dead,
		TotalBytes:     s.total,
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Fills:          s.fills,
		DupFills:       s.dupFills,
		Evictions:      s.evictions,
		Compactions:    s.compactions,
		Oversize:       s.oversize,
		CorruptSkipped: s.corruptSkipped,
		TornTruncated:  s.tornTruncated,
		ReadErrors:     s.readErrors.Load(),
	}
}

// Close syncs and closes the segment files and releases the directory
// lock. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segs = nil
	if s.lock != nil {
		_ = syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN) // closing anyway
		if err := s.lock.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.lock = nil
	}
	return firstErr
}
