package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// segPath returns the single segment file of a freshly filled store
// dir (fails if compaction or rotation left more than one).
func segPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(names) != 1 {
		t.Fatalf("segments = %v (err %v), want exactly 1", names, err)
	}
	return names[0]
}

// encodeRecord builds the on-disk bytes for one record, the same
// layout Put writes: [crc][plen][keyLen|key|value].
func encodeRecord(key string, val []byte) []byte {
	plen := 2 + len(key) + len(val)
	buf := make([]byte, recHdrSize+plen)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(plen))
	binary.LittleEndian.PutUint16(buf[8:10], uint16(len(key)))
	copy(buf[10:], key)
	copy(buf[10+len(key):], val)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.ChecksumIEEE(buf[recHdrSize:]))
	return buf
}

// TestOpenOnFilePathFails: the store dir colliding with an existing
// regular file is a loud configuration error, not a silent fallback.
func TestOpenOnFilePathFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open on a file path succeeded")
	}
}

// TestForeignSegmentReclaimed: a seg-*.log whose header is not ours
// (wrong magic) is reclaimed as empty rather than trusted — its bytes
// were never written by this format, so scanning them would be noise.
func TestForeignSegmentReclaimed(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"),
		bytes.Repeat([]byte("garbage!"), 8), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.Records != 0 || st.TornTruncated != 1 {
		t.Fatalf("stats after foreign segment = %+v", st)
	}
	// The reclaimed segment must be appendable again.
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get after reclaim = %q, %v", got, ok)
	}
}

// TestShortSegmentRestamped: a segment shorter than its own header is
// a torn header write; a zero-length file is just a crash before any
// write. Both recover to an empty, usable segment — only the former
// counts as torn.
func TestShortSegmentRestamped(t *testing.T) {
	for _, tc := range []struct {
		name     string
		size     int
		wantTorn uint64
	}{
		{"seven-bytes", 7, 1},
		{"zero-bytes", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"),
				bytes.Repeat([]byte{0xAB}, tc.size), 0o644); err != nil {
				t.Fatal(err)
			}
			s := mustOpen(t, dir, Options{})
			st := s.Stats()
			if st.Records != 0 || st.TornTruncated != tc.wantTorn {
				t.Fatalf("stats = %+v, want 0 records, torn=%d", st, tc.wantTorn)
			}
			if err := s.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStraySegmentNamesIgnored: files matching the glob but not the
// strict seg-<id>.log pattern (or with id 0) are not scanned; they
// belong to no valid segment sequence.
func TestStraySegmentNamesIgnored(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"seg-abc.log", "seg-0.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := mustOpen(t, dir, Options{})
	if st := s.Stats(); st.Records != 0 || st.TornTruncated != 0 || st.Segments != 1 {
		t.Fatalf("stats with stray files = %+v", st)
	}
}

// TestBadFramingTruncatesTail: a record header whose length field is
// nonsense (plen < 2 cannot even hold a key length) ends the scan
// there — everything after an unframeable point is unreachable.
func TestBadFramingTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	fill(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite record 1's plen with 1 (< 2): framing breaks there.
	var plen [4]byte
	binary.LittleEndian.PutUint32(plen[:], 1)
	if _, err := f.WriteAt(plen[:], headerSize+recSize+4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Records != 1 || st.TornTruncated != 1 {
		t.Fatalf("stats after framing break = %+v, want 1 record + 1 torn", st)
	}
	if _, ok := s2.Get("key-0000"); !ok {
		t.Fatal("record before the framing break lost")
	}
	// The truncated tail is reusable.
	if err := s2.Put("after", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("after"); !ok {
		t.Fatal("Put after recovery not readable")
	}
}

// TestValidCRCBadKeyLenSkipped: a record whose checksum passes but
// whose key length runs past the payload is structurally corrupt; with
// a valid record after it, the scan skips it and keeps going instead
// of truncating.
func TestValidCRCBadKeyLenSkipped(t *testing.T) {
	dir := t.TempDir()
	// Hand-build the segment: header + bad record + good record.
	bad := encodeRecord("xx", []byte("vv"))
	// Corrupt the key length to exceed the payload, then re-checksum so
	// only the key-length check can reject it.
	binary.LittleEndian.PutUint16(bad[8:10], uint16(len(bad))) // klen > plen-2
	binary.LittleEndian.PutUint32(bad[0:4], crc32.ChecksumIEEE(bad[recHdrSize:]))
	good := encodeRecord("good-key", []byte("good-val"))

	var file bytes.Buffer
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	file.Write(hdr[:])
	file.Write(bad)
	file.Write(good)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), file.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.Records != 1 || st.CorruptSkipped != 1 || st.TornTruncated != 0 {
		t.Fatalf("stats = %+v, want 1 record, 1 corrupt-skipped, 0 torn", st)
	}
	if got, ok := s.Get("good-key"); !ok || !bytes.Equal(got, []byte("good-val")) {
		t.Fatalf("record after the corrupt one = %q, %v", got, ok)
	}
	if st.DeadBytes != int64(len(bad)) {
		t.Errorf("DeadBytes = %d, want the skipped record's %d", st.DeadBytes, len(bad))
	}
}

// TestDuplicateRecordNewerWins: a duplicate key in the log (a
// put-after-crash replay, or compaction overlap) resolves to the newer
// copy, with the older counted dead.
func TestDuplicateRecordNewerWins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	fill(t, s, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	// Append a duplicate of key-0000 by hand, as a crashed writer that
	// lost its index would have.
	dup := encodeRecord("key-0000", valueFor("key-0000"))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(dup); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Records != 2 || st.DeadBytes != int64(len(dup)) {
		t.Fatalf("stats after duplicate = %+v, want 2 records with one dead copy", st)
	}
	if got, ok := s2.Get("key-0000"); !ok || !bytes.Equal(got, valueFor("key-0000")) {
		t.Fatalf("Get(key-0000) = %q, %v", got, ok)
	}
	// Compaction drops the dead copy; the survivor still reads.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DeadBytes != 0 || st.Records != 2 {
		t.Fatalf("stats after compaction = %+v", st)
	}
}

// TestGetDetectsBitRot: corruption that lands after load (disk rot
// under a live store) is caught by Get's checksum and served as a
// counted miss, never as wrong bytes or an error.
func TestGetDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	fill(t, s, 1)
	// Flip a value byte behind the store's back via a second fd.
	f, err := os.OpenFile(segPath(t, dir), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, headerSize+recSize-1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok := s.Get("key-0000"); ok {
		t.Fatal("Get returned rotted bytes as a hit")
	}
	st := s.Stats()
	if st.ReadErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats after bit rot = %+v, want 1 read error served as miss", st)
	}
}

// TestSegmentRotationAndReopen: a small segment budget forces rotation
// across many files; a reopen rebuilds the full index from all of
// them, and compaction folds them back to one.
func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 4 * recSize})
	keys := fill(t, s, 20)
	if st := s.Stats(); st.Segments < 4 {
		t.Fatalf("%d records in %d segments, want rotation", st.Records, st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 4 * recSize})
	for _, k := range keys {
		if got, ok := s2.Get(k); !ok || !bytes.Equal(got, valueFor(k)) {
			t.Fatalf("Get(%s) after multi-segment reopen = %q, %v", k, got, ok)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Segments != 1 || st.Records != 20 {
		t.Fatalf("stats after compaction = %+v", st)
	}
	for _, k := range keys {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("Get(%s) after compaction missed", k)
		}
	}
}

// TestKeyTooLongRejected: the key length must fit its uint16 frame.
func TestKeyTooLongRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put(string(bytes.Repeat([]byte("k"), 1<<16)), []byte("v")); err == nil {
		t.Fatal("65536-byte key accepted")
	}
}
