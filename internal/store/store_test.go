package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fill writes n deterministic records and returns their keys. Record
// payloads are a fixed 32 bytes so offset arithmetic in the corruption
// tests stays simple.
func fill(t *testing.T, s *Store, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if err := s.Put(keys[i], valueFor(keys[i])); err != nil {
			t.Fatalf("Put(%s): %v", keys[i], err)
		}
	}
	return keys
}

func valueFor(key string) []byte {
	return bytes.Repeat([]byte(key[len(key)-2:]), 16) // 32 bytes
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// recSize is the on-disk footprint of one fill() record:
// 8 header + 2 keyLen + 8 key + 32 value.
const recSize = recHdrSize + 2 + 8 + 32

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	keys := fill(t, s, 10)
	for _, k := range keys {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, valueFor(k)) {
			t.Fatalf("Get(%s) = %q, %v", k, got, ok)
		}
	}
	if _, ok := s.Get("no-such-key"); ok {
		t.Fatal("Get of absent key reported present")
	}
	st := s.Stats()
	if st.Records != 10 || st.Fills != 10 || st.Hits != 10 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := fill(t, s, 25)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if got := s2.Stats().Records; got != 25 {
		t.Fatalf("reopened store has %d records, want 25", got)
	}
	for _, k := range keys {
		if got, ok := s2.Get(k); !ok || !bytes.Equal(got, valueFor(k)) {
			t.Fatalf("after reopen Get(%s) = %q, %v", k, got, ok)
		}
	}
}

// TestCrashSafetyTornTail is the crash model: the process dies with a
// partially appended record. Reopening must recover every complete
// record, drop the torn one, and leave the segment appendable.
func TestCrashSafetyTornTail(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := fill(t, s, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "seg-00000001.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut 5 bytes off the final record: framing intact up to record
	// n-1, record n unreadable.
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Records != n-1 {
		t.Fatalf("recovered %d records, want %d", st.Records, n-1)
	}
	if st.TornTruncated != 1 {
		t.Fatalf("TornTruncated = %d, want 1", st.TornTruncated)
	}
	if _, ok := s2.Get(keys[n-1]); ok {
		t.Fatal("torn record still served")
	}
	for _, k := range keys[:n-1] {
		if got, ok := s2.Get(k); !ok || !bytes.Equal(got, valueFor(k)) {
			t.Fatalf("after recovery Get(%s) = %q, %v", k, got, ok)
		}
	}
	// The write path must continue cleanly from the truncation point.
	if err := s2.Put("post-crash", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("post-crash"); !ok || string(got) != "fresh" {
		t.Fatalf("post-recovery Put round-trip = %q, %v", got, ok)
	}
	// And the re-written record must itself survive a reopen.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	if got, ok := s3.Get("post-crash"); !ok || string(got) != "fresh" {
		t.Fatalf("reopened post-recovery record = %q, %v", got, ok)
	}
}

// TestCrashSafetyTornHeader covers dying before the record header
// finished: fewer than 8 bytes of trailing garbage.
func TestCrashSafetyTornHeader(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	fill(t, s, 3)
	s.Close()

	seg := filepath.Join(dir, "seg-00000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // 3 bytes: not even a frame
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Records != 3 || st.TornTruncated != 1 {
		t.Fatalf("stats after torn header = %+v", st)
	}
}

// TestCorruptRecordSkipped flips a payload byte in a mid-segment
// record: framing is intact, so recovery must skip exactly that record
// (counting it) and keep everything around it.
func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	keys := fill(t, s, 5)
	s.Close()

	seg := filepath.Join(dir, "seg-00000001.log")
	f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Record 2's payload starts at header + 2 records + its own header.
	off := int64(headerSize + 2*recSize + recHdrSize)
	if _, err := f.WriteAt([]byte{0xff}, off+4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Records != 4 {
		t.Fatalf("recovered %d records, want 4", st.Records)
	}
	if st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	if st.TornTruncated != 0 {
		t.Fatalf("TornTruncated = %d, want 0 (framing was intact)", st.TornTruncated)
	}
	if _, ok := s2.Get(keys[2]); ok {
		t.Fatal("corrupt record still served")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if got, ok := s2.Get(keys[i]); !ok || !bytes.Equal(got, valueFor(keys[i])) {
			t.Fatalf("Get(%s) after corruption recovery = %q, %v", keys[i], got, ok)
		}
	}
	if s2.Stats().DeadBytes != recSize {
		t.Fatalf("DeadBytes = %d, want %d (the skipped record)", s2.Stats().DeadBytes, recSize)
	}
}

func TestDuplicatePutIsNoop(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	total := s.Stats().TotalBytes
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DupFills != 1 || st.Fills != 1 || st.TotalBytes != total {
		t.Fatalf("duplicate put stats = %+v", st)
	}
}

// TestBudgetEvictsOldestAndCompacts drives the store well past a small
// budget and checks FIFO eviction plus disk reclamation.
func TestBudgetEvictsOldestAndCompacts(t *testing.T) {
	budget := int64(20 * recSize)
	s := mustOpen(t, t.TempDir(), Options{Budget: budget, SegmentBytes: 4 * recSize})
	keys := fill(t, s, 100)
	st := s.Stats()
	if st.TotalBytes > budget {
		t.Fatalf("TotalBytes %d exceeds budget %d after puts", st.TotalBytes, budget)
	}
	if st.Evictions == 0 || st.Compactions == 0 {
		t.Fatalf("expected evictions and compactions, got %+v", st)
	}
	// FIFO: the survivors are exactly the newest Records keys.
	for _, k := range keys[:len(keys)-st.Records] {
		if s.Has(k) {
			t.Fatalf("old key %s survived eviction while newer ones exist", k)
		}
	}
	for _, k := range keys[len(keys)-st.Records:] {
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, valueFor(k)) {
			t.Fatalf("new key %s missing after compaction", k)
		}
	}
}

func TestOversizeRecordDropped(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Budget: 256})
	if err := s.Put("big", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Oversize != 1 || st.Records != 0 {
		t.Fatalf("oversize stats = %+v", st)
	}
}

func TestExplicitCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 3 * recSize})
	keys := fill(t, s, 10)
	if segs := s.Stats().Segments; segs < 3 {
		t.Fatalf("want several segments before compaction, got %d", segs)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.Compactions != 1 || st.DeadBytes != 0 {
		t.Fatalf("post-compaction stats = %+v", st)
	}
	for _, k := range keys {
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, valueFor(k)) {
			t.Fatalf("Get(%s) after compaction = %q, %v", k, got, ok)
		}
	}
	// Compaction must leave a scannable store behind.
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if got := s2.Stats().Records; got != 10 {
		t.Fatalf("reopen after compaction: %d records, want 10", got)
	}
}

func TestSecondOpenIsLockedOut(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a live store dir succeeded")
	}
}

func TestCloseReleasesLock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

// TestConcurrentAccess exercises the RWMutex paths under -race.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); !ok || string(got) != key {
					t.Errorf("Get(%s) = %q, %v", key, got, ok)
					return
				}
				s.Get(fmt.Sprintf("g%d-i%d", (g+1)%8, i)) // racing cross-reads
			}
		}(g)
	}
	wg.Wait()
	if got := s.Stats().Records; got != 8*50 {
		t.Fatalf("records = %d, want %d", got, 8*50)
	}
}
