package cache

import "testing"

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "b", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 4, Repl: LRU}, nil)
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkAccessMissEvict(b *testing.B) {
	c := New(Config{Name: "b", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 4, Repl: LRU}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 4096) // same set, always missing
	}
}
