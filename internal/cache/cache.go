// Package cache models set-associative caches with pluggable replacement
// policies and indexing schemes. The same structure instantiates the L1
// instruction cache, L1 data cache, shared L2 and the µop cache of the
// simulated machines.
//
// These caches carry all of Phantom's observation channels: transient
// fetch is observed through I-cache state (Prime+Probe / timing), transient
// decode through µop-cache hit/miss counters, and transient execution
// through D-cache state (Prime+Probe on L2, Flush+Reload on shared
// memory) — Figure 3 of the paper.
package cache

import (
	"fmt"
	"math/rand"
)

// ReplacementPolicy selects the victim way on a fill into a full set.
type ReplacementPolicy uint8

// Replacement policies.
const (
	LRU ReplacementPolicy = iota
	TreePLRU
	Random
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TreePLRU:
		return "plru"
	case Random:
		return "random"
	}
	return "policy?"
}

// Indexing selects which address bits pick the set.
type Indexing uint8

// Indexing schemes.
const (
	// PhysIndex uses the physical address (typical L2/LLC).
	PhysIndex Indexing = iota
	// VirtIndex uses the virtual address (µop cache; VIPT L1 behaves
	// identically for 32 KiB/8-way geometries since index bits sit inside
	// the page offset).
	VirtIndex
)

// Config describes one cache.
type Config struct {
	Name       string
	Sets       int // power of two
	Ways       int
	LineSize   int // power of two, bytes
	HitLatency int // cycles for a hit at this level
	Repl       ReplacementPolicy
	Index      Indexing
}

// Lines returns the capacity in lines.
func (c Config) Lines() int { return c.Sets * c.Ways }

// SizeBytes returns the capacity in bytes.
func (c Config) SizeBytes() int { return c.Lines() * c.LineSize }

func (c Config) String() string {
	return fmt.Sprintf("%s: %d KiB, %d sets x %d ways x %dB, %s",
		c.Name, c.SizeBytes()/1024, c.Sets, c.Ways, c.LineSize, c.Repl)
}

type line struct {
	// epoch stamps the FlushAll generation the line was filled under; a
	// line is live iff its epoch matches the cache's. 0 means invalid,
	// so flashing a single line means zeroing its epoch and flushing
	// everything means bumping the cache's — no eager sweep either way.
	epoch uint64
	tag   uint64
	lru   uint64 // higher = more recently used
}

// Cache is one level of set-associative cache. It stores only presence
// metadata (tags), not data — the simulator reads data through physical
// memory; the cache determines latency and observability.
type Cache struct {
	cfg        Config
	sets       [][]line
	plru       []uint64 // tree-PLRU state per set (bits of the tree)
	rng        *rand.Rand
	useCounter uint64
	// epoch is the current FlushAll generation (starts at 1 so the zero
	// line value is never live). Experiments flush entire hierarchies
	// between trials; bumping a counter replaces sweeping every set.
	epoch uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// New returns an empty cache. rng is used by the Random policy (and may be
// nil for other policies).
func New(cfg Config, rng *rand.Rand) *Cache {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.Sets == 0 {
		panic(fmt.Sprintf("cache %s: sets %d not a power of two", cfg.Name, cfg.Sets))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 || cfg.LineSize == 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	c := &Cache{cfg: cfg, rng: rng}
	// One backing array carved into per-set slices: experiment sweeps
	// construct whole machines per configuration, and Sets separate
	// allocations per cache dominated their setup cost.
	backing := make([]line, cfg.Sets*cfg.Ways)
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	c.plru = make([]uint64, cfg.Sets)
	c.epoch = 1
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetIndex returns the set index for an address (virtual or physical
// according to the indexing scheme; the caller passes the right one).
func (c *Cache) SetIndex(addr uint64) int {
	return int(addr/uint64(c.cfg.LineSize)) & (c.cfg.Sets - 1)
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineSize) / uint64(c.cfg.Sets)
}

// Present reports whether the line containing addr is cached, without
// touching replacement state (an "oracle peek" for tests and diagnostics).
func (c *Cache) Present(addr uint64) bool {
	set := c.sets[c.SetIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].epoch == c.epoch && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr, filling on miss, and reports whether it hit and
// the physical address of any evicted line's tag (evicted=false when the
// fill used an invalid way). Replacement state updates as real hardware
// would.
func (c *Cache) Access(addr uint64) (hit bool, evictedTag uint64, evicted bool) {
	si := c.SetIndex(addr)
	set := c.sets[si]
	tag := c.tagOf(addr)
	c.useCounter++
	for i := range set {
		if set[i].epoch == c.epoch && set[i].tag == tag {
			c.Hits++
			set[i].lru = c.useCounter
			c.touchPLRU(si, i)
			return true, 0, false
		}
	}
	c.Misses++
	// Fill: choose victim.
	victim := -1
	for i := range set {
		if set[i].epoch != c.epoch {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = c.victimWay(si)
		c.Evictions++
		evictedTag = set[victim].tag*uint64(c.cfg.Sets)*uint64(c.cfg.LineSize) +
			uint64(si)*uint64(c.cfg.LineSize)
		evicted = true
	}
	set[victim] = line{epoch: c.epoch, tag: tag, lru: c.useCounter}
	c.touchPLRU(si, victim)
	return false, evictedTag, evicted
}

// victimWay picks a way to evict in a full set.
func (c *Cache) victimWay(si int) int {
	set := c.sets[si]
	switch c.cfg.Repl {
	case Random:
		return c.rng.Intn(c.cfg.Ways)
	case TreePLRU:
		return c.plruVictim(si)
	default: // LRU
		victim := 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		return victim
	}
}

// Tree-PLRU over Ways leaves (Ways must be a power of two for the tree;
// non-power-of-two ways fall back to LRU).
func (c *Cache) plruVictim(si int) int {
	w := c.cfg.Ways
	if w&(w-1) != 0 {
		set := c.sets[si]
		victim := 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		return victim
	}
	state := c.plru[si]
	node := 1
	for node < w {
		bit := (state >> uint(node)) & 1
		node = node*2 + int(bit)
	}
	return node - w
}

func (c *Cache) touchPLRU(si, way int) {
	w := c.cfg.Ways
	if c.cfg.Repl != TreePLRU || w&(w-1) != 0 {
		return
	}
	state := c.plru[si]
	node := way + w
	for node > 1 {
		parent := node / 2
		// Point the parent away from the touched child.
		if node%2 == 0 {
			state |= 1 << uint(parent)
		} else {
			state &^= 1 << uint(parent)
		}
		node = parent
	}
	c.plru[si] = state
}

// Flush removes the line containing addr if present (clflush).
func (c *Cache) Flush(addr uint64) {
	set := c.sets[c.SetIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].epoch == c.epoch && set[i].tag == tag {
			set[i] = line{}
			c.Flushes++
		}
	}
}

// FlushAll invalidates every line by advancing the epoch — O(1), which
// matters because experiments flush whole hierarchies between trials.
func (c *Cache) FlushAll() {
	c.epoch++
	c.Flushes++
}

// FlushSet invalidates one set by index (used by harnesses to create a
// clean probe baseline).
func (c *Cache) FlushSet(si int) {
	for i := range c.sets[si] {
		c.sets[si][i] = line{}
	}
}

// ValidLines returns the number of valid lines in set si.
func (c *Cache) ValidLines(si int) int {
	n := 0
	for _, l := range c.sets[si] {
		if l.epoch == c.epoch {
			n++
		}
	}
	return n
}

// OccupiedWays returns how many ways of set si hold lines whose address
// tag differs from those derivable from the given addresses — i.e., lines
// an attacker's priming of that set did NOT install. Harness/diagnostic
// helper for Prime+Probe reasoning in tests.
func (c *Cache) OccupiedWays(si int, primed []uint64) int {
	primedTags := make(map[uint64]bool, len(primed))
	for _, a := range primed {
		if c.SetIndex(a) == si {
			primedTags[c.tagOf(a)] = true
		}
	}
	n := 0
	for _, l := range c.sets[si] {
		if l.epoch == c.epoch && !primedTags[l.tag] {
			n++
		}
	}
	return n
}

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evictions, c.Flushes = 0, 0, 0, 0
}
