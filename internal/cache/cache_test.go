package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig(sets, ways int, repl ReplacementPolicy) Config {
	return Config{Name: "t", Sets: sets, Ways: ways, LineSize: 64, HitLatency: 4, Repl: repl}
}

func TestAccessHitAfterFill(t *testing.T) {
	c := New(testConfig(64, 8, LRU), nil)
	if hit, _, _ := c.Access(0x1000); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0x1000); !hit {
		t.Fatal("warm access missed")
	}
	if hit, _, _ := c.Access(0x103f); !hit {
		t.Fatal("same-line access missed")
	}
	if hit, _, _ := c.Access(0x1040); hit {
		t.Fatal("next-line access hit")
	}
}

func TestSetIndexMapping(t *testing.T) {
	c := New(testConfig(64, 8, LRU), nil)
	// Addresses 4096 apart with 64 sets x 64B lines map to the same set.
	if c.SetIndex(0xac0) != c.SetIndex(0xac0+4096) {
		t.Fatal("4096-stride addresses in different sets")
	}
	if c.SetIndex(0xac0) == c.SetIndex(0xb00) {
		t.Fatal("different offsets share a set unexpectedly")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(testConfig(1, 2, LRU), nil)
	c.Access(0x0)  // fill way 0
	c.Access(0x40) // fill way 1
	c.Access(0x0)  // touch 0x0 -> 0x40 is LRU
	_, _, evicted := c.Access(0x80)
	if !evicted {
		t.Fatal("full set fill did not evict")
	}
	if !c.Present(0x0) {
		t.Fatal("MRU line evicted")
	}
	if c.Present(0x40) {
		t.Fatal("LRU line survived")
	}
}

func TestEvictedTagReconstruction(t *testing.T) {
	c := New(testConfig(4, 1, LRU), nil)
	c.Access(0x1040)               // set 1
	_, tag, ev := c.Access(0x2040) // same set, different tag
	if !ev {
		t.Fatal("no eviction")
	}
	if c.SetIndex(tag) != c.SetIndex(0x1040) || tag/256 != 0x1040/256 {
		t.Fatalf("reconstructed evicted address %#x not equivalent to %#x", tag, 0x1040)
	}
}

func TestFlush(t *testing.T) {
	c := New(testConfig(64, 8, LRU), nil)
	c.Access(0x1000)
	c.Flush(0x1000)
	if c.Present(0x1000) {
		t.Fatal("line present after Flush")
	}
	c.Access(0x1000)
	c.FlushAll()
	if c.Present(0x1000) {
		t.Fatal("line present after FlushAll")
	}
	c.Access(0x1000)
	c.FlushSet(c.SetIndex(0x1000))
	if c.Present(0x1000) {
		t.Fatal("line present after FlushSet")
	}
}

func TestPrimeProbeSemantics(t *testing.T) {
	// Prime a set with exactly Ways lines; a foreign fill must evict one.
	cfg := testConfig(64, 8, LRU)
	c := New(cfg, nil)
	set := c.SetIndex(0xac0)
	var primed []uint64
	for i := 0; i < cfg.Ways; i++ {
		addr := uint64(0xac0) + uint64(i+1)*4096
		if c.SetIndex(addr) != set {
			t.Fatal("prime address in wrong set")
		}
		c.Access(addr)
		primed = append(primed, addr)
	}
	if c.ValidLines(set) != cfg.Ways {
		t.Fatalf("primed set has %d lines", c.ValidLines(set))
	}
	// Victim access to the same set.
	victim := uint64(0xac0) + 100*4096
	c.Access(victim)
	misses := 0
	for _, a := range primed {
		if hit, _, _ := c.Access(a); !hit {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("victim fill left all primed lines intact")
	}
}

func TestTreePLRUVictimChanges(t *testing.T) {
	c := New(testConfig(1, 8, TreePLRU), nil)
	for i := 0; i < 8; i++ {
		c.Access(uint64(i) * 64)
	}
	// Touch lines 0..3 so the PLRU tree points at the other half.
	for i := 0; i < 4; i++ {
		c.Access(uint64(i) * 64)
	}
	c.Access(0x10000)
	// One of lines 4..7 must be gone.
	gone := 0
	for i := 4; i < 8; i++ {
		if !c.Present(uint64(i) * 64) {
			gone++
		}
	}
	if gone != 1 {
		t.Fatalf("PLRU evicted %d lines from the cold half", gone)
	}
}

func TestRandomPolicyUsesRNG(t *testing.T) {
	c := New(testConfig(1, 4, Random), rand.New(rand.NewSource(42)))
	for i := 0; i < 4; i++ {
		c.Access(uint64(i) * 64)
	}
	c.Access(0x9000)
	if c.ValidLines(0) != 4 {
		t.Fatal("set should stay full")
	}
	if c.Evictions != 1 {
		t.Fatalf("Evictions = %d", c.Evictions)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(testConfig(64, 8, LRU), nil)
	c.Access(0x1000)
	c.Access(0x1000)
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

func TestOccupiedWays(t *testing.T) {
	c := New(testConfig(64, 8, LRU), nil)
	set := c.SetIndex(0x40)
	primed := []uint64{0x40, 0x40 + 4096}
	for _, a := range primed {
		c.Access(a)
	}
	if got := c.OccupiedWays(set, primed); got != 0 {
		t.Fatalf("OccupiedWays with only primed lines = %d", got)
	}
	c.Access(0x40 + 8*4096)
	if got := c.OccupiedWays(set, primed); got != 1 {
		t.Fatalf("OccupiedWays after foreign fill = %d", got)
	}
}

func TestCacheInvariantsProperty(t *testing.T) {
	// Property: a set never holds more than Ways lines and Present
	// agrees with a just-completed Access.
	cfg := testConfig(16, 4, LRU)
	c := New(cfg, nil)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			c.Access(addr)
			if !c.Present(addr) {
				return false
			}
			if c.ValidLines(c.SetIndex(addr)) > cfg.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := &Hierarchy{
		L1I:        New(Config{Name: "L1I", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 4, Repl: LRU}, rng),
		L1D:        New(Config{Name: "L1D", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 4, Repl: LRU}, rng),
		L2:         New(Config{Name: "L2", Sets: 1024, Ways: 8, LineSize: 64, HitLatency: 14, Repl: LRU}, rng),
		MemLatency: 150,
	}
	// Cold: full miss.
	if lat := h.AccessData(0x1000); lat != 4+14+150 {
		t.Fatalf("cold load latency = %d", lat)
	}
	// Warm L1.
	if lat := h.AccessData(0x1000); lat != 4 {
		t.Fatalf("L1 hit latency = %d", lat)
	}
	// Flush L1 only: L2 hit.
	h.L1D.Flush(0x1000)
	if lat := h.AccessData(0x1000); lat != 4+14 {
		t.Fatalf("L2 hit latency = %d", lat)
	}
	// Fetch side shares L2: after an instruction fetch of the same line,
	// the L2 was already filled by the data path.
	if lat := h.AccessFetch(0x1000); lat != 4+14 {
		t.Fatalf("fetch after data L2 fill = %d", lat)
	}
	h.FlushLine(0x1000)
	if lat := h.AccessFetch(0x1000); lat != 4+14+150 {
		t.Fatalf("fetch after FlushLine = %d", lat)
	}
	h.FlushAll()
	if h.L1I.Present(0x1000) || h.L1D.Present(0x1000) || h.L2.Present(0x1000) {
		t.Fatal("FlushAll left lines")
	}
}
