package cache

// Hierarchy composes the two-level cache system of the simulated machines:
// split L1 (instruction and data) above a unified L2, above DRAM. Lookup
// latency is the sum of the levels traversed; fills propagate into every
// level that missed, so a single wrong-path load or instruction fetch
// leaves a durable, probeable footprint — the essence of the Phantom
// observation channels.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	// MemLatency is the DRAM access cost in cycles.
	MemLatency int
}

// AccessFetch performs an instruction fetch of the line containing pa and
// returns its latency in cycles.
func (h *Hierarchy) AccessFetch(pa uint64) int {
	if hit, _, _ := h.L1I.Access(pa); hit {
		return h.L1I.cfg.HitLatency
	}
	if hit, _, _ := h.L2.Access(pa); hit {
		return h.L1I.cfg.HitLatency + h.L2.cfg.HitLatency
	}
	return h.L1I.cfg.HitLatency + h.L2.cfg.HitLatency + h.MemLatency
}

// AccessData performs a data access of the line containing pa and returns
// its latency in cycles.
func (h *Hierarchy) AccessData(pa uint64) int {
	if hit, _, _ := h.L1D.Access(pa); hit {
		return h.L1D.cfg.HitLatency
	}
	if hit, _, _ := h.L2.Access(pa); hit {
		return h.L1D.cfg.HitLatency + h.L2.cfg.HitLatency
	}
	return h.L1D.cfg.HitLatency + h.L2.cfg.HitLatency + h.MemLatency
}

// FlushLine removes the line containing pa from every level (clflush
// semantics: coherent across I- and D-side).
func (h *Hierarchy) FlushLine(pa uint64) {
	h.L1I.Flush(pa)
	h.L1D.Flush(pa)
	h.L2.Flush(pa)
}

// FlushAll empties every level.
func (h *Hierarchy) FlushAll() {
	h.L1I.FlushAll()
	h.L1D.FlushAll()
	h.L2.FlushAll()
}
