package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunIndexOrder(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 8, 64} {
		got, err := Run(context.Background(), 50, Options{Jobs: jobs},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		if len(got) != 50 {
			t.Fatalf("Jobs=%d: %d results", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("Jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestRunSingleWorkerIsSequential(t *testing.T) {
	var order []int
	_, err := Run(context.Background(), 20, Options{Jobs: 1},
		func(_ context.Context, i int) (struct{}, error) {
			order = append(order, i)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	_, err := Run(context.Background(), 100, Options{Jobs: jobs},
		func(_ context.Context, i int) (struct{}, error) {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			runtime.Gosched()
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, jobs)
	}
}

func TestRunFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(context.Background(), 200, Options{Jobs: 4},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			<-ctx.Done() // parked until the job-0 failure cancels the sweep
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ran.Load() == 200 {
		t.Error("cancellation did not skip any queued job")
	}
}

func TestRunReportsLowestIndexError(t *testing.T) {
	// With one worker every job runs in order, so index 3's error must be
	// the one reported even though index 10 would fail too.
	errA, errB := errors.New("a"), errors.New("b")
	_, err := Run(context.Background(), 20, Options{Jobs: 1},
		func(_ context.Context, i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 10:
				return 0, errB
			}
			return i, nil
		})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want %v", err, errA)
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var once sync.Once
	_, err := Run(ctx, 100, Options{Jobs: 2},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			once.Do(cancel)
			return i, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == 100 {
		t.Error("cancellation did not skip any queued job")
	}
}

func TestRunZeroJobsReturnsNil(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct{ jobs, n, want int }{
		{0, 1000, runtime.GOMAXPROCS(0)},
		{-3, 1000, runtime.GOMAXPROCS(0)},
		{1, 1000, 1},
		{8, 4, 4}, // never more workers than jobs
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := (Options{Jobs: c.jobs}).workers(c.n); got != c.want {
			t.Errorf("Options{Jobs:%d}.workers(%d) = %d, want %d", c.jobs, c.n, got, c.want)
		}
	}
}
