package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunIndexOrder(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 8, 64} {
		got, err := Run(context.Background(), 50, Options{Jobs: jobs},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		if len(got) != 50 {
			t.Fatalf("Jobs=%d: %d results", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("Jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestRunSingleWorkerIsSequential(t *testing.T) {
	var order []int
	_, err := Run(context.Background(), 20, Options{Jobs: 1},
		func(_ context.Context, i int) (struct{}, error) {
			order = append(order, i)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not sequential", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	_, err := Run(context.Background(), 100, Options{Jobs: jobs},
		func(_ context.Context, i int) (struct{}, error) {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			runtime.Gosched()
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, jobs)
	}
}

func TestRunFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Run(context.Background(), 200, Options{Jobs: 4},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			<-ctx.Done() // parked until the job-0 failure cancels the sweep
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ran.Load() == 200 {
		t.Error("cancellation did not skip any queued job")
	}
}

func TestRunReportsLowestIndexError(t *testing.T) {
	// With one worker every job runs in order, so index 3's error must be
	// the one reported even though index 10 would fail too.
	errA, errB := errors.New("a"), errors.New("b")
	_, err := Run(context.Background(), 20, Options{Jobs: 1},
		func(_ context.Context, i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 10:
				return 0, errB
			}
			return i, nil
		})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want %v", err, errA)
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var once sync.Once
	_, err := Run(ctx, 100, Options{Jobs: 2},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			once.Do(cancel)
			return i, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() == 100 {
		t.Error("cancellation did not skip any queued job")
	}
}

func TestRunZeroJobsReturnsNil(t *testing.T) {
	got, err := Run(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct{ jobs, n, want int }{
		{0, 1000, runtime.GOMAXPROCS(0)},
		{-3, 1000, runtime.GOMAXPROCS(0)},
		{1, 1000, 1},
		{8, 4, 4}, // never more workers than jobs
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := (Options{Jobs: c.jobs}).workers(c.n); got != c.want {
			t.Errorf("Options{Jobs:%d}.workers(%d) = %d, want %d", c.jobs, c.n, got, c.want)
		}
	}
}

// recordingObserver collects callbacks for TestObserverCallbacks. All
// methods are mutex-guarded because workers call them concurrently.
type recordingObserver struct {
	mu         sync.Mutex
	startTotal int
	startPool  int
	started    map[int]int // job -> worker
	done       map[int]error
	ended      int
}

func (o *recordingObserver) SweepStart(total, workers int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.startTotal, o.startPool = total, workers
	o.started = make(map[int]int)
	o.done = make(map[int]error)
}

func (o *recordingObserver) JobStart(job, worker int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started[job] = worker
}

func (o *recordingObserver) JobDone(job, worker int, d time.Duration, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if w, ok := o.started[job]; !ok || w != worker {
		panic("JobDone without matching JobStart")
	}
	if d < 0 {
		panic("negative job duration")
	}
	o.done[job] = err
}

func (o *recordingObserver) SweepEnd() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ended++
}

func TestObserverCallbacks(t *testing.T) {
	obs := &recordingObserver{}
	got, err := Run(context.Background(), 20, Options{Jobs: 4, Observer: obs},
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if obs.startTotal != 20 || obs.startPool != 4 {
		t.Errorf("SweepStart(%d, %d), want (20, 4)", obs.startTotal, obs.startPool)
	}
	if len(obs.done) != 20 || obs.ended != 1 {
		t.Errorf("%d JobDone calls, %d SweepEnd calls", len(obs.done), obs.ended)
	}
	for job, err := range obs.done {
		if err != nil {
			t.Errorf("job %d reported error %v", job, err)
		}
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d: observer changed the sweep", i, v)
		}
	}
}

func TestObserverSeesFailures(t *testing.T) {
	obs := &recordingObserver{}
	boom := errors.New("boom")
	_, err := Run(context.Background(), 50, Options{Jobs: 2, Observer: obs},
		func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(obs.done[3], boom) {
		t.Errorf("observer saw %v for the failing job", obs.done[3])
	}
	canceled := 0
	for _, jerr := range obs.done {
		if errors.Is(jerr, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("observer saw no cancellation echoes after the failure")
	}
	if obs.ended != 1 {
		t.Errorf("SweepEnd called %d times", obs.ended)
	}
}

// TestObserverIdenticalResults pins the Observer contract: the same
// sweep renders identical results with and without one attached.
func TestObserverIdenticalResults(t *testing.T) {
	fn := func(_ context.Context, i int) (int, error) { return 3*i + 1, nil }
	plain, err := Run(context.Background(), 32, Options{Jobs: 8}, fn)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(context.Background(), 32, Options{Jobs: 8, Observer: &recordingObserver{}}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("observer changed sweep results")
	}
}
