// Package sweep is the parallel fan-out engine of the experiment
// harness. The paper's evaluation is a large sweep — eight
// microarchitectures times 10–100 reboots per table — and every run
// boots an independent simulated System whose randomness comes from its
// own arithmetically derived seed. That makes the (arch, run) job space
// embarrassingly parallel, with one obligation: results must come back
// in job-index order so a parallel sweep renders byte-identical tables
// to the sequential one.
//
// Run executes a job function over n indexes on a bounded worker pool.
// Jobs selects the pool size (default runtime.GOMAXPROCS(0)); Jobs == 1
// reproduces the sequential path exactly, including its execution
// order. The first job failure cancels the remaining jobs via context.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Observer receives job-lifecycle callbacks from Run. Observers are
// purely observational — they see indexes, wall-clock durations and
// errors, never results — so they cannot change what a sweep computes;
// the telemetry package's SweepScope is the canonical implementation.
// Callbacks arrive concurrently from all workers and must be safe for
// concurrent use.
type Observer interface {
	// SweepStart fires once before any job, with the job count and the
	// resolved pool size.
	SweepStart(total, workers int)
	// JobStart fires when a worker picks job i off the queue.
	JobStart(job, worker int)
	// JobDone fires when a job returns; d is harness wall-clock time
	// and err is the job's error (including context cancellation for
	// jobs skipped after a failure).
	JobDone(job, worker int, d time.Duration, err error)
	// SweepEnd fires once after all workers drain.
	SweepEnd()
}

// Options tunes a sweep.
type Options struct {
	// Jobs is the worker-pool size. Zero or negative means
	// runtime.GOMAXPROCS(0). One runs the jobs sequentially in index
	// order.
	Jobs int
	// Observer, when non-nil, receives job-lifecycle callbacks. The
	// sweep's results and their order are identical with or without an
	// observer; only the callbacks (and their time.Now reads) differ.
	Observer Observer
}

// workers resolves the pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(ctx, i) for every i in [0, n) on a bounded worker
// pool and returns the n results in job-index order, so output built
// from them is identical whatever the pool size.
//
// The first error cancels the context handed to the remaining jobs;
// Run then reports the lowest-index non-cancellation error (or, if
// every failure is a cancellation, the first of those). On error the
// results are nil.
func Run[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	obs := opts.Observer
	workers := opts.workers(n)
	if obs != nil {
		obs.SweepStart(n, workers)
		defer obs.SweepEnd()
	}
	results := make([]T, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				var start time.Time
				if obs != nil {
					obs.JobStart(i, w)
					start = time.Now()
				}
				err := ctx.Err()
				if err == nil {
					var v T
					if v, err = fn(ctx, i); err == nil {
						results[i] = v
					} else {
						cancel()
					}
				}
				errs[i] = err
				if obs != nil {
					obs.JobDone(i, w, time.Since(start), err)
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if err := firstError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// firstError picks the error Run reports: the lowest-index failure that
// is not a mere cancellation echo, falling back to the first
// cancellation if nothing else failed.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}
