package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"phantom/internal/cluster"
	"phantom/internal/service"
)

// smokeNode is one phantom-server process in the cluster smoke.
type smokeNode struct {
	id       string
	addr     string
	base     string
	storeDir string
	addrFile string
	cmd      *exec.Cmd
}

// start boots (or reboots) the node. The addr file is removed first so
// awaiting it observes this boot, not a stale handshake.
func (n *smokeNode) start(serverBin, peersSpec string) error {
	os.Remove(n.addrFile)
	n.cmd = exec.Command(serverBin,
		"-addr", n.addr, "-addr-file", n.addrFile, "-workers", "2",
		"-store-dir", n.storeDir, "-peers", peersSpec, "-node-id", n.id)
	n.cmd.Stderr = os.Stderr
	if err := n.cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", n.id, err)
	}
	if _, err := awaitAddr(n.addrFile, n.cmd); err != nil {
		return fmt.Errorf("%s: %w", n.id, err)
	}
	return nil
}

// stop SIGTERMs the node and requires a clean drain (exit 0).
func (n *smokeNode) stop() error {
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM %s: %w", n.id, err)
	}
	done := make(chan error, 1)
	go func() { done <- n.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("%s exited non-zero after SIGTERM: %w", n.id, err)
		}
		return nil
	case <-time.After(30 * time.Second):
		return fmt.Errorf("%s did not exit within 30s of SIGTERM", n.id)
	}
}

// runCluster drives the distributed-tier contract against a real
// 3-node fleet. Every ownership assertion is computed from the same
// ring the servers build (IDs are fixed; ports are not hashed), so the
// checks are deterministic across runs and machines.
func runCluster() error {
	dir, err := os.MkdirTemp("", "clustersmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cliBin, serverBin, err := buildBinaries(dir)
	if err != nil {
		return err
	}

	// Reserve three loopback ports, then hand them to the processes.
	nodes := make([]*smokeNode, 3)
	peers := make([]cluster.Peer, 3)
	peersSpec := ""
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr := ln.Addr().String()
		ln.Close()
		id := fmt.Sprintf("n%d", i+1)
		nodes[i] = &smokeNode{
			id:       id,
			addr:     addr,
			base:     "http://" + addr,
			storeDir: filepath.Join(dir, "store-"+id),
			addrFile: filepath.Join(dir, "addr-"+id),
		}
		peers[i] = cluster.Peer{ID: id, Addr: addr}
		if i > 0 {
			peersSpec += ","
		}
		peersSpec += id + "=" + addr
	}
	ring, err := cluster.NewRing(peers, 0)
	if err != nil {
		return err
	}

	stopped := make(map[string]bool)
	defer func() {
		for _, n := range nodes {
			if !stopped[n.id] && n.cmd != nil && n.cmd.Process != nil {
				n.cmd.Process.Kill()
				n.cmd.Wait()
			}
		}
	}()
	for _, n := range nodes {
		if err := n.start(serverBin, peersSpec); err != nil {
			return err
		}
	}
	fmt.Println("clustersmoke: 3 nodes up:", peersSpec)

	if err := checkClusterReadyz(nodes); err != nil {
		return err
	}
	if err := checkFanoutSplit(nodes, ring, cliBin); err != nil {
		return err
	}
	proxyBody, proxyOut, err := checkProxyHop(nodes, ring)
	if err != nil {
		return err
	}

	// Kill n3 the hard way (no drain) and require the same bytes from a
	// degraded local computation — a dead peer must cost duplicate work,
	// never a client error.
	if err := nodes[2].cmd.Process.Kill(); err != nil {
		return err
	}
	nodes[2].cmd.Wait() //nolint:errcheck // killed; the exit status is the point
	stopped["n3"] = true
	if err := checkDeadPeerDegrades(nodes[0], proxyBody, proxyOut); err != nil {
		return err
	}

	if err := checkRestartPersistence(nodes[0], ring, serverBin, peersSpec); err != nil {
		return err
	}

	for _, n := range nodes[:2] {
		if err := n.stop(); err != nil {
			return err
		}
		stopped[n.id] = true
	}
	fmt.Println("clustersmoke: SIGTERM drain clean on surviving nodes")
	return nil
}

// checkClusterReadyz: each node reports its own identity and a fully
// healthy 3-peer view.
func checkClusterReadyz(nodes []*smokeNode) error {
	for _, n := range nodes {
		status, body, err := get(n.base + "/readyz")
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("%s /readyz = %d: %s", n.id, status, body)
		}
		var ready struct {
			Status string               `json:"status"`
			Node   string               `json:"node"`
			Peers  []cluster.PeerHealth `json:"peers"`
		}
		if err := json.Unmarshal(body, &ready); err != nil {
			return fmt.Errorf("%s /readyz: %w", n.id, err)
		}
		if ready.Node != n.id || len(ready.Peers) != 3 {
			return fmt.Errorf("%s /readyz = %+v, want node %s with 3 peers", n.id, ready, n.id)
		}
		for _, p := range ready.Peers {
			if !p.Healthy {
				return fmt.Errorf("%s reports peer %s unhealthy at boot", n.id, p.ID)
			}
		}
	}
	fmt.Println("clustersmoke: /readyz cluster view ok on all nodes")
	return nil
}

// checkFanoutSplit POSTs a separable all-arch request to n1 and pins
// three properties at once: the assembled output is byte-identical to
// the CLI, the per-arch work lands exactly where the ring says it
// should, and the split is a strict partition — every node simulates
// some archs, no node simulates all of them.
func checkFanoutSplit(nodes []*smokeNode, ring *cluster.Ring, cliBin string) error {
	norm, err := service.Request{Experiment: "table1", Trials: 2}.Normalize()
	if err != nil {
		return err
	}
	want := map[string]uint64{}
	for _, arch := range norm.Archs {
		sub := norm
		sub.Archs = []string{arch}
		want[ring.Owner(sub.Key()).ID]++
	}
	total := uint64(len(norm.Archs))
	for _, n := range nodes {
		if w := want[n.id]; w == 0 || w == total {
			return fmt.Errorf("ring does not strictly partition the smoke keys: %s owns %d of %d", n.id, w, total)
		}
	}

	before := map[string]uint64{}
	for _, n := range nodes {
		if before[n.id], err = counterValue(n.base, "serve_simulations"); err != nil {
			return err
		}
	}
	status, body, err := post(nodes[0].base, `{"experiment":"table1","trials":2}`)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("fan-out POST = %d: %s", status, body)
	}
	var res struct {
		Output string `json:"output"`
		Fanout int    `json:"fanout"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		return err
	}
	if res.Fanout != len(norm.Archs) {
		return fmt.Errorf("fanout = %d, want %d", res.Fanout, len(norm.Archs))
	}

	var cliOut bytes.Buffer
	cli := exec.Command(cliBin, "table1", "-arch", "all", "-trials", "2")
	cli.Stdout = &cliOut
	cli.Stderr = os.Stderr
	if err := cli.Run(); err != nil {
		return fmt.Errorf("phantom table1: %w", err)
	}
	if res.Output != cliOut.String() {
		return fmt.Errorf("fan-out output differs from CLI stdout\nserved: %q\ncli:    %q", res.Output, cliOut.String())
	}

	for _, n := range nodes {
		after, err := counterValue(n.base, "serve_simulations")
		if err != nil {
			return err
		}
		if got := after - before[n.id]; got != want[n.id] {
			return fmt.Errorf("%s simulated %d sub-jobs, ring says %d", n.id, got, want[n.id])
		}
	}
	fmt.Printf("clustersmoke: fan-out byte-identical to CLI, split %v strict across nodes\n", want)
	return nil
}

// seedWithOwner scans kaslr seeds for one whose key the ring assigns
// to want, skipping seeds in avoid.
func seedWithOwner(ring *cluster.Ring, want string, avoid map[int64]bool) (int64, service.Request, error) {
	for seed := int64(1); seed < 1<<16; seed++ {
		if avoid[seed] {
			continue
		}
		norm, err := service.Request{Experiment: "kaslr", Seed: seed}.Normalize()
		if err != nil {
			return 0, service.Request{}, err
		}
		if ring.Owner(norm.Key()).ID == want {
			avoid[seed] = true
			return seed, norm, nil
		}
	}
	return 0, service.Request{}, fmt.Errorf("no kaslr seed owned by %s", want)
}

var usedSeeds = map[int64]bool{}

// checkProxyHop POSTs an n3-owned single request to n1 and verifies the
// simulation ran on n3 with the reply marked proxied. Returns the body
// and output for the dead-peer replay.
func checkProxyHop(nodes []*smokeNode, ring *cluster.Ring) (string, string, error) {
	seed, _, err := seedWithOwner(ring, "n3", usedSeeds)
	if err != nil {
		return "", "", err
	}
	body := fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seed)
	n1Before, err := counterValue(nodes[0].base, "serve_simulations")
	if err != nil {
		return "", "", err
	}
	n3Before, err := counterValue(nodes[2].base, "serve_simulations")
	if err != nil {
		return "", "", err
	}
	status, respBody, err := post(nodes[0].base, body)
	if err != nil {
		return "", "", err
	}
	if status != http.StatusOK {
		return "", "", fmt.Errorf("proxy POST = %d: %s", status, respBody)
	}
	var res struct {
		Output  string `json:"output"`
		Proxied bool   `json:"proxied"`
	}
	if err := json.Unmarshal(respBody, &res); err != nil {
		return "", "", err
	}
	if !res.Proxied || res.Output == "" {
		return "", "", fmt.Errorf("n3-owned request via n1: proxied=%v output=%q", res.Proxied, res.Output)
	}
	n1After, err := counterValue(nodes[0].base, "serve_simulations")
	if err != nil {
		return "", "", err
	}
	n3After, err := counterValue(nodes[2].base, "serve_simulations")
	if err != nil {
		return "", "", err
	}
	if n1After != n1Before || n3After != n3Before+1 {
		return "", "", fmt.Errorf("proxy hop simulated on the wrong node: n1 %d->%d, n3 %d->%d",
			n1Before, n1After, n3Before, n3After)
	}
	fmt.Println("clustersmoke: single-hop proxy to owner ok")
	return body, res.Output, nil
}

// checkDeadPeerDegrades replays a request whose owner was killed: the
// receiving node must answer 200 with byte-identical output by
// simulating locally, and count the degradation.
func checkDeadPeerDegrades(n1 *smokeNode, body, wantOut string) error {
	status, respBody, err := post(n1.base, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("dead-owner POST = %d: %s (degradation must not surface to clients)", status, respBody)
	}
	var res struct {
		Output  string `json:"output"`
		Proxied bool   `json:"proxied"`
	}
	if err := json.Unmarshal(respBody, &res); err != nil {
		return err
	}
	if res.Proxied {
		return fmt.Errorf("dead peer still answered the proxy")
	}
	if res.Output != wantOut {
		return fmt.Errorf("degraded local answer diverged from the owner's answer")
	}
	degraded, err := counterValue(n1.base, "serve_degraded_local")
	if err != nil {
		return err
	}
	if degraded == 0 {
		return fmt.Errorf("serve_degraded_local = 0 after a dead-owner request")
	}
	fmt.Println("clustersmoke: dead peer degraded to local compute, bytes identical, zero client errors")
	return nil
}

// checkRestartPersistence computes an n1-owned request, drains and
// restarts n1 on the same -store-dir, and requires the repeat to be
// answered from the durable store: no simulation, byte-identical.
func checkRestartPersistence(n1 *smokeNode, ring *cluster.Ring, serverBin, peersSpec string) error {
	seed, _, err := seedWithOwner(ring, "n1", usedSeeds)
	if err != nil {
		return err
	}
	body := fmt.Sprintf(`{"experiment":"kaslr","seed":%d}`, seed)
	status, respBody, err := post(n1.base, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("pre-restart POST = %d: %s", status, respBody)
	}
	var cold result
	if err := json.Unmarshal(respBody, &cold); err != nil {
		return err
	}

	if err := n1.stop(); err != nil {
		return err
	}
	if err := n1.start(serverBin, peersSpec); err != nil {
		return fmt.Errorf("restart: %w", err)
	}

	status, respBody, err = post(n1.base, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("post-restart POST = %d: %s", status, respBody)
	}
	var warm result
	if err := json.Unmarshal(respBody, &warm); err != nil {
		return err
	}
	if !warm.Cached {
		return fmt.Errorf("post-restart repeat not served as cached")
	}
	if warm.Output != cold.Output || warm.ID != cold.ID {
		return fmt.Errorf("store round-trip across restart diverged")
	}
	sims, err := counterValue(n1.base, "serve_simulations")
	if err != nil {
		return err
	}
	if sims != 0 {
		return fmt.Errorf("restarted node re-simulated %d times despite a warm store", sims)
	}
	hits, err := counterValue(n1.base, "serve_store_hits")
	if err != nil {
		return err
	}
	if hits != 1 {
		return fmt.Errorf("serve_store_hits = %d after restart repeat, want 1", hits)
	}
	fmt.Println("clustersmoke: restart served from durable store, no re-simulation")
	return nil
}
