// Command servesmoke is the end-to-end gate behind `make serve-smoke`:
// it builds the phantom and phantom-server binaries, boots the server
// on an ephemeral port, and drives the serving contract from the
// outside — the parts an httptest-based unit test cannot see (process
// startup, the -addr-file handshake, real sockets, SIGTERM drain).
//
// Checks, in order:
//
//  1. /healthz and /readyz answer 200; /v1/arches lists the catalog.
//  2. A single POST evaluates cold, and its "output" field is
//     byte-identical to the phantom CLI's stdout for the same flags.
//  3. Repeating the POST is served from the cache, byte-identical.
//  4. A batch POST returns per-item results in order.
//  5. Eight concurrent identical requests collapse to one simulation
//     (verified via the serve_simulations counter on /metrics).
//  6. SIGTERM drains: the process exits 0.
//
// With -cluster it instead boots a 3-node phantom-server fleet (static
// -peers ring, per-node -store-dir) and drives the distributed-tier
// contract: deterministic keyspace split, fan-out output byte-identical
// to the CLI, single-hop proxying, dead-peer degradation with zero
// client errors, and warm-store restart without re-simulation. See
// `make cluster-smoke`.
//
// It is a plain Go program (not a shell script) so the smoke test has
// no dependency on curl/jq and runs identically in CI and locally.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// The smoke request is small enough to simulate in milliseconds but
// goes through the full pipeline. CLI flags and JSON body must describe
// the same evaluation for the parity check.
const (
	smokeJSON = `{"experiment":"table1","archs":["zen2"],"trials":2}`
	batchJSON = `[{"experiment":"table1","archs":["zen2"],"trials":2},` +
		`{"experiment":"sls","archs":["zen1"]}]`
	// The coalescing probe uses a key no earlier step has warmed.
	coalesceJSON = `{"experiment":"mds","archs":["zen2"],"runs":1,"bytes":64}`
)

var smokeArgs = []string{"table1", "-arch", "zen2", "-trials", "2"}

func main() {
	clusterMode := flag.Bool("cluster", false, "run the 3-node cluster smoke instead of the single-node one")
	flag.Parse()
	runFn, label := run, "servesmoke"
	if *clusterMode {
		runFn, label = runCluster, "clustersmoke"
	}
	if err := runFn(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: FAIL: %v\n", label, err)
		os.Exit(1)
	}
	fmt.Println(label + ": PASS")
}

// buildBinaries compiles the phantom CLI and phantom-server into dir
// and returns their paths.
func buildBinaries(dir string) (cliBin, serverBin string, err error) {
	cliBin = filepath.Join(dir, "phantom")
	serverBin = filepath.Join(dir, "phantom-server")
	for _, b := range []struct{ bin, pkg string }{
		{cliBin, "./cmd/phantom"},
		{serverBin, "./cmd/phantom-server"},
	} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return "", "", fmt.Errorf("go build %s: %w", b.pkg, err)
		}
	}
	return cliBin, serverBin, nil
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cliBin, serverBin, err := buildBinaries(dir)
	if err != nil {
		return err
	}

	addrFile := filepath.Join(dir, "addr")
	server := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-workers", "2")
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	// The SIGTERM check below is the intended shutdown; the deferred kill
	// only fires when an earlier check fails.
	exited := false
	defer func() {
		if !exited {
			server.Process.Kill()
			server.Wait()
		}
	}()

	base, err := awaitAddr(addrFile, server)
	if err != nil {
		return err
	}
	fmt.Println("servesmoke: server up at", base)

	if err := checkEndpoints(base); err != nil {
		return err
	}
	if err := checkParityAndCache(base, cliBin); err != nil {
		return err
	}
	if err := checkBatch(base); err != nil {
		return err
	}
	if err := checkCoalescing(base); err != nil {
		return err
	}

	// SIGTERM drain: the server must flip readiness, finish, and exit 0.
	if err := server.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- server.Wait() }()
	select {
	case err := <-done:
		exited = true
		if err != nil {
			return fmt.Errorf("server exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("server did not exit within 30s of SIGTERM")
	}
	fmt.Println("servesmoke: SIGTERM drain clean")
	return nil
}

// awaitAddr polls the -addr-file handshake, bailing out early if the
// server process dies during startup.
func awaitAddr(addrFile string, server *exec.Cmd) (string, error) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if server.ProcessState != nil {
			return "", fmt.Errorf("server exited during startup")
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return "http://" + strings.TrimSpace(string(data)), nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("server never wrote %s", addrFile)
}

func checkEndpoints(base string) error {
	for _, path := range []string{"/healthz", "/readyz"} {
		status, _, err := get(base + path)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("GET %s = %d, want 200", path, status)
		}
	}
	status, body, err := get(base + "/v1/arches")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET /v1/arches = %d: %s", status, body)
	}
	var arches struct {
		Experiments []string `json:"experiments"`
		Arches      []string `json:"arches"`
	}
	if err := json.Unmarshal(body, &arches); err != nil {
		return fmt.Errorf("/v1/arches: %w", err)
	}
	if len(arches.Experiments) == 0 || len(arches.Arches) != 8 {
		return fmt.Errorf("/v1/arches catalog looks wrong: %d experiments, %d arches",
			len(arches.Experiments), len(arches.Arches))
	}
	fmt.Println("servesmoke: health/ready/arches ok")
	return nil
}

type result struct {
	ID        string `json:"id"`
	Output    string `json:"output"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
	Error     string `json:"error"`
}

func checkParityAndCache(base, cliBin string) error {
	status, body, err := post(base, smokeJSON)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("single POST = %d: %s", status, body)
	}
	var cold result
	if err := json.Unmarshal(body, &cold); err != nil {
		return err
	}
	if cold.Cached {
		return fmt.Errorf("first request reported cached")
	}

	var cliOut bytes.Buffer
	cli := exec.Command(cliBin, smokeArgs...)
	cli.Stdout = &cliOut
	cli.Stderr = os.Stderr
	if err := cli.Run(); err != nil {
		return fmt.Errorf("phantom %v: %w", smokeArgs, err)
	}
	if cold.Output != cliOut.String() {
		return fmt.Errorf("served output differs from CLI stdout\nserved: %q\ncli:    %q",
			cold.Output, cliOut.String())
	}
	fmt.Println("servesmoke: served output byte-identical to CLI")

	status, body, err = post(base, smokeJSON)
	if err != nil {
		return err
	}
	var warm result
	if err := json.Unmarshal(body, &warm); err != nil {
		return err
	}
	if status != http.StatusOK || !warm.Cached {
		return fmt.Errorf("repeat POST = %d cached=%v, want 200 from cache", status, warm.Cached)
	}
	if warm.Output != cold.Output || warm.ID != cold.ID {
		return fmt.Errorf("cache hit returned a different result")
	}
	// The content address is stable, so the result endpoint must agree.
	status, body, err = get(base + "/v1/results/" + cold.ID)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET /v1/results/%s = %d: %s", cold.ID, status, body)
	}
	fmt.Println("servesmoke: cache hit byte-identical, result re-fetch ok")
	return nil
}

func checkBatch(base string) error {
	status, body, err := post(base, batchJSON)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("batch POST = %d: %s", status, body)
	}
	var batch struct {
		Results []result `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		return fmt.Errorf("batch response: %w", err)
	}
	items := batch.Results
	if len(items) != 2 {
		return fmt.Errorf("batch returned %d items, want 2", len(items))
	}
	for i, it := range items {
		if it.Error != "" || it.Output == "" {
			return fmt.Errorf("batch item %d: %+v", i, it)
		}
	}
	if !items[0].Cached {
		return fmt.Errorf("batch item 0 repeats an earlier request but was not cached")
	}
	fmt.Println("servesmoke: batch ok")
	return nil
}

// checkCoalescing fires 8 concurrent identical requests at a cold key
// and verifies via the metrics counter that exactly one simulation ran.
func checkCoalescing(base string) error {
	before, err := simulations(base)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([]result, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := post(base, coalesceJSON)
			if err != nil {
				errs[i] = err
				return
			}
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("concurrent POST = %d: %s", status, body)
				return
			}
			errs[i] = json.Unmarshal(body, &outs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].ID != outs[0].ID || outs[i].Output != outs[0].Output {
			return fmt.Errorf("concurrent identical requests returned different results")
		}
	}
	after, err := simulations(base)
	if err != nil {
		return err
	}
	if got := after - before; got != 1 {
		return fmt.Errorf("8 concurrent identical requests ran %d simulations, want 1", got)
	}
	fmt.Println("servesmoke: 8 concurrent requests coalesced to 1 simulation")
	return nil
}

func simulations(base string) (uint64, error) {
	return counterValue(base, "serve_simulations")
}

// counterValue reads one counter from a node's /metrics snapshot; a
// counter the server never touched reads as 0.
func counterValue(base, name string) (uint64, error) {
	status, body, err := get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics = %d", status)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return 0, fmt.Errorf("/metrics: %w", err)
	}
	return snap.Counters[name], nil
}

func get(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func post(base, reqBody string) (int, []byte, error) {
	resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader(reqBody))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
