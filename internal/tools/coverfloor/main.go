// Command coverfloor enforces per-package statement-coverage floors.
//
// It parses a `go test -coverprofile` file, aggregates statement counts
// per package, compares each against the floors file, prints a summary
// table, and exits 1 when any package is under its floor. Packages with
// no floor line are reported but never fail the build, so new packages
// can be added without immediately gating on them.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./internal/tools/coverfloor -profile cover.out -floors coverage.floors
//
// The floors file holds one "import/path minimum_percent" pair per line;
// blank lines and #-comments are ignored. Floors are set a few points
// below the measured value at the time they were recorded, so genuine
// coverage regressions fail while run-to-run jitter does not.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	floorsPath := flag.String("floors", "coverage.floors", "per-package minimum coverage file")
	flag.Parse()

	floors, err := readFloors(*floorsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
		os.Exit(1)
	}
	cov, err := readProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
		os.Exit(1)
	}

	pkgs := make([]string, 0, len(cov))
	for pkg := range cov {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failed := 0
	for _, pkg := range pkgs {
		c := cov[pkg]
		pct := 100 * float64(c.covered) / float64(c.total)
		floor, gated := floors[pkg]
		switch {
		case !gated:
			fmt.Printf("  %-32s %6.1f%%  (no floor)\n", pkg, pct)
		case pct < floor:
			fmt.Printf("  %-32s %6.1f%%  UNDER floor %.1f%%\n", pkg, pct, floor)
			failed++
		default:
			fmt.Printf("  %-32s %6.1f%%  (floor %.1f%%)\n", pkg, pct, floor)
		}
	}
	missing := make([]string, 0, len(floors))
	for pkg := range floors {
		if _, ok := cov[pkg]; !ok {
			missing = append(missing, pkg)
		}
	}
	sort.Strings(missing)
	for _, pkg := range missing {
		fmt.Printf("  %-32s    --    floor %.1f%% but absent from profile\n", pkg, floors[pkg])
		failed++
	}
	if failed > 0 {
		fmt.Printf("coverfloor: %d package(s) under their coverage floor\n", failed)
		os.Exit(1)
	}
	fmt.Println("coverfloor: all floors hold")
}

// pkgCover accumulates statement counts for one package.
type pkgCover struct {
	total   int
	covered int
}

// readProfile aggregates a cover profile per package. Profile lines are
// "file.go:startL.startC,endL.endC numStmt hitCount" after a "mode:"
// header; the package is the file path's directory.
func readProfile(path_ string) (map[string]*pkgCover, error) {
	f, err := os.Open(path_)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cov := make(map[string]*pkgCover)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s: malformed profile line %q", path_, line)
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return nil, fmt.Errorf("%s: malformed location %q", path_, fields[0])
		}
		numStmt, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s: bad statement count in %q: %v", path_, line, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s: bad hit count in %q: %v", path_, line, err)
		}
		pkg := path.Dir(file)
		c := cov[pkg]
		if c == nil {
			c = &pkgCover{}
			cov[pkg] = c
		}
		c.total += numStmt
		if hits > 0 {
			c.covered += numStmt
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cov) == 0 {
		return nil, fmt.Errorf("%s: no coverage blocks (empty profile?)", path_)
	}
	return cov, nil
}

// readFloors parses the "pkg percent" floors file.
func readFloors(path_ string) (map[string]float64, error) {
	f, err := os.Open(path_)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package percent\", got %q", path_, lineNo, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("%s:%d: bad percentage %q", path_, lineNo, fields[1])
		}
		floors[fields[0]] = pct
	}
	return floors, sc.Err()
}
