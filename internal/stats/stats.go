// Package stats provides the small statistical toolkit used by the
// experiment harness: medians, geometric means, percentiles, and
// accuracy/confusion accounting for the covert-channel and KASLR
// experiments.
//
// The paper reports "median of 10 runs", "geometric mean across all tests"
// (UnixBench methodology) and per-bit accuracy over 4096 transmitted bits;
// this package implements exactly those reductions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs. It copies the input; xs is not modified.
// Median of an empty slice is 0.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MedianUint64 returns the median of xs as a float64.
func MedianUint64(xs []uint64) float64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return Median(f)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (matching UnixBench, which drops failed
// sub-benchmarks from the index). GeoMean of no positive values is 0.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Accuracy is a running tally of predicted-vs-true binary outcomes, used by
// the covert-channel experiments (Table 2) and the KASLR exploits
// (Tables 3-5).
type Accuracy struct {
	Correct int
	Total   int
}

// Add records one trial.
func (a *Accuracy) Add(correct bool) {
	a.Total++
	if correct {
		a.Correct++
	}
}

// Ratio returns the fraction of correct trials in [0,1], or 0 when empty.
func (a *Accuracy) Ratio() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total)
}

// Percent returns the accuracy as a percentage in [0,100].
func (a *Accuracy) Percent() float64 { return a.Ratio() * 100 }

// String formats the accuracy the way the paper's tables do, e.g. "93.04%".
func (a *Accuracy) String() string {
	return fmt.Sprintf("%.2f%%", a.Percent())
}

// BitErrors counts the number of positions at which the two bit slices
// disagree. Slices of unequal length are compared up to the shorter length
// and the length difference is added as errors.
func BitErrors(sent, recv []byte) int {
	n := len(sent)
	if len(recv) < n {
		n = len(recv)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if sent[i] != recv[i] {
			errs++
		}
	}
	if len(sent) != len(recv) {
		d := len(sent) - len(recv)
		if d < 0 {
			d = -d
		}
		errs += d
	}
	return errs
}

// Clamp bounds x to [lo, hi]. It is the "bounded relative timing difference"
// operator from the paper's Section 7.3 scoring function.
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ArgMax returns the index of the largest element of xs, or -1 for an empty
// slice. Ties resolve to the first maximum.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
