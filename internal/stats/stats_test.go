package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -5, 10, 2}, 0.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEq(got, c.want) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10) {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{2, 0, 8}); !almostEq(got, 4) {
		t.Errorf("GeoMean skipping zero = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5) {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7)) {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev singleton != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); !almostEq(got, 25) {
		t.Errorf("P50 = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	for i := 0; i < 93; i++ {
		a.Add(true)
	}
	for i := 0; i < 7; i++ {
		a.Add(false)
	}
	if !almostEq(a.Percent(), 93) {
		t.Errorf("Percent = %v", a.Percent())
	}
	if a.String() != "93.00%" {
		t.Errorf("String = %q", a.String())
	}
}

func TestBitErrors(t *testing.T) {
	if got := BitErrors([]byte{1, 0, 1, 1}, []byte{1, 1, 1, 0}); got != 2 {
		t.Errorf("BitErrors = %d", got)
	}
	if got := BitErrors([]byte{1, 0}, []byte{1}); got != 1 {
		t.Errorf("length-mismatch BitErrors = %d", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(15, -10, 10) != 10 || Clamp(-15, -10, 10) != -10 || Clamp(3, -10, 10) != 3 {
		t.Fatal("Clamp broken")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Error("ArgMax(nil)")
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Error("ArgMax tie-break not first")
	}
}

func TestMedianPropertyBounds(t *testing.T) {
	// Median lies between min and max.
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true // avoid overflow in the even-length midpoint
			}
		}
		m := Median(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
