package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecDotAndWeight(t *testing.T) {
	a := Vec(0b1011)
	b := Vec(0b0011)
	if a.Dot(b) != 0 { // overlap 0b0011: two bits -> even parity
		t.Errorf("Dot = %d", a.Dot(b))
	}
	if a.Dot(Vec(0b1000)) != 1 {
		t.Errorf("Dot single = %d", a.Dot(Vec(0b1000)))
	}
	if a.Weight() != 3 {
		t.Errorf("Weight = %d", a.Weight())
	}
}

func TestVecString(t *testing.T) {
	v := Vec(1<<47 | 1<<35 | 1<<23)
	if got := v.String(); got != "b47 ⊕ b35 ⊕ b23" {
		t.Errorf("String = %q", got)
	}
	if Vec(0).String() != "0" {
		t.Errorf("zero String = %q", Vec(0).String())
	}
}

func TestRowReduceRank(t *testing.T) {
	m := NewMatrix(8)
	m.AddRow(0b00000011)
	m.AddRow(0b00000110)
	m.AddRow(0b00000101) // = row0 ^ row1
	if r := m.Rank(); r != 2 {
		t.Errorf("Rank = %d, want 2", r)
	}
}

func TestNullspaceOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		cols := 8 + rng.Intn(40)
		m := NewMatrix(cols)
		nrows := 1 + rng.Intn(cols)
		for i := 0; i < nrows; i++ {
			m.AddRow(Vec(rng.Uint64()))
		}
		rank := m.Rank()
		null := m.Nullspace()
		if rank+len(null) != cols {
			t.Fatalf("rank %d + nullity %d != cols %d", rank, len(null), cols)
		}
		for _, v := range null {
			for _, row := range m.Rows {
				if row.Dot(v) != 0 {
					t.Fatalf("nullspace vector %v not orthogonal to row %v", v, row)
				}
			}
		}
	}
}

func TestInSpan(t *testing.T) {
	m := NewMatrix(16)
	m.AddRow(0b0011)
	m.AddRow(0b0110)
	if !m.InSpan(0b0101) {
		t.Error("xor of rows not in span")
	}
	if m.InSpan(0b1000) {
		t.Error("independent vector reported in span")
	}
	if !m.InSpan(0) {
		t.Error("zero vector must be in span")
	}
}

func TestLowWeightFormsFindsPlantedForms(t *testing.T) {
	// Plant a known set of low-weight forms, take random combinations as
	// a basis, and check enumeration recovers the planted ones.
	planted := []Vec{
		1<<47 | 1<<35 | 1<<23,
		1<<47 | 1<<36 | 1<<24 | 1<<12,
		1<<12 | 1<<16,
	}
	rng := rand.New(rand.NewSource(5))
	basis := append([]Vec(nil), planted...)
	for i := 0; i < 3; i++ {
		// Add combinations to scramble the basis.
		basis = append(basis, planted[rng.Intn(3)]^planted[rng.Intn(3)])
	}
	forms := LowWeightForms(basis, 4)
	found := make(map[Vec]bool)
	for _, f := range forms {
		found[f] = true
	}
	for _, p := range planted {
		if !found[p] {
			t.Errorf("planted form %v not recovered", p)
		}
	}
	// Weight ordering.
	for i := 1; i < len(forms); i++ {
		if forms[i].Weight() < forms[i-1].Weight() {
			t.Fatalf("forms not weight-ordered at %d", i)
		}
	}
}

func TestSolveConsistentSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		cols := 4 + rng.Intn(30)
		m := NewMatrix(cols)
		nrows := 1 + rng.Intn(20)
		secret := Vec(rng.Uint64()) & (Vec(1)<<uint(cols) - 1)
		var rhs Vec
		for i := 0; i < nrows; i++ {
			row := Vec(rng.Uint64()) & (Vec(1)<<uint(cols) - 1)
			m.AddRow(row)
			rhs |= Vec(row.Dot(secret)) << uint(i)
		}
		x, ok := m.Solve(rhs)
		if !ok {
			t.Fatalf("consistent system reported inconsistent (trial %d)", trial)
		}
		for i, row := range m.Rows {
			if row.Dot(x) != uint(rhs>>uint(i))&1 {
				t.Fatalf("solution does not satisfy row %d", i)
			}
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	m := NewMatrix(8)
	m.AddRow(0b0011)
	m.AddRow(0b0011)
	// Same row, different RHS bits: inconsistent.
	if _, ok := m.Solve(0b01); ok {
		t.Fatal("inconsistent system solved")
	}
}

func TestDotProperty(t *testing.T) {
	// Dot is bilinear: (a^b)·c == a·c ^ b·c.
	f := func(a, b, c uint64) bool {
		return Vec(a^b).Dot(Vec(c)) == Vec(a).Dot(Vec(c))^Vec(b).Dot(Vec(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
