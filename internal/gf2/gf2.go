// Package gf2 implements linear algebra over GF(2) on 64-bit row vectors.
//
// The paper recovers the cross-privilege BTB index functions of AMD Zen 3/4
// with a Z3 SMT solver (Section 6.2): each function is an XOR of virtual
// address bits, i.e. a linear form over GF(2). Two addresses K and U collide
// in a linear hash exactly when every form f satisfies f(K) = f(U), i.e.
// f(K XOR U) = 0. Given a set of observed collision difference vectors
// d_i = K_i XOR U_i, the candidate index functions are precisely the linear
// forms orthogonal to span{d_i}. That is plain nullspace computation — no SMT
// search is required — so this package provides Gaussian elimination, rank,
// nullspace bases, and low-weight codeword enumeration (the paper's
// "at most n coefficients" constraint).
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a vector over GF(2) with up to 64 coordinates, bit i of the word
// being coordinate i.
type Vec uint64

// Dot returns the GF(2) inner product of two vectors: parity of the
// popcount of their AND.
func (v Vec) Dot(w Vec) uint {
	return uint(bits.OnesCount64(uint64(v&w)) & 1)
}

// Weight returns the Hamming weight of v.
func (v Vec) Weight() int { return bits.OnesCount64(uint64(v)) }

// Bits returns the indices of set coordinates in descending order,
// matching how the paper writes its functions (b47 first).
func (v Vec) Bits() []int {
	var out []int
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// String formats v as an XOR of address bits, e.g. "b47 ⊕ b35 ⊕ b23".
func (v Vec) String() string {
	bs := v.Bits()
	if len(bs) == 0 {
		return "0"
	}
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = fmt.Sprintf("b%d", b)
	}
	return strings.Join(parts, " ⊕ ")
}

// Matrix is a list of row vectors over GF(2).
type Matrix struct {
	Rows []Vec
	// Cols is the number of meaningful coordinates (<= 64). Operations such
	// as Nullspace enumerate free variables only below this bound.
	Cols int
}

// NewMatrix returns an empty matrix with the given number of columns.
// Cols must be in (0, 64].
func NewMatrix(cols int) *Matrix {
	if cols <= 0 || cols > 64 {
		panic(fmt.Sprintf("gf2: invalid column count %d", cols))
	}
	return &Matrix{Cols: cols}
}

// AddRow appends a row. Bits at or above Cols are masked off.
func (m *Matrix) AddRow(v Vec) {
	mask := Vec(1)<<uint(m.Cols) - 1
	if m.Cols == 64 {
		mask = ^Vec(0)
	}
	m.Rows = append(m.Rows, v&mask)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Cols: m.Cols}
	c.Rows = append([]Vec(nil), m.Rows...)
	return c
}

// RowReduce brings the matrix to reduced row-echelon form in place and
// returns the rank and, for each pivot, its column index (descending bit
// significance: column Cols-1 is eliminated first so that recovered forms
// keep their high bits, matching the b47-first presentation in the paper).
func (m *Matrix) RowReduce() (rank int, pivots []int) {
	r := 0
	for col := m.Cols - 1; col >= 0 && r < len(m.Rows); col-- {
		bit := Vec(1) << uint(col)
		// Find a pivot row.
		sel := -1
		for i := r; i < len(m.Rows); i++ {
			if m.Rows[i]&bit != 0 {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		m.Rows[r], m.Rows[sel] = m.Rows[sel], m.Rows[r]
		for i := 0; i < len(m.Rows); i++ {
			if i != r && m.Rows[i]&bit != 0 {
				m.Rows[i] ^= m.Rows[r]
			}
		}
		pivots = append(pivots, col)
		r++
	}
	// Drop all-zero rows that sank to the bottom.
	m.Rows = m.Rows[:r]
	return r, pivots
}

// Rank returns the rank of the matrix without modifying it.
func (m *Matrix) Rank() int {
	c := m.Clone()
	r, _ := c.RowReduce()
	return r
}

// Nullspace returns a basis of {x : row·x = 0 for every row}, i.e. the
// orthogonal complement of the row space within GF(2)^Cols.
func (m *Matrix) Nullspace() []Vec {
	c := m.Clone()
	_, pivots := c.RowReduce()
	isPivot := make(map[int]bool, len(pivots))
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []Vec
	for col := m.Cols - 1; col >= 0; col-- {
		if isPivot[col] {
			continue
		}
		// Free variable: set x[col] = 1, solve for pivot variables.
		v := Vec(1) << uint(col)
		for i, p := range pivots {
			if c.Rows[i]&(Vec(1)<<uint(col)) != 0 {
				v |= Vec(1) << uint(p)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// InSpan reports whether v lies in the row span of the matrix.
func (m *Matrix) InSpan(v Vec) bool {
	c := m.Clone()
	r0, _ := c.RowReduce()
	c.AddRow(v)
	r1, _ := c.RowReduce()
	return r1 == r0
}

// LowWeightForms enumerates all nonzero vectors in the span of basis whose
// Hamming weight is at most maxWeight, in increasing weight order (ties in
// descending numeric order, so forms involving higher address bits come
// first). This reproduces the paper's constraint "x0+x1+...+x47 <= n" used
// to keep the SMT solutions from combining independent functions.
//
// The enumeration walks all 2^len(basis)-1 combinations; callers keep the
// basis small (the BTB recovery yields ~a dozen basis vectors).
func LowWeightForms(basis []Vec, maxWeight int) []Vec {
	if len(basis) > 26 {
		panic(fmt.Sprintf("gf2: basis too large to enumerate (%d)", len(basis)))
	}
	seen := make(map[Vec]bool)
	var out []Vec
	for comb := uint64(1); comb < 1<<uint(len(basis)); comb++ {
		var v Vec
		for i := 0; i < len(basis); i++ {
			if comb&(1<<uint(i)) != 0 {
				v ^= basis[i]
			}
		}
		if v == 0 || seen[v] || v.Weight() > maxWeight {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sortForms(out)
	return out
}

// sortForms orders forms by weight, then by descending numeric value.
func sortForms(fs []Vec) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func less(a, b Vec) bool {
	if a.Weight() != b.Weight() {
		return a.Weight() < b.Weight()
	}
	return a > b
}

// Solve finds one solution x of the system rows·x = rhs over GF(2), where
// rhs bit i corresponds to m.Rows[i]. It returns ok=false when the system is
// inconsistent. Columns beyond Cols are ignored.
func (m *Matrix) Solve(rhs Vec) (x Vec, ok bool) {
	if len(m.Rows) > 64 {
		panic("gf2: Solve supports at most 64 rows")
	}
	// Augmented elimination: track RHS alongside.
	rows := append([]Vec(nil), m.Rows...)
	aug := make([]uint, len(rows))
	for i := range rows {
		aug[i] = uint(rhs>>uint(i)) & 1
	}
	r := 0
	var pivots []int
	for col := m.Cols - 1; col >= 0 && r < len(rows); col-- {
		bit := Vec(1) << uint(col)
		sel := -1
		for i := r; i < len(rows); i++ {
			if rows[i]&bit != 0 {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		rows[r], rows[sel] = rows[sel], rows[r]
		aug[r], aug[sel] = aug[sel], aug[r]
		for i := 0; i < len(rows); i++ {
			if i != r && rows[i]&bit != 0 {
				rows[i] ^= rows[r]
				aug[i] ^= aug[r]
			}
		}
		pivots = append(pivots, col)
		r++
	}
	for i := r; i < len(rows); i++ {
		if aug[i] != 0 {
			return 0, false // 0 = 1: inconsistent
		}
	}
	for i, p := range pivots {
		if aug[i] != 0 {
			x |= Vec(1) << uint(p)
		}
	}
	// Verify (free variables are zero; pivot rows may reference them).
	for i, row := range m.Rows {
		if row.Dot(x) != uint(rhs>>uint(i))&1 {
			return 0, false
		}
	}
	return x, true
}
