package mem

import (
	"fmt"
	"sort"
)

// linearRange is a direct VA→PA window (VA = Base + (PA - PABase)),
// used for huge linear kernel regions like physmap where materializing a
// PTE per 4 KiB page would be wasteful.
type linearRange struct {
	va, pa, length uint64
	perm           Perm
	huge           bool
}

// AddLinearRange installs a linear mapping of length bytes from va to pa.
// Lookups fall back to linear ranges when no explicit PTE covers the page,
// so explicit mappings can shadow parts of a range. Ranges must be page
// aligned and must not overlap each other.
func (as *AddrSpace) AddLinearRange(va, pa, length uint64, perm Perm, huge bool) error {
	if va%PageSize != 0 || pa%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("mem: unaligned AddLinearRange(%#x, %#x, %#x)", va, pa, length)
	}
	for _, r := range as.ranges {
		if va < r.va+r.length && r.va < va+length {
			return fmt.Errorf("mem: linear range %#x..%#x overlaps existing %#x..%#x",
				va, va+length, r.va, r.va+r.length)
		}
	}
	as.ranges = append(as.ranges, linearRange{va: va, pa: pa, length: length, perm: perm, huge: huge})
	sort.Slice(as.ranges, func(i, j int) bool { return as.ranges[i].va < as.ranges[j].va })
	as.epoch++
	return nil
}

// rangeLookup finds a PTE synthesized from the linear ranges.
func (as *AddrSpace) rangeLookup(va uint64) (PTE, bool) {
	// Binary search over sorted, non-overlapping ranges.
	i := sort.Search(len(as.ranges), func(i int) bool {
		r := as.ranges[i]
		return va < r.va+r.length
	})
	if i >= len(as.ranges) {
		return PTE{}, false
	}
	r := as.ranges[i]
	if va < r.va {
		return PTE{}, false
	}
	pageVA := va &^ (PageSize - 1)
	return PTE{PA: r.pa + (pageVA - r.va), Perm: r.perm, Huge: r.huge}, true
}
