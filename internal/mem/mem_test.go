package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPhysMemReadWrite(t *testing.T) {
	pm := NewPhysMem(1 << 30)
	pm.Write8(0x1234, 0xab)
	if got := pm.Read8(0x1234); got != 0xab {
		t.Errorf("Read8 = %#x", got)
	}
	// Straddling a frame boundary.
	pm.Write64(PageSize-4, 0x1122334455667788)
	if got := pm.Read64(PageSize - 4); got != 0x1122334455667788 {
		t.Errorf("straddle Read64 = %#x", got)
	}
}

func TestPhysMemRoundTripProperty(t *testing.T) {
	pm := NewPhysMem(1 << 30)
	f := func(pa uint64, v uint64) bool {
		pa %= 1 << 29
		pm.Write64(pa, v)
		return pm.Read64(pa) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMapTranslatePermissions(t *testing.T) {
	pm := NewPhysMem(1 << 30)
	as := NewAddrSpace(pm)
	if err := as.Map(0x400000, 0x10000, PageSize, PermRead|PermExec|PermUser); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0xffffffff81000000, 0x20000, PageSize, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0xffff888000000000, 0x30000, PageSize, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}

	// User fetch of user-exec page: fine.
	if _, f := as.Translate(0x400123, AccessFetch, true); f != nil {
		t.Errorf("user fetch faulted: %v", f)
	}
	// User access to kernel page: permission fault, present.
	if _, f := as.Translate(0xffffffff81000000, AccessRead, true); f == nil || f.NotPresent {
		t.Errorf("user read of kernel page: %v", f)
	}
	// Kernel fetch of NX physmap page: NX fault.
	if _, f := as.Translate(0xffff888000000000, AccessFetch, false); f == nil || f.NotPresent {
		t.Errorf("fetch of NX page: %v", f)
	}
	// Kernel read of physmap: fine.
	if _, f := as.Translate(0xffff888000000000, AccessRead, false); f != nil {
		t.Errorf("kernel read faulted: %v", f)
	}
	// Write to read-only page.
	if _, f := as.Translate(0x400000, AccessWrite, true); f == nil {
		t.Error("write to r-x page did not fault")
	}
	// Unmapped.
	if _, f := as.Translate(0xdead000, AccessRead, false); f == nil || !f.NotPresent {
		t.Errorf("unmapped: %v", f)
	}
}

func TestTranslateOffsets(t *testing.T) {
	pm := NewPhysMem(1 << 30)
	as := NewAddrSpace(pm)
	if err := as.Map(0x400000, 0x10000, 4*PageSize, PermRead|PermUser); err != nil {
		t.Fatal(err)
	}
	pa, f := as.Translate(0x400000+2*PageSize+0x123, AccessRead, true)
	if f != nil || pa != 0x10000+2*PageSize+0x123 {
		t.Fatalf("pa = %#x f=%v", pa, f)
	}
}

func TestUnalignedMapFails(t *testing.T) {
	as := NewAddrSpace(NewPhysMem(1 << 20))
	if err := as.Map(0x400001, 0, PageSize, PermRead); err == nil {
		t.Error("unaligned va accepted")
	}
	if err := as.MapHuge(0x500000, 0, HugePageSize, PermRead); err == nil {
		t.Error("non-huge-aligned va accepted")
	}
}

func TestSetPerm(t *testing.T) {
	as := NewAddrSpace(NewPhysMem(1 << 20))
	as.Map(0xffffffff81000000, 0, PageSize, PermRead|PermExec)
	// Paper Section 6.2: make a kernel page user-accessible by editing
	// its PTE.
	if !as.SetPerm(0xffffffff81000000, PermRead|PermExec|PermUser) {
		t.Fatal("SetPerm failed")
	}
	if _, f := as.Translate(0xffffffff81000000, AccessFetch, true); f != nil {
		t.Errorf("user fetch after SetPerm: %v", f)
	}
	if as.SetPerm(0x123000, PermRead) {
		t.Error("SetPerm on unmapped page succeeded")
	}
}

func TestUnmapAndClone(t *testing.T) {
	as := NewAddrSpace(NewPhysMem(1 << 20))
	as.Map(0x400000, 0, 2*PageSize, PermRead|PermUser)
	clone := as.Clone()
	as.Unmap(0x400000, PageSize)
	if _, f := as.Translate(0x400000, AccessRead, true); f == nil {
		t.Error("unmapped page still translates")
	}
	if _, f := as.Translate(0x401000, AccessRead, true); f != nil {
		t.Error("unmap removed too much")
	}
	// Clone unaffected (KPTI shadow semantics).
	if _, f := clone.Translate(0x400000, AccessRead, true); f != nil {
		t.Error("clone affected by original's unmap")
	}
}

func TestAddrSpaceRW(t *testing.T) {
	as := NewAddrSpace(NewPhysMem(1 << 20))
	as.Map(0x400000, 0x4000, PageSize, PermRead|PermWrite|PermUser)
	if err := as.Write64(0x400010, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	v, err := as.Read64(0x400010)
	if err != nil || v != 0xfeedface {
		t.Fatalf("Read64 = %#x err=%v", v, err)
	}
	if err := as.WriteBytes(0x400100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b, err := as.Read8(0x400102)
	if err != nil || b != 3 {
		t.Fatalf("Read8 = %d err=%v", b, err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(16, 4)
	if tlb.Lookup(0x400000) {
		t.Error("cold TLB hit")
	}
	if !tlb.Lookup(0x400000) {
		t.Error("warm TLB miss")
	}
	if !tlb.Lookup(0x400fff) {
		t.Error("same-page TLB miss")
	}
	tlb.FlushPage(0x400000)
	if tlb.Lookup(0x400000) {
		t.Error("hit after FlushPage")
	}
	tlb.Flush()
	if tlb.Lookup(0x400000) {
		t.Error("hit after Flush")
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(1, 2) // single set, 2 ways
	tlb.Lookup(0x1000)
	tlb.Lookup(0x2000)
	tlb.Lookup(0x3000) // evicts 0x1000 (round robin)
	if tlb.Lookup(0x1000) {
		t.Error("evicted entry still hits")
	}
}

func TestFrameAllocatorSeq(t *testing.T) {
	pm := NewPhysMem(1 << 30)
	fa := NewFrameAllocator(pm, 0x100000, rand.New(rand.NewSource(1)))
	a := fa.AllocSeq(3 * PageSize)
	b := fa.AllocSeq(PageSize)
	if a != 0x100000 || b != a+3*PageSize {
		t.Fatalf("seq alloc: a=%#x b=%#x", a, b)
	}
}

func TestFrameAllocatorRandomHuge(t *testing.T) {
	pm := NewPhysMem(1 << 30) // 512 huge slots
	fa := NewFrameAllocator(pm, 0, rand.New(rand.NewSource(2)))
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		pa, err := fa.AllocRandomHuge()
		if err != nil {
			t.Fatal(err)
		}
		if pa%HugePageSize != 0 {
			t.Fatalf("unaligned huge frame %#x", pa)
		}
		if seen[pa] {
			t.Fatalf("duplicate huge frame %#x", pa)
		}
		seen[pa] = true
	}
}

func TestFrameAllocatorReserveExcludes(t *testing.T) {
	pm := NewPhysMem(4 * HugePageSize)
	fa := NewFrameAllocator(pm, 0, rand.New(rand.NewSource(3)))
	// Reserve all but one slot; random allocation must return the free one.
	fa.Reserve(0, HugePageSize)
	fa.Reserve(2*HugePageSize, 2*HugePageSize)
	pa, err := fa.AllocRandomHuge()
	if err != nil {
		t.Fatal(err)
	}
	if pa != HugePageSize {
		t.Fatalf("allocated reserved frame %#x", pa)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{VA: 0x123, Kind: AccessFetch, NotPresent: true}
	if f.Error() == "" {
		t.Error("empty error string")
	}
	if PermRead.String() == "" || AccessWrite.String() == "" {
		t.Error("stringers broken")
	}
}

func TestLinearRangeTranslateAndShadow(t *testing.T) {
	pm := NewPhysMem(1 << 30)
	as := NewAddrSpace(pm)
	base := uint64(0xffff888000000000)
	if err := as.AddLinearRange(base, 0, 1<<22, PermRead|PermWrite, true); err != nil {
		t.Fatal(err)
	}
	// Translation through the range.
	pa, f := as.Translate(base+0x123456, AccessRead, false)
	if f != nil || pa != 0x123456 {
		t.Fatalf("range translate: %#x, %v", pa, f)
	}
	// An explicit mapping shadows part of the range.
	if err := as.Map(base+0x1000, 0x400000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	pa, f = as.Translate(base+0x1040, AccessRead, false)
	if f != nil || pa != 0x400040 {
		t.Fatalf("shadowed translate: %#x, %v", pa, f)
	}
	// Beyond the range: fault.
	if _, f := as.Translate(base+(1<<22), AccessRead, false); f == nil {
		t.Fatal("translate past range end")
	}
	// Before the range: fault.
	if _, f := as.Translate(base-PageSize, AccessRead, false); f == nil {
		t.Fatal("translate before range start")
	}
	// Lookup consults ranges too.
	if pte, ok := as.Lookup(base + 0x2000); !ok || !pte.Huge {
		t.Fatalf("Lookup through range: %+v ok=%v", pte, ok)
	}
}

func TestLinearRangeOverlapRejected(t *testing.T) {
	as := NewAddrSpace(NewPhysMem(1 << 20))
	if err := as.AddLinearRange(0x1000000, 0, 1<<20, PermRead, false); err != nil {
		t.Fatal(err)
	}
	if err := as.AddLinearRange(0x1080000, 0, 1<<20, PermRead, false); err == nil {
		t.Fatal("overlapping range accepted")
	}
	if err := as.AddLinearRange(0x1000001, 0, PageSize, PermRead, false); err == nil {
		t.Fatal("unaligned range accepted")
	}
}

func TestCloneCopiesRanges(t *testing.T) {
	as := NewAddrSpace(NewPhysMem(1 << 20))
	if err := as.AddLinearRange(0x2000000, 0, 1<<20, PermRead, false); err != nil {
		t.Fatal(err)
	}
	c := as.Clone()
	if _, f := c.Translate(0x2000040, AccessRead, false); f != nil {
		t.Fatal("clone lost linear ranges")
	}
}
