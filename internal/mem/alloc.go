package mem

import (
	"fmt"
	"math/rand"
)

// FrameAllocator hands out physical frames. It can allocate sequentially
// (kernel boot allocations) or at randomized physical addresses (user
// anonymous memory), which is what makes the paper's Table 5 experiment —
// guessing the physical address of a user page through physmap — a search
// problem rather than a lookup.
type FrameAllocator struct {
	phys *PhysMem
	next uint64
	rng  *rand.Rand
	used map[uint64]bool // allocated frame numbers
}

// NewFrameAllocator returns an allocator over pm. Sequential allocations
// start at base. rng drives randomized placement; it must not be nil.
func NewFrameAllocator(pm *PhysMem, base uint64, rng *rand.Rand) *FrameAllocator {
	return &FrameAllocator{phys: pm, next: base, rng: rng, used: make(map[uint64]bool)}
}

// AllocSeq allocates length bytes of physically contiguous frames at the
// next sequential address and returns the base physical address.
func (fa *FrameAllocator) AllocSeq(length uint64) uint64 {
	length = (length + PageSize - 1) &^ (PageSize - 1)
	base := fa.next
	for off := uint64(0); off < length; off += PageSize {
		fa.used[(base+off)>>PageShift] = true
	}
	fa.next = base + length
	return base
}

// AllocRandomHuge allocates one physically contiguous, 2 MiB-aligned huge
// frame at a random physical address below the advertised memory size,
// modeling a transparent huge page whose physical placement the attacker
// does not know. It returns an error if it cannot find a free slot.
func (fa *FrameAllocator) AllocRandomHuge() (uint64, error) {
	slots := fa.phys.Size() / HugePageSize
	if slots == 0 {
		return 0, fmt.Errorf("mem: physical memory smaller than a huge page")
	}
	for attempt := 0; attempt < 4096; attempt++ {
		slot := uint64(fa.rng.Int63n(int64(slots)))
		base := slot * HugePageSize
		if fa.rangeFree(base, HugePageSize) {
			fa.markUsed(base, HugePageSize)
			return base, nil
		}
	}
	return 0, fmt.Errorf("mem: no free huge frame found")
}

func (fa *FrameAllocator) rangeFree(base, length uint64) bool {
	for off := uint64(0); off < length; off += PageSize {
		if fa.used[(base+off)>>PageShift] {
			return false
		}
	}
	return true
}

func (fa *FrameAllocator) markUsed(base, length uint64) {
	for off := uint64(0); off < length; off += PageSize {
		fa.used[(base+off)>>PageShift] = true
	}
}

// Reserve marks [base, base+length) as allocated without returning it, used
// to model memory grabbed by firmware/other processes so that the physical
// address space is realistically fragmented.
func (fa *FrameAllocator) Reserve(base, length uint64) {
	fa.markUsed(base, length)
}
